package repro_test

// Churn-throughput benchmark for the declarative reconciler: each
// iteration is one churn wave — a spec apply sliding the desired window
// by half the fleet, then reconcile ticks until convergence — so the
// measured cost covers spec resolution (policy canonicalization +
// hashing per agent), the desired-vs-actual diff, write-ahead intent
// journaling, the enroll/withdraw side effects against a live verifier,
// and the batched status commit. Reported ops/sec counts enrollments
// plus withdrawals actually executed.

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/keylime/reconcile"
	"repro/internal/keylime/store"
	"repro/internal/keylime/verifier"
	"repro/internal/simclock"
)

func BenchmarkReconcileChurn(b *testing.B) {
	akPub, pol, client := fleetFixture(b)
	akB64 := base64.StdEncoding.EncodeToString(akPub)
	polJSON, err := json.Marshal(pol)
	if err != nil {
		b.Fatalf("marshal policy: %v", err)
	}

	for _, window := range []int{1000, 10000} {
		step := window / 2
		b.Run(fmt.Sprintf("agents=%d", window), func(b *testing.B) {
			v := verifier.New("",
				verifier.WithHTTPClient(client),
				verifier.WithPollConcurrency(32),
			)
			st, err := store.Open(b.TempDir())
			if err != nil {
				b.Fatalf("open store: %v", err)
			}
			defer func() { _ = st.Close() }()
			rc, err := reconcile.New(reconcile.Config{
				Fleet: v, Store: st, Clock: simclock.Real{}, MaxPending: -1,
			})
			if err != nil {
				b.Fatalf("reconcile.New: %v", err)
			}
			converge := func(wave int) int {
				ticks := 0
				for ; ticks < 20 && !rc.Status().Converged; ticks++ {
					if err := rc.Tick(); err != nil {
						b.Fatalf("wave %d: Tick: %v", wave, err)
					}
				}
				if !rc.Status().Converged {
					b.Fatalf("wave %d: not converged: %+v", wave, rc.Status())
				}
				return ticks
			}
			// Warm-up wave enrolls the initial window (untimed).
			if _, _, err := rc.Apply(churnSpec(akB64, polJSON, 0, window)); err != nil {
				b.Fatalf("initial apply: %v", err)
			}
			converge(0)

			totalTicks := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := (i + 1) * step
				if _, _, err := rc.Apply(churnSpec(akB64, polJSON, lo, lo+window)); err != nil {
					b.Fatalf("wave %d: Apply: %v", i+1, err)
				}
				totalTicks += converge(i + 1)
			}
			b.StopTimer()
			opsPerWave := 2 * step
			b.ReportMetric(float64(b.N*opsPerWave)/b.Elapsed().Seconds(), "ops/sec")
			b.ReportMetric(float64(totalTicks)/float64(b.N), "ticks/wave")
			b.ReportMetric(float64(opsPerWave), "ops/wave")
		})
	}
}
