// Fleet attestation: one verifier continuously monitoring several nodes —
// the cloud-provider deployment the paper targets. Three machines enroll;
// all attest cleanly until a rootkit lands on one of them, whose next poll
// raises a revocation alert while the rest of the fleet stays green.
//
// Run with:
//
//	go run ./examples/fleet
package main

import (
	"context"
	"crypto/rand"
	"fmt"
	"log"
	"net/http/httptest"

	"repro/internal/core"
	"repro/internal/keylime/agent"
	"repro/internal/keylime/registrar"
	"repro/internal/keylime/verifier"
	"repro/internal/machine"
	"repro/internal/tpm"
	"repro/internal/vfs"
)

type node struct {
	m     *machine.Machine
	srv   *httptest.Server
	agent *agent.Agent
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("fleet: %v", err)
	}
}

func run() error {
	ctx := context.Background()
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		return err
	}
	reg := registrar.New(ca.Pool())
	regSrv := httptest.NewServer(reg.Handler())
	defer regSrv.Close()

	v := verifier.New(regSrv.URL, verifier.WithRevocationHandler(func(id string, f verifier.Failure) {
		fmt.Printf("  !! REVOCATION agent=%s type=%s path=%s\n", id[:8], f.Type, f.Path)
	}))

	// Bring up three identical nodes.
	var nodes []*node
	for i := 0; i < 3; i++ {
		uuid := fmt.Sprintf("a%d432fbb-d2f1-4a97-9ef7-75bd81c0000%d", i, i)
		m, err := machine.New(ca,
			machine.WithHostname(fmt.Sprintf("node-%d", i+1)),
			machine.WithUUID(uuid),
		)
		if err != nil {
			return err
		}
		for path, content := range map[string]string{
			"/usr/bin/ls":    "\x7fELF ls",
			"/usr/sbin/sshd": "\x7fELF sshd",
		} {
			if err := m.WriteFile(path, []byte(content), vfs.ModeExecutable); err != nil {
				return err
			}
		}
		ag := agent.New(m)
		srv := httptest.NewServer(ag.Handler())
		defer srv.Close()
		if err := ag.Register(regSrv.URL, srv.URL); err != nil {
			return err
		}
		pol, err := core.SnapshotPolicy(m.FS(), nil)
		if err != nil {
			return err
		}
		if err := v.AddAgent(m.UUID(), srv.URL, pol); err != nil {
			return err
		}
		nodes = append(nodes, &node{m: m, srv: srv, agent: ag})
		fmt.Printf("enrolled %s (%s)\n", m.Hostname(), uuid[:8])
	}

	// Fleet activity + a clean polling round.
	for _, n := range nodes {
		if err := n.m.Exec("/usr/sbin/sshd"); err != nil {
			return err
		}
	}
	stats := v.PollAll(ctx)
	fmt.Printf("\npoll round 1: %d attested, %d failed\n", stats.Attested, stats.Failed)

	// Node 2 is compromised: a rootkit shared object is injected.
	victim := nodes[1]
	fmt.Printf("\ncompromising %s with an LD_PRELOAD rootkit...\n", victim.m.Hostname())
	if err := victim.m.WriteFile("/usr/lib/vlany.so", []byte("ELF-so vlany"), vfs.ModeExecutable); err != nil {
		return err
	}
	if err := victim.m.MmapExec("/usr/lib/vlany.so"); err != nil {
		return err
	}

	stats = v.PollAll(ctx)
	fmt.Printf("poll round 2: %d attested, %d failed\n\n", stats.Attested, stats.Failed)

	for _, n := range nodes {
		st, err := v.Status(n.m.UUID())
		if err != nil {
			return err
		}
		fmt.Printf("%s: state=%s attestations=%d failures=%d halted=%v\n",
			n.m.Hostname(), st.State, st.Attestations, len(st.Failures), st.Halted)
	}
	fmt.Println("\nnode-2 is quarantined (stop-on-failure); node-1 and node-3 keep attesting")

	// The healthy fleet continues.
	stats = v.PollAll(ctx)
	fmt.Printf("poll round 3: %d attested (%d halted node skipped), %d failed\n",
		stats.Attested, stats.Halted, stats.Failed)
	return nil
}
