// Quickstart: stand up a complete continuous-integrity-attestation stack
// in one process — a simulated machine with TPM and IMA, a registrar, an
// agent, and a verifier — then watch a healthy attestation, an OS drift
// alert, and the policy fix.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"crypto/rand"
	"fmt"
	"log"
	"net/http/httptest"

	"repro/internal/core"
	"repro/internal/keylime/agent"
	"repro/internal/keylime/registrar"
	"repro/internal/keylime/verifier"
	"repro/internal/machine"
	"repro/internal/tpm"
	"repro/internal/vfs"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("quickstart: %v", err)
	}
}

func run() error {
	ctx := context.Background()

	// 1. A TPM manufacturer, and a machine whose TPM it certified.
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		return err
	}
	m, err := machine.New(ca, machine.WithHostname("node-1"))
	if err != nil {
		return err
	}
	// Give the machine some system executables.
	for path, content := range map[string]string{
		"/usr/bin/ls":      "\x7fELF coreutils-ls",
		"/usr/bin/curl":    "\x7fELF curl-7.81",
		"/usr/sbin/sshd":   "\x7fELF openssh-server",
		"/usr/bin/python3": "\x7fELF python-3.10",
	} {
		if err := m.WriteFile(path, []byte(content), vfs.ModeExecutable); err != nil {
			return err
		}
	}
	fmt.Println("machine ready:", m.Hostname(), "uuid", m.UUID())

	// 2. Registrar: verifies the TPM's EK certificate chain and runs the
	// credential-activation protocol when the agent enrolls.
	reg := registrar.New(ca.Pool())
	regSrv := httptest.NewServer(reg.Handler())
	defer regSrv.Close()

	// 3. Agent on the machine: creates its AK and enrolls.
	ag := agent.New(m)
	agSrv := httptest.NewServer(ag.Handler())
	defer agSrv.Close()
	if err := ag.Register(regSrv.URL, agSrv.URL); err != nil {
		return err
	}
	fmt.Println("agent enrolled: EK certificate verified, credential activated")

	// 4. Runtime policy: the allowlist of executable digests.
	pol, err := core.SnapshotPolicy(m.FS(), []string{"/tmp/.*"})
	if err != nil {
		return err
	}
	fmt.Printf("runtime policy built: %d entries\n", pol.Lines())

	// 5. Verifier: fetches the trusted AK from the registrar and starts
	// monitoring.
	v := verifier.New(regSrv.URL, verifier.WithRevocationHandler(func(id string, f verifier.Failure) {
		fmt.Printf("  !! ALERT agent=%s type=%s path=%s\n", id, f.Type, f.Path)
	}))
	if err := v.AddAgent(m.UUID(), agSrv.URL, pol); err != nil {
		return err
	}

	// 6. Normal operation: executions are measured by IMA, quoted by the
	// TPM, and verified against the policy.
	for _, p := range []string{"/usr/bin/ls", "/usr/sbin/sshd"} {
		if err := m.Exec(p); err != nil {
			return err
		}
	}
	res, err := v.AttestOnce(ctx, m.UUID())
	if err != nil {
		return err
	}
	fmt.Printf("attestation #1: verified %d measurement entries, failure=%v\n",
		res.VerifiedEntries, res.Failure)

	// 7. Drift: someone replaces curl outside the controlled update path.
	if err := m.WriteFile("/usr/bin/curl", []byte("\x7fELF curl-TAMPERED"), vfs.ModeExecutable); err != nil {
		return err
	}
	if err := m.Exec("/usr/bin/curl"); err != nil {
		return err
	}
	res, err = v.AttestOnce(ctx, m.UUID())
	if err != nil {
		return err
	}
	fmt.Printf("attestation #2: failure type=%s path=%s (hash mismatch against policy)\n",
		res.Failure.Type, res.Failure.Path)
	st, _ := v.Status(m.UUID())
	fmt.Printf("verifier state: %s, halted=%v (Keylime stops polling on failure — paper problem P2)\n",
		st.State, st.Halted)

	// 8. The operator vets the change, updates the policy, and resumes.
	info, err := m.FS().Stat("/usr/bin/curl")
	if err != nil {
		return err
	}
	pol.Add("/usr/bin/curl", info.Digest)
	if err := v.UpdatePolicy(m.UUID(), pol); err != nil {
		return err
	}
	if err := v.Resume(m.UUID()); err != nil {
		return err
	}
	res, err = v.AttestOnce(ctx, m.UUID())
	if err != nil {
		return err
	}
	fmt.Printf("attestation #3 after policy update: failure=%v, verified=%d entries\n",
		res.Failure, res.VerifiedEntries)
	fmt.Println("done — see examples/dynamic-policy for the automated version of step 8")
	return nil
}
