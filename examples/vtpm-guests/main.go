// Virtual-machine attestation through a vTPM host (the ephemeral-vTPM
// design the paper's §II cites): a hypervisor holds an intermediate CA
// certified by the TPM manufacturer root and provisions an isolated
// virtual TPM per guest; guests enroll with the registrar by presenting
// their EK chain (guest EK -> host intermediate -> root) and are then
// attested exactly like physical machines.
//
// Run with:
//
//	go run ./examples/vtpm-guests
package main

import (
	"context"
	"crypto/rand"
	"fmt"
	"log"
	"net/http/httptest"

	"repro/internal/core"
	"repro/internal/keylime/agent"
	"repro/internal/keylime/registrar"
	"repro/internal/keylime/verifier"
	"repro/internal/machine"
	"repro/internal/tpm"
	"repro/internal/vfs"
	"repro/internal/vtpm"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("vtpm-guests: %v", err)
	}
}

func run() error {
	ctx := context.Background()
	root, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		return err
	}
	host, err := vtpm.NewHost(root, "hv-01")
	if err != nil {
		return err
	}
	fmt.Println("vTPM host hv-01 up; intermediate CA certified by the manufacturer root")

	reg := registrar.New(root.Pool())
	regSrv := httptest.NewServer(reg.Handler())
	defer regSrv.Close()
	v := verifier.New(regSrv.URL, verifier.WithRevocationHandler(func(id string, f verifier.Failure) {
		fmt.Printf("  !! ALERT guest=%s type=%s path=%s\n", id[:8], f.Type, f.Path)
	}))

	for i := 1; i <= 2; i++ {
		guestID := fmt.Sprintf("vm-%d", i)
		dev, err := host.CreateGuestTPM(guestID)
		if err != nil {
			return err
		}
		m, err := machine.New(nil,
			machine.WithTPMDevice(dev),
			machine.WithHostname(guestID),
			machine.WithUUID(fmt.Sprintf("e%d32fbb3-d2f1-4a97-9ef7-75bd81c0004%d", i, i)),
		)
		if err != nil {
			return err
		}
		if err := m.WriteFile("/usr/bin/service", []byte("\x7fELF service"), vfs.ModeExecutable); err != nil {
			return err
		}
		ag := agent.New(m)
		agSrv := httptest.NewServer(ag.Handler())
		defer agSrv.Close()
		if err := ag.Register(regSrv.URL, agSrv.URL); err != nil {
			return fmt.Errorf("guest %s registration: %w", guestID, err)
		}
		fmt.Printf("guest %s enrolled: EK chain verified through the host intermediate\n", guestID)
		pol, err := core.SnapshotPolicy(m.FS(), nil)
		if err != nil {
			return err
		}
		if err := v.AddAgent(m.UUID(), agSrv.URL, pol); err != nil {
			return err
		}
		if err := m.Exec("/usr/bin/service"); err != nil {
			return err
		}
		// Guest 2 gets compromised after enrollment.
		if i == 2 {
			if err := m.WriteFile("/usr/bin/cryptominer", []byte("\x7fELF evil"), vfs.ModeExecutable); err != nil {
				return err
			}
			if err := m.Exec("/usr/bin/cryptominer"); err != nil {
				return err
			}
		}
	}

	stats := v.PollAll(ctx)
	fmt.Printf("\npoll round: %d guests attested, %d failed\n", stats.Attested, stats.Failed)
	for _, id := range v.AgentIDs() {
		st, err := v.Status(id)
		if err != nil {
			return err
		}
		fmt.Printf("%s: state=%s failures=%d\n", id[:8], st.State, len(st.Failures))
	}
	fmt.Printf("\nvTPMs provisioned: %d (isolated PCR state per guest)\n", host.GuestCount())
	return nil
}
