// Attack detection (the paper's §IV false-negative study) on one sample:
// the Diamorphine kernel rootkit is run three ways —
//
//  1. basic: the attacker is unaware of Keylime → detected;
//  2. adaptive: the attacker builds in /tmp (excluded by the Keylime
//     policy, P1) and stages through a same-filesystem move that IMA never
//     re-measures (P4) → fully evades;
//  3. adaptive vs the mitigated stack (enriched policies, IMA
//     re-evaluation, continue-on-failure) → detected again.
//
// Run with:
//
//	go run ./examples/attack-detection
package main

import (
	"fmt"
	"log"

	"repro/internal/attacks"
	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("attack-detection: %v", err)
	}
}

func run() error {
	sample, err := attacks.ByName("Diamorphine")
	if err != nil {
		return err
	}
	fmt.Printf("sample: %s (%s)\n", sample.Name, sample.Category)
	fmt.Print("adaptive variant exploits: ")
	for i, p := range sample.Exploits {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(p)
	}
	fmt.Println()
	for _, p := range sample.Exploits {
		fmt.Printf("  %s — %s\n", p, p.Describe())
	}
	fmt.Println()

	type runSpec struct {
		label     string
		variant   attacks.Variant
		mitigated bool
	}
	for _, spec := range []runSpec{
		{"1) basic attack vs stock Keylime", attacks.VariantBasic, false},
		{"2) adaptive attack vs stock Keylime", attacks.VariantAdaptive, false},
		{"3) adaptive attack vs mitigated Keylime", attacks.VariantAdaptive, true},
	} {
		fmt.Println(spec.label)
		res, err := experiments.RunAttack(experiments.StackConfig{}, sample, spec.variant, spec.mitigated)
		if err != nil {
			return err
		}
		fmt.Printf("   outcome: %s (%s)\n", res.Outcome, res.Outcome.Symbol())
		for _, f := range res.ArtifactFailures {
			fmt.Printf("   alert: %s %s\n", f.Type, f.Path)
		}
		if res.HaltedDuringRun {
			fmt.Println("   note: verifier halted mid-run (P2 blind window)")
		}
		if len(res.ArtifactFailures) == 0 && !res.Outcome.Detected() {
			fmt.Println("   no alert ever named an attack artifact")
		}
		fmt.Println()
	}
	fmt.Println("paper Table II row: Diamorphine — basic ✓, adaptive ✗, mitigated ✓*")
	return nil
}
