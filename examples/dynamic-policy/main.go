// Dynamic policy generation (the paper's §III-C contribution), end to end:
// a 31-day simulation where a local mirror is synced ahead of each daily
// system update, the runtime policy is regenerated incrementally and pushed
// to the verifier BEFORE the machine updates — so Keylime attests
// continuously with zero false positives, including across a kernel update
// and reboot. The one alert of the run is the paper's injected operator
// misconfiguration (installing from the official archive instead of the
// mirror).
//
// Run with:
//
//	go run ./examples/dynamic-policy
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("dynamic-policy: %v", err)
	}
}

func run() error {
	cfg := experiments.DailyRunConfig()
	fmt.Printf("simulating %d days of daily updates (misconfiguration injected on day %d)...\n\n",
		cfg.Days, cfg.MisconfigDay)
	res, err := experiments.DynamicRun(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("initial policy: %d entries (%.2f MB)\n\n",
		res.InitialPolicyLines, float64(res.InitialPolicyBytes)/(1<<20))
	for _, day := range res.Days {
		marker := ""
		if day.Rebooted {
			marker += "  [kernel update + reboot]"
		}
		if day.MisconfigEvent {
			marker += "  [MISCONFIGURATION EVENT]"
		}
		fmt.Printf("day %02d: %3d pkgs w/ executables  +%5d policy entries  %5.2f min  FPs=%d%s\n",
			day.Day, day.Report.PackagesWithExecutables, day.Report.EntriesAdded,
			day.Report.ModeledDuration.Minutes(), len(day.FPAlerts), marker)
		for _, a := range day.FPAlerts {
			fmt.Printf("        alert: %s (%s)\n", a.Path, a.Cause)
		}
	}

	fmt.Printf("\nresult: %d updates, %d false positives (%d from the misconfiguration event)\n",
		res.TotalUpdates, res.TotalFPs, res.MisconfigFPs)
	fmt.Println("paper:  31 daily updates, zero false positives except the Mar-27 operator error")
	fmt.Print("\n", experiments.RenderFig3(res))
	return nil
}
