// Vendor-signed updates (the §V "hashes generated and then signed by the
// package maintainers" improvement): the distribution vendor signs every
// executable at publish time, signatures travel with the files as
// security.ima xattrs and appear in the IMA log (ima-sig template), and the
// verifier appraises vendor-signed files by key. The runtime policy is
// frozen on day one — yet a week of unattended upgrades produces zero
// false positives, while unsigned or rogue-signed payloads are still
// flagged.
//
// Run with:
//
//	go run ./examples/signed-updates
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/vfs"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("signed-updates: %v", err)
	}
}

func run() error {
	ctx := context.Background()
	d, err := experiments.NewDeployment(experiments.StackConfig{VendorSigning: true})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.RefreshPolicyFromMachine(); err != nil {
		return err
	}
	fmt.Println("deployment up: vendor signs all executables; verifier trusts the vendor key")
	fmt.Println("runtime policy FROZEN at day 0 — no dynamic policy generation in this run")
	fmt.Println()

	for day := 1; day <= 7; day++ {
		upd, err := d.Stream.PublishDay(d.Clock.Now())
		if err != nil {
			return err
		}
		if err := d.InstallFromArchive(upd.Published); err != nil {
			return err
		}
		if err := experiments.ExecUpdated(d, upd, 3); err != nil {
			return err
		}
		res, err := d.V.AttestOnce(ctx, d.Machine.UUID())
		if err != nil {
			return err
		}
		status := "PASS"
		if res.Failure != nil {
			status = fmt.Sprintf("FAIL (%s %s)", res.Failure.Type, res.Failure.Path)
		}
		fmt.Printf("day %d: %2d packages upgraded, attestation %s\n", day, len(upd.Published), status)
	}

	fmt.Println("\nnow an attacker drops an unsigned binary and runs it ...")
	if err := d.Machine.WriteFile("/usr/local/bin/cryptominer", []byte("\x7fELF evil"), vfs.ModeExecutable); err != nil {
		return err
	}
	if err := d.Machine.Exec("/usr/local/bin/cryptominer"); err != nil {
		return err
	}
	res, err := d.V.AttestOnce(ctx, d.Machine.UUID())
	if err != nil {
		return err
	}
	if res.Failure == nil {
		return fmt.Errorf("unsigned payload was not flagged")
	}
	fmt.Printf("ALERT: %s %s — signature trust does not whitelist unsigned code\n",
		res.Failure.Type, res.Failure.Path)
	fmt.Println("\ncompare: examples/dynamic-policy achieves the same zero-FP result by")
	fmt.Println("regenerating the policy before every update (the paper's contribution);")
	fmt.Println("signed files remove that churn but need vendor cooperation (§V).")
	return nil
}
