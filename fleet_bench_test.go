package repro_test

// Fleet-scale sweep benchmark: PollAll over 100/1k/10k enrolled agents at
// different worker-pool widths. Real TCP to 10k loopback servers would
// measure the kernel, and 10k RSA endorsement-key generations would take
// minutes of setup, so the harness enrolls many agent IDs against ONE
// machine/agent handler reached through an in-process loopback
// http.RoundTripper. The verifier still does its full per-agent round every
// sweep — nonce generation, HTTP round trip through the client stack, ECDSA
// quote verification, IMA replay and policy evaluation — which is exactly
// the control-plane work the sharded registry, cached AK parse and
// per-worker sweep counters are meant to scale.

import (
	"context"
	"crypto/rand"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/keylime/agent"
	"repro/internal/keylime/verifier"
	"repro/internal/machine"
	"repro/internal/policy"
	"repro/internal/tpm"
	"repro/internal/vfs"
)

// loopbackTransport serves every request in-process against one handler,
// bypassing the network entirely.
type loopbackTransport struct {
	h http.Handler
}

func (t loopbackTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// BenchmarkPollAllFleet measures one PollAll sweep per iteration across a
// fleet of enrolled agents. The warm-up sweep fetches and verifies each
// agent's full measurement log, so measured iterations see the steady
// state: quote fetch + signature check + empty incremental log delta per
// agent.
// fleetFixture builds the shared one-machine fixture the fleet
// benchmarks (and the durable-sweep fsync-budget test) enroll many
// agent IDs against.
func fleetFixture(tb testing.TB) ([]byte, *policy.RuntimePolicy, *http.Client) {
	tb.Helper()
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		tb.Fatalf("NewManufacturerCA: %v", err)
	}
	m, err := machine.New(ca, machine.WithTPMOptions(tpm.WithEKBits(1024)))
	if err != nil {
		tb.Fatalf("New machine: %v", err)
	}
	if err := m.WriteFile("/usr/bin/tool", []byte("\x7fELF tool"), vfs.ModeExecutable); err != nil {
		tb.Fatalf("WriteFile: %v", err)
	}
	if err := m.Exec("/usr/bin/tool"); err != nil {
		tb.Fatalf("Exec: %v", err)
	}
	akPub, err := m.TPM().CreateAK()
	if err != nil {
		tb.Fatalf("CreateAK: %v", err)
	}
	pol, err := core.SnapshotPolicy(m.FS(), nil)
	if err != nil {
		tb.Fatalf("SnapshotPolicy: %v", err)
	}
	ag := agent.New(m)
	client := &http.Client{Transport: loopbackTransport{h: ag.Handler()}}
	return akPub, pol, client
}

func BenchmarkPollAllFleet(b *testing.B) {
	akPub, pol, client := fleetFixture(b)

	for _, fleet := range []int{100, 1000, 10000} {
		for _, workers := range []int{8, 64} {
			b.Run(fmt.Sprintf("agents=%d/workers=%d", fleet, workers), func(b *testing.B) {
				v := verifier.New("",
					verifier.WithHTTPClient(client),
					verifier.WithPollConcurrency(workers),
				)
				for i := 0; i < fleet; i++ {
					id := fmt.Sprintf("fleet-%05d-4a97-9ef7-75bd81c0f1ee", i)
					if err := v.AddAgentWithAK(id, "http://agent.fleet.internal", akPub, pol); err != nil {
						b.Fatalf("AddAgentWithAK: %v", err)
					}
				}
				ctx := context.Background()
				if st := v.PollAll(ctx); st.Attested != fleet || st.Failed != 0 {
					b.Fatalf("warm-up sweep = %+v", st)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st := v.PollAll(ctx)
					if st.Attested != fleet || st.Failed != 0 {
						b.Fatalf("PollAll = %+v", st)
					}
				}
				b.ReportMetric(float64(fleet), "agents/sweep")
			})
		}
	}
}

// BenchmarkPollAllFleetSessions is the sessioned variant: after the
// warm-up sweep establishes a session per agent, almost every measured
// round rides the session MAC (a full quote every 16th round per agent),
// so a sweep costs a fraction of the full-quote fleet sweep above.
func BenchmarkPollAllFleetSessions(b *testing.B) {
	akPub, pol, client := fleetFixture(b)

	for _, fleet := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("agents=%d", fleet), func(b *testing.B) {
			v := verifier.New("",
				verifier.WithHTTPClient(client),
				verifier.WithPollConcurrency(64),
				verifier.WithSessionPolicy(16, 0),
			)
			defer v.Close()
			for i := 0; i < fleet; i++ {
				id := fmt.Sprintf("fleet-%05d-4a97-9ef7-75bd81c0f1ee", i)
				if err := v.AddAgentWithAK(id, "http://agent.fleet.internal", akPub, pol); err != nil {
					b.Fatalf("AddAgentWithAK: %v", err)
				}
			}
			ctx := context.Background()
			if st := v.PollAll(ctx); st.Attested != fleet || st.Failed != 0 {
				b.Fatalf("warm-up sweep = %+v", st)
			}
			b.ReportAllocs()
			b.ResetTimer()
			sessionRounds := 0
			for i := 0; i < b.N; i++ {
				st := v.PollAll(ctx)
				if st.Attested != fleet || st.Failed != 0 {
					b.Fatalf("PollAll = %+v", st)
				}
				sessionRounds += st.SessionRounds
			}
			b.StopTimer()
			if sessionRounds == 0 {
				b.Fatal("no session rounds: the sweep never used the MAC fast path")
			}
			b.ReportMetric(float64(fleet), "agents/sweep")
			b.ReportMetric(float64(sessionRounds)/float64(b.N), "session-rounds/sweep")
		})
	}
}
