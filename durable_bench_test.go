package repro_test

// Durable fleet-sweep benchmark: the fleet benchmarks above measure the
// attestation control plane with persistence disabled, so the real cost
// of a durable sweep — journaling every dirty agent row and audit record
// with per-record fsyncs — was never on the scoreboard. This benchmark
// runs PollAll with the state store AND the audit journal enabled, in
// three persistence modes:
//
//   off           no store, no audit journal — the pure attestation
//                 sweep. Subtracting this from the durable modes gives
//                 the persistence cost of a sweep, which is what the
//                 before/after comparison in BENCH_pr8.json reports.
//   per-record    every row and audit record costs its own fsync (the
//                 pre-group-commit behavior)
//   group-commit  the sweep's rows land in one Store.PutBatch and its
//                 audit records in one Log.AppendBatch — a constant
//                 number of fsyncs per sweep regardless of fleet size
//
// A CountingFS underneath reports fsyncs/sweep as a benchmark metric,
// and TestDurableSweepFsyncBudget pins the group-commit sweep to the
// ≤4-fsync budget that BENCH_pr8.json records.

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/keylime/audit"
	"repro/internal/keylime/store"
	"repro/internal/keylime/verifier"
)

// durableHarness wires a verifier to a journaled state store and audit
// journal over a CountingFS, mirroring cmd/keylime-verifier's persist
// path in both modes.
type durableHarness struct {
	v       *verifier.Verifier
	st      *store.Store
	jl      *audit.JournalLog
	iofs    *store.CountingFS
	group   bool
	persist func() error
	// persistNs accumulates time spent in the state-persist phase alone,
	// separating the durability cost from the attestation compute that
	// dominates the sweep.
	persistNs time.Duration
}

func newDurableHarness(tb testing.TB, fleet int, mode string) *durableHarness {
	tb.Helper()
	durable := mode != "off"
	group := mode == "group-commit"
	akPub, pol, client := fleetFixture(tb)
	iofs := store.NewCountingFS(store.OS())

	var st *store.Store
	var jl *audit.JournalLog
	vopts := []verifier.Option{
		verifier.WithHTTPClient(client),
		verifier.WithPollConcurrency(64),
	}
	if durable {
		// Auto-compaction is disabled so the measured fsyncs are the append
		// path alone: a compaction's temp-write+rename+dir-sync triple fires
		// on a journal-growth schedule, not per sweep, and would add noise.
		var err error
		st, err = store.Open(tb.TempDir(), store.WithStoreFS(iofs), store.WithAutoCompact(0))
		if err != nil {
			tb.Fatal(err)
		}
		var jopts []store.JournalOption
		if group {
			jopts = append(jopts, store.WithGroupCommit(2*time.Millisecond, 1024))
		}
		jl, err = audit.OpenJournal(iofs, tb.TempDir()+"/audit.wal", jopts...)
		if err != nil {
			tb.Fatal(err)
		}
		vopts = append(vopts,
			verifier.WithAuditLog(jl.Log),
			verifier.WithAuditBatch(group),
		)
	}
	v := verifier.New("", vopts...)
	for i := 0; i < fleet; i++ {
		id := fmt.Sprintf("fleet-%05d-4a97-9ef7-75bd81c0f1ee", i)
		if err := v.AddAgentWithAK(id, "http://agent.fleet.internal", akPub, pol); err != nil {
			tb.Fatalf("AddAgentWithAK: %v", err)
		}
	}
	h := &durableHarness{v: v, st: st, jl: jl, iofs: iofs, group: group}
	h.persist = func() error {
		if !durable {
			return nil
		}
		changed, removed, err := v.ExportDirty()
		if err != nil {
			return err
		}
		if group {
			batch := make([]store.KV, 0, len(changed)+len(removed))
			for _, as := range changed {
				data, err := json.Marshal(as)
				if err != nil {
					return err
				}
				batch = append(batch, store.KV{Key: as.AgentID, Value: data})
			}
			for _, id := range removed {
				batch = append(batch, store.KV{Key: id, Delete: true})
			}
			return st.PutBatch(batch)
		}
		for _, as := range changed {
			data, err := json.Marshal(as)
			if err != nil {
				return err
			}
			if err := st.Put(as.AgentID, data); err != nil {
				return err
			}
		}
		for _, id := range removed {
			if err := st.Delete(id); err != nil {
				return err
			}
		}
		return nil
	}
	return h
}

func (h *durableHarness) close() {
	h.v.Close()
	if h.jl != nil {
		_ = h.jl.Close()
	}
	if h.st != nil {
		_ = h.st.Close()
	}
}

// sweep runs one durable sweep: PollAll, then persist the dirty rows.
func (h *durableHarness) sweep(tb testing.TB, ctx context.Context, fleet int) verifier.PollStats {
	st := h.v.PollAll(ctx)
	if st.Attested != fleet || st.Failed != 0 || st.AuditFlushErrs != 0 {
		tb.Fatalf("sweep = %+v", st)
	}
	start := time.Now()
	if err := h.persist(); err != nil {
		tb.Fatalf("persist: %v", err)
	}
	h.persistNs += time.Since(start)
	return st
}

func BenchmarkPollAllFleetDurable(b *testing.B) {
	for _, fleet := range []int{100, 1000, 10000} {
		for _, mode := range []string{"off", "per-record", "group-commit"} {
			b.Run(fmt.Sprintf("agents=%d/mode=%s", fleet, mode), func(b *testing.B) {
				h := newDurableHarness(b, fleet, mode)
				defer h.close()
				ctx := context.Background()
				// Warm-up sweep: first rounds fetch and verify the full
				// measurement log; measured sweeps see the steady state.
				h.sweep(b, ctx, fleet)
				b.ReportAllocs()
				syncs0 := h.iofs.Counters().Syncs
				h.persistNs = 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h.sweep(b, ctx, fleet)
				}
				b.StopTimer()
				syncs := h.iofs.Counters().Syncs - syncs0
				b.ReportMetric(float64(fleet), "agents/sweep")
				b.ReportMetric(float64(syncs)/float64(b.N), "fsyncs/sweep")
				b.ReportMetric(float64(h.persistNs.Milliseconds())/float64(b.N), "persist-ms/sweep")
			})
		}
	}
}

// TestDurableSweepFsyncBudget is the fsync-budget gate: a group-commit
// durable sweep over 1000 agents — every row dirty, every round audited
// — must cost at most 4 fsyncs (state batch + audit batch, with slack
// for a group-commit flush split). This is the CI assertion behind the
// ≤4-fsyncs-per-sweep acceptance number in BENCH_pr8.json.
func TestDurableSweepFsyncBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet fixture is expensive")
	}
	const fleet = 1000
	h := newDurableHarness(t, fleet, "group-commit")
	defer h.close()
	ctx := context.Background()
	h.sweep(t, ctx, fleet) // warm-up: log fetch + verify
	const sweeps = 3
	syncs0 := h.iofs.Counters().Syncs
	for i := 0; i < sweeps; i++ {
		st := h.sweep(t, ctx, fleet)
		if st.AuditBatched != fleet {
			t.Fatalf("sweep audited %d of %d rounds through the batch", st.AuditBatched, fleet)
		}
	}
	syncs := h.iofs.Counters().Syncs - syncs0
	if perSweep := float64(syncs) / sweeps; perSweep > 4 {
		t.Fatalf("durable sweep cost %.1f fsyncs (budget 4): group commit is not batching", perSweep)
	}
	// The durable artifacts must actually contain the sweeps' data.
	if h.st.Len() != fleet {
		t.Fatalf("state store holds %d rows, want %d", h.st.Len(), fleet)
	}
	if err := audit.VerifyChain(h.jl.Log.Records()); err != nil {
		t.Fatalf("audit chain after batched sweeps: %v", err)
	}
	if got := h.jl.Log.Len(); got != fleet*(sweeps+1) {
		t.Fatalf("audit log holds %d records, want %d", got, fleet*(sweeps+1))
	}
}
