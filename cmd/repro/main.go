// Command repro regenerates every table and figure of the paper's
// evaluation:
//
//	repro -exp all              # everything (default)
//	repro -exp fp-week          # §III-B false-positive causes
//	repro -exp fig3|fig4|fig5   # Figs. 3-5, daily-update experiment
//	repro -exp fig3-weekly ...  # weekly analogues (supplementary materials)
//	repro -exp table1           # Table I daily vs weekly summary
//	repro -exp effectiveness    # 66-day zero-FP result
//	repro -exp table2           # Table II attack detection matrix
//	repro -exp table2-sec       # Table II with script execution control
//	repro -exp attack=Vlany     # narrated single-attack timeline
//
// -scale paper sizes the synthetic distribution so the initial policy
// reaches the paper's ~323k entries (slower; the default small scale
// reproduces all shapes in seconds). -csv DIR additionally writes the
// figure/table series as CSV for external plotting.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("repro: %v", err)
	}
}

func run() error {
	var (
		exp = flag.String("exp", "all",
			"experiment: all | fp-week | fig3 | fig4 | fig5 | fig3-weekly | fig4-weekly | fig5-weekly | table1 | effectiveness | table2 | table2-sec | attack=<name>")
		scaleName = flag.String("scale", "small", "distribution scale: small | paper")
		seed      = flag.Int64("seed", 1, "workload seed")
		csvDir    = flag.String("csv", "", "also write figure/table CSVs into this directory")
		workers   = flag.Int("gen-workers", 0,
			"policy-generator measurement worker pool size (0 = GOMAXPROCS); output is identical at any size")
		pollConcurrency = flag.Int("poll-concurrency", 0,
			"verifier PollAll worker pool size (0 = auto: 4x GOMAXPROCS, minimum 8)")
	)
	flag.Parse()

	var scale workload.Scale
	switch *scaleName {
	case "small":
		scale = workload.ScaleSmall()
	case "paper":
		scale = workload.ScalePaper()
	default:
		return fmt.Errorf("unknown scale %q (small | paper)", *scaleName)
	}
	scale.Seed = *seed
	stack := experiments.StackConfig{Scale: scale, GenWorkers: *workers, PollConcurrency: *pollConcurrency}

	out := os.Stdout
	writeCSV := func(name string, fn func(w *os.File) error) error {
		if *csvDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		if err := fn(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", filepath.Join(*csvDir, name))
		return nil
	}

	if name, ok := strings.CutPrefix(*exp, "attack="); ok {
		outStr, err := experiments.AttackTimeline(stack, name)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, outStr)
		return nil
	}
	needDaily := map[string]bool{"all": true, "fig3": true, "fig4": true, "fig5": true, "table1": true, "effectiveness": true}
	needWeekly := map[string]bool{
		"all": true, "table1": true, "effectiveness": true,
		// Weekly-update analogues of Figs. 3-5 (the paper's supplementary
		// materials present the second experiment this way).
		"fig3-weekly": true, "fig4-weekly": true, "fig5-weekly": true,
	}

	var daily, weekly experiments.DynamicRunResult
	var err error
	if needDaily[*exp] {
		cfg := experiments.DailyRunConfig()
		cfg.Stack = stack
		fmt.Fprintln(out, "running 31-day daily-update experiment ...")
		if daily, err = experiments.DynamicRun(cfg); err != nil {
			return err
		}
	}
	if needWeekly[*exp] {
		cfg := experiments.WeeklyRunConfig()
		cfg.Stack = stack
		fmt.Fprintln(out, "running 35-day weekly-update experiment ...")
		if weekly, err = experiments.DynamicRun(cfg); err != nil {
			return err
		}
	}

	section := func(s string) { fmt.Fprintln(out); fmt.Fprintln(out, s) }

	switch *exp {
	case "fp-week", "all":
		fmt.Fprintln(out, "running 7-day false-positive experiment (static policy) ...")
		res, err := experiments.FPWeek(stack)
		if err != nil {
			return err
		}
		section(experiments.RenderFPWeek(res))
		if *exp != "all" {
			return nil
		}
	}
	switch *exp {
	case "fig3":
		section(experiments.RenderFig3(daily))
		return nil
	case "fig4":
		section(experiments.RenderFig4(daily))
		return nil
	case "fig5":
		section(experiments.RenderFig5(daily))
		return nil
	case "fig3-weekly":
		section(experiments.RenderFig3(weekly))
		return nil
	case "fig4-weekly":
		section(experiments.RenderFig4(weekly))
		return nil
	case "fig5-weekly":
		section(experiments.RenderFig5(weekly))
		return nil
	case "table1":
		section(experiments.RenderTable1(daily, weekly))
		return nil
	case "effectiveness":
		section(experiments.RenderEffectiveness(daily, weekly))
		return nil
	case "table2":
		fmt.Fprintln(out, "running attack matrix (8 samples x basic/adaptive/mitigated) ...")
		res, err := experiments.AttackMatrix(stack)
		if err != nil {
			return err
		}
		section(experiments.RenderTable2(res))
		return nil
	case "table2-sec":
		fmt.Fprintln(out, "running attack matrix with script execution control in the mitigated column ...")
		secStack := stack
		secStack.ScriptExecControl = true
		res, err := experiments.AttackMatrix(secStack)
		if err != nil {
			return err
		}
		section(experiments.RenderTable2(res))
		fmt.Fprintln(out, "Mitigated column includes script execution control (§IV-C): interpreters")
		fmt.Fprintln(out, "opt in, IMA measures SCRIPT_CHECK, and the pure-Python Aoyama is caught too.")
		return nil
	case "all":
		section(experiments.RenderFig3(daily))
		section(experiments.RenderFig4(daily))
		section(experiments.RenderFig5(daily))
		section(experiments.RenderTable1(daily, weekly))
		section(experiments.RenderEffectiveness(daily, weekly))
		if err := writeCSV("figures-daily.csv", func(f *os.File) error {
			return experiments.WriteFiguresCSV(f, daily)
		}); err != nil {
			return err
		}
		if err := writeCSV("figures-weekly.csv", func(f *os.File) error {
			return experiments.WriteFiguresCSV(f, weekly)
		}); err != nil {
			return err
		}
		fmt.Fprintln(out, "running attack matrix (8 samples x basic/adaptive/mitigated) ...")
		matrix, err := experiments.AttackMatrix(stack)
		if err != nil {
			return err
		}
		section(experiments.RenderTable2(matrix))
		if err := writeCSV("table2.csv", func(f *os.File) error {
			return experiments.WriteAttackMatrixCSV(f, matrix)
		}); err != nil {
			return err
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}
