// Command keylime-tenant is the operator's management tool: it enrolls
// agents with a verifier, pushes runtime policies, queries attestation
// status, and resumes halted agents.
//
// Usage:
//
//	keylime-tenant -verifier http://localhost:8893 add -agent-id <uuid> \
//	  -agent-url http://localhost:8892 -policy policy.json
//	keylime-tenant -verifier http://localhost:8893 status -agent-id <uuid>
//	keylime-tenant -verifier http://localhost:8893 update-policy -agent-id <uuid> -policy policy.json
//	keylime-tenant -verifier http://localhost:8893 resume -agent-id <uuid>
//	keylime-tenant -verifier http://localhost:8893 remove -agent-id <uuid>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/keylime/tenant"
	"repro/internal/policy"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("keylime-tenant: %v", err)
	}
}

func run() error {
	verifierURL := flag.String("verifier", "http://localhost:8893", "verifier management base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand: add | status | update-policy | resume | remove | list")
	}
	cmd, rest := args[0], args[1:]
	tn := tenant.New(*verifierURL)

	if cmd == "list" {
		ids, err := tn.ListAgents()
		if err != nil {
			return err
		}
		for _, id := range ids {
			fmt.Println(id)
		}
		fmt.Printf("%d agent(s) monitored\n", len(ids))
		return nil
	}

	sub := flag.NewFlagSet(cmd, flag.ExitOnError)
	agentID := sub.String("agent-id", "", "agent UUID")
	agentURL := sub.String("agent-url", "", "agent quote API base URL (add only)")
	policyPath := sub.String("policy", "", "runtime policy JSON file (add / update-policy)")
	if err := sub.Parse(rest); err != nil {
		return err
	}
	if *agentID == "" {
		return fmt.Errorf("%s: -agent-id is required", cmd)
	}

	loadPolicy := func() (*policy.RuntimePolicy, error) {
		if *policyPath == "" {
			return nil, fmt.Errorf("%s: -policy is required", cmd)
		}
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			return nil, err
		}
		pol := policy.New()
		if err := json.Unmarshal(data, pol); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", *policyPath, err)
		}
		return pol, nil
	}

	switch cmd {
	case "add":
		if *agentURL == "" {
			return fmt.Errorf("add: -agent-url is required")
		}
		pol, err := loadPolicy()
		if err != nil {
			return err
		}
		if err := tn.AddAgent(*agentID, *agentURL, pol); err != nil {
			return err
		}
		fmt.Printf("agent %s enrolled (%d policy entries)\n", *agentID, pol.Lines())
	case "status":
		st, err := tn.Status(*agentID)
		if err != nil {
			return err
		}
		fmt.Printf("agent:            %s\n", st.AgentID)
		fmt.Printf("state:            %s\n", st.State)
		fmt.Printf("attestations:     %d\n", st.Attestations)
		fmt.Printf("verified entries: %d\n", st.VerifiedEntries)
		fmt.Printf("halted:           %v\n", st.Halted)
		if st.Degraded || st.ConsecutiveFaults > 0 {
			fmt.Printf("degraded:         %v (%d consecutive faults)\n", st.Degraded, st.ConsecutiveFaults)
		}
		if st.Breaker != "" && st.Breaker != "closed" {
			fmt.Printf("breaker:          %s", st.Breaker)
			if st.BreakerOpenUntil != "" {
				fmt.Printf(" (reprobe after %s)", st.BreakerOpenUntil)
			}
			fmt.Println()
		}
		for _, f := range st.Failures {
			fmt.Printf("failure: [%s] %s path=%s detail=%s\n", f.Time, f.Type, f.Path, f.Detail)
		}
	case "update-policy":
		pol, err := loadPolicy()
		if err != nil {
			return err
		}
		if err := tn.UpdatePolicy(*agentID, pol); err != nil {
			return err
		}
		fmt.Printf("policy for %s updated (%d entries)\n", *agentID, pol.Lines())
	case "resume":
		if err := tn.Resume(*agentID); err != nil {
			return err
		}
		fmt.Printf("agent %s resumed\n", *agentID)
	case "remove":
		if err := tn.RemoveAgent(*agentID); err != nil {
			return err
		}
		fmt.Printf("agent %s removed\n", *agentID)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	return nil
}
