// Command keylime-tenant is the operator's management tool: it enrolls
// agents with a verifier, pushes runtime policies, queries attestation
// status, and resumes halted agents.
//
// Usage:
//
//	keylime-tenant -verifier http://localhost:8893 add -agent-id <uuid> \
//	  -agent-url http://localhost:8892 -policy policy.json
//	keylime-tenant -verifier http://localhost:8893 status -agent-id <uuid>
//	keylime-tenant -verifier http://localhost:8893 update-policy -agent-id <uuid> -policy policy.json
//	keylime-tenant -verifier http://localhost:8893 resume -agent-id <uuid>
//	keylime-tenant -verifier http://localhost:8893 remove -agent-id <uuid>
//	keylime-tenant -verifier http://localhost:8893 rollout-begin -policy policy.json
//	keylime-tenant -verifier http://localhost:8893 rollout-status
//	keylime-tenant -verifier http://localhost:8893 rollout-cancel
//	keylime-tenant -verifier http://localhost:8893 fleet-apply -spec fleet.json
//	keylime-tenant -verifier http://localhost:8893 fleet-status
//	keylime-tenant -verifier http://localhost:8893 fleet-diff
//	keylime-tenant verify-chain -audit-log audit.log -outbox outbox.wal \
//	  -rollout-state rollout/ -keyring keyring.wal
//
// verify-chain is fully offline: it walks the sealed audit journal, the
// revocation outbox, and the journaled rollout state, re-checking frame
// CRCs, the audit hash chain, and every DSSE seal against the keyring,
// and reports the first broken link (record index, byte offset, and
// failure class). It exits 3 when the chain is broken.
//
// The rollout-* subcommands drive the verifier's staged rollout pipeline
// (freshness gate → shadow evaluation → canary → fleet) instead of the
// one-shot update-policy swap. The fleet-* subcommands manage the
// declarative reconciler (-reconcile on the verifier): fleet-apply
// submits a desired-state spec, fleet-status and fleet-diff watch
// convergence.
//
// Exit codes: 0 success, 1 usage or local error, 2 transport failure
// (verifier unreachable or 5xx after retries — safe to re-run), 3
// verifier rejection (the request was refused — re-running without a
// change will fail again).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/keylime/tenant"
	"repro/internal/policy"
)

// Exit codes distinguishing failure classes for scripts.
const (
	exitUsage     = 1
	exitTransport = 2
	exitRejected  = 3
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Printf("keylime-tenant: %v", err)
		switch {
		case errors.Is(err, tenant.ErrTransport):
			os.Exit(exitTransport)
		case errors.Is(err, tenant.ErrRejected):
			os.Exit(exitRejected)
		}
		os.Exit(exitUsage)
	}
}

func run() error {
	verifierURL := flag.String("verifier", "http://localhost:8893", "verifier management base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand: add | status | update-policy | resume | remove | list | " +
			"rollout-begin | rollout-status | rollout-cancel | fleet-apply | fleet-status | fleet-diff | " +
			"verify-chain")
	}
	cmd, rest := args[0], args[1:]
	tn := tenant.New(*verifierURL)

	switch cmd {
	case "list":
		ids, err := tn.ListAgents()
		if err != nil {
			return err
		}
		for _, id := range ids {
			fmt.Println(id)
		}
		fmt.Printf("%d agent(s) monitored\n", len(ids))
		return nil
	case "rollout-begin", "rollout-status", "rollout-cancel":
		return runRollout(tn, cmd, rest)
	case "fleet-apply", "fleet-status", "fleet-diff":
		return runFleet(tn, cmd, rest)
	case "verify-chain":
		return runVerifyChain(rest)
	}

	sub := flag.NewFlagSet(cmd, flag.ExitOnError)
	agentID := sub.String("agent-id", "", "agent UUID")
	agentURL := sub.String("agent-url", "", "agent quote API base URL (add only)")
	policyPath := sub.String("policy", "", "runtime policy JSON file (add / update-policy)")
	if err := sub.Parse(rest); err != nil {
		return err
	}
	if *agentID == "" {
		return fmt.Errorf("%s: -agent-id is required", cmd)
	}

	loadPolicy := func() (*policy.RuntimePolicy, error) {
		if *policyPath == "" {
			return nil, fmt.Errorf("%s: -policy is required", cmd)
		}
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			return nil, err
		}
		pol := policy.New()
		if err := json.Unmarshal(data, pol); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", *policyPath, err)
		}
		return pol, nil
	}

	switch cmd {
	case "add":
		if *agentURL == "" {
			return fmt.Errorf("add: -agent-url is required")
		}
		pol, err := loadPolicy()
		if err != nil {
			return err
		}
		if err := tn.AddAgent(*agentID, *agentURL, pol); err != nil {
			return err
		}
		fmt.Printf("agent %s enrolled (%d policy entries)\n", *agentID, pol.Lines())
	case "status":
		st, err := tn.Status(*agentID)
		if err != nil {
			return err
		}
		fmt.Printf("agent:            %s\n", st.AgentID)
		fmt.Printf("state:            %s\n", st.State)
		fmt.Printf("attestations:     %d\n", st.Attestations)
		fmt.Printf("verified entries: %d\n", st.VerifiedEntries)
		fmt.Printf("halted:           %v\n", st.Halted)
		if st.PolicyGeneration != 0 {
			fmt.Printf("policy gen:       %d\n", st.PolicyGeneration)
		}
		if st.ShadowGeneration != 0 {
			fmt.Printf("shadow gen:       %d (candidate under evaluation)\n", st.ShadowGeneration)
		}
		if st.LastCheckLevel != "" {
			fmt.Printf("last check:       %s\n", st.LastCheckLevel)
		}
		if st.SessionActive {
			fmt.Printf("session:          active (%d rounds since full quote)\n", st.SessionRounds)
		}
		if st.Degraded || st.ConsecutiveFaults > 0 {
			fmt.Printf("degraded:         %v (%d consecutive faults)\n", st.Degraded, st.ConsecutiveFaults)
		}
		if st.Breaker != "" && st.Breaker != "closed" {
			fmt.Printf("breaker:          %s", st.Breaker)
			if st.BreakerOpenUntil != "" {
				fmt.Printf(" (reprobe after %s)", st.BreakerOpenUntil)
			}
			fmt.Println()
		}
		for _, f := range st.Failures {
			fmt.Printf("failure: [%s] %s path=%s detail=%s\n", f.Time, f.Type, f.Path, f.Detail)
		}
	case "update-policy":
		pol, err := loadPolicy()
		if err != nil {
			return err
		}
		if err := tn.UpdatePolicy(*agentID, pol); err != nil {
			return err
		}
		fmt.Printf("policy for %s updated (%d entries)\n", *agentID, pol.Lines())
	case "resume":
		if err := tn.Resume(*agentID); err != nil {
			return err
		}
		fmt.Printf("agent %s resumed\n", *agentID)
	case "remove":
		if err := tn.RemoveAgent(*agentID); err != nil {
			return err
		}
		fmt.Printf("agent %s removed\n", *agentID)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	return nil
}

// runRollout drives the staged-rollout subcommands: begin a pipeline for a
// candidate policy, watch its stage, or abort it. These address the whole
// fleet, so they take no -agent-id.
func runRollout(tn *tenant.Tenant, cmd string, rest []string) error {
	switch cmd {
	case "rollout-begin":
		sub := flag.NewFlagSet(cmd, flag.ExitOnError)
		policyPath := sub.String("policy", "", "candidate runtime policy JSON file")
		if err := sub.Parse(rest); err != nil {
			return err
		}
		if *policyPath == "" {
			return fmt.Errorf("rollout-begin: -policy is required")
		}
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			return err
		}
		pol := policy.New()
		if err := json.Unmarshal(data, pol); err != nil {
			return fmt.Errorf("parsing %s: %w", *policyPath, err)
		}
		gen, err := tn.BeginRollout(pol)
		if err != nil {
			return err
		}
		fmt.Printf("rollout generation %d begun (%d policy entries); watch with rollout-status\n",
			gen, pol.Lines())
	case "rollout-status":
		st, err := tn.RolloutStatus()
		if err != nil {
			return err
		}
		fmt.Printf("stage:          %s\n", st.Stage)
		if st.Generation != 0 {
			fmt.Printf("generation:     %d\n", st.Generation)
			fmt.Printf("targets:        %d (%d canaries)\n", len(st.Targets), len(st.Canaries))
			fmt.Printf("clean rounds:   %d/%d\n", st.CleanRounds, st.RequiredRounds)
		}
		if st.Tripped {
			fmt.Printf("TRIPPED:        %s\n", st.TripDetail)
		}
		if st.ShadowWouldFail > 0 || st.ShadowWouldPass > 0 {
			fmt.Printf("shadow diverge: %d would-fail, %d would-pass\n",
				st.ShadowWouldFail, st.ShadowWouldPass)
		}
		if st.LastHold != nil {
			fmt.Printf("last hold:      %s (archive seq %d > mirror seq %d)\n",
				st.LastHold.Time.Format("2006-01-02 15:04"),
				st.LastHold.Staleness.ArchiveSeq, st.LastHold.Staleness.MirrorSeq)
		}
		if len(st.Quarantined) > 0 {
			fmt.Printf("quarantined:    %v\n", st.Quarantined)
		}
		fmt.Printf("totals:         %d begun, %d promoted, %d rolled back, %d held\n",
			st.Stats.Begun, st.Stats.Promotions, st.Stats.Rollbacks, st.Stats.Holds)
	case "rollout-cancel":
		if err := tn.CancelRollout(); err != nil {
			return err
		}
		fmt.Println("rollout cancelled; candidate quarantined")
	}
	return nil
}

// runFleet drives the declarative reconciler: submit a desired-state
// spec, watch convergence, or show the outstanding delta.
func runFleet(tn *tenant.Tenant, cmd string, rest []string) error {
	switch cmd {
	case "fleet-apply":
		sub := flag.NewFlagSet(cmd, flag.ExitOnError)
		specPath := sub.String("spec", "", "desired-fleet spec JSON file")
		if err := sub.Parse(rest); err != nil {
			return err
		}
		if *specPath == "" {
			return fmt.Errorf("fleet-apply: -spec is required")
		}
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		version, diff, err := tn.ApplyFleetSpec(data)
		if err != nil {
			return err
		}
		fmt.Printf("fleet spec v%d applied: %d to enroll, %d to update, %d to withdraw\n",
			version, len(diff.Enrolls), len(diff.Updates), len(diff.Withdraws))
		if diff.Converged {
			fmt.Println("already converged")
		} else {
			fmt.Println("watch convergence with fleet-status")
		}
	case "fleet-status":
		st, err := tn.FleetStatus()
		if err != nil {
			return err
		}
		fmt.Printf("spec version:   %d (%d applies)\n", st.SpecVersion, st.Applies)
		fmt.Printf("managed agents: %d\n", st.Managed)
		if st.Converged {
			fmt.Printf("converged:      yes (v%d after %d ticks)\n", st.ConvergedVersion, st.ConvergedTicks)
		} else {
			fmt.Printf("converged:      no (%d enrolls, %d updates, %d withdraws pending)\n",
				st.Pending.Enrolls, st.Pending.Updates, st.Pending.Withdraws)
		}
		if len(st.Degraded) > 0 {
			fmt.Printf("degraded:       %v\n", st.Degraded)
		}
		for name, ts := range st.Tenants {
			fmt.Printf("tenant %-12s %d agents", name, ts.Agents)
			if ts.MaxAgents > 0 {
				fmt.Printf(" (quota %d)", ts.MaxAgents)
			}
			if ts.Degraded > 0 {
				fmt.Printf(", %d degraded", ts.Degraded)
			}
			fmt.Println()
		}
		fmt.Printf("totals:         %d enrolled, %d withdrawn, %d updated, %d retries, %d degraded\n",
			st.Counters.Enrolls, st.Counters.Withdraws, st.Counters.Updates,
			st.Counters.Retries, st.Counters.Degraded)
	case "fleet-diff":
		diff, err := tn.FleetDiff()
		if err != nil {
			return err
		}
		if diff.Converged {
			fmt.Printf("spec v%d: converged, nothing to do\n", diff.Version)
			return nil
		}
		for _, id := range diff.Enrolls {
			fmt.Printf("+ enroll   %s\n", id)
		}
		for _, id := range diff.Updates {
			fmt.Printf("~ update   %s\n", id)
		}
		for _, id := range diff.Withdraws {
			fmt.Printf("- withdraw %s\n", id)
		}
		fmt.Printf("spec v%d: %d operation(s) outstanding\n", diff.Version,
			len(diff.Enrolls)+len(diff.Updates)+len(diff.Withdraws))
	}
	return nil
}
