// Command keylime-tenant is the operator's management tool: it enrolls
// agents with a verifier, pushes runtime policies, queries attestation
// status, and resumes halted agents.
//
// Usage:
//
//	keylime-tenant -verifier http://localhost:8893 add -agent-id <uuid> \
//	  -agent-url http://localhost:8892 -policy policy.json
//	keylime-tenant -verifier http://localhost:8893 status -agent-id <uuid>
//	keylime-tenant -verifier http://localhost:8893 update-policy -agent-id <uuid> -policy policy.json
//	keylime-tenant -verifier http://localhost:8893 resume -agent-id <uuid>
//	keylime-tenant -verifier http://localhost:8893 remove -agent-id <uuid>
//	keylime-tenant -verifier http://localhost:8893 rollout-begin -policy policy.json
//	keylime-tenant -verifier http://localhost:8893 rollout-status
//	keylime-tenant -verifier http://localhost:8893 rollout-cancel
//
// The rollout-* subcommands drive the verifier's staged rollout pipeline
// (freshness gate → shadow evaluation → canary → fleet) instead of the
// one-shot update-policy swap.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/keylime/tenant"
	"repro/internal/policy"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("keylime-tenant: %v", err)
	}
}

func run() error {
	verifierURL := flag.String("verifier", "http://localhost:8893", "verifier management base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand: add | status | update-policy | resume | remove | list | " +
			"rollout-begin | rollout-status | rollout-cancel")
	}
	cmd, rest := args[0], args[1:]
	tn := tenant.New(*verifierURL)

	switch cmd {
	case "list":
		ids, err := tn.ListAgents()
		if err != nil {
			return err
		}
		for _, id := range ids {
			fmt.Println(id)
		}
		fmt.Printf("%d agent(s) monitored\n", len(ids))
		return nil
	case "rollout-begin", "rollout-status", "rollout-cancel":
		return runRollout(tn, cmd, rest)
	}

	sub := flag.NewFlagSet(cmd, flag.ExitOnError)
	agentID := sub.String("agent-id", "", "agent UUID")
	agentURL := sub.String("agent-url", "", "agent quote API base URL (add only)")
	policyPath := sub.String("policy", "", "runtime policy JSON file (add / update-policy)")
	if err := sub.Parse(rest); err != nil {
		return err
	}
	if *agentID == "" {
		return fmt.Errorf("%s: -agent-id is required", cmd)
	}

	loadPolicy := func() (*policy.RuntimePolicy, error) {
		if *policyPath == "" {
			return nil, fmt.Errorf("%s: -policy is required", cmd)
		}
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			return nil, err
		}
		pol := policy.New()
		if err := json.Unmarshal(data, pol); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", *policyPath, err)
		}
		return pol, nil
	}

	switch cmd {
	case "add":
		if *agentURL == "" {
			return fmt.Errorf("add: -agent-url is required")
		}
		pol, err := loadPolicy()
		if err != nil {
			return err
		}
		if err := tn.AddAgent(*agentID, *agentURL, pol); err != nil {
			return err
		}
		fmt.Printf("agent %s enrolled (%d policy entries)\n", *agentID, pol.Lines())
	case "status":
		st, err := tn.Status(*agentID)
		if err != nil {
			return err
		}
		fmt.Printf("agent:            %s\n", st.AgentID)
		fmt.Printf("state:            %s\n", st.State)
		fmt.Printf("attestations:     %d\n", st.Attestations)
		fmt.Printf("verified entries: %d\n", st.VerifiedEntries)
		fmt.Printf("halted:           %v\n", st.Halted)
		if st.PolicyGeneration != 0 {
			fmt.Printf("policy gen:       %d\n", st.PolicyGeneration)
		}
		if st.ShadowGeneration != 0 {
			fmt.Printf("shadow gen:       %d (candidate under evaluation)\n", st.ShadowGeneration)
		}
		if st.LastCheckLevel != "" {
			fmt.Printf("last check:       %s\n", st.LastCheckLevel)
		}
		if st.SessionActive {
			fmt.Printf("session:          active (%d rounds since full quote)\n", st.SessionRounds)
		}
		if st.Degraded || st.ConsecutiveFaults > 0 {
			fmt.Printf("degraded:         %v (%d consecutive faults)\n", st.Degraded, st.ConsecutiveFaults)
		}
		if st.Breaker != "" && st.Breaker != "closed" {
			fmt.Printf("breaker:          %s", st.Breaker)
			if st.BreakerOpenUntil != "" {
				fmt.Printf(" (reprobe after %s)", st.BreakerOpenUntil)
			}
			fmt.Println()
		}
		for _, f := range st.Failures {
			fmt.Printf("failure: [%s] %s path=%s detail=%s\n", f.Time, f.Type, f.Path, f.Detail)
		}
	case "update-policy":
		pol, err := loadPolicy()
		if err != nil {
			return err
		}
		if err := tn.UpdatePolicy(*agentID, pol); err != nil {
			return err
		}
		fmt.Printf("policy for %s updated (%d entries)\n", *agentID, pol.Lines())
	case "resume":
		if err := tn.Resume(*agentID); err != nil {
			return err
		}
		fmt.Printf("agent %s resumed\n", *agentID)
	case "remove":
		if err := tn.RemoveAgent(*agentID); err != nil {
			return err
		}
		fmt.Printf("agent %s removed\n", *agentID)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	return nil
}

// runRollout drives the staged-rollout subcommands: begin a pipeline for a
// candidate policy, watch its stage, or abort it. These address the whole
// fleet, so they take no -agent-id.
func runRollout(tn *tenant.Tenant, cmd string, rest []string) error {
	switch cmd {
	case "rollout-begin":
		sub := flag.NewFlagSet(cmd, flag.ExitOnError)
		policyPath := sub.String("policy", "", "candidate runtime policy JSON file")
		if err := sub.Parse(rest); err != nil {
			return err
		}
		if *policyPath == "" {
			return fmt.Errorf("rollout-begin: -policy is required")
		}
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			return err
		}
		pol := policy.New()
		if err := json.Unmarshal(data, pol); err != nil {
			return fmt.Errorf("parsing %s: %w", *policyPath, err)
		}
		gen, err := tn.BeginRollout(pol)
		if err != nil {
			return err
		}
		fmt.Printf("rollout generation %d begun (%d policy entries); watch with rollout-status\n",
			gen, pol.Lines())
	case "rollout-status":
		st, err := tn.RolloutStatus()
		if err != nil {
			return err
		}
		fmt.Printf("stage:          %s\n", st.Stage)
		if st.Generation != 0 {
			fmt.Printf("generation:     %d\n", st.Generation)
			fmt.Printf("targets:        %d (%d canaries)\n", len(st.Targets), len(st.Canaries))
			fmt.Printf("clean rounds:   %d/%d\n", st.CleanRounds, st.RequiredRounds)
		}
		if st.Tripped {
			fmt.Printf("TRIPPED:        %s\n", st.TripDetail)
		}
		if st.ShadowWouldFail > 0 || st.ShadowWouldPass > 0 {
			fmt.Printf("shadow diverge: %d would-fail, %d would-pass\n",
				st.ShadowWouldFail, st.ShadowWouldPass)
		}
		if st.LastHold != nil {
			fmt.Printf("last hold:      %s (archive seq %d > mirror seq %d)\n",
				st.LastHold.Time.Format("2006-01-02 15:04"),
				st.LastHold.Staleness.ArchiveSeq, st.LastHold.Staleness.MirrorSeq)
		}
		if len(st.Quarantined) > 0 {
			fmt.Printf("quarantined:    %v\n", st.Quarantined)
		}
		fmt.Printf("totals:         %d begun, %d promoted, %d rolled back, %d held\n",
			st.Stats.Begun, st.Stats.Promotions, st.Stats.Rollbacks, st.Stats.Holds)
	case "rollout-cancel":
		if err := tn.CancelRollout(); err != nil {
			return err
		}
		fmt.Println("rollout cancelled; candidate quarantined")
	}
	return nil
}
