package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/keylime/custody"
	"repro/internal/keylime/dsse"
	"repro/internal/keylime/store"
	"repro/internal/keylime/tenant"
)

// runVerifyChain implements the offline chain-of-custody walk. It never
// talks to a verifier: point it at copies (or the live files) of the
// evidence artifacts and the keyring journal. A broken chain maps to
// the "rejection" exit code — re-running without fixing anything will
// fail again, which is exactly what that code means.
func runVerifyChain(args []string) error {
	sub := flag.NewFlagSet("verify-chain", flag.ExitOnError)
	auditLog := sub.String("audit-log", "", "sealed audit journal file")
	outbox := sub.String("outbox", "", "revocation outbox journal file")
	rolloutState := sub.String("rollout-state", "", "rollout store directory")
	keyringPath := sub.String("keyring", "", "DSSE keyring journal; without it only framing and hash-chain checks run")
	jsonOut := sub.Bool("json", false, "emit the full report as JSON")
	if err := sub.Parse(args); err != nil {
		return err
	}
	if *auditLog == "" && *outbox == "" && *rolloutState == "" {
		return fmt.Errorf("verify-chain: nothing to walk; pass -audit-log, -outbox, and/or -rollout-state")
	}
	var kr *dsse.Keyring
	if *keyringPath != "" {
		var err error
		kr, err = dsse.LoadKeyringFile(store.OS(), *keyringPath)
		if err != nil {
			return fmt.Errorf("verify-chain: loading keyring: %w", err)
		}
	}
	rep, err := custody.Verify(custody.Config{
		AuditLog:     *auditLog,
		Outbox:       *outbox,
		RolloutState: *rolloutState,
		Keyring:      kr,
	})
	if err != nil {
		return fmt.Errorf("verify-chain: %w", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Print(rep.Summary())
	}
	if !rep.OK() {
		return fmt.Errorf("%w: chain of custody broken: %s", tenant.ErrRejected, rep.FirstBroken)
	}
	return nil
}
