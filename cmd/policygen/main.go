// Command policygen runs the dynamic policy generator standalone over a
// synthetic distribution: it builds the initial policy, then simulates N
// days of upstream updates, regenerating the policy incrementally each day
// and printing the per-update statistics (the quantities behind the
// paper's Figs. 3-5).
//
// Usage:
//
//	policygen -days 31 -scale small -out policy.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/mirror"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("policygen: %v", err)
	}
}

func run() error {
	var (
		days      = flag.Int("days", 31, "days of updates to simulate")
		scaleName = flag.String("scale", "small", "distribution scale: small | paper")
		out       = flag.String("out", "policy.json", "write the final policy here")
		kernel    = flag.String("kernel", "5.15.0-100-generic", "running kernel version")
		seed      = flag.Int64("seed", 1, "workload seed")
		workers   = flag.Int("gen-workers", 0,
			"package-measurement worker pool size (0 = GOMAXPROCS); output is identical at any size")
	)
	flag.Parse()

	var scale workload.Scale
	switch *scaleName {
	case "small":
		scale = workload.ScaleSmall()
	case "paper":
		scale = workload.ScalePaper()
	default:
		return fmt.Errorf("unknown scale %q (small | paper)", *scaleName)
	}
	scale.Seed = *seed

	start := time.Date(2024, 2, 26, 5, 0, 0, 0, time.UTC)
	archive := mirror.NewArchive()
	base := workload.BaseRelease(scale, *kernel)
	if _, err := archive.Publish(start.Add(-24*time.Hour), base...); err != nil {
		return err
	}
	stream := workload.NewStream(archive, base, workload.DefaultStreamConfig(scale))
	mir := mirror.NewMirror(archive)
	gen := core.NewGenerator(mir, core.WithExcludes([]string{"/tmp/.*"}), core.WithWorkers(*workers))

	pol, rep, err := gen.GenerateInitial(start, *kernel)
	if err != nil {
		return err
	}
	fmt.Printf("initial policy: %d entries (%.1f MB), %d packages measured, modeled time %.1f min (wall %s, %d workers)\n",
		pol.Lines(), float64(pol.SizeBytes())/(1<<20), rep.PackagesChanged, rep.ModeledDuration.Minutes(),
		rep.MeasuredWallTime.Round(time.Millisecond), rep.Workers)

	running := *kernel
	for day := 1; day <= *days; day++ {
		at := start.Add(time.Duration(day) * 24 * time.Hour)
		if _, err := stream.PublishDay(at.Add(-2 * time.Hour)); err != nil {
			return err
		}
		pol, upd, err := gen.Update(at, running)
		if err != nil {
			return err
		}
		fmt.Printf("day %02d: %3d pkgs (%d exec, %d high-pri)  +%5d entries (%.2f MB)  %6.2f min  policy=%d lines\n",
			day, upd.PackagesChanged, upd.PackagesWithExecutables, upd.HighPriority,
			upd.EntriesAdded, float64(upd.BytesAdded)/(1<<20),
			upd.ModeledDuration.Minutes(), pol.Lines())
		for _, k := range upd.DeferredKernels {
			if _, added, err := gen.RefreshKernel(at.Add(time.Hour), k); err != nil {
				return err
			} else {
				fmt.Printf("day %02d: kernel %s staged (+%d entries), rebooting into it\n", day, k, added)
			}
			running = k
		}
		if _, err := gen.DedupAfterUpdate(); err != nil {
			return err
		}
	}

	final, err := gen.Policy()
	if err != nil {
		return err
	}
	data, err := json.Marshal(final)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("final policy: %d entries written to %s\n", final.Lines(), *out)
	return nil
}
