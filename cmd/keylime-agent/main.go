// Command keylime-agent runs a simulated prover node with its Keylime
// agent: it manufactures a TPM from the shared manufacturer CA bundle,
// installs a synthetic base OS, writes the matching runtime policy to a
// file (for the tenant to enroll with), registers with the registrar, and
// serves integrity quotes. With -activity it keeps executing random
// binaries so the IMA log grows like a live machine's.
//
// Usage:
//
//	keylime-agent -ca ca.pem -registrar http://localhost:8891 \
//	  -listen :8892 -policy-out policy.json -activity 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/keylime/agent"
	"repro/internal/machine"
	"repro/internal/mirror"
	"repro/internal/tpm"
	"repro/internal/vfs"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("keylime-agent: %v", err)
	}
}

func run() error {
	var (
		listen       = flag.String("listen", ":8892", "address to serve the quote API on")
		caPath       = flag.String("ca", "ca.pem", "manufacturer CA bundle (with key) to manufacture the TPM from")
		registrarURL = flag.String("registrar", "http://localhost:8891", "registrar base URL")
		contactURL   = flag.String("contact-url", "", "URL the verifier should poll (default http://localhost<listen>)")
		uuid         = flag.String("uuid", "d432fbb3-d2f1-4a97-9ef7-75bd81c00001", "agent UUID")
		policyOut    = flag.String("policy-out", "policy.json", "write the machine's runtime policy here")
		activity     = flag.Duration("activity", 0, "execute a random binary this often (0 = off)")
		seed         = flag.Int64("seed", 1, "workload seed")
		sessionTTL   = flag.Duration("session-ttl", agent.DefaultSessionTTL,
			"discard verifier attestation sessions idle this long")
		maxSessions = flag.Int("max-sessions", agent.DefaultSessionLimit,
			"attestation sessions kept before evicting the least recently used")
	)
	flag.Parse()

	data, err := os.ReadFile(*caPath)
	if err != nil {
		return fmt.Errorf("reading CA bundle: %w", err)
	}
	ca, err := tpm.LoadManufacturerCA(data)
	if err != nil {
		return err
	}
	m, err := machine.New(ca, machine.WithUUID(*uuid), machine.WithHostname("sim-node"))
	if err != nil {
		return err
	}

	// Install a synthetic base OS.
	scale := workload.ScaleSmall()
	scale.Seed = *seed
	archive := mirror.NewArchive()
	base := workload.BaseRelease(scale, m.RunningKernel())
	if _, err := archive.Publish(time.Now(), base...); err != nil {
		return err
	}
	mir := mirror.NewMirror(archive)
	mir.Sync(time.Now())
	if err := m.InstallRelease(mir.Release()); err != nil {
		return err
	}

	// Snapshot the runtime policy the verifier should use.
	pol, err := core.SnapshotPolicy(m.FS(), []string{"/tmp/.*"})
	if err != nil {
		return err
	}
	polJSON, err := json.MarshalIndent(pol, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*policyOut, polJSON, 0o644); err != nil {
		return fmt.Errorf("writing policy: %w", err)
	}
	fmt.Printf("wrote runtime policy (%d entries) to %s\n", pol.Lines(), *policyOut)

	ag := agent.New(m, agent.WithSessionTTL(*sessionTTL), agent.WithSessionLimit(*maxSessions))
	contact := *contactURL
	if contact == "" {
		contact = "http://localhost" + *listen
	}
	if err := ag.Register(*registrarURL, contact); err != nil {
		return err
	}
	fmt.Printf("registered agent %s with %s\n", *uuid, *registrarURL)

	if *activity > 0 {
		var execs []string
		if err := m.FS().Walk("/usr/bin", func(info vfs.FileInfo) error {
			if info.Mode.IsExec() {
				execs = append(execs, info.Path)
			}
			return nil
		}); err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(*seed))
		go func() {
			ticker := time.NewTicker(*activity)
			defer ticker.Stop()
			for range ticker.C {
				if len(execs) == 0 {
					continue
				}
				p := execs[rng.Intn(len(execs))]
				if err := m.Exec(p); err != nil {
					log.Printf("activity exec %s: %v", p, err)
				}
			}
		}()
		fmt.Printf("background activity every %v\n", *activity)
	}

	fmt.Printf("keylime-agent listening on %s\n", *listen)
	return http.ListenAndServe(*listen, ag.Handler())
}
