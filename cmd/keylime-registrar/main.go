// Command keylime-registrar runs the Keylime registrar as a standalone HTTP
// service. It trusts the TPM manufacturer CA in the given bundle; with
// -init it creates a fresh simulated manufacturer first (certificate + key)
// so agent hosts can manufacture TPMs that chain to it.
//
// Usage:
//
//	keylime-registrar -init -ca ca.pem -listen :8891
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/keylime/registrar"
	"repro/internal/tpm"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("keylime-registrar: %v", err)
	}
}

func run() error {
	var (
		listen = flag.String("listen", ":8891", "address to serve the registrar API on")
		caPath = flag.String("ca", "ca.pem", "manufacturer CA bundle (root certificate, optionally with key)")
		doInit = flag.Bool("init", false, "create the CA bundle if it does not exist")
	)
	flag.Parse()

	if _, err := os.Stat(*caPath); os.IsNotExist(err) {
		if !*doInit {
			return fmt.Errorf("CA bundle %s not found (pass -init to create a simulated manufacturer)", *caPath)
		}
		ca, err := tpm.NewManufacturerCA(rand.Reader)
		if err != nil {
			return err
		}
		bundle, err := ca.MarshalPEM()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*caPath, bundle, 0o600); err != nil {
			return fmt.Errorf("writing CA bundle: %w", err)
		}
		fmt.Printf("created simulated manufacturer CA bundle at %s\n", *caPath)
	}
	data, err := os.ReadFile(*caPath)
	if err != nil {
		return fmt.Errorf("reading CA bundle: %w", err)
	}
	roots, err := tpm.LoadCARoots(data)
	if err != nil {
		return err
	}
	reg := registrar.New(roots)
	fmt.Printf("keylime-registrar listening on %s (trusting %s)\n", *listen, *caPath)
	return http.ListenAndServe(*listen, reg.Handler())
}
