// Command keylime-verifier runs the Keylime verifier as a standalone HTTP
// service: it serves the management API (used by keylime-tenant) and polls
// every enrolled agent at the configured interval.
//
// Usage:
//
//	keylime-verifier -listen :8893 -registrar http://localhost:8891 \
//	  -poll-interval 10s [-continue-on-failure]
//
// Verification state survives restarts via -state. The default mode keeps
// a crash-safe journal+snapshot directory and persists only the agents
// each sweep actually changed; -state-mode snapshot keeps the legacy
// single-JSON-file format (written atomically). The audit log (-audit-log)
// is an fsynced journal appended record by record, and -outbox journals
// revocation notifications for at-least-once delivery across crashes.
//
// With -keyring the verifier seals its whole evidence chain of custody
// under DSSE signatures: per-sweep checkpoints in the audit journal,
// revocation notifications in the outbox, rollout policy bundles, and
// cluster replication frames. -keyring-rotate mints a new signing key
// with an overlap window so evidence sealed before the rotation stays
// verifiable; `keylime-tenant verify-chain` walks the artifacts offline.
//
// Policy updates can go through the staged rollout pipeline (freshness
// gate → shadow evaluation → canary → fleet promotion, with automatic
// rollback) served at /v2/rollout/* and driven by keylime-tenant's
// rollout-* subcommands; -rollout-state journals generations so a crash
// mid-rollout recovers to a consistent fleet. See the -rollout-* flags.
//
// Multiple verifiers form a cluster with -node-id and -peers: agents are
// partitioned across replicas on a consistent-hash ring, each shard's
// journal is replicated to ring standbys, and a lease-elected coordinator
// fails dead shards over so attestation continues from the replicated
// frontier. Cluster state rides the same -state journal directory; peers
// exchange RPCs on /v2/cluster/rpc and report health on
// /v2/cluster/status. SIGTERM drains gracefully in every mode: the HTTP
// listener stops, the in-flight sweep finishes, journals and the outbox
// are flushed, and the process exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only via -pprof
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/keylime/audit"
	"repro/internal/keylime/cluster"
	"repro/internal/keylime/dsse"
	"repro/internal/keylime/reconcile"
	"repro/internal/keylime/rollout"
	"repro/internal/keylime/store"
	"repro/internal/keylime/verifier"
	"repro/internal/keylime/webhook"
	"repro/internal/simclock"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("keylime-verifier: %v", err)
	}
}

func run() error {
	var (
		listen       = flag.String("listen", ":8893", "address to serve the management API on")
		registrarURL = flag.String("registrar", "http://localhost:8891", "registrar base URL")
		pollInterval = flag.Duration("poll-interval", 10*time.Second, "attestation polling interval")
		continueOn   = flag.Bool("continue-on-failure", false,
			"keep polling after attestation failures (the paper's P2 mitigation)")
		statePath = flag.String("state", "", "persist/restore verification state here "+
			"(a journal directory by default; a JSON file with -state-mode snapshot)")
		stateMode = flag.String("state-mode", "journal",
			"state persistence mode: journal (incremental, crash-safe) or snapshot (legacy full-file)")
		stateLenient = flag.Bool("state-lenient", false,
			"skip-and-report corrupt state rows on restore instead of refusing to start")
		persistBatch = flag.Int("persist-batch", 256,
			"max journal records committed per fsync: the sweep's dirty agent rows and "+
				"audit records are batched into single write vectors and the audit/outbox "+
				"journals group-commit concurrent appends (0 restores per-record fsyncs)")
		persistMaxDelay = flag.Duration("persist-max-delay", 2*time.Millisecond,
			"longest a group-committed audit/outbox append waits for batch "+
				"co-travellers before its fsync is issued anyway")
		keyringPath = flag.String("keyring", "", "journaled DSSE keyring path; arms chain-of-custody "+
			"sealing end to end: audit checkpoints, revocation notifications, rollout policy "+
			"bundles, and cluster replication frames (created with an initial key if absent)")
		keyringRotate = flag.Bool("keyring-rotate", false,
			"mint a new signing key at startup; prior keys keep cosigning (rotation overlap) "+
				"until retired, so old evidence stays verifiable across the keyid boundary")
		auditPath  = flag.String("audit-log", "", "append the durable attestation journal at this path")
		outboxPath = flag.String("outbox", "", "journal revocation notifications here for "+
			"at-least-once delivery across restarts (requires -webhook)")
		webhookURL = flag.String("webhook", "", "POST signed revocation notifications to this URL")
		webhookKey = flag.String("webhook-secret", "", "HMAC secret for webhook signatures")

		retryAttempts = flag.Int("retry-attempts", 3, "quote/registrar fetch attempts per round")
		retryBackoff  = flag.Duration("retry-backoff", 200*time.Millisecond,
			"initial retry backoff (doubled per retry, jittered)")
		retryMaxBackoff = flag.Duration("retry-max-backoff", 5*time.Second, "retry backoff cap")
		requestTimeout  = flag.Duration("request-timeout", 30*time.Second,
			"per-request timeout including the body read")
		faultBudget = flag.Int("comms-fault-budget", 3,
			"consecutive faulted rounds tolerated before a comms failure is recorded (never halts)")
		breakerThreshold = flag.Int("breaker-threshold", 5,
			"consecutive faulted rounds that quarantine an agent (negative disables)")
		breakerInterval = flag.Duration("breaker-interval", time.Minute, "initial quarantine reprobe interval")
		breakerMax      = flag.Duration("breaker-max-interval", 15*time.Minute, "quarantine reprobe interval cap")
		pollConcurrency = flag.Int("poll-concurrency", 0,
			"concurrent agent rounds per polling sweep (0 = auto: 4x GOMAXPROCS, minimum 8)")
		verifyWorkers = flag.Int("verify-workers", 0,
			"worker pool for validating large IMA entry batches (0 = GOMAXPROCS)")
		cryptoWorkers = flag.Int("crypto-workers", 0,
			"dedicated workers batching full-quote signature verification "+
				"(0 = GOMAXPROCS, negative verifies inline on the sweep workers)")

		sessionEvery = flag.Int("session-every", 16,
			"force a full TPM quote every Nth round, authenticating the rounds "+
				"between with the per-agent session MAC (0 or 1 disables sessions)")
		sessionTTL = flag.Duration("session-ttl", 10*time.Minute,
			"maximum session-key age before the next round forces a full quote (0 = no expiry)")
		wireFormat = flag.String("wire-format", "binary",
			"attestation wire format: binary (compact frames, JSON fallback for "+
				"old agents) or json")

		pprofAddr = flag.String("pprof", "",
			"serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")

		rolloutState = flag.String("rollout-state", "", "journal staged policy rollouts in this "+
			"directory so a crash mid-rollout recovers to a consistent generation")
		rolloutShadowRounds = flag.Int("rollout-shadow-rounds", 3,
			"consecutive clean shadow rounds every agent needs before canary promotion")
		rolloutCanary = flag.Int("rollout-canary", 1,
			"agents promoted first as canaries during a staged rollout")
		rolloutCanaryRounds = flag.Int("rollout-canary-rounds", 2,
			"clean post-promotion rounds every canary needs before fleet promotion")
		rolloutTripwire = flag.Int("rollout-tripwire", 1,
			"new failures on any canary that trip the rollback tripwire")
		rolloutAutoRollback = flag.Bool("rollout-auto-rollback", true,
			"revert canaries and quarantine the candidate automatically when the tripwire fires "+
				"(false freezes the rollout for the operator instead)")

		reconcileOn = flag.Bool("reconcile", false,
			"enable the declarative fleet reconciler: desired-state specs applied via "+
				"keylime-tenant fleet-apply are journaled and continuously converged "+
				"(requires -reconcile-state)")
		reconcileState = flag.String("reconcile-state", "",
			"journal the desired-fleet spec and managed set in this directory so a "+
				"killed reconciler resumes without duplicate enrollments or lost withdrawals")
		reconcileInterval = flag.Duration("reconcile-interval", 10*time.Second,
			"how often the reconcile loop diffs desired vs actual state")
		tenantQuota = flag.Int("tenant-quota", 0,
			"default max enrolled agents per tenant (0 = unlimited; per-tenant spec overrides win)")
		tenantRate = flag.Float64("tenant-rate", 0,
			"default reconcile-op token-bucket rate per tenant in ops/sec (0 = unlimited)")

		nodeID = flag.String("node-id", "", "this verifier's cluster identity; enables cluster "+
			"mode (must appear in -peers)")
		peersFlag = flag.String("peers", "", "static cluster membership as comma-separated "+
			"id=base-url pairs, e.g. v1=http://10.0.0.1:8893,v2=http://10.0.0.2:8893 "+
			"(include this node)")
		replicas         = flag.Int("replicas", 1, "ring standbys that replicate each shard's journal")
		clusterHeartbeat = flag.Duration("cluster-heartbeat", time.Second,
			"coordinator heartbeat cadence; a peer silent for 4 heartbeats is failed over")
	)
	flag.Parse()
	if *stateMode != "journal" && *stateMode != "snapshot" {
		return fmt.Errorf("unknown -state-mode %q (want journal or snapshot)", *stateMode)
	}
	if *outboxPath != "" && *webhookURL == "" {
		return fmt.Errorf("-outbox requires -webhook")
	}
	if *wireFormat != "binary" && *wireFormat != "json" {
		return fmt.Errorf("unknown -wire-format %q (want binary or json)", *wireFormat)
	}
	if *reconcileOn && *reconcileState == "" {
		return fmt.Errorf("-reconcile requires -reconcile-state (the journaled spec is the whole point)")
	}
	if *keyringRotate && *keyringPath == "" {
		return fmt.Errorf("-keyring-rotate requires -keyring")
	}
	clusterMode := *nodeID != "" || *peersFlag != ""
	var peerAddrs map[string]string
	if clusterMode {
		if *nodeID == "" || *peersFlag == "" {
			return fmt.Errorf("cluster mode needs both -node-id and -peers")
		}
		var err error
		peerAddrs, err = parsePeers(*peersFlag)
		if err != nil {
			return err
		}
		if _, ok := peerAddrs[*nodeID]; !ok {
			return fmt.Errorf("-node-id %q not listed in -peers", *nodeID)
		}
		if *statePath == "" || *stateMode != "journal" {
			return fmt.Errorf("cluster mode requires -state with -state-mode journal " +
				"(the journal is what gets replicated to standbys)")
		}
	}

	// SIGTERM/SIGINT begin a graceful drain rather than killing the
	// process: a verifier that dies mid-sweep silently stops attesting its
	// shard, which the paper ranks worse than failing loudly.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stopSignals()

	opts := []verifier.Option{
		verifier.WithPollInterval(*pollInterval),
		verifier.WithContinueOnFailure(*continueOn),
		verifier.WithRetryPolicy(verifier.RetryPolicy{
			MaxAttempts:    *retryAttempts,
			InitialBackoff: *retryBackoff,
			MaxBackoff:     *retryMaxBackoff,
			RequestTimeout: *requestTimeout,
		}),
		verifier.WithCommsFaultBudget(*faultBudget),
		verifier.WithCircuitBreaker(verifier.BreakerConfig{
			Threshold:       *breakerThreshold,
			InitialInterval: *breakerInterval,
			MaxInterval:     *breakerMax,
		}),
		verifier.WithPollConcurrency(*pollConcurrency),
		verifier.WithVerifyWorkers(*verifyWorkers),
		verifier.WithSessionPolicy(*sessionEvery, *sessionTTL),
		verifier.WithBinaryWireFormat(*wireFormat == "binary"),
		verifier.WithBatchVerify(*cryptoWorkers),
	}

	// Every durable write goes through one counting filesystem so the
	// persist stats provider reports real Write/Sync syscall counts — the
	// number an operator needs to confirm group commit is actually
	// holding a sweep to a handful of fsyncs.
	iofs := store.NewCountingFS(store.OS())
	groupCommit := *persistBatch > 0
	var jopts []store.JournalOption
	if groupCommit {
		jopts = append(jopts, store.WithGroupCommit(*persistMaxDelay, *persistBatch))
	}

	// Chain of custody: one journaled keyring signs every evidence hop —
	// audit checkpoints, outbox revocations, rollout bundles, replication
	// frames. An empty ring mints its first key; -keyring-rotate starts an
	// overlap window (new key signs, old keys cosign) so evidence sealed
	// either side of the boundary verifies against the same ring.
	var keyring *dsse.Keyring
	if *keyringPath != "" {
		kr, err := dsse.OpenKeyring(iofs, *keyringPath, jopts...)
		if err != nil {
			return fmt.Errorf("opening keyring %s: %w", *keyringPath, err)
		}
		defer func() { _ = kr.Close() }()
		if !kr.CanSign() || *keyringRotate {
			kid, err := kr.Rotate()
			if err != nil {
				return fmt.Errorf("rotating keyring %s: %w", *keyringPath, err)
			}
			fmt.Printf("keyring %s: new signing key %s\n", *keyringPath, kid)
		} else {
			fmt.Printf("keyring %s: signing key %s\n", *keyringPath, kr.ActiveKeyID())
		}
		keyring = kr
	}

	// Audit: every sealed record is journaled and fsynced before the
	// verifier acknowledges it — the durable chain always ends at the
	// last recorded verdict. With -persist-batch the whole sweep commits
	// as one write vector under a single fsync (batch granularity, same
	// commit-before-ack ordering).
	if *auditPath != "" {
		jl, err := audit.OpenJournal(iofs, *auditPath, jopts...)
		if err != nil {
			return fmt.Errorf("opening audit journal: %w", err)
		}
		defer func() { _ = jl.Close() }()
		if n := jl.Recovered(); n > 0 {
			fmt.Printf("audit journal %s: recovered %d records\n", *auditPath, n)
		}
		if keyring != nil {
			// Every sweep's batch gains a signed checkpoint over the chain
			// head; verify-chain walks them offline.
			jl.SealCheckpoints(keyring)
		}
		opts = append(opts, verifier.WithAuditLog(jl.Log), verifier.WithAuditBatch(groupCommit))
	}

	var notifier *webhook.Notifier
	var outbox *webhook.Outbox
	if *webhookURL != "" {
		cfg := webhook.Config{
			Endpoints: []string{*webhookURL},
			Secret:    []byte(*webhookKey),
			Keyring:   keyring,
		}
		if *outboxPath != "" {
			ob, err := webhook.OpenOutbox(iofs, *outboxPath, jopts...)
			if err != nil {
				return fmt.Errorf("opening outbox: %w", err)
			}
			defer func() { _ = ob.Close() }()
			if n := ob.Len(); n > 0 {
				fmt.Printf("outbox %s: replaying %d pending notifications\n", *outboxPath, n)
			}
			cfg.Outbox = ob
			outbox = ob
		}
		notifier = webhook.New(cfg)
		defer notifier.Close()
		opts = append(opts, verifier.WithRevocationHandler(notifier.Handler()))
	} else {
		opts = append(opts, verifier.WithRevocationHandler(func(agentID string, f verifier.Failure) {
			log.Printf("REVOCATION agent=%s type=%s path=%s detail=%s", agentID, f.Type, f.Path, f.Detail)
		}))
	}
	v := verifier.New(*registrarURL, opts...)
	defer v.Close()

	// Profiling endpoint (off by default): -pprof serves the standard
	// net/http/pprof handlers on their own listener, kept away from the
	// management API so profiles are never exposed on the service port.
	if *pprofAddr != "" {
		go func() {
			// The pprof handlers register on http.DefaultServeMux at import.
			log.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
		fmt.Printf("pprof listening on %s\n", *pprofAddr)
	}

	// persist is invoked after every sweep and reports how many rows it
	// made durable; it must not swallow errors — a verifier that silently
	// stops persisting re-trusts from scratch after its next crash. In
	// cluster mode the node journals agent rows itself (under the
	// replicated a/ prefix), so persist stays a no-op.
	persist := func() int { return 0 }
	// pm backs the "persist" stats provider: the persist-error counter
	// that used to live only in the process log, plus per-sweep persist
	// latency and the fsync counts that prove group commit is working.
	var pm struct {
		sync.Mutex
		sweeps    int
		errs      int
		lastRows  int
		lastDur   time.Duration
		lastSyncs uint64
	}
	logPersistErr := func(err error) {
		pm.Lock()
		pm.errs++
		n := pm.errs
		pm.Unlock()
		log.Printf("state persist error (%d total): %v", n, err)
	}

	var st *store.Store
	switch {
	case *statePath == "":
	case *stateMode == "journal":
		var err error
		st, err = store.Open(*statePath, store.WithStoreFS(iofs))
		if err != nil {
			return fmt.Errorf("opening state store %s: %w", *statePath, err)
		}
		defer func() { _ = st.Close() }()
		if clusterMode {
			break // cluster.NewNode restores and persists the agent rows
		}
		// Rows that failed to persist are retried next sweep.
		if err := restoreFromStore(v, st, *stateLenient); err != nil {
			return err
		}
		retryPut := map[string][]byte{}
		retryDel := map[string]bool{}
		persist = func() int {
			changed, removed, err := v.ExportDirty()
			if err != nil {
				// ExportDirty re-marked the drained IDs; next sweep retries.
				logPersistErr(err)
				return 0
			}
			for _, as := range changed {
				data, err := json.Marshal(as)
				if err != nil {
					logPersistErr(fmt.Errorf("encoding agent %s: %w", as.AgentID, err))
					continue
				}
				retryPut[as.AgentID] = data
				delete(retryDel, as.AgentID)
			}
			for _, id := range removed {
				retryDel[id] = true
				delete(retryPut, id)
			}
			if groupCommit {
				// The whole sweep's dirty rows in one journal write vector,
				// one fsync. Per-agent rows replay independently, so a torn
				// write recovering a prefix just means a smaller sweep; the
				// rest stays in the retry maps for the next one.
				batch := make([]store.KV, 0, len(retryPut)+len(retryDel))
				for id, data := range retryPut {
					batch = append(batch, store.KV{Key: id, Value: data})
				}
				for id := range retryDel {
					batch = append(batch, store.KV{Key: id, Delete: true})
				}
				if len(batch) == 0 {
					return 0
				}
				if err := st.PutBatch(batch); err != nil {
					logPersistErr(fmt.Errorf("journaling %d agent rows: %w", len(batch), err))
					return 0
				}
				clear(retryPut)
				clear(retryDel)
				return len(batch)
			}
			rows := 0
			for id, data := range retryPut {
				if err := st.Put(id, data); err != nil {
					logPersistErr(fmt.Errorf("journaling agent %s: %w", id, err))
					continue
				}
				delete(retryPut, id)
				rows++
			}
			for id := range retryDel {
				if err := st.Delete(id); err != nil {
					logPersistErr(fmt.Errorf("journaling removal of %s: %w", id, err))
					continue
				}
				delete(retryDel, id)
				rows++
			}
			return rows
		}
	default: // legacy full-snapshot file, now written atomically
		if data, err := os.ReadFile(*statePath); err == nil {
			var snap verifier.Snapshot
			if err := json.Unmarshal(data, &snap); err != nil {
				return fmt.Errorf("parsing state %s: %w", *statePath, err)
			}
			if err := restoreSnapshot(v, snap, *stateLenient); err != nil {
				return err
			}
			fmt.Printf("restored %d agents from %s\n", len(snap.Agents), *statePath)
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("reading state %s: %w", *statePath, err)
		}
		persist = func() int {
			snap, err := v.ExportState()
			if err != nil {
				logPersistErr(err)
				return 0
			}
			data, err := json.Marshal(snap)
			if err != nil {
				logPersistErr(err)
				return 0
			}
			if err := store.WriteFileAtomic(iofs, *statePath, data); err != nil {
				logPersistErr(fmt.Errorf("writing %s: %w", *statePath, err))
				return 0
			}
			return len(snap.Agents)
		}
	}

	// persistSweep wraps persist with latency and fsync accounting for
	// the "persist" stats provider.
	persistSweep := func() {
		start := time.Now()
		syncs0 := iofs.Counters().Syncs
		rows := persist()
		dur := time.Since(start)
		syncs := iofs.Counters().Syncs - syncs0
		pm.Lock()
		pm.sweeps++
		pm.lastRows = rows
		pm.lastDur = dur
		pm.lastSyncs = syncs
		pm.Unlock()
	}

	// Cluster membership: the node restores its shard from the journal,
	// elects a coordinator over the peer set, and replicates this shard's
	// agent rows to its ring standbys.
	var node *cluster.Node
	if clusterMode {
		ids := make([]string, 0, len(peerAddrs))
		for id := range peerAddrs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var err error
		node, err = cluster.NewNode(cluster.Config{
			NodeID:         *nodeID,
			Peers:          ids,
			Replicas:       *replicas,
			HeartbeatEvery: *clusterHeartbeat,
			Verifier:       v,
			Store:          st,
			Keyring:        keyring,
			Transport: &cluster.HTTPTransport{
				Addrs:  peerAddrs,
				Client: &http.Client{Timeout: *clusterHeartbeat * 4},
			},
			Clock: simclock.Real{},
			Logf:  log.Printf,
		})
		if err != nil {
			return err
		}
		defer node.Close()
		fmt.Printf("cluster node %s: %d peers, %d replica(s) per shard\n",
			*nodeID, len(ids), *replicas)
	}

	// Staged rollouts: the controller replaces blind UpdatePolicy swaps
	// with the gate→shadow→canary→promote pipeline. Constructed AFTER the
	// state restore so crash recovery re-applies the journaled stage to the
	// restored fleet, not an empty one.
	rolloutCfg := rollout.Config{
		Fleet:         v,
		ShadowRounds:  *rolloutShadowRounds,
		CanaryCount:   *rolloutCanary,
		CanaryRounds:  *rolloutCanaryRounds,
		TripThreshold: *rolloutTripwire,
		AutoRollback:  *rolloutAutoRollback,
		Keyring:       keyring,
		Logf:          log.Printf,
	}
	if node != nil {
		// Rollouts driven through this node span the whole cluster: the
		// fleet proxy routes per-agent calls to ring owners, canaries are
		// drawn from every shard, and generation numbers come from the
		// coordinator's majority-replicated sequence so no two shards ever
		// install the same number for different policies.
		rolloutCfg.Fleet = node.Fleet(ctx)
		rolloutCfg.CohortOf = node.OwnerOf
		rolloutCfg.Generations = node
	}
	if *rolloutState != "" {
		rst, err := store.Open(*rolloutState)
		if err != nil {
			return fmt.Errorf("opening rollout store %s: %w", *rolloutState, err)
		}
		defer func() { _ = rst.Close() }()
		rolloutCfg.Store = rst
	}
	if notifier != nil {
		// Rollout lifecycle events ride the same durable notification path
		// as revocations: journaled in the outbox (when configured) before
		// delivery, so a held window or a rollback is never silently lost.
		rolloutCfg.Notify = func(ev rollout.Event) {
			notifier.Notify(webhook.Notification{
				Type:   "rollout-" + ev.Type,
				Detail: fmt.Sprintf("generation %d: %s", ev.Generation, ev.Detail),
				Time:   ev.Time,
			})
		}
	}
	ctl, err := rollout.New(rolloutCfg)
	if err != nil {
		return fmt.Errorf("recovering rollout state: %w", err)
	}

	// Declarative fleet reconciler: operators submit desired-state specs
	// (keylime-tenant fleet-apply); the controller journals them before
	// any side effect and continuously drives the fleet toward them. In
	// cluster mode operations route through the fleet proxy to each
	// agent's ring owner, so one reconciler converges the whole cluster.
	var rec *reconcile.Controller
	if *reconcileOn {
		rcst, err := store.Open(*reconcileState, store.WithStoreFS(iofs))
		if err != nil {
			return fmt.Errorf("opening reconcile store %s: %w", *reconcileState, err)
		}
		defer func() { _ = rcst.Close() }()
		recCfg := reconcile.Config{
			Fleet:       v,
			Store:       rcst,
			Clock:       simclock.Real{},
			TenantQuota: *tenantQuota,
			TenantRate:  *tenantRate,
			Logf:        log.Printf,
		}
		if node != nil {
			recCfg.Fleet = node.Fleet(ctx)
		}
		if notifier != nil {
			// Lifecycle transitions ride the durable notification path like
			// rollout events. High-frequency per-op chatter (retries, rate
			// deferrals) stays in the bounded event log only.
			recCfg.Notify = func(ev reconcile.Event) {
				switch ev.Type {
				case reconcile.EventRetry, reconcile.EventRateDeferred, reconcile.EventQuotaDeferred:
					return
				}
				notifier.Notify(webhook.Notification{
					AgentID: ev.AgentID,
					Type:    "reconcile-" + ev.Type,
					Detail:  fmt.Sprintf("spec v%d: %s", ev.Version, ev.Detail),
					Time:    ev.Time,
				})
			}
		}
		rec, err = reconcile.New(recCfg)
		if err != nil {
			return fmt.Errorf("recovering reconcile state: %w", err)
		}
		v.RegisterStats("reconcile", func() any { return rec.Status() })
		fmt.Printf("reconcile: enabled (interval %v, tenant quota %d, tenant rate %.1f/s)\n",
			*reconcileInterval, *tenantQuota, *tenantRate)
	}

	// Operator observability (satellite): generation/rollout status and
	// undelivered-revocation counters via GET /v2/stats/{rollout,outbox}.
	v.RegisterStats("rollout", func() any { return ctl.Status() })
	if outbox != nil {
		v.RegisterStats("outbox", func() any { return outbox.Stats() })
	}
	// GET /v2/stats/persist: the persist-error counter plus per-sweep
	// persist latency and fsync counts. A healthy group-commit setup
	// shows last_sweep_fsyncs pinned at a handful no matter how many
	// rows the sweep persisted; a climbing errors counter means the
	// verifier will re-trust from scratch after its next crash.
	v.RegisterStats("persist", func() any {
		c := iofs.Counters()
		pm.Lock()
		defer pm.Unlock()
		return map[string]any{
			"sweeps":              pm.sweeps,
			"errors":              pm.errs,
			"last_sweep_rows":     pm.lastRows,
			"last_sweep_ms":       float64(pm.lastDur.Microseconds()) / 1000,
			"last_sweep_fsyncs":   pm.lastSyncs,
			"total_fsyncs":        c.Syncs,
			"total_journal_bytes": c.WriteBytes,
			"group_commit":        groupCommit,
			"persist_batch":       *persistBatch,
		}
	})

	if node != nil {
		go node.Run(ctx) // heartbeats, elections, journal replication
	}
	reconcileDone := make(chan struct{})
	if rec != nil {
		go func() {
			defer close(reconcileDone)
			ticker := time.NewTicker(*reconcileInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				if err := rec.Tick(); err != nil {
					log.Printf("reconcile tick: %v", err)
				}
			}
		}()
	} else {
		close(reconcileDone)
	}
	sweepDone := make(chan struct{})
	go func() {
		defer close(sweepDone)
		ticker := time.NewTicker(*pollInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return // drained: the previous sweep fully finished
			case <-ticker.C:
			}
			// The sweep itself runs on the background context so a SIGTERM
			// arriving mid-sweep lets in-flight rounds finish (bounded by
			// the per-request timeout) instead of surfacing as comms faults.
			var stats verifier.PollStats
			if node != nil {
				stats = node.Sweep(context.Background())
			} else {
				stats = v.PollAll(context.Background())
			}
			if stats.Failed > 0 || stats.Degraded > 0 || stats.Halted > 0 || stats.Quarantined > 0 {
				log.Printf("poll sweep: attested=%d failed=%d degraded=%d halted=%d quarantined=%d",
					stats.Attested, stats.Failed, stats.Degraded, stats.Halted, stats.Quarantined)
			}
			persistSweep()
			// Advance any in-flight rollout on the counters this sweep
			// accumulated.
			if st, err := ctl.Tick(); err != nil {
				log.Printf("rollout tick: %v", err)
			} else if st.Stage != rollout.StageIdle {
				log.Printf("rollout: generation %d at stage %s (clean rounds %d/%d)",
					st.Generation, st.Stage, st.CleanRounds, st.RequiredRounds)
			}
		}
	}()

	fmt.Printf("keylime-verifier listening on %s (registrar %s, poll every %v, continue-on-failure=%v)\n",
		*listen, *registrarURL, *pollInterval, *continueOn)
	mux := http.NewServeMux()
	mux.Handle("/v2/rollout/", ctl.Handler())
	if rec != nil {
		mux.Handle("/v2/reconcile/", rec.Handler())
	}
	if node != nil {
		mux.Handle(cluster.RPCPath, cluster.RPCHandler(node.Handle))
		mux.HandleFunc("/v2/cluster/status", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(node.Status())
		})
	}
	mux.Handle("/", v.ManagementHandler())

	srv := &http.Server{Addr: *listen, Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting management/RPC work, let the
	// in-flight sweep finish, then flush everything durable. The deferred
	// closes (journal store, rollout store, outbox, notifier, audit
	// journal) run as this returns nil, so the process exits 0 with every
	// verdict and pending revocation on disk.
	log.Printf("shutdown: signal received, draining")
	stopSignals() // a second signal kills immediately
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: HTTP server: %v", err)
	}
	<-sweepDone
	<-reconcileDone
	if node != nil {
		node.Close()
	}
	log.Printf("shutdown: sweep drained, state flushed")
	return nil
}

// parsePeers parses the -peers flag: comma-separated id=base-url pairs.
func parsePeers(s string) (map[string]string, error) {
	out := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		id, addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=base-url)", part)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("duplicate peer id %q in -peers", id)
		}
		out[id] = strings.TrimRight(addr, "/")
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-peers is empty")
	}
	return out, nil
}

// restoreFromStore rebuilds the verifier's agent table from the journal
// store's rows.
func restoreFromStore(v *verifier.Verifier, st *store.Store, lenient bool) error {
	rows := st.All()
	if len(rows) == 0 {
		return nil
	}
	var snap verifier.Snapshot
	var badRows int
	for id, data := range rows {
		var as verifier.AgentState
		if err := json.Unmarshal(data, &as); err != nil {
			if !lenient {
				return fmt.Errorf("parsing state row %s: %w", id, err)
			}
			badRows++
			log.Printf("state restore: skipping undecodable row %s: %v", id, err)
			continue
		}
		snap.Agents = append(snap.Agents, as)
	}
	if err := restoreSnapshot(v, snap, lenient); err != nil {
		return err
	}
	fmt.Printf("restored %d agents from journal (%d rows skipped)\n",
		v.AgentCount(), badRows)
	return nil
}

// restoreSnapshot loads a snapshot strictly or leniently per the flag.
func restoreSnapshot(v *verifier.Verifier, snap verifier.Snapshot, lenient bool) error {
	if !lenient {
		if err := v.RestoreState(snap); err != nil {
			return fmt.Errorf("restoring state: %w", err)
		}
		return nil
	}
	skipped, err := v.RestoreStateLenient(snap)
	if err != nil {
		return fmt.Errorf("restoring state: %w", err)
	}
	for _, s := range skipped {
		log.Printf("state restore: skipped corrupt row: %v", s)
	}
	return nil
}
