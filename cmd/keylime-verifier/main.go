// Command keylime-verifier runs the Keylime verifier as a standalone HTTP
// service: it serves the management API (used by keylime-tenant) and polls
// every enrolled agent at the configured interval.
//
// Usage:
//
//	keylime-verifier -listen :8893 -registrar http://localhost:8891 \
//	  -poll-interval 10s [-continue-on-failure]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/keylime/audit"
	"repro/internal/keylime/verifier"
	"repro/internal/keylime/webhook"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("keylime-verifier: %v", err)
	}
}

func run() error {
	var (
		listen       = flag.String("listen", ":8893", "address to serve the management API on")
		registrarURL = flag.String("registrar", "http://localhost:8891", "registrar base URL")
		pollInterval = flag.Duration("poll-interval", 10*time.Second, "attestation polling interval")
		continueOn   = flag.Bool("continue-on-failure", false,
			"keep polling after attestation failures (the paper's P2 mitigation)")
		statePath  = flag.String("state", "", "persist/restore verification state at this path")
		auditPath  = flag.String("audit-log", "", "append the durable attestation log to this path")
		webhookURL = flag.String("webhook", "", "POST signed revocation notifications to this URL")
		webhookKey = flag.String("webhook-secret", "", "HMAC secret for webhook signatures")

		retryAttempts = flag.Int("retry-attempts", 3, "quote/registrar fetch attempts per round")
		retryBackoff  = flag.Duration("retry-backoff", 200*time.Millisecond,
			"initial retry backoff (doubled per retry, jittered)")
		retryMaxBackoff = flag.Duration("retry-max-backoff", 5*time.Second, "retry backoff cap")
		requestTimeout  = flag.Duration("request-timeout", 30*time.Second,
			"per-request timeout including the body read")
		faultBudget = flag.Int("comms-fault-budget", 3,
			"consecutive faulted rounds tolerated before a comms failure is recorded (never halts)")
		breakerThreshold = flag.Int("breaker-threshold", 5,
			"consecutive faulted rounds that quarantine an agent (negative disables)")
		breakerInterval = flag.Duration("breaker-interval", time.Minute, "initial quarantine reprobe interval")
		breakerMax      = flag.Duration("breaker-max-interval", 15*time.Minute, "quarantine reprobe interval cap")
		pollConcurrency = flag.Int("poll-concurrency", 0,
			"concurrent agent rounds per polling sweep (0 = auto: 4x GOMAXPROCS, minimum 8)")
		verifyWorkers   = flag.Int("verify-workers", 0,
			"worker pool for validating large IMA entry batches (0 = GOMAXPROCS)")
	)
	flag.Parse()

	auditLog := audit.NewLog()
	opts := []verifier.Option{
		verifier.WithPollInterval(*pollInterval),
		verifier.WithContinueOnFailure(*continueOn),
		verifier.WithRetryPolicy(verifier.RetryPolicy{
			MaxAttempts:    *retryAttempts,
			InitialBackoff: *retryBackoff,
			MaxBackoff:     *retryMaxBackoff,
			RequestTimeout: *requestTimeout,
		}),
		verifier.WithCommsFaultBudget(*faultBudget),
		verifier.WithCircuitBreaker(verifier.BreakerConfig{
			Threshold:       *breakerThreshold,
			InitialInterval: *breakerInterval,
			MaxInterval:     *breakerMax,
		}),
		verifier.WithPollConcurrency(*pollConcurrency),
		verifier.WithVerifyWorkers(*verifyWorkers),
	}
	if *auditPath != "" {
		opts = append(opts, verifier.WithAuditLog(auditLog))
	}
	var notifier *webhook.Notifier
	if *webhookURL != "" {
		notifier = webhook.New(webhook.Config{
			Endpoints: []string{*webhookURL},
			Secret:    []byte(*webhookKey),
		})
		defer notifier.Close()
		opts = append(opts, verifier.WithRevocationHandler(notifier.Handler()))
	} else {
		opts = append(opts, verifier.WithRevocationHandler(func(agentID string, f verifier.Failure) {
			log.Printf("REVOCATION agent=%s type=%s path=%s detail=%s", agentID, f.Type, f.Path, f.Detail)
		}))
	}
	v := verifier.New(*registrarURL, opts...)

	if *statePath != "" {
		if data, err := os.ReadFile(*statePath); err == nil {
			var snap verifier.Snapshot
			if err := json.Unmarshal(data, &snap); err != nil {
				return fmt.Errorf("parsing state %s: %w", *statePath, err)
			}
			if err := v.RestoreState(snap); err != nil {
				return fmt.Errorf("restoring state: %w", err)
			}
			fmt.Printf("restored %d agents from %s\n", len(snap.Agents), *statePath)
		}
	}

	persist := func() {
		if *statePath != "" {
			snap, err := v.ExportState()
			if err == nil {
				if data, err := json.Marshal(snap); err == nil {
					_ = os.WriteFile(*statePath, data, 0o600)
				}
			}
		}
		if *auditPath != "" {
			f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
			if err == nil {
				_ = auditLog.Export(f)
				_ = f.Close()
			}
		}
	}
	go func() {
		ctx := context.Background()
		for {
			time.Sleep(*pollInterval)
			stats := v.PollAll(ctx)
			if stats.Failed > 0 || stats.Degraded > 0 || stats.Halted > 0 || stats.Quarantined > 0 {
				log.Printf("poll sweep: attested=%d failed=%d degraded=%d halted=%d quarantined=%d",
					stats.Attested, stats.Failed, stats.Degraded, stats.Halted, stats.Quarantined)
			}
			persist()
		}
	}()
	fmt.Printf("keylime-verifier listening on %s (registrar %s, poll every %v, continue-on-failure=%v)\n",
		*listen, *registrarURL, *pollInterval, *continueOn)
	return http.ListenAndServe(*listen, v.ManagementHandler())
}
