package repro_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out and micro-benchmarks
// of the attestation hot paths. Benchmarks report paper-facing quantities
// (minutes per policy update, packages and entries per update, detection
// outcomes) via b.ReportMetric alongside the usual ns/op.

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/attacks"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ima"
	"repro/internal/keylime/agent"
	"repro/internal/keylime/registrar"
	"repro/internal/keylime/verifier"
	"repro/internal/machine"
	"repro/internal/mirror"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/tpm"
	"repro/internal/vfs"
	"repro/internal/workload"
)

var benchEpoch = time.Date(2024, 2, 26, 5, 0, 0, 0, time.UTC)

const benchKernel = "5.15.0-100-generic"

// newBenchGenerator builds an archive + mirror + stream + generator with
// the initial policy already generated.
func newBenchGenerator(b *testing.B) (*workload.Stream, *core.Generator) {
	b.Helper()
	sc := workload.ScaleSmall()
	archive := mirror.NewArchive()
	base := workload.BaseRelease(sc, benchKernel)
	if _, err := archive.Publish(benchEpoch.Add(-24*time.Hour), base...); err != nil {
		b.Fatalf("Publish: %v", err)
	}
	stream := workload.NewStream(archive, base, workload.DefaultStreamConfig(sc))
	gen := core.NewGenerator(mirror.NewMirror(archive), core.WithExcludes([]string{"/tmp/.*"}))
	if _, _, err := gen.GenerateInitial(benchEpoch, benchKernel); err != nil {
		b.Fatalf("GenerateInitial: %v", err)
	}
	return stream, gen
}

// BenchmarkFig3DailyUpdateTime regenerates Fig. 3: each iteration is one
// day — upstream publishes, the mirror syncs, the policy updates
// incrementally. Reports modeled minutes per update (paper mean: 2.36).
func BenchmarkFig3DailyUpdateTime(b *testing.B) {
	stream, gen := newBenchGenerator(b)
	var totalMinutes float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := benchEpoch.Add(time.Duration(i+1) * 24 * time.Hour)
		if _, err := stream.PublishDay(at.Add(-2 * time.Hour)); err != nil {
			b.Fatalf("PublishDay: %v", err)
		}
		_, rep, err := gen.Update(at, benchKernel)
		if err != nil {
			b.Fatalf("Update: %v", err)
		}
		totalMinutes += rep.ModeledDuration.Minutes()
	}
	b.ReportMetric(totalMinutes/float64(b.N), "modeled-min/update")
}

// BenchmarkFig4PackagesPerUpdate regenerates Fig. 4: packages containing
// executables per daily update (paper mean: 16.5, high-priority 0.9).
func BenchmarkFig4PackagesPerUpdate(b *testing.B) {
	stream, gen := newBenchGenerator(b)
	var pkgs, high float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := benchEpoch.Add(time.Duration(i+1) * 24 * time.Hour)
		if _, err := stream.PublishDay(at.Add(-2 * time.Hour)); err != nil {
			b.Fatalf("PublishDay: %v", err)
		}
		_, rep, err := gen.Update(at, benchKernel)
		if err != nil {
			b.Fatalf("Update: %v", err)
		}
		pkgs += float64(rep.PackagesWithExecutables)
		high += float64(rep.HighPriority)
	}
	b.ReportMetric(pkgs/float64(b.N), "pkgs/update")
	b.ReportMetric(high/float64(b.N), "high-pri/update")
}

// BenchmarkFig5PolicyEntries regenerates Fig. 5: policy entries added per
// daily update (paper mean: 1,271 lines, 0.16 MB).
func BenchmarkFig5PolicyEntries(b *testing.B) {
	stream, gen := newBenchGenerator(b)
	var entries, bytes float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := benchEpoch.Add(time.Duration(i+1) * 24 * time.Hour)
		if _, err := stream.PublishDay(at.Add(-2 * time.Hour)); err != nil {
			b.Fatalf("PublishDay: %v", err)
		}
		_, rep, err := gen.Update(at, benchKernel)
		if err != nil {
			b.Fatalf("Update: %v", err)
		}
		entries += float64(rep.EntriesAdded)
		bytes += float64(rep.BytesAdded)
	}
	b.ReportMetric(entries/float64(b.N), "entries/update")
	b.ReportMetric(bytes/float64(b.N)/(1<<20), "MB/update")
}

// BenchmarkTable1UpdateSummary regenerates Table I: per-update cost at
// daily vs weekly cadence (paper: 2.36 vs 7.50 minutes).
func BenchmarkTable1UpdateSummary(b *testing.B) {
	for _, cadence := range []struct {
		name string
		days int
	}{{"daily", 1}, {"weekly", 7}} {
		b.Run(cadence.name, func(b *testing.B) {
			stream, gen := newBenchGenerator(b)
			var minutes, files, wallMS float64
			day := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Publish `days` worth of upstream churn, then run one update.
				var at time.Time
				for d := 0; d < cadence.days; d++ {
					day++
					at = benchEpoch.Add(time.Duration(day) * 24 * time.Hour)
					if _, err := stream.PublishDay(at.Add(-2 * time.Hour)); err != nil {
						b.Fatalf("PublishDay: %v", err)
					}
				}
				_, rep, err := gen.Update(at, benchKernel)
				if err != nil {
					b.Fatalf("Update: %v", err)
				}
				minutes += rep.ModeledDuration.Minutes()
				files += float64(rep.EntriesAdded)
				wallMS += float64(rep.MeasuredWallTime.Microseconds()) / 1e3
			}
			b.ReportMetric(minutes/float64(b.N), "modeled-min/update")
			b.ReportMetric(files/float64(b.N), "files/update")
			b.ReportMetric(wallMS/float64(b.N), "measured-ms/update")
		})
	}
}

// BenchmarkGenerateInitialParallel measures the day-one full-policy build
// (323k lines at paper scale) at different measurement worker-pool sizes.
// Each iteration builds the complete ScaleSmall policy from scratch.
// Reports measured wall time and modeled duration; on multi-core hosts the
// wall-time ratio between workers=1 and workers=N is the generator speedup
// (the merge is deterministic, so every pool size emits an identical
// policy — TestGenerateParallelDeterminism asserts that byte-for-byte).
func BenchmarkGenerateInitialParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sc := workload.ScaleSmall()
			archive := mirror.NewArchive()
			base := workload.BaseRelease(sc, benchKernel)
			if _, err := archive.Publish(benchEpoch.Add(-24*time.Hour), base...); err != nil {
				b.Fatalf("Publish: %v", err)
			}
			var wallMS, modeledMin float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gen := core.NewGenerator(mirror.NewMirror(archive),
					core.WithExcludes([]string{"/tmp/.*"}), core.WithWorkers(workers))
				_, rep, err := gen.GenerateInitial(benchEpoch, benchKernel)
				if err != nil {
					b.Fatalf("GenerateInitial: %v", err)
				}
				wallMS += float64(rep.MeasuredWallTime.Microseconds()) / 1e3
				modeledMin += rep.ModeledDuration.Minutes()
			}
			b.ReportMetric(wallMS/float64(b.N), "measured-ms/build")
			b.ReportMetric(modeledMin/float64(b.N), "modeled-min/build")
		})
	}
}

// BenchmarkFalsePositiveWeek runs the §III-B experiment: a 7-day benign
// week against a static policy. Reports false positives per week (the
// problem the dynamic generator eliminates).
func BenchmarkFalsePositiveWeek(b *testing.B) {
	var alerts float64
	for i := 0; i < b.N; i++ {
		sc := workload.ScaleSmall()
		sc.Seed = int64(i + 1)
		res, err := experiments.FPWeek(experiments.StackConfig{Scale: sc})
		if err != nil {
			b.Fatalf("FPWeek: %v", err)
		}
		alerts += float64(len(res.Alerts))
	}
	b.ReportMetric(alerts/float64(b.N), "false-positives/week")
}

// BenchmarkEffectiveness66Days runs the §III-D experiments (31-day daily +
// 35-day weekly with dynamic policy generation). Reports total false
// positives (paper: zero plus one misconfiguration event).
func BenchmarkEffectiveness66Days(b *testing.B) {
	var fps, misconfig float64
	for i := 0; i < b.N; i++ {
		daily, err := experiments.DynamicRun(experiments.DailyRunConfig())
		if err != nil {
			b.Fatalf("daily run: %v", err)
		}
		weekly, err := experiments.DynamicRun(experiments.WeeklyRunConfig())
		if err != nil {
			b.Fatalf("weekly run: %v", err)
		}
		fps += float64(daily.TotalFPs + weekly.TotalFPs)
		misconfig += float64(daily.MisconfigFPs + weekly.MisconfigFPs)
	}
	b.ReportMetric(fps/float64(b.N), "fp/66days")
	b.ReportMetric(misconfig/float64(b.N), "misconfig-fp/66days")
}

// BenchmarkTable2AttackMatrix runs the §IV matrix: 8 attacks in basic,
// adaptive and mitigated configurations. Reports detection rates per column
// (paper: 8/8 basic, 0/8 adaptive, 7/8 mitigated).
func BenchmarkTable2AttackMatrix(b *testing.B) {
	var basic, adaptive, mitigated float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AttackMatrix(experiments.StackConfig{})
		if err != nil {
			b.Fatalf("AttackMatrix: %v", err)
		}
		for _, row := range res.Rows {
			if row.Basic.Detected() {
				basic++
			}
			if row.Adaptive.Detected() {
				adaptive++
			}
			if row.Mitigated.Detected() {
				mitigated++
			}
		}
	}
	b.ReportMetric(basic/float64(b.N), "detected-basic/8")
	b.ReportMetric(adaptive/float64(b.N), "detected-adaptive/8")
	b.ReportMetric(mitigated/float64(b.N), "detected-mitigated/8")
}

// BenchmarkAblationIncrementalVsFull quantifies the design choice behind
// §III-C: appending only changed packages vs regenerating the whole policy
// on every update.
func BenchmarkAblationIncrementalVsFull(b *testing.B) {
	b.Run("incremental", func(b *testing.B) {
		stream, gen := newBenchGenerator(b)
		var minutes float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			at := benchEpoch.Add(time.Duration(i+1) * 24 * time.Hour)
			if _, err := stream.PublishDay(at.Add(-2 * time.Hour)); err != nil {
				b.Fatalf("PublishDay: %v", err)
			}
			_, rep, err := gen.Update(at, benchKernel)
			if err != nil {
				b.Fatalf("Update: %v", err)
			}
			minutes += rep.ModeledDuration.Minutes()
		}
		b.ReportMetric(minutes/float64(b.N), "modeled-min/update")
	})
	b.Run("full-regeneration", func(b *testing.B) {
		stream, gen := newBenchGenerator(b)
		var minutes float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			at := benchEpoch.Add(time.Duration(i+1) * 24 * time.Hour)
			if _, err := stream.PublishDay(at.Add(-2 * time.Hour)); err != nil {
				b.Fatalf("PublishDay: %v", err)
			}
			// Regenerate from scratch: measure every package again.
			_, rep, err := gen.GenerateInitial(at, benchKernel)
			if err != nil {
				b.Fatalf("GenerateInitial: %v", err)
			}
			minutes += rep.ModeledDuration.Minutes()
		}
		b.ReportMetric(minutes/float64(b.N), "modeled-min/update")
	})
}

// BenchmarkAblationPollingPolicy quantifies P2: how many measurement
// entries the verifier evaluates after a benign false positive under
// stop-on-failure vs continue-on-failure.
func BenchmarkAblationPollingPolicy(b *testing.B) {
	for _, mode := range []struct {
		name      string
		mitigated bool
	}{{"stop-on-failure", false}, {"continue-on-failure", true}} {
		b.Run(mode.name, func(b *testing.B) {
			a, err := attacks.ByName("Reptile")
			if err != nil {
				b.Fatalf("ByName: %v", err)
			}
			var detected float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunAttack(experiments.StackConfig{}, a, attacks.VariantAdaptive, mode.mitigated)
				if err != nil {
					b.Fatalf("RunAttack: %v", err)
				}
				if res.Outcome.Detected() {
					detected++
				}
			}
			b.ReportMetric(detected/float64(b.N), "detected-rate")
		})
	}
}

// BenchmarkAblationIMAReEvaluation quantifies the P4 fix: measurements
// recorded when a staged payload moves within a filesystem, with and
// without re-evaluation on path change.
func BenchmarkAblationIMAReEvaluation(b *testing.B) {
	for _, mode := range []struct {
		name   string
		reEval bool
	}{{"stock", false}, {"re-evaluate-on-move", true}} {
		b.Run(mode.name, func(b *testing.B) {
			ca, err := tpm.NewManufacturerCA(rand.Reader)
			if err != nil {
				b.Fatalf("NewManufacturerCA: %v", err)
			}
			var measured float64
			for i := 0; i < b.N; i++ {
				m, err := machine.New(ca,
					machine.WithTPMOptions(tpm.WithEKBits(1024)),
					machine.WithIMAOptions(ima.WithReEvaluateOnPathChange(mode.reEval)),
				)
				if err != nil {
					b.Fatalf("New machine: %v", err)
				}
				if err := m.WriteFile("/tmp/payload", []byte("evil"), vfs.ModeExecutable); err != nil {
					b.Fatalf("WriteFile: %v", err)
				}
				if err := m.Exec("/tmp/payload"); err != nil {
					b.Fatalf("Exec: %v", err)
				}
				if err := m.FS().Rename("/tmp/payload", "/usr/bin/payload"); err != nil {
					b.Fatalf("Rename: %v", err)
				}
				if err := m.Exec("/usr/bin/payload"); err != nil {
					b.Fatalf("Exec: %v", err)
				}
				measured += float64(m.IMA().Len() - 1) // minus boot aggregate
			}
			b.ReportMetric(measured/float64(b.N), "measurements/stage+move+exec")
		})
	}
}

// BenchmarkQuoteGenerate measures TPM2_Quote production.
func BenchmarkQuoteGenerate(b *testing.B) {
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		b.Fatalf("NewManufacturerCA: %v", err)
	}
	dev, err := tpm.New(ca, tpm.WithEKBits(1024))
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	if _, err := dev.CreateAK(); err != nil {
		b.Fatalf("CreateAK: %v", err)
	}
	nonce := []byte("bench-nonce")
	sel := []int{tpm.PCRBootAggregate, tpm.PCRIMA}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Quote(nonce, sel); err != nil {
			b.Fatalf("Quote: %v", err)
		}
	}
}

// BenchmarkQuoteVerify measures verifier-side quote validation.
func BenchmarkQuoteVerify(b *testing.B) {
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		b.Fatalf("NewManufacturerCA: %v", err)
	}
	dev, err := tpm.New(ca, tpm.WithEKBits(1024))
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	akPub, err := dev.CreateAK()
	if err != nil {
		b.Fatalf("CreateAK: %v", err)
	}
	nonce := []byte("bench-nonce")
	q, err := dev.Quote(nonce, []int{tpm.PCRIMA})
	if err != nil {
		b.Fatalf("Quote: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tpm.VerifyQuote(akPub, q, nonce); err != nil {
			b.Fatalf("VerifyQuote: %v", err)
		}
	}
}

// BenchmarkIMALogReplay measures replaying a 10k-entry measurement list
// against the PCR aggregate (the verifier's per-poll hot path).
func BenchmarkIMALogReplay(b *testing.B) {
	entries := make([]ima.Entry, 10000)
	for i := range entries {
		d := sha256.Sum256([]byte{byte(i), byte(i >> 8)})
		path := fmt.Sprintf("/usr/bin/tool-%d", i)
		entries[i] = ima.Entry{PCR: tpm.PCRIMA, FileDigest: d, Path: path, TemplateHash: ima.TemplateHash(d, path)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ima.ReplayAggregate(entries)
	}
	b.SetBytes(int64(len(entries)))
}

// BenchmarkIMALogParse measures parsing the ASCII measurement list.
func BenchmarkIMALogParse(b *testing.B) {
	entries := make([]ima.Entry, 1000)
	for i := range entries {
		d := sha256.Sum256([]byte{byte(i)})
		path := fmt.Sprintf("/usr/bin/tool-%d", i)
		entries[i] = ima.Entry{PCR: tpm.PCRIMA, FileDigest: d, Path: path, TemplateHash: ima.TemplateHash(d, path)}
	}
	log := ima.FormatLog(entries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ima.ParseLog(log); err != nil {
			b.Fatalf("ParseLog: %v", err)
		}
	}
	b.SetBytes(int64(len(log)))
}

// BenchmarkPolicyCheck measures the per-entry policy lookup.
func BenchmarkPolicyCheck(b *testing.B) {
	pol := policy.New()
	var paths []string
	var digests []policy.Digest
	for i := 0; i < 10000; i++ {
		p := fmt.Sprintf("/usr/bin/tool-%d", i)
		d := sha256.Sum256([]byte(p))
		pol.Add(p, d)
		paths = append(paths, p)
		digests = append(digests, d)
	}
	if err := pol.SetExcludes([]string{"/tmp/.*", "/var/log/.*"}); err != nil {
		b.Fatalf("SetExcludes: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % len(paths)
		if err := pol.Check(paths[idx], digests[idx]); err != nil {
			b.Fatalf("Check: %v", err)
		}
	}
}

// BenchmarkPolicyMerge measures folding a 1k-entry delta into a 10k-entry
// policy (the per-update operation of the dynamic generator).
func BenchmarkPolicyMerge(b *testing.B) {
	base := policy.New()
	for i := 0; i < 10000; i++ {
		p := fmt.Sprintf("/usr/bin/tool-%d", i)
		base.Add(p, sha256.Sum256([]byte(p)))
	}
	delta := policy.New()
	for i := 0; i < 1000; i++ {
		p := fmt.Sprintf("/usr/bin/tool-%d", i)
		delta.Add(p, sha256.Sum256([]byte(p+"-v2")))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work := base.Clone()
		b.StartTimer()
		work.Merge(delta)
	}
}

// BenchmarkEndToEndAttestation measures one full attestation round over
// loopback HTTP: nonce, quote, incremental log fetch, replay, policy check.
func BenchmarkEndToEndAttestation(b *testing.B) {
	d, err := experiments.NewDeployment(experiments.StackConfig{})
	if err != nil {
		b.Fatalf("NewDeployment: %v", err)
	}
	defer d.Close()
	ctx := context.Background()
	if res, err := d.V.AttestOnce(ctx, d.Machine.UUID()); err != nil || res.Failure != nil {
		b.Fatalf("baseline attestation: %v %+v", err, res.Failure)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := d.V.AttestOnce(ctx, d.Machine.UUID())
		if err != nil {
			b.Fatalf("AttestOnce: %v", err)
		}
		if res.Failure != nil {
			b.Fatalf("attestation failed: %+v", res.Failure)
		}
	}
}

// BenchmarkMeanHelper keeps the report stats on the radar of performance
// runs (they aggregate every figure).
func BenchmarkMeanHelper(b *testing.B) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i % 97)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = report.Mean(xs)
		_ = report.StdDev(xs)
	}
}

// BenchmarkFleetPollAll measures verifier throughput over a fleet: one
// PollAll round across 16 enrolled agents per iteration (the cloud-provider
// scalability question behind continuous attestation).
func BenchmarkFleetPollAll(b *testing.B) {
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		b.Fatalf("NewManufacturerCA: %v", err)
	}
	reg := registrar.New(ca.Pool())
	regSrv := httptest.NewServer(reg.Handler())
	defer regSrv.Close()
	v := verifier.New(regSrv.URL)
	const fleet = 16
	var servers []*httptest.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i := 0; i < fleet; i++ {
		m, err := machine.New(ca,
			machine.WithTPMOptions(tpm.WithEKBits(1024)),
			machine.WithUUID(fmt.Sprintf("fleet-%02d-4a97-9ef7-75bd81c000%02d", i, i)),
		)
		if err != nil {
			b.Fatalf("New machine: %v", err)
		}
		if err := m.WriteFile("/usr/bin/tool", []byte("\x7fELF tool"), vfs.ModeExecutable); err != nil {
			b.Fatalf("WriteFile: %v", err)
		}
		ag := agent.New(m)
		srv := httptest.NewServer(ag.Handler())
		servers = append(servers, srv)
		if err := ag.Register(regSrv.URL, srv.URL); err != nil {
			b.Fatalf("Register: %v", err)
		}
		pol, err := core.SnapshotPolicy(m.FS(), nil)
		if err != nil {
			b.Fatalf("SnapshotPolicy: %v", err)
		}
		if err := v.AddAgent(m.UUID(), srv.URL, pol); err != nil {
			b.Fatalf("AddAgent: %v", err)
		}
		if err := m.Exec("/usr/bin/tool"); err != nil {
			b.Fatalf("Exec: %v", err)
		}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := v.PollAll(ctx)
		if stats.Attested != fleet || stats.Failed != 0 {
			b.Fatalf("PollAll = %+v", stats)
		}
	}
	b.ReportMetric(float64(fleet), "agents/round")
}

// BenchmarkAblationPolicyDedup quantifies §III-C's post-update
// deduplication: final policy size after 31 daily updates with and without
// dropping outdated hashes.
func BenchmarkAblationPolicyDedup(b *testing.B) {
	for _, mode := range []struct {
		name  string
		dedup bool
	}{{"with-dedup", true}, {"without-dedup", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var finalLines float64
			for i := 0; i < b.N; i++ {
				stream, gen := newBenchGenerator(b)
				for day := 1; day <= 31; day++ {
					at := benchEpoch.Add(time.Duration(day) * 24 * time.Hour)
					if _, err := stream.PublishDay(at.Add(-2 * time.Hour)); err != nil {
						b.Fatalf("PublishDay: %v", err)
					}
					if _, _, err := gen.Update(at, benchKernel); err != nil {
						b.Fatalf("Update: %v", err)
					}
					if mode.dedup {
						if _, err := gen.DedupAfterUpdate(); err != nil {
							b.Fatalf("Dedup: %v", err)
						}
					}
				}
				pol, err := gen.Policy()
				if err != nil {
					b.Fatalf("Policy: %v", err)
				}
				finalLines += float64(pol.Lines())
			}
			b.ReportMetric(finalLines/float64(b.N), "final-policy-lines")
		})
	}
}

// BenchmarkAblationSignedFilesVsDynamicPolicy compares the two ways §V
// discusses to keep attestation alive across updates: regenerating the
// policy from a mirror every day (the paper's contribution) vs trusting
// vendor file signatures (the ostree-style improvement, zero policy churn).
// Reports the false positives over a 10-day unattended-upgrade horizon —
// both must be zero — and the policy entries pushed, which only the dynamic
// approach accumulates.
func BenchmarkAblationSignedFilesVsDynamicPolicy(b *testing.B) {
	b.Run("vendor-signatures", func(b *testing.B) {
		var fps float64
		for i := 0; i < b.N; i++ {
			d, err := experiments.NewDeployment(experiments.StackConfig{VendorSigning: true})
			if err != nil {
				b.Fatalf("NewDeployment: %v", err)
			}
			fp, err := runUnattendedDays(d, 10)
			d.Close()
			if err != nil {
				b.Fatalf("run: %v", err)
			}
			fps += float64(fp)
		}
		b.ReportMetric(fps/float64(b.N), "fp/10days")
		// The frozen-policy run pushes no policy entries by construction.
		b.ReportMetric(0, "policy-entries-pushed")
	})
	b.Run("dynamic-policy", func(b *testing.B) {
		var fps, entriesPushed float64
		for i := 0; i < b.N; i++ {
			d, err := experiments.NewDeployment(experiments.StackConfig{})
			if err != nil {
				b.Fatalf("NewDeployment: %v", err)
			}
			fp, pushed, err := runDynamicDays(d, 10)
			d.Close()
			if err != nil {
				b.Fatalf("run: %v", err)
			}
			fps += float64(fp)
			entriesPushed += float64(pushed)
		}
		b.ReportMetric(fps/float64(b.N), "fp/10days")
		b.ReportMetric(entriesPushed/float64(b.N), "policy-entries-pushed")
	})
}

// runUnattendedDays drives N days of archive-direct upgrades with a frozen
// policy, returning observed attestation failures.
func runUnattendedDays(d *experiments.Deployment, days int) (int, error) {
	if err := d.RefreshPolicyFromMachine(); err != nil {
		return 0, err
	}
	ctx := context.Background()
	fps := 0
	for day := 1; day <= days; day++ {
		upd, err := d.Stream.PublishDay(d.Clock.Now())
		if err != nil {
			return fps, err
		}
		if err := d.InstallFromArchive(upd.Published); err != nil {
			return fps, err
		}
		if err := experiments.ExecUpdated(d, upd, 3); err != nil {
			return fps, err
		}
		res, err := d.V.AttestOnce(ctx, d.Machine.UUID())
		if err != nil {
			_ = d.V.Resume(d.Machine.UUID())
			continue
		}
		if res.Failure != nil {
			fps++
			_ = d.V.Resume(d.Machine.UUID())
		}
	}
	return fps, nil
}

// runDynamicDays drives N days of the dynamic-policy pipeline, counting
// failures and pushed policy entries.
func runDynamicDays(d *experiments.Deployment, days int) (fps, entriesPushed int, err error) {
	if err := d.RefreshPolicyFromMachine(); err != nil {
		return 0, 0, err
	}
	ctx := context.Background()
	for day := 1; day <= days; day++ {
		upd, err := d.Stream.PublishDay(d.Clock.Now())
		if err != nil {
			return fps, entriesPushed, err
		}
		_, rep, err := d.Gen.Update(d.Clock.Now(), d.Machine.RunningKernel())
		if err != nil {
			return fps, entriesPushed, err
		}
		entriesPushed += rep.EntriesAdded
		if err := d.PushGeneratorPolicy(); err != nil {
			return fps, entriesPushed, err
		}
		if err := d.InstallFromArchive(upd.Published); err != nil {
			return fps, entriesPushed, err
		}
		if err := experiments.ExecUpdated(d, upd, 3); err != nil {
			return fps, entriesPushed, err
		}
		res, err := d.V.AttestOnce(ctx, d.Machine.UUID())
		if err != nil {
			_ = d.V.Resume(d.Machine.UUID())
			continue
		}
		if res.Failure != nil {
			fps++
			_ = d.V.Resume(d.Machine.UUID())
		}
	}
	return fps, entriesPushed, nil
}

// BenchmarkAblationIncrementalLogFetch quantifies Keylime's incremental IMA
// log fetch: per-poll cost when the verifier requests only new entries vs
// refetching and replaying the whole log every round, on an agent whose
// measurement list has grown to ~2000 entries.
func BenchmarkAblationIncrementalLogFetch(b *testing.B) {
	build := func(b *testing.B) *experiments.Deployment {
		d, err := experiments.NewDeployment(experiments.StackConfig{})
		if err != nil {
			b.Fatalf("NewDeployment: %v", err)
		}
		if err := d.RefreshPolicyFromMachine(); err != nil {
			b.Fatalf("RefreshPolicyFromMachine: %v", err)
		}
		// Grow the measurement list by executing ~2000 distinct binaries.
		pol, err := d.Gen.Policy()
		if err != nil {
			b.Fatalf("Policy: %v", err)
		}
		count := 0
		for _, path := range pol.Paths() {
			if count >= 2000 {
				break
			}
			if err := d.Machine.Exec(path); err != nil {
				continue
			}
			count++
		}
		if res, err := d.V.AttestOnce(context.Background(), d.Machine.UUID()); err != nil || res.Failure != nil {
			b.Fatalf("warm-up attestation: %v %+v", err, res.Failure)
		}
		return d
	}
	b.Run("incremental", func(b *testing.B) {
		d := build(b)
		defer d.Close()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := d.V.AttestOnce(ctx, d.Machine.UUID())
			if err != nil || res.Failure != nil {
				b.Fatalf("AttestOnce: %v %+v", err, res.Failure)
			}
		}
	})
	b.Run("full-refetch", func(b *testing.B) {
		d := build(b)
		defer d.Close()
		// A fresh verifier per round starts at offset 0: the whole log is
		// fetched, replayed and policy-checked every poll.
		akPub, err := d.Machine.TPM().AKPublic()
		if err != nil {
			b.Fatalf("AKPublic: %v", err)
		}
		pol, err := d.Gen.Policy()
		if err != nil {
			b.Fatalf("Policy: %v", err)
		}
		pol.Merge(d.LocalExtras)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := verifier.New("")
			if err := v.AddAgentWithAK(d.Machine.UUID(), d.AgentURL(), akPub, pol); err != nil {
				b.Fatalf("AddAgentWithAK: %v", err)
			}
			res, err := v.AttestOnce(ctx, d.Machine.UUID())
			if err != nil || res.Failure != nil {
				b.Fatalf("AttestOnce: %v %+v", err, res.Failure)
			}
		}
	})
}
