package repro_test

// Churn-under-load chaos suite: ~10k enrollments/withdrawals (1k under
// -short) driven through the declarative reconciler as a sliding window
// of spec applies, racing continuous live PollAll sweeps the whole time.
// The invariants under churn are the ones the paper's operators care
// about: no sweep ever produces a false verdict (an agent mid-enroll or
// mid-withdraw is skipped or attested, never failed), no agent leaks
// past its withdrawal, and every wave converges within a bounded number
// of reconcile ticks.

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/keylime/reconcile"
	"repro/internal/keylime/store"
	"repro/internal/keylime/verifier"
	"repro/internal/simclock"
)

func churnID(i int) string {
	return fmt.Sprintf("churn-%06d-4a97-9ef7-75bd81c0f1ee", i)
}

// churnSpec declares the sliding window [lo, hi) of agent IDs, split
// across two tenants so tenant accounting is exercised under churn.
func churnSpec(akB64 string, polJSON []byte, lo, hi int) *reconcile.FleetSpec {
	s := &reconcile.FleetSpec{
		Tenants: []reconcile.TenantSpec{
			{Name: "team-a", MaxAgents: -1, Rate: -1},
			{Name: "team-b", MaxAgents: -1, Rate: -1},
		},
	}
	for i := lo; i < hi; i++ {
		tenant := "team-a"
		if i%2 == 1 {
			tenant = "team-b"
		}
		s.Agents = append(s.Agents, reconcile.AgentSpec{
			ID:     churnID(i),
			URL:    "http://agent.fleet.internal",
			Tenant: tenant,
			AKPub:  akB64,
			Policy: polJSON,
		})
	}
	return s
}

func TestReconcileChurnUnderLoad(t *testing.T) {
	// Sliding window: wave w desires IDs [w*step, w*step+window), so the
	// first wave enrolls `window` agents and every later wave does `step`
	// enrollments plus `step` withdrawals — window + (waves-1)*2*step
	// lifecycle operations total.
	step, window, waves := 500, 800, 10
	if testing.Short() {
		step, window = 50, 80
	}
	akPub, pol, client := fleetFixture(t)
	akB64 := base64.StdEncoding.EncodeToString(akPub)
	polJSON, err := json.Marshal(pol)
	if err != nil {
		t.Fatalf("marshal policy: %v", err)
	}

	v := verifier.New("",
		verifier.WithHTTPClient(client),
		verifier.WithPollConcurrency(32),
	)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer func() { _ = st.Close() }()
	rc, err := reconcile.New(reconcile.Config{Fleet: v, Store: st, Clock: simclock.Real{}})
	if err != nil {
		t.Fatalf("reconcile.New: %v", err)
	}

	// Live sweeps race the whole churn. Failed would be a false verdict
	// (the shared loopback agent is always healthy); Errors would be a
	// round error; agents withdrawn after a sweep's ID snapshot are
	// expected to surface as Removed, never as either.
	ctx := context.Background()
	var sweeps, falseVerdicts, roundErrors atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			pst := v.PollAll(ctx)
			sweeps.Add(1)
			falseVerdicts.Add(int64(pst.Failed))
			roundErrors.Add(int64(pst.Errors))
		}
	}()

	const tickBound = 10
	maxTicks := 0
	for w := 0; w < waves; w++ {
		lo, hi := w*step, w*step+window
		if _, _, err := rc.Apply(churnSpec(akB64, polJSON, lo, hi)); err != nil {
			t.Fatalf("wave %d: Apply: %v", w, err)
		}
		ticks := 0
		for ; ticks < tickBound && !rc.Status().Converged; ticks++ {
			if err := rc.Tick(); err != nil {
				t.Fatalf("wave %d: Tick: %v", w, err)
			}
		}
		if !rc.Status().Converged {
			t.Fatalf("wave %d: not converged within %d ticks: %+v", w, tickBound, rc.Status())
		}
		if ticks > maxTicks {
			maxTicks = ticks
		}
	}
	close(stop)
	wg.Wait()

	// Zero false verdicts across every racing sweep.
	if f, e := falseVerdicts.Load(), roundErrors.Load(); f != 0 || e != 0 {
		t.Fatalf("racing sweeps produced %d false verdicts, %d round errors (over %d sweeps)",
			f, e, sweeps.Load())
	}
	if sweeps.Load() == 0 {
		t.Fatal("no sweeps raced the churn — the chaos half of the test never ran")
	}

	// Zero leaked agents: the fleet is exactly the final window.
	finalLo := (waves - 1) * step
	want := make([]string, 0, window)
	for i := finalLo; i < finalLo+window; i++ {
		want = append(want, churnID(i))
	}
	got := v.AgentIDs()
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("fleet size = %d, want %d (leaked or lost agents)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fleet[%d] = %s, want %s", i, got[i], want[i])
		}
	}

	// The managed journal, counters, and a final clean sweep agree.
	status := rc.Status()
	if status.Managed != window {
		t.Fatalf("managed = %d, want %d", status.Managed, window)
	}
	wantEnrolls := uint64(window + (waves-1)*step)
	wantWithdraws := uint64((waves - 1) * step)
	if status.Counters.Enrolls != wantEnrolls || status.Counters.Withdraws != wantWithdraws {
		t.Fatalf("counters = %+v, want %d enrolls / %d withdraws",
			status.Counters, wantEnrolls, wantWithdraws)
	}
	if pst := v.PollAll(ctx); pst.Attested != window || pst.Failed != 0 || pst.Errors != 0 {
		t.Fatalf("final sweep = %+v, want %d attested and no failures", pst, window)
	}
	t.Logf("churn: %d ops over %d waves, %d racing sweeps, worst-wave convergence %d ticks",
		wantEnrolls+wantWithdraws, waves, sweeps.Load(), maxTicks)
}
