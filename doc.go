// Package repro is a from-scratch Go reproduction of "Towards Continuous
// Integrity Attestation and Its Challenges in Practice: A Case Study of
// Keylime" (DSN 2025).
//
// The implementation lives under internal/:
//
//   - internal/tpm, internal/ima, internal/vfs, internal/machine — the
//     attested prover substrate (software TPM 2.0, IMA measurement engine,
//     filesystem and execution model);
//   - internal/keylime/{agent,registrar,verifier,tenant} — the Keylime
//     components speaking HTTP/JSON;
//   - internal/mirror, internal/workload — the Ubuntu-style archive, local
//     mirror and calibrated update stream;
//   - internal/core — the paper's contribution: dynamic policy generation;
//   - internal/attacks, internal/experiments — the §III/§IV experiments,
//     reproducing Figures 3-5 and Tables I-II.
//
// See README.md for a tour, cmd/repro for the experiment runner, and
// bench_test.go (this directory) for the per-table/figure benchmarks.
package repro
