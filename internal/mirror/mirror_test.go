package mirror

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/filesig"
	"repro/internal/vfs"
)

var t0 = time.Date(2024, 2, 26, 5, 0, 0, 0, time.UTC)

func pkg(name, version string, suite Suite, prio Priority, files ...PackageFile) Package {
	return Package{Name: name, Version: version, Suite: suite, Priority: prio, Files: files}
}

func execFile(path string, size int) PackageFile {
	return PackageFile{Path: path, Mode: vfs.ModeExecutable, Size: size}
}

func dataFile(path string, size int) PackageFile {
	return PackageFile{Path: path, Mode: vfs.ModeRegular, Size: size}
}

func TestPriorityBuckets(t *testing.T) {
	high := []Priority{PriorityEssential, PriorityRequired, PriorityImportant, PriorityStandard}
	for _, p := range high {
		if !p.High() {
			t.Fatalf("%v should be high priority", p)
		}
	}
	for _, p := range []Priority{PriorityOptional, PriorityExtra} {
		if p.High() {
			t.Fatalf("%v should be low priority", p)
		}
	}
}

func TestPublishAndSnapshot(t *testing.T) {
	a := NewArchive()
	seq, err := a.Publish(t0, pkg("bash", "5.1-6", SuiteMain, PriorityRequired, execFile("/bin/bash", 1000)))
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
	snap := a.Snapshot()
	if len(snap.Packages) != 1 || snap.Packages["bash"].Version != "5.1-6" {
		t.Fatalf("Snapshot = %+v", snap)
	}
}

func TestPublishSameVersionRejected(t *testing.T) {
	a := NewArchive()
	p := pkg("bash", "5.1-6", SuiteMain, PriorityRequired)
	if _, err := a.Publish(t0, p); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if _, err := a.Publish(t0.Add(time.Hour), p); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("re-publish err = %v, want ErrStaleVersion", err)
	}
}

func TestArchivePackageUnknown(t *testing.T) {
	a := NewArchive()
	if _, err := a.Package("nope"); !errors.Is(err, ErrUnknownPackage) {
		t.Fatalf("err = %v, want ErrUnknownPackage", err)
	}
}

func TestMirrorFirstSyncIsAllAdded(t *testing.T) {
	a := NewArchive()
	if _, err := a.Publish(t0,
		pkg("bash", "5.1-6", SuiteMain, PriorityRequired, execFile("/bin/bash", 100)),
		pkg("vim", "8.2", SuiteMain, PriorityOptional, execFile("/usr/bin/vim", 100)),
	); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	m := NewMirror(a)
	d := m.Sync(t0.Add(time.Hour))
	if len(d.Added) != 2 || len(d.Changed) != 0 {
		t.Fatalf("delta = %+v, want 2 added", d)
	}
	if !m.LastSync().Equal(t0.Add(time.Hour)) {
		t.Fatalf("LastSync = %v", m.LastSync())
	}
}

func TestMirrorDeltaTracksChanges(t *testing.T) {
	a := NewArchive()
	if _, err := a.Publish(t0, pkg("bash", "5.1-6", SuiteMain, PriorityRequired, execFile("/bin/bash", 100))); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	m := NewMirror(a)
	m.Sync(t0)
	// Upgrade bash, add curl.
	if _, err := a.Publish(t0.Add(24*time.Hour),
		pkg("bash", "5.1-7", SuiteSecurity, PriorityRequired, execFile("/bin/bash", 100)),
		pkg("curl", "7.81", SuiteUpdates, PriorityOptional, execFile("/usr/bin/curl", 100)),
	); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	d := m.Sync(t0.Add(25 * time.Hour))
	if len(d.Added) != 1 || d.Added[0].Name != "curl" {
		t.Fatalf("Added = %+v, want curl", d.Added)
	}
	if len(d.Changed) != 1 || d.Changed[0].Name != "bash" || d.Changed[0].Version != "5.1-7" {
		t.Fatalf("Changed = %+v, want bash 5.1-7", d.Changed)
	}
	// Second sync with no publication: empty delta.
	if d := m.Sync(t0.Add(26 * time.Hour)); !d.Empty() {
		t.Fatalf("delta after no-op sync = %+v, want empty", d)
	}
}

func TestDeltaWithExecutablesFiltersDataOnly(t *testing.T) {
	a := NewArchive()
	if _, err := a.Publish(t0,
		pkg("bash", "5.1", SuiteMain, PriorityRequired, execFile("/bin/bash", 10)),
		pkg("tzdata", "2024a", SuiteMain, PriorityRequired, dataFile("/usr/share/zoneinfo/UTC", 10)),
	); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	m := NewMirror(a)
	d := m.Sync(t0)
	withExec := d.WithExecutables()
	if len(withExec) != 1 || withExec[0].Name != "bash" {
		t.Fatalf("WithExecutables = %+v, want [bash]", withExec)
	}
}

func TestKernelPackageDetection(t *testing.T) {
	k := pkg("linux-image-5.15.0-101-generic", "5.15.0-101.111", SuiteUpdates, PriorityOptional)
	if !k.IsKernelImage() {
		t.Fatal("kernel image not detected")
	}
	v, ok := k.KernelVersion()
	if !ok || v != "5.15.0-101-generic" {
		t.Fatalf("KernelVersion = %q, %v", v, ok)
	}
	if pkg("bash", "5.1", SuiteMain, PriorityRequired).IsKernelImage() {
		t.Fatal("bash detected as kernel image")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	p := pkg("bash", "5.1-6", SuiteMain, PriorityRequired,
		execFile("/bin/bash", 2048),
		dataFile("/usr/share/doc/bash/README", 512),
		execFile("/usr/bin/bashbug", 300),
	)
	payload, err := Pack(p)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	files, err := Unpack(payload)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if len(files) != 3 {
		t.Fatalf("unpacked %d files, want 3", len(files))
	}
	for i, f := range files {
		if f.Path != p.Files[i].Path || f.Mode != p.Files[i].Mode {
			t.Fatalf("file %d = %+v, want %+v", i, f, p.Files[i])
		}
		want := vfs.SyntheticContent(p.ContentSeed(p.Files[i]), p.Files[i].Size)
		if !bytes.Equal(f.Content, want) {
			t.Fatalf("file %d content mismatch", i)
		}
	}
}

func TestUnpackedContentMatchesInstalledDigest(t *testing.T) {
	// The property the whole pipeline rests on: hashing the unpacked
	// payload yields the same digest as installing via synthetic digest.
	p := pkg("coreutils", "8.32", SuiteMain, PriorityRequired, execFile("/usr/bin/ls", 4096))
	payload, err := Pack(p)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	files, err := Unpack(payload)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	fromPayload := sha256.Sum256(files[0].Content)
	fromInstall := vfs.SyntheticDigest(p.ContentSeed(p.Files[0]), p.Files[0].Size)
	if fromPayload != fromInstall {
		t.Fatal("payload digest != install digest")
	}
}

func TestUnpackCorruptPayload(t *testing.T) {
	if _, err := Unpack([]byte("not gzip")); !errors.Is(err, ErrCorruptPayload) {
		t.Fatalf("err = %v, want ErrCorruptPayload", err)
	}
	// Truncated valid gzip stream.
	p := pkg("x", "1", SuiteMain, PriorityOptional, execFile("/x", 100))
	payload, err := Pack(p)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	if _, err := Unpack(payload[:len(payload)/2]); err == nil {
		t.Fatal("Unpack of truncated payload succeeded")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	a := NewArchive()
	if _, err := a.Publish(t0, pkg("bash", "5.1", SuiteMain, PriorityRequired, execFile("/bin/bash", 10))); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	snap := a.Snapshot()
	// Mutating the snapshot must not affect the archive.
	p := snap.Packages["bash"]
	p.Files[0].Path = "/mutated"
	got, err := a.Package("bash")
	if err != nil {
		t.Fatalf("Package: %v", err)
	}
	if got.Files[0].Path != "/bin/bash" {
		t.Fatal("archive mutated via snapshot")
	}
}

// Property: after any publish sequence, syncing a fresh mirror twice yields
// (full delta, empty delta); and Added+Changed of incremental syncs never
// overlap.
func TestMirrorSyncProperty(t *testing.T) {
	f := func(versions []uint8) bool {
		a := NewArchive()
		m := NewMirror(a)
		now := t0
		seen := map[string]string{}
		for i, v := range versions {
			name := fmt.Sprintf("pkg%d", int(v)%7)
			ver := fmt.Sprintf("1.%d", i)
			if seen[name] == ver {
				continue
			}
			if _, err := a.Publish(now, pkg(name, ver, SuiteUpdates, PriorityOptional, execFile("/usr/bin/"+name, 16))); err != nil {
				return false
			}
			seen[name] = ver
			now = now.Add(time.Hour)
			d := m.Sync(now)
			names := map[string]bool{}
			for _, p := range d.Added {
				if names[p.Name] {
					return false
				}
				names[p.Name] = true
			}
			for _, p := range d.Changed {
				if names[p.Name] {
					return false
				}
				names[p.Name] = true
			}
		}
		// A final sync with no new publication must be empty.
		return m.Sync(now.Add(time.Hour)).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pack/Unpack round-trips arbitrary file lists.
func TestPackUnpackProperty(t *testing.T) {
	f := func(names []uint8, execBits []bool) bool {
		n := len(names)
		if len(execBits) < n {
			n = len(execBits)
		}
		if n > 20 {
			n = 20
		}
		files := make([]PackageFile, 0, n)
		for i := 0; i < n; i++ {
			mode := vfs.ModeRegular
			if execBits[i] {
				mode = vfs.ModeExecutable
			}
			files = append(files, PackageFile{
				Path: fmt.Sprintf("/opt/f%d-%d", i, names[i]),
				Mode: mode,
				Size: int(names[i]) * 3,
			})
		}
		p := Package{Name: "prop", Version: "1", Suite: SuiteMain, Priority: PriorityOptional, Files: files}
		payload, err := Pack(p)
		if err != nil {
			return false
		}
		got, err := Unpack(payload)
		if err != nil {
			return false
		}
		if len(got) != len(files) {
			return false
		}
		for i := range got {
			if got[i].Path != files[i].Path || got[i].Mode != files[i].Mode || len(got[i].Content) != files[i].Size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestVendorSigningAtPublish(t *testing.T) {
	vendor, err := filesig.NewSigner(rand.Reader)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	a := NewArchive()
	a.SetVendor(vendor)
	p := pkg("bash", "5.1-6", SuiteMain, PriorityRequired,
		execFile("/bin/bash", 512), dataFile("/usr/share/doc/x", 64))
	if _, err := a.Publish(t0, p); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	got, err := a.Package("bash")
	if err != nil {
		t.Fatalf("Package: %v", err)
	}
	pub, _ := vendor.Public()
	vs, err := filesig.NewVerifySet(pub)
	if err != nil {
		t.Fatalf("NewVerifySet: %v", err)
	}
	for _, f := range got.Files {
		if !f.IsExec() {
			if f.Signature != "" {
				t.Fatalf("data file %s signed", f.Path)
			}
			continue
		}
		if f.Signature == "" {
			t.Fatalf("executable %s unsigned", f.Path)
		}
		digest := vfs.SyntheticDigest(got.ContentSeed(f), f.Size)
		if !vs.VerifyHex(digest, f.Signature) {
			t.Fatalf("signature on %s does not verify", f.Path)
		}
	}
}

func TestPackUnpackCarriesSignatures(t *testing.T) {
	vendor, err := filesig.NewSigner(rand.Reader)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	a := NewArchive()
	a.SetVendor(vendor)
	if _, err := a.Publish(t0, pkg("curl", "7.81", SuiteMain, PriorityOptional, execFile("/usr/bin/curl", 256))); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	signed, err := a.Package("curl")
	if err != nil {
		t.Fatalf("Package: %v", err)
	}
	payload, err := Pack(signed)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	files, err := Unpack(payload)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if files[0].Signature != signed.Files[0].Signature {
		t.Fatal("signature lost through Pack/Unpack")
	}
}

func TestStalenessDetectsLatePublish(t *testing.T) {
	a := NewArchive()
	if _, err := a.Publish(t0, pkg("bash", "5.1-6", SuiteMain, PriorityRequired, execFile("/bin/bash", 100))); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	m := NewMirror(a)

	// A brand-new mirror has synced nothing: it is stale relative to any
	// published archive.
	if st := m.Staleness(); !st.Stale {
		t.Fatalf("unsynced mirror should be stale: %+v", st)
	}

	syncAt := t0.Add(2 * time.Hour)
	m.Sync(syncAt)
	st := m.Staleness()
	if st.Stale {
		t.Fatalf("freshly synced mirror should not be stale: %+v", st)
	}
	if !st.LastSync.Equal(syncAt) || !st.LastPublish.Equal(t0) {
		t.Fatalf("timestamps wrong: %+v", st)
	}
	if st.MirrorSeq != 1 || st.ArchiveSeq != 1 {
		t.Fatalf("seqs wrong: %+v", st)
	}

	// The §III-C hazard: upstream publishes AFTER the sync.
	lateAt := syncAt.Add(4 * time.Hour)
	if _, err := a.Publish(lateAt, pkg("openssl", "3.0.2-0u1", SuiteSecurity, PriorityImportant, execFile("/usr/bin/openssl", 200))); err != nil {
		t.Fatalf("late Publish: %v", err)
	}
	if a.LastPublish() != lateAt {
		t.Fatalf("LastPublish = %v, want %v", a.LastPublish(), lateAt)
	}
	st = m.Staleness()
	if !st.Stale {
		t.Fatalf("mirror should be stale after late publish: %+v", st)
	}
	if st.ArchiveSeq != 2 || st.MirrorSeq != 1 {
		t.Fatalf("seqs wrong after late publish: %+v", st)
	}

	// Resyncing clears the staleness.
	m.Sync(lateAt.Add(time.Hour))
	if st := m.Staleness(); st.Stale {
		t.Fatalf("resynced mirror should not be stale: %+v", st)
	}
}
