// Package mirror simulates a Debian/Ubuntu-style package archive and the
// operator-controlled local mirror the paper's dynamic policy generation
// scheme depends on (§III-C).
//
// The upstream Archive publishes package versions into the three suites the
// paper mirrors (Main, Security, Updates). A Mirror syncs against the
// archive and reports the delta (added and changed packages) since its last
// sync — the input to the dynamic policy generator. Package payloads are
// real gzip-compressed blobs of deterministic synthetic content, so
// "download, uncompress and hash the executables" is actual work the
// benchmarks can measure.
package mirror

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/filesig"
	"repro/internal/vfs"
)

// Suite identifies an archive sub-repository.
type Suite int

// The suites the paper's mirror carries. Universe/Multiverse exist upstream
// but are deliberately not mirrored ("not needed to run a base OS").
const (
	SuiteMain Suite = iota + 1
	SuiteSecurity
	SuiteUpdates
)

var suiteNames = map[Suite]string{
	SuiteMain:     "main",
	SuiteSecurity: "security",
	SuiteUpdates:  "updates",
}

// String returns the archive name of the suite.
func (s Suite) String() string {
	if n, ok := suiteNames[s]; ok {
		return n
	}
	return fmt.Sprintf("suite(%d)", int(s))
}

// Priority is the Debian package priority.
type Priority int

// Debian priorities. The paper buckets Essential/Required/Important/Standard
// as high priority and Optional/Extra as low priority.
const (
	PriorityEssential Priority = iota + 1
	PriorityRequired
	PriorityImportant
	PriorityStandard
	PriorityOptional
	PriorityExtra
)

var priorityNames = map[Priority]string{
	PriorityEssential: "essential",
	PriorityRequired:  "required",
	PriorityImportant: "important",
	PriorityStandard:  "standard",
	PriorityOptional:  "optional",
	PriorityExtra:     "extra",
}

// String returns the Debian name of the priority.
func (p Priority) String() string {
	if n, ok := priorityNames[p]; ok {
		return n
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// High reports whether the paper counts this priority as high.
func (p Priority) High() bool {
	return p >= PriorityEssential && p <= PriorityStandard
}

// PackageFile is one file shipped by a package.
type PackageFile struct {
	// Path is the absolute installation path.
	Path string
	Mode vfs.Mode
	// Size of the synthetic content in bytes.
	Size int
	// Signature is the vendor's hex ECDSA signature over the content
	// digest ("" when the archive has no vendor key). Installed as the
	// file's security.ima xattr (§V's signed-hashes improvement).
	Signature string
}

// IsExec reports whether the file carries an execute bit — the only files
// IMA measures and the policy generator hashes.
func (f PackageFile) IsExec() bool { return f.Mode.IsExec() }

// Package is one package version in the archive.
type Package struct {
	Name     string
	Version  string
	Suite    Suite
	Priority Priority
	Files    []PackageFile
}

// ContentSeed returns the deterministic seed the whole simulation uses for
// the content of one file of this package version. Installing the package
// and unpacking its payload therefore agree on every byte.
func (p Package) ContentSeed(f PackageFile) string {
	return "pkg:" + p.Name + "_" + p.Version + ":" + f.Path
}

// ExecutableFiles returns the subset of files with an execute bit.
func (p Package) ExecutableFiles() []PackageFile {
	var out []PackageFile
	for _, f := range p.Files {
		if f.IsExec() {
			out = append(out, f)
		}
	}
	return out
}

// HasExecutables reports whether the package ships at least one executable.
func (p Package) HasExecutables() bool {
	for _, f := range p.Files {
		if f.IsExec() {
			return true
		}
	}
	return false
}

// PayloadSize returns the total uncompressed payload size in bytes.
func (p Package) PayloadSize() int64 {
	var n int64
	for _, f := range p.Files {
		n += int64(f.Size)
	}
	return n
}

// IsKernelImage reports whether this is a kernel image package (the dynamic
// policy generator treats kernels specially, §III-C).
func (p Package) IsKernelImage() bool {
	return strings.HasPrefix(p.Name, "linux-image-")
}

// KernelVersion extracts the kernel version from a kernel image package
// name ("linux-image-5.15.0-101-generic" -> "5.15.0-101-generic").
func (p Package) KernelVersion() (string, bool) {
	v, ok := strings.CutPrefix(p.Name, "linux-image-")
	return v, ok
}

// Release is an immutable snapshot of the archive at one publication point.
type Release struct {
	// Seq increases with every publication.
	Seq int
	// Time is when the release was published.
	Time time.Time
	// Packages maps name to the latest version at this release.
	Packages map[string]Package
}

// clonePackages deep-copies a package map (Files slices included).
func clonePackages(in map[string]Package) map[string]Package {
	out := make(map[string]Package, len(in))
	for k, v := range in {
		v.Files = append([]PackageFile(nil), v.Files...)
		out[k] = v
	}
	return out
}

// Archive is the upstream distribution publisher.
type Archive struct {
	mu       sync.Mutex
	packages map[string]Package
	seq      int
	lastPub  time.Time
	vendor   *filesig.Signer
}

// NewArchive returns an empty archive.
func NewArchive() *Archive {
	return &Archive{packages: make(map[string]Package)}
}

// SetVendor installs the vendor signing key: from now on every published
// executable carries a signature over its content digest (the paper's §V
// "hashes generated and then signed by the package maintainers").
func (a *Archive) SetVendor(s *filesig.Signer) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.vendor = s
}

// Sentinel errors.
var (
	ErrUnknownPackage = errors.New("mirror: unknown package")
	ErrStaleVersion   = errors.New("mirror: published version is not newer")
	ErrCorruptPayload = errors.New("mirror: corrupt package payload")
)

// Publish adds or upgrades packages, creating a new release. Publishing a
// version identical to the current one is rejected.
func (a *Archive) Publish(at time.Time, pkgs ...Package) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, p := range pkgs {
		if cur, ok := a.packages[p.Name]; ok && cur.Version == p.Version {
			return 0, fmt.Errorf("%w: %s %s", ErrStaleVersion, p.Name, p.Version)
		}
	}
	for _, p := range pkgs {
		p.Files = append([]PackageFile(nil), p.Files...)
		if a.vendor != nil {
			for i := range p.Files {
				if !p.Files[i].IsExec() {
					continue
				}
				digest := vfs.SyntheticDigest(p.ContentSeed(p.Files[i]), p.Files[i].Size)
				sig, err := a.vendor.SignHex(digest)
				if err != nil {
					return 0, fmt.Errorf("mirror: vendor-signing %s %s: %w", p.Name, p.Files[i].Path, err)
				}
				p.Files[i].Signature = sig
			}
		}
		a.packages[p.Name] = p
	}
	a.seq++
	a.lastPub = at
	return a.seq, nil
}

// Snapshot returns the current release.
func (a *Archive) Snapshot() Release {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Release{Seq: a.seq, Time: a.lastPub, Packages: clonePackages(a.packages)}
}

// LastPublish returns when the archive last published a release (zero
// before the first publication). Mirror operators compare it against
// Mirror.LastSync to detect the paper's §III-C hazard: a release landing
// upstream after the mirror's daily sync, so that "update from the
// official archive" installs files the mirror-derived policy has never
// seen.
func (a *Archive) LastPublish() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastPub
}

// Seq returns the archive's current release sequence number.
func (a *Archive) Seq() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq
}

// Package returns the latest version of a named package.
func (a *Archive) Package(name string) (Package, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.packages[name]
	if !ok {
		return Package{}, fmt.Errorf("%w: %s", ErrUnknownPackage, name)
	}
	p.Files = append([]PackageFile(nil), p.Files...)
	return p, nil
}

// Delta describes what changed between two mirror syncs.
type Delta struct {
	// Added are packages that did not exist at the previous sync.
	Added []Package
	// Changed are packages whose version advanced.
	Changed []Package
}

// All returns added and changed packages sorted by name.
func (d Delta) All() []Package {
	out := make([]Package, 0, len(d.Added)+len(d.Changed))
	out = append(out, d.Added...)
	out = append(out, d.Changed...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Empty reports whether the delta carries no package changes.
func (d Delta) Empty() bool { return len(d.Added) == 0 && len(d.Changed) == 0 }

// WithExecutables returns only the delta packages shipping executables —
// what the policy generator and the paper's Fig. 4 count.
func (d Delta) WithExecutables() []Package {
	var out []Package
	for _, p := range d.All() {
		if p.HasExecutables() {
			out = append(out, p)
		}
	}
	return out
}

// Mirror is the operator's local copy of the archive.
type Mirror struct {
	archive *Archive

	mu       sync.Mutex
	current  Release
	lastSync time.Time
}

// NewMirror creates a mirror of the given archive. It starts empty; the
// first Sync copies the full archive.
func NewMirror(archive *Archive) *Mirror {
	return &Mirror{archive: archive, current: Release{Packages: map[string]Package{}}}
}

// Sync refreshes the mirror from the archive and returns the delta since
// the previous sync.
func (m *Mirror) Sync(at time.Time) Delta {
	snap := m.archive.Snapshot()
	m.mu.Lock()
	defer m.mu.Unlock()
	var d Delta
	for name, pkg := range snap.Packages {
		prev, ok := m.current.Packages[name]
		switch {
		case !ok:
			d.Added = append(d.Added, pkg)
		case prev.Version != pkg.Version:
			d.Changed = append(d.Changed, pkg)
		}
	}
	sort.Slice(d.Added, func(i, j int) bool { return d.Added[i].Name < d.Added[j].Name })
	sort.Slice(d.Changed, func(i, j int) bool { return d.Changed[i].Name < d.Changed[j].Name })
	m.current = snap
	m.lastSync = at
	return d
}

// Release returns the mirror's current release snapshot.
func (m *Mirror) Release() Release {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Release{Seq: m.current.Seq, Time: m.current.Time, Packages: clonePackages(m.current.Packages)}
}

// LastSync returns when the mirror last synced.
func (m *Mirror) LastSync() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastSync
}

// Staleness describes the mirror's freshness relative to its archive.
type Staleness struct {
	// LastSync is when the mirror last pulled from the archive.
	LastSync time.Time `json:"last_sync"`
	// LastPublish is the archive's most recent publication time.
	LastPublish time.Time `json:"last_publish"`
	// MirrorSeq / ArchiveSeq are the release sequence numbers on each side.
	MirrorSeq  int `json:"mirror_seq"`
	ArchiveSeq int `json:"archive_seq"`
	// Stale reports that the archive has published a release the mirror has
	// not yet synced — the §III-C precondition: installing from the archive
	// now would put files on machines that no mirror-derived policy covers.
	Stale bool `json:"stale"`
}

// Staleness compares the mirror's synced release against the archive's
// current one. It answers the question the paper's operator could not:
// "has upstream published since my last sync?"
func (m *Mirror) Staleness() Staleness {
	archiveSeq := m.archive.Seq()
	lastPub := m.archive.LastPublish()
	m.mu.Lock()
	defer m.mu.Unlock()
	return Staleness{
		LastSync:    m.lastSync,
		LastPublish: lastPub,
		MirrorSeq:   m.current.Seq,
		ArchiveSeq:  archiveSeq,
		Stale:       archiveSeq > m.current.Seq,
	}
}

// Package returns the mirror's copy of a package.
func (m *Mirror) Package(name string) (Package, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.current.Packages[name]
	if !ok {
		return Package{}, fmt.Errorf("%w: %s (not mirrored)", ErrUnknownPackage, name)
	}
	p.Files = append([]PackageFile(nil), p.Files...)
	return p, nil
}

// UnpackedFile is one file extracted from a package payload.
type UnpackedFile struct {
	Path    string
	Mode    vfs.Mode
	Content []byte
	// Signature is the vendor signature shipped with the file (hex).
	Signature string
}

// Pack serializes the package's files (with synthetic contents) into a
// gzip-compressed payload — the simulation's ".deb".
func Pack(p Package) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	var u32 [4]byte
	for _, f := range p.Files {
		binary.BigEndian.PutUint32(u32[:], uint32(len(f.Path)))
		if _, err := zw.Write(u32[:]); err != nil {
			return nil, fmt.Errorf("mirror: packing %s: %w", p.Name, err)
		}
		if _, err := io.WriteString(zw, f.Path); err != nil {
			return nil, fmt.Errorf("mirror: packing %s: %w", p.Name, err)
		}
		binary.BigEndian.PutUint32(u32[:], uint32(f.Mode))
		if _, err := zw.Write(u32[:]); err != nil {
			return nil, fmt.Errorf("mirror: packing %s: %w", p.Name, err)
		}
		binary.BigEndian.PutUint32(u32[:], uint32(len(f.Signature)))
		if _, err := zw.Write(u32[:]); err != nil {
			return nil, fmt.Errorf("mirror: packing %s: %w", p.Name, err)
		}
		if _, err := io.WriteString(zw, f.Signature); err != nil {
			return nil, fmt.Errorf("mirror: packing %s: %w", p.Name, err)
		}
		content := vfs.SyntheticContent(p.ContentSeed(f), f.Size)
		binary.BigEndian.PutUint32(u32[:], uint32(len(content)))
		if _, err := zw.Write(u32[:]); err != nil {
			return nil, fmt.Errorf("mirror: packing %s: %w", p.Name, err)
		}
		if _, err := zw.Write(content); err != nil {
			return nil, fmt.Errorf("mirror: packing %s: %w", p.Name, err)
		}
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("mirror: closing payload of %s: %w", p.Name, err)
	}
	return buf.Bytes(), nil
}

// Unpack parses a payload produced by Pack.
func Unpack(payload []byte) ([]UnpackedFile, error) {
	zr, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptPayload, err)
	}
	defer func() { _ = zr.Close() }()
	var out []UnpackedFile
	var u32 [4]byte
	for {
		if _, err := io.ReadFull(zr, u32[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("%w: reading path length: %v", ErrCorruptPayload, err)
		}
		pathLen := binary.BigEndian.Uint32(u32[:])
		if pathLen > 1<<16 {
			return nil, fmt.Errorf("%w: absurd path length %d", ErrCorruptPayload, pathLen)
		}
		pathBuf := make([]byte, pathLen)
		if _, err := io.ReadFull(zr, pathBuf); err != nil {
			return nil, fmt.Errorf("%w: reading path: %v", ErrCorruptPayload, err)
		}
		if _, err := io.ReadFull(zr, u32[:]); err != nil {
			return nil, fmt.Errorf("%w: reading mode: %v", ErrCorruptPayload, err)
		}
		mode := vfs.Mode(binary.BigEndian.Uint32(u32[:]))
		if _, err := io.ReadFull(zr, u32[:]); err != nil {
			return nil, fmt.Errorf("%w: reading signature length: %v", ErrCorruptPayload, err)
		}
		sigLen := binary.BigEndian.Uint32(u32[:])
		if sigLen > 1<<12 {
			return nil, fmt.Errorf("%w: absurd signature length %d", ErrCorruptPayload, sigLen)
		}
		sigBuf := make([]byte, sigLen)
		if _, err := io.ReadFull(zr, sigBuf); err != nil {
			return nil, fmt.Errorf("%w: reading signature: %v", ErrCorruptPayload, err)
		}
		if _, err := io.ReadFull(zr, u32[:]); err != nil {
			return nil, fmt.Errorf("%w: reading content length: %v", ErrCorruptPayload, err)
		}
		contentLen := binary.BigEndian.Uint32(u32[:])
		if contentLen > 1<<30 {
			return nil, fmt.Errorf("%w: absurd content length %d", ErrCorruptPayload, contentLen)
		}
		content := make([]byte, contentLen)
		if _, err := io.ReadFull(zr, content); err != nil {
			return nil, fmt.Errorf("%w: reading content: %v", ErrCorruptPayload, err)
		}
		out = append(out, UnpackedFile{Path: string(pathBuf), Mode: mode, Content: content, Signature: string(sigBuf)})
	}
}
