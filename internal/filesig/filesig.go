// Package filesig implements vendor file signatures — the improvement the
// paper's §V discussion proposes: "file hashes in packages are generated
// and then signed by the package maintainers (similar to ostree)". A
// distribution vendor signs each executable's content digest at publish
// time; the signature ships with the file (as the security.ima extended
// attribute), is measured into the IMA log (the ima-sig template), and a
// verifier holding the vendor's public key can accept the file without the
// digest appearing in any runtime policy — eliminating policy churn for
// vendor-supplied software.
package filesig

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/x509"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"repro/internal/tpm"
)

// Errors.
var (
	ErrBadKey       = errors.New("filesig: bad public key")
	ErrBadSignature = errors.New("filesig: bad signature encoding")
)

// Signer is a vendor signing key. Construct with NewSigner.
type Signer struct {
	key *ecdsa.PrivateKey
	rng io.Reader
}

// NewSigner generates an ECDSA-P256 vendor key.
func NewSigner(rng io.Reader) (*Signer, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rng)
	if err != nil {
		return nil, fmt.Errorf("filesig: generating vendor key: %w", err)
	}
	return &Signer{key: key, rng: rng}, nil
}

// Public returns the vendor public key in PKIX DER form.
func (s *Signer) Public() ([]byte, error) {
	return x509.MarshalPKIXPublicKey(&s.key.PublicKey)
}

// Sign produces an ASN.1 ECDSA signature over the file content digest.
func (s *Signer) Sign(digest tpm.Digest) ([]byte, error) {
	sig, err := ecdsa.SignASN1(s.rng, s.key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("filesig: signing: %w", err)
	}
	return sig, nil
}

// SignHex is Sign with hex output (the on-wire/xattr encoding used
// throughout the simulation).
func (s *Signer) SignHex(digest tpm.Digest) (string, error) {
	sig, err := s.Sign(digest)
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(sig), nil
}

// VerifySet holds the vendor public keys a verifier trusts.
type VerifySet struct {
	keys []*ecdsa.PublicKey
}

// NewVerifySet builds a set from PKIX DER public keys.
func NewVerifySet(pubDERs ...[]byte) (*VerifySet, error) {
	vs := &VerifySet{}
	for _, der := range pubDERs {
		if err := vs.Add(der); err != nil {
			return nil, err
		}
	}
	return vs, nil
}

// Add trusts one more vendor key.
func (vs *VerifySet) Add(pubDER []byte) error {
	pub, err := x509.ParsePKIXPublicKey(pubDER)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadKey, err)
	}
	ecPub, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return fmt.Errorf("%w: got %T", ErrBadKey, pub)
	}
	vs.keys = append(vs.keys, ecPub)
	return nil
}

// Len reports the number of trusted keys.
func (vs *VerifySet) Len() int { return len(vs.keys) }

// Verify reports whether any trusted vendor signed the digest.
func (vs *VerifySet) Verify(digest tpm.Digest, sig []byte) bool {
	for _, k := range vs.keys {
		if ecdsa.VerifyASN1(k, digest[:], sig) {
			return true
		}
	}
	return false
}

// VerifyHex verifies a hex-encoded signature.
func (vs *VerifySet) VerifyHex(digest tpm.Digest, sigHex string) bool {
	sig, err := hex.DecodeString(sigHex)
	if err != nil {
		return false
	}
	return vs.Verify(digest, sig)
}
