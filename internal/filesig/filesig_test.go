package filesig

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/tpm"
)

func newSigner(t *testing.T) *Signer {
	t.Helper()
	s, err := NewSigner(rand.Reader)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	return s
}

func setOf(t *testing.T, signers ...*Signer) *VerifySet {
	t.Helper()
	var pubs [][]byte
	for _, s := range signers {
		pub, err := s.Public()
		if err != nil {
			t.Fatalf("Public: %v", err)
		}
		pubs = append(pubs, pub)
	}
	vs, err := NewVerifySet(pubs...)
	if err != nil {
		t.Fatalf("NewVerifySet: %v", err)
	}
	return vs
}

func TestSignVerifyRoundTrip(t *testing.T) {
	s := newSigner(t)
	vs := setOf(t, s)
	d := sha256.Sum256([]byte("content"))
	sig, err := s.Sign(d)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if !vs.Verify(d, sig) {
		t.Fatal("valid signature rejected")
	}
	other := sha256.Sum256([]byte("other"))
	if vs.Verify(other, sig) {
		t.Fatal("signature accepted for wrong digest")
	}
}

func TestSignHexRoundTrip(t *testing.T) {
	s := newSigner(t)
	vs := setOf(t, s)
	d := sha256.Sum256([]byte("content"))
	sigHex, err := s.SignHex(d)
	if err != nil {
		t.Fatalf("SignHex: %v", err)
	}
	if !vs.VerifyHex(d, sigHex) {
		t.Fatal("hex signature rejected")
	}
	if vs.VerifyHex(d, "zz-not-hex") {
		t.Fatal("garbage hex accepted")
	}
}

func TestUntrustedVendorRejected(t *testing.T) {
	vendor := newSigner(t)
	rogue := newSigner(t)
	vs := setOf(t, vendor)
	d := sha256.Sum256([]byte("x"))
	sig, err := rogue.Sign(d)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if vs.Verify(d, sig) {
		t.Fatal("rogue vendor signature accepted")
	}
}

func TestMultiVendorSet(t *testing.T) {
	a, b := newSigner(t), newSigner(t)
	vs := setOf(t, a, b)
	if vs.Len() != 2 {
		t.Fatalf("Len = %d, want 2", vs.Len())
	}
	d := sha256.Sum256([]byte("x"))
	for _, s := range []*Signer{a, b} {
		sig, err := s.Sign(d)
		if err != nil {
			t.Fatalf("Sign: %v", err)
		}
		if !vs.Verify(d, sig) {
			t.Fatal("signature from trusted vendor rejected")
		}
	}
}

func TestVerifySetRejectsBadKey(t *testing.T) {
	if _, err := NewVerifySet([]byte("garbage")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("err = %v, want ErrBadKey", err)
	}
}

// Property: a signature never verifies for a different digest.
func TestSignatureBindingProperty(t *testing.T) {
	s := newSigner(t)
	vs := setOf(t, s)
	f := func(a, b []byte) bool {
		da := tpm.Digest(sha256.Sum256(a))
		db := tpm.Digest(sha256.Sum256(b))
		sig, err := s.Sign(da)
		if err != nil {
			return false
		}
		if !vs.Verify(da, sig) {
			return false
		}
		if da != db && vs.Verify(db, sig) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
