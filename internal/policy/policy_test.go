package policy

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func d(s string) Digest { return sha256.Sum256([]byte(s)) }

func TestAddAndCheck(t *testing.T) {
	p := New()
	if !p.Add("/bin/bash", d("bash-v1")) {
		t.Fatal("first Add returned false")
	}
	if p.Add("/bin/bash", d("bash-v1")) {
		t.Fatal("duplicate Add returned true")
	}
	if err := p.Check("/bin/bash", d("bash-v1")); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if err := p.Check("/bin/bash", d("bash-v2")); !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("Check wrong digest: %v, want ErrHashMismatch", err)
	}
	if err := p.Check("/bin/evil", d("evil")); !errors.Is(err, ErrNotInPolicy) {
		t.Fatalf("Check unknown path: %v, want ErrNotInPolicy", err)
	}
}

func TestMultipleDigestsPerPath(t *testing.T) {
	// During the update window a path legitimately has two valid digests.
	p := New()
	p.Add("/bin/bash", d("old"))
	p.Add("/bin/bash", d("new"))
	for _, version := range []string{"old", "new"} {
		if err := p.Check("/bin/bash", d(version)); err != nil {
			t.Fatalf("Check(%s): %v", version, err)
		}
	}
	if got := len(p.Allowed("/bin/bash")); got != 2 {
		t.Fatalf("Allowed len = %d, want 2", got)
	}
}

func TestExcludedPathsPassAnything(t *testing.T) {
	p := New()
	if err := p.SetExcludes([]string{"/tmp/.*", "/var/log/.*"}); err != nil {
		t.Fatalf("SetExcludes: %v", err)
	}
	if err := p.Check("/tmp/anything/at/all", d("whatever")); err != nil {
		t.Fatalf("excluded path failed check: %v", err)
	}
	if !p.IsExcluded("/tmp/x") {
		t.Fatal("IsExcluded(/tmp/x) = false")
	}
	if p.IsExcluded("/usr/tmp/x") {
		t.Fatal("exclude pattern matched mid-path; must be anchored")
	}
}

func TestSetExcludesInvalidPattern(t *testing.T) {
	p := New()
	if err := p.SetExcludes([]string{"/tmp/["}); !errors.Is(err, ErrBadExclude) {
		t.Fatalf("err = %v, want ErrBadExclude", err)
	}
}

func TestAddExcludeAppends(t *testing.T) {
	p := New()
	if err := p.AddExclude("/tmp/.*"); err != nil {
		t.Fatalf("AddExclude: %v", err)
	}
	if err := p.AddExclude("/proc/.*"); err != nil {
		t.Fatalf("AddExclude: %v", err)
	}
	if got := len(p.Excludes()); got != 2 {
		t.Fatalf("Excludes len = %d, want 2", got)
	}
	if !p.IsExcluded("/proc/self/exe") {
		t.Fatal("second exclude not active")
	}
}

func TestCombinedExcludeRegexEquivalence(t *testing.T) {
	// The exclude patterns compile into one alternated regex; each pattern
	// must keep its own anchoring and grouping — including patterns that
	// contain top-level alternation themselves.
	patterns := []string{"/tmp/.*", "/var/log/.*|/run/.*", "(?i)/snap/.*"}
	p := New()
	if err := p.SetExcludes(patterns); err != nil {
		t.Fatalf("SetExcludes: %v", err)
	}
	cases := []struct {
		path string
		want bool
	}{
		{"/tmp/x", true},
		{"/var/log/syslog", true},
		{"/run/lock", true},
		{"/SNAP/app/1/bin", true}, // (?i) scoped to its own group
		{"/usr/tmp/x", false},     // anchoring survives combination
		{"/var/run/lock", false},  // second alternative stays anchored too
		{"/usr/bin/ls", false},
	}
	for _, c := range cases {
		if got := p.IsExcluded(c.path); got != c.want {
			t.Errorf("IsExcluded(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestSetExcludesReportsOffendingPattern(t *testing.T) {
	// Validation happens per pattern so the error names the bad one, not
	// the combined alternation.
	p := New()
	err := p.SetExcludes([]string{"/tmp/.*", "/bad/["})
	if !errors.Is(err, ErrBadExclude) {
		t.Fatalf("err = %v, want ErrBadExclude", err)
	}
	if !strings.Contains(err.Error(), "/bad/[") {
		t.Fatalf("error %q does not name the offending pattern", err)
	}
}

func TestCheckHitPathAllocationFree(t *testing.T) {
	p := New()
	dig := d("bash")
	p.Add("/bin/bash", dig)
	if err := p.SetExcludes([]string{"/tmp/.*"}); err != nil {
		t.Fatalf("SetExcludes: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.Check("/bin/bash", dig); err != nil {
			t.Fatalf("Check: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Check hit path allocates %v per op, want 0", allocs)
	}
}

func TestCloneSharesExcludeBehavior(t *testing.T) {
	p := New()
	if err := p.SetExcludes([]string{"/tmp/.*"}); err != nil {
		t.Fatalf("SetExcludes: %v", err)
	}
	c := p.Clone()
	if !c.IsExcluded("/tmp/x") {
		t.Fatal("clone lost exclude")
	}
	// Extending the clone's excludes must not leak into the original.
	if err := c.AddExclude("/run/.*"); err != nil {
		t.Fatalf("AddExclude: %v", err)
	}
	if p.IsExcluded("/run/lock") {
		t.Fatal("AddExclude on clone mutated the original")
	}
	if !c.IsExcluded("/run/lock") {
		t.Fatal("clone's new exclude inactive")
	}
}

func TestLinesAndSize(t *testing.T) {
	p := New()
	p.Add("/bin/a", d("a"))
	p.Add("/bin/a", d("a2"))
	p.Add("/bin/b", d("b"))
	if got := p.Lines(); got != 3 {
		t.Fatalf("Lines = %d, want 3", got)
	}
	// Size: 64 hex + 2 spaces + len(path) + newline per entry.
	want := int64(2*(64+2+len("/bin/a")+1) + (64 + 2 + len("/bin/b") + 1))
	if got := p.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
	if got := int64(len(p.FormatFlat())); got != want {
		t.Fatalf("FormatFlat length = %d, want SizeBytes %d", got, want)
	}
}

func TestMergeUnionAndStats(t *testing.T) {
	base := New()
	base.Add("/bin/a", d("a1"))
	base.Add("/bin/b", d("b1"))
	delta := New()
	delta.Add("/bin/a", d("a2")) // changed file: second digest
	delta.Add("/bin/c", d("c1")) // new file
	delta.Add("/bin/b", d("b1")) // unchanged: no-op
	st := base.Merge(delta)
	if st.AddedEntries != 2 {
		t.Fatalf("AddedEntries = %d, want 2", st.AddedEntries)
	}
	if st.NewPaths != 1 {
		t.Fatalf("NewPaths = %d, want 1", st.NewPaths)
	}
	// Both digests of /bin/a valid during the update window.
	for _, v := range []string{"a1", "a2"} {
		if err := base.Check("/bin/a", d(v)); err != nil {
			t.Fatalf("Check after merge: %v", err)
		}
	}
}

func TestDedupKeepsLastAdded(t *testing.T) {
	p := New()
	p.Add("/bin/a", d("old"))
	p.Add("/bin/a", d("new"))
	p.Add("/bin/b", d("only"))
	removed := p.Dedup(nil)
	if removed != 1 {
		t.Fatalf("Dedup removed %d, want 1", removed)
	}
	if err := p.Check("/bin/a", d("new")); err != nil {
		t.Fatalf("newest digest dropped: %v", err)
	}
	if err := p.Check("/bin/a", d("old")); !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("outdated digest survived dedup: %v", err)
	}
}

func TestDedupCustomKeep(t *testing.T) {
	p := New()
	p.Add("/bin/a", d("x"))
	p.Add("/bin/a", d("y"))
	p.Dedup(func(path string, ds []Digest) Digest { return ds[0] })
	if err := p.Check("/bin/a", d("x")); err != nil {
		t.Fatalf("keep-chosen digest dropped: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := New()
	p.Add("/bin/a", d("a"))
	if err := p.SetExcludes([]string{"/tmp/.*"}); err != nil {
		t.Fatalf("SetExcludes: %v", err)
	}
	c := p.Clone()
	c.Add("/bin/a", d("a2"))
	c.Remove("/bin/a")
	if !p.Has("/bin/a") {
		t.Fatal("mutating clone affected original")
	}
	if !c.IsExcluded("/tmp/x") {
		t.Fatal("clone lost excludes")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := New()
	p.SetMeta(Meta{Generator: "dynamic-policy-generator", Timestamp: time.Date(2024, 2, 26, 5, 0, 0, 0, time.UTC), Release: 7})
	p.Add("/bin/bash", d("bash"))
	p.Add("/usr/bin/python3", d("py1"))
	p.Add("/usr/bin/python3", d("py2"))
	if err := p.SetExcludes([]string{"/tmp/.*"}); err != nil {
		t.Fatalf("SetExcludes: %v", err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var q RuntimePolicy
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if q.Meta() != p.Meta() {
		t.Fatalf("meta = %+v, want %+v", q.Meta(), p.Meta())
	}
	if q.Lines() != p.Lines() {
		t.Fatalf("lines = %d, want %d", q.Lines(), p.Lines())
	}
	if err := q.Check("/usr/bin/python3", d("py2")); err != nil {
		t.Fatalf("Check after round trip: %v", err)
	}
	if !q.IsExcluded("/tmp/x") {
		t.Fatal("excludes lost in round trip")
	}
}

func TestUnmarshalRejectsBadDigest(t *testing.T) {
	var q RuntimePolicy
	bad := `{"meta":{},"digests":{"/bin/x":["zz"]},"excludes":[]}`
	if err := json.Unmarshal([]byte(bad), &q); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}

func TestFlatRoundTrip(t *testing.T) {
	p := New()
	p.Add("/bin/bash", d("bash"))
	p.Add("/opt/My App/run", d("app"))
	flat := p.FormatFlat()
	q, err := ParseFlat(flat)
	if err != nil {
		t.Fatalf("ParseFlat: %v", err)
	}
	if q.Lines() != 2 {
		t.Fatalf("Lines = %d, want 2", q.Lines())
	}
	if err := q.Check("/opt/My App/run", d("app")); err != nil {
		t.Fatalf("Check path with spaces: %v", err)
	}
}

func TestParseFlatSkipsCommentsAndBlank(t *testing.T) {
	input := "# allowlist\n\n" + fmt.Sprintf("%x  /bin/a\n", d("a"))
	p, err := ParseFlat(input)
	if err != nil {
		t.Fatalf("ParseFlat: %v", err)
	}
	if p.Lines() != 1 {
		t.Fatalf("Lines = %d, want 1", p.Lines())
	}
}

func TestParseFlatRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"nothex  /bin/a\n", "deadbeef  /bin/a\n", "no-path-line\n"} {
		if _, err := ParseFlat(bad); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("ParseFlat(%q) err = %v, want ErrBadFormat", bad, err)
		}
	}
}

func TestDiff(t *testing.T) {
	old := New()
	old.Add("/bin/a", d("a1"))
	old.Add("/bin/b", d("b1"))
	updated := old.Clone()
	updated.Add("/bin/a", d("a2")) // changed
	updated.Add("/bin/c", d("c1")) // added
	updated.Remove("/bin/b")       // removed
	st := Diff(old, updated)
	if st.OnlyInNew != 2 {
		t.Fatalf("OnlyInNew = %d, want 2", st.OnlyInNew)
	}
	if st.OnlyInOld != 1 {
		t.Fatalf("OnlyInOld = %d, want 1", st.OnlyInOld)
	}
	if st.PathsChanged != 1 {
		t.Fatalf("PathsChanged = %d, want 1", st.PathsChanged)
	}
}

// Property: merge is idempotent — merging the same delta twice adds nothing
// the second time.
func TestMergeIdempotentProperty(t *testing.T) {
	f := func(paths []uint8, seeds []uint8) bool {
		n := min(len(paths), len(seeds), 30)
		base := New()
		delta := New()
		for i := 0; i < n; i++ {
			delta.Add(fmt.Sprintf("/bin/p%d", paths[i]%10), d(fmt.Sprintf("s%d", seeds[i]%5)))
		}
		base.Merge(delta)
		lines := base.Lines()
		st := base.Merge(delta)
		return st.AddedEntries == 0 && base.Lines() == lines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: after Merge, every entry of the delta passes Check.
func TestMergeSoundnessProperty(t *testing.T) {
	f := func(paths []uint8, seeds []uint8) bool {
		n := min(len(paths), len(seeds), 30)
		base := New()
		base.Add("/bin/existing", d("e"))
		delta := New()
		type pair struct {
			path string
			dig  Digest
		}
		var pairs []pair
		for i := 0; i < n; i++ {
			path := fmt.Sprintf("/bin/p%d", paths[i]%10)
			dig := d(fmt.Sprintf("s%d", seeds[i]))
			delta.Add(path, dig)
			pairs = append(pairs, pair{path, dig})
		}
		base.Merge(delta)
		for _, pr := range pairs {
			if err := base.Check(pr.path, pr.dig); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: JSON round trip preserves Check outcomes.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(paths []uint8, seeds []uint8) bool {
		n := min(len(paths), len(seeds), 20)
		p := New()
		for i := 0; i < n; i++ {
			p.Add(fmt.Sprintf("/usr/bin/f%d", paths[i]), d(fmt.Sprintf("c%d", seeds[i])))
		}
		data, err := json.Marshal(p)
		if err != nil {
			return false
		}
		var q RuntimePolicy
		if err := json.Unmarshal(data, &q); err != nil {
			return false
		}
		if q.Lines() != p.Lines() {
			return false
		}
		for _, path := range p.Paths() {
			for _, dig := range p.Allowed(path) {
				if err := q.Check(path, dig); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
