package policy

// Signed policies implement the improvement the paper's §V discussion asks
// for: "file hashes in packages generated and then signed" (ostree-style),
// so a verifier only accepts runtime policies from trusted policy
// generators and a compromised management channel cannot push a permissive
// policy. An Envelope carries the serialized policy with an ECDSA-P256
// signature and the signer's key id; verifiers keep a set of trusted keys.

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Signing errors.
var (
	ErrUntrustedKey = errors.New("policy: envelope signed by untrusted key")
	ErrBadSignature = errors.New("policy: envelope signature invalid")
	ErrBadEnvelope  = errors.New("policy: malformed envelope")
)

// Envelope is a signed, serialized runtime policy.
type Envelope struct {
	// Payload is the policy's JSON serialization (the exact signed bytes).
	Payload []byte `json:"payload"`
	// KeyID identifies the signing key (hex SHA-256 of its PKIX form).
	KeyID string `json:"key_id"`
	// Signature is an ASN.1 ECDSA signature over SHA-256(Payload).
	Signature []byte `json:"signature"`
}

// Signer produces policy envelopes. Construct with NewSigner.
type Signer struct {
	key   *ecdsa.PrivateKey
	keyID string
	rng   io.Reader
}

// KeyIDOf computes the key id of a PKIX-encoded public key.
func KeyIDOf(pubDER []byte) string {
	sum := sha256.Sum256(pubDER)
	return hex.EncodeToString(sum[:])
}

// NewSigner generates a fresh ECDSA-P256 signing key.
func NewSigner(rng io.Reader) (*Signer, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rng)
	if err != nil {
		return nil, fmt.Errorf("policy: generating signing key: %w", err)
	}
	pubDER, err := x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("policy: marshaling signing key: %w", err)
	}
	return &Signer{key: key, keyID: KeyIDOf(pubDER), rng: rng}, nil
}

// Public returns the signer's public key in PKIX DER form.
func (s *Signer) Public() ([]byte, error) {
	return x509.MarshalPKIXPublicKey(&s.key.PublicKey)
}

// KeyID returns the signer's key id.
func (s *Signer) KeyID() string { return s.keyID }

// Sign serializes and signs a policy.
func (s *Signer) Sign(p *RuntimePolicy) (Envelope, error) {
	payload, err := json.Marshal(p)
	if err != nil {
		return Envelope{}, fmt.Errorf("policy: serializing for signature: %w", err)
	}
	sum := sha256.Sum256(payload)
	sig, err := ecdsa.SignASN1(s.rng, s.key, sum[:])
	if err != nil {
		return Envelope{}, fmt.Errorf("policy: signing: %w", err)
	}
	return Envelope{Payload: payload, KeyID: s.keyID, Signature: sig}, nil
}

// TrustStore holds the public keys a verifier accepts policies from.
type TrustStore struct {
	keys map[string]*ecdsa.PublicKey
}

// NewTrustStore builds a store from PKIX-encoded public keys.
func NewTrustStore(pubDERs ...[]byte) (*TrustStore, error) {
	ts := &TrustStore{keys: make(map[string]*ecdsa.PublicKey, len(pubDERs))}
	for _, der := range pubDERs {
		if err := ts.Add(der); err != nil {
			return nil, err
		}
	}
	return ts, nil
}

// Add trusts one more key.
func (ts *TrustStore) Add(pubDER []byte) error {
	pub, err := x509.ParsePKIXPublicKey(pubDER)
	if err != nil {
		return fmt.Errorf("policy: parsing trusted key: %w", err)
	}
	ecPub, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return fmt.Errorf("policy: trusted key is %T, want *ecdsa.PublicKey", pub)
	}
	ts.keys[KeyIDOf(pubDER)] = ecPub
	return nil
}

// Len reports how many keys are trusted.
func (ts *TrustStore) Len() int { return len(ts.keys) }

// Verify checks the envelope against the trusted keys and returns the
// contained policy.
func (ts *TrustStore) Verify(env Envelope) (*RuntimePolicy, error) {
	if len(env.Payload) == 0 || env.KeyID == "" {
		return nil, ErrBadEnvelope
	}
	pub, ok := ts.keys[env.KeyID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUntrustedKey, env.KeyID)
	}
	sum := sha256.Sum256(env.Payload)
	if !ecdsa.VerifyASN1(pub, sum[:], env.Signature) {
		return nil, ErrBadSignature
	}
	pol := New()
	if err := json.Unmarshal(env.Payload, pol); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrBadEnvelope, err)
	}
	return pol, nil
}
