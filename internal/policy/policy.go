// Package policy implements the Keylime runtime policy: the allowlist of
// file digests the verifier checks IMA measurement entries against, plus
// exclude patterns for paths the operator elects not to attest.
//
// The paper's false-positive findings are policy/measurement mismatches
// (stale digests after OS updates, paths missing from the policy, SNAP
// path truncation), and its P1 finding is an overly permissive exclude
// (the /tmp wildcard). The dynamic policy generator (internal/core)
// produces and incrementally updates values of this type.
//
// A RuntimePolicy is a plain data structure and is not safe for concurrent
// mutation; the verifier swaps complete policies atomically.
package policy

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"time"

	"repro/internal/tpm"
)

// Digest aliases the TPM digest type used throughout the system.
type Digest = tpm.Digest

// Sentinel errors for policy evaluation and parsing.
var (
	ErrHashMismatch = errors.New("policy: file digest does not match any allowed digest")
	ErrNotInPolicy  = errors.New("policy: file not present in policy")
	ErrBadExclude   = errors.New("policy: invalid exclude pattern")
	ErrBadFormat    = errors.New("policy: malformed serialized policy")
)

// Meta carries provenance information for a policy.
type Meta struct {
	Generator string    `json:"generator"`
	Timestamp time.Time `json:"timestamp"`
	// Release is the mirror release sequence the policy was built from.
	Release int `json:"release"`
}

// RuntimePolicy is the verifier-side allowlist.
type RuntimePolicy struct {
	meta     Meta
	digests  map[string][]Digest
	excludes []string
	// compiled is the whole exclude list folded into one alternated,
	// anchored regex (nil when there are no patterns): one NFA walk per
	// lookup instead of one per pattern, which is what keeps IsExcluded
	// off the verifier's per-entry critical path.
	compiled *regexp.Regexp
}

// New returns an empty policy.
func New() *RuntimePolicy {
	return &RuntimePolicy{digests: make(map[string][]Digest)}
}

// Meta returns the policy metadata.
func (p *RuntimePolicy) Meta() Meta { return p.meta }

// SetMeta replaces the policy metadata.
func (p *RuntimePolicy) SetMeta(m Meta) { p.meta = m }

// Add records an allowed digest for path, deduplicating. It reports whether
// a new entry was added.
func (p *RuntimePolicy) Add(path string, d Digest) bool {
	for _, existing := range p.digests[path] {
		if existing == d {
			return false
		}
	}
	p.digests[path] = append(p.digests[path], d)
	return true
}

// Remove deletes every digest recorded for path.
func (p *RuntimePolicy) Remove(path string) {
	delete(p.digests, path)
}

// Allowed returns the digests recorded for path.
func (p *RuntimePolicy) Allowed(path string) []Digest {
	return append([]Digest(nil), p.digests[path]...)
}

// Has reports whether path has at least one allowed digest.
func (p *RuntimePolicy) Has(path string) bool {
	return len(p.digests[path]) > 0
}

// Paths returns every path in the policy, sorted.
func (p *RuntimePolicy) Paths() []string {
	out := make([]string, 0, len(p.digests))
	for path := range p.digests {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// SetExcludes replaces the exclude pattern list. Patterns are anchored
// regular expressions (Keylime semantics). The patterns are compiled into a
// single alternated regex so evaluation cost does not grow with one NFA
// start per pattern.
func (p *RuntimePolicy) SetExcludes(patterns []string) error {
	// Validate each pattern on its own first so the error names the
	// offending pattern, not the combined alternation.
	for _, pat := range patterns {
		if _, err := regexp.Compile("^(?:" + pat + ")"); err != nil {
			return fmt.Errorf("%w: %q: %v", ErrBadExclude, pat, err)
		}
	}
	p.excludes = append([]string(nil), patterns...)
	p.compiled = nil
	if len(patterns) == 0 {
		return nil
	}
	alts := make([]string, len(patterns))
	for i, pat := range patterns {
		alts[i] = "(?:" + pat + ")"
	}
	combined, err := regexp.Compile("^(?:" + strings.Join(alts, "|") + ")")
	if err != nil {
		return fmt.Errorf("%w: combining %d patterns: %v", ErrBadExclude, len(patterns), err)
	}
	p.compiled = combined
	return nil
}

// AddExclude appends one exclude pattern.
func (p *RuntimePolicy) AddExclude(pattern string) error {
	return p.SetExcludes(append(p.Excludes(), pattern))
}

// Excludes returns the exclude pattern list.
func (p *RuntimePolicy) Excludes() []string {
	return append([]string(nil), p.excludes...)
}

// IsExcluded reports whether the path matches any exclude pattern.
func (p *RuntimePolicy) IsExcluded(path string) bool {
	return p.compiled != nil && p.compiled.MatchString(path)
}

// Check evaluates one measured (path, digest) pair against the policy:
// excluded paths pass unconditionally; otherwise the digest must be one of
// the allowed digests for the path. The two failure modes are the paper's
// false-positive error types: ErrNotInPolicy ("missing file in the policy")
// and ErrHashMismatch.
//
// The common case — a measured digest that matches its policy entry — is a
// plain map lookup: no regex walk, no allocation. An excluded path passes
// whether or not a policy entry exists, so checking the allowlist first
// cannot change the verdict; it only reorders which test short-circuits.
func (p *RuntimePolicy) Check(path string, d Digest) error {
	allowed, ok := p.digests[path]
	for _, a := range allowed {
		if a == d {
			return nil
		}
	}
	// Slow path: mismatch or unknown path; the exclude regex decides
	// whether this is a pass or one of the paper's FP error types.
	if p.IsExcluded(path) {
		return nil
	}
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotInPolicy, path)
	}
	return fmt.Errorf("%w: %s", ErrHashMismatch, path)
}

// Lines counts (path, digest) entries — the unit the paper reports policy
// sizes in (e.g. "1,271 lines per daily update").
func (p *RuntimePolicy) Lines() int {
	n := 0
	for _, ds := range p.digests {
		n += len(ds)
	}
	return n
}

// SizeBytes returns the size of the flat allowlist serialization.
func (p *RuntimePolicy) SizeBytes() int64 {
	var n int64
	for path, ds := range p.digests {
		// "<64 hex>  <path>\n"
		n += int64(len(ds)) * int64(2*len(Digest{})+2+len(path)+1)
	}
	return n
}

// Clone deep-copies the policy. The compiled exclude regex is shared, not
// recompiled: *regexp.Regexp is safe for concurrent use and immutable once
// built, and generator update runs Clone large policies on every cycle.
func (p *RuntimePolicy) Clone() *RuntimePolicy {
	out := New()
	out.meta = p.meta
	for path, ds := range p.digests {
		out.digests[path] = append([]Digest(nil), ds...)
	}
	out.excludes = append([]string(nil), p.excludes...)
	out.compiled = p.compiled
	return out
}

// MergeStats summarizes what a Merge changed.
type MergeStats struct {
	// AddedEntries is the number of new (path, digest) pairs.
	AddedEntries int
	// NewPaths is how many of those were for previously unknown paths.
	NewPaths int
}

// Merge folds every entry of other into p (union of digests per path). The
// paper's update-window consistency rule (§III-C) is exactly this: keep the
// old digests, add the new ones, dedup later.
func (p *RuntimePolicy) Merge(other *RuntimePolicy) MergeStats {
	var st MergeStats
	for path, ds := range other.digests {
		known := p.Has(path)
		for _, d := range ds {
			if p.Add(path, d) {
				st.AddedEntries++
				if !known {
					st.NewPaths++
					known = true
				}
			}
		}
	}
	return st
}

// Dedup retains only the newest digest per path according to keep: for each
// path with multiple digests, keep decides which single digest survives.
// Passing nil keeps the last-added digest (the paper's post-update
// deduplication of outdated hashes).
func (p *RuntimePolicy) Dedup(keep func(path string, ds []Digest) Digest) int {
	removed := 0
	for path, ds := range p.digests {
		if len(ds) <= 1 {
			continue
		}
		var chosen Digest
		if keep != nil {
			chosen = keep(path, ds)
		} else {
			chosen = ds[len(ds)-1]
		}
		removed += len(ds) - 1
		p.digests[path] = []Digest{chosen}
	}
	return removed
}

// jsonPolicy is the serialized form (mirrors Keylime's runtime policy JSON).
type jsonPolicy struct {
	Meta     Meta                `json:"meta"`
	Digests  map[string][]string `json:"digests"`
	Excludes []string            `json:"excludes"`
}

// MarshalJSON implements json.Marshaler.
func (p *RuntimePolicy) MarshalJSON() ([]byte, error) {
	jp := jsonPolicy{Meta: p.meta, Digests: make(map[string][]string, len(p.digests)), Excludes: p.excludes}
	for path, ds := range p.digests {
		hexes := make([]string, len(ds))
		for i, d := range ds {
			hexes[i] = hex.EncodeToString(d[:])
		}
		jp.Digests[path] = hexes
	}
	return json.Marshal(jp)
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *RuntimePolicy) UnmarshalJSON(data []byte) error {
	var jp jsonPolicy
	if err := json.Unmarshal(data, &jp); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	p.meta = jp.Meta
	p.digests = make(map[string][]Digest, len(jp.Digests))
	for path, hexes := range jp.Digests {
		ds := make([]Digest, 0, len(hexes))
		for _, h := range hexes {
			raw, err := hex.DecodeString(h)
			if err != nil || len(raw) != len(Digest{}) {
				return fmt.Errorf("%w: digest %q for %s", ErrBadFormat, h, path)
			}
			var d Digest
			copy(d[:], raw)
			ds = append(ds, d)
		}
		p.digests[path] = ds
	}
	return p.SetExcludes(jp.Excludes)
}

// FormatFlat renders the policy as a legacy flat allowlist
// ("<sha256-hex>  <path>") sorted by path.
func (p *RuntimePolicy) FormatFlat() string {
	var b strings.Builder
	for _, path := range p.Paths() {
		for _, d := range p.digests[path] {
			b.WriteString(hex.EncodeToString(d[:]))
			b.WriteString("  ")
			b.WriteString(path)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// ParseFlat parses the flat allowlist format.
func ParseFlat(s string) (*RuntimePolicy, error) {
	p := New()
	sc := bufio.NewScanner(strings.NewReader(s))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		hexPart, path, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadFormat, lineNo, line)
		}
		path = strings.TrimSpace(path)
		raw, err := hex.DecodeString(hexPart)
		if err != nil || len(raw) != len(Digest{}) || path == "" {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadFormat, lineNo, line)
		}
		var d Digest
		copy(d[:], raw)
		p.Add(path, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("policy: scanning flat allowlist: %w", err)
	}
	return p, nil
}

// DiffStats compares two policies.
type DiffStats struct {
	// OnlyInNew counts (path,digest) entries present in new but not old.
	OnlyInNew int
	// OnlyInOld counts entries present in old but not new.
	OnlyInOld int
	// PathsChanged counts paths present in both with different digest sets.
	PathsChanged int
}

// Diff computes entry-level differences between two policies.
func Diff(old, updated *RuntimePolicy) DiffStats {
	var st DiffStats
	contains := func(ds []Digest, d Digest) bool {
		for _, x := range ds {
			if x == d {
				return true
			}
		}
		return false
	}
	for path, ds := range updated.digests {
		oldDs := old.digests[path]
		changed := false
		for _, d := range ds {
			if !contains(oldDs, d) {
				st.OnlyInNew++
				changed = true
			}
		}
		if changed && len(oldDs) > 0 {
			st.PathsChanged++
		}
	}
	for path, ds := range old.digests {
		newDs := updated.digests[path]
		for _, d := range ds {
			if !contains(newDs, d) {
				st.OnlyInOld++
			}
		}
	}
	return st
}
