package policy

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"testing"
	"testing/quick"
)

func newSignedFixture(t *testing.T) (*Signer, *RuntimePolicy) {
	t.Helper()
	s, err := NewSigner(rand.Reader)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	p := New()
	p.Add("/bin/bash", sha256.Sum256([]byte("bash")))
	p.Add("/usr/bin/python3", sha256.Sum256([]byte("py")))
	if err := p.SetExcludes([]string{"/tmp/.*"}); err != nil {
		t.Fatalf("SetExcludes: %v", err)
	}
	return s, p
}

func trustOf(t *testing.T, signers ...*Signer) *TrustStore {
	t.Helper()
	var pubs [][]byte
	for _, s := range signers {
		pub, err := s.Public()
		if err != nil {
			t.Fatalf("Public: %v", err)
		}
		pubs = append(pubs, pub)
	}
	ts, err := NewTrustStore(pubs...)
	if err != nil {
		t.Fatalf("NewTrustStore: %v", err)
	}
	return ts
}

func TestSignVerifyRoundTrip(t *testing.T) {
	s, p := newSignedFixture(t)
	env, err := s.Sign(p)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if env.KeyID != s.KeyID() {
		t.Fatalf("KeyID = %q, want %q", env.KeyID, s.KeyID())
	}
	ts := trustOf(t, s)
	got, err := ts.Verify(env)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got.Lines() != p.Lines() {
		t.Fatalf("lines = %d, want %d", got.Lines(), p.Lines())
	}
	if !got.IsExcluded("/tmp/x") {
		t.Fatal("excludes lost through envelope")
	}
	if err := got.Check("/bin/bash", sha256.Sum256([]byte("bash"))); err != nil {
		t.Fatalf("Check after verify: %v", err)
	}
}

func TestVerifyRejectsUntrustedKey(t *testing.T) {
	s, p := newSignedFixture(t)
	env, err := s.Sign(p)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	other, err := NewSigner(rand.Reader)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	ts := trustOf(t, other)
	if _, err := ts.Verify(env); !errors.Is(err, ErrUntrustedKey) {
		t.Fatalf("err = %v, want ErrUntrustedKey", err)
	}
}

func TestVerifyRejectsTamperedPayload(t *testing.T) {
	s, p := newSignedFixture(t)
	env, err := s.Sign(p)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	ts := trustOf(t, s)
	// Flip one byte inside the payload (e.g. a digest hex char).
	tampered := env
	tampered.Payload = append([]byte(nil), env.Payload...)
	idx := len(tampered.Payload) / 2
	tampered.Payload[idx] ^= 0x01
	if _, err := ts.Verify(tampered); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsWrongKeyIDForSignature(t *testing.T) {
	s1, p := newSignedFixture(t)
	s2, err := NewSigner(rand.Reader)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	env, err := s1.Sign(p)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	// Attacker rewrites the key id to a trusted key they don't hold.
	env.KeyID = s2.KeyID()
	ts := trustOf(t, s2)
	if _, err := ts.Verify(env); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsEmptyEnvelope(t *testing.T) {
	s, _ := newSignedFixture(t)
	ts := trustOf(t, s)
	if _, err := ts.Verify(Envelope{}); !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("err = %v, want ErrBadEnvelope", err)
	}
}

func TestTrustStoreMultipleKeys(t *testing.T) {
	s1, p := newSignedFixture(t)
	s2, err := NewSigner(rand.Reader)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	ts := trustOf(t, s1, s2)
	if ts.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ts.Len())
	}
	for _, s := range []*Signer{s1, s2} {
		env, err := s.Sign(p)
		if err != nil {
			t.Fatalf("Sign: %v", err)
		}
		if _, err := ts.Verify(env); err != nil {
			t.Fatalf("Verify with key %s: %v", s.KeyID(), err)
		}
	}
}

func TestTrustStoreRejectsBadKeyBytes(t *testing.T) {
	if _, err := NewTrustStore([]byte("not a key")); err == nil {
		t.Fatal("NewTrustStore accepted garbage")
	}
}

// Property: any single-byte corruption of payload or signature is rejected.
func TestEnvelopeTamperProperty(t *testing.T) {
	s, p := newSignedFixture(t)
	env, err := s.Sign(p)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	ts := trustOf(t, s)
	f := func(offset uint16, inPayload bool, bit uint8) bool {
		tampered := env
		if inPayload {
			tampered.Payload = append([]byte(nil), env.Payload...)
			tampered.Payload[int(offset)%len(tampered.Payload)] ^= 1 << (bit % 8)
		} else {
			tampered.Signature = append([]byte(nil), env.Signature...)
			tampered.Signature[int(offset)%len(tampered.Signature)] ^= 1 << (bit % 8)
		}
		_, err := ts.Verify(tampered)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
