package policy_test

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/policy"
)

// ExampleRuntimePolicy_Check shows the verifier-side evaluation of measured
// entries, including the two false-positive error classes from the paper.
func ExampleRuntimePolicy_Check() {
	pol := policy.New()
	good := sha256.Sum256([]byte("bash 5.1-6"))
	pol.Add("/bin/bash", good)
	_ = pol.SetExcludes([]string{"/tmp/.*"})

	fmt.Println(pol.Check("/bin/bash", good))                             // known file, right digest
	fmt.Println(pol.Check("/bin/bash", sha256.Sum256([]byte("patched")))) // hash mismatch
	fmt.Println(pol.Check("/usr/bin/new-tool", good))                     // missing from policy
	fmt.Println(pol.Check("/tmp/anything", good))                         // excluded (P1)
	// Output:
	// <nil>
	// policy: file digest does not match any allowed digest: /bin/bash
	// policy: file not present in policy: /usr/bin/new-tool
	// <nil>
}

// ExampleRuntimePolicy_Merge shows the update-window consistency rule: old
// and new digests coexist during an update, then dedup drops stale ones.
func ExampleRuntimePolicy_Merge() {
	current := policy.New()
	oldDigest := sha256.Sum256([]byte("curl 7.81-1"))
	current.Add("/usr/bin/curl", oldDigest)

	update := policy.New()
	newDigest := sha256.Sum256([]byte("curl 7.81-2"))
	update.Add("/usr/bin/curl", newDigest)

	stats := current.Merge(update)
	fmt.Println("added entries:", stats.AddedEntries)
	fmt.Println("old digest still valid during window:", current.Check("/usr/bin/curl", oldDigest) == nil)

	removed := current.Dedup(nil)
	fmt.Println("stale digests removed after update:", removed)
	fmt.Println("old digest valid after dedup:", current.Check("/usr/bin/curl", oldDigest) == nil)
	// Output:
	// added entries: 1
	// old digest still valid during window: true
	// stale digests removed after update: 1
	// old digest valid after dedup: false
}
