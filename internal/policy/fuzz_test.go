package policy

import (
	"crypto/sha256"
	"encoding/json"
	"testing"
)

// FuzzParseFlat exercises the flat-allowlist parser: no panics, and
// accepted input round-trips through FormatFlat.
func FuzzParseFlat(f *testing.F) {
	p := New()
	p.Add("/bin/bash", sha256.Sum256([]byte("bash")))
	f.Add(p.FormatFlat())
	f.Add("# comment\n\n")
	f.Add("zz /bin/x\n")
	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := ParseFlat(input)
		if err != nil {
			return
		}
		again, err := ParseFlat(parsed.FormatFlat())
		if err != nil {
			t.Fatalf("reparse of formatted policy failed: %v", err)
		}
		if again.Lines() != parsed.Lines() {
			t.Fatalf("round trip changed line count: %d -> %d", parsed.Lines(), again.Lines())
		}
	})
}

// FuzzUnmarshalJSON exercises the runtime-policy JSON decoder.
func FuzzUnmarshalJSON(f *testing.F) {
	p := New()
	p.Add("/bin/bash", sha256.Sum256([]byte("bash")))
	_ = p.SetExcludes([]string{"/tmp/.*"})
	good, _ := json.Marshal(p)
	f.Add(string(good))
	f.Add(`{"meta":{},"digests":{},"excludes":[]}`)
	f.Add(`{"digests":{"/x":["zz"]}}`)
	f.Fuzz(func(t *testing.T, input string) {
		var q RuntimePolicy
		if err := json.Unmarshal([]byte(input), &q); err != nil {
			return
		}
		// Accepted policies must re-serialize and re-parse.
		data, err := json.Marshal(&q)
		if err != nil {
			t.Fatalf("re-marshal of accepted policy failed: %v", err)
		}
		var r RuntimePolicy
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if r.Lines() != q.Lines() {
			t.Fatalf("round trip changed lines: %d -> %d", q.Lines(), r.Lines())
		}
	})
}
