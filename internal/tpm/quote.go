package tpm

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"fmt"
)

// quoteMagic marks a well-formed attested blob (TPM_GENERATED_VALUE in the
// real specification).
const quoteMagic = 0xff544347 // "\xffTCG"

// Attested is the signed portion of a quote (TPMS_ATTEST, reduced).
type Attested struct {
	// Nonce is the verifier-supplied qualifying data (anti-replay).
	Nonce []byte
	// Selection lists the quoted PCR indices in order.
	Selection []int
	// PCRDigest is SHA-256 over the concatenated selected PCR values.
	PCRDigest Digest
	// FirmwareVersion is a free-form clock/version field (monotonic in
	// real TPMs; constant here).
	FirmwareVersion uint64
}

// Quote is a signed attestation over a PCR selection. PCRValues carries the
// raw register values so the verifier can both check them against the
// attested composite digest and use individual registers (e.g. PCR 10 for
// IMA log replay).
type Quote struct {
	Attested  Attested
	PCRValues []Digest
	// Signature is an ASN.1 ECDSA signature by the AK over the canonical
	// encoding of Attested.
	Signature []byte
}

// encodeAttested produces the canonical byte encoding that is signed.
func encodeAttested(a Attested) []byte {
	var buf bytes.Buffer
	var u32 [4]byte
	var u64 [8]byte
	binary.BigEndian.PutUint32(u32[:], quoteMagic)
	buf.Write(u32[:])
	binary.BigEndian.PutUint32(u32[:], uint32(len(a.Nonce)))
	buf.Write(u32[:])
	buf.Write(a.Nonce)
	binary.BigEndian.PutUint32(u32[:], uint32(len(a.Selection)))
	buf.Write(u32[:])
	for _, idx := range a.Selection {
		binary.BigEndian.PutUint32(u32[:], uint32(idx))
		buf.Write(u32[:])
	}
	buf.Write(a.PCRDigest[:])
	binary.BigEndian.PutUint64(u64[:], a.FirmwareVersion)
	buf.Write(u64[:])
	return buf.Bytes()
}

// compositeDigest hashes the concatenation of PCR values in selection order.
func compositeDigest(values []Digest) Digest {
	h := sha256.New()
	for _, v := range values {
		h.Write(v[:])
	}
	var out Digest
	copy(out[:], h.Sum(nil))
	return out
}

// PCRComposite returns the composite digest over the selected PCRs — the
// same digest a Quote attests (compositeDigest over the selection in
// order) — without producing a signature. It is the cheap TPM read behind
// sessioned attestation's steady-state round, and allocates nothing.
func (t *TPM) PCRComposite(selection []int) (Digest, error) {
	if len(selection) == 0 {
		return Digest{}, ErrEmptySelection
	}
	if len(selection) > NumPCRs {
		return Digest{}, fmt.Errorf("%w: selection of %d", ErrPCRIndex, len(selection))
	}
	var buf [NumPCRs * DigestSize]byte
	b := &t.pcrs
	b.mu.RLock()
	for i, idx := range selection {
		if idx < 0 || idx >= NumPCRs {
			b.mu.RUnlock()
			return Digest{}, fmt.Errorf("%w: %d", ErrPCRIndex, idx)
		}
		copy(buf[i*DigestSize:], b.pcrs[idx][:])
	}
	b.mu.RUnlock()
	return sha256.Sum256(buf[:len(selection)*DigestSize]), nil
}

// Quote produces a signed attestation of the selected PCRs with the given
// qualifying nonce (TPM2_Quote).
func (t *TPM) Quote(nonce []byte, selection []int) (Quote, error) {
	t.mu.Lock()
	ak := t.ak
	rng := t.rng
	t.mu.Unlock()
	if ak == nil {
		return Quote{}, ErrNoAK
	}
	values, err := t.pcrs.snapshot(selection)
	if err != nil {
		return Quote{}, err
	}
	att := Attested{
		Nonce:     append([]byte(nil), nonce...),
		Selection: append([]int(nil), selection...),
		PCRDigest: compositeDigest(values),
	}
	sum := sha256.Sum256(encodeAttested(att))
	sig, err := ecdsa.SignASN1(rng, ak, sum[:])
	if err != nil {
		return Quote{}, fmt.Errorf("tpm: signing quote: %w", err)
	}
	return Quote{Attested: att, PCRValues: values, Signature: sig}, nil
}

// ParseAKPublic parses an attestation public key from PKIX DER form. The
// verifier parses each agent's AK once at enrollment and reuses the parsed
// key for every subsequent quote verification via VerifyQuoteWithKey.
func ParseAKPublic(akPubDER []byte) (*ecdsa.PublicKey, error) {
	pub, err := x509.ParsePKIXPublicKey(akPubDER)
	if err != nil {
		return nil, fmt.Errorf("tpm: parsing AK public key: %w", err)
	}
	ecPub, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("tpm: AK is not ECDSA (got %T)", pub)
	}
	return ecPub, nil
}

// VerifyQuote checks a quote end to end against the AK public key (PKIX DER)
// and the expected nonce: signature, magic via canonical encoding, nonce
// equality, and consistency of the carried PCR values with the attested
// composite digest. On success it returns the quoted PCR values keyed by
// register index.
func VerifyQuote(akPubDER []byte, q Quote, nonce []byte) (map[int]Digest, error) {
	ecPub, err := ParseAKPublic(akPubDER)
	if err != nil {
		return nil, err
	}
	return VerifyQuoteWithKey(ecPub, q, nonce)
}

// VerifyQuoteWithKey is VerifyQuote for a pre-parsed AK public key: callers
// that verify many quotes against the same key (the verifier's per-round
// hot path) skip the DER parse entirely.
func VerifyQuoteWithKey(ecPub *ecdsa.PublicKey, q Quote, nonce []byte) (map[int]Digest, error) {
	sum := sha256.Sum256(encodeAttested(q.Attested))
	if !ecdsa.VerifyASN1(ecPub, sum[:], q.Signature) {
		return nil, ErrQuoteSignature
	}
	if !bytes.Equal(q.Attested.Nonce, nonce) {
		return nil, ErrQuoteNonce
	}
	if len(q.PCRValues) != len(q.Attested.Selection) {
		return nil, fmt.Errorf("%w: %d values for %d selected registers",
			ErrQuoteComposite, len(q.PCRValues), len(q.Attested.Selection))
	}
	if compositeDigest(q.PCRValues) != q.Attested.PCRDigest {
		return nil, ErrQuoteComposite
	}
	out := make(map[int]Digest, len(q.PCRValues))
	for i, idx := range q.Attested.Selection {
		out[idx] = q.PCRValues[i]
	}
	return out, nil
}
