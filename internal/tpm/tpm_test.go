package tpm

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"testing"
	"testing/quick"
)

// newTestTPM builds a CA + TPM with a small EK for test speed.
func newTestTPM(t *testing.T) (*ManufacturerCA, *TPM) {
	t.Helper()
	ca, err := NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	dev, err := New(ca, WithEKBits(1024), WithSerial("TEST-42"))
	if err != nil {
		t.Fatalf("New TPM: %v", err)
	}
	return ca, dev
}

func TestPCRExtendChainsHashes(t *testing.T) {
	var b PCRBank
	d1 := sha256.Sum256([]byte("one"))
	d2 := sha256.Sum256([]byte("two"))
	if err := b.Extend(10, d1); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if err := b.Extend(10, d2); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	// Recompute by hand.
	var zero Digest
	h := sha256.New()
	h.Write(zero[:])
	h.Write(d1[:])
	var step1 Digest
	copy(step1[:], h.Sum(nil))
	h.Reset()
	h.Write(step1[:])
	h.Write(d2[:])
	var want Digest
	copy(want[:], h.Sum(nil))
	got, err := b.Read(10)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got != want {
		t.Fatalf("PCR10 = %x, want %x", got, want)
	}
}

func TestPCRExtendOrderMatters(t *testing.T) {
	var a, b PCRBank
	d1 := sha256.Sum256([]byte("one"))
	d2 := sha256.Sum256([]byte("two"))
	_ = a.Extend(0, d1)
	_ = a.Extend(0, d2)
	_ = b.Extend(0, d2)
	_ = b.Extend(0, d1)
	av, _ := a.Read(0)
	bv, _ := b.Read(0)
	if av == bv {
		t.Fatal("extend should not be commutative")
	}
}

func TestPCRIndexBounds(t *testing.T) {
	var b PCRBank
	if err := b.Extend(NumPCRs, Digest{}); !errors.Is(err, ErrPCRIndex) {
		t.Fatalf("Extend out of range: %v, want ErrPCRIndex", err)
	}
	if err := b.Extend(-1, Digest{}); !errors.Is(err, ErrPCRIndex) {
		t.Fatalf("Extend(-1): %v, want ErrPCRIndex", err)
	}
	if _, err := b.Read(NumPCRs); !errors.Is(err, ErrPCRIndex) {
		t.Fatalf("Read out of range: %v, want ErrPCRIndex", err)
	}
}

func TestPCRResetZeroes(t *testing.T) {
	var b PCRBank
	_ = b.Extend(10, sha256.Sum256([]byte("x")))
	b.Reset()
	v, _ := b.Read(10)
	if v != (Digest{}) {
		t.Fatalf("PCR10 after reset = %x, want zero", v)
	}
}

func TestEKCertVerifiesAgainstCA(t *testing.T) {
	ca, dev := newTestTPM(t)
	cert, err := VerifyEKCert(dev.EKCertificate(), ca.Pool())
	if err != nil {
		t.Fatalf("VerifyEKCert: %v", err)
	}
	if cert.Subject.CommonName != "TPM EK TEST-42" {
		t.Fatalf("CommonName = %q", cert.Subject.CommonName)
	}
}

func TestEKCertRejectedByWrongCA(t *testing.T) {
	_, dev := newTestTPM(t)
	otherCA, err := NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	if _, err := VerifyEKCert(dev.EKCertificate(), otherCA.Pool()); !errors.Is(err, ErrEKCertificate) {
		t.Fatalf("VerifyEKCert with wrong CA: %v, want ErrEKCertificate", err)
	}
}

func TestCredentialActivationRoundTrip(t *testing.T) {
	ca, dev := newTestTPM(t)
	akPub, err := dev.CreateAK()
	if err != nil {
		t.Fatalf("CreateAK: %v", err)
	}
	ekCert, err := VerifyEKCert(dev.EKCertificate(), ca.Pool())
	if err != nil {
		t.Fatalf("VerifyEKCert: %v", err)
	}
	cred, wantProof, err := MakeCredential(rand.Reader, ekCert, akPub)
	if err != nil {
		t.Fatalf("MakeCredential: %v", err)
	}
	gotProof, err := dev.ActivateCredential(cred)
	if err != nil {
		t.Fatalf("ActivateCredential: %v", err)
	}
	if gotProof != wantProof {
		t.Fatal("activation proof mismatch")
	}
}

func TestCredentialBoundToAK(t *testing.T) {
	ca, dev := newTestTPM(t)
	if _, err := dev.CreateAK(); err != nil {
		t.Fatalf("CreateAK: %v", err)
	}
	// Build a credential bound to some OTHER key's name.
	_, otherDev := newTestTPM(t)
	otherAK, err := otherDev.CreateAK()
	if err != nil {
		t.Fatalf("CreateAK(other): %v", err)
	}
	ekCert, err := VerifyEKCert(dev.EKCertificate(), ca.Pool())
	if err != nil {
		t.Fatalf("VerifyEKCert: %v", err)
	}
	cred, _, err := MakeCredential(rand.Reader, ekCert, otherAK)
	if err != nil {
		t.Fatalf("MakeCredential: %v", err)
	}
	if _, err := dev.ActivateCredential(cred); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("ActivateCredential with foreign binding: %v, want ErrBadCredential", err)
	}
}

func TestCredentialRequiresMatchingEK(t *testing.T) {
	ca, dev := newTestTPM(t)
	akPub, err := dev.CreateAK()
	if err != nil {
		t.Fatalf("CreateAK: %v", err)
	}
	// Credential encrypted to a different TPM's EK cannot be activated here.
	otherDev, err := New(ca, WithEKBits(1024))
	if err != nil {
		t.Fatalf("New other TPM: %v", err)
	}
	otherEKCert, err := VerifyEKCert(otherDev.EKCertificate(), ca.Pool())
	if err != nil {
		t.Fatalf("VerifyEKCert: %v", err)
	}
	cred, _, err := MakeCredential(rand.Reader, otherEKCert, akPub)
	if err != nil {
		t.Fatalf("MakeCredential: %v", err)
	}
	if _, err := dev.ActivateCredential(cred); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("ActivateCredential with foreign EK: %v, want ErrBadCredential", err)
	}
}

func TestCreateAKTwiceRejected(t *testing.T) {
	_, dev := newTestTPM(t)
	if _, err := dev.CreateAK(); err != nil {
		t.Fatalf("CreateAK: %v", err)
	}
	if _, err := dev.CreateAK(); !errors.Is(err, ErrDuplicateQuoteAK) {
		t.Fatalf("second CreateAK: %v, want ErrDuplicateQuoteAK", err)
	}
}

func TestQuoteRoundTrip(t *testing.T) {
	_, dev := newTestTPM(t)
	akPub, err := dev.CreateAK()
	if err != nil {
		t.Fatalf("CreateAK: %v", err)
	}
	_ = dev.PCRs().Extend(PCRIMA, sha256.Sum256([]byte("entry-1")))
	_ = dev.PCRs().Extend(PCRIMA, sha256.Sum256([]byte("entry-2")))
	nonce := []byte("fresh-nonce-123")
	q, err := dev.Quote(nonce, []int{PCRBootAggregate, PCRIMA})
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	pcrs, err := VerifyQuote(akPub, q, nonce)
	if err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
	want, _ := dev.PCRs().Read(PCRIMA)
	if pcrs[PCRIMA] != want {
		t.Fatalf("quoted PCR10 = %x, want %x", pcrs[PCRIMA], want)
	}
}

func TestQuoteWrongNonceRejected(t *testing.T) {
	_, dev := newTestTPM(t)
	akPub, _ := dev.CreateAK()
	q, err := dev.Quote([]byte("nonce-a"), []int{PCRIMA})
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	if _, err := VerifyQuote(akPub, q, []byte("nonce-b")); !errors.Is(err, ErrQuoteNonce) {
		t.Fatalf("VerifyQuote: %v, want ErrQuoteNonce", err)
	}
}

func TestQuoteTamperedPCRValuesRejected(t *testing.T) {
	_, dev := newTestTPM(t)
	akPub, _ := dev.CreateAK()
	_ = dev.PCRs().Extend(PCRIMA, sha256.Sum256([]byte("real")))
	nonce := []byte("n")
	q, err := dev.Quote(nonce, []int{PCRIMA})
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	q.PCRValues[0] = sha256.Sum256([]byte("forged"))
	if _, err := VerifyQuote(akPub, q, nonce); !errors.Is(err, ErrQuoteComposite) {
		t.Fatalf("VerifyQuote: %v, want ErrQuoteComposite", err)
	}
}

func TestQuoteTamperedAttestedRejected(t *testing.T) {
	_, dev := newTestTPM(t)
	akPub, _ := dev.CreateAK()
	nonce := []byte("n")
	q, err := dev.Quote(nonce, []int{PCRIMA})
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	q.Attested.PCRDigest[0] ^= 0xff
	if _, err := VerifyQuote(akPub, q, nonce); !errors.Is(err, ErrQuoteSignature) {
		t.Fatalf("VerifyQuote: %v, want ErrQuoteSignature", err)
	}
}

func TestQuoteWrongKeyRejected(t *testing.T) {
	_, dev := newTestTPM(t)
	_, otherDev := newTestTPM(t)
	_, _ = dev.CreateAK()
	otherAK, _ := otherDev.CreateAK()
	nonce := []byte("n")
	q, err := dev.Quote(nonce, []int{PCRIMA})
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	if _, err := VerifyQuote(otherAK, q, nonce); !errors.Is(err, ErrQuoteSignature) {
		t.Fatalf("VerifyQuote with wrong AK: %v, want ErrQuoteSignature", err)
	}
}

func TestQuoteEmptySelectionRejected(t *testing.T) {
	_, dev := newTestTPM(t)
	_, _ = dev.CreateAK()
	if _, err := dev.Quote([]byte("n"), nil); !errors.Is(err, ErrEmptySelection) {
		t.Fatalf("Quote(nil selection): %v, want ErrEmptySelection", err)
	}
}

func TestQuoteWithoutAKRejected(t *testing.T) {
	_, dev := newTestTPM(t)
	if _, err := dev.Quote([]byte("n"), []int{0}); !errors.Is(err, ErrNoAK) {
		t.Fatalf("Quote without AK: %v, want ErrNoAK", err)
	}
}

// Property: extending two banks with the same digest sequence yields equal
// PCR values; diverging at any point yields different values afterwards.
func TestPCRExtendDeterministicProperty(t *testing.T) {
	f := func(seq [][16]byte, divergeAt uint8) bool {
		if len(seq) == 0 {
			return true
		}
		var a, b PCRBank
		for _, s := range seq {
			d := sha256.Sum256(s[:])
			_ = a.Extend(10, d)
			_ = b.Extend(10, d)
		}
		av, _ := a.Read(10)
		bv, _ := b.Read(10)
		if av != bv {
			return false
		}
		// Diverge: one more extend on a only.
		_ = a.Extend(10, sha256.Sum256([]byte{divergeAt}))
		av2, _ := a.Read(10)
		return av2 != bv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: encodeAttested is injective over nonce content for fixed other
// fields (no ambiguity between nonce bytes and selection encoding).
func TestAttestedEncodingInjectiveProperty(t *testing.T) {
	f := func(n1, n2 []byte) bool {
		a1 := Attested{Nonce: n1, Selection: []int{10}, PCRDigest: Digest{}}
		a2 := Attested{Nonce: n2, Selection: []int{10}, PCRDigest: Digest{}}
		e1 := string(encodeAttested(a1))
		e2 := string(encodeAttested(a2))
		if string(n1) == string(n2) {
			return e1 == e2
		}
		return e1 != e2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
