package tpm_test

import (
	"crypto/rand"
	"fmt"

	"repro/internal/tpm"
)

// Example shows the full quote lifecycle: manufacture a TPM, create an AK,
// extend a PCR, quote it with a nonce, and verify.
func Example() {
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		panic(err)
	}
	dev, err := tpm.New(ca, tpm.WithEKBits(1024))
	if err != nil {
		panic(err)
	}
	akPub, err := dev.CreateAK()
	if err != nil {
		panic(err)
	}

	// The kernel extends IMA measurements into PCR 10.
	_ = dev.PCRs().Extend(tpm.PCRIMA, tpm.Digest{1, 2, 3})

	nonce := []byte("verifier-challenge")
	quote, err := dev.Quote(nonce, []int{tpm.PCRIMA})
	if err != nil {
		panic(err)
	}
	pcrs, err := tpm.VerifyQuote(akPub, quote, nonce)
	if err != nil {
		panic(err)
	}
	fmt.Println("quote verified, PCR 10 attested:", pcrs[tpm.PCRIMA] != tpm.Digest{})

	// A replayed quote fails against a fresh nonce.
	_, err = tpm.VerifyQuote(akPub, quote, []byte("newer-challenge"))
	fmt.Println("replay rejected:", err != nil)
	// Output:
	// quote verified, PCR 10 attested: true
	// replay rejected: true
}
