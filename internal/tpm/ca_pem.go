package tpm

import (
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
)

// PEM serialization for the simulated manufacturer CA, so separately
// started processes (registrar, agents) can share one manufacturer: the
// registrar loads only the root certificate; agent hosts load the full
// bundle (certificate + key) to manufacture TPMs whose EK certificates
// chain to it.

// ErrBadCABundle reports malformed CA PEM input.
var ErrBadCABundle = errors.New("tpm: bad CA bundle")

const (
	caCertPEMType = "CERTIFICATE"
	caKeyPEMType  = "EC PRIVATE KEY"
)

// MarshalPEM serializes the CA as a certificate block followed by an EC
// private key block.
func (ca *ManufacturerCA) MarshalPEM() ([]byte, error) {
	keyDER, err := x509.MarshalECPrivateKey(ca.key)
	if err != nil {
		return nil, fmt.Errorf("tpm: marshaling CA key: %w", err)
	}
	out := pem.EncodeToMemory(&pem.Block{Type: caCertPEMType, Bytes: ca.cert.Raw})
	out = append(out, pem.EncodeToMemory(&pem.Block{Type: caKeyPEMType, Bytes: keyDER})...)
	return out, nil
}

// LoadManufacturerCA parses a full CA bundle (certificate + private key).
func LoadManufacturerCA(data []byte) (*ManufacturerCA, error) {
	ca := &ManufacturerCA{}
	rest := data
	for {
		var block *pem.Block
		block, rest = pem.Decode(rest)
		if block == nil {
			break
		}
		switch block.Type {
		case caCertPEMType:
			cert, err := x509.ParseCertificate(block.Bytes)
			if err != nil {
				return nil, fmt.Errorf("%w: certificate: %v", ErrBadCABundle, err)
			}
			ca.cert = cert
		case caKeyPEMType:
			key, err := x509.ParseECPrivateKey(block.Bytes)
			if err != nil {
				return nil, fmt.Errorf("%w: key: %v", ErrBadCABundle, err)
			}
			ca.key = key
		}
	}
	if ca.cert == nil || ca.key == nil {
		return nil, fmt.Errorf("%w: bundle must contain certificate and key", ErrBadCABundle)
	}
	return ca, nil
}

// LoadCARoots parses only the certificate blocks of a bundle into a pool —
// what a registrar (which must never hold the manufacturer key) loads.
func LoadCARoots(data []byte) (*x509.CertPool, error) {
	pool := x509.NewCertPool()
	found := false
	rest := data
	for {
		var block *pem.Block
		block, rest = pem.Decode(rest)
		if block == nil {
			break
		}
		if block.Type != caCertPEMType {
			continue
		}
		cert, err := x509.ParseCertificate(block.Bytes)
		if err != nil {
			return nil, fmt.Errorf("%w: certificate: %v", ErrBadCABundle, err)
		}
		pool.AddCert(cert)
		found = true
	}
	if !found {
		return nil, fmt.Errorf("%w: no certificates found", ErrBadCABundle)
	}
	return pool, nil
}
