// Package tpm implements a software TPM 2.0 reduced to the command surface
// continuous integrity attestation uses:
//
//   - a bank of 24 SHA-256 Platform Configuration Registers with the
//     standard extend semantics (PCR' = H(PCR || digest));
//   - an RSA endorsement key (EK) whose x509 certificate is signed by a
//     simulated manufacturer CA, providing the hardware root of trust the
//     registrar verifies at enrollment;
//   - an ECDSA P-256 attestation key (AK) used to sign quotes;
//   - credential activation (the registrar proves the AK lives in the same
//     TPM as the certified EK);
//   - TPM2_Quote over a PCR selection with caller-supplied qualifying data
//     (the verifier's anti-replay nonce).
//
// The quote wire format is a deterministic binary encoding defined in
// quote.go; signatures are real ECDSA-SHA256 signatures over that encoding.
package tpm

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"time"
)

// NumPCRs is the number of platform configuration registers in the bank.
const NumPCRs = 24

// DigestSize is the size of all digests used by the simulated TPM.
const DigestSize = sha256.Size

// Well-known PCR indices.
const (
	// PCRBootAggregate is where measured boot lands (PCRs 0-7 in real
	// systems; we use 0 as the representative register).
	PCRBootAggregate = 0
	// PCRIMA is the register Linux IMA extends with measurement entries.
	PCRIMA = 10
)

// Sentinel errors.
var (
	ErrPCRIndex         = errors.New("tpm: PCR index out of range")
	ErrNoAK             = errors.New("tpm: attestation key not created")
	ErrBadCredential    = errors.New("tpm: credential activation failed")
	ErrQuoteSignature   = errors.New("tpm: quote signature invalid")
	ErrQuoteNonce       = errors.New("tpm: quote nonce mismatch")
	ErrQuoteComposite   = errors.New("tpm: PCR composite does not match attested digest")
	ErrEmptySelection   = errors.New("tpm: empty PCR selection")
	ErrWrongMagic       = errors.New("tpm: attested blob has wrong magic")
	ErrEKCertificate    = errors.New("tpm: EK certificate verification failed")
	ErrDuplicateQuoteAK = errors.New("tpm: AK already created")
)

// Digest is a SHA-256 digest.
type Digest = [DigestSize]byte

// PCRBank holds the PCR values. It is safe for concurrent use.
type PCRBank struct {
	mu   sync.RWMutex
	pcrs [NumPCRs]Digest
}

// Extend folds digest into PCR idx: PCR' = SHA-256(PCR || digest).
func (b *PCRBank) Extend(idx int, digest Digest) error {
	if idx < 0 || idx >= NumPCRs {
		return fmt.Errorf("%w: %d", ErrPCRIndex, idx)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	h := sha256.New()
	h.Write(b.pcrs[idx][:])
	h.Write(digest[:])
	copy(b.pcrs[idx][:], h.Sum(nil))
	return nil
}

// Read returns the current value of PCR idx.
func (b *PCRBank) Read(idx int) (Digest, error) {
	if idx < 0 || idx >= NumPCRs {
		return Digest{}, fmt.Errorf("%w: %d", ErrPCRIndex, idx)
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.pcrs[idx], nil
}

// Reset zeroes every PCR, modeling a platform reset.
func (b *PCRBank) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pcrs = [NumPCRs]Digest{}
}

// snapshot returns a copy of the selected PCRs in selection order.
func (b *PCRBank) snapshot(sel []int) ([]Digest, error) {
	if len(sel) == 0 {
		return nil, ErrEmptySelection
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]Digest, len(sel))
	for i, idx := range sel {
		if idx < 0 || idx >= NumPCRs {
			return nil, fmt.Errorf("%w: %d", ErrPCRIndex, idx)
		}
		out[i] = b.pcrs[idx]
	}
	return out, nil
}

// ManufacturerCA is the simulated TPM vendor certificate authority that
// signs endorsement key certificates. Registrars trust its root.
type ManufacturerCA struct {
	key  *ecdsa.PrivateKey
	cert *x509.Certificate
}

// NewManufacturerCA creates a CA with a fresh ECDSA P-256 root.
func NewManufacturerCA(rng io.Reader) (*ManufacturerCA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rng)
	if err != nil {
		return nil, fmt.Errorf("tpm: generating CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "Simulated TPM Manufacturer Root CA", Organization: []string{"repro"}},
		NotBefore:             time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:              time.Date(2040, 1, 1, 0, 0, 0, 0, time.UTC),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rng, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("tpm: self-signing CA cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("tpm: parsing CA cert: %w", err)
	}
	return &ManufacturerCA{key: key, cert: cert}, nil
}

// Root returns the CA root certificate registrars should trust.
func (ca *ManufacturerCA) Root() *x509.Certificate { return ca.cert }

// SignIntermediate certifies a subordinate CA key (used by vTPM hosts whose
// per-guest endorsement certificates chain through a host intermediate).
func (ca *ManufacturerCA) SignIntermediate(rng io.Reader, tmpl *x509.Certificate, pub *ecdsa.PublicKey) ([]byte, error) {
	der, err := x509.CreateCertificate(rng, tmpl, ca.cert, pub, ca.key)
	if err != nil {
		return nil, fmt.Errorf("tpm: signing intermediate: %w", err)
	}
	return der, nil
}

// SetKeyPair installs an existing key/certificate into the CA, letting a
// certified intermediate (e.g. a vTPM host) act as an EK issuer.
func (ca *ManufacturerCA) SetKeyPair(key *ecdsa.PrivateKey, cert *x509.Certificate) {
	ca.key = key
	ca.cert = cert
}

// Pool returns an x509 pool holding the CA root.
func (ca *ManufacturerCA) Pool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(ca.cert)
	return pool
}

// issueEKCert signs an endorsement certificate for the given EK public key.
func (ca *ManufacturerCA) issueEKCert(rng io.Reader, ekPub *rsa.PublicKey, serial string) (*x509.Certificate, error) {
	sn, err := rand.Int(rng, new(big.Int).Lsh(big.NewInt(1), 120))
	if err != nil {
		return nil, fmt.Errorf("tpm: generating EK cert serial: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: sn,
		Subject:      pkix.Name{CommonName: "TPM EK " + serial, Organization: []string{"repro"}},
		NotBefore:    time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2040, 1, 1, 0, 0, 0, 0, time.UTC),
		KeyUsage:     x509.KeyUsageKeyEncipherment,
	}
	der, err := x509.CreateCertificate(rng, tmpl, ca.cert, ekPub, ca.key)
	if err != nil {
		return nil, fmt.Errorf("tpm: signing EK cert: %w", err)
	}
	return x509.ParseCertificate(der)
}

// Option configures TPM construction.
type Option interface{ apply(*options) }

type options struct {
	rng             io.Reader
	ekBits          int
	serial          string
	ekIntermediates [][]byte
}

type rngOption struct{ r io.Reader }

func (o rngOption) apply(opts *options) { opts.rng = o.r }

// WithRand sets the randomness source used for key generation (tests may
// pass a deterministic reader).
func WithRand(r io.Reader) Option { return rngOption{r: r} }

type ekBitsOption int

func (o ekBitsOption) apply(opts *options) { opts.ekBits = int(o) }

// WithEKBits sets the RSA endorsement key size. Tests use 1024 for speed.
func WithEKBits(bits int) Option { return ekBitsOption(bits) }

type serialOption string

func (o serialOption) apply(opts *options) { opts.serial = string(o) }

// WithSerial sets the device serial embedded in the EK certificate subject.
func WithSerial(s string) Option { return serialOption(s) }

type ekIntermediatesOption [][]byte

func (o ekIntermediatesOption) apply(opts *options) {
	opts.ekIntermediates = append(opts.ekIntermediates, o...)
}

// WithEKIntermediates attaches intermediate CA certificates (DER) that the
// device presents alongside its EK certificate so verifiers can build the
// chain to a manufacturer root (vTPM guests chain through their host).
func WithEKIntermediates(certsDER ...[]byte) Option {
	cp := make([][]byte, len(certsDER))
	for i, c := range certsDER {
		cp[i] = append([]byte(nil), c...)
	}
	return ekIntermediatesOption(cp)
}

// TPM is a simulated TPM 2.0 device. Construct with New.
type TPM struct {
	mu              sync.Mutex
	pcrs            PCRBank
	ek              *rsa.PrivateKey
	ekCert          *x509.Certificate
	ekIntermediates [][]byte
	ak              *ecdsa.PrivateKey
	serial          string
	rng             io.Reader
}

// New manufactures a TPM: generates the EK and has the CA sign its
// endorsement certificate.
func New(ca *ManufacturerCA, opts ...Option) (*TPM, error) {
	o := options{rng: rand.Reader, ekBits: 2048, serial: "SIM-0001"}
	for _, opt := range opts {
		opt.apply(&o)
	}
	ek, err := rsa.GenerateKey(o.rng, o.ekBits)
	if err != nil {
		return nil, fmt.Errorf("tpm: generating EK: %w", err)
	}
	cert, err := ca.issueEKCert(o.rng, &ek.PublicKey, o.serial)
	if err != nil {
		return nil, err
	}
	return &TPM{ek: ek, ekCert: cert, ekIntermediates: o.ekIntermediates, serial: o.serial, rng: o.rng}, nil
}

// Serial returns the device serial number.
func (t *TPM) Serial() string { return t.serial }

// EKCertificate returns the endorsement certificate in DER form.
func (t *TPM) EKCertificate() []byte {
	return append([]byte(nil), t.ekCert.Raw...)
}

// EKIntermediates returns the intermediate certificates (DER) presented
// with the EK certificate (empty for directly-rooted devices).
func (t *TPM) EKIntermediates() [][]byte {
	out := make([][]byte, len(t.ekIntermediates))
	for i, c := range t.ekIntermediates {
		out[i] = append([]byte(nil), c...)
	}
	return out
}

// PCRs exposes the PCR bank (the IMA subsystem extends it directly, like
// the kernel writing to the hardware device).
func (t *TPM) PCRs() *PCRBank { return &t.pcrs }

// CreateAK generates the attestation key and returns its public half in
// PKIX DER form. A TPM holds at most one AK in this simulation.
func (t *TPM) CreateAK() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ak != nil {
		return nil, ErrDuplicateQuoteAK
	}
	ak, err := ecdsa.GenerateKey(elliptic.P256(), t.rng)
	if err != nil {
		return nil, fmt.Errorf("tpm: generating AK: %w", err)
	}
	t.ak = ak
	return x509.MarshalPKIXPublicKey(&ak.PublicKey)
}

// AKPublic returns the AK public key in PKIX DER form.
func (t *TPM) AKPublic() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ak == nil {
		return nil, ErrNoAK
	}
	return x509.MarshalPKIXPublicKey(&t.ak.PublicKey)
}

// AKName returns the TPM2 "name" of the AK: a digest binding the credential
// challenge to this specific key.
func AKName(akPubDER []byte) Digest {
	return sha256.Sum256(akPubDER)
}

// Credential is the encrypted challenge a registrar sends during enrollment
// (TPM2_MakeCredential, simplified).
type Credential struct {
	// EncryptedSecret is the challenge secret encrypted to the EK with
	// RSA-OAEP; only the TPM holding the certified EK can recover it.
	EncryptedSecret []byte
	// AKNameBound is the AK name the credential is bound to.
	AKNameBound Digest
}

// MakeCredential builds a credential challenge for the TPM that owns ekCert,
// bound to the AK with the given public key. It returns the credential and
// the expected proof the registrar should compare against.
func MakeCredential(rng io.Reader, ekCert *x509.Certificate, akPubDER []byte) (Credential, Digest, error) {
	ekPub, ok := ekCert.PublicKey.(*rsa.PublicKey)
	if !ok {
		return Credential{}, Digest{}, fmt.Errorf("%w: EK is not RSA", ErrEKCertificate)
	}
	secret := make([]byte, 32)
	if _, err := io.ReadFull(rng, secret); err != nil {
		return Credential{}, Digest{}, fmt.Errorf("tpm: generating credential secret: %w", err)
	}
	name := AKName(akPubDER)
	enc, err := rsa.EncryptOAEP(sha256.New(), rng, ekPub, secret, name[:])
	if err != nil {
		return Credential{}, Digest{}, fmt.Errorf("tpm: encrypting credential: %w", err)
	}
	return Credential{EncryptedSecret: enc, AKNameBound: name}, credentialProof(secret, name), nil
}

// credentialProof derives the activation proof from the secret and AK name.
func credentialProof(secret []byte, akName Digest) Digest {
	mac := hmac.New(sha256.New, secret)
	mac.Write(akName[:])
	var out Digest
	copy(out[:], mac.Sum(nil))
	return out
}

// ActivateCredential recovers the challenge secret with the EK and returns
// the activation proof. It fails if the credential is bound to a different
// AK than the one resident in this TPM (TPM2_ActivateCredential semantics).
func (t *TPM) ActivateCredential(cred Credential) (Digest, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ak == nil {
		return Digest{}, ErrNoAK
	}
	akDER, err := x509.MarshalPKIXPublicKey(&t.ak.PublicKey)
	if err != nil {
		return Digest{}, fmt.Errorf("tpm: marshaling AK: %w", err)
	}
	name := AKName(akDER)
	if name != cred.AKNameBound {
		return Digest{}, fmt.Errorf("%w: credential bound to different AK", ErrBadCredential)
	}
	secret, err := rsa.DecryptOAEP(sha256.New(), nil, t.ek, cred.EncryptedSecret, name[:])
	if err != nil {
		return Digest{}, fmt.Errorf("%w: %v", ErrBadCredential, err)
	}
	return credentialProof(secret, name), nil
}

// VerifyEKCert checks the endorsement certificate chain against the trusted
// manufacturer roots and returns the parsed certificate.
func VerifyEKCert(der []byte, roots *x509.CertPool) (*x509.Certificate, error) {
	return VerifyEKCertChain(der, nil, roots)
}

// VerifyEKCertChain checks an endorsement certificate that may chain
// through intermediates (vTPM guests chain through their host's CA).
func VerifyEKCertChain(der []byte, intermediatesDER [][]byte, roots *x509.CertPool) (*x509.Certificate, error) {
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrEKCertificate, err)
	}
	var inter *x509.CertPool
	if len(intermediatesDER) > 0 {
		inter = x509.NewCertPool()
		for _, iDER := range intermediatesDER {
			ic, err := x509.ParseCertificate(iDER)
			if err != nil {
				return nil, fmt.Errorf("%w: intermediate: %v", ErrEKCertificate, err)
			}
			inter.AddCert(ic)
		}
	}
	if _, err := cert.Verify(x509.VerifyOptions{
		Roots:         roots,
		Intermediates: inter,
		// EK certs carry KeyEncipherment usage, not the default server auth.
		KeyUsages:   []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
		CurrentTime: time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC),
	}); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrEKCertificate, err)
	}
	return cert, nil
}
