package experiments

import (
	"context"
	"fmt"

	"repro/internal/attacks"
)

// AttackRow is one line of Table II.
type AttackRow struct {
	Name     string
	Category string
	// Basic/Adaptive are the detection outcomes against the paper's
	// experimental setup; Mitigated is the adaptive attack against the
	// recommended fixes.
	Basic     attacks.Outcome
	Adaptive  attacks.Outcome
	Mitigated attacks.Outcome
	// Exploits are the problems the adaptive variant leans on.
	Exploits []attacks.Problem
}

// AttackMatrixResult reproduces Table II.
type AttackMatrixResult struct {
	Rows []AttackRow
}

// RunAttack executes one scenario on a fresh deployment (the paper resets
// the machine to the same initial state before every attack).
func RunAttack(cfg StackConfig, a *attacks.Attack, variant attacks.Variant, mitigated bool) (attacks.RunResult, error) {
	stack := cfg
	stack.Mitigated = mitigated
	stack.Clock = nil // fresh simulated clock per run
	d, err := NewDeployment(stack)
	if err != nil {
		return attacks.RunResult{}, err
	}
	defer d.Close()
	if err := d.refreshPolicyFromMachine(); err != nil {
		return attacks.RunResult{}, err
	}
	ctx := context.Background()
	// Baseline: the clean machine must attest successfully.
	if res, err := d.V.AttestOnce(ctx, d.Machine.UUID()); err != nil {
		return attacks.RunResult{}, err
	} else if res.Failure != nil {
		return attacks.RunResult{}, fmt.Errorf("experiments: baseline attestation failed: %s %s",
			res.Failure.Type, res.Failure.Path)
	}
	h := &attacks.Harness{
		Verifier:        d.V,
		AgentID:         d.Machine.UUID(),
		AttestEveryStep: !mitigated,
		CheckReboot:     mitigated,
	}
	env := attacks.NewEnv(d.Machine)
	return h.Run(ctx, env, a.Scenario(variant))
}

// AttackMatrix runs all 8 samples in the three configurations of Table II.
// The basic and adaptive columns always run against the paper's stock
// setup; cfg.ScriptExecControl (if set) applies to the mitigated column
// only, reproducing the §IV-C what-if where interpreters adopt script
// execution control.
func AttackMatrix(cfg StackConfig) (AttackMatrixResult, error) {
	stockCfg := cfg
	stockCfg.ScriptExecControl = false
	var out AttackMatrixResult
	for _, a := range attacks.All() {
		basic, err := RunAttack(stockCfg, a, attacks.VariantBasic, false)
		if err != nil {
			return out, fmt.Errorf("experiments: %s basic: %w", a.Name, err)
		}
		adaptive, err := RunAttack(stockCfg, a, attacks.VariantAdaptive, false)
		if err != nil {
			return out, fmt.Errorf("experiments: %s adaptive: %w", a.Name, err)
		}
		mitigated, err := RunAttack(cfg, a, attacks.VariantAdaptive, true)
		if err != nil {
			return out, fmt.Errorf("experiments: %s mitigated: %w", a.Name, err)
		}
		out.Rows = append(out.Rows, AttackRow{
			Name:      a.Name,
			Category:  a.Category.String(),
			Basic:     basic.Outcome,
			Adaptive:  adaptive.Outcome,
			Mitigated: mitigated.Outcome,
			Exploits:  a.Exploits,
		})
	}
	return out, nil
}
