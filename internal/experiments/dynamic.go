package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/keylime/verifier"
	"repro/internal/mirror"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// DynamicRunConfig configures a dynamic-policy-generation experiment
// (§III-D: 31 days of daily updates, or 35 days of weekly updates).
type DynamicRunConfig struct {
	Stack StackConfig
	// Days the experiment runs.
	Days int
	// UpdateEveryNDays: 1 reproduces the daily experiment, 7 the weekly.
	UpdateEveryNDays int
	// MisconfigDay injects the paper's one real-world failure: on that
	// day the upstream publishes a release AFTER the 5:00 mirror sync and
	// the operator installs from the official archive instead of the
	// mirror (0 = no event).
	MisconfigDay int
	// BenignStepsPerDay is the background activity level.
	BenignStepsPerDay int
	// Epoch is the simulated start date.
	Epoch time.Time
}

// DailyRunConfig reproduces the paper's first experiment (Feb 26 - Mar 28,
// 2024: 31 days, daily updates, misconfiguration on day 31, which was
// March 27).
func DailyRunConfig() DynamicRunConfig {
	return DynamicRunConfig{
		Days:              31,
		UpdateEveryNDays:  1,
		MisconfigDay:      31,
		BenignStepsPerDay: 40,
		Epoch:             Epoch,
	}
}

// WeeklyRunConfig reproduces the second experiment (May 6 - Jun 3, 2024:
// 35 days, weekly updates).
func WeeklyRunConfig() DynamicRunConfig {
	return DynamicRunConfig{
		Days:              35,
		UpdateEveryNDays:  7,
		BenignStepsPerDay: 40,
		Epoch:             WeeklyEpoch,
	}
}

// DayRecord is one day of a dynamic-policy run.
type DayRecord struct {
	Day  int
	Date time.Time
	// UpdateRan reports that the update procedure executed today.
	UpdateRan bool
	// Report carries the generator's update statistics (Figs 3-5).
	Report core.UpdateReport
	// FPAlerts observed today (the headline result: zero except the
	// misconfiguration event).
	FPAlerts []FPAlert
	// Rebooted reports a kernel-update reboot.
	Rebooted bool
	// MisconfigEvent marks the injected operator error.
	MisconfigEvent bool
}

// DynamicRunResult is the outcome of one experiment.
type DynamicRunResult struct {
	Config DynamicRunConfig
	Days   []DayRecord
	// InitialPolicyLines / InitialPolicyBytes describe the day-one policy.
	InitialPolicyLines int
	InitialPolicyBytes int64
	// TotalUpdates counts update-procedure runs (the paper counts 36
	// across both experiments: 31 daily + 5 weekly).
	TotalUpdates int
	// TotalFPs counts all false-positive alerts.
	TotalFPs int
	// MisconfigFPs counts alerts attributable to the injected event.
	MisconfigFPs int
	// AttestationRounds counts verifier polls.
	AttestationRounds int
}

// UpdateDays returns the records of days the updater ran.
func (r DynamicRunResult) UpdateDays() []DayRecord {
	var out []DayRecord
	for _, d := range r.Days {
		if d.UpdateRan {
			out = append(out, d)
		}
	}
	return out
}

// DynamicRun executes one dynamic-policy experiment.
func DynamicRun(cfg DynamicRunConfig) (DynamicRunResult, error) {
	if cfg.Days <= 0 || cfg.UpdateEveryNDays <= 0 {
		return DynamicRunResult{}, fmt.Errorf("experiments: invalid run config %+v", cfg)
	}
	stack := cfg.Stack
	if stack.Clock == nil {
		epoch := cfg.Epoch
		if epoch.IsZero() {
			epoch = Epoch
		}
		stack.Clock = simclock.NewSimulated(epoch)
	}
	d, err := NewDeployment(stack)
	if err != nil {
		return DynamicRunResult{}, err
	}
	defer d.Close()
	ctx := context.Background()
	res := DynamicRunResult{Config: cfg}
	res.InitialPolicyLines = d.Policy.Lines()
	res.InitialPolicyBytes = d.Policy.SizeBytes()

	sim, _ := d.Clock.(*simclock.Simulated)
	advance := func(dur time.Duration) {
		if sim != nil {
			sim.Advance(dur)
		}
	}

	benign, err := workload.NewBenignOps(d.Machine, workload.DefaultBenignOpsConfig(stack.Scale.Seed+31))
	if err != nil {
		return DynamicRunResult{}, err
	}
	if err := d.refreshPolicyFromMachine(); err != nil {
		return DynamicRunResult{}, err
	}

	seenFailures := 0
	// attest runs one verifier poll and returns any new alerts.
	attest := func(day int) ([]FPAlert, error) {
		_, err := d.V.AttestOnce(ctx, d.Machine.UUID())
		res.AttestationRounds++
		if err != nil && !errors.Is(err, verifier.ErrHalted) {
			return nil, err
		}
		st, err := d.V.Status(d.Machine.UUID())
		if err != nil {
			return nil, err
		}
		newFailures := st.Failures[seenFailures:]
		seenFailures = len(st.Failures)
		var alerts []FPAlert
		for _, f := range newFailures {
			alerts = append(alerts, FPAlert{Day: day, Cause: classifyFP(d, nil, f), Path: f.Path, Type: f.Type, Time: f.Time})
		}
		return alerts, nil
	}

	// pushGeneratorPolicy folds local extras into the generator's policy
	// and pushes the result.
	pushGeneratorPolicy := func() error {
		pol, err := d.Gen.Policy()
		if err != nil {
			return err
		}
		pol.Merge(d.LocalExtras)
		return d.PushPolicy(pol)
	}

	for day := 1; day <= cfg.Days; day++ {
		rec := DayRecord{Day: day, Date: d.Clock.Now()}

		// 03:00 — upstream publishes overnight.
		advance(3 * time.Hour)
		upstream, err := d.Stream.PublishDay(d.Clock.Now())
		if err != nil {
			return res, err
		}

		// 05:00 — on update days: sync mirror, regenerate policy, push it,
		// THEN update the machine from the mirror.
		advance(2 * time.Hour)
		updateDay := day%cfg.UpdateEveryNDays == 0 || cfg.UpdateEveryNDays == 1
		if updateDay {
			rec.UpdateRan = true
			res.TotalUpdates++
			_, rep, err := d.Gen.Update(d.Clock.Now(), d.Machine.RunningKernel())
			if err != nil {
				return res, err
			}
			rec.Report = rep
			if err := pushGeneratorPolicy(); err != nil {
				return res, err
			}

			if day == cfg.MisconfigDay {
				// The paper's one failure: a release lands after the 5:00
				// sync, and the operator pulls from the official archive
				// instead of the mirror.
				rec.MisconfigEvent = true
				late, err := d.Stream.PublishDay(d.Clock.Now().Add(4 * time.Hour))
				if err != nil {
					return res, err
				}
				if err := d.InstallFromArchive(append(upstream.Published, late.Published...)); err != nil {
					return res, err
				}
				if err := execUpdatedExecutables(d, late, 2); err != nil {
					return res, err
				}
			} else {
				// Controlled update from the local mirror.
				delta := diffPackagesSince(d, upstream)
				if err := d.InstallFromMirror(delta); err != nil {
					return res, err
				}
			}

			// Kernel handling: refresh the policy for a pending kernel
			// before rebooting into it.
			if pending := d.Machine.PendingKernel(); pending != "" {
				if _, _, err := d.Gen.RefreshKernel(d.Clock.Now(), pending); err != nil {
					return res, err
				}
				if err := pushGeneratorPolicy(); err != nil {
					return res, err
				}
				if err := d.Machine.Reboot(); err != nil {
					return res, err
				}
				rec.Rebooted = true
			}
			if err := benign.Recatalog(); err != nil {
				return res, err
			}
			// Touch freshly updated executables right away.
			if err := execUpdatedExecutables(d, upstream, 3); err != nil && day != cfg.MisconfigDay {
				return res, err
			}
		}

		// Working hours: benign operations with periodic attestation.
		for phase := 0; phase < 3; phase++ {
			if _, err := benign.Run(cfg.BenignStepsPerDay / 3); err != nil {
				return res, err
			}
			advance(5 * time.Hour)
			alerts, err := attest(day)
			if err != nil {
				return res, err
			}
			rec.FPAlerts = append(rec.FPAlerts, alerts...)
			if len(alerts) > 0 {
				// Operator resolution: resync the mirror, regenerate and
				// push the policy, then resume attestation.
				if _, _, err := d.Gen.Update(d.Clock.Now(), d.Machine.RunningKernel()); err != nil {
					return res, err
				}
				if err := pushGeneratorPolicy(); err != nil {
					return res, err
				}
				if err := d.refreshPolicyFromMachine(); err != nil {
					return res, err
				}
				if err := d.V.Resume(d.Machine.UUID()); err != nil {
					return res, err
				}
			}
		}

		// Post-update deduplication (outside the update window).
		if updateDay {
			if _, err := d.Gen.DedupAfterUpdate(); err != nil {
				return res, err
			}
		}
		advance(4 * time.Hour) // complete the 24h day

		res.TotalFPs += len(rec.FPAlerts)
		if rec.MisconfigEvent {
			res.MisconfigFPs += len(rec.FPAlerts)
		}
		res.Days = append(res.Days, rec)
	}
	return res, nil
}

// diffPackagesSince lists the mirror packages the machine should install
// for today's update (everything whose mirrored version differs from the
// installed one).
func diffPackagesSince(d *Deployment, upd workload.DayUpdate) []mirror.Package {
	rel := d.Mirror.Release()
	var out []mirror.Package
	for name, p := range rel.Packages {
		installed, err := d.Machine.InstalledVersion(name)
		if err != nil || installed != p.Version {
			out = append(out, p)
		}
	}
	_ = upd
	return out
}
