package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/keylime/rollout"
	"repro/internal/keylime/verifier"
	"repro/internal/mirror"
	"repro/internal/policy"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// DynamicRunConfig configures a dynamic-policy-generation experiment
// (§III-D: 31 days of daily updates, or 35 days of weekly updates).
type DynamicRunConfig struct {
	Stack StackConfig
	// Days the experiment runs.
	Days int
	// UpdateEveryNDays: 1 reproduces the daily experiment, 7 the weekly.
	UpdateEveryNDays int
	// MisconfigDay injects the paper's one real-world failure: on that
	// day the upstream publishes a release AFTER the 5:00 mirror sync and
	// the operator installs from the official archive instead of the
	// mirror (0 = no event).
	MisconfigDay int
	// BenignStepsPerDay is the background activity level.
	BenignStepsPerDay int
	// Epoch is the simulated start date.
	Epoch time.Time
	// Rollout routes every policy push through the staged rollout
	// controller (freshness gate → shadow → canary → promote, with
	// automatic rollback) instead of the one-shot UpdatePolicy swap, and
	// holds the update window — deferring the machine update and keeping
	// the old policy — when the mirror is stale. This is the §III-C
	// prevention: the gated misconfiguration day yields a held window and
	// zero false positives, with the incomplete candidate's would-fail
	// divergence quarantined in shadow instead of alerting.
	Rollout bool
	// RolloutShadowRounds / RolloutCanaryRounds override the controller's
	// clean-round thresholds (default 1 each: the single-machine day loop
	// only has a few attestation rounds per window).
	RolloutShadowRounds int
	RolloutCanaryRounds int
}

// DailyRunConfig reproduces the paper's first experiment (Feb 26 - Mar 28,
// 2024: 31 days, daily updates, misconfiguration on day 31, which was
// March 27).
func DailyRunConfig() DynamicRunConfig {
	return DynamicRunConfig{
		Days:              31,
		UpdateEveryNDays:  1,
		MisconfigDay:      31,
		BenignStepsPerDay: 40,
		Epoch:             Epoch,
	}
}

// WeeklyRunConfig reproduces the second experiment (May 6 - Jun 3, 2024:
// 35 days, weekly updates).
func WeeklyRunConfig() DynamicRunConfig {
	return DynamicRunConfig{
		Days:              35,
		UpdateEveryNDays:  7,
		BenignStepsPerDay: 40,
		Epoch:             WeeklyEpoch,
	}
}

// DayRecord is one day of a dynamic-policy run.
type DayRecord struct {
	Day  int
	Date time.Time
	// UpdateRan reports that the update procedure executed today.
	UpdateRan bool
	// Report carries the generator's update statistics (Figs 3-5).
	Report core.UpdateReport
	// FPAlerts observed today (the headline result: zero except the
	// misconfiguration event).
	FPAlerts []FPAlert
	// Rebooted reports a kernel-update reboot.
	Rebooted bool
	// MisconfigEvent marks the injected operator error.
	MisconfigEvent bool
	// WindowHeld reports that the freshness gate held today's update
	// window (gated runs only): no machine update, no policy change.
	WindowHeld bool
}

// DynamicRunResult is the outcome of one experiment.
type DynamicRunResult struct {
	Config DynamicRunConfig
	Days   []DayRecord
	// InitialPolicyLines / InitialPolicyBytes describe the day-one policy.
	InitialPolicyLines int
	InitialPolicyBytes int64
	// TotalUpdates counts update-procedure runs (the paper counts 36
	// across both experiments: 31 daily + 5 weekly).
	TotalUpdates int
	// TotalFPs counts all false-positive alerts.
	TotalFPs int
	// MisconfigFPs counts alerts attributable to the injected event.
	MisconfigFPs int
	// AttestationRounds counts verifier polls.
	AttestationRounds int
	// WindowsHeld counts update windows the freshness gate held (gated
	// runs only).
	WindowsHeld int
	// RolloutStatus is the controller's final state (gated runs only):
	// promotion/rollback/hold counters, quarantined generations, and the
	// aggregated shadow-divergence stats.
	RolloutStatus *rollout.Status
}

// UpdateDays returns the records of days the updater ran.
func (r DynamicRunResult) UpdateDays() []DayRecord {
	var out []DayRecord
	for _, d := range r.Days {
		if d.UpdateRan {
			out = append(out, d)
		}
	}
	return out
}

// DynamicRun executes one dynamic-policy experiment.
func DynamicRun(cfg DynamicRunConfig) (DynamicRunResult, error) {
	if cfg.Days <= 0 || cfg.UpdateEveryNDays <= 0 {
		return DynamicRunResult{}, fmt.Errorf("experiments: invalid run config %+v", cfg)
	}
	stack := cfg.Stack
	if stack.Clock == nil {
		epoch := cfg.Epoch
		if epoch.IsZero() {
			epoch = Epoch
		}
		stack.Clock = simclock.NewSimulated(epoch)
	}
	d, err := NewDeployment(stack)
	if err != nil {
		return DynamicRunResult{}, err
	}
	defer d.Close()
	ctx := context.Background()
	res := DynamicRunResult{Config: cfg}
	res.InitialPolicyLines = d.Policy.Lines()
	res.InitialPolicyBytes = d.Policy.SizeBytes()

	sim, _ := d.Clock.(*simclock.Simulated)
	advance := func(dur time.Duration) {
		if sim != nil {
			sim.Advance(dur)
		}
	}

	benign, err := workload.NewBenignOps(d.Machine, workload.DefaultBenignOpsConfig(stack.Scale.Seed+31))
	if err != nil {
		return DynamicRunResult{}, err
	}
	if err := d.refreshPolicyFromMachine(); err != nil {
		return DynamicRunResult{}, err
	}

	seenFailures := 0
	// attest runs one verifier poll and returns any new alerts.
	attest := func(day int) ([]FPAlert, error) {
		_, err := d.V.AttestOnce(ctx, d.Machine.UUID())
		res.AttestationRounds++
		if err != nil && !errors.Is(err, verifier.ErrHalted) {
			return nil, err
		}
		st, err := d.V.Status(d.Machine.UUID())
		if err != nil {
			return nil, err
		}
		newFailures := st.Failures[seenFailures:]
		seenFailures = len(st.Failures)
		var alerts []FPAlert
		for _, f := range newFailures {
			alerts = append(alerts, FPAlert{Day: day, Cause: classifyFP(d, nil, f), Path: f.Path, Type: f.Type, Time: f.Time})
		}
		return alerts, nil
	}

	// pushGeneratorPolicy folds local extras into the generator's policy
	// and pushes the result.
	pushGeneratorPolicy := func() error {
		pol, err := d.Gen.Policy()
		if err != nil {
			return err
		}
		pol.Merge(d.LocalExtras)
		return d.PushPolicy(pol)
	}

	// generatorCandidate snapshots the generator policy + local extras as
	// a rollout candidate (gated runs push candidates, never swap).
	generatorCandidate := func() (*policy.RuntimePolicy, error) {
		pol, err := d.Gen.Policy()
		if err != nil {
			return nil, err
		}
		pol.Merge(d.LocalExtras)
		return pol, nil
	}

	var ctl *rollout.Controller
	if cfg.Rollout {
		shadowRounds := cfg.RolloutShadowRounds
		if shadowRounds <= 0 {
			shadowRounds = 1
		}
		canaryRounds := cfg.RolloutCanaryRounds
		if canaryRounds <= 0 {
			canaryRounds = 1
		}
		ctl, err = rollout.New(rollout.Config{
			Fleet: d.V, Freshness: d.Mirror, Clock: d.Clock,
			ShadowRounds: shadowRounds, CanaryCount: 1, CanaryRounds: canaryRounds,
			TripThreshold: 1, AutoRollback: true,
			Logf: d.Config.Logf,
		})
		if err != nil {
			return DynamicRunResult{}, err
		}
	}

	// rolloutPush drives one candidate through the full pipeline: Begin
	// (which may hold the window), then attestation rounds + Tick until
	// the controller reaches a terminal stage. Returns whether the
	// candidate was promoted; a held window or a rollback returns false
	// without error — the caller decides what the operator does next.
	rolloutPush := func(day int, rec *DayRecord, cand *policy.RuntimePolicy) (bool, error) {
		d.CheckMirrorFreshness()
		before := ctl.Status().Stats
		if _, err := ctl.Begin(cand); err != nil {
			if errors.Is(err, rollout.ErrMirrorStale) {
				rec.WindowHeld = true
				res.WindowsHeld++
				return false, nil
			}
			return false, err
		}
		for i := 0; i < 12; i++ {
			alerts, err := attest(day)
			if err != nil {
				return false, err
			}
			rec.FPAlerts = append(rec.FPAlerts, alerts...)
			st, err := ctl.Tick()
			if err != nil {
				return false, err
			}
			if st.Stage == rollout.StageIdle {
				if st.Stats.Promotions > before.Promotions {
					// Keep the operator's working copy aligned with what
					// the controller promoted.
					d.Policy = cand.Clone()
					return true, nil
				}
				return false, nil
			}
		}
		return false, fmt.Errorf("experiments: rollout of day-%d candidate did not converge", day)
	}

	for day := 1; day <= cfg.Days; day++ {
		rec := DayRecord{Day: day, Date: d.Clock.Now()}

		// 03:00 — upstream publishes overnight.
		advance(3 * time.Hour)
		upstream, err := d.Stream.PublishDay(d.Clock.Now())
		if err != nil {
			return res, err
		}

		// 05:00 — on update days: sync mirror, regenerate policy, push it,
		// THEN update the machine from the mirror.
		advance(2 * time.Hour)
		updateDay := day%cfg.UpdateEveryNDays == 0 || cfg.UpdateEveryNDays == 1
		if updateDay {
			rec.UpdateRan = true
			res.TotalUpdates++
			_, rep, err := d.Gen.Update(d.Clock.Now(), d.Machine.RunningKernel())
			if err != nil {
				return res, err
			}
			rec.Report = rep

			switch {
			case cfg.Rollout && day == cfg.MisconfigDay:
				// The §III-C event, re-run through the controller. The late
				// release lands before the operator opens the window, so
				// every protection layer gets exercised.
				rec.MisconfigEvent = true
				cand, err := generatorCandidate() // generated from the now-stale sync
				if err != nil {
					return res, err
				}
				late, err := d.Stream.PublishDay(d.Clock.Now().Add(4 * time.Hour))
				if err != nil {
					return res, err
				}
				// Layer 1 — freshness gate: the window is HELD. No machine
				// update, no policy change, a warning in the log.
				if _, err := rolloutPush(day, &rec, cand); err != nil {
					return res, err
				}
				if !rec.WindowHeld {
					return res, fmt.Errorf("experiments: misconfig window was not held")
				}
				// The operator errs anyway, exactly as in the paper:
				// installs today's packages straight from the official
				// archive, then re-baselines the active policy from disk
				// (post-incident practice), so the machine's real state
				// stays covered.
				if err := d.InstallFromArchive(append(upstream.Published, late.Published...)); err != nil {
					return res, err
				}
				if err := d.refreshPolicyFromMachine(); err != nil {
					return res, err
				}
				// A mirror resync clears the gate — and the operator
				// retries with the STALE candidate still in hand. Layer 2 —
				// shadow evaluation: the late release's executables run
				// during the shadow rounds; the candidate rejects entries
				// the active policy accepts (the would-have-fired alert),
				// and the tripwire quarantines it without a single alert.
				d.Mirror.Sync(d.Clock.Now())
				if _, err := ctl.Begin(cand); err != nil {
					return res, err
				}
				if err := execUpdatedExecutables(d, late, 2); err != nil {
					return res, err
				}
				for i := 0; i < 12; i++ {
					alerts, err := attest(day)
					if err != nil {
						return res, err
					}
					rec.FPAlerts = append(rec.FPAlerts, alerts...)
					st, err := ctl.Tick()
					if err != nil {
						return res, err
					}
					if st.Stage == rollout.StageIdle {
						break
					}
				}
				// Layer 3 — regenerate from the now-complete mirror and
				// promote the corrected candidate.
				if _, _, err := d.Gen.Update(d.Clock.Now(), d.Machine.RunningKernel()); err != nil {
					return res, err
				}
				fixed, err := generatorCandidate()
				if err != nil {
					return res, err
				}
				promoted, err := rolloutPush(day, &rec, fixed)
				if err != nil {
					return res, err
				}
				if !promoted {
					return res, fmt.Errorf("experiments: corrected misconfig-day candidate was not promoted")
				}
				if err := benign.Recatalog(); err != nil {
					return res, err
				}

			case cfg.Rollout:
				cand, err := generatorCandidate()
				if err != nil {
					return res, err
				}
				promoted, err := rolloutPush(day, &rec, cand)
				if err != nil {
					return res, err
				}
				if promoted {
					// Policy first, binaries second: the machine updates
					// only once the covering candidate is active, so no
					// freshly installed file ever executes under a policy
					// that has not seen it.
					delta := diffPackagesSince(d, upstream)
					if err := d.InstallFromMirror(delta); err != nil {
						return res, err
					}
					if pending := d.Machine.PendingKernel(); pending != "" {
						if _, _, err := d.Gen.RefreshKernel(d.Clock.Now(), pending); err != nil {
							return res, err
						}
						kcand, err := generatorCandidate()
						if err != nil {
							return res, err
						}
						if _, err := rolloutPush(day, &rec, kcand); err != nil {
							return res, err
						}
						if err := d.Machine.Reboot(); err != nil {
							return res, err
						}
						rec.Rebooted = true
					}
					if err := benign.Recatalog(); err != nil {
						return res, err
					}
					if err := execUpdatedExecutables(d, upstream, 3); err != nil {
						return res, err
					}
				}

			default:
				if err := pushGeneratorPolicy(); err != nil {
					return res, err
				}
				if day == cfg.MisconfigDay {
					// The paper's one failure: a release lands after the 5:00
					// sync, and the operator pulls from the official archive
					// instead of the mirror.
					rec.MisconfigEvent = true
					late, err := d.Stream.PublishDay(d.Clock.Now().Add(4 * time.Hour))
					if err != nil {
						return res, err
					}
					// The satellite fix: the staleness is detectable at this
					// point — an ungated deployment at least logs it before
					// walking into the incident.
					d.CheckMirrorFreshness()
					if err := d.InstallFromArchive(append(upstream.Published, late.Published...)); err != nil {
						return res, err
					}
					if err := execUpdatedExecutables(d, late, 2); err != nil {
						return res, err
					}
				} else {
					// Controlled update from the local mirror.
					delta := diffPackagesSince(d, upstream)
					if err := d.InstallFromMirror(delta); err != nil {
						return res, err
					}
				}

				// Kernel handling: refresh the policy for a pending kernel
				// before rebooting into it.
				if pending := d.Machine.PendingKernel(); pending != "" {
					if _, _, err := d.Gen.RefreshKernel(d.Clock.Now(), pending); err != nil {
						return res, err
					}
					if err := pushGeneratorPolicy(); err != nil {
						return res, err
					}
					if err := d.Machine.Reboot(); err != nil {
						return res, err
					}
					rec.Rebooted = true
				}
				if err := benign.Recatalog(); err != nil {
					return res, err
				}
				// Touch freshly updated executables right away.
				if err := execUpdatedExecutables(d, upstream, 3); err != nil && day != cfg.MisconfigDay {
					return res, err
				}
			}
		}

		// Working hours: benign operations with periodic attestation.
		for phase := 0; phase < 3; phase++ {
			if _, err := benign.Run(cfg.BenignStepsPerDay / 3); err != nil {
				return res, err
			}
			advance(5 * time.Hour)
			alerts, err := attest(day)
			if err != nil {
				return res, err
			}
			rec.FPAlerts = append(rec.FPAlerts, alerts...)
			if len(alerts) > 0 {
				// Operator resolution: resync the mirror, regenerate and
				// push the policy, then resume attestation.
				if _, _, err := d.Gen.Update(d.Clock.Now(), d.Machine.RunningKernel()); err != nil {
					return res, err
				}
				if err := pushGeneratorPolicy(); err != nil {
					return res, err
				}
				if err := d.refreshPolicyFromMachine(); err != nil {
					return res, err
				}
				if err := d.V.Resume(d.Machine.UUID()); err != nil {
					return res, err
				}
			}
		}

		// Post-update deduplication (outside the update window).
		if updateDay {
			if _, err := d.Gen.DedupAfterUpdate(); err != nil {
				return res, err
			}
		}
		advance(4 * time.Hour) // complete the 24h day

		res.TotalFPs += len(rec.FPAlerts)
		if rec.MisconfigEvent {
			res.MisconfigFPs += len(rec.FPAlerts)
		}
		res.Days = append(res.Days, rec)
	}
	if ctl != nil {
		st := ctl.Status()
		res.RolloutStatus = &st
	}
	return res, nil
}

// diffPackagesSince lists the mirror packages the machine should install
// for today's update (everything whose mirrored version differs from the
// installed one).
func diffPackagesSince(d *Deployment, upd workload.DayUpdate) []mirror.Package {
	rel := d.Mirror.Release()
	var out []mirror.Package
	for name, p := range rel.Packages {
		installed, err := d.Machine.InstalledVersion(name)
		if err != nil || installed != p.Version {
			out = append(out, p)
		}
	}
	_ = upd
	return out
}
