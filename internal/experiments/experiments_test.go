package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/attacks"
	"repro/internal/filesig"
	"repro/internal/workload"
)

func TestDeploymentBaselineAttestationPasses(t *testing.T) {
	d, err := NewDeployment(StackConfig{})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	defer d.Close()
	if err := d.refreshPolicyFromMachine(); err != nil {
		t.Fatalf("refreshPolicyFromMachine: %v", err)
	}
	res, err := d.V.AttestOnce(context.Background(), d.Machine.UUID())
	if err != nil {
		t.Fatalf("AttestOnce: %v", err)
	}
	if res.Failure != nil {
		t.Fatalf("baseline attestation failed: %+v", res.Failure)
	}
	if d.Policy.Lines() == 0 {
		t.Fatal("initial policy empty")
	}
}

func TestFPWeekReproducesAllThreeCauses(t *testing.T) {
	res, err := FPWeek(StackConfig{})
	if err != nil {
		t.Fatalf("FPWeek: %v", err)
	}
	counts := res.CountByCause()
	if counts[CauseUpdateHashMismatch] == 0 {
		t.Fatal("no hash-mismatch false positives from system updates")
	}
	if counts[CauseUpdateMissingFile] == 0 {
		t.Fatal("no missing-file false positives from system updates")
	}
	if counts[CauseSNAPTruncation] == 0 {
		t.Fatal("no SNAP truncation false positive")
	}
	if counts[CauseOther] != 0 {
		t.Fatalf("unexplained false positives: %d", counts[CauseOther])
	}
	if res.BenignOps.Execs == 0 || res.BenignOps.Scripts == 0 {
		t.Fatalf("benign workload incomplete: %+v", res.BenignOps)
	}
	out := RenderFPWeek(res)
	if !strings.Contains(out, "hash mismatch") {
		t.Fatalf("render missing cause rows:\n%s", out)
	}
}

func TestDailyDynamicRunZeroFPsExceptMisconfig(t *testing.T) {
	cfg := DailyRunConfig()
	res, err := DynamicRun(cfg)
	if err != nil {
		t.Fatalf("DynamicRun: %v", err)
	}
	if len(res.Days) != 31 {
		t.Fatalf("days = %d, want 31", len(res.Days))
	}
	if res.TotalUpdates != 31 {
		t.Fatalf("updates = %d, want 31 (daily)", res.TotalUpdates)
	}
	// The headline result: the only false positives come from the injected
	// misconfiguration event.
	if res.MisconfigFPs == 0 {
		t.Fatal("misconfiguration event produced no false positive")
	}
	if res.TotalFPs != res.MisconfigFPs {
		t.Fatalf("FPs outside the misconfiguration event: total=%d misconfig=%d",
			res.TotalFPs, res.MisconfigFPs)
	}
	// Kernel updates occurred and were survived without false positives.
	reboots := 0
	for _, day := range res.Days {
		if day.Rebooted {
			reboots++
		}
	}
	if reboots == 0 {
		t.Fatal("no kernel-update reboot exercised in 31 days")
	}
	if res.InitialPolicyLines == 0 {
		t.Fatal("initial policy stats missing")
	}
}

func TestDailyDynamicRunWithoutMisconfigIsClean(t *testing.T) {
	cfg := DailyRunConfig()
	cfg.Days = 10
	cfg.MisconfigDay = 0
	res, err := DynamicRun(cfg)
	if err != nil {
		t.Fatalf("DynamicRun: %v", err)
	}
	if res.TotalFPs != 0 {
		t.Fatalf("FPs = %d, want 0 over a clean run", res.TotalFPs)
	}
}

func TestGatedMisconfigDayHeldAndZeroFPs(t *testing.T) {
	// The acceptance scenario: the §III-C misconfiguration re-run through
	// the rollout controller. The freshness gate holds the window, the
	// stale candidate's divergence lands in shadow stats (quarantined, not
	// alerted), and the whole run finishes with ZERO false positives —
	// versus the ungated run above, where the same day alerts.
	cfg := DailyRunConfig()
	cfg.Days = 12
	cfg.MisconfigDay = 12
	cfg.Rollout = true
	res, err := DynamicRun(cfg)
	if err != nil {
		t.Fatalf("DynamicRun: %v", err)
	}
	if res.TotalFPs != 0 {
		t.Fatalf("FPs = %d, want 0 through the gated pipeline", res.TotalFPs)
	}
	if res.WindowsHeld == 0 {
		t.Fatal("freshness gate never held the stale window")
	}
	last := res.Days[len(res.Days)-1]
	if !last.MisconfigEvent || !last.WindowHeld {
		t.Fatalf("misconfig day record = %+v, want MisconfigEvent && WindowHeld", last)
	}
	st := res.RolloutStatus
	if st == nil {
		t.Fatal("RolloutStatus missing from gated run")
	}
	if st.Stats.Holds == 0 {
		t.Fatalf("controller holds = %d, want > 0", st.Stats.Holds)
	}
	// The would-have-fired alert is visible as shadow divergence: the stale
	// candidate rejected the late release's executables while the active
	// policy accepted them, and the tripwire quarantined it.
	if st.Stats.ShadowWouldFail == 0 {
		t.Fatal("stale candidate's divergence not visible in shadow stats")
	}
	if st.Stats.Rollbacks == 0 || len(st.Quarantined) == 0 {
		t.Fatalf("stale candidate not quarantined: rollbacks=%d quarantined=%v",
			st.Stats.Rollbacks, st.Quarantined)
	}
	// Every ordinary update day still promoted a generation.
	if st.Stats.Promotions < cfg.Days-1 {
		t.Fatalf("promotions = %d, want >= %d", st.Stats.Promotions, cfg.Days-1)
	}
}

func TestGatedCleanRunPromotesEveryWindow(t *testing.T) {
	cfg := DailyRunConfig()
	cfg.Days = 6
	cfg.MisconfigDay = 0
	cfg.Rollout = true
	res, err := DynamicRun(cfg)
	if err != nil {
		t.Fatalf("DynamicRun: %v", err)
	}
	if res.TotalFPs != 0 {
		t.Fatalf("FPs = %d, want 0 over a clean gated run", res.TotalFPs)
	}
	if res.WindowsHeld != 0 {
		t.Fatalf("windows held = %d on a run with no late publishes", res.WindowsHeld)
	}
	st := res.RolloutStatus
	if st == nil {
		t.Fatal("RolloutStatus missing")
	}
	if st.Stats.Promotions < cfg.Days {
		t.Fatalf("promotions = %d, want >= %d (one per update window)", st.Stats.Promotions, cfg.Days)
	}
	if st.Stats.Rollbacks != 0 {
		t.Fatalf("rollbacks = %d on a clean run", st.Stats.Rollbacks)
	}
	if st.Stage != "idle" {
		t.Fatalf("controller left at stage %s, want idle", st.Stage)
	}
}

func TestWeeklyDynamicRun(t *testing.T) {
	cfg := WeeklyRunConfig()
	res, err := DynamicRun(cfg)
	if err != nil {
		t.Fatalf("DynamicRun: %v", err)
	}
	if len(res.Days) != 35 {
		t.Fatalf("days = %d, want 35", len(res.Days))
	}
	if res.TotalUpdates != 5 {
		t.Fatalf("updates = %d, want 5 (weekly over 35 days)", res.TotalUpdates)
	}
	if res.TotalFPs != 0 {
		t.Fatalf("FPs = %d, want 0", res.TotalFPs)
	}
}

func TestTable1WeeklyCostsMoreThanDaily(t *testing.T) {
	daily, err := DynamicRun(DynamicRunConfig{
		Days: 14, UpdateEveryNDays: 1, BenignStepsPerDay: 20, Epoch: Epoch,
	})
	if err != nil {
		t.Fatalf("daily run: %v", err)
	}
	weekly, err := DynamicRun(DynamicRunConfig{
		Days: 14, UpdateEveryNDays: 7, BenignStepsPerDay: 20, Epoch: WeeklyEpoch,
	})
	if err != nil {
		t.Fatalf("weekly run: %v", err)
	}
	_, _, dailyFiles, dailyMins := runStats(daily)
	_, _, weeklyFiles, weeklyMins := runStats(weekly)
	// A weekly update batches ~a week of churn: more files and more time
	// per update than a daily one (Table I's shape).
	if weeklyFiles <= dailyFiles {
		t.Fatalf("weekly files/update (%.0f) <= daily (%.0f); want batching effect", weeklyFiles, dailyFiles)
	}
	if weeklyMins <= dailyMins {
		t.Fatalf("weekly minutes/update (%.2f) <= daily (%.2f)", weeklyMins, dailyMins)
	}
	out := RenderTable1(daily, weekly)
	if !strings.Contains(out, "Daily Update") || !strings.Contains(out, "Weekly Update") {
		t.Fatalf("Table I render incomplete:\n%s", out)
	}
}

func TestRenderFigures(t *testing.T) {
	cfg := DailyRunConfig()
	cfg.Days = 6
	cfg.MisconfigDay = 0
	res, err := DynamicRun(cfg)
	if err != nil {
		t.Fatalf("DynamicRun: %v", err)
	}
	for name, out := range map[string]string{
		"fig3": RenderFig3(res),
		"fig4": RenderFig4(res),
		"fig5": RenderFig5(res),
	} {
		if !strings.Contains(out, "day 01") || !strings.Contains(out, "mean=") {
			t.Fatalf("%s render incomplete:\n%s", name, out)
		}
	}
	eff := RenderEffectiveness(res, res)
	if !strings.Contains(eff, "Combined") {
		t.Fatalf("effectiveness render incomplete:\n%s", eff)
	}
}

func TestAttackMatrixReproducesTable2(t *testing.T) {
	res, err := AttackMatrix(StackConfig{})
	if err != nil {
		t.Fatalf("AttackMatrix: %v", err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Basic.Detected() {
			t.Errorf("%s basic = %v, want detected", row.Name, row.Basic)
		}
		if row.Adaptive.Detected() {
			t.Errorf("%s adaptive = %v, want undetected", row.Name, row.Adaptive)
		}
		if row.Name == "Aoyama" {
			if row.Mitigated.Detected() {
				t.Errorf("Aoyama mitigated = %v, want undetected (P5)", row.Mitigated)
			}
		} else if !row.Mitigated.Detected() {
			t.Errorf("%s mitigated = %v, want detected", row.Name, row.Mitigated)
		}
	}
	out := RenderTable2(res)
	for _, want := range []string{"AvosLocker", "Aoyama", "Mitigat.", "✓", "✗", "•"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II render missing %q:\n%s", want, out)
		}
	}
}

func TestMitigatedDeploymentHasNoExcludes(t *testing.T) {
	d, err := NewDeployment(StackConfig{Mitigated: true})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	defer d.Close()
	if len(d.Policy.Excludes()) != 0 {
		t.Fatalf("mitigated policy has excludes: %v", d.Policy.Excludes())
	}
	if d.Policy.IsExcluded("/tmp/x") {
		t.Fatal("mitigated policy still excludes /tmp")
	}
}

func TestRunAttackExportedDetectsBasicRansomware(t *testing.T) {
	a, err := attacks.ByName("AvosLocker")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	res, err := RunAttack(StackConfig{}, a, attacks.VariantBasic, false)
	if err != nil {
		t.Fatalf("runAttack: %v", err)
	}
	if !res.Outcome.Detected() {
		t.Fatalf("outcome = %v, want detected", res.Outcome)
	}
}

func TestDeploymentScalesConfigurable(t *testing.T) {
	sc := workload.ScaleSmall()
	sc.Packages = 10
	d, err := NewDeployment(StackConfig{Scale: sc})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	defer d.Close()
	if got := d.Machine.InstalledCount(); got != 11 { // 10 + kernel
		t.Fatalf("installed packages = %d, want 11", got)
	}
}

func TestScriptExecControlCatchesAoyama(t *testing.T) {
	a, err := attacks.ByName("Aoyama")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	// Mitigations alone cannot catch the pure-Python sample...
	plain, err := RunAttack(StackConfig{}, a, attacks.VariantAdaptive, true)
	if err != nil {
		t.Fatalf("RunAttack: %v", err)
	}
	if plain.Outcome.Detected() {
		t.Fatalf("Aoyama mitigated without SEC = %v, want undetected", plain.Outcome)
	}
	// ...but with script execution control the interpreter flags the
	// script open and IMA measures it.
	sec, err := RunAttack(StackConfig{ScriptExecControl: true}, a, attacks.VariantAdaptive, true)
	if err != nil {
		t.Fatalf("RunAttack(SEC): %v", err)
	}
	if !sec.Outcome.Detected() {
		t.Fatalf("Aoyama mitigated with SEC = %v, want detected", sec.Outcome)
	}
}

func TestAttackMatrixWithSECDetectsAll8(t *testing.T) {
	cfg := StackConfig{ScriptExecControl: true}
	res, err := AttackMatrix(cfg)
	if err != nil {
		t.Fatalf("AttackMatrix: %v", err)
	}
	for _, row := range res.Rows {
		// Basic/adaptive columns are unchanged (stock setup).
		if !row.Basic.Detected() || row.Adaptive.Detected() {
			t.Errorf("%s stock columns changed under SEC config: basic=%v adaptive=%v",
				row.Name, row.Basic, row.Adaptive)
		}
		if !row.Mitigated.Detected() {
			t.Errorf("%s mitigated+SEC = %v, want detected (all 8 with SEC)", row.Name, row.Mitigated)
		}
	}
}

func TestFPWeekWithSnapsDisabled(t *testing.T) {
	res, err := FPWeek(StackConfig{DisableSnaps: true})
	if err != nil {
		t.Fatalf("FPWeek: %v", err)
	}
	counts := res.CountByCause()
	if counts[CauseSNAPTruncation] != 0 {
		t.Fatalf("SNAP alerts = %d with SNAP disabled, want 0 (paper fix (b))", counts[CauseSNAPTruncation])
	}
	// Update-caused FPs remain: disabling SNAP fixes only the SNAP cause.
	if counts[CauseUpdateHashMismatch] == 0 && counts[CauseUpdateMissingFile] == 0 {
		t.Fatal("update-caused FPs disappeared unexpectedly")
	}
}

func TestVendorSigningEliminatesPolicyChurn(t *testing.T) {
	// The §V signed-hashes improvement as an alternative to dynamic policy
	// generation: with vendor-signed executables appraised by key, the
	// runtime policy is NEVER updated, yet ten days of unattended upgrades
	// produce zero false positives.
	d, err := NewDeployment(StackConfig{VendorSigning: true})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	defer d.Close()
	if err := d.refreshPolicyFromMachine(); err != nil {
		t.Fatalf("refreshPolicyFromMachine: %v", err)
	}
	ctx := context.Background()
	for day := 1; day <= 10; day++ {
		upd, err := d.Stream.PublishDay(d.Clock.Now())
		if err != nil {
			t.Fatalf("PublishDay: %v", err)
		}
		// Unattended upgrade straight from the archive — the scenario that
		// caused the FP week's alerts — but the new files carry vendor
		// signatures.
		if err := d.InstallFromArchive(upd.Published); err != nil {
			t.Fatalf("InstallFromArchive: %v", err)
		}
		if err := execUpdatedExecutables(d, upd, 3); err != nil {
			t.Fatalf("execUpdatedExecutables: %v", err)
		}
		res, err := d.V.AttestOnce(ctx, d.Machine.UUID())
		if err != nil {
			t.Fatalf("AttestOnce day %d: %v", day, err)
		}
		if res.Failure != nil {
			t.Fatalf("day %d: false positive despite vendor signatures: %+v", day, res.Failure)
		}
	}
	// The protection is signature-based, not permissive: an UNSIGNED new
	// executable still fails policy.
	if err := d.Machine.WriteFile("/usr/local/bin/unsigned", []byte("\x7fELF x"), vfsModeExec()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := d.Machine.Exec("/usr/local/bin/unsigned"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	res, err := d.V.AttestOnce(ctx, d.Machine.UUID())
	if err != nil {
		t.Fatalf("AttestOnce: %v", err)
	}
	if res.Failure == nil || res.Failure.Path != "/usr/local/bin/unsigned" {
		t.Fatalf("unsigned file not flagged: %+v", res.Failure)
	}
}

func TestVendorSigningRejectsForgedSignature(t *testing.T) {
	// An attacker self-signing their payload with a rogue key gains
	// nothing: only the distribution vendor's key is trusted.
	d, err := NewDeployment(StackConfig{VendorSigning: true})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	defer d.Close()
	if err := d.refreshPolicyFromMachine(); err != nil {
		t.Fatalf("refreshPolicyFromMachine: %v", err)
	}
	rogue, err := filesig.NewSigner(cryptoRandReader())
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	if err := d.Machine.WriteFile("/usr/local/bin/evil", []byte("\x7fELF evil"), vfsModeExec()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	info, err := d.Machine.FS().Stat("/usr/local/bin/evil")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	sig, err := rogue.SignHex(info.Digest)
	if err != nil {
		t.Fatalf("SignHex: %v", err)
	}
	if err := d.Machine.FS().SetXattr("/usr/local/bin/evil", vfsIMAXattr(), sig); err != nil {
		t.Fatalf("SetXattr: %v", err)
	}
	if err := d.Machine.Exec("/usr/local/bin/evil"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	res, err := d.V.AttestOnce(context.Background(), d.Machine.UUID())
	if err != nil {
		t.Fatalf("AttestOnce: %v", err)
	}
	if res.Failure == nil || res.Failure.Path != "/usr/local/bin/evil" {
		t.Fatalf("rogue-signed payload not flagged: %+v", res.Failure)
	}
}

func TestWriteFiguresCSV(t *testing.T) {
	cfg := DailyRunConfig()
	cfg.Days = 4
	cfg.MisconfigDay = 0
	res, err := DynamicRun(cfg)
	if err != nil {
		t.Fatalf("DynamicRun: %v", err)
	}
	var buf strings.Builder
	if err := WriteFiguresCSV(&buf, res); err != nil {
		t.Fatalf("WriteFiguresCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // header + 4 days
		t.Fatalf("CSV lines = %d, want 5:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "day,packages_changed") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestWriteAttackMatrixCSV(t *testing.T) {
	res := AttackMatrixResult{Rows: []AttackRow{{
		Name: "AvosLocker", Category: "Ransomware",
		Basic: attacks.OutcomeDetectedFresh, Adaptive: attacks.OutcomeUndetected,
		Mitigated: attacks.OutcomeDetectedFresh,
		Exploits:  []attacks.Problem{attacks.P1UnmonitoredDirectories},
	}}}
	var buf strings.Builder
	if err := WriteAttackMatrixCSV(&buf, res); err != nil {
		t.Fatalf("WriteAttackMatrixCSV: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "AvosLocker,Ransomware,true,false,true,false,false,false,false,detected-fresh-attestation") {
		t.Fatalf("CSV = %q", out)
	}
}

func TestWriteFPWeekCSV(t *testing.T) {
	res := FPWeekResult{Alerts: []FPAlert{{Day: 2, Cause: CauseSNAPTruncation, Path: "/usr/bin/jq"}}}
	var buf strings.Builder
	if err := WriteFPWeekCSV(&buf, res); err != nil {
		t.Fatalf("WriteFPWeekCSV: %v", err)
	}
	if !strings.Contains(buf.String(), "2,SNAP: truncated measurement path") {
		t.Fatalf("CSV = %q", buf.String())
	}
}

func TestAttackTimelineNarrative(t *testing.T) {
	out, err := AttackTimeline(StackConfig{}, "Mortem-qBot")
	if err != nil {
		t.Fatalf("AttackTimeline: %v", err)
	}
	for _, want := range []string{
		"basic attack vs stock Keylime",
		"adaptive attack vs stock Keylime",
		"adaptive attack vs mitigated Keylime",
		"verdict: DETECTED",
		"verdict: UNDETECTED",
		"P4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestAttackTimelineUnknownSample(t *testing.T) {
	if _, err := AttackTimeline(StackConfig{}, "NotASample"); err == nil {
		t.Fatal("unknown sample accepted")
	}
}

// Property: random benign activity against a machine-derived policy never
// raises an alert — the no-false-positive invariant the dynamic policy
// generator maintains.
func TestBenignActivityNeverAlertsProperty(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		sc := workload.ScaleSmall()
		sc.Seed = seed
		d, err := NewDeployment(StackConfig{Scale: sc})
		if err != nil {
			t.Fatalf("NewDeployment: %v", err)
		}
		benign, err := workload.NewBenignOps(d.Machine, workload.DefaultBenignOpsConfig(seed*100))
		if err != nil {
			d.Close()
			t.Fatalf("NewBenignOps: %v", err)
		}
		if err := d.refreshPolicyFromMachine(); err != nil {
			d.Close()
			t.Fatalf("refreshPolicyFromMachine: %v", err)
		}
		ctx := context.Background()
		for round := 0; round < 5; round++ {
			if _, err := benign.Run(40); err != nil {
				d.Close()
				t.Fatalf("benign.Run: %v", err)
			}
			res, err := d.V.AttestOnce(ctx, d.Machine.UUID())
			if err != nil {
				d.Close()
				t.Fatalf("AttestOnce: %v", err)
			}
			if res.Failure != nil {
				d.Close()
				t.Fatalf("seed %d round %d: benign activity alerted: %+v", seed, round, res.Failure)
			}
		}
		d.Close()
	}
}

// Property: any unknown executable run from a monitored location is always
// flagged — the detection invariant for non-adaptive attackers.
func TestUnknownExecutableAlwaysFlaggedProperty(t *testing.T) {
	d, err := NewDeployment(StackConfig{})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	defer d.Close()
	if err := d.refreshPolicyFromMachine(); err != nil {
		t.Fatalf("refreshPolicyFromMachine: %v", err)
	}
	ctx := context.Background()
	dirs := []string{"/usr/bin", "/usr/local/bin", "/usr/sbin", "/opt/app", "/usr/libexec"}
	for i := 0; i < 10; i++ {
		path := fmt.Sprintf("%s/unknown-%d", dirs[i%len(dirs)], i)
		if err := d.Machine.WriteFile(path, []byte(fmt.Sprintf("\x7fELF %d", i)), vfsModeExec()); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		if err := d.Machine.Exec(path); err != nil {
			t.Fatalf("Exec: %v", err)
		}
		res, err := d.V.AttestOnce(ctx, d.Machine.UUID())
		if err != nil {
			t.Fatalf("AttestOnce: %v", err)
		}
		if res.Failure == nil || res.Failure.Path != path {
			t.Fatalf("unknown executable %s not flagged: %+v", path, res.Failure)
		}
		// Operator whitelists and resumes so the next probe starts clean.
		if err := d.whitelist(path, nil); err != nil {
			t.Fatalf("whitelist: %v", err)
		}
		if err := d.V.Resume(d.Machine.UUID()); err != nil {
			t.Fatalf("Resume: %v", err)
		}
	}
}

func TestFleetSharedDynamicPolicy(t *testing.T) {
	// The datacenter scenario: one mirror and one dynamic policy shared by
	// a small fleet. All nodes must stay green across a multi-day update
	// cycle, since they install the same packages the generator measured.
	base, err := NewDeployment(StackConfig{})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	defer base.Close()
	if err := base.refreshPolicyFromMachine(); err != nil {
		t.Fatalf("refreshPolicyFromMachine: %v", err)
	}
	ctx := context.Background()

	// Two more machines enrolled with the same verifier under the same
	// policy (reusing the deployment's CA via fresh deployments would give
	// different mirror states; instead enroll clones of the base machine's
	// release on the same stack).
	type node struct {
		d *Deployment
	}
	nodes := []node{{base}}
	for i := 0; i < 2; i++ {
		extra, err := NewDeployment(StackConfig{})
		if err != nil {
			t.Fatalf("NewDeployment extra: %v", err)
		}
		defer extra.Close()
		if err := extra.refreshPolicyFromMachine(); err != nil {
			t.Fatalf("refreshPolicyFromMachine: %v", err)
		}
		nodes = append(nodes, node{extra})
	}

	for day := 1; day <= 5; day++ {
		for ni, n := range nodes {
			upd, err := n.d.Stream.PublishDay(n.d.Clock.Now())
			if err != nil {
				t.Fatalf("PublishDay: %v", err)
			}
			if _, _, err := n.d.Gen.Update(n.d.Clock.Now(), n.d.Machine.RunningKernel()); err != nil {
				t.Fatalf("Gen.Update: %v", err)
			}
			if err := n.d.PushGeneratorPolicy(); err != nil {
				t.Fatalf("PushGeneratorPolicy: %v", err)
			}
			if err := n.d.InstallFromMirror(upd.Published); err != nil {
				t.Fatalf("InstallFromMirror: %v", err)
			}
			if err := ExecUpdated(n.d, upd, 2); err != nil {
				t.Fatalf("ExecUpdated: %v", err)
			}
			res, err := n.d.V.AttestOnce(ctx, n.d.Machine.UUID())
			if err != nil {
				t.Fatalf("node %d day %d AttestOnce: %v", ni, day, err)
			}
			if res.Failure != nil {
				t.Fatalf("node %d day %d: FP under shared dynamic policy: %+v", ni, day, res.Failure)
			}
		}
	}
}

func TestConcurrentAttestationStress(t *testing.T) {
	// Concurrent polls against one agent must stay consistent: no panics,
	// no spurious failures, and the verified frontier only grows.
	d, err := NewDeployment(StackConfig{})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	defer d.Close()
	if err := d.refreshPolicyFromMachine(); err != nil {
		t.Fatalf("refreshPolicyFromMachine: %v", err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, err := d.V.AttestOnce(ctx, d.Machine.UUID())
				if err != nil {
					errs <- err
					return
				}
				if res.Failure != nil {
					errs <- fmt.Errorf("spurious failure: %+v", res.Failure)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent attestation: %v", err)
	}
	st, err := d.V.Status(d.Machine.UUID())
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Attestations < 32 {
		t.Fatalf("attestations = %d, want 32", st.Attestations)
	}
}
