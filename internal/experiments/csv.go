package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/attacks"
)

// CSV export of the figures/tables so the series can be re-plotted with
// external tooling (gnuplot, matplotlib, spreadsheets).

// WriteFiguresCSV writes the per-update series behind Figs. 3-5 as one CSV
// (day, packages, high-priority, entries, bytes, minutes).
func WriteFiguresCSV(w io.Writer, res DynamicRunResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"day", "packages_changed", "packages_with_executables", "high_priority",
		"entries_added", "bytes_added", "modeled_minutes", "rebooted", "fp_alerts",
	}); err != nil {
		return fmt.Errorf("experiments: writing CSV header: %w", err)
	}
	for _, d := range res.UpdateDays() {
		rec := []string{
			strconv.Itoa(d.Day),
			strconv.Itoa(d.Report.PackagesChanged),
			strconv.Itoa(d.Report.PackagesWithExecutables),
			strconv.Itoa(d.Report.HighPriority),
			strconv.Itoa(d.Report.EntriesAdded),
			strconv.FormatInt(d.Report.BytesAdded, 10),
			strconv.FormatFloat(d.Report.ModeledDuration.Minutes(), 'f', 3, 64),
			strconv.FormatBool(d.Rebooted),
			strconv.Itoa(len(d.FPAlerts)),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAttackMatrixCSV writes Table II as CSV.
func WriteAttackMatrixCSV(w io.Writer, res AttackMatrixResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"name", "category", "basic_detected", "adaptive_detected",
		"p1", "p2", "p3", "p4", "p5", "mitigated_outcome",
	}); err != nil {
		return fmt.Errorf("experiments: writing CSV header: %w", err)
	}
	for _, row := range res.Rows {
		marks := map[attacks.Problem]bool{}
		for _, p := range row.Exploits {
			marks[p] = true
		}
		rec := []string{
			row.Name,
			row.Category,
			strconv.FormatBool(row.Basic.Detected()),
			strconv.FormatBool(row.Adaptive.Detected()),
			strconv.FormatBool(marks[attacks.P1UnmonitoredDirectories]),
			strconv.FormatBool(marks[attacks.P2IncompleteAttestationLog]),
			strconv.FormatBool(marks[attacks.P3UnmonitoredFilesystems]),
			strconv.FormatBool(marks[attacks.P4NoReEvaluation]),
			strconv.FormatBool(marks[attacks.P5ScriptInterpreters]),
			row.Mitigated.String(),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFPWeekCSV writes the false-positive alerts as CSV.
func WriteFPWeekCSV(w io.Writer, res FPWeekResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"day", "cause", "failure_type", "path"}); err != nil {
		return fmt.Errorf("experiments: writing CSV header: %w", err)
	}
	for _, a := range res.Alerts {
		rec := []string{strconv.Itoa(a.Day), a.Cause.String(), a.Type.String(), a.Path}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
