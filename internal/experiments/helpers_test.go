package experiments

import (
	"crypto/rand"
	"io"

	"repro/internal/vfs"
)

// Small indirections keeping the main test file free of extra imports.
func vfsModeExec() vfs.Mode       { return vfs.ModeExecutable }
func vfsIMAXattr() string         { return vfs.IMAXattr }
func cryptoRandReader() io.Reader { return rand.Reader }
