package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/attacks"
)

// AttackTimeline runs one attack in all three configurations and renders a
// detailed step-by-step narrative: what the attacker did, what landed in
// the IMA log, which attestations fired alerts. Used by
// `cmd/repro -exp attack=<name>`.
func AttackTimeline(cfg StackConfig, name string) (string, error) {
	sample, err := attacks.ByName(name)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Attack timeline — %s (%s)\n", sample.Name, sample.Category)
	fmt.Fprintf(&b, "adaptive exploits: ")
	for i, p := range sample.Exploits {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString("\n")
	for _, p := range sample.Exploits {
		fmt.Fprintf(&b, "  %s — %s\n", p, p.Describe())
	}
	b.WriteString("\n")

	type runSpec struct {
		label     string
		variant   attacks.Variant
		mitigated bool
	}
	for _, spec := range []runSpec{
		{"basic attack vs stock Keylime", attacks.VariantBasic, false},
		{"adaptive attack vs stock Keylime", attacks.VariantAdaptive, false},
		{"adaptive attack vs mitigated Keylime", attacks.VariantAdaptive, true},
	} {
		fmt.Fprintf(&b, "== %s ==\n", spec.label)
		out, err := runTimeline(cfg, sample, spec.variant, spec.mitigated)
		if err != nil {
			return "", err
		}
		b.WriteString(out)
		b.WriteString("\n")
	}
	return b.String(), nil
}

// runTimeline executes one configuration with a narrated per-step log.
func runTimeline(cfg StackConfig, sample *attacks.Attack, variant attacks.Variant, mitigated bool) (string, error) {
	stack := cfg
	stack.Mitigated = mitigated
	stack.Clock = nil
	d, err := NewDeployment(stack)
	if err != nil {
		return "", err
	}
	defer d.Close()
	if err := d.refreshPolicyFromMachine(); err != nil {
		return "", err
	}
	ctx := context.Background()
	if res, err := d.V.AttestOnce(ctx, d.Machine.UUID()); err != nil || res.Failure != nil {
		return "", fmt.Errorf("experiments: baseline attestation: %v %+v", err, res.Failure)
	}

	var b strings.Builder
	env := attacks.NewEnv(d.Machine)
	sc := sample.Scenario(variant)
	seenFailures := 0
	logBefore := d.Machine.IMA().Len()
	for i, step := range sc.Steps {
		if err := step.Do(env); err != nil {
			return "", fmt.Errorf("experiments: step %d: %w", i+1, err)
		}
		logAfter := d.Machine.IMA().Len()
		fmt.Fprintf(&b, "step %d: %s\n", i+1, step.Name)
		fmt.Fprintf(&b, "        IMA log: +%d measurement(s)\n", logAfter-logBefore)
		logBefore = logAfter
		_, aerr := d.V.AttestOnce(ctx, d.Machine.UUID())
		if aerr != nil {
			fmt.Fprintf(&b, "        verifier: HALTED (stop-on-failure, P2 blind window)\n")
			continue
		}
		st, err := d.V.Status(d.Machine.UUID())
		if err != nil {
			return "", err
		}
		newFailures := st.Failures[seenFailures:]
		seenFailures = len(st.Failures)
		if len(newFailures) == 0 {
			fmt.Fprintf(&b, "        verifier: attestation PASS\n")
		}
		for _, f := range newFailures {
			tag := "benign decoy"
			if env.IsArtifact(f.Path) {
				tag = "ATTACK ARTIFACT"
			}
			fmt.Fprintf(&b, "        verifier: ALERT %s %s (%s)\n", f.Type, f.Path, tag)
		}
	}
	// Final verdict sweep.
	detected := false
	st, err := d.V.Status(d.Machine.UUID())
	if err != nil {
		return "", err
	}
	for _, f := range st.Failures {
		if env.IsArtifact(f.Path) {
			detected = true
		}
	}
	if detected {
		b.WriteString("verdict: DETECTED\n")
	} else {
		b.WriteString("verdict: UNDETECTED (no alert ever named an attack artifact)\n")
	}
	return b.String(), nil
}
