// Package experiments orchestrates the paper's experiments end to end and
// produces its tables and figures:
//
//   - the false-positive week (§III-A/B): a static policy plus benign
//     operations, unattended updates and SNAPs → classified false alerts;
//   - the dynamic-policy runs (§III-D): 31 days of daily updates and 35
//     days of weekly updates with the dynamic policy generator in the
//     loop → Figures 3-5, Table I, and the 66-day effectiveness result;
//   - the false-negative matrix (§IV): 8 attacks × basic/adaptive/ mitigated
//     → Table II.
//
// Everything runs on simulated time over real loopback HTTP between real
// Keylime components.
package experiments

import (
	"crypto/rand"
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/attacks"
	"repro/internal/core"
	"repro/internal/filesig"
	"repro/internal/ima"
	"repro/internal/keylime/agent"
	"repro/internal/keylime/registrar"
	"repro/internal/keylime/verifier"
	"repro/internal/machine"
	"repro/internal/mirror"
	"repro/internal/policy"
	"repro/internal/simclock"
	"repro/internal/tpm"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// Epoch is the simulated start of the daily experiment (the paper ran
// Feb 26 - Mar 28, 2024).
var Epoch = time.Date(2024, 2, 26, 0, 0, 0, 0, time.UTC)

// WeeklyEpoch is the start of the weekly experiment (May 6 - Jun 3, 2024).
var WeeklyEpoch = time.Date(2024, 5, 6, 0, 0, 0, 0, time.UTC)

// Kernel is the initially running kernel in all experiments.
const Kernel = "5.15.0-100-generic"

// OriginalExcludes is the permissive exclude set inherited from the
// original IBM policy — the /tmp wildcard is problem P1.
func OriginalExcludes() []string {
	return []string{"/tmp/.*", "/var/log/.*", "/snap/.*"}
}

// StackConfig configures a deployment.
type StackConfig struct {
	// Scale sizes the synthetic distribution (default ScaleSmall).
	Scale workload.Scale
	// EKBits sizes the TPM endorsement key (default 1024 for speed; the
	// cmd tools use 2048).
	EKBits int
	// Mitigated applies the paper's recommended fixes: enriched IMA
	// policy, IMA re-evaluation, no Keylime directory excludes, and
	// continue-on-failure polling.
	Mitigated bool
	// ScriptExecControl additionally enables the forward-looking P5 fix
	// from §IV-C: the shell and Python interpreters opt into script
	// execution control, and the IMA policy measures SCRIPT_CHECK.
	ScriptExecControl bool
	// DisableSnaps applies the paper's SNAP fix (b): SNAP is simply not
	// installed on the attested machine, eliminating the truncated-path
	// false positives.
	DisableSnaps bool
	// VendorSigning enables the §V signed-hashes improvement: the archive
	// vendor signs every executable, signatures ship as security.ima
	// xattrs, and the verifier appraises vendor-signed files by key
	// instead of by policy entry.
	VendorSigning bool
	// Clock drives timestamps (default: simulated clock at Epoch).
	Clock simclock.Clock
	// Logf receives operational warnings (nil discards). The dynamic runs
	// log through it when an update window opens stale (§III-C).
	Logf func(format string, args ...any)
	// GenWorkers bounds the policy generator's measurement worker pool
	// (default GOMAXPROCS; the merge is deterministic at any size).
	GenWorkers int
	// PollConcurrency bounds the verifier's PollAll worker pool
	// (default 0 = auto: 4x GOMAXPROCS, minimum 8).
	PollConcurrency int
}

// withDefaults fills unset fields.
func (c StackConfig) withDefaults() StackConfig {
	if c.Scale.Packages == 0 {
		c.Scale = workload.ScaleSmall()
	}
	if c.EKBits == 0 {
		c.EKBits = 1024
	}
	if c.Clock == nil {
		c.Clock = simclock.NewSimulated(Epoch)
	}
	return c
}

// Deployment is a full experiment stack: archive + mirror + update stream,
// one prover machine with agent, registrar, verifier, and the dynamic
// policy generator.
type Deployment struct {
	Config StackConfig
	Clock  simclock.Clock

	Archive *mirror.Archive
	Mirror  *mirror.Mirror
	Stream  *workload.Stream

	Machine *machine.Machine
	Agent   *agent.Agent
	Reg     *registrar.Registrar
	V       *verifier.Verifier
	Gen     *core.Generator
	// Vendor is the distribution's file-signing key (nil unless
	// VendorSigning is enabled).
	Vendor *filesig.Signer

	// Policy is the operator's working copy of the runtime policy (what
	// was last pushed to the verifier).
	Policy *policy.RuntimePolicy
	// LocalExtras holds entries for files outside the mirror (local
	// scripts, toolchain stand-ins); they are folded into every policy
	// the dynamic generator produces.
	LocalExtras *policy.RuntimePolicy

	regSrv *httptest.Server
	agSrv  *httptest.Server
}

// Close shuts the HTTP servers down.
func (d *Deployment) Close() {
	if d.agSrv != nil {
		d.agSrv.Close()
	}
	if d.regSrv != nil {
		d.regSrv.Close()
	}
}

// AgentURL returns the agent's quote endpoint base URL.
func (d *Deployment) AgentURL() string { return d.agSrv.URL }

// NewDeployment builds the stack: publishes the base release, installs it
// on the machine, registers the agent, builds the initial dynamic policy
// from the mirror, and enrolls the agent with the verifier under it.
func NewDeployment(cfg StackConfig) (*Deployment, error) {
	cfg = cfg.withDefaults()
	d := &Deployment{Config: cfg, Clock: cfg.Clock}
	start := cfg.Clock.Now()

	// Distribution side.
	d.Archive = mirror.NewArchive()
	if cfg.VendorSigning {
		vendor, err := filesig.NewSigner(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("experiments: creating vendor signer: %w", err)
		}
		d.Vendor = vendor
		d.Archive.SetVendor(vendor)
	}
	base := workload.BaseRelease(cfg.Scale, Kernel)
	if _, err := d.Archive.Publish(start.Add(-24*time.Hour), base...); err != nil {
		return nil, fmt.Errorf("experiments: publishing base release: %w", err)
	}
	d.Mirror = mirror.NewMirror(d.Archive)
	d.Stream = workload.NewStream(d.Archive, base, workload.DefaultStreamConfig(cfg.Scale))

	// Prover machine.
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("experiments: creating CA: %w", err)
	}
	machineOpts := []machine.Option{
		machine.WithTPMOptions(tpm.WithEKBits(cfg.EKBits)),
		machine.WithKernel(Kernel),
	}
	if cfg.Mitigated || cfg.ScriptExecControl {
		imaPolicy := ima.DefaultPolicy()
		if cfg.Mitigated {
			imaPolicy = ima.MitigatedPolicy()
		}
		if cfg.ScriptExecControl {
			imaPolicy = append(imaPolicy, ima.ScriptExecControlRule())
		}
		imaOpts := []ima.Option{ima.WithPolicy(imaPolicy)}
		if cfg.Mitigated {
			imaOpts = append(imaOpts, ima.WithReEvaluateOnPathChange(true))
		}
		machineOpts = append(machineOpts, machine.WithIMAOptions(imaOpts...))
	}
	d.Machine, err = machine.New(ca, machineOpts...)
	if err != nil {
		return nil, fmt.Errorf("experiments: creating machine: %w", err)
	}
	// Install the base release from the mirror (aligning the machine with
	// the mirror state, as the paper's setup does).
	d.Mirror.Sync(start)
	if err := d.Machine.InstallRelease(d.Mirror.Release()); err != nil {
		return nil, fmt.Errorf("experiments: installing base release: %w", err)
	}
	if err := attacks.InstallToolchain(d.Machine); err != nil {
		return nil, fmt.Errorf("experiments: installing toolchain: %w", err)
	}
	if cfg.ScriptExecControl {
		for _, interp := range []string{attacks.ShellPath, attacks.PythonPath} {
			if err := d.Machine.EnableScriptExecControl(interp); err != nil {
				return nil, fmt.Errorf("experiments: enabling script execution control: %w", err)
			}
		}
	}

	// Keylime components over loopback HTTP.
	d.Reg = registrar.New(ca.Pool())
	d.regSrv = httptest.NewServer(d.Reg.Handler())
	d.Agent = agent.New(d.Machine)
	d.agSrv = httptest.NewServer(d.Agent.Handler())
	if err := d.Agent.Register(d.regSrv.URL, d.agSrv.URL); err != nil {
		d.Close()
		return nil, fmt.Errorf("experiments: registering agent: %w", err)
	}

	// Dynamic policy generator over the mirror.
	excludes := OriginalExcludes()
	if cfg.Mitigated {
		excludes = nil
	}
	d.Gen = core.NewGenerator(d.Mirror, core.WithExcludes(excludes),
		core.WithScrubSNAPPrefixes(true), core.WithWorkers(cfg.GenWorkers))
	pol, _, err := d.Gen.GenerateInitial(start, Kernel)
	if err != nil {
		d.Close()
		return nil, fmt.Errorf("experiments: generating initial policy: %w", err)
	}
	// The toolchain stand-ins and admin scripts live outside the mirror:
	// fold the machine's current on-disk executables in, as the paper's
	// snapshot-script policy did for local customizations.
	snap, err := core.SnapshotPolicy(d.Machine.FS(), excludes)
	if err != nil {
		d.Close()
		return nil, err
	}
	pol.Merge(snap)
	d.LocalExtras = snap

	vOpts := []verifier.Option{verifier.WithClock(cfg.Clock)}
	if cfg.PollConcurrency > 0 {
		vOpts = append(vOpts, verifier.WithPollConcurrency(cfg.PollConcurrency))
	}
	if cfg.Mitigated {
		vOpts = append(vOpts, verifier.WithContinueOnFailure(true))
	}
	if cfg.VendorSigning {
		vendorPub, err := d.Vendor.Public()
		if err != nil {
			d.Close()
			return nil, err
		}
		trust, err := filesig.NewVerifySet(vendorPub)
		if err != nil {
			d.Close()
			return nil, err
		}
		vOpts = append(vOpts, verifier.WithFileSignatureTrust(trust))
	}
	d.V = verifier.New(d.regSrv.URL, vOpts...)
	if err := d.V.AddAgent(d.Machine.UUID(), d.agSrv.URL, pol); err != nil {
		d.Close()
		return nil, fmt.Errorf("experiments: enrolling agent with verifier: %w", err)
	}
	d.Policy = pol.Clone()
	return d, nil
}

// logf writes an operational log line through the configured sink.
func (d *Deployment) logf(format string, args ...any) {
	if d.Config.Logf != nil {
		d.Config.Logf(format, args...)
	}
}

// CheckMirrorFreshness reports whether the archive has published past the
// mirror's last sync, logging a warning when the update window is about
// to open stale — the §III-C precondition: proceeding now means the
// machine can install files the mirror-derived policy has never seen.
func (d *Deployment) CheckMirrorFreshness() mirror.Staleness {
	st := d.Mirror.Staleness()
	if st.Stale {
		d.logf("WARNING: update window opening stale: archive seq %d (published %s) is ahead of mirror seq %d (last sync %s); a policy generated now will not cover the late release",
			st.ArchiveSeq, st.LastPublish.UTC().Format(time.RFC3339),
			st.MirrorSeq, st.LastSync.UTC().Format(time.RFC3339))
	}
	return st
}

// InstallFromMirror applies the given packages to the machine (the
// controlled update path: the machine updates FROM THE MIRROR).
func (d *Deployment) InstallFromMirror(pkgs []mirror.Package) error {
	for _, p := range pkgs {
		mp, err := d.Mirror.Package(p.Name)
		if err != nil {
			return fmt.Errorf("experiments: update from mirror: %w", err)
		}
		if err := d.Machine.InstallPackage(mp); err != nil {
			return err
		}
	}
	return nil
}

// InstallFromArchive applies packages straight from the upstream archive —
// the misconfigured path behind the paper's one false positive (the
// operator bypassed the mirror).
func (d *Deployment) InstallFromArchive(pkgs []mirror.Package) error {
	for _, p := range pkgs {
		ap, err := d.Archive.Package(p.Name)
		if err != nil {
			return fmt.Errorf("experiments: update from archive: %w", err)
		}
		if err := d.Machine.InstallPackage(ap); err != nil {
			return err
		}
	}
	return nil
}

// PushPolicy updates the verifier's policy for the machine and records it
// as the operator's working copy.
func (d *Deployment) PushPolicy(pol *policy.RuntimePolicy) error {
	if err := d.V.UpdatePolicy(d.Machine.UUID(), pol); err != nil {
		return err
	}
	d.Policy = pol.Clone()
	return nil
}

// currentPolicy returns a mutable clone of the operator's working copy.
func (d *Deployment) currentPolicy() (*policy.RuntimePolicy, error) {
	if d.Policy == nil {
		return nil, fmt.Errorf("experiments: no policy pushed yet")
	}
	return d.Policy.Clone(), nil
}

// refreshPolicyFromMachine folds the machine's current on-disk executables
// into the working policy and pushes it (the operator re-baselining local
// customizations).
func (d *Deployment) refreshPolicyFromMachine() error {
	pol, err := d.currentPolicy()
	if err != nil {
		return err
	}
	snap, err := core.SnapshotPolicy(d.Machine.FS(), pol.Excludes())
	if err != nil {
		return err
	}
	// Keep the extras set current so later generator-policy pushes retain
	// locally created files (admin scripts, toolchain).
	d.LocalExtras.Merge(snap)
	pol.Merge(snap)
	return d.PushPolicy(pol)
}

// RefreshPolicyFromMachine is the exported form of the operator
// re-baselining step (used by the benchmark harness).
func (d *Deployment) RefreshPolicyFromMachine() error { return d.refreshPolicyFromMachine() }

// PushGeneratorPolicy pushes the generator's current policy (merged with
// local extras) to the verifier.
func (d *Deployment) PushGeneratorPolicy() error {
	pol, err := d.Gen.Policy()
	if err != nil {
		return err
	}
	pol.Merge(d.LocalExtras)
	return d.PushPolicy(pol)
}

// ExecUpdated runs up to perPkg freshly updated executables of each
// published package (exported for the benchmark harness).
func ExecUpdated(d *Deployment, upd workload.DayUpdate, perPkg int) error {
	return execUpdatedExecutables(d, upd, perPkg)
}

// execUpdatedExecutables runs up to perPkg freshly updated executables of
// each published package — the benign activity that surfaces update-caused
// policy mismatches. Kernel images and modules are skipped (they are not
// user-executed binaries).
func execUpdatedExecutables(d *Deployment, upd workload.DayUpdate, perPkg int) error {
	for _, p := range upd.Published {
		ran := 0
		for _, f := range p.ExecutableFiles() {
			if ran >= perPkg {
				break
			}
			if strings.HasPrefix(f.Path, "/boot/") || strings.HasPrefix(f.Path, "/usr/lib/modules/") {
				continue
			}
			if err := d.Machine.Exec(f.Path); err != nil {
				return fmt.Errorf("experiments: executing updated %s: %w", f.Path, err)
			}
			ran++
		}
	}
	return nil
}

// installSnapCore installs a small SNAP with one executable, used by the FP
// week to reproduce the truncated-path false positive.
func (d *Deployment) installSnapCore() (snapBinary string, err error) {
	files := []mirror.UnpackedFile{
		{Path: "/usr/bin/jq", Mode: vfs.ModeExecutable, Content: []byte("\x7fELF jq-in-snap")},
	}
	if err := d.Machine.InstallSnap("core20", "1974", files); err != nil {
		return "", err
	}
	return "/snap/core20/1974/usr/bin/jq", nil
}
