package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/keylime/verifier"
	"repro/internal/workload"
)

// FPCause classifies a false positive by root cause (§III-B).
type FPCause int

// The causes the paper identifies.
const (
	// CauseUpdateHashMismatch: an OS update modified a file, so the IMA
	// measurement no longer matches the (stale) policy digest.
	CauseUpdateHashMismatch FPCause = iota + 1
	// CauseUpdateMissingFile: an OS update added a file absent from the
	// policy.
	CauseUpdateMissingFile
	// CauseSNAPTruncation: a SNAP binary was measured under its truncated
	// in-sandbox path, which the policy (listing full /snap/... paths)
	// does not contain.
	CauseSNAPTruncation
	// CauseOther: anything else (expected to stay zero).
	CauseOther
)

var fpCauseNames = map[FPCause]string{
	CauseUpdateHashMismatch: "system-update: hash mismatch",
	CauseUpdateMissingFile:  "system-update: file missing from policy",
	CauseSNAPTruncation:     "SNAP: truncated measurement path",
	CauseOther:              "other",
}

// String names the cause.
func (c FPCause) String() string {
	if n, ok := fpCauseNames[c]; ok {
		return n
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// FPAlert is one false-positive alert observed during the week.
type FPAlert struct {
	Day   int
	Cause FPCause
	Path  string
	Type  verifier.FailureType
	Time  time.Time
}

// FPWeekResult summarizes the §III false-positive experiment.
type FPWeekResult struct {
	Days              int
	Alerts            []FPAlert
	AttestationRounds int
	BenignOps         workload.OpCounts
	// UpdatedPackages counts packages installed by unattended upgrades.
	UpdatedPackages int
}

// CountByCause tallies alerts per cause.
func (r FPWeekResult) CountByCause() map[FPCause]int {
	out := map[FPCause]int{}
	for _, a := range r.Alerts {
		out[a.Cause]++
	}
	return out
}

// FPWeek runs the paper's one-week false-positive experiment: a static
// snapshot policy, benign operations only, Ubuntu-style unattended upgrades
// pulling straight from the upstream archive, and one SNAP installed
// mid-week. Every attestation failure is a false positive by construction;
// after recording an alert the operator whitelists the flagged entry and
// resumes — the manual toil the dynamic policy generator eliminates.
func FPWeek(cfg StackConfig) (FPWeekResult, error) {
	d, err := NewDeployment(cfg)
	if err != nil {
		return FPWeekResult{}, err
	}
	defer d.Close()
	ctx := context.Background()
	res := FPWeekResult{Days: 7}

	sim, _ := d.Clock.(interface{ Advance(time.Duration) })
	advance := func(dur time.Duration) {
		if sim != nil {
			sim.Advance(dur)
		}
	}

	benign, err := workload.NewBenignOps(d.Machine, workload.DefaultBenignOpsConfig(cfg.Scale.Seed+7))
	if err != nil {
		return FPWeekResult{}, err
	}
	// The admin scripts and /bin/sh written by NewBenignOps postdate the
	// enrollment policy; fold them in (the operator's day-0 baseline).
	if err := d.refreshPolicyFromMachine(); err != nil {
		return FPWeekResult{}, err
	}

	// snapInnerPaths maps truncated in-sandbox paths to full /snap paths.
	snapInnerPaths := map[string]string{}

	// attestAndResolve runs attestation rounds, recording each false
	// positive and whitelisting it, until a round passes.
	seenFailures := 0
	attestAndResolve := func(day int) error {
		for rounds := 0; rounds < 200; rounds++ {
			_, err := d.V.AttestOnce(ctx, d.Machine.UUID())
			res.AttestationRounds++
			if err != nil && !errors.Is(err, verifier.ErrHalted) {
				return err
			}
			st, err := d.V.Status(d.Machine.UUID())
			if err != nil {
				return err
			}
			newFailures := st.Failures[seenFailures:]
			seenFailures = len(st.Failures)
			if len(newFailures) == 0 && !st.Halted {
				return nil // clean round
			}
			for _, f := range newFailures {
				res.Alerts = append(res.Alerts, FPAlert{
					Day:   day,
					Cause: classifyFP(d, snapInnerPaths, f),
					Path:  f.Path,
					Type:  f.Type,
					Time:  f.Time,
				})
				if err := d.whitelist(f.Path, snapInnerPaths); err != nil {
					return err
				}
			}
			if err := d.V.Resume(d.Machine.UUID()); err != nil {
				return err
			}
		}
		return fmt.Errorf("experiments: FP resolution did not converge")
	}

	for day := 1; day <= 7; day++ {
		// Morning benign operations.
		ops, err := benign.Run(60)
		if err != nil {
			return FPWeekResult{}, err
		}
		res.BenignOps.Execs += ops.Execs
		res.BenignOps.Opens += ops.Opens
		res.BenignOps.Scripts += ops.Scripts
		res.BenignOps.Walks += ops.Walks
		advance(6 * time.Hour)
		if err := attestAndResolve(day); err != nil {
			return FPWeekResult{}, err
		}

		// Unattended upgrade pulls straight from the upstream archive.
		upd, err := d.Stream.PublishDay(d.Clock.Now())
		if err != nil {
			return FPWeekResult{}, err
		}
		if err := d.InstallFromArchive(upd.Published); err != nil {
			return FPWeekResult{}, err
		}
		res.UpdatedPackages += len(upd.Published)
		if err := benign.Recatalog(); err != nil {
			return FPWeekResult{}, err
		}
		// Normal operations touch the freshly updated executables.
		if err := execUpdatedExecutables(d, upd, 5); err != nil {
			return FPWeekResult{}, err
		}
		advance(2 * time.Hour)
		if err := attestAndResolve(day); err != nil {
			return FPWeekResult{}, err
		}

		// Mid-week: a SNAP is installed and used (unless the operator
		// disabled SNAP — the paper's fix (b)).
		if day == 3 && !cfg.DisableSnaps {
			full, err := d.installSnapCore()
			if err != nil {
				return FPWeekResult{}, err
			}
			inner := full[len("/snap/core20/1974"):]
			snapInnerPaths[inner] = full
			if err := d.Machine.Exec(full); err != nil {
				return FPWeekResult{}, err
			}
			advance(time.Hour)
			if err := attestAndResolve(day); err != nil {
				return FPWeekResult{}, err
			}
		}

		// Evening benign operations.
		if _, err := benign.Run(40); err != nil {
			return FPWeekResult{}, err
		}
		advance(16 * time.Hour)
		if err := attestAndResolve(day); err != nil {
			return FPWeekResult{}, err
		}
	}
	return res, nil
}

// classifyFP assigns a root cause to one failure.
func classifyFP(d *Deployment, snapInner map[string]string, f verifier.Failure) FPCause {
	switch f.Type {
	case verifier.FailureHashMismatch:
		return CauseUpdateHashMismatch
	case verifier.FailureNotInPolicy:
		if _, ok := snapInner[f.Path]; ok {
			return CauseSNAPTruncation
		}
		return CauseUpdateMissingFile
	default:
		return CauseOther
	}
}

// whitelist adds the measured digest of the flagged path to the policy —
// the operator's manual resolution step.
func (d *Deployment) whitelist(path string, snapInner map[string]string) error {
	full := path
	if p, ok := snapInner[path]; ok {
		full = p
	}
	info, err := d.Machine.FS().Stat(full)
	if err != nil {
		return fmt.Errorf("experiments: whitelisting %s: %w", path, err)
	}
	pol, err := d.currentPolicy()
	if err != nil {
		return err
	}
	pol.Add(path, info.Digest)
	return d.PushPolicy(pol)
}
