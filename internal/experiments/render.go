package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attacks"
	"repro/internal/report"
)

// RenderFPWeek renders the §III-B false-positive cause breakdown.
func RenderFPWeek(res FPWeekResult) string {
	tbl := &report.Table{
		Title:   "False-positive week (static policy, benign operations only)",
		Headers: []string{"Cause", "Alerts"},
	}
	counts := res.CountByCause()
	for _, c := range []FPCause{CauseUpdateHashMismatch, CauseUpdateMissingFile, CauseSNAPTruncation, CauseOther} {
		tbl.AddRow(c.String(), fmt.Sprintf("%d", counts[c]))
	}
	tbl.AddRow("total", fmt.Sprintf("%d", len(res.Alerts)))
	var b strings.Builder
	b.WriteString(tbl.Render())
	fmt.Fprintf(&b, "\ndays=%d attestation-rounds=%d updated-packages=%d benign-ops=%+v\n",
		res.Days, res.AttestationRounds, res.UpdatedPackages, res.BenignOps)
	return b.String()
}

// RenderFig3 renders the daily policy-update time series (paper Fig. 3).
func RenderFig3(res DynamicRunResult) string {
	s := &report.Series{
		Title:  "Fig. 3 — Time to update the Keylime policy per update (minutes)",
		YLabel: "minutes",
		Unit:   "%.2f",
	}
	for _, d := range res.UpdateDays() {
		s.Add(fmt.Sprintf("day %02d", d.Day), d.Report.ModeledDuration.Minutes())
	}
	return s.Render()
}

// RenderFig4 renders packages-with-executables per update (paper Fig. 4).
func RenderFig4(res DynamicRunResult) string {
	s := &report.Series{
		Title:  "Fig. 4 — New + changed packages containing executables per update",
		YLabel: "packages",
		Unit:   "%.0f",
	}
	for _, d := range res.UpdateDays() {
		s.Add(fmt.Sprintf("day %02d", d.Day), float64(d.Report.PackagesWithExecutables))
	}
	var b strings.Builder
	b.WriteString(s.Render())
	high := &report.Series{
		Title:  "Fig. 4 (detail) — high-priority packages per update",
		YLabel: "packages",
		Unit:   "%.0f",
	}
	for _, d := range res.UpdateDays() {
		high.Add(fmt.Sprintf("day %02d", d.Day), float64(d.Report.HighPriority))
	}
	b.WriteByte('\n')
	b.WriteString(high.Render())
	return b.String()
}

// RenderFig5 renders policy entries added per update (paper Fig. 5).
func RenderFig5(res DynamicRunResult) string {
	s := &report.Series{
		Title:  "Fig. 5 — File entries added/changed in the policy per update",
		YLabel: "entries",
		Unit:   "%.0f",
	}
	for _, d := range res.UpdateDays() {
		s.Add(fmt.Sprintf("day %02d", d.Day), float64(d.Report.EntriesAdded))
	}
	var b strings.Builder
	b.WriteString(s.Render())
	fmt.Fprintf(&b, "initial policy: %d lines, %.1f MB\n",
		res.InitialPolicyLines, float64(res.InitialPolicyBytes)/(1<<20))
	return b.String()
}

// runStats computes Table I's per-update averages for one experiment.
func runStats(res DynamicRunResult) (lowP, highP, files, minutes float64) {
	var lows, highs, fs, mins []float64
	for _, d := range res.UpdateDays() {
		lows = append(lows, float64(d.Report.LowPriority))
		highs = append(highs, float64(d.Report.HighPriority))
		fs = append(fs, float64(d.Report.EntriesAdded))
		mins = append(mins, d.Report.ModeledDuration.Minutes())
	}
	return report.Mean(lows), report.Mean(highs), report.Mean(fs), report.Mean(mins)
}

// RenderTable1 renders the paper's Table I result summary.
func RenderTable1(daily, weekly DynamicRunResult) string {
	tbl := &report.Table{
		Title:   "Table I — Result summary (averages per update)",
		Headers: []string{"Experiment", "# Low-P Pkgs", "# Hig-P Pkgs", "# of Files Updated", "Time (mins)"},
	}
	dl, dh, df, dm := runStats(daily)
	wl, wh, wf, wm := runStats(weekly)
	tbl.AddRow("Daily Update", fmt.Sprintf("%.1f", dl), fmt.Sprintf("%.1f", dh), fmt.Sprintf("%.0f", df), fmt.Sprintf("%.2f", dm))
	tbl.AddRow("Weekly Update", fmt.Sprintf("%.1f", wl), fmt.Sprintf("%.1f", wh), fmt.Sprintf("%.0f", wf), fmt.Sprintf("%.2f", wm))
	tbl.AddRow("(paper daily)", "15.6", "0.9", "1,271", "2.36")
	tbl.AddRow("(paper weekly)", "76.4", "2.6", "5,513", "7.50")
	return tbl.Render()
}

// RenderEffectiveness renders the 66-day zero-false-positive result.
func RenderEffectiveness(daily, weekly DynamicRunResult) string {
	tbl := &report.Table{
		Title:   "Effectiveness — false positives under dynamic policy generation",
		Headers: []string{"Experiment", "Days", "Updates", "FP alerts", "of which misconfig event"},
	}
	tbl.AddRow("Daily (31d)", fmt.Sprintf("%d", len(daily.Days)), fmt.Sprintf("%d", daily.TotalUpdates),
		fmt.Sprintf("%d", daily.TotalFPs), fmt.Sprintf("%d", daily.MisconfigFPs))
	tbl.AddRow("Weekly (35d)", fmt.Sprintf("%d", len(weekly.Days)), fmt.Sprintf("%d", weekly.TotalUpdates),
		fmt.Sprintf("%d", weekly.TotalFPs), fmt.Sprintf("%d", weekly.MisconfigFPs))
	tbl.AddRow("Combined", fmt.Sprintf("%d", len(daily.Days)+len(weekly.Days)),
		fmt.Sprintf("%d", daily.TotalUpdates+weekly.TotalUpdates),
		fmt.Sprintf("%d", daily.TotalFPs+weekly.TotalFPs),
		fmt.Sprintf("%d", daily.MisconfigFPs+weekly.MisconfigFPs))
	var b strings.Builder
	b.WriteString(tbl.Render())
	b.WriteString("\nPaper: 66 days, 36 updates, zero FP except one operator misconfiguration (Mar 27).\n")
	return b.String()
}

// RenderTable2 renders the attack detection matrix.
func RenderTable2(res AttackMatrixResult) string {
	tbl := &report.Table{
		Title:   "Table II — Attacks tested against Keylime",
		Headers: []string{"Name", "Category", "Basic", "Adaptive", "P1", "P2", "P3", "P4", "P5", "Mitigat."},
	}
	for _, row := range res.Rows {
		cells := []string{row.Name, row.Category, detSymbol(row.Basic), detSymbol(row.Adaptive)}
		for p := attacks.P1UnmonitoredDirectories; p <= attacks.P5ScriptInterpreters; p++ {
			mark := ""
			for _, e := range row.Exploits {
				if e == p {
					mark = "•"
				}
			}
			cells = append(cells, mark)
		}
		cells = append(cells, row.Mitigated.Symbol())
		tbl.AddRow(cells...)
	}
	var b strings.Builder
	b.WriteString(tbl.Render())
	b.WriteString("\nLegend: ✓ detected; ✓* detected upon reboot/fresh attestation; ✗ not detected;\n")
	b.WriteString("• adaptive variant may exploit this problem. Basic = attacker unaware of Keylime.\n")
	return b.String()
}

// detSymbol renders the basic/adaptive columns, which use a plain
// detected/not-detected legend.
func detSymbol(o attacks.Outcome) string {
	if o.Detected() {
		return "✓"
	}
	return "✗"
}
