// Package audit implements durable attestation: an append-only,
// hash-chained log of attestation outcomes that makes the verifier's
// decisions auditable after the fact (the paper cites Keylime's "durable
// attestation makes security auditable" work). Every attestation round
// appends a record whose hash covers the previous record's hash, so
// truncation, reordering or in-place edits of history are detectable.
package audit

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Errors.
var (
	ErrChainBroken  = errors.New("audit: hash chain broken")
	ErrBadRecord    = errors.New("audit: malformed record")
	ErrOutOfOrder   = errors.New("audit: record sequence out of order")
	ErrEmptyAgentID = errors.New("audit: record requires an agent id")
)

// Hash is the chain digest type.
type Hash = [sha256.Size]byte

// Outcome of one attestation round.
type Outcome string

// Outcomes.
const (
	OutcomePass Outcome = "pass"
	OutcomeFail Outcome = "fail"
)

// Record is one attestation event. The Hash field seals (PrevHash + all
// other fields); records form a chain from the zero hash.
type Record struct {
	Seq             uint64    `json:"seq"`
	Time            time.Time `json:"time"`
	AgentID         string    `json:"agent_id"`
	Outcome         Outcome   `json:"outcome"`
	FailureType     string    `json:"failure_type,omitempty"`
	FailurePath     string    `json:"failure_path,omitempty"`
	NewEntries      int       `json:"new_entries"`
	VerifiedEntries int       `json:"verified_entries"`
	RebootDetected  bool      `json:"reboot_detected"`
	// CheckLevel records which check authenticated the round ("full",
	// "session", "full-forced") so a downgraded check can never silently
	// stand in for a failed full one. Empty on records predating
	// sessioned attestation.
	CheckLevel string `json:"check_level,omitempty"`
	PrevHash   Hash   `json:"prev_hash"`
	Hash       Hash   `json:"hash"`
}

// sealInput canonically encodes the sealed fields.
func sealInput(r Record) []byte {
	var b strings.Builder
	var u64 [8]byte
	b.Write(r.PrevHash[:])
	binary.BigEndian.PutUint64(u64[:], r.Seq)
	b.Write(u64[:])
	binary.BigEndian.PutUint64(u64[:], uint64(r.Time.UnixNano()))
	b.Write(u64[:])
	for _, s := range []string{r.AgentID, string(r.Outcome), r.FailureType, r.FailurePath} {
		binary.BigEndian.PutUint64(u64[:], uint64(len(s)))
		b.Write(u64[:])
		b.WriteString(s)
	}
	binary.BigEndian.PutUint64(u64[:], uint64(r.NewEntries))
	b.Write(u64[:])
	binary.BigEndian.PutUint64(u64[:], uint64(r.VerifiedEntries))
	b.Write(u64[:])
	if r.RebootDetected {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	// CheckLevel is sealed only when present, so chains recorded before
	// the field existed still verify byte for byte.
	if r.CheckLevel != "" {
		binary.BigEndian.PutUint64(u64[:], uint64(len(r.CheckLevel)))
		b.Write(u64[:])
		b.WriteString(r.CheckLevel)
	}
	return []byte(b.String())
}

// seal computes the record hash.
func seal(r Record) Hash {
	return sha256.Sum256(sealInput(r))
}

// Valid reports whether the record's hash matches its contents.
func (r Record) Valid() bool { return r.Hash == seal(r) }

// Log is a thread-safe, append-only, hash-chained attestation history.
// The zero value is NOT usable; construct with NewLog.
type Log struct {
	mu        sync.Mutex
	records   []Record
	head      Hash
	sink      func(Record) error
	batchSink func([]Record) error
}

// NewLog returns an empty audit log.
func NewLog() *Log { return &Log{} }

// SetSink installs a persistence hook called with each sealed record
// before it is committed to the in-memory chain. A sink error aborts the
// append — the chain head does not advance — so a record exists in memory
// only if it is durable, never the other way around.
func (l *Log) SetSink(sink func(Record) error) {
	l.mu.Lock()
	l.sink = sink
	l.mu.Unlock()
}

// SetBatchSink installs a batch persistence hook used by AppendBatch:
// all sealed records of a batch are handed to the sink in chain order
// and committed together after it returns nil. When no batch sink is
// set, AppendBatch falls back to calling the per-record sink once per
// record (losing the single-fsync amortization but not correctness).
func (l *Log) SetBatchSink(sink func([]Record) error) {
	l.mu.Lock()
	l.batchSink = sink
	l.mu.Unlock()
}

// FromRecords builds a log that continues an existing verified history —
// the recovery path for a journal-backed log.
func FromRecords(records []Record) (*Log, error) {
	if err := VerifyChain(records); err != nil {
		return nil, err
	}
	l := NewLog()
	l.records = append([]Record(nil), records...)
	if len(records) > 0 {
		l.head = records[len(records)-1].Hash
	}
	return l, nil
}

// Entry is the caller-supplied portion of a record.
type Entry struct {
	Time            time.Time
	AgentID         string
	Outcome         Outcome
	FailureType     string
	FailurePath     string
	NewEntries      int
	VerifiedEntries int
	RebootDetected  bool
	CheckLevel      string
}

// Append seals and stores a new record, returning it.
func (l *Log) Append(e Entry) (Record, error) {
	if e.AgentID == "" {
		return Record{}, ErrEmptyAgentID
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	r := Record{
		Seq:             uint64(len(l.records)),
		Time:            e.Time,
		AgentID:         e.AgentID,
		Outcome:         e.Outcome,
		FailureType:     e.FailureType,
		FailurePath:     e.FailurePath,
		NewEntries:      e.NewEntries,
		VerifiedEntries: e.VerifiedEntries,
		RebootDetected:  e.RebootDetected,
		CheckLevel:      e.CheckLevel,
		PrevHash:        l.head,
	}
	r.Hash = seal(r)
	if l.sink != nil {
		if err := l.sink(r); err != nil {
			return Record{}, fmt.Errorf("audit: persisting record %d: %w", r.Seq, err)
		}
	}
	l.records = append(l.records, r)
	l.head = r.Hash
	return r, nil
}

// AppendBatch seals the entries as consecutive chain records and
// persists them through the batch sink — one journal write vector, one
// fsync — before committing any of them. Chain order is entry order.
// Commit-before-ack holds at batch granularity: when AppendBatch
// returns nil every record is sealed, durable, and committed; on a sink
// error no record is committed (batch sink — the journal rolls the torn
// write back) or only the durable prefix is (per-record fallback sink),
// so the in-memory chain never runs ahead of the durable one. Returns
// the committed records.
func (l *Log) AppendBatch(entries []Entry) ([]Record, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	for _, e := range entries {
		if e.AgentID == "" {
			return nil, ErrEmptyAgentID
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	batch := make([]Record, len(entries))
	head := l.head
	for i, e := range entries {
		r := Record{
			Seq:             uint64(len(l.records) + i),
			Time:            e.Time,
			AgentID:         e.AgentID,
			Outcome:         e.Outcome,
			FailureType:     e.FailureType,
			FailurePath:     e.FailurePath,
			NewEntries:      e.NewEntries,
			VerifiedEntries: e.VerifiedEntries,
			RebootDetected:  e.RebootDetected,
			CheckLevel:      e.CheckLevel,
			PrevHash:        head,
		}
		r.Hash = seal(r)
		head = r.Hash
		batch[i] = r
	}
	switch {
	case l.batchSink != nil:
		if err := l.batchSink(batch); err != nil {
			return nil, fmt.Errorf("audit: persisting batch of %d records at %d: %w", len(batch), batch[0].Seq, err)
		}
	case l.sink != nil:
		for i, r := range batch {
			if err := l.sink(r); err != nil {
				// Records before i are durable; commit exactly that prefix
				// so the chain head matches the journal tail.
				l.records = append(l.records, batch[:i]...)
				if i > 0 {
					l.head = batch[i-1].Hash
				}
				return append([]Record(nil), batch[:i]...),
					fmt.Errorf("audit: persisting record %d: %w", r.Seq, err)
			}
		}
	}
	l.records = append(l.records, batch...)
	l.head = head
	return append([]Record(nil), batch...), nil
}

// Len reports the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Head returns the chain head hash.
func (l *Log) Head() Hash {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// Records returns a copy of the history.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}

// ChainError pinpoints the first broken link in a verified history: the
// index of the offending record, the record itself, and the sentinel
// (ErrOutOfOrder or ErrChainBroken) describing how it broke. It is the
// structured form forensic tools (verify-chain) need — a boolean error
// tells an operator history was rewritten, a ChainError tells them
// where.
type ChainError struct {
	// Index is the position of the first bad record (0-based).
	Index int
	// Record is the offending record as read.
	Record Record
	// Reason is the sentinel class: ErrOutOfOrder or ErrChainBroken.
	Reason error
	msg    string
}

func (e *ChainError) Error() string { return e.msg }

// Unwrap keeps errors.Is(err, ErrChainBroken/ErrOutOfOrder) working.
func (e *ChainError) Unwrap() error { return e.Reason }

// VerifyChain checks an exported history: sequence numbers, per-record
// seals, and the prev-hash links from the zero hash. A failure is a
// *ChainError identifying the first broken link.
func VerifyChain(records []Record) error {
	err, _ := FirstBroken(records)
	if err != nil {
		return err
	}
	return nil
}

// FirstBroken walks the chain and returns the first broken link (nil if
// the chain is intact) plus the number of records verified before it.
func FirstBroken(records []Record) (*ChainError, int) {
	var prev Hash
	for i, r := range records {
		switch {
		case r.Seq != uint64(i):
			return &ChainError{Index: i, Record: r, Reason: ErrOutOfOrder,
				msg: fmt.Sprintf("%v: record %d has seq %d", ErrOutOfOrder, i, r.Seq)}, i
		case r.PrevHash != prev:
			return &ChainError{Index: i, Record: r, Reason: ErrChainBroken,
				msg: fmt.Sprintf("%v: record %d prev-hash mismatch", ErrChainBroken, i)}, i
		case !r.Valid():
			return &ChainError{Index: i, Record: r, Reason: ErrChainBroken,
				msg: fmt.Sprintf("%v: record %d seal mismatch", ErrChainBroken, i)}, i
		}
		prev = r.Hash
	}
	return nil, len(records)
}

// Export writes the history as JSON lines.
func (l *Log) Export(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range l.Records() {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("audit: exporting record %d: %w", r.Seq, err)
		}
	}
	return nil
}

// Import parses a JSON-lines export and verifies the chain. The returned
// log continues the imported chain.
func Import(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var records []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadRecord, lineNo, err)
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("audit: reading export: %w", err)
	}
	return FromRecords(records)
}

// ByAgent filters an exported history for one agent.
func ByAgent(records []Record, agentID string) []Record {
	var out []Record
	for _, r := range records {
		if r.AgentID == agentID {
			out = append(out, r)
		}
	}
	return out
}
