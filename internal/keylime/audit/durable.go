package audit

// Journal-backed persistence: the audit log used to be persisted by
// rewriting the whole JSON-lines export with O_TRUNC after every sweep —
// a crash mid-rewrite truncated the entire attestation history. The
// journal path appends each record (JSON payload, CRC-framed, fsynced)
// through internal/keylime/store the moment it is sealed, so the durable
// chain always ends at the last acknowledged verdict and a crash at any
// write boundary costs at most the one record that was never
// acknowledged.

import (
	"encoding/json"
	"fmt"

	"repro/internal/keylime/store"
)

// JournalLog couples an audit.Log to its on-disk journal. Construct with
// OpenJournal; every Log.Append is persisted (and fsynced) before it is
// acknowledged.
type JournalLog struct {
	// Log is the recovered, sink-wired audit log.
	Log *Log
	j   *store.Journal
}

// OpenJournal opens (creating if absent) a journal-backed audit log at
// path, replays and verifies the persisted chain, and wires the append
// sink. A torn final record — a crash mid-append — is truncated by the
// journal layer; a chain that fails verification is corruption and an
// error.
// Journal options (e.g. store.WithGroupCommit) pass through to the
// underlying store.OpenJournal.
func OpenJournal(fsys store.FS, path string, opts ...store.JournalOption) (*JournalLog, error) {
	j, payloads, err := store.OpenJournal(fsys, path, opts...)
	if err != nil {
		return nil, fmt.Errorf("audit: opening journal: %w", err)
	}
	records := make([]Record, 0, len(payloads))
	for i, p := range payloads {
		var r Record
		if err := json.Unmarshal(p, &r); err != nil {
			_ = j.Close()
			return nil, fmt.Errorf("%w: journal record %d: %v", ErrBadRecord, i, err)
		}
		records = append(records, r)
	}
	l, err := FromRecords(records)
	if err != nil {
		_ = j.Close()
		return nil, err
	}
	jl := &JournalLog{Log: l, j: j}
	l.SetSink(jl.persist)
	l.SetBatchSink(jl.persistBatch)
	return jl, nil
}

// persist appends one record to the journal; the journal fsyncs before
// acknowledging, so a nil return means the record is durable.
func (jl *JournalLog) persist(r Record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("encoding record %d: %w", r.Seq, err)
	}
	return jl.j.Append(payload)
}

// persistBatch appends a whole sealed batch as one journal write vector
// with a single fsync. A torn write recovers as an in-order prefix of
// the batch, which is a valid (shorter) chain — the in-memory log only
// commits after this returns nil, so the durable chain never lags an
// acknowledged record.
func (jl *JournalLog) persistBatch(batch []Record) error {
	payloads := make([][]byte, len(batch))
	for i, r := range batch {
		p, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("encoding record %d: %w", r.Seq, err)
		}
		payloads[i] = p
	}
	return jl.j.AppendBatch(payloads)
}

// Records reports how many records the journal recovered at open.
func (jl *JournalLog) Recovered() int { return jl.j.Recovery().Records }

// Close detaches the sink and releases the journal handle.
func (jl *JournalLog) Close() error {
	jl.Log.SetSink(nil)
	jl.Log.SetBatchSink(nil)
	return jl.j.Close()
}
