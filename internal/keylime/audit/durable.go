package audit

// Journal-backed persistence: the audit log used to be persisted by
// rewriting the whole JSON-lines export with O_TRUNC after every sweep —
// a crash mid-rewrite truncated the entire attestation history. The
// journal path appends each record (JSON payload, CRC-framed, fsynced)
// through internal/keylime/store the moment it is sealed, so the durable
// chain always ends at the last acknowledged verdict and a crash at any
// write boundary costs at most the one record that was never
// acknowledged.

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/keylime/dsse"
	"repro/internal/keylime/store"
)

// CheckpointPayloadType is the DSSE payload type of sealed audit
// checkpoints.
const CheckpointPayloadType = "application/vnd.keylime.audit-checkpoint+json"

// checkpointBody is what a checkpoint envelope signs: the chain state
// after a sweep. Because Head commits to every prior record's hash, one
// verified checkpoint authenticates the entire history up to Seq — even
// records appended before sealing was enabled (the mixed-era case).
type checkpointBody struct {
	Seq  uint64 `json:"seq"`  // seq of the last record covered
	Head string `json:"head"` // hex chain head after that record
}

// journalFrame distinguishes the two payload shapes in an audit
// journal: plain chain records (no wrapper, the pre-sealing format,
// still written as-is) and sealed checkpoints ({"checkpoint": env}).
// Old journals therefore replay unchanged, and a journal may switch
// eras mid-file.
type journalFrame struct {
	Checkpoint *dsse.Envelope `json:"checkpoint"`
}

// JournalLog couples an audit.Log to its on-disk journal. Construct with
// OpenJournal; every Log.Append is persisted (and fsynced) before it is
// acknowledged.
type JournalLog struct {
	// Log is the recovered, sink-wired audit log.
	Log *Log
	j   *store.Journal

	mu sync.Mutex
	kr *dsse.Keyring
}

// OpenJournal opens (creating if absent) a journal-backed audit log at
// path, replays and verifies the persisted chain, and wires the append
// sink. A torn final record — a crash mid-append — is truncated by the
// journal layer; a chain that fails verification is corruption and an
// error.
// Journal options (e.g. store.WithGroupCommit) pass through to the
// underlying store.OpenJournal.
func OpenJournal(fsys store.FS, path string, opts ...store.JournalOption) (*JournalLog, error) {
	j, payloads, err := store.OpenJournal(fsys, path, opts...)
	if err != nil {
		return nil, fmt.Errorf("audit: opening journal: %w", err)
	}
	records := make([]Record, 0, len(payloads))
	for i, p := range payloads {
		// Checkpoint frames interleave with records; replay skips them
		// (offline verification is verify-chain's job, and a retired key
		// must not brick recovery of an otherwise intact chain).
		var fr journalFrame
		if err := json.Unmarshal(p, &fr); err == nil && fr.Checkpoint != nil {
			continue
		}
		var r Record
		if err := json.Unmarshal(p, &r); err != nil {
			_ = j.Close()
			return nil, fmt.Errorf("%w: journal record %d: %v", ErrBadRecord, i, err)
		}
		records = append(records, r)
	}
	l, err := FromRecords(records)
	if err != nil {
		_ = j.Close()
		return nil, err
	}
	jl := &JournalLog{Log: l, j: j}
	l.SetSink(jl.persist)
	l.SetBatchSink(jl.persistBatch)
	return jl, nil
}

// persist appends one record to the journal; the journal fsyncs before
// acknowledging, so a nil return means the record is durable.
func (jl *JournalLog) persist(r Record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("encoding record %d: %w", r.Seq, err)
	}
	return jl.j.Append(payload)
}

// persistBatch appends a whole sealed batch as one journal write vector
// with a single fsync. A torn write recovers as an in-order prefix of
// the batch, which is a valid (shorter) chain — the in-memory log only
// commits after this returns nil, so the durable chain never lags an
// acknowledged record. With a keyring armed, the vector ends with a
// signed checkpoint over the post-batch chain head — one checkpoint per
// sweep, sealed under the same fsync, at no extra write or sync cost.
func (jl *JournalLog) persistBatch(batch []Record) error {
	payloads := make([][]byte, len(batch), len(batch)+1)
	for i, r := range batch {
		p, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("encoding record %d: %w", r.Seq, err)
		}
		payloads[i] = p
	}
	if cp, err := jl.checkpointFrame(batch[len(batch)-1]); err != nil {
		return err
	} else if cp != nil {
		payloads = append(payloads, cp)
	}
	return jl.j.AppendBatch(payloads)
}

// SealCheckpoints arms signed checkpointing: every persisted batch is
// followed, in the same write vector, by a DSSE envelope over the chain
// head. Arm before the first sweep; a nil keyring disarms.
func (jl *JournalLog) SealCheckpoints(kr *dsse.Keyring) {
	jl.mu.Lock()
	jl.kr = kr
	jl.mu.Unlock()
}

// keyring returns the armed keyring, or nil when sealing is off.
func (jl *JournalLog) keyring() *dsse.Keyring {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.kr
}

// checkpointFrame seals the chain state after last into a journal
// frame, or returns (nil, nil) when sealing is disarmed or keyless.
func (jl *JournalLog) checkpointFrame(last Record) ([]byte, error) {
	kr := jl.keyring()
	if kr == nil || !kr.CanSign() {
		return nil, nil
	}
	body, err := json.Marshal(checkpointBody{Seq: last.Seq, Head: hex.EncodeToString(last.Hash[:])})
	if err != nil {
		return nil, fmt.Errorf("encoding checkpoint at %d: %w", last.Seq, err)
	}
	env, err := kr.Sign(CheckpointPayloadType, body)
	if err != nil {
		return nil, fmt.Errorf("sealing checkpoint at %d: %w", last.Seq, err)
	}
	frame, err := json.Marshal(journalFrame{Checkpoint: env})
	if err != nil {
		return nil, fmt.Errorf("encoding checkpoint frame at %d: %w", last.Seq, err)
	}
	return frame, nil
}

// Checkpoint force-seals the current chain head outside the batch path
// (shutdown, or after single-record appends). A no-op on an empty log
// or a disarmed keyring.
func (jl *JournalLog) Checkpoint() error {
	recs := jl.Log.Records()
	if len(recs) == 0 {
		return nil
	}
	frame, err := jl.checkpointFrame(recs[len(recs)-1])
	if err != nil || frame == nil {
		return err
	}
	return jl.j.Append(frame)
}

// Records reports how many records the journal recovered at open.
func (jl *JournalLog) Recovered() int { return jl.j.Recovery().Records }

// Close detaches the sink and releases the journal handle.
func (jl *JournalLog) Close() error {
	jl.Log.SetSink(nil)
	jl.Log.SetBatchSink(nil)
	return jl.j.Close()
}
