package audit

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/keylime/dsse"
	"repro/internal/keylime/store"
)

func testEntry(i int) Entry {
	return Entry{
		Time:    time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
		AgentID: fmt.Sprintf("agent-%d", i),
		Outcome: OutcomePass,
	}
}

func appendSweep(t *testing.T, jl *JournalLog, n int) {
	t.Helper()
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = testEntry(i)
	}
	if _, err := jl.Log.AppendBatch(entries); err != nil {
		t.Fatal(err)
	}
}

// A journal that started life unsigned and gained checkpoint sealing
// mid-file (the upgrade path) must verify end to end: the signed suffix
// has checkpoints, and because each checkpoint seals the chain head —
// which commits to all history — the unsigned prefix is covered
// retroactively. SignedThrough lands on the final sealed seq.
func TestVerifyMixedEraJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.log")

	// Unsigned era: two sweeps with no keyring armed.
	jl, err := OpenJournal(store.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	appendSweep(t, jl, 3)
	appendSweep(t, jl, 2)
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	// Signed era: reopen (replays the unsigned prefix), arm sealing,
	// two more sweeps.
	kr := dsse.NewKeyring()
	if _, err := kr.Rotate(); err != nil {
		t.Fatal(err)
	}
	jl, err = OpenJournal(store.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if jl.Log.Len() != 5 {
		t.Fatalf("recovered %d records, want 5", jl.Log.Len())
	}
	jl.SealCheckpoints(kr)
	appendSweep(t, jl, 2)
	appendSweep(t, jl, 3)
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := store.OS().ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyJournalBytes(data, kr)
	if !rep.OK() {
		t.Fatalf("mixed-era journal broken: %s", rep.FirstBad)
	}
	if rep.Records != 10 {
		t.Fatalf("records = %d, want 10", rep.Records)
	}
	if rep.Checkpoints != 2 || rep.VerifiedCheckpoints != 2 {
		t.Fatalf("checkpoints = %d verified %d, want 2/2", rep.Checkpoints, rep.VerifiedCheckpoints)
	}
	if rep.SignedThrough != 9 {
		t.Fatalf("SignedThrough = %d, want 9 (head commits to the whole chain)", rep.SignedThrough)
	}

	// Recovery of the mixed-era file skips checkpoint frames: the chain
	// replays whole even though the keyring is absent at open.
	jl, err = OpenJournal(store.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	if jl.Log.Len() != 10 {
		t.Fatalf("reopen recovered %d records, want 10", jl.Log.Len())
	}
}

// Without a keyring the walk still enforces checkpoint/chain head
// consistency: an intact signed journal passes (checkpoints counted but
// unverified), and a checkpoint whose sealed head disagrees with the
// chain fails even though no signature is checked.
func TestVerifyWithoutKeyringChecksHeadConsistency(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.log")
	kr := dsse.NewKeyring()
	if _, err := kr.Rotate(); err != nil {
		t.Fatal(err)
	}
	jl, err := OpenJournal(store.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	jl.SealCheckpoints(kr)
	appendSweep(t, jl, 3)
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := store.OS().ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyJournalBytes(data, nil)
	if !rep.OK() {
		t.Fatalf("keyringless walk broken: %s", rep.FirstBad)
	}
	if rep.Checkpoints != 1 || rep.VerifiedCheckpoints != 0 || rep.SignedThrough != -1 {
		t.Fatalf("keyringless report: %+v", rep)
	}
}

// FirstBroken pinpoints the exact record and reason of the first break
// in an in-memory chain — the structured form behind VerifyChain.
func TestFirstBrokenReportsIndexAndRecord(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		if _, err := l.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	records := l.Records()
	records[3].Outcome = OutcomeFail // tamper without resealing
	ce, idx := FirstBroken(records)
	if ce == nil || idx != 3 {
		t.Fatalf("FirstBroken = %v at %d, want break at 3", ce, idx)
	}
	if ce.Index != 3 || ce.Record.Seq != records[3].Seq {
		t.Fatalf("ChainError = %+v, want index 3 seq %d", ce, records[3].Seq)
	}
	if err := VerifyChain(records); err == nil {
		t.Fatal("VerifyChain accepted a tampered chain")
	}
}
