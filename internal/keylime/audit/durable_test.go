package audit_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/keylime/audit"
	"repro/internal/keylime/faultinject"
	"repro/internal/keylime/store"
)

// entry builds a distinct audit entry for round i.
func entry(i int) audit.Entry {
	out := audit.Entry{
		Time:            time.Unix(int64(1700000000+i*120), 0).UTC(),
		AgentID:         fmt.Sprintf("agent-%d", i%3),
		Outcome:         audit.OutcomePass,
		NewEntries:      i,
		VerifiedEntries: 10 + i,
	}
	if i%4 == 3 {
		out.Outcome = audit.OutcomeFail
		out.FailureType = "hash-mismatch"
		out.FailurePath = "/usr/bin/evil"
	}
	return out
}

func TestJournalLogAppendRecoverContinue(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.wal")
	jl, err := audit.OpenJournal(store.OS(), path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := jl.Log.Append(entry(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	head := jl.Log.Head()
	_ = jl.Close()

	jl2, err := audit.OpenJournal(store.OS(), path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if jl2.Recovered() != 5 || jl2.Log.Len() != 5 {
		t.Fatalf("recovered %d/%d records, want 5", jl2.Recovered(), jl2.Log.Len())
	}
	if jl2.Log.Head() != head {
		t.Fatal("chain head changed across recovery")
	}
	// The chain continues across the restart.
	if _, err := jl2.Log.Append(entry(5)); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if err := audit.VerifyChain(jl2.Log.Records()); err != nil {
		t.Fatalf("VerifyChain after restart append: %v", err)
	}
	_ = jl2.Close()
}

func TestJournalLogSinkFailureAbortsAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.wal")
	ffs := faultinject.NewFaultFS()
	jl, err := audit.OpenJournal(ffs, path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if _, err := jl.Log.Append(entry(0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	ffs.FailSyncN = ffs.Counters().Syncs + 1
	if _, err := jl.Log.Append(entry(1)); err == nil {
		t.Fatal("Append with failing persistence succeeded")
	}
	// The in-memory chain must not have advanced past the durable one.
	if jl.Log.Len() != 1 {
		t.Fatalf("Len = %d after aborted append, want 1", jl.Log.Len())
	}
	// And the log keeps working once the fault clears.
	if _, err := jl.Log.Append(entry(1)); err != nil {
		t.Fatalf("Append after cleared fault: %v", err)
	}
	_ = jl.Close()

	jl2, err := audit.OpenJournal(store.OS(), path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = jl2.Close() }()
	if jl2.Log.Len() != 2 {
		t.Fatalf("recovered %d records, want 2", jl2.Log.Len())
	}
	if err := audit.VerifyChain(jl2.Log.Records()); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
}

// TestJournalLogCrashAtEveryByte simulates a multi-round run killed at
// every byte offset of the audit journal: recovery must always verify the
// full chain and retain every acknowledged record.
func TestJournalLogCrashAtEveryByte(t *testing.T) {
	const rounds = 6
	run := func(fsys store.FS, path string) (acked int) {
		jl, err := audit.OpenJournal(fsys, path)
		if err != nil {
			return 0
		}
		defer func() { _ = jl.Close() }()
		for i := 0; i < rounds; i++ {
			if _, err := jl.Log.Append(entry(i)); err != nil {
				return acked
			}
			acked++
		}
		return acked
	}

	base := t.TempDir()
	count := faultinject.NewFaultFS()
	if got := run(count, filepath.Join(base, "count.wal")); got != rounds {
		t.Fatalf("fault-free pass acked %d of %d", got, rounds)
	}
	total := count.Counters().WriteBytes

	for k := int64(1); k <= total; k++ {
		path := filepath.Join(base, fmt.Sprintf("crash-%04d.wal", k))
		ffs := faultinject.NewFaultFS()
		ffs.CrashAfterBytes = k
		acked := run(ffs, path)

		jl, err := audit.OpenJournal(store.OS(), path)
		if err != nil {
			t.Fatalf("byte %d: recovery failed: %v", k, err)
		}
		recs := jl.Log.Records()
		if err := audit.VerifyChain(recs); err != nil {
			t.Fatalf("byte %d: chain invalid after recovery: %v", k, err)
		}
		// No acknowledged verdict lost; at most the in-flight record extra.
		if len(recs) < acked || len(recs) > acked+1 {
			t.Fatalf("byte %d: recovered %d records, acked %d", k, len(recs), acked)
		}
		// The chain continues after recovery.
		if _, err := jl.Log.Append(entry(len(recs))); err != nil {
			t.Fatalf("byte %d: append after recovery: %v", k, err)
		}
		if err := audit.VerifyChain(jl.Log.Records()); err != nil {
			t.Fatalf("byte %d: chain invalid after post-recovery append: %v", k, err)
		}
		_ = jl.Close()
	}
}
