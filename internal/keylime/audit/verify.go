package audit

// Offline journal verification: the forensic walk behind
// `keylime-tenant verify-chain`. It layers three defenses and reports
// the first link any of them breaks, with a byte offset an operator can
// take to a hex dump:
//
//  1. frame CRCs (store layer) — a bit flip anywhere in the file kills
//     the scan at the frame it landed in;
//  2. the hash chain — a spliced, reordered, or replayed record with a
//     recomputed CRC still breaks seq/prev-hash/seal at its index;
//  3. signed checkpoints — a wholesale rewrite of the chain (hashes
//     recomputed from some record onward) cannot forge the DSSE
//     signature over the head, so the first covering checkpoint fails.
//
// Signature failure is its own class: it quarantines the artifact and
// alerts, but never masks — and never manufactures — an integrity
// verdict about an agent.

import (
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/keylime/dsse"
	"repro/internal/keylime/store"
)

// BadLink classes, the degradation taxonomy for chain verification.
const (
	BadHeader         = "bad-header"          // journal magic damaged
	BadTornFrame      = "torn-frame"          // CRC/length failure (bit flip or torn tail)
	BadRecordEncoding = "bad-record"          // frame intact, JSON is not a record
	BadOutOfOrder     = "out-of-order"        // seq skipped, replayed, or reordered
	BadChainBroken    = "chain-broken"        // prev-hash link or seal mismatch
	BadSignature      = "signature-failure"   // checkpoint envelope fails DSSE verification
	BadCheckpoint     = "checkpoint-mismatch" // signature fine, sealed head disagrees with chain
)

// BadLink pinpoints the first record verification could not accept.
type BadLink struct {
	// Index is the frame's position in the journal (0-based; equals the
	// number of intact frames before it).
	Index int `json:"index"`
	// Offset is the byte offset of the frame in the file.
	Offset int64 `json:"offset"`
	// Seq is the chain sequence expected at this point.
	Seq uint64 `json:"seq"`
	// Class is one of the Bad* taxonomy constants.
	Class string `json:"class"`
	// Detail is the human explanation.
	Detail string `json:"detail"`
}

func (b *BadLink) String() string {
	return fmt.Sprintf("%s at record %d (byte offset %d, seq %d): %s", b.Class, b.Index, b.Offset, b.Seq, b.Detail)
}

// JournalReport is the result of verifying one audit journal file.
type JournalReport struct {
	// Records is how many chain records verified.
	Records int `json:"records"`
	// Checkpoints / VerifiedCheckpoints count sealed checkpoints seen
	// and cryptographically verified (they differ when no keyring was
	// supplied).
	Checkpoints         int `json:"checkpoints"`
	VerifiedCheckpoints int `json:"verified_checkpoints"`
	// SignedThrough is the highest record seq covered by a verified
	// checkpoint, or -1 when none is. Records past it are chain-linked
	// but not yet signature-covered (the normal state between sweeps,
	// and the unsigned era of a mixed-era journal is covered
	// retroactively because the head commits to all history).
	SignedThrough int64 `json:"signed_through"`
	// FileSize and TornBytes describe the raw file.
	FileSize  int64 `json:"file_size"`
	TornBytes int64 `json:"torn_bytes"`
	// FirstBad is nil when the whole file verifies.
	FirstBad *BadLink `json:"first_bad,omitempty"`
}

// OK reports whether the journal verified end to end.
func (r *JournalReport) OK() bool { return r.FirstBad == nil }

// VerifyJournalBytes verifies raw audit-journal bytes. kr supplies the
// checkpoint trust anchors and may be nil, which skips signature checks
// (checkpoint head consistency is still enforced). The walk stops at
// the first bad link.
func VerifyJournalBytes(data []byte, kr *dsse.Keyring) *JournalReport {
	rep := &JournalReport{SignedThrough: -1, FileSize: int64(len(data))}
	frames, info, err := store.ScanRecords(data)
	if err != nil {
		rep.FirstBad = &BadLink{Class: BadHeader, Detail: err.Error()}
		return rep
	}
	rep.TornBytes = info.FileSize - info.ValidLen
	var prev Hash
	var last Record
	haveLast := false
	seq := uint64(0)
	for _, fr := range frames {
		var wrapper journalFrame
		if err := json.Unmarshal(fr.Payload, &wrapper); err == nil && wrapper.Checkpoint != nil {
			rep.Checkpoints++
			bad := verifyCheckpoint(wrapper.Checkpoint, kr, last, haveLast)
			if bad != nil {
				bad.Index, bad.Offset, bad.Seq = fr.Index, fr.Offset, seq
				rep.FirstBad = bad
				return rep
			}
			if kr != nil {
				rep.VerifiedCheckpoints++
				rep.SignedThrough = int64(last.Seq)
			}
			continue
		}
		var r Record
		if err := json.Unmarshal(fr.Payload, &r); err != nil {
			rep.FirstBad = &BadLink{Index: fr.Index, Offset: fr.Offset, Seq: seq,
				Class: BadRecordEncoding, Detail: err.Error()}
			return rep
		}
		switch {
		case r.Seq != seq:
			rep.FirstBad = &BadLink{Index: fr.Index, Offset: fr.Offset, Seq: seq,
				Class: BadOutOfOrder, Detail: fmt.Sprintf("record has seq %d, chain expects %d", r.Seq, seq)}
			return rep
		case r.PrevHash != prev:
			rep.FirstBad = &BadLink{Index: fr.Index, Offset: fr.Offset, Seq: seq,
				Class: BadChainBroken, Detail: "prev-hash link does not match the preceding record"}
			return rep
		case !r.Valid():
			rep.FirstBad = &BadLink{Index: fr.Index, Offset: fr.Offset, Seq: seq,
				Class: BadChainBroken, Detail: "record seal (hash) does not match its contents"}
			return rep
		}
		prev = r.Hash
		last, haveLast = r, true
		seq++
		rep.Records++
	}
	// Bytes past the intact prefix: after a crash this is a record that
	// was never acknowledged, but offline it is indistinguishable from a
	// bit flip — report it as the first bad link either way.
	if rep.TornBytes > 0 {
		rep.FirstBad = &BadLink{Index: len(frames), Offset: info.ValidLen, Seq: seq,
			Class: BadTornFrame, Detail: fmt.Sprintf("%d trailing bytes fail CRC framing", rep.TornBytes)}
	}
	return rep
}

// verifyCheckpoint checks one sealed checkpoint against the running
// chain state. Returns a BadLink missing position fields (caller fills)
// or nil.
func verifyCheckpoint(env *dsse.Envelope, kr *dsse.Keyring, last Record, haveLast bool) *BadLink {
	body := env.Payload
	if kr != nil {
		verified, err := kr.Verify(env, CheckpointPayloadType)
		if err != nil {
			return &BadLink{Class: BadSignature, Detail: err.Error()}
		}
		body = verified
	}
	var cp checkpointBody
	if err := json.Unmarshal(body, &cp); err != nil {
		return &BadLink{Class: BadCheckpoint, Detail: fmt.Sprintf("checkpoint body: %v", err)}
	}
	if !haveLast {
		return &BadLink{Class: BadCheckpoint, Detail: "checkpoint precedes any chain record"}
	}
	if cp.Seq != last.Seq || cp.Head != hex.EncodeToString(last.Hash[:]) {
		return &BadLink{Class: BadCheckpoint,
			Detail: fmt.Sprintf("sealed head (seq %d) disagrees with the chain at seq %d", cp.Seq, last.Seq)}
	}
	return nil
}

// VerifyJournalFile reads and verifies the audit journal at path.
func VerifyJournalFile(fsys store.FS, path string, kr *dsse.Keyring) (*JournalReport, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("audit: reading journal %s: %w", path, err)
	}
	return VerifyJournalBytes(data, kr), nil
}
