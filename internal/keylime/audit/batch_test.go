package audit

// Batched-append suite: chain ordering of AppendBatch, commit-before-ack
// at batch granularity, and crash injection over a batched journal write
// proving that a torn batch recovers as a verifiable chain prefix.

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/keylime/faultinject"
	"repro/internal/keylime/store"
)

func batchEntries(n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{
			Time:    time.Unix(1700000000+int64(i), 0),
			AgentID: fmt.Sprintf("agent-%02d", i),
			Outcome: OutcomePass,
		}
		if i%3 == 2 {
			es[i].Outcome = OutcomeFail
			es[i].FailureType = "runtime-integrity"
		}
	}
	return es
}

func TestAppendBatchChainsInOrder(t *testing.T) {
	l := NewLog()
	if _, err := l.Append(batchEntries(1)[0]); err != nil {
		t.Fatal(err)
	}
	recs, err := l.AppendBatch(batchEntries(7)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("committed %d records, want 6", len(recs))
	}
	all := l.Records()
	if err := VerifyChain(all); err != nil {
		t.Fatalf("chain after batch: %v", err)
	}
	if l.Head() != all[len(all)-1].Hash {
		t.Fatal("head does not match last batched record")
	}
	// Order within the batch is entry order.
	for i, r := range all[1:] {
		want := fmt.Sprintf("agent-%02d", i+1)
		if r.AgentID != want {
			t.Fatalf("record %d agent %s, want %s", i+1, r.AgentID, want)
		}
	}
	// The chain keeps extending cleanly after a batch.
	if _, err := l.Append(Entry{Time: time.Unix(1, 0), AgentID: "post", Outcome: OutcomePass}); err != nil {
		t.Fatal(err)
	}
	if err := VerifyChain(l.Records()); err != nil {
		t.Fatal(err)
	}
}

func TestAppendBatchSinkErrorCommitsNothing(t *testing.T) {
	l := NewLog()
	boom := errors.New("disk gone")
	l.SetBatchSink(func([]Record) error { return boom })
	_, err := l.AppendBatch(batchEntries(3))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped sink error", err)
	}
	if l.Len() != 0 {
		t.Fatalf("%d records committed past a failed batch sink", l.Len())
	}
	// The head never advanced, so the log is still appendable from zero.
	l.SetBatchSink(nil)
	if _, err := l.AppendBatch(batchEntries(2)); err != nil {
		t.Fatal(err)
	}
	if err := VerifyChain(l.Records()); err != nil {
		t.Fatal(err)
	}
}

func TestAppendBatchFallbackSinkCommitsDurablePrefix(t *testing.T) {
	l := NewLog()
	calls := 0
	l.SetSink(func(Record) error {
		calls++
		if calls > 2 {
			return errors.New("sink full")
		}
		return nil
	})
	recs, err := l.AppendBatch(batchEntries(5))
	if err == nil {
		t.Fatal("batch past a failing per-record sink reported success")
	}
	if len(recs) != 2 || l.Len() != 2 {
		t.Fatalf("committed %d returned / %d stored, want the 2-record durable prefix", len(recs), l.Len())
	}
	if err := VerifyChain(l.Records()); err != nil {
		t.Fatalf("prefix chain: %v", err)
	}
	if l.Head() != recs[1].Hash {
		t.Fatal("head does not match last durable record")
	}
}

// TestJournalBatchCrashChainPrefixVerifies crashes at every byte of a
// batched journal append: recovery must always yield a verifiable chain
// that is a prefix of the batch, and once the batch was acknowledged it
// must survive whole.
func TestJournalBatchCrashChainPrefixVerifies(t *testing.T) {
	entries := batchEntries(6)

	// Fault-free pass to size the write stream.
	count := faultinject.NewFaultFS()
	jl, err := OpenJournal(count, filepath.Join(t.TempDir(), "audit.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jl.Log.AppendBatch(entries); err != nil {
		t.Fatal(err)
	}
	_ = jl.Close()
	total := count.Counters().WriteBytes

	for k := int64(1); k <= total; k++ {
		path := filepath.Join(t.TempDir(), "audit.wal")
		ffs := faultinject.NewFaultFS()
		ffs.CrashAfterBytes = k
		acked := false
		if jl, err := OpenJournal(ffs, path); err == nil {
			_, aerr := jl.Log.AppendBatch(entries)
			acked = aerr == nil
			_ = jl.Close()
		}
		rec, err := OpenJournal(store.OS(), path)
		if err != nil {
			t.Fatalf("byte %d: recovery failed: %v", k, err)
		}
		got := rec.Log.Records()
		_ = rec.Close()
		if err := VerifyChain(got); err != nil {
			t.Fatalf("byte %d: recovered chain broken: %v", k, err)
		}
		if acked && len(got) != len(entries) {
			t.Fatalf("byte %d: acknowledged batch recovered %d of %d records", k, len(got), len(entries))
		}
		if len(got) > len(entries) {
			t.Fatalf("byte %d: recovered %d records from a %d-entry batch", k, len(got), len(entries))
		}
		for i, r := range got {
			if r.AgentID != entries[i].AgentID {
				t.Fatalf("byte %d: record %d is %s, want prefix order %s", k, i, r.AgentID, entries[i].AgentID)
			}
		}
	}
}

// TestJournalBatchGroupCommitRoundTrip: a group-commit audit journal
// behaves identically at the API level — batch is durable when
// acknowledged and recovers verbatim.
func TestJournalBatchGroupCommitRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.wal")
	jl, err := OpenJournal(store.OS(), path, store.WithGroupCommit(time.Millisecond, 64))
	if err != nil {
		t.Fatal(err)
	}
	entries := batchEntries(9)
	if _, err := jl.Log.AppendBatch(entries); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenJournal(store.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rec.Close() }()
	if rec.Recovered() != len(entries) {
		t.Fatalf("recovered %d records, want %d", rec.Recovered(), len(entries))
	}
	if err := VerifyChain(rec.Log.Records()); err != nil {
		t.Fatal(err)
	}
}
