package audit

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2024, 2, 26, 12, 0, 0, 0, time.UTC)

func fill(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		outcome := OutcomePass
		ftype, fpath := "", ""
		if i%3 == 2 {
			outcome = OutcomeFail
			ftype, fpath = "file-not-in-policy", fmt.Sprintf("/usr/bin/x%d", i)
		}
		if _, err := l.Append(Entry{
			Time: t0.Add(time.Duration(i) * time.Minute), AgentID: "agent-1",
			Outcome: outcome, FailureType: ftype, FailurePath: fpath,
			NewEntries: i, VerifiedEntries: i * 2,
		}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func TestAppendBuildsValidChain(t *testing.T) {
	l := NewLog()
	fill(t, l, 10)
	if l.Len() != 10 {
		t.Fatalf("Len = %d, want 10", l.Len())
	}
	records := l.Records()
	if err := VerifyChain(records); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if l.Head() != records[9].Hash {
		t.Fatal("Head does not match last record hash")
	}
	if records[0].PrevHash != (Hash{}) {
		t.Fatal("first record must chain from the zero hash")
	}
}

func TestAppendRequiresAgentID(t *testing.T) {
	l := NewLog()
	if _, err := l.Append(Entry{Outcome: OutcomePass}); !errors.Is(err, ErrEmptyAgentID) {
		t.Fatalf("err = %v, want ErrEmptyAgentID", err)
	}
}

func TestVerifyChainDetectsEdit(t *testing.T) {
	l := NewLog()
	fill(t, l, 5)
	records := l.Records()
	// Rewriting history: flip a failure to a pass.
	records[2].Outcome = OutcomePass
	if err := VerifyChain(records); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("err = %v, want ErrChainBroken", err)
	}
}

func TestVerifyChainDetectsResealedEdit(t *testing.T) {
	l := NewLog()
	fill(t, l, 5)
	records := l.Records()
	// A smarter attacker recomputes the edited record's seal — the next
	// record's prev-hash still betrays the edit.
	records[2].Outcome = OutcomePass
	records[2].Hash = seal(records[2])
	if err := VerifyChain(records); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("err = %v, want ErrChainBroken", err)
	}
}

func TestVerifyChainDetectsDroppedRecord(t *testing.T) {
	l := NewLog()
	fill(t, l, 5)
	records := l.Records()
	cut := append(append([]Record(nil), records[:2]...), records[3:]...)
	if err := VerifyChain(cut); err == nil {
		t.Fatal("dropped record not detected")
	}
}

func TestVerifyChainDetectsReordering(t *testing.T) {
	l := NewLog()
	fill(t, l, 4)
	records := l.Records()
	records[1], records[2] = records[2], records[1]
	if err := VerifyChain(records); err == nil {
		t.Fatal("reordering not detected")
	}
}

func TestTruncationDetectableViaHead(t *testing.T) {
	l := NewLog()
	fill(t, l, 5)
	records := l.Records()
	head := l.Head()
	// Truncation yields a valid chain — detection requires comparing
	// against the stored head (e.g. anchored elsewhere).
	truncated := records[:3]
	if err := VerifyChain(truncated); err != nil {
		t.Fatalf("VerifyChain(truncated): %v", err)
	}
	if truncated[len(truncated)-1].Hash == head {
		t.Fatal("truncated chain head equals full head")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	l := NewLog()
	fill(t, l, 8)
	var buf bytes.Buffer
	if err := l.Export(&buf); err != nil {
		t.Fatalf("Export: %v", err)
	}
	back, err := Import(&buf)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if back.Len() != 8 || back.Head() != l.Head() {
		t.Fatalf("imported log len=%d head match=%v", back.Len(), back.Head() == l.Head())
	}
	// The imported log continues the chain.
	if _, err := back.Append(Entry{Time: t0, AgentID: "agent-1", Outcome: OutcomePass}); err != nil {
		t.Fatalf("Append after import: %v", err)
	}
	if err := VerifyChain(back.Records()); err != nil {
		t.Fatalf("chain after continued append: %v", err)
	}
}

func TestImportRejectsTamperedExport(t *testing.T) {
	l := NewLog()
	fill(t, l, 3)
	var buf bytes.Buffer
	if err := l.Export(&buf); err != nil {
		t.Fatalf("Export: %v", err)
	}
	data := bytes.Replace(buf.Bytes(), []byte(`"outcome":"fail"`), []byte(`"outcome":"pass"`), 1)
	if _, err := Import(bytes.NewReader(data)); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("err = %v, want ErrChainBroken", err)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := Import(bytes.NewReader([]byte("{not json\n"))); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v, want ErrBadRecord", err)
	}
}

func TestByAgentFilter(t *testing.T) {
	l := NewLog()
	for i := 0; i < 6; i++ {
		id := "agent-a"
		if i%2 == 1 {
			id = "agent-b"
		}
		if _, err := l.Append(Entry{Time: t0, AgentID: id, Outcome: OutcomePass}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := len(ByAgent(l.Records(), "agent-a")); got != 3 {
		t.Fatalf("ByAgent = %d records, want 3", got)
	}
	if got := len(ByAgent(l.Records(), "nobody")); got != 0 {
		t.Fatalf("ByAgent(nobody) = %d, want 0", got)
	}
}

// Property: any single-field mutation of any record breaks verification.
func TestChainMutationProperty(t *testing.T) {
	l := NewLog()
	fill(t, l, 6)
	base := l.Records()
	f := func(idx uint8, field uint8) bool {
		records := append([]Record(nil), base...)
		i := int(idx) % len(records)
		switch field % 5 {
		case 0:
			records[i].AgentID += "x"
		case 1:
			records[i].NewEntries++
		case 2:
			records[i].Time = records[i].Time.Add(time.Second)
		case 3:
			records[i].FailurePath += "y"
		case 4:
			records[i].RebootDetected = !records[i].RebootDetected
		}
		return VerifyChain(records) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
