package audit

import (
	"bytes"
	"testing"
	"time"
)

// FuzzImport exercises the audit-log importer: no panics, and any accepted
// history must verify and re-export byte-identically.
func FuzzImport(f *testing.F) {
	l := NewLog()
	_, _ = l.Append(Entry{Time: time.Unix(1708900000, 0).UTC(), AgentID: "a", Outcome: OutcomePass})
	_, _ = l.Append(Entry{Time: time.Unix(1708900060, 0).UTC(), AgentID: "a", Outcome: OutcomeFail, FailureType: "hash-mismatch", FailurePath: "/x"})
	var buf bytes.Buffer
	_ = l.Export(&buf)
	f.Add(buf.String())
	f.Add("")
	f.Add("{\"seq\":0}\n")
	f.Fuzz(func(t *testing.T, input string) {
		imported, err := Import(bytes.NewReader([]byte(input)))
		if err != nil {
			return
		}
		if err := VerifyChain(imported.Records()); err != nil {
			t.Fatalf("accepted import does not verify: %v", err)
		}
		var out bytes.Buffer
		if err := imported.Export(&out); err != nil {
			t.Fatalf("re-export failed: %v", err)
		}
		re, err := Import(&out)
		if err != nil {
			t.Fatalf("re-import failed: %v", err)
		}
		if re.Len() != imported.Len() || re.Head() != imported.Head() {
			t.Fatal("round trip changed the chain")
		}
	})
}
