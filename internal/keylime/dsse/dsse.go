// Package dsse implements DSSE v1 (Dead Simple Signing Envelope)
// signing and verification for the evidence the verifier emits: audit
// checkpoints, revocation notifications, rollout policy bundles, and
// cluster replication frames. Every hop seals its payload in an
// Envelope so a later reader can prove the bytes came from a holder of
// the signing key — a compromised disk or a forged replication stream
// cannot silently rewrite history.
//
// The envelope and its pre-authentication encoding (PAE) follow the
// DSSE protocol: the signature covers PAE(payloadType, payload), never
// the raw payload, so an attacker cannot move a signed body between
// payload types. Multi-signature envelopes carry one signature per
// live signing key, which is what makes key-rotation overlap windows
// work: a reader that only trusts the old key and a reader that only
// trusts the new key both accept the same envelope.
package dsse

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
)

// Errors form the strict degradation taxonomy: a signature failure is
// its own class of failure — callers quarantine the artifact and alert,
// but must never let it stand in for (or suppress) an integrity
// verdict.
var (
	// ErrNoSignature reports an envelope with no signatures at all.
	ErrNoSignature = errors.New("dsse: envelope has no signatures")
	// ErrUnknownKey reports that no signature matched a key the
	// verifier trusts (wrong keyid, or a retired key).
	ErrUnknownKey = errors.New("dsse: no signature by a trusted key")
	// ErrBadSignature reports a signature by a trusted keyid that does
	// not verify — the payload or signature bytes were altered.
	ErrBadSignature = errors.New("dsse: signature verification failed")
	// ErrBadPayloadType reports a type confusion: the envelope's
	// payload type is not the one the caller expected.
	ErrBadPayloadType = errors.New("dsse: unexpected payload type")
)

// Signature is one signature over PAE(payloadType, payload). KeyID is
// advisory (it routes verification to the right key) but unauthenticated,
// exactly as in the DSSE spec: trust comes from the signature verifying,
// not from the keyid matching.
type Signature struct {
	KeyID string `json:"keyid"`
	Sig   []byte `json:"sig"`
}

// Envelope is a DSSE v1 envelope. encoding/json base64s the []byte
// fields, which matches the DSSE JSON serialization.
type Envelope struct {
	PayloadType string      `json:"payloadType"`
	Payload     []byte      `json:"payload"`
	Signatures  []Signature `json:"signatures"`
}

// PAE computes the DSSE v1 pre-authentication encoding:
//
//	"DSSEv1" SP LEN(type) SP type SP LEN(payload) SP payload
//
// Lengths are decimal byte counts, so the encoding is unambiguous even
// when type or payload contain spaces.
func PAE(payloadType string, payload []byte) []byte {
	buf := make([]byte, 0, len("DSSEv1  ")+len(payloadType)+len(payload)+24)
	buf = append(buf, "DSSEv1 "...)
	buf = strconv.AppendInt(buf, int64(len(payloadType)), 10)
	buf = append(buf, ' ')
	buf = append(buf, payloadType...)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(len(payload)), 10)
	buf = append(buf, ' ')
	buf = append(buf, payload...)
	return buf
}

// KeyID derives the key identifier for an Ed25519 public key: the hex
// SHA-256 of the raw 32-byte key (same fingerprint idiom as the policy
// trust store's KeyIDOf).
func KeyID(pub ed25519.PublicKey) string {
	sum := sha256.Sum256(pub)
	return hex.EncodeToString(sum[:])
}

// Signer signs payloads with one Ed25519 key.
type Signer struct {
	priv  ed25519.PrivateKey
	keyid string
}

// NewSigner wraps an Ed25519 private key.
func NewSigner(priv ed25519.PrivateKey) *Signer {
	return &Signer{priv: priv, keyid: KeyID(priv.Public().(ed25519.PublicKey))}
}

// GenerateSigner creates a fresh Ed25519 signing key from crypto/rand.
func GenerateSigner() (*Signer, error) {
	_, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, fmt.Errorf("dsse: generate key: %w", err)
	}
	return NewSigner(priv), nil
}

// KeyID returns the signer's key identifier.
func (s *Signer) KeyID() string { return s.keyid }

// Public returns the signer's public key.
func (s *Signer) Public() ed25519.PublicKey { return s.priv.Public().(ed25519.PublicKey) }

// Sign seals payload under payloadType in a single-signature envelope.
func (s *Signer) Sign(payloadType string, payload []byte) *Envelope {
	sig := ed25519.Sign(s.priv, PAE(payloadType, payload))
	return &Envelope{
		PayloadType: payloadType,
		Payload:     payload,
		Signatures:  []Signature{{KeyID: s.keyid, Sig: sig}},
	}
}

// Cosign appends this signer's signature to an existing envelope
// (rotation overlap: old and new key both sign during the window).
// Signing the same envelope twice with the same key is a no-op.
func (s *Signer) Cosign(env *Envelope) {
	for _, sig := range env.Signatures {
		if sig.KeyID == s.keyid {
			return
		}
	}
	sig := ed25519.Sign(s.priv, PAE(env.PayloadType, env.Payload))
	env.Signatures = append(env.Signatures, Signature{KeyID: s.keyid, Sig: sig})
}

// Verifier verifies envelopes against a set of trusted Ed25519 keys.
type Verifier struct {
	keys map[string]ed25519.PublicKey
}

// NewVerifier builds a verifier trusting the given public keys.
func NewVerifier(pubs ...ed25519.PublicKey) *Verifier {
	v := &Verifier{keys: make(map[string]ed25519.PublicKey, len(pubs))}
	for _, pub := range pubs {
		v.Add(pub)
	}
	return v
}

// Add trusts another public key.
func (v *Verifier) Add(pub ed25519.PublicKey) { v.keys[KeyID(pub)] = pub }

// Remove stops trusting a key (retirement after a rotation window).
func (v *Verifier) Remove(keyid string) { delete(v.keys, keyid) }

// Len reports how many keys are trusted.
func (v *Verifier) Len() int { return len(v.keys) }

// Verify checks the envelope: the payload type must match wantType (""
// accepts any), and at least one signature must verify under a trusted
// key. It returns the payload on success. The error distinguishes the
// taxonomy classes: ErrBadPayloadType, ErrNoSignature, ErrUnknownKey,
// ErrBadSignature.
func (v *Verifier) Verify(env *Envelope, wantType string) ([]byte, error) {
	if env == nil {
		return nil, ErrNoSignature
	}
	if wantType != "" && env.PayloadType != wantType {
		return nil, fmt.Errorf("%w: got %q, want %q", ErrBadPayloadType, env.PayloadType, wantType)
	}
	if len(env.Signatures) == 0 {
		return nil, ErrNoSignature
	}
	pae := PAE(env.PayloadType, env.Payload)
	sawTrusted := false
	for _, sig := range env.Signatures {
		pub, ok := v.keys[sig.KeyID]
		if !ok {
			continue
		}
		sawTrusted = true
		if len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, pae, sig.Sig) {
			return env.Payload, nil
		}
	}
	if !sawTrusted {
		return nil, fmt.Errorf("%w (envelope keyids: %v)", ErrUnknownKey, keyids(env))
	}
	return nil, ErrBadSignature
}

func keyids(env *Envelope) []string {
	ids := make([]string, len(env.Signatures))
	for i, sig := range env.Signatures {
		ids[i] = short(sig.KeyID)
	}
	return ids
}

func short(keyid string) string {
	if len(keyid) > 12 {
		return keyid[:12]
	}
	return keyid
}

// Decode parses a JSON envelope, rejecting structurally invalid ones
// (empty payload type, or no parse at all) so callers get a clean
// "envelope-parse" failure instead of a nil-field panic downstream.
func Decode(data []byte) (*Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("dsse: decode envelope: %w", err)
	}
	if env.PayloadType == "" {
		return nil, errors.New("dsse: decode envelope: empty payloadType")
	}
	return &env, nil
}

// Encode serializes an envelope to JSON.
func Encode(env *Envelope) ([]byte, error) {
	b, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("dsse: encode envelope: %w", err)
	}
	return b, nil
}
