package dsse

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/keylime/store"
)

// Keyring manages the verifier's signing keys with first-class
// rotation: the newest key signs, every non-retired key still
// verifies, and during an overlap window envelopes carry signatures
// from both the outgoing and incoming key so readers pinned to either
// keyid accept them. State is a store.Journal of key/retire records —
// the same commit-before-ack discipline as every other journal in the
// system, so a crash mid-rotation recovers to a prefix (the old key)
// rather than a keyless verifier.
type Keyring struct {
	mu      sync.Mutex
	jr      *store.Journal // nil for an in-memory ring
	signers []*Signer      // journal order; last is the active signer
	retired map[string]bool
	ver     *Verifier
}

// keyringRecord is one journaled keyring mutation.
type keyringRecord struct {
	Op    string `json:"op"` // "key" | "retire"
	Priv  []byte `json:"priv,omitempty"`
	KeyID string `json:"keyid,omitempty"`
}

// ErrNoSigningKey reports a keyring asked to sign before any Rotate.
var ErrNoSigningKey = errors.New("dsse: keyring has no signing key")

// NewKeyring builds an empty in-memory keyring (tests, or verify-only
// use via AddVerifier).
func NewKeyring() *Keyring {
	return &Keyring{retired: make(map[string]bool), ver: NewVerifier()}
}

// OpenKeyring opens (creating if absent) the keyring journal at path
// and replays its key history. A fresh keyring has no signing key —
// call Rotate to mint the first.
func OpenKeyring(fsys store.FS, path string, opts ...store.JournalOption) (*Keyring, error) {
	jr, payloads, err := store.OpenJournal(fsys, path, opts...)
	if err != nil {
		return nil, fmt.Errorf("dsse: open keyring: %w", err)
	}
	k := NewKeyring()
	k.jr = jr
	for _, p := range payloads {
		if err := k.apply(p); err != nil {
			_ = jr.Close()
			return nil, fmt.Errorf("dsse: replay keyring: %w", err)
		}
	}
	return k, nil
}

// LoadKeyringFile replays a keyring journal read-only — it never opens
// the file for append, so an offline tool (verify-chain) can point at a
// live verifier's keyring. A torn tail is skipped exactly as OpenKeyring
// would truncate it.
func LoadKeyringFile(fsys store.FS, path string) (*Keyring, error) {
	recs, _, err := store.ScanFile(fsys, path)
	if err != nil {
		return nil, fmt.Errorf("dsse: load keyring: %w", err)
	}
	k := NewKeyring()
	for _, r := range recs {
		if err := k.apply(r.Payload); err != nil {
			return nil, fmt.Errorf("dsse: load keyring: %w", err)
		}
	}
	return k, nil
}

// apply replays one journal record into the in-memory state.
func (k *Keyring) apply(payload []byte) error {
	var rec keyringRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("bad record: %w", err)
	}
	switch rec.Op {
	case "key":
		if len(rec.Priv) != ed25519.PrivateKeySize {
			return fmt.Errorf("bad key record: %d-byte private key", len(rec.Priv))
		}
		s := NewSigner(ed25519.PrivateKey(rec.Priv))
		k.signers = append(k.signers, s)
		k.ver.Add(s.Public())
	case "retire":
		k.retired[rec.KeyID] = true
		k.ver.Remove(rec.KeyID)
		for i, s := range k.signers {
			if s.KeyID() == rec.KeyID {
				k.signers = append(k.signers[:i], k.signers[i+1:]...)
				break
			}
		}
	default:
		return fmt.Errorf("bad record op %q", rec.Op)
	}
	return nil
}

// journal durably appends a record before the in-memory state changes —
// a rotation is real only once it would survive a crash.
func (k *Keyring) journal(rec keyringRecord) error {
	if k.jr == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return k.jr.Append(b)
}

// Rotate mints a new signing key. The new key becomes the active
// signer; the previous keys keep verifying (and co-signing) until
// Retire ends their overlap window.
func (k *Keyring) Rotate() (keyid string, err error) {
	s, err := GenerateSigner()
	if err != nil {
		return "", err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.journal(keyringRecord{Op: "key", Priv: s.priv}); err != nil {
		return "", fmt.Errorf("dsse: journal rotation: %w", err)
	}
	k.signers = append(k.signers, s)
	k.ver.Add(s.Public())
	return s.KeyID(), nil
}

// Retire ends a key's overlap window: it stops signing and stops
// verifying. The active (newest) key cannot be retired.
func (k *Keyring) Retire(keyid string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if n := len(k.signers); n > 0 && k.signers[n-1].KeyID() == keyid {
		return fmt.Errorf("dsse: cannot retire the active signing key %s", short(keyid))
	}
	if err := k.journal(keyringRecord{Op: "retire", KeyID: keyid}); err != nil {
		return fmt.Errorf("dsse: journal retirement: %w", err)
	}
	k.retired[keyid] = true
	k.ver.Remove(keyid)
	for i, s := range k.signers {
		if s.KeyID() == keyid {
			k.signers = append(k.signers[:i], k.signers[i+1:]...)
			break
		}
	}
	return nil
}

// Sign seals payload with the active key and co-signs with every other
// live key — the multi-signature overlap that keeps the chain
// verifiable across a keyid boundary.
func (k *Keyring) Sign(payloadType string, payload []byte) (*Envelope, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	n := len(k.signers)
	if n == 0 {
		return nil, ErrNoSigningKey
	}
	env := k.signers[n-1].Sign(payloadType, payload)
	for _, s := range k.signers[:n-1] {
		s.Cosign(env)
	}
	return env, nil
}

// CanSign reports whether the keyring holds at least one signing key.
func (k *Keyring) CanSign() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.signers) > 0
}

// ActiveKeyID returns the signing key's id, or "" when none exists.
func (k *Keyring) ActiveKeyID() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	if n := len(k.signers); n > 0 {
		return k.signers[n-1].KeyID()
	}
	return ""
}

// AddVerifier trusts a peer's public key (cluster members trust each
// other's replication seals this way) without granting it sign access.
func (k *Keyring) AddVerifier(pub ed25519.PublicKey) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if !k.retired[KeyID(pub)] {
		k.ver.Add(pub)
	}
}

// PublicKeys returns every currently trusted public key held with a
// private counterpart, newest last — what a node publishes to peers.
func (k *Keyring) PublicKeys() []ed25519.PublicKey {
	k.mu.Lock()
	defer k.mu.Unlock()
	pubs := make([]ed25519.PublicKey, 0, len(k.signers))
	for _, s := range k.signers {
		pubs = append(pubs, s.Public())
	}
	return pubs
}

// Verify checks an envelope against every trusted, non-retired key.
func (k *Keyring) Verify(env *Envelope, wantType string) ([]byte, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.ver.Verify(env, wantType)
}

// Close releases the keyring journal (no-op for in-memory rings).
func (k *Keyring) Close() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.jr == nil {
		return nil
	}
	return k.jr.Close()
}
