package dsse_test

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/keylime/dsse"
	"repro/internal/keylime/faultinject"
	"repro/internal/keylime/store"
)

func TestKeyringRotationOverlap(t *testing.T) {
	k := dsse.NewKeyring()
	if k.CanSign() {
		t.Fatal("empty keyring claims it can sign")
	}
	if _, err := k.Sign("t", []byte("x")); !errors.Is(err, dsse.ErrNoSigningKey) {
		t.Fatalf("sign without key: %v", err)
	}
	k1, err := k.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	envOld, err := k.Sign("t", []byte("before rotation"))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := k.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if k.ActiveKeyID() != k2 {
		t.Fatalf("active = %s, want %s", k.ActiveKeyID(), k2)
	}
	// Overlap window: new envelope carries both signatures, and
	// pre-rotation envelopes still verify (old key not yet retired).
	envNew, err := k.Sign("t", []byte("after rotation"))
	if err != nil {
		t.Fatal(err)
	}
	if len(envNew.Signatures) != 2 {
		t.Fatalf("overlap envelope has %d signatures, want 2", len(envNew.Signatures))
	}
	if _, err := k.Verify(envOld, "t"); err != nil {
		t.Fatalf("pre-rotation envelope: %v", err)
	}
	// Retire the old key: its single-signature envelopes stop
	// verifying, overlap envelopes survive via the new key's signature.
	if err := k.Retire(k1); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Verify(envOld, "t"); !errors.Is(err, dsse.ErrUnknownKey) {
		t.Fatalf("retired-key envelope: %v", err)
	}
	if _, err := k.Verify(envNew, "t"); err != nil {
		t.Fatalf("overlap envelope after retire: %v", err)
	}
	// Post-retirement envelopes are single-signature again.
	envSolo, err := k.Sign("t", []byte("solo"))
	if err != nil {
		t.Fatal(err)
	}
	if len(envSolo.Signatures) != 1 {
		t.Fatalf("post-retire envelope has %d signatures", len(envSolo.Signatures))
	}
	if err := k.Retire(k2); err == nil {
		t.Fatal("retired the active signing key")
	}
}

func TestKeyringJournalReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys.wal")
	k, err := dsse.OpenKeyring(store.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := k.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	env1, err := k.Sign("t", []byte("era one"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Rotate(); err != nil {
		t.Fatal(err)
	}
	env2, err := k.Sign("t", []byte("era two"))
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Retire(k1); err != nil {
		t.Fatal(err)
	}
	active := k.ActiveKeyID()
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same active key, same trust decisions.
	k2r, err := dsse.OpenKeyring(store.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer k2r.Close()
	if k2r.ActiveKeyID() != active {
		t.Fatalf("active after replay = %s, want %s", k2r.ActiveKeyID(), active)
	}
	if _, err := k2r.Verify(env1, "t"); !errors.Is(err, dsse.ErrUnknownKey) {
		t.Fatalf("retired era-one envelope after replay: %v", err)
	}
	if _, err := k2r.Verify(env2, "t"); err != nil {
		t.Fatalf("era-two envelope after replay: %v", err)
	}

	// Read-only load sees the same state without touching the file.
	ro, err := dsse.LoadKeyringFile(store.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if ro.ActiveKeyID() != active {
		t.Fatalf("read-only active = %s, want %s", ro.ActiveKeyID(), active)
	}
	if _, err := ro.Verify(env2, "t"); err != nil {
		t.Fatalf("read-only verify: %v", err)
	}
}

// TestKeyringCrashSweep kills the keyring journal at every byte offset
// during a rotate+retire sequence and reopens: the survivor must always
// be a usable prefix — never keyless when a rotation was acknowledged,
// and envelopes sealed by acknowledged keys must still verify.
func TestKeyringCrashSweep(t *testing.T) {
	// Discover the total bytes one rotate+sign+rotate+retire writes.
	probe := faultinject.NewFaultFS()
	base := t.TempDir()
	run := func(fsys store.FS, path string) (envs []*dsse.Envelope, keyids []string, err error) {
		k, err := dsse.OpenKeyring(fsys, path)
		if err != nil {
			return nil, nil, err
		}
		defer k.Close()
		k1, err := k.Rotate()
		if err != nil {
			return nil, nil, err
		}
		keyids = append(keyids, k1)
		env, err := k.Sign("t", []byte("one"))
		if err != nil {
			return envs, keyids, err
		}
		envs = append(envs, env)
		k2, err := k.Rotate()
		if err != nil {
			return envs, keyids, err
		}
		keyids = append(keyids, k2)
		env, err = k.Sign("t", []byte("two"))
		if err != nil {
			return envs, keyids, err
		}
		envs = append(envs, env)
		if err := k.Retire(k1); err != nil {
			return envs, keyids, err
		}
		return envs, keyids, nil
	}
	if _, _, err := run(probe, filepath.Join(base, "probe.wal")); err != nil {
		t.Fatalf("probe run: %v", err)
	}
	total := probe.Counters().WriteBytes
	if total == 0 {
		t.Fatal("probe wrote nothing")
	}
	for kill := int64(1); kill <= total; kill++ {
		ffs := faultinject.NewFaultFS()
		ffs.CrashAfterBytes = kill
		path := filepath.Join(base, "sweep.wal")
		_ = store.OS().Remove(path)
		envs, _, err := run(ffs, path)
		if err == nil && kill < total {
			t.Fatalf("kill@%d: run survived early kill", kill)
		}
		// Recovery: reopen with a healthy FS.
		k, err := dsse.OpenKeyring(store.OS(), path)
		if err != nil {
			t.Fatalf("kill@%d: reopen: %v", kill, err)
		}
		// Every envelope the dying process actually returned must verify
		// after recovery: Sign only runs once Rotate's journal append was
		// acknowledged, and retirement of its key came later in program
		// order (so at this kill point it is still trusted or the run
		// never reached Sign).
		for i, env := range envs {
			if _, err := k.Verify(env, "t"); err != nil && i < len(envs)-1 {
				// envs[0]'s key is retired only at the very end; if the
				// retire record committed, the run finished and err==nil
				// above would have envs complete — treat retired as OK.
				if !errors.Is(err, dsse.ErrUnknownKey) {
					t.Fatalf("kill@%d: env[%d] after recovery: %v", kill, i, err)
				}
			} else if err != nil && i == len(envs)-1 {
				t.Fatalf("kill@%d: newest env after recovery: %v", kill, err)
			}
		}
		// The ring must be able to keep signing (possibly after minting
		// a first key when the kill predated the first rotation commit).
		if !k.CanSign() {
			if _, err := k.Rotate(); err != nil {
				t.Fatalf("kill@%d: rotate after recovery: %v", kill, err)
			}
		}
		if _, err := k.Sign("t", []byte("post-recovery")); err != nil {
			t.Fatalf("kill@%d: sign after recovery: %v", kill, err)
		}
		k.Close()
	}
}
