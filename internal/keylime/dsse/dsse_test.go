package dsse

import (
	"bytes"
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"testing"
)

// TestPAE pins the pre-authentication encoding to the DSSE v1 golden
// vectors; a drift here would silently invalidate every stored
// signature.
func TestPAE(t *testing.T) {
	cases := []struct {
		name        string
		payloadType string
		payload     string
		want        string
	}{
		{"empty", "", "", "DSSEv1 0  0 "},
		{"empty-type", "", "hello world", "DSSEv1 0  11 hello world"},
		{"empty-body", "http://example.com/HelloWorld", "", "DSSEv1 29 http://example.com/HelloWorld 0 "},
		{"hello-world", "http://example.com/HelloWorld", "hello world", "DSSEv1 29 http://example.com/HelloWorld 11 hello world"},
		{"unicode", "application/example", "entrée", "DSSEv1 19 application/example 7 entrée"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := PAE(tc.payloadType, []byte(tc.payload))
			if string(got) != tc.want {
				t.Fatalf("PAE(%q, %q) = %q, want %q", tc.payloadType, tc.payload, got, tc.want)
			}
		})
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	s, err := GenerateSigner()
	if err != nil {
		t.Fatal(err)
	}
	env := s.Sign("application/test", []byte("payload bytes"))
	if len(env.Signatures) != 1 || env.Signatures[0].KeyID != s.KeyID() {
		t.Fatalf("unexpected signatures: %+v", env.Signatures)
	}
	v := NewVerifier(s.Public())
	got, err := v.Verify(env, "application/test")
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !bytes.Equal(got, []byte("payload bytes")) {
		t.Fatalf("payload = %q", got)
	}
	// JSON round-trip preserves verifiability (base64 payload/sig).
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Verify(dec, "application/test"); err != nil {
		t.Fatalf("Verify after round-trip: %v", err)
	}
}

func TestVerifyTaxonomy(t *testing.T) {
	s, err := GenerateSigner()
	if err != nil {
		t.Fatal(err)
	}
	other, err := GenerateSigner()
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(s.Public())
	env := s.Sign("t", []byte("x"))

	if _, err := v.Verify(env, "u"); !errors.Is(err, ErrBadPayloadType) {
		t.Fatalf("wrong type: %v", err)
	}
	if _, err := v.Verify(&Envelope{PayloadType: "t", Payload: []byte("x")}, "t"); !errors.Is(err, ErrNoSignature) {
		t.Fatalf("no signatures: %v", err)
	}
	if _, err := v.Verify(nil, "t"); !errors.Is(err, ErrNoSignature) {
		t.Fatalf("nil envelope: %v", err)
	}
	if _, err := v.Verify(other.Sign("t", []byte("x")), "t"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("untrusted key: %v", err)
	}
	// Tampered payload under a trusted keyid: the hard failure class.
	bad := *env
	bad.Payload = []byte("y")
	if _, err := v.Verify(&bad, "t"); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered payload: %v", err)
	}
	// Tampered signature bytes likewise.
	bad2 := *env
	bad2.Signatures = []Signature{{KeyID: env.Signatures[0].KeyID, Sig: append([]byte(nil), env.Signatures[0].Sig...)}}
	bad2.Signatures[0].Sig[0] ^= 0x01
	if _, err := v.Verify(&bad2, "t"); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered signature: %v", err)
	}
	// A moved payload type fails even with wantType == "" because the
	// signature covers PAE(type, payload).
	moved := *env
	moved.PayloadType = "u"
	if _, err := v.Verify(&moved, ""); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("type confusion: %v", err)
	}
}

// TestMultiSignature exercises the rotation overlap shape: an envelope
// signed by old+new keys verifies for a reader that only trusts either
// one.
func TestMultiSignature(t *testing.T) {
	oldKey, err := GenerateSigner()
	if err != nil {
		t.Fatal(err)
	}
	newKey, err := GenerateSigner()
	if err != nil {
		t.Fatal(err)
	}
	env := newKey.Sign("t", []byte("overlap"))
	oldKey.Cosign(env)
	if len(env.Signatures) != 2 {
		t.Fatalf("signatures = %d, want 2", len(env.Signatures))
	}
	// Cosign is idempotent per key.
	oldKey.Cosign(env)
	if len(env.Signatures) != 2 {
		t.Fatalf("cosign not idempotent: %d signatures", len(env.Signatures))
	}
	for _, v := range []*Verifier{NewVerifier(oldKey.Public()), NewVerifier(newKey.Public()), NewVerifier(oldKey.Public(), newKey.Public())} {
		if _, err := v.Verify(env, "t"); err != nil {
			t.Fatalf("Verify with %d trusted keys: %v", v.Len(), err)
		}
	}
	// One valid signature is enough even if another is garbage.
	env.Signatures[0].Sig[0] ^= 0xff
	if _, err := NewVerifier(oldKey.Public(), newKey.Public()).Verify(env, "t"); err != nil {
		t.Fatalf("one-of-two valid: %v", err)
	}
}

func TestKeyIDStable(t *testing.T) {
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if KeyID(pub) != KeyID(pub) {
		t.Fatal("KeyID not deterministic")
	}
	if len(KeyID(pub)) != 64 {
		t.Fatalf("KeyID length = %d, want 64 hex chars", len(KeyID(pub)))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Fatal("decoded garbage")
	}
	if _, err := Decode([]byte(`{"payload":"aGk=","signatures":[]}`)); err == nil {
		t.Fatal("decoded envelope with empty payloadType")
	}
}

// FuzzEnvelopeDecode asserts Decode never panics and that any envelope
// it accepts survives an encode/decode round trip with signatures and
// payload intact.
func FuzzEnvelopeDecode(f *testing.F) {
	s, err := GenerateSigner()
	if err != nil {
		f.Fatal(err)
	}
	seed := s.Sign("application/vnd.keylime.audit-checkpoint+json", []byte(`{"seq":7}`))
	seedJSON, _ := Encode(seed)
	f.Add(seedJSON)
	f.Add([]byte(`{"payloadType":"t","payload":"","signatures":[{"keyid":"","sig":""}]}`))
	f.Add([]byte(`{"payloadType":"t","payload":"aGVsbG8=","signatures":[{"keyid":"a","sig":"AA=="},{"keyid":"b","sig":"AQ=="}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return
		}
		out, err := Encode(env)
		if err != nil {
			t.Fatalf("Encode after Decode: %v", err)
		}
		env2, err := Decode(out)
		if err != nil {
			t.Fatalf("Decode(Encode(env)): %v", err)
		}
		if env.PayloadType != env2.PayloadType || !bytes.Equal(env.Payload, env2.Payload) || len(env.Signatures) != len(env2.Signatures) {
			t.Fatalf("round trip changed envelope: %+v vs %+v", env, env2)
		}
	})
}

// TestEnvelopeJSONShape pins the wire field names to the DSSE spec so a
// struct-tag typo cannot quietly fork the format.
func TestEnvelopeJSONShape(t *testing.T) {
	env := &Envelope{PayloadType: "t", Payload: []byte("hi"), Signatures: []Signature{{KeyID: "k", Sig: []byte{1}}}}
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"payloadType", "payload", "signatures"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("missing %q in %s", key, b)
		}
	}
	sig := m["signatures"].([]any)[0].(map[string]any)
	for _, key := range []string{"keyid", "sig"} {
		if _, ok := sig[key]; !ok {
			t.Fatalf("missing signature field %q in %s", key, b)
		}
	}
}
