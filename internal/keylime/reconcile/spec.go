package reconcile

// Desired-fleet specification: the journaled record of operator intent
// the reconcile loop continuously drives the verifier toward. A spec is
// declarative — it names the agents that SHOULD be enrolled, per tenant,
// with their policies — and versioned: Apply assigns a monotonically
// increasing version and persists the whole spec through the store
// BEFORE any side effect, so what the operator meant is never implied by
// which imperative calls happened to succeed.

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/policy"
)

// DefaultTenant is the tenant agents belong to when their spec entry
// names none.
const DefaultTenant = "default"

// AgentSpec is one desired enrollment.
type AgentSpec struct {
	// ID is the agent UUID (required, unique within the spec).
	ID string `json:"id"`
	// URL is the agent's quote API base URL (required).
	URL string `json:"url"`
	// Tenant namespaces the agent for quota/rate accounting (default
	// "default").
	Tenant string `json:"tenant,omitempty"`
	// AKPub optionally carries the agent's attestation public key
	// (base64 PKIX DER). When set, enrollment trusts it directly
	// (AddAgentWithAK) instead of fetching it from the registrar.
	AKPub string `json:"ak_pub,omitempty"`
	// Policy is the desired runtime policy (raw JSON; empty = empty
	// policy).
	Policy json.RawMessage `json:"policy,omitempty"`
	// Cohort labels the agent's rollout cohort; the reconciler records
	// it for operators (and future staged-rollout grouping), it does not
	// change reconciliation behavior.
	Cohort string `json:"cohort,omitempty"`
}

// TenantSpec declares a tenant and its isolation limits. Tenants
// referenced by agents but not declared are created implicitly with the
// controller's defaults.
type TenantSpec struct {
	Name string `json:"name"`
	// MaxAgents caps how many agents the tenant may enroll (0 = the
	// controller's -tenant-quota default; negative = unlimited).
	MaxAgents int `json:"max_agents,omitempty"`
	// Rate is the tenant's reconcile-op token-bucket refill in ops/sec
	// (0 = the controller's -tenant-rate default; negative = unlimited).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token-bucket capacity (0 = max(1, ceil(rate))).
	Burst int `json:"burst,omitempty"`
}

// FleetSpec is the full desired state of the fleet.
type FleetSpec struct {
	// Version is assigned by Apply; a value in a submitted spec is
	// ignored.
	Version uint64       `json:"version,omitempty"`
	Tenants []TenantSpec `json:"tenants,omitempty"`
	Agents  []AgentSpec  `json:"agents"`
}

// ParseSpec decodes a spec document.
func ParseSpec(data []byte) (*FleetSpec, error) {
	var s FleetSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("reconcile: parsing spec: %w", err)
	}
	return &s, nil
}

// desiredAgent is an AgentSpec with its derived fields resolved once at
// Apply time: canonical policy hash, decoded AK, effective tenant.
type desiredAgent struct {
	spec   AgentSpec
	tenant string
	hash   string
	pol    *policy.RuntimePolicy
	akPub  []byte // nil when enrollment goes through the registrar
}

// resolve validates one AgentSpec and computes its derived fields.
func resolveAgent(a AgentSpec) (*desiredAgent, error) {
	if a.ID == "" {
		return nil, fmt.Errorf("reconcile: agent with empty id")
	}
	if a.URL == "" {
		return nil, fmt.Errorf("reconcile: agent %s: empty url", a.ID)
	}
	d := &desiredAgent{spec: a, tenant: a.Tenant}
	if d.tenant == "" {
		d.tenant = DefaultTenant
	}
	pol := policy.New()
	if len(a.Policy) > 0 {
		if err := json.Unmarshal(a.Policy, pol); err != nil {
			return nil, fmt.Errorf("reconcile: agent %s: policy: %w", a.ID, err)
		}
	}
	d.pol = pol
	h, err := policyHash(pol)
	if err != nil {
		return nil, fmt.Errorf("reconcile: agent %s: %w", a.ID, err)
	}
	d.hash = h
	if a.AKPub != "" {
		ak, err := base64.StdEncoding.DecodeString(a.AKPub)
		if err != nil {
			return nil, fmt.Errorf("reconcile: agent %s: ak_pub: %w", a.ID, err)
		}
		d.akPub = ak
	}
	return d, nil
}

// policyHash is the canonical content hash drift detection compares:
// the SHA-256 of the policy's canonical JSON marshaling (RuntimePolicy
// marshals entries in sorted order, so semantically equal policies hash
// equal regardless of how the spec formatted them).
func policyHash(pol *policy.RuntimePolicy) (string, error) {
	canon, err := json.Marshal(pol)
	if err != nil {
		return "", fmt.Errorf("canonicalizing policy: %w", err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// tenantLimits are one tenant's effective isolation settings after
// defaults are applied.
type tenantLimits struct {
	maxAgents int     // <= 0 unlimited
	rate      float64 // <= 0 unlimited
	burst     float64
}

// resolveSpec validates a whole spec against the controller defaults and
// returns the desired-agent map plus per-tenant effective limits. It is
// pure: no side effects, so Apply can reject a bad spec outright.
func resolveSpec(s *FleetSpec, defQuota int, defRate float64, defBurst int) (map[string]*desiredAgent, map[string]tenantLimits, error) {
	limits := make(map[string]tenantLimits)
	seenTenant := make(map[string]bool)
	for _, t := range s.Tenants {
		if t.Name == "" {
			return nil, nil, fmt.Errorf("reconcile: tenant with empty name")
		}
		if seenTenant[t.Name] {
			return nil, nil, fmt.Errorf("reconcile: duplicate tenant %q", t.Name)
		}
		seenTenant[t.Name] = true
		limits[t.Name] = effectiveLimits(t, defQuota, defRate, defBurst)
	}
	desired := make(map[string]*desiredAgent, len(s.Agents))
	perTenant := make(map[string]int)
	for _, a := range s.Agents {
		d, err := resolveAgent(a)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := desired[d.spec.ID]; dup {
			return nil, nil, fmt.Errorf("reconcile: duplicate agent id %q in spec", d.spec.ID)
		}
		if _, ok := limits[d.tenant]; !ok {
			limits[d.tenant] = effectiveLimits(TenantSpec{Name: d.tenant}, defQuota, defRate, defBurst)
		}
		desired[d.spec.ID] = d
		perTenant[d.tenant]++
	}
	for tn, n := range perTenant {
		if q := limits[tn].maxAgents; q > 0 && n > q {
			return nil, nil, fmt.Errorf("%w: tenant %q wants %d agents, quota %d",
				ErrQuotaExceeded, tn, n, q)
		}
	}
	return desired, limits, nil
}

// effectiveLimits applies the controller defaults to one tenant's
// declared limits. Explicit negatives mean unlimited.
func effectiveLimits(t TenantSpec, defQuota int, defRate float64, defBurst int) tenantLimits {
	l := tenantLimits{maxAgents: t.MaxAgents, rate: t.Rate}
	if t.MaxAgents == 0 {
		l.maxAgents = defQuota
	}
	if t.Rate == 0 {
		l.rate = defRate
	}
	burst := t.Burst
	if burst == 0 {
		burst = defBurst
	}
	if burst <= 0 {
		if l.rate > 0 {
			burst = int(l.rate) + 1
		} else {
			burst = 1
		}
	}
	l.burst = float64(burst)
	return l
}

// managedRow is the journaled record of one applied enrollment: what the
// reconciler last successfully drove the verifier to for this agent. The
// managed set is the reconciler's memory of ownership — agents enrolled
// imperatively (outside any spec) are never withdrawn, and a withdrawal
// is only forgotten after the remove has been applied, so a crash
// between side effect and journal replays idempotently in both
// directions.
//
// A completed withdrawal does not delete the row; it flips Withdrawn,
// leaving a tombstone. At-least-once recovery elsewhere in the system —
// a cluster failover restoring a dead shard from a replica that lagged
// the removal — can resurrect an agent the reconciler already withdrew;
// the tombstone remembers the withdrawal so the ghost is withdrawn
// again instead of leaking as "unmanaged". Tombstones are garbage-
// collected once the agent has stayed gone for a bounded number of
// ticks.
type managedRow struct {
	URL       string `json:"url"`
	Tenant    string `json:"tenant"`
	Hash      string `json:"hash"`
	Cohort    string `json:"cohort,omitempty"`
	Withdrawn bool   `json:"withdrawn,omitempty"`
}
