package reconcile

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/keylime/store"
	"repro/internal/keylime/verifier"
	"repro/internal/policy"
	"repro/internal/simclock"
)

// fakeFleet mimics the verifier's management surface semantics:
// AddAgent on an existing id is ErrDuplicate, Remove/Update on a missing
// id is ErrUnknownAgent.
type fakeFleet struct {
	mu     sync.Mutex
	agents map[string]fakeAgent
	// failFor makes every mutating op for the id fail until cleared.
	failFor map[string]error
	// hidden ids are withheld from AgentIDs (a stale view) while still
	// present for Add/Update, exercising the concurrent-enroll races.
	hidden map[string]bool

	adds, removes, updates int
}

type fakeAgent struct {
	url string
	pol *policy.RuntimePolicy
}

func newFakeFleet() *fakeFleet {
	return &fakeFleet{
		agents:  make(map[string]fakeAgent),
		failFor: make(map[string]error),
		hidden:  make(map[string]bool),
	}
}

func (f *fakeFleet) AgentIDs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.agents))
	for id := range f.agents {
		if !f.hidden[id] {
			out = append(out, id)
		}
	}
	return out
}

func (f *fakeFleet) AddAgent(id, url string, pol *policy.RuntimePolicy) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.failFor[id]; err != nil {
		return err
	}
	f.adds++
	if _, ok := f.agents[id]; ok {
		return fmt.Errorf("%w: %s", verifier.ErrDuplicate, id)
	}
	f.agents[id] = fakeAgent{url: url, pol: pol}
	return nil
}

func (f *fakeFleet) AddAgentWithAK(id, url string, akPub []byte, pol *policy.RuntimePolicy) error {
	return f.AddAgent(id, url, pol)
}

func (f *fakeFleet) RemoveAgent(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.failFor[id]; err != nil {
		return err
	}
	f.removes++
	if _, ok := f.agents[id]; !ok {
		return fmt.Errorf("%w: %s", verifier.ErrUnknownAgent, id)
	}
	delete(f.agents, id)
	return nil
}

func (f *fakeFleet) UpdatePolicy(id string, pol *policy.RuntimePolicy) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.failFor[id]; err != nil {
		return err
	}
	f.updates++
	a, ok := f.agents[id]
	if !ok {
		return fmt.Errorf("%w: %s", verifier.ErrUnknownAgent, id)
	}
	a.pol = pol
	f.agents[id] = a
	return nil
}

func (f *fakeFleet) fail(id string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		delete(f.failFor, id)
	} else {
		f.failFor[id] = err
	}
}

func (f *fakeFleet) has(id string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.agents[id]
	return ok
}

func (f *fakeFleet) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.agents)
}

func testController(t *testing.T, fleet Fleet, clk simclock.Clock, mutate ...func(*Config)) (*Controller, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { _ = st.Close() })
	cfg := Config{Fleet: fleet, Store: st, Clock: clk}
	for _, m := range mutate {
		m(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, st
}

func specOf(agents ...AgentSpec) *FleetSpec { return &FleetSpec{Agents: agents} }

func agent(id string) AgentSpec {
	return AgentSpec{ID: id, URL: "http://" + id + ":9002"}
}

func mustApply(t *testing.T, c *Controller, s *FleetSpec) uint64 {
	t.Helper()
	v, _, err := c.Apply(s)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return v
}

func mustTick(t *testing.T, c *Controller) {
	t.Helper()
	if err := c.Tick(); err != nil {
		t.Fatalf("Tick: %v", err)
	}
}

func TestApplyConverges(t *testing.T) {
	fleet := newFakeFleet()
	clk := simclock.NewSimulated(time.Unix(0, 0))
	c, _ := testController(t, fleet, clk)

	pol := policy.New()
	pol.Add("/usr/bin/a", policy.Digest{0xaa})
	polJSON, _ := json.Marshal(pol)
	spec := &FleetSpec{
		Tenants: []TenantSpec{{Name: "team-a"}},
		Agents: []AgentSpec{
			{ID: "a1", URL: "http://a1:9002", Tenant: "team-a", Policy: polJSON},
			{ID: "a2", URL: "http://a2:9002", Tenant: "team-a"},
			{ID: "b1", URL: "http://b1:9002", Tenant: "team-b"},
		},
	}
	if v := mustApply(t, c, spec); v != 1 {
		t.Fatalf("first apply version = %d, want 1", v)
	}
	mustTick(t, c)

	st := c.Status()
	if !st.Converged || st.ConvergedTicks != 1 {
		t.Fatalf("not converged after one tick: %+v", st)
	}
	if fleet.count() != 3 || !fleet.has("a1") || !fleet.has("a2") || !fleet.has("b1") {
		t.Fatalf("fleet = %v agents, want the 3 desired", fleet.count())
	}
	if st.Counters.Enrolls != 3 {
		t.Fatalf("enrolls = %d, want 3", st.Counters.Enrolls)
	}
	if got := st.Tenants["team-a"].Agents; got != 2 {
		t.Fatalf("team-a agents = %d, want 2", got)
	}
	// Policy content must reach the fleet.
	fleet.mu.Lock()
	gotPol := fleet.agents["a1"].pol
	fleet.mu.Unlock()
	if gotPol == nil || gotPol.Lines() != 1 {
		t.Fatalf("a1 policy not delivered: %v", gotPol)
	}

	types := map[string]int{}
	for _, ev := range c.Events() {
		types[ev.Type]++
	}
	if types[EventApplied] != 1 || types[EventEnroll] != 3 || types[EventConverged] != 1 {
		t.Fatalf("event mix = %v", types)
	}
}

func TestVersionsIncrementAndIgnoreSubmitted(t *testing.T) {
	fleet := newFakeFleet()
	c, _ := testController(t, fleet, simclock.NewSimulated(time.Unix(0, 0)))
	if v := mustApply(t, c, &FleetSpec{Version: 99, Agents: []AgentSpec{agent("a")}}); v != 1 {
		t.Fatalf("version = %d, want 1 (submitted version must be ignored)", v)
	}
	if v := mustApply(t, c, specOf(agent("a"))); v != 2 {
		t.Fatalf("second version = %d, want 2", v)
	}
}

func TestSpecValidation(t *testing.T) {
	fleet := newFakeFleet()
	c, _ := testController(t, fleet, simclock.NewSimulated(time.Unix(0, 0)), func(cfg *Config) {
		cfg.TenantQuota = 2
	})
	cases := []struct {
		name string
		spec *FleetSpec
		is   error
	}{
		{"empty id", specOf(AgentSpec{URL: "http://x"}), nil},
		{"empty url", specOf(AgentSpec{ID: "x"}), nil},
		{"dup id", specOf(agent("x"), agent("x")), nil},
		{"dup tenant", &FleetSpec{Tenants: []TenantSpec{{Name: "t"}, {Name: "t"}}}, nil},
		{"bad ak", specOf(AgentSpec{ID: "x", URL: "http://x", AKPub: "!!"}), nil},
		{"bad policy", specOf(AgentSpec{ID: "x", URL: "http://x", Policy: json.RawMessage(`{`)}), nil},
		{"over quota", specOf(agent("a"), agent("b"), agent("c")), ErrQuotaExceeded},
	}
	for _, tc := range cases {
		_, _, err := c.Apply(tc.spec)
		if err == nil {
			t.Errorf("%s: Apply accepted a bad spec", tc.name)
			continue
		}
		if tc.is != nil && !errors.Is(err, tc.is) {
			t.Errorf("%s: err = %v, want errors.Is %v", tc.name, err, tc.is)
		}
	}
	// A rejected spec must not disturb state: no version consumed.
	if v := mustApply(t, c, specOf(agent("ok"))); v != 1 {
		t.Fatalf("version after rejections = %d, want 1", v)
	}
	// Per-tenant override beats the default quota.
	big := &FleetSpec{
		Tenants: []TenantSpec{{Name: "wide", MaxAgents: 5}},
		Agents: []AgentSpec{
			{ID: "a", URL: "u", Tenant: "wide"}, {ID: "b", URL: "u", Tenant: "wide"},
			{ID: "c", URL: "u", Tenant: "wide"},
		},
	}
	if _, _, err := c.Apply(big); err != nil {
		t.Fatalf("per-tenant override rejected: %v", err)
	}
}

func TestWithdrawOnSpecShrink(t *testing.T) {
	fleet := newFakeFleet()
	c, st := testController(t, fleet, simclock.NewSimulated(time.Unix(0, 0)))
	mustApply(t, c, specOf(agent("a"), agent("b")))
	mustTick(t, c)
	mustApply(t, c, specOf(agent("a")))
	mustTick(t, c)
	if fleet.has("b") {
		t.Fatal("b still enrolled after being dropped from the spec")
	}
	// The withdrawal leaves a tombstone (resurrection guard), not a bare
	// deletion, and the tombstone does not count as managed.
	raw, ok := st.Get(managedPrefix + "b")
	if !ok {
		t.Fatal("withdrawal deleted b's row outright; want a tombstone")
	}
	var row managedRow
	if err := json.Unmarshal(raw, &row); err != nil || !row.Withdrawn {
		t.Fatalf("b's row after withdrawal = %s (err %v), want Withdrawn", raw, err)
	}
	if st2 := c.Status(); !st2.Converged || st2.Counters.Withdraws != 1 || st2.Managed != 1 {
		t.Fatalf("status after shrink: %+v", st2)
	}
	// Once b has stayed gone for the GC window, the tombstone is
	// collected.
	for i := 0; i < tombstoneGCTicks; i++ {
		mustTick(t, c)
	}
	if _, ok := st.Get(managedPrefix + "b"); ok {
		t.Fatal("tombstone for b not collected after the GC window")
	}
}

func TestResurrectedGhostIsWithdrawnAgain(t *testing.T) {
	fleet := newFakeFleet()
	c, _ := testController(t, fleet, simclock.NewSimulated(time.Unix(0, 0)))
	mustApply(t, c, specOf(agent("a"), agent("ghost")))
	mustTick(t, c)
	mustApply(t, c, specOf(agent("a")))
	mustTick(t, c)
	if fleet.has("ghost") {
		t.Fatal("ghost not withdrawn")
	}
	// An at-least-once restore (failover replaying a replica that lagged
	// the removal) resurrects the agent. The tombstone proves prior
	// ownership, so it is withdrawn again instead of leaking as
	// unmanaged.
	_ = fleet.AddAgent("ghost", "http://ghost:9002", policy.New())
	mustTick(t, c)
	if fleet.has("ghost") {
		t.Fatal("resurrected ghost leaked: tombstone did not trigger re-withdrawal")
	}
	if st := c.Status(); st.Counters.Withdraws != 2 {
		t.Fatalf("withdraws = %d, want 2 (original + ghost)", st.Counters.Withdraws)
	}
	// A tombstoned agent the operator declares again is a fresh
	// enrollment.
	mustApply(t, c, specOf(agent("a"), agent("ghost")))
	mustTick(t, c)
	if !fleet.has("ghost") || !c.Status().Converged {
		t.Fatal("re-declared tombstoned agent not re-enrolled")
	}
}

func TestUnmanagedAgentsAreNeverWithdrawn(t *testing.T) {
	fleet := newFakeFleet()
	_ = fleet.AddAgent("imperative", "http://x:9002", policy.New())
	fleet.adds = 0
	c, _ := testController(t, fleet, simclock.NewSimulated(time.Unix(0, 0)))
	mustApply(t, c, specOf(agent("a")))
	mustTick(t, c)
	if !fleet.has("imperative") {
		t.Fatal("reconciler withdrew an agent it never enrolled")
	}
	if !c.Status().Converged {
		t.Fatal("unmanaged extra agent blocked convergence")
	}
}

func TestAdoptDeclaredExistingAgent(t *testing.T) {
	fleet := newFakeFleet()
	_ = fleet.AddAgent("x", "http://x:9002", policy.New())
	c, st := testController(t, fleet, simclock.NewSimulated(time.Unix(0, 0)))
	mustApply(t, c, specOf(agent("x")))
	mustTick(t, c)
	status := c.Status()
	if status.Counters.Adopts != 1 || status.Counters.Enrolls != 0 {
		t.Fatalf("adopt path not taken: %+v", status.Counters)
	}
	if _, ok := st.Get(managedPrefix + "x"); !ok {
		t.Fatal("adopted agent has no managed row")
	}
	// Once adopted, dropping it from the spec withdraws it.
	mustApply(t, c, specOf())
	mustTick(t, c)
	if fleet.has("x") {
		t.Fatal("adopted agent not withdrawn after spec removal")
	}
}

func TestPolicyDriftTriggersUpdateOnlyOnRealChange(t *testing.T) {
	fleet := newFakeFleet()
	c, _ := testController(t, fleet, simclock.NewSimulated(time.Unix(0, 0)))
	hashA := "aa" + strings.Repeat("00", 31)
	hashB := "bb" + strings.Repeat("00", 31)
	a := agent("a")
	a.Policy = json.RawMessage(`{"digests":{"/bin/sh":["` + hashA + `"]}}`)
	mustApply(t, c, specOf(a))
	mustTick(t, c)
	updates0 := fleet.updates

	// Same policy, different JSON formatting: canonical hash equal, no op.
	a.Policy = json.RawMessage(`{ "digests" : { "/bin/sh" : [ "` + hashA + `" ] } }`)
	mustApply(t, c, specOf(a))
	mustTick(t, c)
	if fleet.updates != updates0 {
		t.Fatal("reformatted-but-identical policy triggered an update")
	}

	a.Policy = json.RawMessage(`{"digests":{"/bin/sh":["` + hashB + `"]}}`)
	mustApply(t, c, specOf(a))
	mustTick(t, c)
	if fleet.updates != updates0+1 {
		t.Fatalf("changed policy: updates = %d, want %d", fleet.updates, updates0+1)
	}
}

func TestURLChangeReEnrolls(t *testing.T) {
	fleet := newFakeFleet()
	c, _ := testController(t, fleet, simclock.NewSimulated(time.Unix(0, 0)))
	mustApply(t, c, specOf(agent("a")))
	mustTick(t, c)
	moved := agent("a")
	moved.URL = "http://elsewhere:9002"
	mustApply(t, c, specOf(moved))
	mustTick(t, c)
	fleet.mu.Lock()
	url := fleet.agents["a"].url
	fleet.mu.Unlock()
	if url != "http://elsewhere:9002" {
		t.Fatalf("agent url = %q after URL change", url)
	}
	if !c.Status().Converged {
		t.Fatal("not converged after re-enroll")
	}
}

func TestBackoffDegradedIsolationAndRecovery(t *testing.T) {
	fleet := newFakeFleet()
	clk := simclock.NewSimulated(time.Unix(0, 0))
	c, _ := testController(t, fleet, clk, func(cfg *Config) {
		cfg.MaxRetries = 3
		cfg.BaseBackoff = time.Second
		cfg.MaxBackoff = 4 * time.Second
		cfg.DegradedRetry = time.Minute
	})
	fleet.fail("bad", errors.New("registrar down"))
	mustApply(t, c, specOf(agent("bad"), agent("good")))

	mustTick(t, c) // attempt 1 for bad; good enrolls
	if !fleet.has("good") {
		t.Fatal("healthy agent blocked by failing one")
	}
	st := c.Status()
	if st.Converged {
		t.Fatal("converged while a retryable item is pending")
	}
	if st.Counters.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Counters.Retries)
	}

	// Backoff gates the item: an immediate tick must not re-attempt.
	mustTick(t, c)
	if got := c.Status().Counters.Retries; got != 1 {
		t.Fatalf("retried during backoff window: retries = %d", got)
	}

	// Drive through the remaining attempts to Degraded.
	for i := 0; i < 2; i++ {
		clk.Advance(10 * time.Second)
		mustTick(t, c)
	}
	st = c.Status()
	if len(st.Degraded) != 1 || st.Degraded[0] != "bad" {
		t.Fatalf("degraded = %v, want [bad]", st.Degraded)
	}
	if !st.Converged {
		t.Fatal("a degraded item must not hold convergence hostage")
	}

	// Reprobe after the fault clears: the item recovers.
	fleet.fail("bad", nil)
	clk.Advance(2 * time.Minute)
	mustTick(t, c)
	if !fleet.has("bad") {
		t.Fatal("degraded agent not enrolled after recovery reprobe")
	}
	st = c.Status()
	if len(st.Degraded) != 0 {
		t.Fatalf("still degraded after recovery: %v", st.Degraded)
	}
	var recovered bool
	for _, ev := range c.Events() {
		if ev.Type == EventRecovered && ev.AgentID == "bad" {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("no recovered event")
	}
}

func TestTenantRateLimit(t *testing.T) {
	fleet := newFakeFleet()
	clk := simclock.NewSimulated(time.Unix(0, 0))
	c, _ := testController(t, fleet, clk, func(cfg *Config) {
		cfg.TenantRate = 1
		cfg.TenantBurst = 2
	})
	mustApply(t, c, specOf(agent("a"), agent("b"), agent("c"), agent("d")))
	mustTick(t, c)
	if got := fleet.count(); got != 2 {
		t.Fatalf("burst-limited tick enrolled %d, want 2", got)
	}
	if c.Status().Counters.RateDeferred == 0 {
		t.Fatal("no rate-deferred events recorded")
	}
	clk.Advance(time.Second)
	mustTick(t, c)
	if got := fleet.count(); got != 3 {
		t.Fatalf("after 1s refill fleet = %d, want 3", got)
	}
	clk.Advance(10 * time.Second)
	mustTick(t, c)
	if got := fleet.count(); got != 4 || !c.Status().Converged {
		t.Fatalf("fleet = %d converged=%v, want full convergence", got, c.Status().Converged)
	}
}

func TestTenantRateIsolation(t *testing.T) {
	fleet := newFakeFleet()
	clk := simclock.NewSimulated(time.Unix(0, 0))
	c, _ := testController(t, fleet, clk)
	slow := TenantSpec{Name: "slow", Rate: 0.001, Burst: 1}
	spec := &FleetSpec{
		Tenants: []TenantSpec{slow},
		Agents: []AgentSpec{
			{ID: "s1", URL: "u", Tenant: "slow"}, {ID: "s2", URL: "u", Tenant: "slow"},
			{ID: "f1", URL: "u", Tenant: "fast"}, {ID: "f2", URL: "u", Tenant: "fast"},
		},
	}
	if _, _, err := c.Apply(spec); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	mustTick(t, c)
	if !fleet.has("f1") || !fleet.has("f2") {
		t.Fatal("unlimited tenant throttled by the slow tenant's bucket")
	}
	if fleet.has("s1") && fleet.has("s2") {
		t.Fatal("slow tenant burst=1 enrolled both agents in one tick")
	}
}

func TestMaxPendingCapsOpsPerTick(t *testing.T) {
	fleet := newFakeFleet()
	c, _ := testController(t, fleet, simclock.NewSimulated(time.Unix(0, 0)), func(cfg *Config) {
		cfg.MaxPending = 2
	})
	mustApply(t, c, specOf(agent("a"), agent("b"), agent("c"), agent("d"), agent("e")))
	mustTick(t, c)
	if got := fleet.count(); got != 2 {
		t.Fatalf("MaxPending=2 tick enrolled %d", got)
	}
	if c.Status().Counters.QuotaDeferred == 0 {
		t.Fatal("no quota-deferred event")
	}
	mustTick(t, c)
	mustTick(t, c)
	if got := fleet.count(); got != 5 || !c.Status().Converged {
		t.Fatalf("fleet = %d converged=%v after 3 ticks", got, c.Status().Converged)
	}
}

func TestConcurrentEnrollDuplicateIsConverged(t *testing.T) {
	fleet := newFakeFleet()
	c, _ := testController(t, fleet, simclock.NewSimulated(time.Unix(0, 0)))
	// The fleet already holds the agent but hides it from AgentIDs — the
	// stale-view race where someone else enrolled between diff and
	// execute. AddAgent returns ErrDuplicate; the reconciler must fall
	// through to UpdatePolicy and count the item applied.
	_ = fleet.AddAgent("x", "http://x:9002", policy.New())
	fleet.mu.Lock()
	fleet.hidden["x"] = true
	fleet.mu.Unlock()
	mustApply(t, c, specOf(agent("x")))
	mustTick(t, c)
	st := c.Status()
	if st.Counters.Enrolls != 1 {
		t.Fatalf("duplicate-enroll not settled: %+v", st.Counters)
	}
	if fleet.updates == 0 {
		t.Fatal("policy not converged through the duplicate fallback")
	}
}

func TestRestartRecoversSpecAndManaged(t *testing.T) {
	fleet := newFakeFleet()
	clk := simclock.NewSimulated(time.Unix(0, 0))
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	c, err := New(Config{Fleet: fleet, Store: st, Clock: clk})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fleet.fail("late", errors.New("unreachable"))
	mustApply(t, c, specOf(agent("a"), agent("b"), agent("late")))
	mustTick(t, c)
	adds0 := fleet.adds
	_ = st.Close()

	// "Restart": fresh store handle + controller over the same journal.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer func() { _ = st2.Close() }()
	c2, err := New(Config{Fleet: fleet, Store: st2, Clock: clk})
	if err != nil {
		t.Fatalf("New after restart: %v", err)
	}
	if got := c2.Status().SpecVersion; got != 1 {
		t.Fatalf("recovered spec version = %d, want 1", got)
	}
	// All three are managed: a and b completed, and "late" has a
	// write-ahead intent row — ownership is claimed before the enroll
	// side effect so a crash can never orphan an enrolled agent.
	if got := c2.Status().Managed; got != 3 {
		t.Fatalf("recovered managed = %d, want 3", got)
	}
	fleet.fail("late", nil)
	clk.Advance(time.Hour)
	mustTick(t, c2)
	if !fleet.has("late") || !c2.Status().Converged {
		t.Fatal("restarted controller did not finish convergence")
	}
	// a and b were already enrolled + journaled: the restart must not
	// have re-added them.
	if fleet.adds != adds0+1 {
		t.Fatalf("adds after restart = %d, want %d (exactly one for 'late')", fleet.adds, adds0+1)
	}
}

func TestEventLogIsBounded(t *testing.T) {
	fleet := newFakeFleet()
	c, _ := testController(t, fleet, simclock.NewSimulated(time.Unix(0, 0)), func(cfg *Config) {
		cfg.EventCap = 8
	})
	for i := 0; i < 10; i++ {
		mustApply(t, c, specOf(agent(fmt.Sprintf("a%02d", i))))
		mustTick(t, c)
	}
	evs := c.Events()
	if len(evs) != 8 {
		t.Fatalf("event log length = %d, want cap 8", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time.Before(evs[i-1].Time) {
			t.Fatal("event ring not returned oldest-first")
		}
	}
}

func TestDiffReportsWithoutExecuting(t *testing.T) {
	fleet := newFakeFleet()
	c, _ := testController(t, fleet, simclock.NewSimulated(time.Unix(0, 0)))
	if _, err := c.Diff(); !errors.Is(err, ErrNoSpec) {
		t.Fatalf("Diff before apply: %v, want ErrNoSpec", err)
	}
	_, diff, err := c.Apply(specOf(agent("a"), agent("b")))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(diff.Enrolls) != 2 || diff.Converged {
		t.Fatalf("apply diff = %+v", diff)
	}
	if fleet.count() != 0 {
		t.Fatal("Apply executed side effects; only Tick may")
	}
	mustTick(t, c)
	diff, err = c.Diff()
	if err != nil || !diff.Converged {
		t.Fatalf("post-tick diff = %+v, err %v", diff, err)
	}
}
