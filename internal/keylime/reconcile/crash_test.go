package reconcile

// Crash sweep over the reconciler's step boundaries: discover a
// fault-free run's checkpoint sequence, then re-run the scenario once
// per checkpoint with a crash armed there, restart a controller over
// the SAME journal, re-submit the operator's final intent, and assert
// the fleet converges to exactly the desired set — no duplicate
// enrollments, no lost withdrawals — no matter where the process died.

import (
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/keylime/faultinject"
	"repro/internal/keylime/store"
	"repro/internal/simclock"
)

// crashScenario drives a controller through a churn sequence: enroll
// {a,b,c}, converge, then shift to {b,c,d} (withdraw a, enroll d) with a
// policy change on b. Any error (the injected crash) aborts mid-flight.
func crashScenario(c *Controller, clk *simclock.Simulated) error {
	specA := specOf(agent("a"), agent("b"), agent("c"))
	if _, _, err := c.Apply(specA); err != nil {
		return err
	}
	if err := c.Tick(); err != nil {
		return err
	}
	if _, _, err := c.Apply(crashFinalSpec()); err != nil {
		return err
	}
	clk.Advance(time.Second)
	return c.Tick()
}

func crashFinalSpec() *FleetSpec {
	b := agent("b")
	b.Policy = []byte(`{"excludes":["/tmp/.*"]}`)
	return specOf(b, agent("c"), agent("d"))
}

func TestCrashSweepEveryStepBoundary(t *testing.T) {
	// Discovery: record the fault-free step sequence.
	discoverFleet := newFakeFleet()
	clk := simclock.NewSimulated(time.Unix(0, 0))
	hook := faultinject.NewStepHook()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	c, err := New(Config{Fleet: discoverFleet, Store: st, Clock: clk, Step: hook.Step})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := crashScenario(c, clk); err != nil {
		t.Fatalf("discovery run failed: %v", err)
	}
	_ = st.Close()
	steps := hook.Steps()
	if len(steps) < 8 {
		t.Fatalf("suspiciously few step checkpoints recorded: %v", steps)
	}
	seen := map[string]bool{}
	for _, s := range steps {
		seen[s] = true
	}
	for _, want := range []string{StepSpecCommit, StepOpEnroll, StepOpWithdraw, StepOpUpdate, StepStatusRecord} {
		if !seen[want] {
			t.Fatalf("step %q never hit in the fault-free run (recorded %v)", want, steps)
		}
	}

	// Sweep: crash at every boundary, restart, converge, audit.
	for i := 1; i <= len(steps); i++ {
		i := i
		t.Run(steps[i-1], func(t *testing.T) {
			fleet := newFakeFleet()
			clk := simclock.NewSimulated(time.Unix(0, 0))
			hook := faultinject.NewStepHook()
			hook.ArmCrash(i)
			dir := t.TempDir()
			st, err := store.Open(dir)
			if err != nil {
				t.Fatalf("open store: %v", err)
			}
			c, err := New(Config{Fleet: fleet, Store: st, Clock: clk, Step: hook.Step})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if err := crashScenario(c, clk); !errors.Is(err, faultinject.ErrStepCrash) {
				t.Fatalf("armed crash at step %d did not fire: %v", i, err)
			}
			// "Crash": drop the controller, reopen the journal cold.
			_ = st.Close()
			st2, err := store.Open(dir)
			if err != nil {
				t.Fatalf("reopen store: %v", err)
			}
			defer func() { _ = st2.Close() }()
			c2, err := New(Config{Fleet: fleet, Store: st2, Clock: clk})
			if err != nil {
				t.Fatalf("restart recovery: %v", err)
			}
			// The operator re-submits the final intent (idempotent) and the
			// loop reconverges.
			if _, _, err := c2.Apply(crashFinalSpec()); err != nil {
				t.Fatalf("re-apply after crash: %v", err)
			}
			for tick := 0; tick < 5 && !c2.Status().Converged; tick++ {
				clk.Advance(time.Minute)
				if err := c2.Tick(); err != nil {
					t.Fatalf("post-crash tick: %v", err)
				}
			}
			if !c2.Status().Converged {
				t.Fatalf("no convergence within bounded ticks after crash at step %d (%s)", i, steps[i-1])
			}
			// Exactly the desired set: a withdrawn ("a" gone — withdrawal
			// not lost), d present (enrollment not lost), nothing extra
			// (no duplicates/leaks).
			got := fleet.AgentIDs()
			sort.Strings(got)
			want := []string{"b", "c", "d"}
			if len(got) != len(want) {
				t.Fatalf("crash at %s: fleet = %v, want %v", steps[i-1], got, want)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("crash at %s: fleet = %v, want %v", steps[i-1], got, want)
				}
			}
			// The managed journal must agree with the fleet.
			status := c2.Status()
			if status.Managed != 3 {
				t.Fatalf("crash at %s: managed = %d, want 3", steps[i-1], status.Managed)
			}
			// b's policy change must have landed (an update executed before
			// the crash may replay — updates are idempotent — but must
			// never be lost).
			fleet.mu.Lock()
			bPol := fleet.agents["b"].pol
			fleet.mu.Unlock()
			if bPol == nil || len(bPol.Excludes()) != 1 {
				t.Fatalf("crash at %s: b's policy update lost: %v", steps[i-1], bPol)
			}
		})
	}
}
