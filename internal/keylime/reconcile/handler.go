package reconcile

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"repro/internal/keylime/api"
)

// applyResponse is the JSON reply to POST /v2/reconcile/apply.
type applyResponse struct {
	Version uint64 `json:"version"`
	Diff    Diff   `json:"diff"`
}

// Handler returns the reconciler's management HTTP API, mounted
// alongside the verifier's (the cmd serves both from one mux):
//
//	POST /v2/reconcile/apply   spec JSON -> journal new desired state
//	GET  /v2/reconcile/status             -> Status
//	GET  /v2/reconcile/diff               -> outstanding desired-vs-actual delta
//	GET  /v2/reconcile/events             -> bounded event log, oldest first
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/reconcile/apply", func(w http.ResponseWriter, req *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 64<<20))
		if err != nil {
			writeReconcileErr(w, http.StatusBadRequest, err)
			return
		}
		spec, err := ParseSpec(body)
		if err != nil {
			writeReconcileErr(w, http.StatusBadRequest, err)
			return
		}
		version, diff, err := c.Apply(spec)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrQuotaExceeded) {
				// 422: the spec is well-formed but violates tenant limits.
				status = http.StatusUnprocessableEntity
			}
			writeReconcileErr(w, status, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(applyResponse{Version: version, Diff: diff})
	})
	mux.HandleFunc("GET /v2/reconcile/status", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(c.Status())
	})
	mux.HandleFunc("GET /v2/reconcile/diff", func(w http.ResponseWriter, req *http.Request) {
		diff, err := c.Diff()
		if err != nil {
			writeReconcileErr(w, http.StatusConflict, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(diff)
	})
	mux.HandleFunc("GET /v2/reconcile/events", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(c.Events())
	})
	return mux
}

func writeReconcileErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: err.Error()})
}
