// Package reconcile implements a declarative fleet reconciler: operators
// submit a versioned desired-state spec (agents, tenants, policies), the
// controller journals it durably BEFORE any side effect, and a reconcile
// loop diffs desired vs. actual verifier state each tick, executing
// enroll/update/withdraw operations idempotently until the fleet
// converges. Failed operations retry with per-item exponential backoff
// and jitter, escalating to a parked Degraded state that never blocks
// the rest of the queue; per-tenant token buckets and quotas keep one
// tenant's churn from starving another. The design follows the paper's
// operational finding that imperative one-shot enrollment leaves silent
// divergence windows: here intent is recorded first, and actual state is
// continuously driven toward it.
package reconcile

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/keylime/store"
	"repro/internal/keylime/verifier"
	"repro/internal/policy"
	"repro/internal/simclock"
)

// Sentinel errors.
var (
	// ErrQuotaExceeded rejects a spec that asks for more agents than a
	// tenant's quota allows.
	ErrQuotaExceeded = errors.New("reconcile: tenant quota exceeded")
	// ErrNoSpec is returned by Diff when no spec has ever been applied.
	ErrNoSpec = errors.New("reconcile: no spec applied")
)

// Journal keys. The spec lives whole under one key; each applied
// enrollment has its own managed row so per-tick status commits batch
// only what changed.
const (
	specKey       = "spec"
	managedPrefix = "m/"
)

// Step names threaded through faultinject.StepHook. Crash sweeps kill
// the reconciler at every one of these boundaries and assert that a
// restarted controller converges without duplicate enrollments or lost
// withdrawals.
const (
	StepSpecCommit   = "spec-commit"
	StepIntentRecord = "intent-record"
	StepOpEnroll     = "op-enroll"
	StepOpWithdraw   = "op-withdraw"
	StepOpUpdate     = "op-update"
	StepStatusRecord = "status-record"
)

// Fleet is the slice of the verifier's management surface the reconciler
// drives. *verifier.Verifier implements it directly; cluster.FleetProxy
// implements it by routing each call to the ring owner.
type Fleet interface {
	AgentIDs() []string
	AddAgent(agentID, agentURL string, pol *policy.RuntimePolicy) error
	AddAgentWithAK(agentID, agentURL string, akPub []byte, pol *policy.RuntimePolicy) error
	RemoveAgent(agentID string) error
	UpdatePolicy(agentID string, pol *policy.RuntimePolicy) error
}

// Event is one entry in the bounded reconcile event log.
type Event struct {
	Time    time.Time `json:"time"`
	Type    string    `json:"type"`
	Tenant  string    `json:"tenant,omitempty"`
	AgentID string    `json:"agent_id,omitempty"`
	Version uint64    `json:"version"`
	Detail  string    `json:"detail,omitempty"`
}

// Event types.
const (
	EventApplied       = "applied"
	EventEnroll        = "enroll"
	EventWithdraw      = "withdraw"
	EventUpdate        = "update"
	EventAdopt         = "adopt"
	EventRetry         = "retry"
	EventDegraded      = "degraded"
	EventRecovered     = "recovered"
	EventConverged     = "converged"
	EventRateDeferred  = "rate-deferred"
	EventQuotaDeferred = "quota-deferred"
)

// Counters accumulate over the controller's lifetime.
type Counters struct {
	Enrolls       uint64 `json:"enrolls"`
	Withdraws     uint64 `json:"withdraws"`
	Updates       uint64 `json:"updates"`
	Adopts        uint64 `json:"adopts"`
	Retries       uint64 `json:"retries"`
	Degraded      uint64 `json:"degraded"`
	RateDeferred  uint64 `json:"rate_deferred"`
	QuotaDeferred uint64 `json:"quota_deferred"`
}

// PendingOps counts the operations the last computed diff still owes.
type PendingOps struct {
	Enrolls   int `json:"enrolls"`
	Updates   int `json:"updates"`
	Withdraws int `json:"withdraws"`
}

// TenantStatus is one tenant's view in Status.
type TenantStatus struct {
	Agents    int     `json:"agents"`
	MaxAgents int     `json:"max_agents"` // <= 0 unlimited
	Rate      float64 `json:"rate"`       // <= 0 unlimited
	Degraded  int     `json:"degraded"`
}

// Status is the reconciler's observable state, served at
// GET /v2/reconcile/status and via the "reconcile" stats provider.
type Status struct {
	SpecVersion      uint64                  `json:"spec_version"`
	Applies          uint64                  `json:"applies"`
	Ticks            uint64                  `json:"ticks"`
	Managed          int                     `json:"managed"`
	Converged        bool                    `json:"converged"`
	ConvergedVersion uint64                  `json:"converged_version,omitempty"`
	ConvergedTicks   uint64                  `json:"converged_ticks,omitempty"`
	Pending          PendingOps              `json:"pending"`
	Degraded         []string                `json:"degraded,omitempty"`
	Tenants          map[string]TenantStatus `json:"tenants,omitempty"`
	Counters         Counters                `json:"counters"`
}

// Diff is the outstanding work between desired and actual state.
type Diff struct {
	Version   uint64   `json:"version"`
	Enrolls   []string `json:"enrolls,omitempty"`
	Updates   []string `json:"updates,omitempty"`
	Withdraws []string `json:"withdraws,omitempty"`
	Converged bool     `json:"converged"`
}

// Config configures a Controller.
type Config struct {
	// Fleet is the management surface to drive (required).
	Fleet Fleet
	// Store journals the spec and the managed set (required).
	Store *store.Store
	// Clock abstracts time (default real).
	Clock simclock.Clock
	// Step is the fault-injection checkpoint; a non-nil error aborts
	// the operation mid-step, exactly like a crash.
	Step func(name string) error
	// Notify receives lifecycle events (nil discards).
	Notify func(Event)
	// Logf receives progress lines (nil discards).
	Logf func(format string, args ...any)

	// TenantQuota is the default max enrolled agents per tenant
	// (0 = unlimited; per-tenant spec overrides win).
	TenantQuota int
	// TenantRate is the default reconcile-op rate per tenant in ops/sec
	// (0 = unlimited).
	TenantRate float64
	// TenantBurst is the default token-bucket capacity (0 derives from
	// rate).
	TenantBurst int
	// MaxPending caps operations started per tenant per tick (default
	// 256; negative = unlimited).
	MaxPending int
	// MaxRetries bounds attempts before an item is parked Degraded
	// (default 5).
	MaxRetries int
	// BaseBackoff is the first retry delay (default 1s), doubling per
	// attempt up to MaxBackoff (default 1m), jittered ±25%.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// DegradedRetry is the slow reprobe interval for parked items
	// (default 5m).
	DegradedRetry time.Duration
	// EventCap bounds the in-memory event log (default 1024).
	EventCap int
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = simclock.Real{}
	}
	if c.MaxPending == 0 {
		c.MaxPending = 256
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Minute
	}
	if c.DegradedRetry <= 0 {
		c.DegradedRetry = 5 * time.Minute
	}
	if c.EventCap <= 0 {
		c.EventCap = 1024
	}
	return c
}

// itemState tracks one agent's retry budget. Items are independent: a
// degraded item is parked on a slow reprobe cadence and never blocks
// the rest of the queue.
type itemState struct {
	attempts    int
	nextAttempt time.Time
	degraded    bool
	lastErr     string
}

// bucket is a per-tenant token bucket over the controller clock.
type bucket struct {
	tokens float64
	last   time.Time
}

// Controller drives actual fleet state toward the journaled spec.
type Controller struct {
	cfg Config

	mu        sync.Mutex
	spec      *FleetSpec
	desired   map[string]*desiredAgent
	limits    map[string]tenantLimits
	managed   map[string]managedRow
	tomb      map[string]int // ticks a tombstone's agent has stayed gone
	items     map[string]*itemState
	buckets   map[string]*bucket
	events    []Event
	eventsPos int
	counters  Counters

	applies       uint64
	ticks         uint64
	appliedAtTick uint64
	converged     bool
	convergedAt   uint64 // ticks from apply to convergence

	rng jitterRand
}

// New builds a Controller and recovers any journaled spec + managed set,
// so a restarted reconciler resumes exactly where the killed one left
// off.
func New(cfg Config) (*Controller, error) {
	if cfg.Fleet == nil || cfg.Store == nil {
		return nil, errors.New("reconcile: Fleet and Store are required")
	}
	c := &Controller{
		cfg:     cfg.withDefaults(),
		desired: make(map[string]*desiredAgent),
		limits:  make(map[string]tenantLimits),
		managed: make(map[string]managedRow),
		tomb:    make(map[string]int),
		items:   make(map[string]*itemState),
		buckets: make(map[string]*bucket),
		rng:     jitterRand{state: 0x9e3779b97f4a7c15},
	}
	if err := c.recover(); err != nil {
		return nil, err
	}
	return c, nil
}

// recover reloads the journaled spec and managed rows. The store's
// journal is prefix-durable, so whatever is present was acknowledged;
// strict decoding is correct here — a corrupt row means the journal
// itself is damaged, not that a crash interleaved badly.
func (c *Controller) recover() error {
	if raw, ok := c.cfg.Store.Get(specKey); ok {
		var s FleetSpec
		if err := json.Unmarshal(raw, &s); err != nil {
			return fmt.Errorf("reconcile: recovering spec: %w", err)
		}
		desired, limits, err := resolveSpec(&s, c.cfg.TenantQuota, c.cfg.TenantRate, c.cfg.TenantBurst)
		if err != nil {
			return fmt.Errorf("reconcile: recovering spec: %w", err)
		}
		c.spec, c.desired, c.limits = &s, desired, limits
		c.applies = 1 // at least one apply happened before the crash
	}
	for key, raw := range c.cfg.Store.All() {
		if len(key) <= len(managedPrefix) || key[:len(managedPrefix)] != managedPrefix {
			continue
		}
		var row managedRow
		if err := json.Unmarshal(raw, &row); err != nil {
			return fmt.Errorf("reconcile: recovering managed row %s: %w", key, err)
		}
		c.managed[key[len(managedPrefix):]] = row
	}
	if c.spec != nil {
		c.logf("reconcile: recovered spec v%d, %d managed agents", c.spec.Version, len(c.managed))
	}
	return nil
}

// Apply validates and journals a new desired spec, assigning the next
// version. The spec is durable before Apply returns — and before any
// side effect happens — so a crash immediately after never loses intent.
// Retry budgets reset on apply: new intent gets a fresh chance.
func (c *Controller) Apply(s *FleetSpec) (uint64, Diff, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	desired, limits, err := resolveSpec(s, c.cfg.TenantQuota, c.cfg.TenantRate, c.cfg.TenantBurst)
	if err != nil {
		return 0, Diff{}, err
	}
	next := uint64(1)
	if c.spec != nil {
		next = c.spec.Version + 1
	}
	spec := *s
	spec.Version = next
	raw, err := json.Marshal(&spec)
	if err != nil {
		return 0, Diff{}, fmt.Errorf("reconcile: marshaling spec: %w", err)
	}
	if err := c.step(StepSpecCommit); err != nil {
		return 0, Diff{}, err
	}
	if err := c.cfg.Store.Put(specKey, raw); err != nil {
		return 0, Diff{}, fmt.Errorf("reconcile: journaling spec: %w", err)
	}
	c.spec, c.desired, c.limits = &spec, desired, limits
	c.items = make(map[string]*itemState)
	c.applies++
	c.appliedAtTick = c.ticks
	c.converged = false
	c.event(Event{Type: EventApplied, Version: next,
		Detail: fmt.Sprintf("%d agents, %d tenants", len(desired), len(limits))})
	c.logf("reconcile: applied spec v%d (%d agents)", next, len(desired))
	return next, c.diffLocked(), nil
}

// op is one unit of reconcile work for a tick.
type op struct {
	kind    string // EventEnroll | EventWithdraw | EventUpdate | EventAdopt
	id      string
	tenant  string
	d       *desiredAgent // nil for withdraws
	row     managedRow    // prior row (withdraw / re-enroll)
	reURL   bool          // URL changed: remove then re-add
	stepTag string
}

// actualLocked snapshots the fleet's enrolled IDs.
func (c *Controller) actualLocked() map[string]bool {
	actual := make(map[string]bool)
	for _, id := range c.cfg.Fleet.AgentIDs() {
		actual[id] = true
	}
	return actual
}

// diffOpsLocked computes the tick's work list: withdraws first (free
// capacity before adding), then enrolls/updates in sorted ID order so
// execution is deterministic.
func (c *Controller) diffOpsLocked(actual map[string]bool) []op {
	if c.spec == nil {
		return nil
	}
	var withdraws, rest []op
	for id, row := range c.managed {
		if _, want := c.desired[id]; want {
			continue
		}
		// Live row: withdraw. Tombstone whose agent is back in the fleet
		// (resurrected by an at-least-once restore): withdraw again.
		if !row.Withdrawn || actual[id] {
			withdraws = append(withdraws, op{kind: EventWithdraw, id: id,
				tenant: row.Tenant, row: row, stepTag: StepOpWithdraw})
		}
	}
	for id, d := range c.desired {
		row, isManaged := c.managed[id]
		if isManaged && row.Withdrawn {
			// A tombstoned agent wanted again is a fresh enrollment, not
			// a URL/policy reconciliation against the stale row.
			row, isManaged = managedRow{}, false
		}
		switch {
		case !actual[id]:
			rest = append(rest, op{kind: EventEnroll, id: id, tenant: d.tenant,
				d: d, row: row, stepTag: StepOpEnroll})
		case isManaged && row.URL != d.spec.URL:
			// Contact URL changed: withdraw the stale enrollment and
			// re-enroll at the new address.
			rest = append(rest, op{kind: EventEnroll, id: id, tenant: d.tenant,
				d: d, row: row, reURL: true, stepTag: StepOpEnroll})
		case isManaged && row.Hash != d.hash:
			rest = append(rest, op{kind: EventUpdate, id: id, tenant: d.tenant,
				d: d, row: row, stepTag: StepOpUpdate})
		case !isManaged:
			// Enrolled outside any spec (imperative CLI) but now declared:
			// adopt it — converge its policy and start tracking it.
			rest = append(rest, op{kind: EventAdopt, id: id, tenant: d.tenant,
				d: d, stepTag: StepOpUpdate})
		}
	}
	sort.Slice(withdraws, func(i, j int) bool { return withdraws[i].id < withdraws[j].id })
	sort.Slice(rest, func(i, j int) bool { return rest[i].id < rest[j].id })
	return append(withdraws, rest...)
}

// Tick runs one reconcile pass in three journaled phases. First, ops
// that would create ownership of a not-yet-managed agent (fresh enroll,
// adopt) write-ahead an intent row — a managed row with an empty policy
// hash — in one batched commit BEFORE any side effect, so a crash right
// after the fleet call still leaves the reconciler knowing it owns the
// agent (and able to withdraw it under a later spec). Then each side
// effect runs behind its own Step checkpoint. Finally one batched commit
// records completed rows; a crash anywhere in between re-executes ops
// next tick, where ErrDuplicate / ErrUnknownAgent are treated as
// already-applied — so enrollments never duplicate, withdrawals are
// never lost, and no enrolled agent is ever orphaned as unmanaged.
func (c *Controller) Tick() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticks++
	actual := c.actualLocked()
	ops := c.diffOpsLocked(actual)
	now := c.cfg.Clock.Now()
	var attempt []op
	started := make(map[string]int)   // per-tenant ops started this tick
	deferred := make(map[string]bool) // quota-deferred event emitted this tick
	for _, o := range ops {
		it := c.items[o.id]
		if it != nil && now.Before(it.nextAttempt) {
			continue
		}
		if c.cfg.MaxPending > 0 && started[o.tenant] >= c.cfg.MaxPending {
			if !deferred[o.tenant] {
				deferred[o.tenant] = true
				c.counters.QuotaDeferred++
				c.event(Event{Type: EventQuotaDeferred, Tenant: o.tenant,
					Version: c.spec.Version,
					Detail:  fmt.Sprintf("pending-op cap %d reached", c.cfg.MaxPending)})
			}
			continue
		}
		if !c.takeTokenLocked(o.tenant, now) {
			c.counters.RateDeferred++
			c.event(Event{Type: EventRateDeferred, Tenant: o.tenant,
				AgentID: o.id, Version: c.spec.Version})
			continue
		}
		started[o.tenant]++
		attempt = append(attempt, o)
	}
	// Write-ahead ownership intent. URL-change re-enrolls keep their old
	// row (ownership is already held; the row flips to the new URL only
	// after remove+add both complete, so a crash mid-way re-runs the
	// re-enroll instead of losing the URL change).
	var intent []store.KV
	for _, o := range attempt {
		if row, owned := c.managed[o.id]; owned && !row.Withdrawn {
			continue
		}
		if (o.kind == EventEnroll && !o.reURL) || o.kind == EventAdopt {
			row := managedRow{URL: o.d.spec.URL, Tenant: o.d.tenant, Cohort: o.d.spec.Cohort}
			raw, _ := json.Marshal(row)
			intent = append(intent, store.KV{Key: managedPrefix + o.id, Value: raw})
		}
	}
	if len(intent) > 0 {
		if err := c.step(StepIntentRecord); err != nil {
			return err
		}
		if err := c.cfg.Store.PutBatch(intent); err != nil {
			return fmt.Errorf("reconcile: journaling intent rows: %w", err)
		}
		for _, kv := range intent {
			var row managedRow
			_ = json.Unmarshal(kv.Value, &row)
			c.managed[kv.Key[len(managedPrefix):]] = row
		}
	}
	var batch []store.KV
	for _, o := range attempt {
		if err := c.step(o.stepTag); err != nil {
			return err
		}
		kvs, err := c.executeLocked(o)
		if err != nil {
			c.backoffLocked(o, now, err)
			continue
		}
		batch = append(batch, kvs...)
		c.settleLocked(o)
	}
	batch = append(batch, c.tombstoneGCLocked(actual)...)
	if err := c.step(StepStatusRecord); err != nil {
		return err
	}
	if err := c.cfg.Store.PutBatch(batch); err != nil {
		return fmt.Errorf("reconcile: journaling managed rows: %w", err)
	}
	// Apply the journaled rows to the in-memory managed set only after
	// the batch is durable, mirroring what recovery would reconstruct.
	for _, kv := range batch {
		id := kv.Key[len(managedPrefix):]
		if kv.Delete {
			delete(c.managed, id)
		} else {
			var row managedRow
			_ = json.Unmarshal(kv.Value, &row)
			c.managed[id] = row
		}
	}
	c.updateConvergedLocked()
	return nil
}

// executeLocked performs one op's side effects and returns the managed-
// row mutations to journal. Idempotency contract: "already done" errors
// from the fleet are success.
func (c *Controller) executeLocked(o op) ([]store.KV, error) {
	switch o.kind {
	case EventWithdraw:
		err := c.cfg.Fleet.RemoveAgent(o.id)
		if err != nil && !errors.Is(err, verifier.ErrUnknownAgent) {
			return nil, err
		}
		// Tombstone, not delete: if an at-least-once restore resurrects
		// this agent later, the row proves prior ownership and the ghost
		// is withdrawn again rather than leaking as unmanaged.
		row := o.row
		row.Withdrawn = true
		raw, _ := json.Marshal(row)
		return []store.KV{{Key: managedPrefix + o.id, Value: raw}}, nil
	case EventEnroll:
		if o.reURL {
			// Old enrollment points at a stale URL; remove before re-adding.
			if err := c.cfg.Fleet.RemoveAgent(o.id); err != nil && !errors.Is(err, verifier.ErrUnknownAgent) {
				return nil, err
			}
		}
		var err error
		if o.d.akPub != nil {
			err = c.cfg.Fleet.AddAgentWithAK(o.id, o.d.spec.URL, o.d.akPub, o.d.pol)
		} else {
			err = c.cfg.Fleet.AddAgent(o.id, o.d.spec.URL, o.d.pol)
		}
		if errors.Is(err, verifier.ErrDuplicate) {
			// Lost the race with a crash-replayed or concurrent enroll of
			// the same intent: converge the policy instead.
			err = c.cfg.Fleet.UpdatePolicy(o.id, o.d.pol)
		}
		if err != nil {
			return nil, err
		}
		return []store.KV{c.rowKV(o.d)}, nil
	case EventUpdate, EventAdopt:
		err := c.cfg.Fleet.UpdatePolicy(o.id, o.d.pol)
		if errors.Is(err, verifier.ErrUnknownAgent) {
			// Vanished between diff and execute (imperative delete racing
			// us). Drop any managed row; the next tick re-enrolls if the
			// spec still wants it.
			return []store.KV{{Key: managedPrefix + o.id, Delete: true}}, nil
		}
		if err != nil {
			return nil, err
		}
		return []store.KV{c.rowKV(o.d)}, nil
	}
	return nil, fmt.Errorf("reconcile: unknown op %q", o.kind)
}

// tombstoneGCTicks is how many consecutive ticks a withdrawn agent must
// stay absent from the fleet (and undesired) before its tombstone is
// collected. The window only has to outlive resurrection sources — a
// failover replaying a replica that lagged the removal — which surface
// within a tick or two of the event.
const tombstoneGCTicks = 8

// tombstoneGCLocked expires tombstones whose agents have stayed gone,
// returning the journal deletions to fold into the tick's status batch.
// The absence counter is in-memory only; a restart just restarts the
// wait, which errs toward keeping tombstones longer — the safe side.
func (c *Controller) tombstoneGCLocked(actual map[string]bool) []store.KV {
	var kvs []store.KV
	for id, row := range c.managed {
		if !row.Withdrawn {
			delete(c.tomb, id)
			continue
		}
		if _, want := c.desired[id]; want || actual[id] {
			delete(c.tomb, id)
			continue
		}
		c.tomb[id]++
		if c.tomb[id] >= tombstoneGCTicks {
			kvs = append(kvs, store.KV{Key: managedPrefix + id, Delete: true})
			delete(c.tomb, id)
		}
	}
	return kvs
}

// rowKV builds the journaled managed row for a desired agent.
func (c *Controller) rowKV(d *desiredAgent) store.KV {
	row := managedRow{URL: d.spec.URL, Tenant: d.tenant, Hash: d.hash, Cohort: d.spec.Cohort}
	raw, _ := json.Marshal(row)
	return store.KV{Key: managedPrefix + d.spec.ID, Value: raw}
}

// settleLocked records a successful op: event, counter, retry reset.
func (c *Controller) settleLocked(o op) {
	if it, ok := c.items[o.id]; ok {
		if it.degraded {
			c.event(Event{Type: EventRecovered, Tenant: o.tenant, AgentID: o.id,
				Version: c.spec.Version})
		}
		delete(c.items, o.id)
	}
	switch o.kind {
	case EventEnroll:
		c.counters.Enrolls++
	case EventWithdraw:
		c.counters.Withdraws++
	case EventUpdate:
		c.counters.Updates++
	case EventAdopt:
		c.counters.Adopts++
	}
	c.event(Event{Type: o.kind, Tenant: o.tenant, AgentID: o.id, Version: c.spec.Version})
}

// backoffLocked schedules a failed op's next attempt: exponential with
// jitter up to MaxBackoff, parking the item Degraded after MaxRetries.
// Degraded items keep reprobing at the slow DegradedRetry cadence.
func (c *Controller) backoffLocked(o op, now time.Time, err error) {
	it := c.items[o.id]
	if it == nil {
		it = &itemState{}
		c.items[o.id] = it
	}
	it.attempts++
	it.lastErr = err.Error()
	if it.attempts >= c.cfg.MaxRetries {
		it.nextAttempt = now.Add(c.jittered(c.cfg.DegradedRetry))
		if !it.degraded {
			it.degraded = true
			c.counters.Degraded++
			c.event(Event{Type: EventDegraded, Tenant: o.tenant, AgentID: o.id,
				Version: c.spec.Version,
				Detail:  fmt.Sprintf("after %d attempts: %v", it.attempts, err)})
			c.logf("reconcile: %s degraded after %d attempts: %v", o.id, it.attempts, err)
		}
		return
	}
	delay := c.cfg.BaseBackoff << (it.attempts - 1)
	if delay > c.cfg.MaxBackoff || delay <= 0 {
		delay = c.cfg.MaxBackoff
	}
	it.nextAttempt = now.Add(c.jittered(delay))
	c.counters.Retries++
	c.event(Event{Type: EventRetry, Tenant: o.tenant, AgentID: o.id,
		Version: c.spec.Version,
		Detail:  fmt.Sprintf("attempt %d: %v", it.attempts, err)})
}

// takeTokenLocked consumes one op token from the tenant's bucket,
// refilling by elapsed clock time. Unlimited-rate tenants always pass.
func (c *Controller) takeTokenLocked(tenant string, now time.Time) bool {
	lim, ok := c.limits[tenant]
	if !ok || lim.rate <= 0 {
		return true
	}
	b := c.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: lim.burst, last: now}
		c.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * lim.rate
		if b.tokens > lim.burst {
			b.tokens = lim.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// updateConvergedLocked recomputes convergence: no outstanding ops for
// non-degraded items. Degraded items are parked, reported separately,
// and do not hold convergence hostage — that is the isolation property.
func (c *Controller) updateConvergedLocked() {
	if c.spec == nil {
		return
	}
	pending := 0
	for _, o := range c.diffOpsLocked(c.actualLocked()) {
		if it := c.items[o.id]; it != nil && it.degraded {
			continue
		}
		pending++
	}
	if pending == 0 && !c.converged {
		c.converged = true
		c.convergedAt = c.ticks - c.appliedAtTick
		c.event(Event{Type: EventConverged, Version: c.spec.Version,
			Detail: fmt.Sprintf("after %d ticks", c.convergedAt)})
		c.logf("reconcile: spec v%d converged after %d ticks", c.spec.Version, c.convergedAt)
	} else if pending > 0 {
		c.converged = false
	}
}

// Status returns the reconciler's observable state.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Applies:  c.applies,
		Ticks:    c.ticks,
		Counters: c.counters,
		Tenants:  make(map[string]TenantStatus),
	}
	for _, row := range c.managed {
		if !row.Withdrawn {
			st.Managed++
		}
	}
	if c.spec != nil {
		st.SpecVersion = c.spec.Version
	}
	if c.converged {
		st.Converged = true
		st.ConvergedVersion = st.SpecVersion
		st.ConvergedTicks = c.convergedAt
	}
	for tn, lim := range c.limits {
		st.Tenants[tn] = TenantStatus{MaxAgents: lim.maxAgents, Rate: lim.rate}
	}
	for _, d := range c.desired {
		ts := st.Tenants[d.tenant]
		ts.Agents++
		st.Tenants[d.tenant] = ts
	}
	for _, o := range c.diffOpsLocked(c.actualLocked()) {
		if it := c.items[o.id]; it != nil && it.degraded {
			st.Degraded = append(st.Degraded, o.id)
			ts := st.Tenants[o.tenant]
			ts.Degraded++
			st.Tenants[o.tenant] = ts
			continue
		}
		switch o.kind {
		case EventEnroll:
			st.Pending.Enrolls++
		case EventWithdraw:
			st.Pending.Withdraws++
		case EventUpdate, EventAdopt:
			st.Pending.Updates++
		}
	}
	sort.Strings(st.Degraded)
	return st
}

// Diff reports the outstanding desired-vs-actual delta without executing
// anything.
func (c *Controller) Diff() (Diff, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spec == nil {
		return Diff{}, ErrNoSpec
	}
	return c.diffLocked(), nil
}

func (c *Controller) diffLocked() Diff {
	d := Diff{Version: c.spec.Version}
	for _, o := range c.diffOpsLocked(c.actualLocked()) {
		switch o.kind {
		case EventEnroll:
			d.Enrolls = append(d.Enrolls, o.id)
		case EventWithdraw:
			d.Withdraws = append(d.Withdraws, o.id)
		case EventUpdate, EventAdopt:
			d.Updates = append(d.Updates, o.id)
		}
	}
	d.Converged = len(d.Enrolls)+len(d.Updates)+len(d.Withdraws) == 0
	return d
}

// Events returns the bounded event log, oldest first.
func (c *Controller) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, 0, len(c.events))
	out = append(out, c.events[c.eventsPos:]...)
	out = append(out, c.events[:c.eventsPos]...)
	return out
}

// event appends to the bounded ring and forwards to Notify.
func (c *Controller) event(ev Event) {
	ev.Time = c.cfg.Clock.Now()
	if len(c.events) < c.cfg.EventCap {
		c.events = append(c.events, ev)
	} else {
		c.events[c.eventsPos] = ev
		c.eventsPos = (c.eventsPos + 1) % c.cfg.EventCap
	}
	if c.cfg.Notify != nil {
		c.cfg.Notify(ev)
	}
}

func (c *Controller) step(name string) error {
	if c.cfg.Step == nil {
		return nil
	}
	return c.cfg.Step(name)
}

func (c *Controller) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// jitterRand is a tiny xorshift64 source for backoff jitter — same idiom
// as the verifier's registrar-retry jitter; crypto-quality randomness is
// unnecessary for spreading retries.
type jitterRand struct {
	mu    sync.Mutex
	state uint64
}

func (r *jitterRand) unit() float64 {
	r.mu.Lock()
	x := r.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.state = x
	r.mu.Unlock()
	return float64(x>>11) / float64(1<<53)
}

// jittered spreads d over [0.75d, 1.25d).
func (c *Controller) jittered(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.75 + 0.5*c.rng.unit()))
}
