// Package httppool provides the pooled HTTP transport defaults shared by
// every Keylime component that talks over the network (verifier, tenant,
// agent, webhook notifier).
//
// net/http.DefaultClient keeps at most two idle connections per host and
// has no dial or TLS-handshake timeouts. For a verifier sweeping a large
// fleet that means connection churn on every poll round — each sweep pays
// a fresh TCP (and possibly TLS) handshake per agent — and a single
// black-holed dial can stall a worker for the kernel's default TCP timeout
// (minutes). The transports built here keep connections alive between
// sweeps, size the idle pool to the caller's concurrency, and bound dials
// and handshakes so a dead host costs seconds, not minutes.
package httppool

import (
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"
)

// Transport timeouts. Dial and TLS-handshake bounds exist so a worker
// pinned on a dead host is released quickly; they are intentionally looser
// than the verifier's per-request timeout, which governs total round time.
const (
	// DialTimeout bounds TCP connection establishment.
	DialTimeout = 10 * time.Second
	// KeepAlivePeriod is the TCP keep-alive probe interval.
	KeepAlivePeriod = 30 * time.Second
	// TLSHandshakeTimeout bounds the TLS handshake.
	TLSHandshakeTimeout = 10 * time.Second
	// IdleConnTimeout is how long an idle connection is kept for reuse.
	// Poll intervals up to this value reuse the previous sweep's
	// connections instead of re-dialing the whole fleet.
	IdleConnTimeout = 90 * time.Second
)

// NewTransport returns a pooled transport whose per-host idle-connection
// pool is sized to maxPerHost concurrent requests. Idle connections are
// unbounded across hosts: a verifier sweeping N agents legitimately holds
// one warm connection per agent between sweeps, and IdleConnTimeout
// reclaims them when polling stops.
func NewTransport(maxPerHost int) *http.Transport {
	if maxPerHost <= 0 {
		maxPerHost = DefaultPerHost()
	}
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   DialTimeout,
			KeepAlive: KeepAlivePeriod,
		}).DialContext,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          0, // unlimited; one warm conn per fleet host
		MaxIdleConnsPerHost:   maxPerHost,
		IdleConnTimeout:       IdleConnTimeout,
		TLSHandshakeTimeout:   TLSHandshakeTimeout,
		ExpectContinueTimeout: time.Second,
	}
}

// NewClient returns an *http.Client over NewTransport(maxPerHost). The
// client itself carries no overall timeout — callers bound requests per
// attempt (the verifier's retry policy) or per call site.
func NewClient(maxPerHost int) *http.Client {
	return &http.Client{Transport: NewTransport(maxPerHost)}
}

// DefaultPerHost is the per-host idle-pool size used when the caller has
// no specific concurrency to match: enough for GOMAXPROCS-scaled worker
// pools hitting one host (loopback deployments, tests) without hoarding
// sockets.
func DefaultPerHost() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

var (
	sharedOnce   sync.Once
	sharedClient *http.Client
)

// Shared returns the process-wide pooled client used as the default by
// components without their own concurrency knob (tenant, agent, webhook).
// Sharing one transport lets co-located components reuse each other's warm
// connections.
func Shared() *http.Client {
	sharedOnce.Do(func() {
		sharedClient = NewClient(DefaultPerHost())
	})
	return sharedClient
}
