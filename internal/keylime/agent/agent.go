// Package agent implements the Keylime agent — the only component running
// on the untrusted prover. It enrolls the machine's TPM with the registrar
// (EK certificate + AK, credential activation) and serves integrity quotes:
// a TPM quote over the requested nonce plus the IMA measurement list from a
// requested offset, exactly the evidence the verifier consumes.
package agent

import (
	"bytes"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/ima"
	"repro/internal/keylime/httppool"
	"repro/internal/keylime/api"
	"repro/internal/keylime/session"
	"repro/internal/machine"
	"repro/internal/measuredboot"
	"repro/internal/tpm"
)

// Sentinel errors.
var (
	ErrNotRegistered   = errors.New("agent: not registered")
	ErrRegistration    = errors.New("agent: registration failed")
	ErrMissingNonce    = errors.New("agent: missing nonce parameter")
	ErrAlreadyEnrolled = errors.New("agent: already registered")
)

// Agent runs on one machine. Construct with New; safe for concurrent use.
type Agent struct {
	m      *machine.Machine
	client *http.Client

	mu         sync.Mutex
	akPub      []byte
	contactURL string
	registered bool
	akName     tpm.Digest
	akNameOK   bool

	// Sessioned attestation (see session.go).
	sessMu    sync.Mutex
	sessions  map[session.ID]*agentSession
	sessTTL   time.Duration
	sessLimit int
}

// quoteSelection is the PCR selection every integrity quote covers: the
// measured-boot PCRs (0, 4) and the IMA PCR (10).
var quoteSelection = []int{measuredboot.PCRFirmware, measuredboot.PCRBoot, tpm.PCRIMA}

// Option configures the agent.
type Option interface{ apply(*Agent) }

type clientOption struct{ c *http.Client }

func (o clientOption) apply(a *Agent) { a.client = o.c }

// WithHTTPClient sets the HTTP client used to reach the registrar.
func WithHTTPClient(c *http.Client) Option { return clientOption{c: c} }

// New creates an agent for the given machine.
func New(m *machine.Machine, opts ...Option) *Agent {
	a := &Agent{m: m, client: httppool.Shared(),
		sessTTL: DefaultSessionTTL, sessLimit: DefaultSessionLimit}
	for _, opt := range opts {
		opt.apply(a)
	}
	return a
}

// Machine returns the machine this agent runs on.
func (a *Agent) Machine() *machine.Machine { return a.m }

// Registered reports whether enrollment completed.
func (a *Agent) Registered() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.registered
}

// Register enrolls with the registrar at registrarURL: it creates the AK,
// submits the EK certificate, activates the returned credential, and
// records contactURL as the address the verifier should poll.
func (a *Agent) Register(registrarURL, contactURL string) error {
	a.mu.Lock()
	if a.registered {
		a.mu.Unlock()
		return ErrAlreadyEnrolled
	}
	a.mu.Unlock()

	dev := a.m.TPM()
	akPub, err := dev.CreateAK()
	if err != nil && !errors.Is(err, tpm.ErrDuplicateQuoteAK) {
		return fmt.Errorf("%w: creating AK: %v", ErrRegistration, err)
	}
	if akPub == nil {
		if akPub, err = dev.AKPublic(); err != nil {
			return fmt.Errorf("%w: reading AK: %v", ErrRegistration, err)
		}
	}
	var intermediates []string
	for _, der := range dev.EKIntermediates() {
		intermediates = append(intermediates, base64.StdEncoding.EncodeToString(der))
	}
	reqBody, err := json.Marshal(api.RegisterRequest{
		AgentID:         a.m.UUID(),
		EKCert:          base64.StdEncoding.EncodeToString(dev.EKCertificate()),
		EKIntermediates: intermediates,
		AKPub:           base64.StdEncoding.EncodeToString(akPub),
		ContactURL:      contactURL,
	})
	if err != nil {
		return fmt.Errorf("%w: encoding request: %v", ErrRegistration, err)
	}
	var regResp api.RegisterResponse
	if err := a.postJSON(registrarURL+"/v2/agents/"+a.m.UUID(), reqBody, &regResp); err != nil {
		return fmt.Errorf("%w: %v", ErrRegistration, err)
	}
	encSecret, err := base64.StdEncoding.DecodeString(regResp.EncryptedSecret)
	if err != nil {
		return fmt.Errorf("%w: decoding challenge: %v", ErrRegistration, err)
	}
	nameRaw, err := hex.DecodeString(regResp.AKNameBound)
	if err != nil || len(nameRaw) != len(tpm.Digest{}) {
		return fmt.Errorf("%w: decoding AK name", ErrRegistration)
	}
	var name tpm.Digest
	copy(name[:], nameRaw)
	proof, err := dev.ActivateCredential(tpm.Credential{EncryptedSecret: encSecret, AKNameBound: name})
	if err != nil {
		return fmt.Errorf("%w: activating credential: %v", ErrRegistration, err)
	}
	actBody, err := json.Marshal(api.ActivateRequest{AgentID: a.m.UUID(), Proof: hex.EncodeToString(proof[:])})
	if err != nil {
		return fmt.Errorf("%w: encoding activation: %v", ErrRegistration, err)
	}
	if err := a.postJSON(registrarURL+"/v2/agents/"+a.m.UUID()+"/activate", actBody, nil); err != nil {
		return fmt.Errorf("%w: %v", ErrRegistration, err)
	}
	a.mu.Lock()
	a.akPub = akPub
	a.contactURL = contactURL
	a.registered = true
	a.mu.Unlock()
	return nil
}

func (a *Agent) postJSON(url string, body []byte, out any) error {
	resp, err := a.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// IntegrityQuote produces the attestation evidence: a quote over the
// measured-boot PCRs (0, 4) and the IMA PCR (10) with the supplied nonce,
// the IMA log from the given entry offset, and the boot event log.
//
// The log read and the quote are not one atomic operation; a measurement
// landing between them would make the quoted PCR 10 and the returned log
// disagree and fail replay at the verifier. The evidence is therefore
// collected in a read-quote-recheck loop and only returned once the
// measurement list was stable across the quote.
func (a *Agent) IntegrityQuote(nonce []byte, offset int) (api.QuoteResponse, error) {
	ev, err := a.collectEvidence(nonce, offset)
	if err != nil {
		return api.QuoteResponse{}, err
	}
	return api.QuoteResponse{
		Quote:         api.EncodeQuote(ev.quote),
		IMALog:        ima.FormatLog(ev.entries),
		Offset:        ev.offset,
		TotalEntries:  ev.total,
		RunningKernel: a.m.RunningKernel(),
		MBLog:         api.EncodeBootLog(a.m.BootLog()),
	}, nil
}

// evidence is one consistent (quote, log delta) pair.
type evidence struct {
	quote   tpm.Quote
	entries []ima.Entry
	offset  int
	total   int
}

func (a *Agent) collectEvidence(nonce []byte, offset int) (evidence, error) {
	const maxAttempts = 5
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		total := a.m.IMA().Len()
		reqOffset := offset
		if reqOffset > total {
			// The verifier is ahead of our log: it will detect the reboot
			// via TotalEntries and refetch from zero.
			reqOffset = total
		}
		entries := a.m.IMA().Entries(reqOffset)
		q, err := a.m.TPM().Quote(nonce, quoteSelection)
		if err != nil {
			return evidence{}, fmt.Errorf("agent: quoting: %w", err)
		}
		if a.m.IMA().Len() != total {
			// A measurement raced the quote; retry for a consistent pair.
			lastErr = fmt.Errorf("agent: measurement list changed during quote (attempt %d)", attempt+1)
			continue
		}
		return evidence{quote: q, entries: entries, offset: reqOffset, total: total}, nil
	}
	return evidence{}, lastErr
}

// Handler returns the agent's HTTP API:
//
//	GET  /v2/quotes/integrity?nonce=<b64url>&offset=<n> -> QuoteResponse (JSON)
//	POST /v2/quotes/attest                              -> binary round (KLA1)
func (a *Agent) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.AttestPath, a.handleAttest)
	mux.HandleFunc("GET /v2/quotes/integrity", func(w http.ResponseWriter, req *http.Request) {
		nonceParam := req.URL.Query().Get("nonce")
		if nonceParam == "" {
			writeErr(w, http.StatusBadRequest, ErrMissingNonce)
			return
		}
		nonce, err := base64.URLEncoding.DecodeString(nonceParam)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("agent: bad nonce encoding: %w", err))
			return
		}
		offset := 0
		if o := req.URL.Query().Get("offset"); o != "" {
			offset, err = strconv.Atoi(o)
			if err != nil || offset < 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("agent: bad offset %q", o))
				return
			}
		}
		resp, err := a.IntegrityQuote(nonce, offset)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
	return mux
}

func writeErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: err.Error()})
}
