package agent

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ima"
	"repro/internal/keylime/api"
	"repro/internal/keylime/registrar"
	"repro/internal/machine"
	"repro/internal/tpm"
	"repro/internal/vfs"
)

func newAgentStack(t *testing.T) (*Agent, *registrar.Registrar, *httptest.Server) {
	t.Helper()
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	m, err := machine.New(ca, machine.WithTPMOptions(tpm.WithEKBits(1024)))
	if err != nil {
		t.Fatalf("New machine: %v", err)
	}
	reg := registrar.New(ca.Pool())
	regSrv := httptest.NewServer(reg.Handler())
	t.Cleanup(regSrv.Close)
	return New(m), reg, regSrv
}

func TestRegisterFlow(t *testing.T) {
	a, reg, regSrv := newAgentStack(t)
	if a.Registered() {
		t.Fatal("fresh agent claims registered")
	}
	if err := a.Register(regSrv.URL, "http://agent:9002"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if !a.Registered() {
		t.Fatal("agent not registered after flow")
	}
	info, err := reg.Agent(a.Machine().UUID())
	if err != nil {
		t.Fatalf("registrar.Agent: %v", err)
	}
	if !info.Active {
		t.Fatal("registrar record not active")
	}
	if info.ContactURL != "http://agent:9002" {
		t.Fatalf("ContactURL = %q", info.ContactURL)
	}
}

func TestRegisterTwiceRejected(t *testing.T) {
	a, _, regSrv := newAgentStack(t)
	if err := a.Register(regSrv.URL, "u"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := a.Register(regSrv.URL, "u"); !errors.Is(err, ErrAlreadyEnrolled) {
		t.Fatalf("second Register: %v, want ErrAlreadyEnrolled", err)
	}
}

func TestRegisterUnreachableRegistrar(t *testing.T) {
	a, _, _ := newAgentStack(t)
	if err := a.Register("http://127.0.0.1:1", "u"); !errors.Is(err, ErrRegistration) {
		t.Fatalf("err = %v, want ErrRegistration", err)
	}
}

func TestIntegrityQuoteEvidence(t *testing.T) {
	a, _, regSrv := newAgentStack(t)
	if err := a.Register(regSrv.URL, "u"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	m := a.Machine()
	if err := m.WriteFile("/usr/bin/tool", []byte("bin"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.Exec("/usr/bin/tool"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	nonce := []byte("verifier-nonce")
	resp, err := a.IntegrityQuote(nonce, 0)
	if err != nil {
		t.Fatalf("IntegrityQuote: %v", err)
	}
	if resp.TotalEntries != 2 { // boot aggregate + tool
		t.Fatalf("TotalEntries = %d, want 2", resp.TotalEntries)
	}
	q, err := api.DecodeQuote(resp.Quote)
	if err != nil {
		t.Fatalf("DecodeQuote: %v", err)
	}
	akPub, err := m.TPM().AKPublic()
	if err != nil {
		t.Fatalf("AKPublic: %v", err)
	}
	pcrs, err := tpm.VerifyQuote(akPub, q, nonce)
	if err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
	if _, ok := pcrs[tpm.PCRIMA]; !ok {
		t.Fatal("quote does not cover PCR 10")
	}
}

func TestIntegrityQuoteOffsetBeyondLogClamped(t *testing.T) {
	a, _, regSrv := newAgentStack(t)
	if err := a.Register(regSrv.URL, "u"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	resp, err := a.IntegrityQuote([]byte("n"), 100)
	if err != nil {
		t.Fatalf("IntegrityQuote: %v", err)
	}
	if resp.IMALog != "" {
		t.Fatalf("IMALog = %q, want empty for offset beyond log", resp.IMALog)
	}
	if resp.TotalEntries != 1 {
		t.Fatalf("TotalEntries = %d, want 1", resp.TotalEntries)
	}
}

func TestHTTPQuoteEndpoint(t *testing.T) {
	a, _, regSrv := newAgentStack(t)
	if err := a.Register(regSrv.URL, "u"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	nonce := base64.URLEncoding.EncodeToString([]byte("n"))
	resp, err := http.Get(srv.URL + "/v2/quotes/integrity?nonce=" + nonce + "&offset=0")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var qr api.QuoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if qr.TotalEntries < 1 {
		t.Fatalf("TotalEntries = %d", qr.TotalEntries)
	}
}

func TestHTTPQuoteEndpointValidation(t *testing.T) {
	a, _, regSrv := newAgentStack(t)
	if err := a.Register(regSrv.URL, "u"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	for _, u := range []string{
		"/v2/quotes/integrity",                          // missing nonce
		"/v2/quotes/integrity?nonce=%%%",                // invalid encoding
		"/v2/quotes/integrity?nonce=bm9uY2U=&offset=-1", // negative offset
		"/v2/quotes/integrity?nonce=bm9uY2U=&offset=x",  // non-numeric offset
	} {
		resp, err := http.Get(srv.URL + u)
		if err != nil {
			t.Fatalf("GET %s: %v", u, err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s status = %d, want 400", u, resp.StatusCode)
		}
	}
}

func TestIntegrityQuoteConsistentUnderConcurrentMeasurements(t *testing.T) {
	// The read-quote-recheck loop must hand out evidence where the quoted
	// PCR 10 and the returned log agree even while measurements land
	// concurrently — otherwise the verifier replays a log that does not
	// match the quote and flags a healthy machine. Run with -race.
	a, reg, regSrv := newAgentStack(t)
	if err := a.Register(regSrv.URL, "u"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	info, err := reg.Agent(a.Machine().UUID())
	if err != nil {
		t.Fatalf("registrar.Agent: %v", err)
	}
	akPub, err := base64.StdEncoding.DecodeString(info.AKPub)
	if err != nil {
		t.Fatalf("decoding AK: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Paced churn: enough concurrent measurements to race the quote
		// loop without growing the log quadratically under -race.
		for i := 0; i < 3000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			path := fmt.Sprintf("/usr/bin/churn-%d", i)
			if err := a.Machine().WriteFile(path, []byte(fmt.Sprintf("bin-%d", i)), vfs.ModeExecutable); err != nil {
				return
			}
			if err := a.Machine().Exec(path); err != nil {
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	nonce := make([]byte, 20)
	successes := 0
	for i := 0; i < 30; i++ {
		if _, err := rand.Read(nonce); err != nil {
			t.Fatalf("nonce: %v", err)
		}
		resp, err := a.IntegrityQuote(nonce, 0)
		if err != nil {
			// All retry attempts raced — tolerable under extreme churn,
			// but it must be the documented consistency error.
			if !strings.Contains(err.Error(), "measurement list changed") {
				t.Fatalf("IntegrityQuote: %v", err)
			}
			continue
		}
		successes++
		quote, err := api.DecodeQuote(resp.Quote)
		if err != nil {
			t.Fatalf("DecodeQuote: %v", err)
		}
		pcrs, err := tpm.VerifyQuote(akPub, quote, nonce)
		if err != nil {
			t.Fatalf("VerifyQuote: %v", err)
		}
		entries, err := ima.ParseLog(resp.IMALog)
		if err != nil {
			t.Fatalf("ParseLog: %v", err)
		}
		if len(entries) != resp.TotalEntries {
			t.Fatalf("log has %d entries, TotalEntries = %d", len(entries), resp.TotalEntries)
		}
		// Replaying the full returned log must reproduce the quoted PCR 10:
		// the evidence pair is internally consistent.
		var pcr tpm.Digest
		for _, e := range entries {
			h := sha256.New()
			h.Write(pcr[:])
			h.Write(e.TemplateHash[:])
			copy(pcr[:], h.Sum(nil))
		}
		if pcr != pcrs[tpm.PCRIMA] {
			t.Fatalf("quote %d: replayed aggregate does not match quoted PCR 10 (%d entries)", i, len(entries))
		}
	}
	close(stop)
	wg.Wait()
	if successes < 15 {
		t.Fatalf("only %d/30 quotes succeeded; consistency loop starving under churn", successes)
	}
}
