package agent

// Sessioned attestation, agent side. The verifier establishes a session
// by sending a full-quote request carrying an establish ID; both sides
// derive the session key from the verified quote exchange (see package
// session). Steady-state session requests are answered with a ~77-byte
// MAC frame — but only when nothing changed: if the session is unknown
// or expired, or the measurement-log frontier moved, the agent escalates
// to a full quote in the same round trip, so a state change is never
// hidden behind a session MAC.

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/ima"
	"repro/internal/keylime/api"
	"repro/internal/keylime/session"
	"repro/internal/tpm"
)

// Session cache defaults; override with WithSessionTTL/WithSessionLimit.
const (
	DefaultSessionTTL   = time.Hour
	DefaultSessionLimit = 16384
)

type sessionTTLOption struct{ d time.Duration }

func (o sessionTTLOption) apply(a *Agent) {
	if o.d > 0 {
		a.sessTTL = o.d
	}
}

// WithSessionTTL bounds how long the agent honors an established session.
func WithSessionTTL(d time.Duration) Option { return sessionTTLOption{d: d} }

type sessionLimitOption struct{ n int }

func (o sessionLimitOption) apply(a *Agent) {
	if o.n > 0 {
		a.sessLimit = o.n
	}
}

// WithSessionLimit caps the number of concurrently cached sessions.
func WithSessionLimit(n int) Option { return sessionLimitOption{n: n} }

// agentSession is one cached session. The MACer is guarded by sessMu.
type agentSession struct {
	mac     *session.MACer
	created time.Time
}

// akNameCached returns the AK name, computing and caching it on first use.
func (a *Agent) akNameCached() (tpm.Digest, bool) {
	a.mu.Lock()
	if a.akNameOK {
		n := a.akName
		a.mu.Unlock()
		return n, true
	}
	a.mu.Unlock()
	der, err := a.m.TPM().AKPublic()
	if err != nil {
		return tpm.Digest{}, false
	}
	n := tpm.AKName(der)
	a.mu.Lock()
	a.akName, a.akNameOK = n, true
	a.mu.Unlock()
	return n, true
}

// putSession installs a freshly derived session, dropping the one it
// replaces and evicting expired/oldest entries at the cap.
func (a *Agent) putSession(id session.ID, key [session.KeySize]byte, replaces session.ID, now time.Time) {
	a.sessMu.Lock()
	defer a.sessMu.Unlock()
	if a.sessions == nil {
		a.sessions = make(map[session.ID]*agentSession)
	}
	if !replaces.IsZero() {
		delete(a.sessions, replaces)
	}
	if len(a.sessions) >= a.sessLimit {
		a.evictLocked(now)
	}
	a.sessions[id] = &agentSession{mac: session.NewMACer(key[:]), created: now}
}

// evictLocked drops expired sessions, then the oldest until under the cap.
func (a *Agent) evictLocked(now time.Time) {
	for id, s := range a.sessions {
		if now.Sub(s.created) >= a.sessTTL {
			delete(a.sessions, id)
		}
	}
	for len(a.sessions) >= a.sessLimit {
		var oldest session.ID
		var oldestAt time.Time
		first := true
		for id, s := range a.sessions {
			if first || s.created.Before(oldestAt) {
				oldest, oldestAt, first = id, s.created, false
			}
		}
		delete(a.sessions, oldest)
	}
}

// SessionCount reports the number of cached sessions (for tests/metrics).
func (a *Agent) SessionCount() int {
	a.sessMu.Lock()
	defer a.sessMu.Unlock()
	return len(a.sessions)
}

// handleAttest serves the binary attestation round (POST /v2/quotes/attest).
func (a *Agent) handleAttest(w http.ResponseWriter, req *http.Request) {
	if req.Header.Get("Content-Type") != api.ContentTypeBinary {
		writeErr(w, http.StatusUnsupportedMediaType,
			fmt.Errorf("agent: unsupported content type %q", req.Header.Get("Content-Type")))
		return
	}
	buf := api.GetBuf()
	defer api.PutBuf(buf)
	data, err := api.ReadFrame(req.Body, buf, api.MaxRequestFrame)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("agent: reading frame: %w", err))
		return
	}
	r, err := api.DecodeRoundRequest(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	switch r.Kind {
	case api.FrameSessionRequest:
		if a.answerSession(w, buf, r) {
			return
		}
		// Escalate: answer the session request with a full quote (and
		// establish the renew-hint session so the verifier recovers in
		// one round trip). The superseded session is dropped.
		a.serveFullQuote(w, buf, r.Nonce, r.Offset, session.ID(r.EstablishID), session.ID(r.SessionID))
	case api.FrameQuoteRequest:
		a.serveFullQuote(w, buf, r.Nonce, r.Offset, session.ID(r.EstablishID), session.ID(r.ReplacesID))
	default:
		writeErr(w, http.StatusBadRequest, api.ErrBadFrame)
	}
}

// answerSession attempts the steady-state session round. It reports true
// when a session frame was written; false means the caller must escalate
// to a full quote (unknown/expired session, or the state moved).
func (a *Agent) answerSession(w http.ResponseWriter, buf *[]byte, r api.RoundRequest) bool {
	id := session.ID(r.SessionID)
	now := time.Now()
	a.sessMu.Lock()
	s := a.sessions[id]
	if s == nil || now.Sub(s.created) >= a.sessTTL {
		if s != nil {
			delete(a.sessions, id)
		}
		a.sessMu.Unlock()
		return false
	}
	// Same read-recheck discipline as collectEvidence: the composite and
	// the frontier must describe one consistent state.
	total := a.m.IMA().Len()
	if total != r.Offset {
		a.sessMu.Unlock()
		return false
	}
	comp, err := a.m.TPM().PCRComposite(quoteSelection)
	if err != nil || a.m.IMA().Len() != total {
		a.sessMu.Unlock()
		return false
	}
	var out api.SessionRound
	out.TotalEntries = total
	out.Composite = comp
	s.mac.Sum(r.Nonce, comp, uint64(total), &out.MAC)
	a.sessMu.Unlock()

	// r.Nonce aliases buf and has been consumed by the MAC; the buffer is
	// now free to hold the response frame.
	*buf = api.AppendSessionRound((*buf)[:0], out)
	w.Header().Set("Content-Type", api.ContentTypeBinary)
	_, _ = w.Write(*buf)
	return true
}

// serveFullQuote answers with a binary full-quote frame, deriving and
// installing a session under establish (if nonzero and an AK exists).
func (a *Agent) serveFullQuote(w http.ResponseWriter, buf *[]byte, nonce []byte, offset int, establish, replaces session.ID) {
	// nonce aliases buf, which the response is encoded into: copy it out.
	nonceCopy := append([]byte(nil), nonce...)
	ev, err := a.collectEvidence(nonceCopy, offset)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	established := false
	if !establish.IsZero() {
		if akName, ok := a.akNameCached(); ok {
			key := session.DeriveKey(akName, ev.quote.Signature, nonceCopy, establish)
			a.putSession(establish, key, replaces, time.Now())
			established = true
		}
	}
	frame := api.FullQuoteRound{
		Quote:              ev.quote,
		IMALog:             ima.FormatLog(ev.entries),
		Offset:             ev.offset,
		TotalEntries:       ev.total,
		RunningKernel:      a.m.RunningKernel(),
		MBLog:              api.EncodeBootLog(a.m.BootLog()),
		SessionEstablished: established,
	}
	*buf, err = api.AppendQuoteRound((*buf)[:0], frame)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", api.ContentTypeBinary)
	_, _ = w.Write(*buf)
}
