package api

import (
	"bytes"
	"testing"
)

// FuzzDecodeBinaryRound hammers the response-frame decoder with
// truncations, lying length prefixes, and mixed-version frames. The
// decoder must never panic or over-read: any structural defect returns
// ErrBadFrame, and anything it accepts must re-encode to the identical
// bytes (so a decoded frame cannot mean something its encoding doesn't
// say).
func FuzzDecodeBinaryRound(f *testing.F) {
	// Seeds: one valid frame of each kind, plus adversarial variants.
	full, err := AppendQuoteRound(nil, sampleFullRound())
	if err != nil {
		f.Fatal(err)
	}
	sess := AppendSessionRound(nil, SessionRound{TotalEntries: 42})
	f.Add(full)
	f.Add(sess)
	f.Add(full[:len(full)/2])                      // truncation
	f.Add(append(append([]byte(nil), sess...), 0)) // trailing byte
	f.Add([]byte("KLA1"))                          // magic only
	f.Add([]byte("KLA2\x81"))                      // future version
	lying := append([]byte(nil), full...)
	lying[5] = 0xFF // nonce length prefix lies
	f.Add(lying)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := DecodeBinaryRound(data)
		if err != nil {
			return
		}
		// Accepted frames must round-trip byte-identically.
		var enc []byte
		switch br.Kind {
		case FrameSessionResponse:
			enc = AppendSessionRound(nil, br.Session)
		case FrameQuoteResponse:
			enc, err = AppendQuoteRound(nil, br.Quote)
			if err != nil {
				t.Fatalf("decoded frame does not re-encode: %v", err)
			}
		default:
			t.Fatalf("decoder accepted unknown kind 0x%02x", br.Kind)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data, enc)
		}
	})
}

// FuzzDecodeRoundRequest gives the request decoder the same treatment.
func FuzzDecodeRoundRequest(f *testing.F) {
	q, err := AppendRoundRequest(nil, RoundRequest{
		Kind: FrameQuoteRequest, Nonce: bytes.Repeat([]byte{1}, 20), Offset: 3,
		EstablishID: [16]byte{1}, ReplacesID: [16]byte{2}})
	if err != nil {
		f.Fatal(err)
	}
	s, err := AppendRoundRequest(nil, RoundRequest{
		Kind: FrameSessionRequest, SessionID: [16]byte{5},
		Nonce: bytes.Repeat([]byte{2}, 20), Offset: 9})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(q)
	f.Add(s)
	f.Add(q[:7])
	f.Add([]byte("KLA1\x02"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRoundRequest(data)
		if err != nil {
			return
		}
		enc, err := AppendRoundRequest(nil, req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data, enc)
		}
	})
}
