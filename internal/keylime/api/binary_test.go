package api

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/tpm"
)

func sampleBinQuote() tpm.Quote {
	var digest, v0, v1, v2 tpm.Digest
	for i := range digest {
		digest[i] = byte(i)
		v0[i] = byte(i * 2)
		v1[i] = byte(i * 3)
		v2[i] = byte(i * 5)
	}
	return tpm.Quote{
		Attested: tpm.Attested{
			Nonce:           bytes.Repeat([]byte{0xAB}, 20),
			Selection:       []int{0, 4, 10},
			PCRDigest:       digest,
			FirmwareVersion: 0x0102030405060708,
		},
		PCRValues: []tpm.Digest{v0, v1, v2},
		Signature: bytes.Repeat([]byte{0xCD}, 71),
	}
}

func sampleFullRound() FullQuoteRound {
	return FullQuoteRound{
		Quote:         sampleBinQuote(),
		IMALog:        "10 aa... ima-ng sha256:deadbeef /usr/bin/true\n",
		Offset:        7,
		TotalEntries:  9,
		RunningKernel: "6.8.0-test",
		MBLog: []WireBootEvent{
			{PCR: 0, Type: "EV_POST_CODE", Description: "firmware v1", Digest: "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff"},
			{PCR: 4, Type: "EV_EFI_BOOT_SERVICES_APPLICATION", Description: "shim", Digest: "ffeeddccbbaa99887766554433221100ffeeddccbbaa99887766554433221100"},
		},
		SessionEstablished: true,
	}
}

func TestRoundRequestRoundTrip(t *testing.T) {
	cases := []RoundRequest{
		{Kind: FrameQuoteRequest, Nonce: bytes.Repeat([]byte{1}, 20), Offset: 42},
		{Kind: FrameQuoteRequest, Nonce: bytes.Repeat([]byte{2}, 20), Offset: 0,
			EstablishID: [16]byte{1, 2, 3}, ReplacesID: [16]byte{4, 5, 6}},
		{Kind: FrameSessionRequest, Nonce: bytes.Repeat([]byte{3}, 20), Offset: 999,
			SessionID: [16]byte{9, 9, 9}},
		{Kind: FrameSessionRequest, Nonce: bytes.Repeat([]byte{4}, 20), Offset: 1,
			SessionID: [16]byte{8}, EstablishID: [16]byte{7}},
	}
	for i, want := range cases {
		enc, err := AppendRoundRequest(nil, want)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, err := DecodeRoundRequest(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestQuoteRoundTrip(t *testing.T) {
	want := sampleFullRound()
	enc, err := AppendQuoteRound(nil, want)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	br, err := DecodeBinaryRound(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if br.Kind != FrameQuoteResponse {
		t.Fatalf("kind = 0x%02x", br.Kind)
	}
	if !reflect.DeepEqual(br.Quote, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", br.Quote, want)
	}
}

func TestSessionRoundTrip(t *testing.T) {
	var want SessionRound
	want.TotalEntries = 123456
	for i := range want.Composite {
		want.Composite[i] = byte(i)
	}
	for i := range want.MAC {
		want.MAC[i] = byte(255 - i)
	}
	enc := AppendSessionRound(nil, want)
	if len(enc) != SessionRoundSize {
		t.Fatalf("encoded session round is %d bytes; want %d", len(enc), SessionRoundSize)
	}
	br, err := DecodeBinaryRound(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if br.Kind != FrameSessionResponse || !reflect.DeepEqual(br.Session, want) {
		t.Fatalf("round trip mismatch: %+v", br)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full, err := AppendQuoteRound(nil, sampleFullRound())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(full); n++ {
		if _, err := DecodeBinaryRound(full[:n]); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", n, len(full))
		}
	}
	sess := AppendSessionRound(nil, SessionRound{TotalEntries: 5})
	for n := 0; n < len(sess); n++ {
		if _, err := DecodeBinaryRound(sess[:n]); err == nil {
			t.Fatalf("session truncation at %d/%d bytes accepted", n, len(sess))
		}
	}
	req, err := AppendRoundRequest(nil, RoundRequest{Kind: FrameSessionRequest,
		SessionID: [16]byte{1}, Nonce: bytes.Repeat([]byte{7}, 20), Offset: 3})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(req); n++ {
		if _, err := DecodeRoundRequest(req[:n]); err == nil {
			t.Fatalf("request truncation at %d/%d bytes accepted", n, len(req))
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	enc := AppendSessionRound(nil, SessionRound{TotalEntries: 5})
	if _, err := DecodeBinaryRound(append(enc, 0x00)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte: err = %v; want ErrBadFrame", err)
	}
	req, _ := AppendRoundRequest(nil, RoundRequest{Kind: FrameQuoteRequest, Nonce: []byte{1}, Offset: 1})
	if _, err := DecodeRoundRequest(append(req, 0xFF)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing request byte: err = %v; want ErrBadFrame", err)
	}
}

func TestDecodeRejectsLyingLengthPrefix(t *testing.T) {
	enc, err := AppendQuoteRound(nil, sampleFullRound())
	if err != nil {
		t.Fatal(err)
	}
	// The IMA log u32 length sits after nonce(2+20) + sel(1+3) + digest(32)
	// + fw(8) + vals(1+96) + sig(2+71) = offsets from the 5-byte header.
	logLenOff := 5 + 2 + 20 + 1 + 3 + 32 + 8 + 1 + 96 + 2 + 71
	lying := append([]byte(nil), enc...)
	lying[logLenOff] = 0xFF // claims a ~4GB log in a small buffer
	if _, err := DecodeBinaryRound(lying); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("lying length prefix: err = %v; want ErrBadFrame", err)
	}
}

func TestDecodeRejectsBadMagicAndKind(t *testing.T) {
	enc := AppendSessionRound(nil, SessionRound{})
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := DecodeBinaryRound(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic: err = %v", err)
	}
	// A future/mixed version frame: right magic, unknown kind.
	vers := append([]byte(nil), enc...)
	vers[4] = 0x7F
	if _, err := DecodeBinaryRound(vers); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("unknown kind: err = %v", err)
	}
	if _, err := DecodeRoundRequest(vers); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("response kind as request: err = %v", err)
	}
}

func TestDecodeRejectsOversizedCounts(t *testing.T) {
	q := sampleFullRound()
	q.Quote.Attested.Selection = make([]int, maxSelection+1)
	if _, err := AppendQuoteRound(nil, q); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("encode oversized selection: err = %v", err)
	}
	// Hand-craft a frame claiming 200 PCR values.
	enc, err := AppendQuoteRound(nil, sampleFullRound())
	if err != nil {
		t.Fatal(err)
	}
	valCountOff := 5 + 2 + 20 + 1 + 3 + 32 + 8
	bad := append([]byte(nil), enc...)
	bad[valCountOff] = 200
	if _, err := DecodeBinaryRound(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized value count: err = %v", err)
	}
}

func TestSessionRoundEncodeDecodeAllocFree(t *testing.T) {
	var s SessionRound
	s.TotalEntries = 10
	buf := make([]byte, 0, 128)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendSessionRound(buf[:0], s)
		br, err := DecodeBinaryRound(buf)
		if err != nil || br.Kind != FrameSessionResponse {
			t.Fatal("decode failed")
		}
	})
	if allocs > 0 {
		t.Fatalf("session round encode+decode allocates %.1f/op; want 0", allocs)
	}
}
