// Package api defines the JSON wire types spoken between the Keylime
// components (agent, registrar, verifier, tenant) and the conversions
// between wire and internal representations. The shapes mirror Keylime's
// REST API (versioned /v2 endpoints, base64/hex encodings) reduced to the
// fields continuous integrity attestation uses.
package api

import (
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/measuredboot"
	"repro/internal/tpm"
)

// Sentinel errors.
var (
	ErrBadEncoding = errors.New("api: bad field encoding")
)

// RegisterRequest enrolls an agent with the registrar.
type RegisterRequest struct {
	AgentID string `json:"agent_id"`
	// EKCert is the endorsement certificate, base64 DER.
	EKCert string `json:"ek_cert"`
	// EKIntermediates are intermediate CA certificates (base64 DER) the
	// EK chains through (vTPM guests chain through their host CA).
	EKIntermediates []string `json:"ek_intermediates,omitempty"`
	// AKPub is the attestation public key, base64 PKIX DER.
	AKPub string `json:"ak_pub"`
	// ContactURL is where the verifier can reach the agent's quote API.
	ContactURL string `json:"contact_url"`
}

// RegisterResponse carries the credential-activation challenge.
type RegisterResponse struct {
	// EncryptedSecret is the RSA-OAEP blob only the genuine EK can open.
	EncryptedSecret string `json:"encrypted_secret"`
	// AKNameBound is the hex AK name the challenge is bound to.
	AKNameBound string `json:"ak_name_bound"`
}

// ActivateRequest completes enrollment with the recovered proof.
type ActivateRequest struct {
	AgentID string `json:"agent_id"`
	// Proof is the hex HMAC proving the TPM recovered the secret.
	Proof string `json:"proof"`
}

// AgentInfo is the registrar's record of an enrolled agent.
type AgentInfo struct {
	AgentID    string `json:"agent_id"`
	AKPub      string `json:"ak_pub"`
	ContactURL string `json:"contact_url"`
	Active     bool   `json:"active"`
}

// WireQuote is the JSON form of a TPM quote.
type WireQuote struct {
	// NonceB64 is the qualifying data, base64.
	NonceB64 string `json:"nonce"`
	// Selection lists quoted PCR indices.
	Selection []int `json:"selection"`
	// PCRDigest is the attested composite, hex.
	PCRDigest string `json:"pcr_digest"`
	// FirmwareVersion mirrors the attested clock field.
	FirmwareVersion uint64 `json:"firmware_version"`
	// PCRValues are the raw register values, hex, in selection order.
	PCRValues []string `json:"pcr_values"`
	// Signature is the AK's ASN.1 ECDSA signature, base64.
	Signature string `json:"signature"`
}

// WireBootEvent is one measured-boot event on the wire.
type WireBootEvent struct {
	PCR         int    `json:"pcr"`
	Type        string `json:"type"`
	Description string `json:"description"`
	// Digest is hex SHA-256.
	Digest string `json:"digest"`
}

// QuoteResponse is the agent's answer to an integrity-quote request.
type QuoteResponse struct {
	Quote WireQuote `json:"quote"`
	// IMALog is the ASCII measurement list starting at the requested
	// offset (Keylime's incremental log fetch).
	IMALog string `json:"ima_measurement_list"`
	// Offset echoes the requested starting entry index.
	Offset int `json:"ima_ml_offset"`
	// TotalEntries is the full measurement list length; a value smaller
	// than the verifier's stored offset signals a reboot.
	TotalEntries int `json:"ima_ml_entries"`
	// BootCount would let the verifier disambiguate reboots; the log
	// length check suffices here.
	RunningKernel string `json:"running_kernel,omitempty"`
	// MBLog is the measured-boot event log (Keylime's mb_measurement_list).
	MBLog []WireBootEvent `json:"mb_measurement_list,omitempty"`
}

// EncodeBootLog converts a measured-boot log to wire form.
func EncodeBootLog(l measuredboot.Log) []WireBootEvent {
	out := make([]WireBootEvent, len(l))
	for i, e := range l {
		out[i] = WireBootEvent{
			PCR:         e.PCR,
			Type:        e.Type.String(),
			Description: e.Description,
			Digest:      hex.EncodeToString(e.Digest[:]),
		}
	}
	return out
}

// DecodeBootLog converts wire events back to a measured-boot log. Event
// types travel as labels; the digest/PCR content is what validation uses.
func DecodeBootLog(events []WireBootEvent) (measuredboot.Log, error) {
	out := make(measuredboot.Log, len(events))
	for i, e := range events {
		d, err := decodeDigest(e.Digest)
		if err != nil {
			return nil, fmt.Errorf("%w: mb event %d digest: %v", ErrBadEncoding, i, err)
		}
		out[i] = measuredboot.Event{PCR: e.PCR, Description: e.Description, Digest: d}
	}
	return out, nil
}

// EncodeQuote converts an internal quote to the wire form.
func EncodeQuote(q tpm.Quote) WireQuote {
	wq := WireQuote{
		NonceB64:        base64.StdEncoding.EncodeToString(q.Attested.Nonce),
		Selection:       append([]int(nil), q.Attested.Selection...),
		PCRDigest:       hex.EncodeToString(q.Attested.PCRDigest[:]),
		FirmwareVersion: q.Attested.FirmwareVersion,
		Signature:       base64.StdEncoding.EncodeToString(q.Signature),
	}
	wq.PCRValues = make([]string, len(q.PCRValues))
	for i, v := range q.PCRValues {
		wq.PCRValues[i] = hex.EncodeToString(v[:])
	}
	return wq
}

// DecodeQuote converts a wire quote back to the internal form.
func DecodeQuote(wq WireQuote) (tpm.Quote, error) {
	nonce, err := base64.StdEncoding.DecodeString(wq.NonceB64)
	if err != nil {
		return tpm.Quote{}, fmt.Errorf("%w: nonce: %v", ErrBadEncoding, err)
	}
	sig, err := base64.StdEncoding.DecodeString(wq.Signature)
	if err != nil {
		return tpm.Quote{}, fmt.Errorf("%w: signature: %v", ErrBadEncoding, err)
	}
	pcrDigest, err := decodeDigest(wq.PCRDigest)
	if err != nil {
		return tpm.Quote{}, fmt.Errorf("%w: pcr_digest: %v", ErrBadEncoding, err)
	}
	q := tpm.Quote{
		Attested: tpm.Attested{
			Nonce:           nonce,
			Selection:       append([]int(nil), wq.Selection...),
			PCRDigest:       pcrDigest,
			FirmwareVersion: wq.FirmwareVersion,
		},
		Signature: sig,
	}
	q.PCRValues = make([]tpm.Digest, len(wq.PCRValues))
	for i, h := range wq.PCRValues {
		v, err := decodeDigest(h)
		if err != nil {
			return tpm.Quote{}, fmt.Errorf("%w: pcr_values[%d]: %v", ErrBadEncoding, i, err)
		}
		q.PCRValues[i] = v
	}
	return q, nil
}

func decodeDigest(h string) (tpm.Digest, error) {
	var d tpm.Digest
	raw, err := hex.DecodeString(h)
	if err != nil {
		return d, err
	}
	if len(raw) != len(d) {
		return d, fmt.Errorf("digest is %d bytes, want %d", len(raw), len(d))
	}
	copy(d[:], raw)
	return d, nil
}

// ErrorResponse is the uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
}
