package api

import (
	"crypto/rand"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/tpm"
)

func sampleQuote(t *testing.T) (tpm.Quote, []byte) {
	t.Helper()
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	dev, err := tpm.New(ca, tpm.WithEKBits(1024))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	akPub, err := dev.CreateAK()
	if err != nil {
		t.Fatalf("CreateAK: %v", err)
	}
	if err := dev.PCRs().Extend(tpm.PCRIMA, tpm.Digest{1, 2, 3}); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	q, err := dev.Quote([]byte("nonce-1"), []int{tpm.PCRBootAggregate, tpm.PCRIMA})
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	return q, akPub
}

func TestQuoteEncodeDecodeRoundTrip(t *testing.T) {
	q, akPub := sampleQuote(t)
	wire := EncodeQuote(q)
	back, err := DecodeQuote(wire)
	if err != nil {
		t.Fatalf("DecodeQuote: %v", err)
	}
	// The decoded quote must still verify — the strongest round-trip check.
	if _, err := tpm.VerifyQuote(akPub, back, []byte("nonce-1")); err != nil {
		t.Fatalf("VerifyQuote after round trip: %v", err)
	}
}

func TestQuoteJSONRoundTrip(t *testing.T) {
	q, akPub := sampleQuote(t)
	data, err := json.Marshal(EncodeQuote(q))
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var wire WireQuote
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	back, err := DecodeQuote(wire)
	if err != nil {
		t.Fatalf("DecodeQuote: %v", err)
	}
	if _, err := tpm.VerifyQuote(akPub, back, []byte("nonce-1")); err != nil {
		t.Fatalf("VerifyQuote after JSON round trip: %v", err)
	}
}

func TestDecodeQuoteBadFields(t *testing.T) {
	q, _ := sampleQuote(t)
	good := EncodeQuote(q)

	cases := map[string]func(w *WireQuote){
		"nonce":      func(w *WireQuote) { w.NonceB64 = "%%%" },
		"signature":  func(w *WireQuote) { w.Signature = "%%%" },
		"pcr_digest": func(w *WireQuote) { w.PCRDigest = "zz" },
		"pcr_values": func(w *WireQuote) { w.PCRValues = []string{"zz"} },
		"pcr_len":    func(w *WireQuote) { w.PCRDigest = "00" },
	}
	for name, corrupt := range cases {
		w := good
		w.PCRValues = append([]string(nil), good.PCRValues...)
		corrupt(&w)
		if _, err := DecodeQuote(w); !errors.Is(err, ErrBadEncoding) {
			t.Fatalf("%s: err = %v, want ErrBadEncoding", name, err)
		}
	}
}

func TestDecodeQuotePreservesSelection(t *testing.T) {
	q, _ := sampleQuote(t)
	back, err := DecodeQuote(EncodeQuote(q))
	if err != nil {
		t.Fatalf("DecodeQuote: %v", err)
	}
	if len(back.Attested.Selection) != 2 ||
		back.Attested.Selection[0] != tpm.PCRBootAggregate ||
		back.Attested.Selection[1] != tpm.PCRIMA {
		t.Fatalf("selection = %v", back.Attested.Selection)
	}
}
