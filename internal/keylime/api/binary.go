package api

// Compact binary wire format for the attestation round ("KLA1").
//
// The JSON quote round moves ~23KB and ~256 allocs for a zero-entry
// delta; the binary format carries the same evidence length-prefixed and
// fixed-width, and carries the sessioned-attestation round (a ~77-byte
// MAC frame) that JSON never needs to express. Negotiation is by
// content type: the verifier POSTs a request frame with Content-Type
// application/x-keylime-attest-v1 to /v2/quotes/attest; agents that do
// not speak it answer 404/405/415 and the verifier falls back to the
// JSON GET endpoint. JSON remains the format for the tenant CLI and all
// management surfaces.
//
// Frame layout (all integers big-endian):
//
//	"KLA1" | kind u8 | body
//
//	kind 0x01 quote request:
//	  u8 nonceLen | nonce | u64 offset | u8 flags | [16 establishID] | [16 replacesID]
//	  flags: bit0 = establishID present, bit1 = replacesID present
//	kind 0x02 session request:
//	  16 sessionID | u8 nonceLen | nonce | u64 offset | u8 flags | [16 establishID]
//	  flags: bit0 = establishID present (renew hint for escalations)
//	kind 0x81 quote response:
//	  u16 nonceLen | nonce
//	  u8 selCount | selCount × u8 PCR index
//	  32 pcrDigest | u64 firmwareVersion
//	  u8 valCount | valCount × 32 PCR value
//	  u16 sigLen | sig
//	  u32 imaLogLen | imaLog
//	  u64 offset | u64 total
//	  u8 kernelLen | kernel
//	  u16 mbCount | mbCount × { u8 pcr | u8 typeLen | type | u16 descLen | desc | 32 digest }
//	  u8 established
//	kind 0x82 session response:
//	  u64 total | 32 composite | 32 mac
//
// Every length prefix is bounds-checked against the remaining buffer
// before the read, so a lying prefix fails cleanly with ErrBadFrame
// instead of over-reading; trailing bytes after a complete frame are
// rejected so frames cannot smuggle a second payload.

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/tpm"
)

// ContentTypeBinary negotiates the binary attestation round.
const ContentTypeBinary = "application/x-keylime-attest-v1"

// AttestPath is the agent endpoint serving binary rounds.
const AttestPath = "/v2/quotes/attest"

// binaryMagic identifies (and versions) a binary attestation frame.
const binaryMagic = "KLA1"

// Frame kinds. Requests have the high bit clear, responses set.
const (
	FrameQuoteRequest   byte = 0x01
	FrameSessionRequest byte = 0x02
	FrameQuoteResponse  byte = 0x81
	FrameSessionResponse byte = 0x82
)

// ErrBadFrame reports a structurally invalid binary frame.
var ErrBadFrame = errors.New("api: bad binary attestation frame")

const (
	sessionIDSize = 16
	macSize       = 32

	flagEstablish byte = 1 << 0
	flagReplaces  byte = 1 << 1

	// maxSelection caps PCR selection/value counts well above any real
	// quote (a TPM bank has 24 PCRs) but far below abuse territory.
	maxSelection = 64
	// MaxRequestFrame bounds a request read: magic+kind+IDs+nonce+offset
	// fit in well under 128 bytes.
	MaxRequestFrame = 256
	// MaxResponseFrame bounds a response read; the IMA log dominates.
	MaxResponseFrame = 64 << 20
)

// RoundRequest is the decoded form of a request frame. SessionID is only
// meaningful for FrameSessionRequest; EstablishID/ReplacesID are zero
// when absent.
type RoundRequest struct {
	Kind        byte
	Nonce       []byte
	Offset      int
	SessionID   [sessionIDSize]byte
	EstablishID [sessionIDSize]byte
	ReplacesID  [sessionIDSize]byte
}

// FullQuoteRound is the binary equivalent of QuoteResponse, carrying the
// quote structurally instead of base64/hex-encoded.
type FullQuoteRound struct {
	Quote              tpm.Quote
	IMALog             string
	Offset             int
	TotalEntries       int
	RunningKernel      string
	MBLog              []WireBootEvent
	SessionEstablished bool
}

// SessionRound is the steady-state session answer: the agent's log
// frontier, its live PCR composite over the quoted selection, and the
// session MAC over (nonce, composite, frontier).
type SessionRound struct {
	TotalEntries int
	Composite    tpm.Digest
	MAC          [macSize]byte
}

// BinaryRound is a decoded response frame: exactly one of Quote or
// Session is meaningful, selected by Kind.
type BinaryRound struct {
	Kind    byte
	Quote   FullQuoteRound
	Session SessionRound
}

// frameBufs pools encode/read buffers for binary frames so steady-state
// rounds do not allocate per request.
var frameBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf returns a pooled frame buffer with length zero.
func GetBuf() *[]byte {
	b := frameBufs.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a buffer obtained from GetBuf to the pool.
func PutBuf(b *[]byte) {
	if cap(*b) > MaxResponseFrame/16 {
		return // don't cache unbounded growth
	}
	frameBufs.Put(b)
}

// ReadFrame reads a whole frame from r into the pooled buffer at buf,
// growing it as needed and failing once the frame exceeds limit. The
// returned slice aliases *buf.
func ReadFrame(r io.Reader, buf *[]byte, limit int) ([]byte, error) {
	b := (*buf)[:0]
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if len(b) > limit {
			*buf = b
			return nil, fmt.Errorf("%w: frame exceeds %d bytes", ErrBadFrame, limit)
		}
		if err == io.EOF {
			*buf = b
			return b, nil
		}
		if err != nil {
			*buf = b
			return nil, err
		}
	}
}

// ---- encoding ----

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendRoundRequest encodes a request frame onto dst.
func AppendRoundRequest(dst []byte, req RoundRequest) ([]byte, error) {
	if len(req.Nonce) > 255 {
		return dst, fmt.Errorf("%w: nonce too long (%d)", ErrBadFrame, len(req.Nonce))
	}
	dst = append(dst, binaryMagic...)
	dst = append(dst, req.Kind)
	switch req.Kind {
	case FrameQuoteRequest:
		dst = append(dst, byte(len(req.Nonce)))
		dst = append(dst, req.Nonce...)
		dst = appendU64(dst, uint64(req.Offset))
		var flags byte
		if req.EstablishID != ([sessionIDSize]byte{}) {
			flags |= flagEstablish
		}
		if req.ReplacesID != ([sessionIDSize]byte{}) {
			flags |= flagReplaces
		}
		dst = append(dst, flags)
		if flags&flagEstablish != 0 {
			dst = append(dst, req.EstablishID[:]...)
		}
		if flags&flagReplaces != 0 {
			dst = append(dst, req.ReplacesID[:]...)
		}
	case FrameSessionRequest:
		dst = append(dst, req.SessionID[:]...)
		dst = append(dst, byte(len(req.Nonce)))
		dst = append(dst, req.Nonce...)
		dst = appendU64(dst, uint64(req.Offset))
		var flags byte
		if req.EstablishID != ([sessionIDSize]byte{}) {
			flags |= flagEstablish
		}
		dst = append(dst, flags)
		if flags&flagEstablish != 0 {
			dst = append(dst, req.EstablishID[:]...)
		}
	default:
		return dst, fmt.Errorf("%w: unknown request kind 0x%02x", ErrBadFrame, req.Kind)
	}
	return dst, nil
}

// AppendQuoteRound encodes a full-quote response frame onto dst.
func AppendQuoteRound(dst []byte, q FullQuoteRound) ([]byte, error) {
	if len(q.Quote.Attested.Nonce) > 0xFFFF || len(q.Quote.Signature) > 0xFFFF ||
		len(q.Quote.Attested.Selection) > maxSelection || len(q.Quote.PCRValues) > maxSelection ||
		len(q.RunningKernel) > 255 || len(q.MBLog) > 0xFFFF || len(q.IMALog) > MaxResponseFrame/2 {
		return dst, fmt.Errorf("%w: quote round field over wire limits", ErrBadFrame)
	}
	dst = append(dst, binaryMagic...)
	dst = append(dst, FrameQuoteResponse)
	dst = appendU16(dst, uint16(len(q.Quote.Attested.Nonce)))
	dst = append(dst, q.Quote.Attested.Nonce...)
	dst = append(dst, byte(len(q.Quote.Attested.Selection)))
	for _, pcr := range q.Quote.Attested.Selection {
		if pcr < 0 || pcr > 255 {
			return dst, fmt.Errorf("%w: PCR index %d out of range", ErrBadFrame, pcr)
		}
		dst = append(dst, byte(pcr))
	}
	dst = append(dst, q.Quote.Attested.PCRDigest[:]...)
	dst = appendU64(dst, q.Quote.Attested.FirmwareVersion)
	dst = append(dst, byte(len(q.Quote.PCRValues)))
	for _, v := range q.Quote.PCRValues {
		dst = append(dst, v[:]...)
	}
	dst = appendU16(dst, uint16(len(q.Quote.Signature)))
	dst = append(dst, q.Quote.Signature...)
	dst = appendU32(dst, uint32(len(q.IMALog)))
	dst = append(dst, q.IMALog...)
	dst = appendU64(dst, uint64(q.Offset))
	dst = appendU64(dst, uint64(q.TotalEntries))
	dst = append(dst, byte(len(q.RunningKernel)))
	dst = append(dst, q.RunningKernel...)
	dst = appendU16(dst, uint16(len(q.MBLog)))
	for _, ev := range q.MBLog {
		if ev.PCR < 0 || ev.PCR > 255 || len(ev.Type) > 255 || len(ev.Description) > 0xFFFF {
			return dst, fmt.Errorf("%w: boot event field over wire limits", ErrBadFrame)
		}
		digest, err := decodeDigest(ev.Digest)
		if err != nil {
			return dst, fmt.Errorf("%w: boot event digest: %v", ErrBadFrame, err)
		}
		dst = append(dst, byte(ev.PCR))
		dst = append(dst, byte(len(ev.Type)))
		dst = append(dst, ev.Type...)
		dst = appendU16(dst, uint16(len(ev.Description)))
		dst = append(dst, ev.Description...)
		dst = append(dst, digest[:]...)
	}
	if q.SessionEstablished {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return dst, nil
}

// AppendSessionRound encodes a session response frame onto dst. The frame
// is fixed-size (77 bytes) and never fails.
func AppendSessionRound(dst []byte, s SessionRound) []byte {
	dst = append(dst, binaryMagic...)
	dst = append(dst, FrameSessionResponse)
	dst = appendU64(dst, uint64(s.TotalEntries))
	dst = append(dst, s.Composite[:]...)
	dst = append(dst, s.MAC[:]...)
	return dst
}

// SessionRoundSize is the exact encoded size of a session response frame.
const SessionRoundSize = len(binaryMagic) + 1 + 8 + len(tpm.Digest{}) + macSize

// ---- decoding ----

// frameReader is a bounds-checked cursor over one frame. Every read
// checks the remaining length first; on overrun it latches bad and all
// further reads return zero values.
type frameReader struct {
	b   []byte
	off int
	bad bool
}

func (r *frameReader) need(n int) bool {
	if r.bad || n < 0 || len(r.b)-r.off < n {
		r.bad = true
		return false
	}
	return true
}

func (r *frameReader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *frameReader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := uint16(r.b[r.off])<<8 | uint16(r.b[r.off+1])
	r.off += 2
	return v
}

func (r *frameReader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	b := r.b[r.off:]
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	r.off += 4
	return v
}

func (r *frameReader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	b := r.b[r.off:]
	v := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	r.off += 8
	return v
}

// view returns n bytes aliasing the frame buffer (no copy).
func (r *frameReader) view(n int) []byte {
	if !r.need(n) {
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

// take returns an owned copy of n bytes.
func (r *frameReader) take(n int) []byte {
	v := r.view(n)
	if v == nil {
		return nil
	}
	return append([]byte(nil), v...)
}

func (r *frameReader) digest() (d tpm.Digest) {
	v := r.view(len(d))
	if v != nil {
		copy(d[:], v)
	}
	return d
}

func (r *frameReader) sessionID() (id [sessionIDSize]byte) {
	v := r.view(sessionIDSize)
	if v != nil {
		copy(id[:], v)
	}
	return id
}

// done reports whether the frame parsed cleanly with no trailing bytes.
func (r *frameReader) done() bool {
	return !r.bad && r.off == len(r.b)
}

func checkMagic(r *frameReader) bool {
	m := r.view(len(binaryMagic))
	return m != nil && string(m) == binaryMagic
}

// intLen validates a decoded length against a cap and converts to int.
func (r *frameReader) intLen(v uint64, limit int) int {
	if v > uint64(limit) {
		r.bad = true
		return 0
	}
	return int(v)
}

// DecodeRoundRequest parses a request frame. The returned Nonce aliases
// data; callers that retain it past the buffer's lifetime must copy.
func DecodeRoundRequest(data []byte) (RoundRequest, error) {
	r := frameReader{b: data}
	var req RoundRequest
	if !checkMagic(&r) {
		return req, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	req.Kind = r.u8()
	switch req.Kind {
	case FrameQuoteRequest:
		req.Nonce = r.view(int(r.u8()))
		req.Offset = r.intLen(r.u64(), MaxResponseFrame)
		flags := r.u8()
		if flags&^(flagEstablish|flagReplaces) != 0 {
			return req, fmt.Errorf("%w: unknown request flags 0x%02x", ErrBadFrame, flags)
		}
		if flags&flagEstablish != 0 {
			if req.EstablishID = r.sessionID(); req.EstablishID == ([sessionIDSize]byte{}) && !r.bad {
				return req, fmt.Errorf("%w: zero establish ID", ErrBadFrame)
			}
		}
		if flags&flagReplaces != 0 {
			if req.ReplacesID = r.sessionID(); req.ReplacesID == ([sessionIDSize]byte{}) && !r.bad {
				return req, fmt.Errorf("%w: zero replaces ID", ErrBadFrame)
			}
		}
	case FrameSessionRequest:
		if req.SessionID = r.sessionID(); req.SessionID == ([sessionIDSize]byte{}) && !r.bad {
			return req, fmt.Errorf("%w: zero session ID", ErrBadFrame)
		}
		req.Nonce = r.view(int(r.u8()))
		req.Offset = r.intLen(r.u64(), MaxResponseFrame)
		flags := r.u8()
		if flags&^flagEstablish != 0 {
			return req, fmt.Errorf("%w: unknown request flags 0x%02x", ErrBadFrame, flags)
		}
		if flags&flagEstablish != 0 {
			if req.EstablishID = r.sessionID(); req.EstablishID == ([sessionIDSize]byte{}) && !r.bad {
				return req, fmt.Errorf("%w: zero establish ID", ErrBadFrame)
			}
		}
	default:
		return req, fmt.Errorf("%w: unknown request kind 0x%02x", ErrBadFrame, req.Kind)
	}
	if !r.done() {
		return req, ErrBadFrame
	}
	return req, nil
}

// DecodeBinaryRound parses a response frame (either kind). Decoded
// byte fields are owned copies; data may be reused after return.
func DecodeBinaryRound(data []byte) (BinaryRound, error) {
	r := frameReader{b: data}
	var out BinaryRound
	if !checkMagic(&r) {
		return out, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	out.Kind = r.u8()
	switch out.Kind {
	case FrameSessionResponse:
		out.Session.TotalEntries = r.intLen(r.u64(), MaxResponseFrame)
		out.Session.Composite = r.digest()
		mac := r.view(macSize)
		if mac != nil {
			copy(out.Session.MAC[:], mac)
		}
	case FrameQuoteResponse:
		q := &out.Quote
		q.Quote.Attested.Nonce = r.take(int(r.u16()))
		selCount := int(r.u8())
		if selCount > maxSelection {
			return out, fmt.Errorf("%w: selection count %d", ErrBadFrame, selCount)
		}
		if r.need(selCount) {
			q.Quote.Attested.Selection = make([]int, selCount)
			for i := range q.Quote.Attested.Selection {
				q.Quote.Attested.Selection[i] = int(r.u8())
			}
		}
		q.Quote.Attested.PCRDigest = r.digest()
		q.Quote.Attested.FirmwareVersion = r.u64()
		valCount := int(r.u8())
		if valCount > maxSelection {
			return out, fmt.Errorf("%w: value count %d", ErrBadFrame, valCount)
		}
		if r.need(valCount * len(tpm.Digest{})) {
			q.Quote.PCRValues = make([]tpm.Digest, valCount)
			for i := range q.Quote.PCRValues {
				q.Quote.PCRValues[i] = r.digest()
			}
		}
		q.Quote.Signature = r.take(int(r.u16()))
		logLen := r.intLen(uint64(r.u32()), MaxResponseFrame)
		if v := r.view(logLen); v != nil {
			q.IMALog = string(v)
		}
		q.Offset = r.intLen(r.u64(), MaxResponseFrame)
		q.TotalEntries = r.intLen(r.u64(), MaxResponseFrame)
		if v := r.view(int(r.u8())); v != nil {
			q.RunningKernel = string(v)
		}
		mbCount := int(r.u16())
		if mbCount > 0 && r.need(mbCount) { // ≥1 byte per event
			q.MBLog = make([]WireBootEvent, 0, mbCount)
			for i := 0; i < mbCount && !r.bad; i++ {
				var ev WireBootEvent
				ev.PCR = int(r.u8())
				if v := r.view(int(r.u8())); v != nil {
					ev.Type = string(v)
				}
				if v := r.view(int(r.u16())); v != nil {
					ev.Description = string(v)
				}
				ev.Digest = fmt.Sprintf("%x", r.digest())
				q.MBLog = append(q.MBLog, ev)
			}
		}
		switch r.u8() {
		case 0:
		case 1:
			q.SessionEstablished = true
		default:
			return out, fmt.Errorf("%w: bad established flag", ErrBadFrame)
		}
	default:
		return out, fmt.Errorf("%w: unknown response kind 0x%02x", ErrBadFrame, out.Kind)
	}
	if !r.done() {
		return out, ErrBadFrame
	}
	return out, nil
}
