package store_test

// Crash-injection suite for the durability layer: a fixed workload of
// puts, deletes, and compactions runs against a FaultFS that kills the
// simulated process at every byte offset and every operation boundary in
// turn; after each crash the store is reopened over the surviving bytes
// and must satisfy the recovery invariants:
//
//   - every acknowledged mutation is present (no recorded verdict lost);
//   - nothing beyond the single in-flight mutation is present (the store
//     never invents or resurrects state);
//   - the store accepts new writes after recovery.

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/keylime/faultinject"
	"repro/internal/keylime/store"
)

// crashOp is one step of the crash workload.
type crashOp struct {
	kind string // "put", "delete", "compact"
	key  string
	val  string
}

// crashWorkload exercises every store write path: journal appends,
// overwrite, delete, snapshot compaction (temp write + rename + journal
// reset), and post-compaction appends.
var crashWorkload = []crashOp{
	{kind: "put", key: "agent-a", val: "frontier:10"},
	{kind: "put", key: "agent-b", val: "frontier:4"},
	{kind: "put", key: "agent-a", val: "frontier:17"},
	{kind: "delete", key: "agent-b"},
	{kind: "put", key: "agent-c", val: "frontier:2"},
	{kind: "compact"},
	{kind: "put", key: "agent-d", val: "frontier:9"},
	{kind: "put", key: "agent-a", val: "frontier:23"},
	{kind: "compact"},
	{kind: "put", key: "agent-c", val: "frontier:11"},
}

// applyCrashOp folds one op into the model state.
func applyCrashOp(model map[string]string, o crashOp) {
	switch o.kind {
	case "put":
		model[o.key] = o.val
	case "delete":
		delete(model, o.key)
	}
}

// modelAfter returns the expected state after the first n ops.
func modelAfter(n int) map[string]string {
	m := make(map[string]string)
	for _, o := range crashWorkload[:n] {
		applyCrashOp(m, o)
	}
	return m
}

// runCrashWorkload executes the workload until an op errors. It returns
// how many ops were acknowledged and how many were started (started ==
// acked, or acked+1 when the final op failed mid-flight). A failure to
// even open the store reports 0/0.
func runCrashWorkload(fsys store.FS, dir string) (acked, started int) {
	s, err := store.Open(dir, store.WithStoreFS(fsys), store.WithAutoCompact(0))
	if err != nil {
		return 0, 0
	}
	defer func() { _ = s.Close() }()
	for _, o := range crashWorkload {
		started++
		switch o.kind {
		case "put":
			err = s.Put(o.key, []byte(o.val))
		case "delete":
			err = s.Delete(o.key)
		case "compact":
			err = s.Compact()
		}
		if err != nil {
			return acked, started
		}
		acked++
	}
	return acked, started
}

// checkRecovered opens the crashed directory with a clean filesystem and
// asserts the recovery invariants.
func checkRecovered(t *testing.T, label, dir string, acked, started int) {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer func() { _ = s.Close() }()
	got := s.All()
	okAgainst := func(model map[string]string) bool {
		if len(got) != len(model) {
			return false
		}
		for k, v := range model {
			if string(got[k]) != v {
				return false
			}
		}
		return true
	}
	// The recovered state must match either everything acknowledged, or
	// that plus the single in-flight op (whose bytes may have become
	// durable before the crash landed).
	if !okAgainst(modelAfter(acked)) && !okAgainst(modelAfter(started)) {
		t.Fatalf("%s: recovered state %v matches neither %d nor %d acked ops",
			label, got, acked, started)
	}
	// Recovery must leave a writable store behind.
	if err := s.Put("post-crash", []byte("accepted")); err != nil {
		t.Fatalf("%s: store rejects writes after recovery: %v", label, err)
	}
}

func TestStoreCrashAtEveryByte(t *testing.T) {
	base := t.TempDir()
	countFS := faultinject.NewFaultFS()
	if acked, _ := runCrashWorkload(countFS, filepath.Join(base, "count")); acked != len(crashWorkload) {
		t.Fatalf("fault-free pass acked %d of %d ops", acked, len(crashWorkload))
	}
	total := countFS.Counters().WriteBytes
	if total == 0 {
		t.Fatal("counting pass saw no writes")
	}
	for k := int64(1); k <= total; k++ {
		dir := filepath.Join(base, fmt.Sprintf("byte-%04d", k))
		ffs := faultinject.NewFaultFS()
		ffs.CrashAfterBytes = k
		acked, started := runCrashWorkload(ffs, dir)
		if k < total && !ffs.Crashed() {
			t.Fatalf("byte %d: crash never fired", k)
		}
		checkRecovered(t, fmt.Sprintf("crash after byte %d", k), dir, acked, started)
	}
}

func TestStoreCrashAtEveryOp(t *testing.T) {
	base := t.TempDir()
	countFS := faultinject.NewFaultFS()
	if acked, _ := runCrashWorkload(countFS, filepath.Join(base, "count")); acked != len(crashWorkload) {
		t.Fatalf("fault-free pass acked %d of %d ops", acked, len(crashWorkload))
	}
	totalOps := countFS.Counters().MutatingOps
	for n := 1; n <= totalOps; n++ {
		dir := filepath.Join(base, fmt.Sprintf("op-%04d", n))
		ffs := faultinject.NewFaultFS()
		ffs.CrashBeforeOp = n
		acked, started := runCrashWorkload(ffs, dir)
		if !ffs.Crashed() {
			t.Fatalf("op %d: crash never fired", n)
		}
		checkRecovered(t, fmt.Sprintf("crash before op %d (%d acked)", n, acked), dir, acked, started)
	}
}

// TestStoreCrashDuringRecoveryTruncation kills the process while recovery
// itself is truncating a torn tail, then recovers again: recovery must be
// idempotent.
func TestStoreCrashDuringRecoveryTruncation(t *testing.T) {
	dir := t.TempDir()
	// Produce a directory with a torn journal tail.
	ffs := faultinject.NewFaultFS()
	count := faultinject.NewFaultFS()
	acked0, _ := runCrashWorkload(count, filepath.Join(t.TempDir(), "count"))
	if acked0 != len(crashWorkload) {
		t.Fatalf("count pass acked %d", acked0)
	}
	ffs.CrashAfterBytes = count.Counters().WriteBytes - 3
	acked, started := runCrashWorkload(ffs, dir)

	// First recovery attempt dies immediately (before any repair write).
	ffs2 := faultinject.NewFaultFS()
	ffs2.CrashBeforeOp = 1
	if _, err := store.Open(dir, store.WithStoreFS(ffs2)); err == nil {
		// The torn tail may not require a repair write if the crash point
		// landed exactly on a record boundary; that is fine.
		t.Log("recovery needed no mutating op at this crash point")
	}
	// Second recovery over a clean filesystem must succeed with the same
	// invariants.
	checkRecovered(t, "recovery after crashed recovery", dir, acked, started)
}
