package store_test

// Batched-append and group-commit suite: prefix durability of a torn
// batched write (crash at every byte and every op boundary), rollback of
// a partially-written batch, and the concurrency + fsync-count contract
// of the background group-commit mode.

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/keylime/faultinject"
	"repro/internal/keylime/store"
)

// batchWorkload is a fixed sequence of PutBatch calls exercising mixed
// puts/deletes, overwrites, and a compaction between batches.
var batchWorkload = [][]store.KV{
	{
		{Key: "agent-a", Value: []byte("frontier:10")},
		{Key: "agent-b", Value: []byte("frontier:4")},
		{Key: "agent-c", Value: []byte("frontier:2")},
	},
	{
		{Key: "agent-a", Value: []byte("frontier:17")},
		{Key: "agent-b", Delete: true},
		{Key: "agent-d", Value: []byte("frontier:9")},
		{Key: "agent-e", Value: []byte("frontier:1")},
	},
	{
		{Key: "agent-c", Value: []byte("frontier:11")},
		{Key: "agent-d", Delete: true},
		{Key: "agent-a", Value: []byte("frontier:23")},
	},
}

// runBatchCrashWorkload runs the batches (with a compaction between the
// second and third) until one errors. acked/started count batches.
func runBatchCrashWorkload(fsys store.FS, dir string) (acked, started int) {
	s, err := store.Open(dir, store.WithStoreFS(fsys), store.WithAutoCompact(0))
	if err != nil {
		return 0, 0
	}
	defer func() { _ = s.Close() }()
	for i, batch := range batchWorkload {
		if i == 2 {
			if err := s.Compact(); err != nil {
				return acked, started
			}
		}
		started++
		if err := s.PutBatch(batch); err != nil {
			return acked, started
		}
		acked++
	}
	return acked, started
}

// batchModel folds the first `batches` full batches plus `prefix` ops of
// the next one into the expected state.
func batchModel(batches, prefix int) map[string]string {
	m := make(map[string]string)
	apply := func(op store.KV) {
		if op.Delete {
			delete(m, op.Key)
		} else {
			m[op.Key] = string(op.Value)
		}
	}
	for i := 0; i < batches; i++ {
		for _, op := range batchWorkload[i] {
			apply(op)
		}
	}
	if batches < len(batchWorkload) {
		for _, op := range batchWorkload[batches][:prefix] {
			apply(op)
		}
	}
	return m
}

// checkBatchRecovered asserts the prefix-durability invariant: the
// recovered state matches every acked batch plus some in-order prefix
// (possibly empty, possibly complete) of the single in-flight batch —
// never a subset of an acked batch, never out-of-order ops.
func checkBatchRecovered(t *testing.T, label, dir string, acked, started int) {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer func() { _ = s.Close() }()
	got := s.All()
	matches := func(model map[string]string) bool {
		if len(got) != len(model) {
			return false
		}
		for k, v := range model {
			if string(got[k]) != v {
				return false
			}
		}
		return true
	}
	maxPrefix := 0
	if started > acked && acked < len(batchWorkload) {
		maxPrefix = len(batchWorkload[acked])
	}
	for p := 0; p <= maxPrefix; p++ {
		if matches(batchModel(acked, p)) {
			if err := s.Put("post-crash", []byte("accepted")); err != nil {
				t.Fatalf("%s: store rejects writes after recovery: %v", label, err)
			}
			return
		}
	}
	t.Fatalf("%s: recovered state %v is not %d acked batches + a prefix of batch %d",
		label, got, acked, acked)
}

// TestStoreBatchCrashAtEveryByte kills the simulated process at every
// byte offset of the batched workload: a torn batched write must recover
// as an in-order prefix of the batch, and no acknowledged batch may lose
// a record.
func TestStoreBatchCrashAtEveryByte(t *testing.T) {
	base := t.TempDir()
	countFS := faultinject.NewFaultFS()
	if acked, _ := runBatchCrashWorkload(countFS, filepath.Join(base, "count")); acked != len(batchWorkload) {
		t.Fatalf("fault-free pass acked %d of %d batches", acked, len(batchWorkload))
	}
	total := countFS.Counters().WriteBytes
	if total == 0 {
		t.Fatal("counting pass saw no writes")
	}
	for k := int64(1); k <= total; k++ {
		dir := filepath.Join(base, fmt.Sprintf("byte-%05d", k))
		ffs := faultinject.NewFaultFS()
		ffs.CrashAfterBytes = k
		acked, started := runBatchCrashWorkload(ffs, dir)
		if k < total && !ffs.Crashed() {
			t.Fatalf("byte %d: crash never fired", k)
		}
		checkBatchRecovered(t, fmt.Sprintf("crash after byte %d", k), dir, acked, started)
	}
}

// TestStoreBatchCrashAtEveryOp crashes immediately before every mutating
// filesystem op — in particular at the pre-fsync boundary (batch bytes
// written, not yet synced) and the post-fsync boundary.
func TestStoreBatchCrashAtEveryOp(t *testing.T) {
	base := t.TempDir()
	countFS := faultinject.NewFaultFS()
	if acked, _ := runBatchCrashWorkload(countFS, filepath.Join(base, "count")); acked != len(batchWorkload) {
		t.Fatalf("fault-free pass acked %d of %d batches", acked, len(batchWorkload))
	}
	totalOps := countFS.Counters().MutatingOps
	for n := 1; n <= totalOps; n++ {
		dir := filepath.Join(base, fmt.Sprintf("op-%04d", n))
		ffs := faultinject.NewFaultFS()
		ffs.CrashBeforeOp = n
		acked, started := runBatchCrashWorkload(ffs, dir)
		if !ffs.Crashed() {
			t.Fatalf("op %d: crash never fired", n)
		}
		checkBatchRecovered(t, fmt.Sprintf("crash before op %d", n), dir, acked, started)
	}
}

// TestJournalBatchPrefixDurable drives AppendBatch directly: whatever
// the crash point, recovery must yield an in-order prefix of the
// appended payload sequence.
func TestJournalBatchPrefixDurable(t *testing.T) {
	batch := [][]byte{
		[]byte("rec-0"), []byte("rec-1-longer-payload"), []byte("rec-2"),
		[]byte("rec-3-x"), []byte("rec-4"),
	}
	// Fault-free pass to size the write stream.
	count := faultinject.NewFaultFS()
	countDir := t.TempDir()
	j, _, err := store.OpenJournal(count, filepath.Join(countDir, "j.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	_ = j.Close()
	total := count.Counters().WriteBytes

	for k := int64(1); k <= total; k++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "j.wal")
		ffs := faultinject.NewFaultFS()
		ffs.CrashAfterBytes = k
		j, _, err := store.OpenJournal(ffs, path)
		acked := false
		if err == nil {
			acked = j.AppendBatch(batch) == nil
			_ = j.Close()
		}
		j2, payloads, err := store.OpenJournal(store.OS(), path)
		if err != nil {
			t.Fatalf("byte %d: recovery failed: %v", k, err)
		}
		_ = j2.Close()
		if acked && len(payloads) != len(batch) {
			t.Fatalf("byte %d: acked batch recovered only %d of %d records", k, len(payloads), len(batch))
		}
		if len(payloads) > len(batch) {
			t.Fatalf("byte %d: recovered %d records from a %d-record batch", k, len(payloads), len(batch))
		}
		for i, p := range payloads {
			if string(p) != string(batch[i]) {
				t.Fatalf("byte %d: record %d = %q, want prefix order %q", k, i, p, batch[i])
			}
		}
	}
}

// TestJournalPartialBatchWriteRollsBack injects a short write mid-batch:
// the append must fail, the file must be truncated back to the last good
// frame, and a subsequent append must not interleave with torn bytes.
func TestJournalPartialBatchWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.wal")
	ffs := faultinject.NewFaultFS()
	j, _, err := store.OpenJournal(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("durable-before")); err != nil {
		t.Fatal(err)
	}
	// Fail the next write after 7 bytes — mid-frame inside the batch.
	ffs.FailWriteN = ffs.Counters().Writes + 1
	ffs.ShortWriteBytes = 7
	err = j.AppendBatch([][]byte{[]byte("torn-a"), []byte("torn-b")})
	if err == nil {
		t.Fatal("short-written batch append reported success")
	}
	// The journal rolled back; a later append must start at a clean frame.
	if err := j.Append([]byte("durable-after")); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	_ = j.Close()
	j2, payloads, err := store.OpenJournal(store.OS(), path)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer func() { _ = j2.Close() }()
	want := []string{"durable-before", "durable-after"}
	if len(payloads) != len(want) {
		t.Fatalf("recovered %d records, want %d: %q", len(payloads), len(want), payloads)
	}
	for i, p := range payloads {
		if string(p) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, p, want[i])
		}
	}
}

// gateFS lets the test hold the first group-commit fsync open so every
// concurrent appender is queued before the committer drains — making the
// fsync-count bound deterministic instead of timing-dependent.
type gateFS struct {
	base     store.FS
	gate     chan struct{}
	blocking *atomic.Bool
}

func (g gateFS) OpenFile(name string, flag int, perm fs.FileMode) (store.File, error) {
	f, err := g.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return gateFile{File: f, g: g}, nil
}
func (g gateFS) ReadFile(name string) ([]byte, error)         { return g.base.ReadFile(name) }
func (g gateFS) Rename(o, n string) error                     { return g.base.Rename(o, n) }
func (g gateFS) Remove(name string) error                     { return g.base.Remove(name) }
func (g gateFS) MkdirAll(path string, perm fs.FileMode) error { return g.base.MkdirAll(path, perm) }
func (g gateFS) Stat(name string) (fs.FileInfo, error)        { return g.base.Stat(name) }
func (g gateFS) SyncDir(name string) error                    { return g.base.SyncDir(name) }

type gateFile struct {
	store.File
	g gateFS
}

func (f gateFile) Sync() error {
	if f.g.blocking.Load() {
		<-f.g.gate
	}
	return f.File.Sync()
}

// TestGroupCommitConcurrentAppends is the tentpole concurrency test: N
// goroutines Append through a group-commit journal; every append that
// returned nil must be found intact after recovery, and the whole burst
// must cost at most ceil(N/maxBatch)+1 fsyncs.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	const (
		n        = 64
		maxBatch = 8
	)
	dir := t.TempDir()
	path := filepath.Join(dir, "j.wal")
	var blocking atomic.Bool
	gate := make(chan struct{})
	counting := store.NewCountingFS(gateFS{base: store.OS(), gate: gate, blocking: &blocking})
	j, _, err := store.OpenJournal(counting, path,
		store.WithGroupCommit(5*time.Millisecond, maxBatch))
	if err != nil {
		t.Fatal(err)
	}
	base := counting.Counters().Syncs

	// Hold the first fsync open until every goroutine has had ample time
	// to enqueue, then release: the drain then runs full batches.
	blocking.Store(true)
	var wg sync.WaitGroup
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = j.Append([]byte(fmt.Sprintf("concurrent-%02d", i)))
		}(i)
	}
	close(start)
	time.Sleep(100 * time.Millisecond)
	blocking.Store(false)
	close(gate)
	wg.Wait()

	acked := 0
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		acked++
	}
	syncs := counting.Counters().Syncs - base
	budget := uint64((n+maxBatch-1)/maxBatch + 1)
	if syncs > budget {
		t.Fatalf("%d concurrent appends cost %d fsyncs, budget %d", n, syncs, budget)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: every acknowledged append intact, no extras, no tears.
	j2, payloads, err := store.OpenJournal(store.OS(), path)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer func() { _ = j2.Close() }()
	if len(payloads) != acked {
		t.Fatalf("recovered %d records, want %d", len(payloads), acked)
	}
	seen := make(map[string]bool)
	for _, p := range payloads {
		seen[string(p)] = true
	}
	for i := 0; i < n; i++ {
		if !seen[fmt.Sprintf("concurrent-%02d", i)] {
			t.Fatalf("acknowledged append %d missing after recovery", i)
		}
	}
}

// TestGroupCommitAppendAfterClose: appends racing Close either complete
// durably or fail with ErrClosed — never a torn write, never a hang.
func TestGroupCommitAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	j, _, err := store.OpenJournal(store.OS(), filepath.Join(dir, "j.wal"),
		store.WithGroupCommit(time.Millisecond, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("pre-close")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("post-close")); err == nil {
		t.Fatal("append after Close reported success")
	}
}

// TestGroupCommitSyncDrains: Sync must not return while enqueued
// appends are still waiting for their commit.
func TestGroupCommitSyncDrains(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.wal")
	j, _, err := store.OpenJournal(store.OS(), path,
		store.WithGroupCommit(50*time.Millisecond, 1024))
	if err != nil {
		t.Fatal(err)
	}
	done := j.AppendBatchAsync([][]byte{[]byte("async-1"), []byte("async-2")})
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("async append: %v", err)
		}
	default:
		t.Fatal("Sync returned while an enqueued append was still pending")
	}
	if got := j.Records(); got != 2 {
		t.Fatalf("Records() = %d after Sync, want 2", got)
	}
	_ = j.Close()
}
