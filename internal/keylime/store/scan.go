package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"
)

// ScannedRecord is one intact journal record together with where its
// frame starts in the file — the byte offset forensic tools (the
// chain-of-custody walker, verify-chain) report when they pinpoint the
// first tampered record.
type ScannedRecord struct {
	// Index is the record's position in the journal (0-based).
	Index int
	// Offset is the file offset of the record's frame header.
	Offset int64
	// Payload is the record body (a private copy).
	Payload []byte
}

// ScanInfo summarizes a read-only journal scan.
type ScanInfo struct {
	// FileSize is the total length of the file on disk.
	FileSize int64
	// ValidLen is the length of the intact prefix; anything past it is a
	// torn or corrupt tail.
	ValidLen int64
}

// ScanRecords walks raw journal bytes and returns every intact record
// with its byte offset. Unlike OpenJournal it never opens the file for
// append or truncates anything, so it is safe to point at a live
// journal owned by another process. A torn or checksum-failing tail
// ends the scan (reflected in ScanInfo.ValidLen); only a corrupt header
// is an error.
func ScanRecords(data []byte) ([]ScannedRecord, ScanInfo, error) {
	info := ScanInfo{FileSize: int64(len(data))}
	if len(data) == 0 {
		return nil, info, nil
	}
	if len(data) < journalHeaderSize {
		if string(data) == journalMagic[:len(data)] {
			return nil, info, nil
		}
		return nil, info, fmt.Errorf("%w: bad journal header", ErrCorrupt)
	}
	if string(data[:journalHeaderSize]) != journalMagic {
		return nil, info, fmt.Errorf("%w: bad journal magic", ErrCorrupt)
	}
	var recs []ScannedRecord
	off := int64(journalHeaderSize)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < recordHeaderSize {
			break
		}
		length := binary.BigEndian.Uint32(rest[:4])
		sum := binary.BigEndian.Uint32(rest[4:8])
		if length > maxRecordSize || int64(len(rest)) < recordHeaderSize+int64(length) {
			break
		}
		payload := rest[recordHeaderSize : recordHeaderSize+int64(length)]
		if crc32.Checksum(payload, crcTable) != sum {
			break
		}
		recs = append(recs, ScannedRecord{
			Index:   len(recs),
			Offset:  off,
			Payload: append([]byte(nil), payload...),
		})
		off += recordHeaderSize + int64(length)
	}
	info.ValidLen = off
	return recs, info, nil
}

// ScanFile reads and scans the journal at path via ScanRecords. A
// missing file scans as empty only if the FS reports it so; callers
// that care should Stat first.
func ScanFile(fsys FS, path string) ([]ScannedRecord, ScanInfo, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, ScanInfo{}, fmt.Errorf("store: reading %s: %w", path, err)
	}
	recs, info, err := ScanRecords(data)
	if err != nil {
		return recs, info, fmt.Errorf("store: %s: %w", path, err)
	}
	return recs, info, nil
}

// LoadState replays a Store directory (snapshot + journal) read-only
// and returns its key/value state, without taking the append lock or
// truncating a torn tail — safe on a live store owned by another
// process, and exactly what offline forensic tools (verify-chain) need
// to inspect journaled state the way recovery would see it.
func LoadState(fsys FS, dir string) (map[string][]byte, error) {
	state := make(map[string][]byte)
	apply := func(p []byte) error {
		op, key, value, err := decodeMutation(p)
		if err != nil {
			return err
		}
		switch op {
		case opPut:
			state[key] = value
		case opDelete:
			delete(state, key)
		default:
			return fmt.Errorf("%w: unknown op %d", ErrCorrupt, op)
		}
		return nil
	}
	snapPath := filepath.Join(dir, SnapshotFile)
	if data, err := fsys.ReadFile(snapPath); err == nil {
		recs, info, serr := ScanRecords(data)
		if serr != nil || info.ValidLen != info.FileSize {
			return nil, fmt.Errorf("store: %w: snapshot %s", ErrCorrupt, snapPath)
		}
		for _, r := range recs {
			if err := apply(r.Payload); err != nil {
				return nil, fmt.Errorf("store: snapshot %s: %w", snapPath, err)
			}
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	jPath := filepath.Join(dir, JournalFile)
	if data, err := fsys.ReadFile(jPath); err == nil {
		recs, _, serr := ScanRecords(data)
		if serr != nil {
			return nil, fmt.Errorf("store: %s: %w", jPath, serr)
		}
		for _, r := range recs {
			if err := apply(r.Payload); err != nil {
				return nil, fmt.Errorf("store: journal %s: %w", jPath, err)
			}
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: reading journal: %w", err)
	}
	return state, nil
}
