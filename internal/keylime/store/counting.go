package store

// CountingFS wraps an FS and counts the syscalls that dominate durable
// write cost: Write, Sync (file fsync and directory fsync), and Rename.
// Benchmarks and fsync-budget tests wrap the store's FS in a CountingFS
// and assert, e.g., that a durable fleet sweep costs a constant number
// of fsyncs regardless of how many rows it persists.

import (
	"io/fs"
	"sync/atomic"
)

// FSCounters is a point-in-time snapshot of a CountingFS's counters.
type FSCounters struct {
	Writes     uint64 // File.Write calls
	WriteBytes uint64 // total bytes passed to File.Write
	Syncs      uint64 // File.Sync + FS.SyncDir calls
	Renames    uint64 // FS.Rename calls
}

// CountingFS is an FS wrapper whose counters are safe to read
// concurrently with in-flight operations.
type CountingFS struct {
	base FS

	writes     atomic.Uint64
	writeBytes atomic.Uint64
	syncs      atomic.Uint64
	renames    atomic.Uint64
}

// NewCountingFS wraps base with syscall counting.
func NewCountingFS(base FS) *CountingFS { return &CountingFS{base: base} }

// Counters returns a snapshot of the counts so far.
func (c *CountingFS) Counters() FSCounters {
	return FSCounters{
		Writes:     c.writes.Load(),
		WriteBytes: c.writeBytes.Load(),
		Syncs:      c.syncs.Load(),
		Renames:    c.renames.Load(),
	}
}

// Reset zeroes all counters.
func (c *CountingFS) Reset() {
	c.writes.Store(0)
	c.writeBytes.Store(0)
	c.syncs.Store(0)
	c.renames.Store(0)
}

func (c *CountingFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := c.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &countingFile{f: f, c: c}, nil
}

func (c *CountingFS) ReadFile(name string) ([]byte, error) { return c.base.ReadFile(name) }

func (c *CountingFS) Rename(oldpath, newpath string) error {
	c.renames.Add(1)
	return c.base.Rename(oldpath, newpath)
}

func (c *CountingFS) Remove(name string) error { return c.base.Remove(name) }

func (c *CountingFS) MkdirAll(path string, perm fs.FileMode) error {
	return c.base.MkdirAll(path, perm)
}

func (c *CountingFS) Stat(name string) (fs.FileInfo, error) { return c.base.Stat(name) }

func (c *CountingFS) SyncDir(name string) error {
	c.syncs.Add(1)
	return c.base.SyncDir(name)
}

type countingFile struct {
	f File
	c *CountingFS
}

func (f *countingFile) Write(p []byte) (int, error) {
	f.c.writes.Add(1)
	f.c.writeBytes.Add(uint64(len(p)))
	return f.f.Write(p)
}

func (f *countingFile) Sync() error {
	f.c.syncs.Add(1)
	return f.f.Sync()
}

func (f *countingFile) Truncate(size int64) error { return f.f.Truncate(size) }

func (f *countingFile) Close() error { return f.f.Close() }
