package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"
)

// Store is a crash-safe keyed store: a map[string][]byte whose mutations
// are journaled before they are acknowledged, periodically compacted into
// an atomic snapshot. The verifier uses it for per-agent state rows
// (key = agent ID, value = serialized AgentState), journaling only the
// rows dirtied by each sweep instead of marshaling the whole fleet.
//
// Layout under the store directory:
//
//	snapshot.dat  — journal-framed put records, replaced atomically
//	journal.wal   — mutations since the snapshot
//	snapshot.tmp  — in-flight compaction (removed on open)
//
// Recovery = strict-parse the snapshot (it only ever appears via rename,
// so it is never torn), then replay the journal with torn-tail
// truncation. Replay is last-writer-wins per key, so a crash between the
// snapshot rename and the journal reset — which leaves the journal
// holding records the snapshot already covers — is harmless.
type Store struct {
	fsys FS
	dir  string

	mu          sync.Mutex
	state       map[string][]byte
	journal     *Journal
	autoCompact int
	compactions int
	recovery    RecoveryInfo

	// Follow/replication state (see follow.go): epoch identifies this
	// open, seq numbers acknowledged mutations, tail retains the most
	// recent followCap of them for streaming to cluster standbys.
	epoch     uint64
	seq       uint64
	tail      []Segment
	tailStart int // first live element of tail; trimmed lazily, see recordSegmentLocked
	followCap int
}

// Mutation ops in journal/snapshot payloads.
const (
	opPut    = 1
	opDelete = 2
)

// Store file names.
const (
	SnapshotFile    = "snapshot.dat"
	JournalFile     = "journal.wal"
	snapshotTmpFile = "snapshot.tmp"
)

// StoreOption configures Open.
type StoreOption func(*Store)

// WithAutoCompact compacts the journal into a snapshot whenever its
// record count exceeds max(n, 2×keys). n <= 0 disables auto-compaction
// (Compact can still be called explicitly). Default 4096.
func WithAutoCompact(n int) StoreOption {
	return func(s *Store) { s.autoCompact = n }
}

// WithStoreFS sets the filesystem (default the real one).
func WithStoreFS(fsys FS) StoreOption {
	return func(s *Store) { s.fsys = fsys }
}

// Open opens (creating if needed) the store rooted at dir and recovers
// its state: latest snapshot plus journal suffix.
func Open(dir string, opts ...StoreOption) (*Store, error) {
	s := &Store{
		fsys:        OS(),
		dir:         dir,
		state:       make(map[string][]byte),
		autoCompact: 4096,
		epoch:       newStoreEpoch(),
		followCap:   defaultFollowBuffer,
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.fsys.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	// A leftover temp snapshot is an abandoned compaction from before a
	// crash: the rename never happened, so it holds nothing durable.
	if _, err := s.fsys.Stat(filepath.Join(dir, snapshotTmpFile)); err == nil {
		if err := s.fsys.Remove(filepath.Join(dir, snapshotTmpFile)); err != nil {
			return nil, fmt.Errorf("store: removing stale %s: %w", snapshotTmpFile, err)
		}
	}
	snapPath := filepath.Join(dir, SnapshotFile)
	if data, err := s.fsys.ReadFile(snapPath); err == nil {
		entries, validLen, serr := scanJournal(data)
		if serr != nil || validLen != int64(len(data)) {
			// Snapshots are written whole and installed by rename; a torn
			// or trailing-garbage snapshot is corruption, not a crash.
			return nil, fmt.Errorf("store: %w: snapshot %s", ErrCorrupt, snapPath)
		}
		for _, e := range entries {
			if err := s.applyPayload(e); err != nil {
				return nil, fmt.Errorf("store: snapshot %s: %w", snapPath, err)
			}
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	j, payloads, err := OpenJournal(s.fsys, filepath.Join(dir, JournalFile))
	if err != nil {
		return nil, err
	}
	for _, p := range payloads {
		if err := s.applyPayload(p); err != nil {
			_ = j.Close()
			return nil, fmt.Errorf("store: journal replay: %w", err)
		}
	}
	s.journal = j
	s.recovery = j.Recovery()
	return s, nil
}

// applyPayload decodes one mutation record into the state map.
func (s *Store) applyPayload(p []byte) error {
	op, key, value, err := decodeMutation(p)
	if err != nil {
		return err
	}
	switch op {
	case opPut:
		s.state[key] = value
	case opDelete:
		delete(s.state, key)
	default:
		return fmt.Errorf("%w: unknown op %d", ErrCorrupt, op)
	}
	return nil
}

// encodeMutation frames op/key/value into a journal payload.
func encodeMutation(op byte, key string, value []byte) []byte {
	buf := make([]byte, 0, 5+len(key)+len(value))
	buf = append(buf, op)
	var klen [4]byte
	binary.BigEndian.PutUint32(klen[:], uint32(len(key)))
	buf = append(buf, klen[:]...)
	buf = append(buf, key...)
	buf = append(buf, value...)
	return buf
}

// decodeMutation is the inverse of encodeMutation.
func decodeMutation(p []byte) (op byte, key string, value []byte, err error) {
	if len(p) < 5 {
		return 0, "", nil, fmt.Errorf("%w: mutation record too short", ErrCorrupt)
	}
	op = p[0]
	klen := binary.BigEndian.Uint32(p[1:5])
	if int(klen) > len(p)-5 {
		return 0, "", nil, fmt.Errorf("%w: mutation key overruns record", ErrCorrupt)
	}
	key = string(p[5 : 5+klen])
	value = append([]byte(nil), p[5+klen:]...)
	return op, key, value, nil
}

// Put durably records key = value. When Put returns nil the mutation has
// been journaled and fsynced; a crash at any later point preserves it.
func (s *Store) Put(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.journal.Append(encodeMutation(opPut, key, value)); err != nil {
		return err
	}
	s.state[key] = append([]byte(nil), value...)
	s.recordSegmentLocked(opPut, key, value)
	return s.maybeCompactLocked()
}

// Delete durably removes a key. Deleting an absent key is a no-op that
// still journals (replay stays idempotent either way).
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.journal.Append(encodeMutation(opDelete, key, nil)); err != nil {
		return err
	}
	delete(s.state, key)
	s.recordSegmentLocked(opDelete, key, nil)
	return s.maybeCompactLocked()
}

// KV is one mutation in a PutBatch: a put of Value under Key, or a
// delete of Key when Delete is set.
type KV struct {
	Key    string
	Value  []byte
	Delete bool
}

// PutBatch durably records a batch of mutations under a single journal
// append — one framed write vector, one fsync — instead of one fsync
// per row. When PutBatch returns nil every mutation in the batch is
// durable. On a crash mid-write the journal recovers an in-order prefix
// of the batch, so callers that need all-or-nothing semantics must
// order a commit marker last (see cluster replication) or tolerate
// partial application on replay (the verifier's per-agent rows are
// independent, so a prefix is just a smaller sweep).
func (s *Store) PutBatch(ops []KV) error {
	if len(ops) == 0 {
		return nil
	}
	payloads := make([][]byte, len(ops))
	for i, op := range ops {
		if op.Delete {
			payloads[i] = encodeMutation(opDelete, op.Key, nil)
		} else {
			payloads[i] = encodeMutation(opPut, op.Key, op.Value)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.journal.AppendBatch(payloads); err != nil {
		return err
	}
	for _, op := range ops {
		if op.Delete {
			delete(s.state, op.Key)
			s.recordSegmentLocked(opDelete, op.Key, nil)
		} else {
			s.state[op.Key] = append([]byte(nil), op.Value...)
			s.recordSegmentLocked(opPut, op.Key, op.Value)
		}
	}
	return s.maybeCompactLocked()
}

// Get returns the value for key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.state[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Len is the number of keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.state)
}

// All returns a copy of the full state.
func (s *Store) All() map[string][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]byte, len(s.state))
	for k, v := range s.state {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// maybeCompactLocked runs a compaction when the journal has outgrown the
// live state.
func (s *Store) maybeCompactLocked() error {
	if s.autoCompact <= 0 {
		return nil
	}
	threshold := s.autoCompact
	if t := 2 * len(s.state); t > threshold {
		threshold = t
	}
	if s.journal.Records() <= threshold {
		return nil
	}
	return s.compactLocked()
}

// Compact writes the current state as a new snapshot (temp file, fsync,
// rename, directory sync) and resets the journal. A crash before the
// rename leaves the old snapshot + full journal; a crash between the
// rename and the reset leaves the new snapshot + a journal whose replay
// is idempotent over it. No window loses an acknowledged mutation.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	payloads := make([][]byte, 0, len(s.state))
	for k, v := range s.state {
		payloads = append(payloads, encodeMutation(opPut, k, v))
	}
	tmp := filepath.Join(s.dir, snapshotTmpFile)
	snap := filepath.Join(s.dir, SnapshotFile)
	if err := writeFileAtomic(s.fsys, tmp, snap, journalFileBytes(payloads)); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	s.compactions++
	return s.journal.Reset()
}

// Stats describes the store's persistence state.
type Stats struct {
	Keys           int
	JournalRecords int
	JournalBytes   int64
	Compactions    int
	// Recovery is what the last Open found (intact records, torn bytes
	// truncated).
	Recovery RecoveryInfo
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Keys:           len(s.state),
		JournalRecords: s.journal.Records(),
		JournalBytes:   s.journal.Size(),
		Compactions:    s.compactions,
		Recovery:       s.recovery,
	}
}

// Close releases the journal handle. State already acknowledged remains
// durable; Close performs no extra flush.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal.Close()
}
