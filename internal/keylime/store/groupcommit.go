package store

// Group commit: many concurrent appends, one fsync. Per-record fsyncs
// are the durability layer's fixed cost — persisting 10k dirty agent
// rows after a 184ms sweep costs ~10k fsyncs at ~1ms each, an order of
// magnitude more than the sweep itself. In group-commit mode callers
// enqueue their frames with a background committer and block until the
// batch carrying them is durable: the committer lingers briefly for
// co-travellers, writes the whole batch as one vector, issues a single
// fsync, and only then wakes the waiters. The caller-visible contract
// is unchanged — an append that returned nil is on disk — only the
// fsync is amortized across the batch.

import (
	"sync"
	"time"
)

// gcEntry is one caller's enqueued batch: its frames plus the channel
// its Append is blocked on.
type gcEntry struct {
	payloads [][]byte
	done     chan error
}

// groupCommitter is the background flush pipeline behind a journal
// opened with WithGroupCommit.
type groupCommitter struct {
	j        *Journal
	maxDelay time.Duration
	maxBatch int

	mu     sync.Mutex
	queue  []gcEntry
	closed bool

	// flushMu serializes flushers (the committer goroutine and explicit
	// flush calls) so batches reach the file in queue order.
	flushMu sync.Mutex

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// WithGroupCommit enables background group commit: concurrent Append
// and AppendBatch callers enqueue, and a committer goroutine flushes up
// to maxBatch records per fsync, lingering up to maxDelay for a batch
// to fill before flushing whatever is queued. Waiters are woken only
// after the batch's Sync returns, so every append keeps the exact
// durable-when-returned contract of the per-record mode.
func WithGroupCommit(maxDelay time.Duration, maxBatch int) JournalOption {
	return func(j *Journal) {
		if maxBatch < 1 {
			maxBatch = 1
		}
		if maxDelay < 0 {
			maxDelay = 0
		}
		j.gc = &groupCommitter{
			maxDelay: maxDelay,
			maxBatch: maxBatch,
			wake:     make(chan struct{}, 1),
			stop:     make(chan struct{}),
			done:     make(chan struct{}),
		}
	}
}

// start launches the committer once OpenJournal has recovered the file.
func (g *groupCommitter) start(j *Journal) {
	g.j = j
	go g.run()
}

// enqueue reserves the batch's position in the flush queue and returns
// the channel its result will be delivered on. Queue order is disk
// order, so a caller that serializes its enqueues (e.g. under its own
// lock) gets the same on-disk ordering it would have had appending
// synchronously.
func (g *groupCommitter) enqueue(payloads [][]byte) <-chan error {
	done := make(chan error, 1)
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		done <- ErrClosed
		return done
	}
	g.queue = append(g.queue, gcEntry{payloads: payloads, done: done})
	g.mu.Unlock()
	select {
	case g.wake <- struct{}{}:
	default:
	}
	return done
}

// queuedRecords counts the records currently waiting.
func (g *groupCommitter) queuedRecords() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, e := range g.queue {
		n += len(e.payloads)
	}
	return n
}

// run is the committer loop: sleep until woken, linger for the batch to
// fill, then drain the queue one fsync per maxBatch records.
func (g *groupCommitter) run() {
	defer close(g.done)
	for {
		select {
		case <-g.stop:
			g.flush()
			return
		case <-g.wake:
		}
		if g.maxDelay > 0 && g.queuedRecords() < g.maxBatch {
			t := time.NewTimer(g.maxDelay)
		linger:
			for g.queuedRecords() < g.maxBatch {
				select {
				case <-t.C:
					break linger
				case <-g.wake:
				case <-g.stop:
					t.Stop()
					g.flush()
					return
				}
			}
			t.Stop()
		}
		g.flush()
	}
}

// flush drains the queue: repeatedly takes up to maxBatch records,
// writes them as one vector with one fsync, and delivers the shared
// result to every waiter in the batch. Safe to call from any goroutine;
// flushers serialize on flushMu so batches hit the disk in queue order.
func (g *groupCommitter) flush() {
	g.flushMu.Lock()
	defer g.flushMu.Unlock()
	for {
		g.mu.Lock()
		if len(g.queue) == 0 {
			g.mu.Unlock()
			return
		}
		take, records := 0, 0
		for take < len(g.queue) {
			records += len(g.queue[take].payloads)
			take++
			if records >= g.maxBatch {
				break
			}
		}
		batch := g.queue[:take:take]
		g.queue = append([]gcEntry(nil), g.queue[take:]...)
		g.mu.Unlock()

		payloads := make([][]byte, 0, records)
		for _, e := range batch {
			payloads = append(payloads, e.payloads...)
		}
		g.j.mu.Lock()
		err := g.j.appendBatchLocked(payloads)
		g.j.mu.Unlock()
		for _, e := range batch {
			e.done <- err
		}
	}
}

// shutdown stops accepting appends, flushes what is queued, and waits
// for the committer to exit. Idempotent.
func (g *groupCommitter) shutdown() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		<-g.done
		return
	}
	g.closed = true
	g.mu.Unlock()
	close(g.stop)
	<-g.done
}
