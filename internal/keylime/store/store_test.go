package store_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/keylime/faultinject"
	"repro/internal/keylime/store"
)

// openS opens a store at dir, failing the test on error.
func openS(t *testing.T, dir string, opts ...store.StoreOption) *store.Store {
	t.Helper()
	s, err := store.Open(dir, opts...)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return s
}

func TestStorePutGetDeleteAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openS(t, dir)
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put("a", []byte("3")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	if err := s.Delete("b"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	_ = s.Close()

	s2 := openS(t, dir)
	defer func() { _ = s2.Close() }()
	if v, ok := s2.Get("a"); !ok || string(v) != "3" {
		t.Fatalf("a = %q, %v; want 3", v, ok)
	}
	if _, ok := s2.Get("b"); ok {
		t.Fatal("deleted key b survived reopen")
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
}

func TestStoreCompactionPreservesStateAndResetsJournal(t *testing.T) {
	dir := t.TempDir()
	s := openS(t, dir, store.WithAutoCompact(0))
	want := map[string]string{}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("agent-%02d", i%7)
		v := fmt.Sprintf("state-%d", i)
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		want[k] = v
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := s.Stats()
	if st.JournalRecords != 0 {
		t.Fatalf("journal not reset after compaction: %+v", st)
	}
	if st.Compactions != 1 {
		t.Fatalf("Compactions = %d", st.Compactions)
	}
	// Post-compaction mutations land in the fresh journal.
	if err := s.Put("agent-99", []byte("late")); err != nil {
		t.Fatalf("Put after compact: %v", err)
	}
	want["agent-99"] = "late"
	_ = s.Close()

	s2 := openS(t, dir)
	defer func() { _ = s2.Close() }()
	got := s2.All()
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if string(got[k]) != v {
			t.Fatalf("%s = %q, want %q", k, got[k], v)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, store.SnapshotFile)); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
}

func TestStoreAutoCompact(t *testing.T) {
	dir := t.TempDir()
	s := openS(t, dir, store.WithAutoCompact(8))
	for i := 0; i < 50; i++ {
		if err := s.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if st := s.Stats(); st.Compactions == 0 {
		t.Fatalf("auto-compaction never ran: %+v", st)
	}
	_ = s.Close()
	s2 := openS(t, dir)
	defer func() { _ = s2.Close() }()
	if v, _ := s2.Get("k"); string(v) != "v49" {
		t.Fatalf("k = %q, want v49", v)
	}
}

func TestStoreCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s := openS(t, dir)
	_ = s.Put("a", []byte("1"))
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	_ = s.Close()
	// Snapshots are installed atomically; a torn snapshot is corruption
	// the store must refuse, not silently truncate.
	snap := filepath.Join(dir, store.SnapshotFile)
	data, _ := os.ReadFile(snap)
	if err := os.WriteFile(snap, data[:len(data)-3], 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := store.Open(dir); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestStoreStaleTempSnapshotRemoved(t *testing.T) {
	dir := t.TempDir()
	s := openS(t, dir)
	_ = s.Put("a", []byte("1"))
	_ = s.Close()
	tmp := filepath.Join(dir, "snapshot.tmp")
	if err := os.WriteFile(tmp, []byte("half-written snapshot"), 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	s2 := openS(t, dir)
	defer func() { _ = s2.Close() }()
	if v, ok := s2.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("a = %q, %v", v, ok)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale snapshot.tmp not removed on open")
	}
}

func TestStoreFailedSyncRollsBack(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS()
	s := openS(t, dir, store.WithStoreFS(ffs), store.WithAutoCompact(0))
	if err := s.Put("a", []byte("durable")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Fail the next fsync: the Put must error and must not be visible
	// after recovery, while earlier state survives untouched.
	ffs.FailSyncN = ffs.Counters().Syncs + 1
	if err := s.Put("b", []byte("lost")); err == nil {
		t.Fatal("Put with failing fsync succeeded")
	}
	// The journal rolled back; the store keeps accepting writes.
	if err := s.Put("c", []byte("after")); err != nil {
		t.Fatalf("Put after failed sync: %v", err)
	}
	_ = s.Close()

	s2 := openS(t, dir)
	defer func() { _ = s2.Close() }()
	if _, ok := s2.Get("b"); ok {
		t.Fatal("unacknowledged Put visible after recovery")
	}
	for k, v := range map[string]string{"a": "durable", "c": "after"} {
		if got, ok := s2.Get(k); !ok || string(got) != v {
			t.Fatalf("%s = %q, %v; want %q", k, got, ok, v)
		}
	}
}

func TestStoreShortWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS()
	s := openS(t, dir, store.WithStoreFS(ffs), store.WithAutoCompact(0))
	if err := s.Put("a", []byte("durable")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	ffs.FailWriteN = ffs.Counters().Writes + 1
	ffs.ShortWriteBytes = 3
	if err := s.Put("b", []byte("torn-by-short-write")); err == nil {
		t.Fatal("Put with short write succeeded")
	}
	if err := s.Put("c", []byte("after")); err != nil {
		t.Fatalf("Put after short write: %v", err)
	}
	_ = s.Close()

	s2 := openS(t, dir)
	defer func() { _ = s2.Close() }()
	if _, ok := s2.Get("b"); ok {
		t.Fatal("short-written Put visible after recovery")
	}
	if got, ok := s2.Get("c"); !ok || string(got) != "after" {
		t.Fatalf("c = %q, %v", got, ok)
	}
}

func TestStoreValuesAreCopied(t *testing.T) {
	dir := t.TempDir()
	s := openS(t, dir)
	defer func() { _ = s.Close() }()
	v := []byte("original")
	_ = s.Put("k", v)
	v[0] = 'X'
	got, _ := s.Get("k")
	if !bytes.Equal(got, []byte("original")) {
		t.Fatalf("stored value aliased caller buffer: %q", got)
	}
}
