package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Journal file format:
//
//	8 bytes   magic "KLJRNL01"
//	records:  4 bytes big-endian payload length
//	          4 bytes CRC-32C (Castagnoli) of the payload
//	          payload
//
// An append is a single Write call — one frame for Append, a vector of
// frames for AppendBatch — followed (by default) by an fsync, so a crash
// can tear the file only inside that one write. Recovery truncates a
// torn or checksum-failing tail instead of failing open: appends are
// sequential and synced, so anything after the first invalid record was
// never acknowledged to a caller. A torn batched write therefore
// recovers to a prefix of the batch: frames land in append order, and
// the scan stops at the first torn frame.

// journalMagic identifies (and versions) the journal file format.
const journalMagic = "KLJRNL01"

const (
	journalHeaderSize = len(journalMagic)
	recordHeaderSize  = 8
	// maxRecordSize guards the scanner against garbage lengths.
	maxRecordSize = 1 << 30
)

// Errors.
var (
	// ErrCorrupt reports damage recovery must not paper over: a bad magic
	// number, or an invalid record in an atomically-written snapshot.
	ErrCorrupt = errors.New("store: corrupt file")
	// ErrBroken reports a journal disabled by an earlier append failure
	// that could not be rolled back; the on-disk tail state is unknown
	// until the journal is reopened and recovered.
	ErrBroken = errors.New("store: journal broken by failed append")
	// ErrTooLarge reports a record payload over the format limit.
	ErrTooLarge = errors.New("store: record too large")
	// ErrClosed reports an append against a journal whose group-commit
	// pipeline has been shut down by Close.
	ErrClosed = errors.New("store: journal closed")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// RecoveryInfo describes what opening a journal found on disk.
type RecoveryInfo struct {
	// Records is how many intact records were recovered.
	Records int
	// TornBytes is how many trailing bytes were truncated as a torn or
	// corrupt tail (0 for a clean journal).
	TornBytes int64
}

// Journal is an append-only, CRC-checksummed record log. Appends are
// safe for concurrent use; Reset, Rewrite, and Close must not race other
// calls (callers — Store, the outbox, the audit sink — already serialize
// those maintenance paths).
type Journal struct {
	fsys FS
	path string

	// mu guards the file handle and the acknowledged offset. It is the
	// innermost lock: nothing is called under it but the FS.
	mu       sync.Mutex
	f        File
	size     int64
	records  int
	sync     bool
	broken   bool
	recovery RecoveryInfo

	// gc, when non-nil, routes appends through the background
	// group-commit pipeline (see groupcommit.go).
	gc *groupCommitter
}

// JournalOption configures OpenJournal.
type JournalOption func(*Journal)

// WithJournalSync controls fsync-per-append (default true). Turning it
// off trades the no-acked-record-lost guarantee for write latency.
func WithJournalSync(on bool) JournalOption {
	return func(j *Journal) { j.sync = on }
}

// OpenJournal opens (creating if absent) the journal at path, recovers
// its record payloads, and truncates any torn tail. The returned payload
// slices are owned by the caller.
func OpenJournal(fsys FS, path string, opts ...JournalOption) (*Journal, [][]byte, error) {
	j := &Journal{fsys: fsys, path: path, sync: true}
	for _, opt := range opts {
		opt(j)
	}
	data, err := fsys.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("store: reading journal %s: %w", path, err)
	}
	payloads, validLen, err := scanJournal(data)
	if err != nil {
		return nil, nil, fmt.Errorf("store: journal %s: %w", path, err)
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o600)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening journal %s: %w", path, err)
	}
	j.f = f
	if int64(len(data)) > validLen {
		if err := f.Truncate(validLen); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("store: syncing truncated %s: %w", path, err)
		}
	}
	j.size = validLen
	if validLen == 0 {
		if err := j.writeAll([]byte(journalMagic)); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("store: writing journal header %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("store: syncing journal header %s: %w", path, err)
		}
		j.size = int64(journalHeaderSize)
	}
	j.records = len(payloads)
	j.recovery = RecoveryInfo{Records: len(payloads), TornBytes: int64(len(data)) - validLen}
	if j.recovery.TornBytes < 0 {
		j.recovery.TornBytes = 0
	}
	if j.gc != nil {
		j.gc.start(j)
	}
	return j, payloads, nil
}

// scanJournal walks the on-disk bytes and returns the intact payloads and
// the length of the valid prefix. A torn or checksum-failing tail is
// reported via validLen < len(data), never as an error; only a corrupt
// header (wrong magic) is fatal.
func scanJournal(data []byte) (payloads [][]byte, validLen int64, err error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < journalHeaderSize {
		// Torn header: the process died while creating the file. Nothing
		// was ever acknowledged, so recover as empty.
		if string(data) == journalMagic[:len(data)] {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("%w: bad journal header", ErrCorrupt)
	}
	if string(data[:journalHeaderSize]) != journalMagic {
		return nil, 0, fmt.Errorf("%w: bad journal magic", ErrCorrupt)
	}
	off := int64(journalHeaderSize)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < recordHeaderSize {
			break // torn record header
		}
		length := binary.BigEndian.Uint32(rest[:4])
		sum := binary.BigEndian.Uint32(rest[4:8])
		if length > maxRecordSize || int64(len(rest)) < recordHeaderSize+int64(length) {
			break // garbage length or torn payload
		}
		payload := rest[recordHeaderSize : recordHeaderSize+int64(length)]
		if crc32.Checksum(payload, crcTable) != sum {
			break // torn write inside the payload
		}
		payloads = append(payloads, append([]byte(nil), payload...))
		off += recordHeaderSize + int64(length)
	}
	return payloads, off, nil
}

// encodeRecord frames one payload.
func encodeRecord(payload []byte) []byte {
	buf := make([]byte, recordHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[recordHeaderSize:], payload)
	return buf
}

// Recovery reports what OpenJournal found.
func (j *Journal) Recovery() RecoveryInfo { return j.recovery }

// Records is the number of records currently in the journal.
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Size is the current valid length in bytes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Append frames, writes, and (unless disabled) fsyncs one record. The
// record is durable — and only then acknowledged — when Append returns
// nil. On a failed write the journal rolls the file back to the last
// acknowledged record; if even that fails the journal is marked broken
// and every further append errors until it is reopened.
//
// In group-commit mode (WithGroupCommit) the record is enqueued and the
// call blocks until the committer has flushed the batch carrying it —
// the durable-when-returned contract is identical, only the fsync is
// shared with the other records in the batch.
func (j *Journal) Append(payload []byte) error {
	if len(payload) > maxRecordSize {
		return ErrTooLarge
	}
	if j.gc != nil {
		return <-j.gc.enqueue([][]byte{payload})
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendBatchLocked([][]byte{payload})
}

// AppendBatch frames all payloads into one write vector, writes it with
// a single Write call, and (unless disabled) issues one fsync for the
// whole batch. When AppendBatch returns nil, every record in the batch
// is durable; on error, none was acknowledged. A crash mid-batch is
// prefix-durable: frames reach the disk in order and recovery truncates
// at the first torn frame, so any recovered subset is a prefix of the
// batch, never an arbitrary or reordered one.
func (j *Journal) AppendBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	for _, p := range payloads {
		if len(p) > maxRecordSize {
			return ErrTooLarge
		}
	}
	if j.gc != nil {
		return <-j.gc.enqueue(payloads)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendBatchLocked(payloads)
}

// AppendBatchAsync reserves the batch's position in the journal and
// returns a channel delivering its durability result. The position is
// claimed synchronously — two calls ordered by the caller keep that
// order on disk — while the wait for the fsync happens on the channel,
// letting the caller release its own locks so concurrent batches can
// share a group commit. Without group-commit mode the append runs
// synchronously and the returned channel is already resolved.
func (j *Journal) AppendBatchAsync(payloads [][]byte) <-chan error {
	for _, p := range payloads {
		if len(p) > maxRecordSize {
			ch := make(chan error, 1)
			ch <- ErrTooLarge
			return ch
		}
	}
	if j.gc != nil && len(payloads) > 0 {
		return j.gc.enqueue(payloads)
	}
	ch := make(chan error, 1)
	if len(payloads) == 0 {
		ch <- nil
		return ch
	}
	j.mu.Lock()
	ch <- j.appendBatchLocked(payloads)
	j.mu.Unlock()
	return ch
}

// appendBatchLocked writes one batch under j.mu: a single write of the
// concatenated frames, then one fsync.
func (j *Journal) appendBatchLocked(payloads [][]byte) error {
	if j.broken {
		return ErrBroken
	}
	total := 0
	for _, p := range payloads {
		total += recordHeaderSize + len(p)
	}
	buf := make([]byte, 0, total)
	for _, p := range payloads {
		var hdr [recordHeaderSize]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(p)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(p, crcTable))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p...)
	}
	if err := j.writeAll(buf); err != nil {
		j.rollbackLocked()
		return fmt.Errorf("store: appending %d-record batch: %w", len(payloads), err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			// The bytes may or may not be durable; roll back so the
			// in-memory accounting only ever covers acknowledged records.
			j.rollbackLocked()
			return fmt.Errorf("store: syncing %d-record batch: %w", len(payloads), err)
		}
	}
	j.size += int64(total)
	j.records += len(payloads)
	return nil
}

// rollbackLocked restores the file to the last acknowledged frame after
// a failed append. A short or failed write can leave any prefix of the
// new frames in the file while the in-memory offset still points at the
// last good frame — if that tail survived, a later successful append
// would interleave a fresh frame after torn bytes and the journal would
// stop decoding at the tear, silently hiding the new record. So the
// file is truncated back to the acknowledged offset and the truncation
// itself is fsynced; if either step fails the on-disk tail is unknown
// and the journal is marked broken — every further append refuses until
// the journal is reopened and recovered.
func (j *Journal) rollbackLocked() {
	if err := j.f.Truncate(j.size); err != nil {
		j.broken = true
		return
	}
	if err := j.f.Sync(); err != nil {
		j.broken = true
	}
}

// Sync flushes the journal file. In group-commit mode it first drains
// any batches waiting on the committer.
func (j *Journal) Sync() error {
	if j.gc != nil {
		j.gc.flush()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken {
		return ErrBroken
	}
	return j.f.Sync()
}

// Reset truncates the journal back to an empty (header-only) state —
// used after a snapshot compaction has made its records redundant. In
// group-commit mode any batches still queued are flushed first (they
// were enqueued before the caller decided to reset, so they must reach
// their waiters' acknowledgment path before the file is emptied).
func (j *Journal) Reset() error {
	if j.gc != nil {
		j.gc.flush()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken {
		return ErrBroken
	}
	if err := j.f.Truncate(int64(journalHeaderSize)); err != nil {
		j.broken = true
		return fmt.Errorf("store: resetting journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.broken = true
		return fmt.Errorf("store: syncing reset journal: %w", err)
	}
	j.size = int64(journalHeaderSize)
	j.records = 0
	return nil
}

// Rewrite atomically replaces the journal contents with the given
// records: they are written to a temp file, fsynced, renamed over the
// journal, and the directory synced. Used for outbox compaction, where
// the surviving records are a filtered subset rather than a snapshot.
// In group-commit mode queued batches are flushed first, so a record
// acknowledged before Rewrite was called is never silently dropped by
// the replacement.
func (j *Journal) Rewrite(payloads [][]byte) error {
	if j.gc != nil {
		j.gc.flush()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	tmp := j.path + ".tmp"
	if err := writeFileAtomic(j.fsys, tmp, j.path, journalFileBytes(payloads)); err != nil {
		return fmt.Errorf("store: rewriting journal: %w", err)
	}
	// Reopen the append handle on the new inode.
	_ = j.f.Close()
	f, err := j.fsys.OpenFile(j.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o600)
	if err != nil {
		j.broken = true
		return fmt.Errorf("store: reopening rewritten journal: %w", err)
	}
	j.f = f
	j.broken = false
	j.size = int64(journalHeaderSize)
	j.records = 0
	for _, p := range payloads {
		j.size += int64(recordHeaderSize + len(p))
		j.records++
	}
	return nil
}

// journalFileBytes builds a complete journal file image.
func journalFileBytes(payloads [][]byte) []byte {
	buf := []byte(journalMagic)
	for _, p := range payloads {
		buf = append(buf, encodeRecord(p)...)
	}
	return buf
}

// Close flushes the group-commit pipeline (when enabled) and releases
// the file handle. Appends racing Close either complete durably or
// return ErrClosed — none is silently dropped.
func (j *Journal) Close() error {
	if j.gc != nil {
		j.gc.shutdown()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// writeAll writes the whole buffer, surfacing short writes as errors.
func (j *Journal) writeAll(buf []byte) error {
	n, err := j.f.Write(buf)
	if err != nil {
		return err
	}
	if n != len(buf) {
		return fmt.Errorf("short write (%d of %d bytes)", n, len(buf))
	}
	return nil
}

// WriteFileAtomic durably replaces path with data via the atomic-replace
// idiom: write path+".tmp", fsync, rename over path, fsync the directory.
// A crash leaves either the old file or the new one, never a torn mix.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	return writeFileAtomic(fsys, path+".tmp", path, data)
}

// writeFileAtomic writes data to tmpPath, fsyncs it, renames it to path,
// and fsyncs the containing directory — the atomic-replace idiom. On any
// error the temp file is removed best-effort.
func writeFileAtomic(fsys FS, tmpPath, path string, data []byte) error {
	f, err := fsys.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = fsys.Remove(tmpPath)
		return werr
	}
	if err := fsys.Rename(tmpPath, path); err != nil {
		_ = fsys.Remove(tmpPath)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}
