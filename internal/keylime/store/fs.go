// Package store implements the verifier's crash-safe durability layer: an
// append-only, length-prefixed, CRC-checksummed write-ahead journal with
// torn-tail recovery, and a keyed store layering atomic snapshots plus
// journal compaction on top of it. The paper's P2 finding is that a
// verifier which loses its place hands an adaptive attacker a blind
// window; this package makes the verifier's verdicts, verification
// frontier, and pending revocation notifications survive a crash at any
// write boundary.
//
// All file access goes through the FS interface so the crash-injection
// harness (internal/keylime/faultinject.FaultFS) can inject short writes,
// fsync/rename errors, and kill-at-byte-offset crashes deterministically.
package store

import (
	"io/fs"
	"os"
)

// File is the subset of *os.File the store writes through. Reads go
// through FS.ReadFile, so File only needs the mutation surface.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FS abstracts the filesystem operations the store performs. The OS
// implementation is returned by OS(); faultinject.FaultFS wraps any FS to
// inject faults and crashes.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory, making a preceding rename durable.
	SyncDir(name string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
