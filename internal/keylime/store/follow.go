package store

// Segment streaming: the replication-ready face of the write-ahead
// journal. Every acknowledged mutation is assigned a monotonically
// increasing sequence number and retained in a bounded in-memory tail, so
// a cluster peer can follow the store — pull the segments it has not yet
// applied — without rereading the on-disk journal. A follower that has
// fallen behind the tail (or that observes a new store epoch after the
// source restarted) falls back to a full snapshot and resumes following
// from the snapshot's sequence.
//
// Sequence numbers are an in-process replication cursor, not a durable
// log position: each Open draws a fresh random Epoch, and followers key
// their cursor on (Epoch, Seq). A restarted source therefore never
// resumes a stale cursor — the epoch mismatch forces the follower through
// the snapshot path, which is always safe because replay is
// last-writer-wins per key.

import (
	"crypto/rand"
	"encoding/binary"
)

// Segment ops, the exported aliases of the journal mutation ops.
const (
	SegPut    = opPut
	SegDelete = opDelete
)

// Segment is one replicable store mutation.
type Segment struct {
	Seq   uint64 `json:"seq"`
	Op    byte   `json:"op"`
	Key   string `json:"key"`
	Value []byte `json:"value,omitempty"`
}

// defaultFollowBuffer bounds the in-memory segment tail.
const defaultFollowBuffer = 4096

// WithFollowBuffer sets how many recent mutations are retained for
// followers (default 4096). A follower further behind than the buffer is
// redirected to a snapshot. n <= 0 keeps the default.
func WithFollowBuffer(n int) StoreOption {
	return func(s *Store) {
		if n > 0 {
			s.followCap = n
		}
	}
}

// newStoreEpoch draws a random epoch for this open.
func newStoreEpoch() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fallback: a constant epoch only weakens restart detection, and
		// only when the system RNG is broken; replication stays correct
		// because the snapshot path is always safe.
		return 1
	}
	e := binary.BigEndian.Uint64(b[:])
	if e == 0 {
		e = 1
	}
	return e
}

// Epoch identifies this open of the store. Followers include it in their
// cursor; a mismatch (the source restarted) forces a snapshot resync.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Seq is the sequence number of the last acknowledged mutation this open
// (0 before the first).
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// recordSegmentLocked appends a mutation to the follow tail; s.mu held.
func (s *Store) recordSegmentLocked(op byte, key string, value []byte) {
	s.seq++
	if s.followCap <= 0 {
		return
	}
	seg := Segment{Seq: s.seq, Op: op, Key: key}
	if value != nil {
		seg.Value = append([]byte(nil), value...)
	}
	s.tail = append(s.tail, seg)
	// Evict the oldest retained segment by advancing tailStart instead of
	// shifting the slice: a shift costs O(followCap) per mutation, which
	// at fleet scale is tens of millions of element copies per sweep. The
	// dead prefix is compacted away in one move once it reaches followCap,
	// so each element is shifted at most once (amortized O(1)) and the
	// visible tail never exceeds followCap segments.
	if len(s.tail)-s.tailStart > s.followCap {
		s.tail[s.tailStart] = Segment{} // release the evicted value ref
		s.tailStart++
	}
	if s.tailStart >= s.followCap {
		n := copy(s.tail, s.tail[s.tailStart:])
		clear(s.tail[n:]) // release refs past the new length
		s.tail = s.tail[:n]
		s.tailStart = 0
	}
}

// Since returns the segments after the given sequence number, in order.
// ok is false when the cursor has fallen out of the retained tail (or is
// from a different epoch's numbering and overruns this one) — the caller
// must resync from SnapshotAll and resume from its sequence.
func (s *Store) Since(afterSeq uint64) (segs []Segment, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if afterSeq > s.seq {
		return nil, false
	}
	if afterSeq == s.seq {
		return nil, true
	}
	// Oldest retained seq is s.seq - len(live) + 1.
	live := s.tail[s.tailStart:]
	oldest := s.seq - uint64(len(live)) + 1
	if len(live) == 0 || afterSeq < oldest-1 {
		return nil, false
	}
	start := int(afterSeq - (oldest - 1))
	out := make([]Segment, len(live)-start)
	copy(out, live[start:])
	return out, true
}

// SnapshotAll returns a copy of the full state together with the sequence
// number it reflects — the resync point for a follower that outran the
// tail or crossed a store epoch.
func (s *Store) SnapshotAll() (map[string][]byte, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]byte, len(s.state))
	for k, v := range s.state {
		out[k] = append([]byte(nil), v...)
	}
	return out, s.seq
}
