package store_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/keylime/store"
)

// openJ opens a journal at path, failing the test on error.
func openJ(t *testing.T, path string) (*store.Journal, [][]byte) {
	t.Helper()
	j, payloads, err := store.OpenJournal(store.OS(), path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return j, payloads
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, payloads := openJ(t, path)
	if len(payloads) != 0 {
		t.Fatalf("new journal has %d records", len(payloads))
	}
	want := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma-longer-payload")}
	for _, p := range want {
		if err := j.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if j.Records() != len(want) {
		t.Fatalf("Records = %d, want %d", j.Records(), len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, got := openJ(t, path)
	defer func() { _ = j2.Close() }()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if ri := j2.Recovery(); ri.TornBytes != 0 || ri.Records != len(want) {
		t.Fatalf("recovery = %+v", ri)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openJ(t, path)
	if err := j.Append([]byte("kept")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	goodSize := j.Size()
	if err := j.Append([]byte("torn-away-record")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	_ = j.Close()

	// Tear the file mid-way through the final record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	j2, payloads := openJ(t, path)
	if len(payloads) != 1 || string(payloads[0]) != "kept" {
		t.Fatalf("recovered %q, want just \"kept\"", payloads)
	}
	if ri := j2.Recovery(); ri.TornBytes == 0 {
		t.Fatalf("recovery reported no torn bytes: %+v", ri)
	}
	if j2.Size() != goodSize {
		t.Fatalf("size after recovery = %d, want %d", j2.Size(), goodSize)
	}
	// The journal keeps working after a torn-tail recovery.
	if err := j2.Append([]byte("after")); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	_ = j2.Close()
	_, payloads = openJ(t, path)
	if len(payloads) != 2 || string(payloads[1]) != "after" {
		t.Fatalf("post-recovery append lost: %q", payloads)
	}
}

func TestJournalChecksumFailureTruncatesTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openJ(t, path)
	_ = j.Append([]byte("one"))
	_ = j.Append([]byte("two"))
	_ = j.Close()

	data, _ := os.ReadFile(path)
	// Flip a bit in the final record's payload.
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	_, payloads := openJ(t, path)
	if len(payloads) != 1 || string(payloads[0]) != "one" {
		t.Fatalf("recovered %q, want just \"one\"", payloads)
	}
}

func TestJournalBadMagicIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	if err := os.WriteFile(path, []byte("NOTAMAGIC-and-some-data"), 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	_, _, err := store.OpenJournal(store.OS(), path)
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestJournalTornHeaderRecoversEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	// Crash mid-way through writing the 8-byte magic.
	if err := os.WriteFile(path, []byte("KLJR"), 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	j, payloads := openJ(t, path)
	defer func() { _ = j.Close() }()
	if len(payloads) != 0 {
		t.Fatalf("recovered %d records from torn header", len(payloads))
	}
	if err := j.Append([]byte("works")); err != nil {
		t.Fatalf("Append: %v", err)
	}
}

func TestJournalResetAndRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openJ(t, path)
	for _, p := range []string{"a", "b", "c"} {
		_ = j.Append([]byte(p))
	}
	if err := j.Rewrite([][]byte{[]byte("b")}); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if j.Records() != 1 {
		t.Fatalf("Records after rewrite = %d", j.Records())
	}
	if err := j.Append([]byte("d")); err != nil {
		t.Fatalf("Append after rewrite: %v", err)
	}
	_ = j.Close()
	_, payloads := openJ(t, path)
	if len(payloads) != 2 || string(payloads[0]) != "b" || string(payloads[1]) != "d" {
		t.Fatalf("after rewrite+append: %q", payloads)
	}

	j2, _ := openJ(t, path)
	if err := j2.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	_ = j2.Close()
	_, payloads = openJ(t, path)
	if len(payloads) != 0 {
		t.Fatalf("after reset: %q", payloads)
	}
}
