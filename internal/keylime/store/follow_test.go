package store

import (
	"fmt"
	"testing"
)

// TestFollowSeqMonotonic checks that every acknowledged mutation advances
// the sequence number and lands in the tail in order.
func TestFollowSeqMonotonic(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = s.Close() }()
	if got := s.Seq(); got != 0 {
		t.Fatalf("fresh store Seq = %d, want 0", got)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := s.Delete("k0"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if got := s.Seq(); got != 11 {
		t.Fatalf("Seq = %d, want 11", got)
	}
	segs, ok := s.Since(0)
	if !ok {
		t.Fatalf("Since(0) fell out of tail")
	}
	if len(segs) != 11 {
		t.Fatalf("Since(0) returned %d segments, want 11", len(segs))
	}
	for i, seg := range segs {
		if seg.Seq != uint64(i+1) {
			t.Fatalf("segment %d has seq %d, want %d", i, seg.Seq, i+1)
		}
	}
	if last := segs[10]; last.Op != SegDelete || last.Key != "k0" {
		t.Fatalf("last segment = %+v, want delete of k0", last)
	}
	if seg := segs[3]; seg.Op != SegPut || seg.Key != "k3" || len(seg.Value) != 1 || seg.Value[0] != 3 {
		t.Fatalf("segment 3 = %+v, want put k3=0x03", seg)
	}
}

// TestFollowSincePartial checks that a cursor mid-tail returns exactly the
// suffix, and a current cursor returns nothing (still ok).
func TestFollowSincePartial(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = s.Close() }()
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), nil); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	segs, ok := s.Since(3)
	if !ok || len(segs) != 2 {
		t.Fatalf("Since(3) = %d segments ok=%v, want 2 true", len(segs), ok)
	}
	if segs[0].Seq != 4 || segs[1].Seq != 5 {
		t.Fatalf("Since(3) seqs = %d,%d, want 4,5", segs[0].Seq, segs[1].Seq)
	}
	if segs, ok := s.Since(5); !ok || len(segs) != 0 {
		t.Fatalf("Since(current) = %d segments ok=%v, want 0 true", len(segs), ok)
	}
	// A cursor ahead of the source (stale epoch numbering) forces a resync.
	if _, ok := s.Since(6); ok {
		t.Fatalf("Since(ahead of seq) reported ok, want snapshot fallback")
	}
}

// TestFollowTailBounded checks that the tail is trimmed to the configured
// buffer and that an outrun cursor is redirected to the snapshot path.
func TestFollowTailBounded(t *testing.T) {
	s, err := Open(t.TempDir(), WithFollowBuffer(4))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = s.Close() }()
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Oldest retained is seq 7 (10 - 4 + 1); a cursor at 6 is the edge.
	if segs, ok := s.Since(6); !ok || len(segs) != 4 {
		t.Fatalf("Since(6) = %d segments ok=%v, want 4 true", len(segs), ok)
	}
	if _, ok := s.Since(5); ok {
		t.Fatalf("Since(outrun) reported ok, want snapshot fallback")
	}
	snap, seq := s.SnapshotAll()
	if seq != 10 || len(snap) != 10 {
		t.Fatalf("SnapshotAll = %d rows at seq %d, want 10 rows at 10", len(snap), seq)
	}
	// Resume following from the snapshot's seq.
	if err := s.Put("k10", nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if segs, ok := s.Since(seq); !ok || len(segs) != 1 || segs[0].Key != "k10" {
		t.Fatalf("Since(snapshot seq) = %+v ok=%v, want the one new segment", segs, ok)
	}
}

// TestFollowEpochChangesAcrossReopen checks that a reopened store presents
// a new epoch and a reset sequence, forcing followers through resync.
func TestFollowEpochChangesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	e1 := s.Epoch()
	if e1 == 0 {
		t.Fatalf("Epoch = 0, want nonzero")
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = s2.Close() }()
	if s2.Epoch() == e1 {
		t.Fatalf("reopened store kept epoch %d", e1)
	}
	// Recovery replay does not count toward the follow cursor: followers
	// resync via snapshot on epoch change, not by replaying recovery.
	if got := s2.Seq(); got != 0 {
		t.Fatalf("reopened store Seq = %d, want 0", got)
	}
	if v, ok := s2.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("reopened store lost k=v")
	}
}
