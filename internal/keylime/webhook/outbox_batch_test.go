package webhook

// Batched-enqueue suite: one fsync per revocation fan-out, concurrent
// batches under a group-commit journal, and the guard that keeps
// compaction from erasing an enqueue that is durable but not yet in the
// pending map.

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/keylime/store"
)

func batchNote(i int) Notification {
	n := Notification{
		AgentID: fmt.Sprintf("agent-%02d", i),
		Type:    "runtime-integrity",
		Path:    "/usr/bin/sshd",
		Time:    time.Unix(1700000000+int64(i), 0),
	}
	n.DedupKey = DedupKey(n)
	return n
}

// TestOutboxEnqueueBatchOneFsync: a fan-out of one notification to many
// endpoints costs a single journal fsync and every delivery survives a
// reopen.
func TestOutboxEnqueueBatchOneFsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.wal")
	counting := store.NewCountingFS(store.OS())
	ob, err := OpenOutbox(counting, path)
	if err != nil {
		t.Fatal(err)
	}
	note := batchNote(0)
	batch := make([]PendingDelivery, 8)
	for i := range batch {
		batch[i] = PendingDelivery{Endpoint: fmt.Sprintf("https://siem-%d.example", i), Note: note}
	}
	base := counting.Counters().Syncs
	if err := ob.EnqueueBatch(batch); err != nil {
		t.Fatal(err)
	}
	if syncs := counting.Counters().Syncs - base; syncs != 1 {
		t.Fatalf("8-endpoint fan-out cost %d fsyncs, want 1", syncs)
	}
	if ob.Len() != len(batch) {
		t.Fatalf("pending %d, want %d", ob.Len(), len(batch))
	}
	_ = ob.Close()

	re, err := OpenOutbox(store.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	if re.Len() != len(batch) {
		t.Fatalf("reopen recovered %d pending, want %d", re.Len(), len(batch))
	}
}

// TestOutboxConcurrentBatchesGroupCommit: concurrent EnqueueBatch calls
// through a group-commit journal all land durably, with no record lost
// or duplicated, and a compaction racing the burst never erases one.
func TestOutboxConcurrentBatchesGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.wal")
	ob, err := OpenOutbox(store.OS(), path, store.WithGroupCommit(time.Millisecond, 16))
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			note := batchNote(w)
			if err := ob.EnqueueBatch([]PendingDelivery{
				{Endpoint: "https://a.example", Note: note},
				{Endpoint: "https://b.example", Note: note},
			}); err != nil {
				t.Errorf("writer %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	if ob.Len() != writers*2 {
		t.Fatalf("pending %d, want %d", ob.Len(), writers*2)
	}
	// Ack half of them; the ack path may compact, which must preserve
	// every still-pending delivery.
	for w := 0; w < writers; w++ {
		if err := ob.Ack("https://a.example", batchNote(w).DedupKey); err != nil {
			t.Fatal(err)
		}
	}
	_ = ob.Close()

	re, err := OpenOutbox(store.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	if re.Len() != writers {
		t.Fatalf("reopen recovered %d pending, want %d", re.Len(), writers)
	}
	for _, pd := range re.Pending() {
		if pd.Endpoint != "https://b.example" {
			t.Fatalf("acked delivery resurrected: %+v", pd)
		}
	}
}
