// Package webhook implements Keylime's revocation-notification framework:
// when an agent fails attestation, the verifier posts a signed notification
// to operator-configured webhook endpoints (SIEMs, ticketing, node
// quarantine automation). Deliveries are HMAC-signed so receivers can
// authenticate them, queued asynchronously, and retried with exponential
// backoff on transient failures.
package webhook

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/keylime/dsse"
	"repro/internal/keylime/httppool"
	"repro/internal/keylime/verifier"
	"repro/internal/simclock"
)

// SignatureHeader carries the hex HMAC-SHA256 of the request body.
const SignatureHeader = "X-Keylime-Signature"

// RevocationPayloadType is the DSSE payload type of a sealed
// revocation notification (the payload is the Notification JSON).
const RevocationPayloadType = "application/vnd.keylime.revocation+json"

// DSSEContentType is the Content-Type of a delivery whose body is a
// DSSE envelope rather than a bare notification.
const DSSEContentType = "application/vnd.keylime.revocation+dsse"

// Notification is the JSON body delivered to webhook receivers.
type Notification struct {
	AgentID string    `json:"agent_id"`
	Type    string    `json:"type"`
	Path    string    `json:"path,omitempty"`
	Detail  string    `json:"detail"`
	Time    time.Time `json:"time"`
	// Attempt counts delivery attempts (1-based).
	Attempt int `json:"attempt"`
	// DedupKey identifies the underlying failure event. It is stable
	// across retries and crash-driven redeliveries, so receivers can
	// deduplicate the at-least-once stream. Filled by Notify if empty.
	DedupKey string `json:"dedup_key,omitempty"`
}

// Errors.
var (
	ErrClosed = errors.New("webhook: notifier closed")
)

// Config tunes the notifier.
type Config struct {
	// Endpoints are the receiver URLs.
	Endpoints []string
	// Secret keys the HMAC signature (shared with receivers).
	Secret []byte
	// MaxAttempts per delivery (default 4).
	MaxAttempts int
	// InitialBackoff between retries, doubled each attempt (default 1s).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 30s): with many
	// attempts configured, uncapped doubling turns a receiver outage into
	// multi-hour delivery gaps.
	MaxBackoff time.Duration
	// Jitter is the fraction of each backoff randomized around its nominal
	// value, in [0, 1] (default 0). Jitter decorrelates retry bursts when a
	// fleet-wide failure fans out to the same receiver.
	Jitter float64
	// ReplaySpread staggers outbox replay at startup: each journaled
	// delivery is re-attempted at a deterministic per-event offset in
	// [0, ReplaySpread] instead of the whole backlog firing at t=0, so a
	// cluster of recovering verifiers does not thundering-herd the
	// revocation receiver (default InitialBackoff). Close flushes any
	// not-yet-due replays immediately.
	ReplaySpread time.Duration
	// Client is the HTTP client used for deliveries.
	Client *http.Client
	// Clock drives retry backoff (default real time).
	Clock simclock.Clock
	// QueueSize bounds pending notifications (default 256).
	QueueSize int
	// Outbox, when set, journals every notification before delivery and
	// acknowledges it after the receiver accepts: deliveries pending at a
	// crash are replayed on the next construction (at-least-once).
	Outbox *Outbox
	// Keyring, when set (and holding a signing key), seals every
	// notification in a DSSE envelope BEFORE it is journaled or
	// delivered: the outbox stores the envelope and replays deliver the
	// original signed bytes, so a receiver can prove a revocation came
	// from this verifier even when it arrives via a post-crash replay.
	Keyring *dsse.Keyring
	// Logf receives operational warnings (default log.Printf).
	Logf func(format string, args ...any)
}

// Stats counts notifier activity.
type Stats struct {
	// Enqueued notifications (per endpoint), including replays.
	Enqueued int
	// Delivered deliveries acknowledged by a receiver.
	Delivered int
	// Failed deliveries that exhausted their retry budget.
	Failed int
	// Dropped notifications lost to a full queue. With an outbox they
	// remain journaled and are replayed on restart; without one they are
	// gone.
	Dropped int
	// Replayed deliveries recovered from the outbox at startup.
	Replayed int
}

// DeliveryResult records the outcome of one notification delivery.
type DeliveryResult struct {
	Endpoint string
	AgentID  string
	Attempts int
	Err      error
}

// Notifier delivers failure notifications. Construct with New; Close to
// drain and stop.
type Notifier struct {
	cfg        Config
	queue      chan queued
	done       chan struct{}
	replayStop chan struct{}
	replayDone chan struct{}

	mu       sync.Mutex
	closed   bool
	results  []DeliveryResult
	stats    Stats
	dropOnce sync.Once
}

type queued struct {
	endpoint string
	n        Notification
	env      json.RawMessage // sealed envelope; nil when unsigned
	replayed bool
}

// New starts a notifier with one delivery worker. When cfg.Outbox holds
// deliveries pending from a previous run they are re-enqueued first, ahead
// of new notifications.
func New(cfg Config) *Notifier {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.InitialBackoff <= 0 {
		cfg.InitialBackoff = time.Second
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.Jitter > 1 {
		cfg.Jitter = 1
	}
	if cfg.Client == nil {
		cfg.Client = httppool.Shared()
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.ReplaySpread <= 0 {
		cfg.ReplaySpread = cfg.InitialBackoff
	}
	var replay []PendingDelivery
	if cfg.Outbox != nil {
		// Size the queue so the replayed backlog never drops.
		replay = cfg.Outbox.Pending()
		if cfg.QueueSize < len(replay) {
			cfg.QueueSize = len(replay)
		}
	}
	n := &Notifier{
		cfg:        cfg,
		queue:      make(chan queued, cfg.QueueSize),
		done:       make(chan struct{}),
		replayStop: make(chan struct{}),
		replayDone: make(chan struct{}),
	}
	go n.worker()
	go n.replayer(replay)
	return n
}

// replayer re-enqueues the outbox backlog, staggered over the replay
// spread: each delivery gets a deterministic offset hashed from its event
// key, so a fleet of verifiers recovering from the same outage spreads its
// redeliveries instead of synchronizing them. A Close mid-spread flushes
// the not-yet-due remainder immediately — shutdown must not strand
// journaled revocations that a live notifier could still deliver.
func (n *Notifier) replayer(replay []PendingDelivery) {
	defer close(n.replayDone)
	if len(replay) == 0 {
		return
	}
	type timed struct {
		due time.Time
		pd  PendingDelivery
	}
	now := n.cfg.Clock.Now()
	items := make([]timed, 0, len(replay))
	for _, pd := range replay {
		off := replayOffset(pd.Endpoint, pd.Note.DedupKey, n.cfg.ReplaySpread)
		due := now.Add(off)
		if n.cfg.Outbox != nil {
			n.cfg.Outbox.SetNextRetry(pd.Endpoint, pd.Note.DedupKey, due)
		}
		items = append(items, timed{due: due, pd: pd})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].due.Before(items[j].due) })
	flush := false
	for _, it := range items {
		if !flush {
			if d := it.due.Sub(n.cfg.Clock.Now()); d > 0 {
				select {
				case <-n.cfg.Clock.After(d):
				case <-n.replayStop:
					flush = true
				}
			}
		}
		n.queue <- queued{endpoint: it.pd.Endpoint, n: it.pd.Note, env: it.pd.Env, replayed: true}
		n.mu.Lock()
		n.stats.Enqueued++
		n.stats.Replayed++
		n.mu.Unlock()
	}
}

// replayOffset maps one pending delivery to its slot in [0, spread],
// deterministically per (endpoint, event) so simulated-clock tests and
// restarted processes land on the same schedule.
func replayOffset(endpoint, dedupKey string, spread time.Duration) time.Duration {
	if spread <= 0 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(endpoint))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(dedupKey))
	u := float64(h.Sum64()>>11) / (1 << 53)
	return time.Duration(u * float64(spread))
}

// Handler returns the verifier revocation callback that feeds this
// notifier; wire it with verifier.WithRevocationHandler(n.Handler()).
func (n *Notifier) Handler() func(agentID string, f verifier.Failure) {
	return func(agentID string, f verifier.Failure) {
		n.Notify(Notification{
			AgentID: agentID,
			Type:    f.Type.String(),
			Path:    f.Path,
			Detail:  f.Detail,
			Time:    f.Time,
		})
	}
}

// Notify enqueues a notification for every configured endpoint. It never
// blocks: when the queue is full the notification is dropped and recorded
// as a failed delivery (and counted in Stats.Dropped). With an outbox
// configured the notification is journaled before the delivery attempt,
// so even a dropped one survives to the next restart's replay.
func (n *Notifier) Notify(note Notification) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	if note.DedupKey == "" {
		note.DedupKey = DedupKey(note)
	}
	// Seal before enqueue: the envelope is computed once, journaled with
	// the delivery, and every attempt (including post-crash replays)
	// posts those exact signed bytes. A sealing failure degrades to
	// unsigned delivery with a warning — losing the signature must not
	// also lose the revocation.
	env := n.seal(note)
	if n.cfg.Outbox != nil && len(n.cfg.Endpoints) > 0 {
		// One batched journal append (one fsync) covers the fan-out to
		// every endpoint, instead of one fsync per endpoint.
		batch := make([]PendingDelivery, len(n.cfg.Endpoints))
		for i, ep := range n.cfg.Endpoints {
			batch[i] = PendingDelivery{Endpoint: ep, Note: note, Env: env}
		}
		if err := n.cfg.Outbox.EnqueueBatch(batch); err != nil {
			// Keep delivering: losing durability must not also lose the
			// real-time notification.
			n.cfg.Logf("webhook: outbox enqueue failed: %v", err)
		}
	}
	for _, ep := range n.cfg.Endpoints {
		select {
		case n.queue <- queued{endpoint: ep, n: note, env: env}:
			n.mu.Lock()
			n.stats.Enqueued++
			n.mu.Unlock()
		default:
			n.mu.Lock()
			n.stats.Dropped++
			n.mu.Unlock()
			n.dropOnce.Do(func() {
				n.cfg.Logf("webhook: delivery queue full (size %d); dropping notifications (agent %s)", n.cfg.QueueSize, note.AgentID)
			})
			n.record(DeliveryResult{Endpoint: ep, AgentID: note.AgentID, Err: errors.New("webhook: queue full")})
		}
	}
}

// Close stops accepting notifications, drains the queue, and waits for the
// worker to finish.
func (n *Notifier) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	// Flush the replayer first: it feeds the queue, which must not be
	// closed under it, and its remaining backlog should go out now.
	close(n.replayStop)
	<-n.replayDone
	close(n.queue)
	<-n.done
}

// Results returns the delivery outcomes so far.
func (n *Notifier) Results() []DeliveryResult {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]DeliveryResult(nil), n.results...)
}

// Stats returns the notifier's activity counters.
func (n *Notifier) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

func (n *Notifier) record(r DeliveryResult) {
	n.mu.Lock()
	n.results = append(n.results, r)
	n.mu.Unlock()
}

// worker drains the queue, delivering with retries. A delivery the
// receiver accepted is acknowledged in the outbox; one that exhausted its
// retry budget is left pending there, to be replayed on the next restart.
// seal signs a notification into its DSSE envelope, or returns nil
// when signing is not configured (or fails — logged, never fatal).
func (n *Notifier) seal(note Notification) json.RawMessage {
	kr := n.cfg.Keyring
	if kr == nil || !kr.CanSign() {
		return nil
	}
	body, err := json.Marshal(note)
	if err != nil {
		n.cfg.Logf("webhook: encoding notification for sealing: %v", err)
		return nil
	}
	env, err := kr.Sign(RevocationPayloadType, body)
	if err != nil {
		n.cfg.Logf("webhook: sealing notification: %v", err)
		return nil
	}
	raw, err := dsse.Encode(env)
	if err != nil {
		n.cfg.Logf("webhook: encoding envelope: %v", err)
		return nil
	}
	return raw
}

func (n *Notifier) worker() {
	defer close(n.done)
	for q := range n.queue {
		attempts, err := n.deliver(q)
		n.record(DeliveryResult{Endpoint: q.endpoint, AgentID: q.n.AgentID, Attempts: attempts, Err: err})
		n.mu.Lock()
		if err == nil {
			n.stats.Delivered++
		} else {
			n.stats.Failed++
		}
		n.mu.Unlock()
		if err == nil && n.cfg.Outbox != nil {
			if ackErr := n.cfg.Outbox.Ack(q.endpoint, q.n.DedupKey); ackErr != nil {
				// The delivery happened; a failed ack means one extra
				// redelivery after a restart, which receivers dedup.
				n.cfg.Logf("webhook: outbox ack for %s failed: %v", q.endpoint, ackErr)
			}
		}
	}
}

// deliver posts one notification with capped, jittered retry backoff.
func (n *Notifier) deliver(q queued) (int, error) {
	endpoint, note := q.endpoint, q.n
	backoff := n.cfg.InitialBackoff
	var lastErr error
	for attempt := 1; attempt <= n.cfg.MaxAttempts; attempt++ {
		note.Attempt = attempt
		if n.cfg.Outbox != nil {
			n.cfg.Outbox.RecordAttempt(endpoint, note.DedupKey)
		}
		lastErr = n.post(endpoint, note, q.env)
		if lastErr == nil {
			return attempt, nil
		}
		if attempt < n.cfg.MaxAttempts {
			n.cfg.Clock.Sleep(n.jittered(backoff, endpoint, attempt))
			backoff *= 2
			if backoff > n.cfg.MaxBackoff {
				backoff = n.cfg.MaxBackoff
			}
		}
	}
	return n.cfg.MaxAttempts, fmt.Errorf("webhook: delivery to %s failed: %w", endpoint, lastErr)
}

// jittered spreads d over [d*(1-Jitter), d], deterministically per
// (endpoint, attempt) so simulated-clock tests stay reproducible. Staying at
// or below the nominal backoff keeps the cap a true upper bound.
func (n *Notifier) jittered(d time.Duration, endpoint string, attempt int) time.Duration {
	j := n.cfg.Jitter
	if j <= 0 || d <= 0 {
		return d
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(endpoint))
	_, _ = h.Write([]byte{byte(attempt)})
	u := float64(h.Sum64()>>11) / (1 << 53)
	return time.Duration(float64(d) * (1 - j*u))
}

// Sign computes the HMAC signature receivers should verify.
func Sign(secret, body []byte) string {
	mac := hmac.New(sha256.New, secret)
	mac.Write(body)
	return hex.EncodeToString(mac.Sum(nil))
}

// VerifySignature checks a received signature against the body.
func VerifySignature(secret, body []byte, signature string) bool {
	want, err := hex.DecodeString(signature)
	if err != nil {
		return false
	}
	mac := hmac.New(sha256.New, secret)
	mac.Write(body)
	return hmac.Equal(want, mac.Sum(nil))
}

func (n *Notifier) post(endpoint string, note Notification, env json.RawMessage) error {
	// A sealed delivery posts the envelope verbatim (the signature holds
	// only over the exact sealed bytes); per-attempt metadata rides in a
	// header instead of mutating the signed body.
	contentType := "application/json"
	body, err := json.Marshal(note)
	if err != nil {
		return fmt.Errorf("webhook: encoding notification: %w", err)
	}
	if len(env) > 0 {
		body = env
		contentType = DSSEContentType
	}
	req, err := http.NewRequest(http.MethodPost, endpoint, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("webhook: building request: %w", err)
	}
	req.Header.Set("Content-Type", contentType)
	if len(env) > 0 {
		req.Header.Set("X-Keylime-Attempt", fmt.Sprint(note.Attempt))
	}
	if len(n.cfg.Secret) > 0 {
		req.Header.Set(SignatureHeader, Sign(n.cfg.Secret, body))
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("webhook: endpoint returned %d", resp.StatusCode)
	}
	return nil
}
