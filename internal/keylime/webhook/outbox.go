package webhook

// Durable revocation outbox: the in-memory delivery queue loses every
// pending notification when the verifier dies, which in Keylime terms
// means a node that failed attestation may never reach the SIEM or the
// quarantine automation. The outbox journals each notification before
// delivery is attempted and acknowledges it only after the receiver
// returned 2xx, so a crash replays the in-flight set on restart.
// Delivery is therefore at-least-once; receivers deduplicate on
// Notification.DedupKey (a hash of the underlying failure event, stable
// across redeliveries).

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/keylime/store"
)

// outboxCompactThreshold is the journal record count past which an
// ack-heavy outbox is rewritten to just its pending set.
const outboxCompactThreshold = 64

// outbox journal operations.
const (
	outboxOpEnqueue = "enq"
	outboxOpAck     = "ack"
)

// outboxRecord is one journaled outbox mutation.
type outboxRecord struct {
	Op       string        `json:"op"`
	Key      string        `json:"key"`
	Endpoint string        `json:"endpoint"`
	Note     *Notification `json:"note,omitempty"`
	// Env is the DSSE envelope sealed over the notification before it
	// was enqueued. Journaling the envelope (not just the notification)
	// is what makes the chain of custody hold across a crash: a replay
	// delivers the original signed bytes, it never re-signs.
	Env json.RawMessage `json:"env,omitempty"`
	// At is when the delivery was enqueued, preserved across restarts so
	// OldestPendingAge reflects how long a revocation has truly been
	// stuck, not how long the current process has been up.
	At time.Time `json:"at,omitempty"`
}

// PendingDelivery is one not-yet-acknowledged notification.
type PendingDelivery struct {
	Endpoint string
	Note     Notification
	// Env is the sealed envelope to deliver verbatim (nil when the
	// notifier runs unsigned).
	Env json.RawMessage
	// EnqueuedAt is when the delivery first entered the outbox.
	EnqueuedAt time.Time
}

// DedupKey derives the receiver-side deduplication key for a
// notification: a hash of the agent and the failure event, excluding
// per-delivery fields (Attempt), so every redelivery of the same event
// carries the same key.
func DedupKey(n Notification) string {
	h := sha256.New()
	for _, s := range []string{n.AgentID, n.Type, n.Path, n.Detail, n.Time.UTC().Format("2006-01-02T15:04:05.999999999Z")} {
		var l [2]byte
		l[0] = byte(len(s) >> 8)
		l[1] = byte(len(s))
		h.Write(l[:])
		h.Write([]byte(s))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Outbox is a journal-backed at-least-once delivery buffer. Construct
// with OpenOutbox; safe for concurrent use.
type Outbox struct {
	mu       sync.Mutex
	j        *store.Journal
	pending  map[string]PendingDelivery // key: dedup key + "|" + endpoint
	retryAt  map[string]time.Time       // scheduled replay time per pending key
	attempts map[string]int             // delivery attempts per pending key (in-memory)
	now      func() time.Time
	broken   bool
	enqueued int
	acked    int
	replayed int
	// inflight counts enqueues that have reserved a journal position but
	// not yet been applied to pending. Compaction rewrites the journal
	// from pending, so running it while inflight > 0 would erase a
	// durable enqueue the map does not know about yet.
	inflight int
}

// OutboxStats is an operational snapshot of the outbox, the numbers an
// operator needs to see whether revocations are actually leaving the
// building: a growing Pending with a flat Acked means the receiver is
// down and every failed-attestation alert is stuck in the journal.
type OutboxStats struct {
	// Enqueued / Acked count journal operations since this process opened
	// the outbox.
	Enqueued int `json:"enqueued"`
	Acked    int `json:"acked"`
	// Replayed is how many pending deliveries the open recovered from the
	// journal (a crash's in-flight set).
	Replayed int `json:"replayed"`
	// Pending is the current not-yet-acknowledged delivery count.
	Pending int `json:"pending"`
	// JournalRecords is the on-disk journal length (compaction trims it).
	JournalRecords int `json:"journal_records"`
	// Broken reports that a journal rewrite failed; the outbox still
	// appends but can no longer compact.
	Broken bool `json:"broken"`
	// NextRetry is the earliest scheduled replay time across the pending
	// deliveries (zero when none is scheduled): when the receiver will
	// next hear from this outbox without an operator doing anything.
	NextRetry time.Time `json:"next_retry,omitempty"`
	// OldestPendingAge is how long the oldest unacknowledged delivery has
	// been waiting, measured from its original enqueue (surviving
	// restarts). A signed revocation stuck past the alert threshold means
	// the receiver has not confirmed a quarantine.
	OldestPendingAge time.Duration `json:"oldest_pending_age,omitempty"`
	// Oldest lists the longest-stuck pending deliveries (capped at
	// oldestListCap), each with its per-entry delivery attempt count.
	Oldest []PendingInfo `json:"oldest,omitempty"`
}

// oldestListCap bounds the per-entry detail in Stats so a huge backlog
// cannot turn a stats poll into a megabyte dump.
const oldestListCap = 16

// PendingInfo is per-entry operational detail for one stuck delivery.
type PendingInfo struct {
	Endpoint   string    `json:"endpoint"`
	DedupKey   string    `json:"dedup_key"`
	AgentID    string    `json:"agent_id"`
	EnqueuedAt time.Time `json:"enqueued_at"`
	// Age duplicates now-EnqueuedAt for scrapers that want a number.
	Age time.Duration `json:"age"`
	// Attempts counts delivery attempts made by this process.
	Attempts int `json:"attempts"`
	// NextRetry is when the notifier will try again (zero if unscheduled).
	NextRetry time.Time `json:"next_retry,omitempty"`
	// Signed reports whether the delivery carries a DSSE envelope.
	Signed bool `json:"signed,omitempty"`
}

// Stats returns the outbox's operational counters.
func (o *Outbox) Stats() OutboxStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	var next time.Time
	for id, t := range o.retryAt {
		if _, ok := o.pending[id]; !ok {
			continue
		}
		if next.IsZero() || t.Before(next) {
			next = t
		}
	}
	now := o.now()
	infos := make([]PendingInfo, 0, len(o.pending))
	for id, pd := range o.pending {
		info := PendingInfo{
			Endpoint:   pd.Endpoint,
			DedupKey:   pd.Note.DedupKey,
			AgentID:    pd.Note.AgentID,
			EnqueuedAt: pd.EnqueuedAt,
			Attempts:   o.attempts[id],
			NextRetry:  o.retryAt[id],
			Signed:     len(pd.Env) > 0,
		}
		if !pd.EnqueuedAt.IsZero() {
			info.Age = now.Sub(pd.EnqueuedAt)
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Age > infos[j].Age })
	var oldestAge time.Duration
	if len(infos) > 0 {
		oldestAge = infos[0].Age
	}
	if oldestAge < 0 {
		oldestAge = 0
	}
	if len(infos) > oldestListCap {
		infos = infos[:oldestListCap]
	}
	return OutboxStats{
		Enqueued:         o.enqueued,
		Acked:            o.acked,
		Replayed:         o.replayed,
		Pending:          len(o.pending),
		JournalRecords:   o.j.Records(),
		Broken:           o.broken,
		NextRetry:        next,
		OldestPendingAge: oldestAge,
		Oldest:           infos,
	}
}

// RecordAttempt counts one delivery attempt against a pending entry,
// feeding the per-entry attempt counts in Stats. Attempts are in-memory
// only: a restart resets them, but the entry's age does not.
func (o *Outbox) RecordAttempt(endpoint, dedupKey string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	id := dedupKey + "|" + endpoint
	if _, ok := o.pending[id]; !ok {
		return
	}
	o.attempts[id]++
}

// SetClock overrides the outbox's time source (tests). Call before use.
func (o *Outbox) SetClock(now func() time.Time) {
	o.mu.Lock()
	o.now = now
	o.mu.Unlock()
}

// SetNextRetry records when a pending delivery's replay is scheduled, for
// operational visibility (OutboxStats.NextRetry). The schedule is
// in-memory only — a restart recomputes it — and is dropped when the
// delivery is acknowledged.
func (o *Outbox) SetNextRetry(endpoint, dedupKey string, t time.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	id := dedupKey + "|" + endpoint
	if _, ok := o.pending[id]; !ok {
		return
	}
	if o.retryAt == nil {
		o.retryAt = make(map[string]time.Time)
	}
	o.retryAt[id] = t
}

// OpenOutbox opens (creating if absent) the outbox journal at path and
// replays it: enqueues without a matching ack become the pending set.
// Journal options (e.g. store.WithGroupCommit) pass through to the
// underlying store.OpenJournal.
func OpenOutbox(fsys store.FS, path string, opts ...store.JournalOption) (*Outbox, error) {
	j, payloads, err := store.OpenJournal(fsys, path, opts...)
	if err != nil {
		return nil, fmt.Errorf("webhook: opening outbox: %w", err)
	}
	pending := make(map[string]PendingDelivery)
	for i, p := range payloads {
		var rec outboxRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			_ = j.Close()
			return nil, fmt.Errorf("webhook: outbox record %d: %w", i, err)
		}
		id := rec.Key + "|" + rec.Endpoint
		switch rec.Op {
		case outboxOpEnqueue:
			if rec.Note == nil {
				_ = j.Close()
				return nil, fmt.Errorf("webhook: outbox record %d: enqueue without notification", i)
			}
			pending[id] = PendingDelivery{Endpoint: rec.Endpoint, Note: *rec.Note, Env: rec.Env, EnqueuedAt: rec.At}
		case outboxOpAck:
			delete(pending, id)
		default:
			_ = j.Close()
			return nil, fmt.Errorf("webhook: outbox record %d: unknown op %q", i, rec.Op)
		}
	}
	return &Outbox{
		j: j, pending: pending, replayed: len(pending),
		attempts: make(map[string]int), now: time.Now,
	}, nil
}

// Enqueue journals a notification for an endpoint before any delivery
// attempt. The notification's DedupKey must be set. A nil return means
// the record is fsynced: the delivery will survive a crash.
func (o *Outbox) Enqueue(endpoint string, note Notification) error {
	return o.EnqueueBatch([]PendingDelivery{{Endpoint: endpoint, Note: note}})
}

// EnqueueBatch journals a burst of deliveries — a revocation fanned out
// to every endpoint, or a sweep's worth of failures — as one journal
// write vector under a single fsync. Two-phase: the batch's journal
// position is reserved under the outbox lock (so concurrent batches
// keep a consistent order on disk), but the wait for durability happens
// outside it, letting a group-commit journal merge concurrent batches
// into one fsync. When EnqueueBatch returns nil every delivery is
// durable and pending; on a torn write the journal recovers a prefix of
// the batch, each record of which is an independent pending delivery.
func (o *Outbox) EnqueueBatch(deliveries []PendingDelivery) error {
	if len(deliveries) == 0 {
		return nil
	}
	o.mu.Lock()
	enqueueTime := o.now()
	o.mu.Unlock()
	payloads := make([][]byte, len(deliveries))
	for i := range deliveries {
		d := &deliveries[i]
		if d.Note.DedupKey == "" {
			return fmt.Errorf("webhook: enqueue without dedup key")
		}
		d.Note.Attempt = 0 // per-delivery field; not part of the durable event
		if d.EnqueuedAt.IsZero() {
			d.EnqueuedAt = enqueueTime
		}
		payload, err := json.Marshal(outboxRecord{
			Op: outboxOpEnqueue, Key: d.Note.DedupKey, Endpoint: d.Endpoint, Note: &d.Note,
			Env: d.Env, At: d.EnqueuedAt,
		})
		if err != nil {
			return fmt.Errorf("webhook: encoding outbox record: %w", err)
		}
		payloads[i] = payload
	}
	o.mu.Lock()
	done := o.j.AppendBatchAsync(payloads)
	o.inflight++
	o.mu.Unlock()
	err := <-done
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inflight--
	if err != nil {
		return fmt.Errorf("webhook: journaling outbox batch: %w", err)
	}
	for _, d := range deliveries {
		o.pending[d.Note.DedupKey+"|"+d.Endpoint] = d
	}
	o.enqueued += len(deliveries)
	return nil
}

// Ack marks a delivery as acknowledged by the receiver; the journal
// record makes the ack durable so a restart will not redeliver it.
func (o *Outbox) Ack(endpoint, dedupKey string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	id := dedupKey + "|" + endpoint
	if _, ok := o.pending[id]; !ok {
		return nil
	}
	if err := o.appendLocked(outboxRecord{Op: outboxOpAck, Key: dedupKey, Endpoint: endpoint}); err != nil {
		return err
	}
	delete(o.pending, id)
	delete(o.retryAt, id)
	delete(o.attempts, id)
	o.acked++
	o.maybeCompactLocked()
	return nil
}

// appendLocked journals one record; o.mu must be held.
func (o *Outbox) appendLocked(rec outboxRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("webhook: encoding outbox record: %w", err)
	}
	if err := o.j.Append(payload); err != nil {
		return fmt.Errorf("webhook: journaling outbox record: %w", err)
	}
	return nil
}

// maybeCompactLocked rewrites an ack-heavy journal down to its pending
// set. Compaction failures are non-fatal — the journal keeps growing and
// the next ack retries — unless the journal itself reports it is broken.
func (o *Outbox) maybeCompactLocked() {
	if o.broken || o.inflight > 0 {
		return
	}
	n := o.j.Records()
	if n < outboxCompactThreshold || n <= 2*len(o.pending) {
		return
	}
	payloads := make([][]byte, 0, len(o.pending))
	for _, pd := range o.pending {
		payload, err := json.Marshal(outboxRecord{
			Op: outboxOpEnqueue, Key: pd.Note.DedupKey, Endpoint: pd.Endpoint, Note: &pd.Note,
			Env: pd.Env, At: pd.EnqueuedAt,
		})
		if err != nil {
			return
		}
		payloads = append(payloads, payload)
	}
	if err := o.j.Rewrite(payloads); err != nil {
		o.broken = true
	}
}

// Pending returns the not-yet-acknowledged deliveries, the set a restart
// must replay.
func (o *Outbox) Pending() []PendingDelivery {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]PendingDelivery, 0, len(o.pending))
	for _, pd := range o.pending {
		out = append(out, pd)
	}
	return out
}

// journalRecords reports the journal's record count (for tests).
func (o *Outbox) journalRecords() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.j.Records()
}

// Len reports the number of pending deliveries.
func (o *Outbox) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.pending)
}

// Close releases the journal handle.
func (o *Outbox) Close() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.j.Close()
}
