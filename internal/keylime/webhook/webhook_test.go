package webhook

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/keylime/verifier"
	"repro/internal/simclock"
)

// receiver captures webhook deliveries.
type receiver struct {
	mu       sync.Mutex
	bodies   [][]byte
	sigs     []string
	failures int // respond 500 for the first N requests
}

func (r *receiver) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, _ := io.ReadAll(req.Body)
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.failures > 0 {
			r.failures--
			http.Error(w, "try later", http.StatusInternalServerError)
			return
		}
		r.bodies = append(r.bodies, body)
		r.sigs = append(r.sigs, req.Header.Get(SignatureHeader))
	})
}

func (r *receiver) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.bodies)
}

func TestDeliverySignedAndReceived(t *testing.T) {
	rcv := &receiver{}
	srv := httptest.NewServer(rcv.handler())
	defer srv.Close()
	secret := []byte("shared-secret")
	n := New(Config{Endpoints: []string{srv.URL}, Secret: secret, InitialBackoff: time.Millisecond})
	n.Notify(Notification{AgentID: "agent-1", Type: "hash-mismatch", Path: "/usr/bin/x", Time: time.Now()})
	n.Close()

	if rcv.count() != 1 {
		t.Fatalf("deliveries = %d, want 1", rcv.count())
	}
	rcv.mu.Lock()
	body, sig := rcv.bodies[0], rcv.sigs[0]
	rcv.mu.Unlock()
	if !VerifySignature(secret, body, sig) {
		t.Fatal("delivery signature invalid")
	}
	var note Notification
	if err := json.Unmarshal(body, &note); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if note.AgentID != "agent-1" || note.Type != "hash-mismatch" || note.Attempt != 1 {
		t.Fatalf("notification = %+v", note)
	}
	results := n.Results()
	if len(results) != 1 || results[0].Err != nil || results[0].Attempts != 1 {
		t.Fatalf("results = %+v", results)
	}
}

func TestRetryOnTransientFailure(t *testing.T) {
	rcv := &receiver{failures: 2}
	srv := httptest.NewServer(rcv.handler())
	defer srv.Close()
	n := New(Config{Endpoints: []string{srv.URL}, InitialBackoff: time.Millisecond})
	n.Notify(Notification{AgentID: "agent-1", Type: "comms-error"})
	n.Close()
	if rcv.count() != 1 {
		t.Fatalf("deliveries = %d, want 1 after retries", rcv.count())
	}
	results := n.Results()
	if len(results) != 1 || results[0].Err != nil || results[0].Attempts != 3 {
		t.Fatalf("results = %+v, want success on attempt 3", results)
	}
}

func TestGivesUpAfterMaxAttempts(t *testing.T) {
	rcv := &receiver{failures: 100}
	srv := httptest.NewServer(rcv.handler())
	defer srv.Close()
	n := New(Config{Endpoints: []string{srv.URL}, MaxAttempts: 3, InitialBackoff: time.Millisecond})
	n.Notify(Notification{AgentID: "agent-1", Type: "x"})
	n.Close()
	results := n.Results()
	if len(results) != 1 || results[0].Err == nil || results[0].Attempts != 3 {
		t.Fatalf("results = %+v, want failure after 3 attempts", results)
	}
}

func TestFanOutToMultipleEndpoints(t *testing.T) {
	a, b := &receiver{}, &receiver{}
	srvA := httptest.NewServer(a.handler())
	defer srvA.Close()
	srvB := httptest.NewServer(b.handler())
	defer srvB.Close()
	n := New(Config{Endpoints: []string{srvA.URL, srvB.URL}, InitialBackoff: time.Millisecond})
	n.Notify(Notification{AgentID: "agent-1", Type: "x"})
	n.Close()
	if a.count() != 1 || b.count() != 1 {
		t.Fatalf("deliveries = %d/%d, want 1/1", a.count(), b.count())
	}
}

func TestNotifyAfterCloseIsNoop(t *testing.T) {
	n := New(Config{Endpoints: []string{"http://127.0.0.1:1"}, MaxAttempts: 1, InitialBackoff: time.Millisecond})
	n.Close()
	n.Notify(Notification{AgentID: "late"})
	n.Close() // double close is safe
	if got := len(n.Results()); got != 0 {
		t.Fatalf("results after closed notify = %d, want 0", got)
	}
}

func TestVerifySignatureRejects(t *testing.T) {
	secret := []byte("s")
	body := []byte("payload")
	sig := Sign(secret, body)
	if !VerifySignature(secret, body, sig) {
		t.Fatal("valid signature rejected")
	}
	if VerifySignature([]byte("other"), body, sig) {
		t.Fatal("wrong secret accepted")
	}
	if VerifySignature(secret, []byte("tampered"), sig) {
		t.Fatal("tampered body accepted")
	}
	if VerifySignature(secret, body, "zz") {
		t.Fatal("garbage signature accepted")
	}
}

func TestHandlerBridgesVerifierFailures(t *testing.T) {
	rcv := &receiver{}
	srv := httptest.NewServer(rcv.handler())
	defer srv.Close()
	n := New(Config{Endpoints: []string{srv.URL}, InitialBackoff: time.Millisecond})
	h := n.Handler()
	h("agent-9", verifier.Failure{
		Time: time.Now(), Type: verifier.FailureNotInPolicy, Path: "/usr/bin/evil", Detail: "not in policy",
	})
	n.Close()
	if rcv.count() != 1 {
		t.Fatalf("deliveries = %d, want 1", rcv.count())
	}
	var note Notification
	if err := json.Unmarshal(rcv.bodies[0], &note); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if note.Type != "file-not-in-policy" || note.Path != "/usr/bin/evil" {
		t.Fatalf("notification = %+v", note)
	}
}

func TestBackoffCappedAndJitteredUnderLongOutage(t *testing.T) {
	// 10 attempts against a dead receiver: uncapped doubling from 1s would
	// sleep 1+2+...+256 = 511s before giving up; with MaxBackoff 8s the
	// total wait is bounded by 1+2+4+8·6 = 55s. Jitter only ever shortens
	// a sleep, so the cap stays a true upper bound.
	rcv := &receiver{failures: 100}
	srv := httptest.NewServer(rcv.handler())
	defer srv.Close()
	start := time.Unix(1_700_000_000, 0)
	clk := simclock.NewSimulated(start)
	n := New(Config{
		Endpoints:      []string{srv.URL},
		MaxAttempts:    10,
		InitialBackoff: time.Second,
		MaxBackoff:     8 * time.Second,
		Jitter:         0.5,
		Clock:          clk,
	})
	n.Notify(Notification{AgentID: "agent-1", Type: "comms-error"})
	// Drive the delivery worker: advance virtual time whenever it blocks
	// on a backoff sleep.
	deadline := time.Now().Add(5 * time.Second)
	for len(n.Results()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delivery never completed")
		}
		time.Sleep(time.Millisecond)
		clk.AdvanceToNext()
	}
	n.Close()
	results := n.Results()
	if len(results) != 1 || results[0].Err == nil || results[0].Attempts != 10 {
		t.Fatalf("results = %+v, want failure after 10 attempts", results)
	}
	elapsed := clk.Now().Sub(start)
	if elapsed > 55*time.Second {
		t.Fatalf("total backoff = %v, want ≤ 55s (capped); uncapped would be 511s", elapsed)
	}
	if elapsed < 10*time.Second {
		t.Fatalf("total backoff = %v, implausibly small — backoff not happening", elapsed)
	}
}
