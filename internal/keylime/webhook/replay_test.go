package webhook

// Simulated-clock tests for the staggered outbox replay: a recovering
// verifier must spread its journaled redeliveries over the replay window
// instead of firing the whole backlog at t=0, and the schedule must be
// visible to operators via OutboxStats.NextRetry.

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/keylime/store"
	"repro/internal/simclock"
)

func replayNote(i int) Notification {
	n := Notification{
		AgentID: "agent-replay",
		Type:    "hash-mismatch",
		Path:    "/usr/bin/tool",
		Detail:  "replay test",
		Time:    time.Date(2026, 1, 1, 0, 0, i, 0, time.UTC),
	}
	n.DedupKey = DedupKey(n)
	return n
}

// seedOutbox journals n pending deliveries for the endpoint and reopens
// the outbox, simulating the post-crash state a notifier replays from.
func seedOutbox(t *testing.T, endpoint string, n int) *Outbox {
	t.Helper()
	path := filepath.Join(t.TempDir(), "outbox.wal")
	ob, err := OpenOutbox(store.OS(), path)
	if err != nil {
		t.Fatalf("OpenOutbox: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := ob.Enqueue(endpoint, replayNote(i)); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	if err := ob.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ob2, err := OpenOutbox(store.OS(), path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(func() { _ = ob2.Close() })
	return ob2
}

// TestReplaySpreadStaggersAndExportsNextRetry drives replay on a simulated
// clock: before the clock moves, nothing is delivered and NextRetry shows
// the earliest scheduled slot inside the spread; advancing the clock
// drains the backlog slot by slot, and acks clear the schedule.
func TestReplaySpreadStaggersAndExportsNextRetry(t *testing.T) {
	var mu sync.Mutex
	delivered := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		mu.Lock()
		delivered++
		mu.Unlock()
	}))
	defer srv.Close()

	const backlog = 8
	ob := seedOutbox(t, srv.URL, backlog)
	start := time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)
	clk := simclock.NewSimulated(start)
	const spread = 10 * time.Second
	n := New(Config{
		Endpoints:    []string{srv.URL},
		Outbox:       ob,
		Clock:        clk,
		ReplaySpread: spread,
		Logf:         t.Logf,
	})

	// The replayer registers its schedule before sleeping; wait for the
	// first waiter so the assertions below are deterministic.
	for clk.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	st := ob.Stats()
	if st.NextRetry.IsZero() {
		t.Fatal("NextRetry not exported while replays are scheduled")
	}
	if st.NextRetry.Before(start) || st.NextRetry.After(start.Add(spread)) {
		t.Fatalf("NextRetry = %v, want inside [%v, %v]", st.NextRetry, start, start.Add(spread))
	}
	mu.Lock()
	if delivered != 0 {
		mu.Unlock()
		t.Fatalf("%d deliveries before the clock moved", delivered)
	}
	mu.Unlock()

	// Advance through the whole spread: every slot fires, the worker
	// delivers, and acks empty the outbox.
	deadline := time.Now().Add(5 * time.Second)
	for ob.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("backlog not drained: %d pending, stats %+v", ob.Len(), n.Stats())
		}
		if !clk.AdvanceToNext() {
			time.Sleep(time.Millisecond) // worker mid-delivery; let it ack
		}
	}
	if st := n.Stats(); st.Replayed != backlog || st.Delivered != backlog {
		t.Fatalf("notifier stats = %+v, want %d replayed and delivered", st, backlog)
	}
	if st := ob.Stats(); !st.NextRetry.IsZero() {
		t.Fatalf("NextRetry = %v after full drain, want zero", st.NextRetry)
	}
	n.Close()
}

// TestReplayOffsetsDecorrelate checks the offsets actually spread: distinct
// events must not all share one slot (the thundering-herd this exists to
// prevent), stay inside the window, and be deterministic.
func TestReplayOffsetsDecorrelate(t *testing.T) {
	const spread = 10 * time.Second
	slots := make(map[time.Duration]bool)
	for i := 0; i < 16; i++ {
		note := replayNote(i)
		off := replayOffset("http://receiver", note.DedupKey, spread)
		if off < 0 || off > spread {
			t.Fatalf("offset %v outside [0, %v]", off, spread)
		}
		if off != replayOffset("http://receiver", note.DedupKey, spread) {
			t.Fatalf("offset for event %d not deterministic", i)
		}
		slots[off] = true
	}
	if len(slots) < 8 {
		t.Fatalf("16 events landed on %d distinct slots; replay is not decorrelated", len(slots))
	}
}

// TestCloseFlushesScheduledReplays closes the notifier while replays are
// still waiting on the clock: the backlog must be delivered anyway —
// shutdown flushes the outbox rather than stranding journaled revocations.
func TestCloseFlushesScheduledReplays(t *testing.T) {
	var mu sync.Mutex
	delivered := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		mu.Lock()
		delivered++
		mu.Unlock()
	}))
	defer srv.Close()

	const backlog = 4
	ob := seedOutbox(t, srv.URL, backlog)
	clk := simclock.NewSimulated(time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC))
	n := New(Config{
		Endpoints:    []string{srv.URL},
		Outbox:       ob,
		Clock:        clk,
		ReplaySpread: time.Hour,
		Logf:         t.Logf,
	})
	for clk.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	n.Close() // the clock never advances; Close must flush
	mu.Lock()
	got := delivered
	mu.Unlock()
	if got != backlog {
		t.Fatalf("delivered %d of %d scheduled replays at Close", got, backlog)
	}
	if ob.Len() != 0 {
		t.Fatalf("outbox still holds %d deliveries after Close flush", ob.Len())
	}
}
