package webhook

// Tests for the durable revocation outbox: journaled enqueue-before-
// delivery, ack-on-success, crash replay with receiver-side dedup, and
// the drop accounting on a saturated queue.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/keylime/faultinject"
	"repro/internal/keylime/store"
)

// readJSON decodes a request body into v.
func readJSON(req *http.Request, v any) error {
	defer func() { _ = req.Body.Close() }()
	return json.NewDecoder(req.Body).Decode(v)
}

func note(i int) Notification {
	return Notification{
		AgentID: fmt.Sprintf("agent-%d", i),
		Type:    "hash-mismatch",
		Path:    "/usr/bin/x",
		Detail:  fmt.Sprintf("event %d", i),
		Time:    time.Unix(int64(1700000000+i), 0).UTC(),
	}
}

func TestDedupKeyStableAcrossAttempts(t *testing.T) {
	a, b := note(1), note(1)
	a.Attempt, b.Attempt = 1, 7
	if DedupKey(a) != DedupKey(b) {
		t.Fatal("dedup key varies with attempt count")
	}
	if DedupKey(note(1)) == DedupKey(note(2)) {
		t.Fatal("distinct events share a dedup key")
	}
}

func TestOutboxEnqueueAckReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.wal")
	ob, err := OpenOutbox(store.OS(), path)
	if err != nil {
		t.Fatalf("OpenOutbox: %v", err)
	}
	n1, n2 := note(1), note(2)
	n1.DedupKey, n2.DedupKey = DedupKey(n1), DedupKey(n2)
	for _, n := range []Notification{n1, n2} {
		if err := ob.Enqueue("http://sink", n); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	if err := ob.Ack("http://sink", n1.DedupKey); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	_ = ob.Close()

	// Restart: only the unacknowledged delivery is pending.
	ob2, err := OpenOutbox(store.OS(), path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = ob2.Close() }()
	pending := ob2.Pending()
	if len(pending) != 1 || pending[0].Note.AgentID != "agent-2" {
		t.Fatalf("pending = %+v, want agent-2 only", pending)
	}
}

func TestOutboxCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.wal")
	ob, err := OpenOutbox(store.OS(), path)
	if err != nil {
		t.Fatalf("OpenOutbox: %v", err)
	}
	// Enqueue+ack well past the compaction threshold.
	for i := 0; i < outboxCompactThreshold; i++ {
		n := note(i)
		n.DedupKey = DedupKey(n)
		if err := ob.Enqueue("http://sink", n); err != nil {
			t.Fatalf("Enqueue %d: %v", i, err)
		}
		if err := ob.Ack("http://sink", n.DedupKey); err != nil {
			t.Fatalf("Ack %d: %v", i, err)
		}
	}
	// One survivor to prove compaction preserves pending entries.
	last := note(9999)
	last.DedupKey = DedupKey(last)
	if err := ob.Enqueue("http://sink", last); err != nil {
		t.Fatalf("Enqueue survivor: %v", err)
	}
	_ = ob.Close()

	ob2, err := OpenOutbox(store.OS(), path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = ob2.Close() }()
	if got := ob2.Pending(); len(got) != 1 || got[0].Note.AgentID != "agent-9999" {
		t.Fatalf("pending after compaction = %+v", got)
	}
	// The rewritten journal must be far smaller than the append-only one.
	if recs := ob2.journalRecords(); recs >= outboxCompactThreshold {
		t.Fatalf("journal holds %d records after compaction", recs)
	}
}

func TestNotifierOutboxAckOnSuccess(t *testing.T) {
	rcv := &receiver{}
	srv := httptest.NewServer(rcv.handler())
	defer srv.Close()
	path := filepath.Join(t.TempDir(), "outbox.wal")
	ob, err := OpenOutbox(store.OS(), path)
	if err != nil {
		t.Fatalf("OpenOutbox: %v", err)
	}
	n := New(Config{Endpoints: []string{srv.URL}, InitialBackoff: time.Millisecond, Outbox: ob})
	n.Notify(note(1))
	n.Close()
	if rcv.count() != 1 {
		t.Fatalf("deliveries = %d, want 1", rcv.count())
	}
	if ob.Len() != 0 {
		t.Fatalf("outbox still holds %d deliveries after ack", ob.Len())
	}
	st := n.Stats()
	if st.Enqueued != 1 || st.Delivered != 1 || st.Failed != 0 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	_ = ob.Close()
}

// TestNotifierCrashRedeliveryWithDedup is the end-to-end outbox story: a
// notifier dies after journaling but before the receiver accepts; the
// next notifier replays the pending set; the receiver deduplicates on
// DedupKey so the at-least-once stream collapses to exactly one event.
func TestNotifierCrashRedeliveryWithDedup(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string]int) // receiver-side dedup table
	down := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if down {
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		var n Notification
		if err := readJSON(req, &n); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		seen[n.DedupKey]++
	}))
	defer srv.Close()

	path := filepath.Join(t.TempDir(), "outbox.wal")
	ob, err := OpenOutbox(store.OS(), path)
	if err != nil {
		t.Fatalf("OpenOutbox: %v", err)
	}
	// First life: receiver down, every attempt fails; Close without ack
	// simulates the crash (the journal already holds the enqueue).
	n1 := New(Config{Endpoints: []string{srv.URL}, MaxAttempts: 2, InitialBackoff: time.Millisecond, Outbox: ob})
	n1.Notify(note(1))
	n1.Close()
	if st := n1.Stats(); st.Failed != 1 {
		t.Fatalf("first life stats = %+v, want 1 failed", st)
	}
	if ob.Len() != 1 {
		t.Fatalf("outbox pending = %d after failed delivery, want 1", ob.Len())
	}
	_ = ob.Close()

	// Second life: receiver back, replay delivers the journaled event.
	mu.Lock()
	down = false
	mu.Unlock()
	ob2, err := OpenOutbox(store.OS(), path)
	if err != nil {
		t.Fatalf("reopen outbox: %v", err)
	}
	n2 := New(Config{Endpoints: []string{srv.URL}, InitialBackoff: time.Millisecond, Outbox: ob2})
	// Also re-notify the same event, as a restarted verifier re-observing
	// the failure would: dedup must collapse it.
	n2.Notify(note(1))
	n2.Close()
	st := n2.Stats()
	if st.Replayed != 1 || st.Delivered < 1 {
		t.Fatalf("second life stats = %+v, want 1 replayed", st)
	}
	if ob2.Len() != 0 {
		t.Fatalf("outbox pending = %d after replay, want 0", ob2.Len())
	}
	_ = ob2.Close()

	mu.Lock()
	defer mu.Unlock()
	key := DedupKey(note(1))
	if len(seen) != 1 || seen[key] < 1 {
		t.Fatalf("receiver saw %v, want only key %s", seen, key)
	}
}

func TestNotifierDroppedCounter(t *testing.T) {
	started := make(chan struct{})
	block := make(chan struct{})
	var once sync.Once
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		once.Do(func() { close(started) })
		<-block
	}))
	defer srv.Close()
	var logMu sync.Mutex
	var logged []string
	n := New(Config{
		Endpoints: []string{srv.URL}, MaxAttempts: 1, QueueSize: 1,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logged = append(logged, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	// First notification occupies the worker (wait until its delivery is
	// in flight); second fills the queue; the rest must drop.
	n.Notify(note(0))
	<-started
	for i := 1; i < 5; i++ {
		n.Notify(note(i))
	}
	close(block)
	n.Close()
	st := n.Stats()
	if st.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3 (stats %+v)", st.Dropped, st)
	}
	if st.Enqueued != 2 || st.Delivered != 2 {
		t.Fatalf("stats = %+v", st)
	}
	logMu.Lock()
	defer logMu.Unlock()
	if len(logged) != 1 {
		t.Fatalf("drop warnings logged %d times, want once: %v", len(logged), logged)
	}
}

// TestOutboxCrashAtEveryByte sweeps a crash through every byte of the
// outbox journal: recovery must never lose an acknowledged enqueue and
// never resurrect an acknowledged delivery beyond the one in flight.
func TestOutboxCrashAtEveryByte(t *testing.T) {
	const events = 4
	// workload enqueues `events` notifications and acks the even ones,
	// returning how many of each op were acknowledged by the journal.
	workload := func(fsys store.FS, path string) (enqAcked, ackAcked int) {
		ob, err := OpenOutbox(fsys, path)
		if err != nil {
			return 0, 0
		}
		defer func() { _ = ob.Close() }()
		for i := 0; i < events; i++ {
			nt := note(i)
			nt.DedupKey = DedupKey(nt)
			if err := ob.Enqueue("http://sink", nt); err != nil {
				return enqAcked, ackAcked
			}
			enqAcked++
			if i%2 == 0 {
				if err := ob.Ack("http://sink", nt.DedupKey); err != nil {
					return enqAcked, ackAcked
				}
				ackAcked++
			}
		}
		return enqAcked, ackAcked
	}

	base := t.TempDir()
	count := faultinject.NewFaultFS()
	if e, a := workload(count, filepath.Join(base, "count.wal")); e != events || a != events/2 {
		t.Fatalf("fault-free pass: enq=%d ack=%d", e, a)
	}
	total := count.Counters().WriteBytes

	for k := int64(1); k <= total; k++ {
		path := filepath.Join(base, fmt.Sprintf("crash-%04d.wal", k))
		ffs := faultinject.NewFaultFS()
		ffs.CrashAfterBytes = k
		enqAcked, ackAcked := workload(ffs, path)

		ob, err := OpenOutbox(store.OS(), path)
		if err != nil {
			t.Fatalf("byte %d: recovery failed: %v", k, err)
		}
		got := ob.Len()
		// Pending set bounds: every acked enqueue minus every acked ack
		// must still be there; at most one in-flight op beyond that.
		minPending := enqAcked - ackAcked - 1 // in-flight ack may have landed
		maxPending := enqAcked - ackAcked + 1 // in-flight enqueue may have landed
		if minPending < 0 {
			minPending = 0
		}
		if got < minPending || got > maxPending {
			t.Fatalf("byte %d: pending=%d, want in [%d,%d] (enq=%d ack=%d)",
				k, got, minPending, maxPending, enqAcked, ackAcked)
		}
		// The outbox stays writable after recovery.
		nt := note(100)
		nt.DedupKey = DedupKey(nt)
		if err := ob.Enqueue("http://sink", nt); err != nil {
			t.Fatalf("byte %d: enqueue after recovery: %v", k, err)
		}
		_ = ob.Close()
	}
}

func TestOutboxStatsCounters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.wal")
	ob, err := OpenOutbox(store.OS(), path)
	if err != nil {
		t.Fatalf("OpenOutbox: %v", err)
	}
	n1, n2 := note(1), note(2)
	n1.DedupKey, n2.DedupKey = DedupKey(n1), DedupKey(n2)
	for _, n := range []Notification{n1, n2} {
		if err := ob.Enqueue("http://sink", n); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	if err := ob.Ack("http://sink", n1.DedupKey); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	got := ob.Stats()
	if len(got.Oldest) != 1 || got.OldestPendingAge < 0 {
		t.Fatalf("Stats per-entry detail = %+v", got)
	}
	got.Oldest, got.OldestPendingAge = nil, 0
	want := OutboxStats{Enqueued: 2, Acked: 1, Replayed: 0, Pending: 1, JournalRecords: 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Stats = %+v, want %+v", got, want)
	}
	_ = ob.Close()

	// A restart counts the crash's in-flight set as replayed, and the
	// process-lifetime counters start over.
	ob2, err := OpenOutbox(store.OS(), path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = ob2.Close() }()
	got = ob2.Stats()
	got.Oldest, got.OldestPendingAge = nil, 0
	want = OutboxStats{Enqueued: 0, Acked: 0, Replayed: 1, Pending: 1, JournalRecords: 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Stats after replay = %+v, want %+v", got, want)
	}
}
