package webhook

// Offline outbox verification for the chain-of-custody walk. The outbox
// journal is the durable record of which revocations were promised to
// which endpoints; a tampered entry here means a revocation could be
// suppressed or forged at the delivery hop. Enqueue records sealed at
// notify time carry their DSSE envelope in the journal, so the walk can
// re-verify the exact bytes a replay would deliver.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/keylime/dsse"
	"repro/internal/keylime/store"
)

// Outbox bad-link classes.
const (
	OutboxBadFrame     = "torn-frame"        // CRC/length failure in the journal framing
	OutboxBadRecord    = "bad-record"        // frame intact, JSON is not an outbox record
	OutboxBadSignature = "signature-failure" // sealed envelope fails DSSE verification
	OutboxBadMismatch  = "envelope-mismatch" // envelope verifies but seals a different notification
)

// OutboxBadLink pinpoints the first outbox record verification could
// not accept.
type OutboxBadLink struct {
	Index  int    `json:"index"`
	Offset int64  `json:"offset"`
	Class  string `json:"class"`
	Detail string `json:"detail"`
}

func (b *OutboxBadLink) String() string {
	return fmt.Sprintf("%s at record %d (byte offset %d): %s", b.Class, b.Index, b.Offset, b.Detail)
}

// OutboxReport is the result of verifying one outbox journal file.
type OutboxReport struct {
	Records  int `json:"records"`
	Enqueues int `json:"enqueues"`
	Acks     int `json:"acks"`
	// Signed / Unsigned split the enqueues by whether they carry a DSSE
	// envelope. Unsigned entries are legal (pre-keyring era, or a
	// signing outage that degraded to unsigned delivery) and are
	// reported, not failed — the taxonomy never manufactures an
	// integrity failure out of a missing signature.
	Signed   int `json:"signed"`
	Unsigned int `json:"unsigned"`
	// FileSize / TornBytes describe the raw file.
	FileSize  int64 `json:"file_size"`
	TornBytes int64 `json:"torn_bytes"`
	// FirstBad is nil when the whole journal verifies.
	FirstBad *OutboxBadLink `json:"first_bad,omitempty"`
}

// OK reports whether the outbox journal verified end to end.
func (r *OutboxReport) OK() bool { return r.FirstBad == nil }

// VerifyOutboxBytes verifies raw outbox-journal bytes. kr may be nil,
// which skips signature checks but still validates framing and record
// shape. The walk stops at the first bad link.
func VerifyOutboxBytes(data []byte, kr *dsse.Keyring) *OutboxReport {
	rep := &OutboxReport{FileSize: int64(len(data))}
	frames, info, err := store.ScanRecords(data)
	if err != nil {
		rep.FirstBad = &OutboxBadLink{Class: OutboxBadFrame, Detail: err.Error()}
		return rep
	}
	rep.TornBytes = info.FileSize - info.ValidLen
	for _, fr := range frames {
		var rec outboxRecord
		if err := json.Unmarshal(fr.Payload, &rec); err != nil {
			rep.FirstBad = &OutboxBadLink{Index: fr.Index, Offset: fr.Offset,
				Class: OutboxBadRecord, Detail: err.Error()}
			return rep
		}
		switch rec.Op {
		case outboxOpEnqueue:
			rep.Enqueues++
		case outboxOpAck:
			rep.Acks++
		default:
			rep.FirstBad = &OutboxBadLink{Index: fr.Index, Offset: fr.Offset,
				Class: OutboxBadRecord, Detail: fmt.Sprintf("unknown op %q", rec.Op)}
			return rep
		}
		if rec.Op != outboxOpEnqueue {
			rep.Records++
			continue
		}
		if len(rec.Env) == 0 {
			rep.Unsigned++
			rep.Records++
			continue
		}
		if bad := verifyOutboxEnvelope(&rec, kr); bad != nil {
			bad.Index, bad.Offset = fr.Index, fr.Offset
			rep.FirstBad = bad
			return rep
		}
		rep.Signed++
		rep.Records++
	}
	if rep.TornBytes > 0 {
		rep.FirstBad = &OutboxBadLink{Index: len(frames), Offset: info.ValidLen,
			Class: OutboxBadFrame, Detail: fmt.Sprintf("%d trailing bytes fail CRC framing", rep.TornBytes)}
	}
	return rep
}

// verifyOutboxEnvelope checks one sealed enqueue: the envelope decodes,
// its signature verifies (when a keyring is supplied), and the sealed
// notification is byte-identical to the journaled one — an attacker
// cannot swap the plaintext Note while keeping a valid envelope.
func verifyOutboxEnvelope(rec *outboxRecord, kr *dsse.Keyring) *OutboxBadLink {
	env, err := dsse.Decode(rec.Env)
	if err != nil {
		return &OutboxBadLink{Class: OutboxBadSignature, Detail: fmt.Sprintf("envelope: %v", err)}
	}
	payload := env.Payload
	if kr != nil {
		payload, err = kr.Verify(env, RevocationPayloadType)
		if err != nil {
			return &OutboxBadLink{Class: OutboxBadSignature, Detail: err.Error()}
		}
	}
	if rec.Note == nil {
		return &OutboxBadLink{Class: OutboxBadMismatch, Detail: "sealed enqueue has no notification"}
	}
	want, err := json.Marshal(*rec.Note)
	if err != nil {
		return &OutboxBadLink{Class: OutboxBadMismatch, Detail: fmt.Sprintf("encoding notification: %v", err)}
	}
	if !bytes.Equal(payload, want) {
		return &OutboxBadLink{Class: OutboxBadMismatch,
			Detail: "journaled notification disagrees with the sealed envelope"}
	}
	return nil
}

// VerifyOutboxFile reads and verifies the outbox journal at path.
func VerifyOutboxFile(fsys store.FS, path string, kr *dsse.Keyring) (*OutboxReport, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("webhook: reading outbox journal %s: %w", path, err)
	}
	return VerifyOutboxBytes(data, kr), nil
}
