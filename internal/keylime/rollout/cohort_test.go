package rollout

// Tests for cluster-facing rollout hooks: cohort-spanning canary
// selection and the external generation source a cluster coordinator
// uses to hand every shard the same generation sequence.

import (
	"fmt"
	"strings"
	"testing"
)

func TestSelectCanariesSpansCohorts(t *testing.T) {
	targets := []string{"a1", "a2", "a3", "b1", "b2", "c1"}
	cohort := func(id string) string { return id[:1] }

	got := selectCanaries(targets, 3, cohort)
	if strings.Join(got, ",") != "a1,b1,c1" {
		t.Fatalf("canaries = %v, want one per cohort [a1 b1 c1]", got)
	}
	// A second pass wraps around cohorts that still have agents.
	got = selectCanaries(targets, 5, cohort)
	if strings.Join(got, ",") != "a1,a2,b1,b2,c1" {
		t.Fatalf("canaries = %v, want [a1 a2 b1 b2 c1]", got)
	}
	// Asking for more than the fleet returns the fleet.
	if got = selectCanaries(targets, 10, cohort); len(got) != len(targets) {
		t.Fatalf("canaries = %v, want all %d targets", got, len(targets))
	}
	// nil cohort function keeps the first-N behaviour.
	if got = selectCanaries(targets, 2, nil); strings.Join(got, ",") != "a1,a2" {
		t.Fatalf("canaries = %v, want first-2 [a1 a2]", got)
	}
}

func TestBeginPicksCohortSpanningCanaries(t *testing.T) {
	f := newFakeFleet("s0-a", "s0-b", "s0-c", "s1-a", "s2-a")
	c, err := New(Config{
		Fleet:       f,
		CanaryCount: 3,
		CohortOf:    func(id string) string { return id[:2] },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(candidate(t)); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if strings.Join(st.Canaries, ",") != "s0-a,s1-a,s2-a" {
		t.Fatalf("canaries = %v, want one per shard", st.Canaries)
	}
}

// seqGen is a GenerationSource handing out a fixed external sequence.
type seqGen struct {
	next uint64
	err  error
}

func (g *seqGen) NextGeneration() (uint64, error) {
	if g.err != nil {
		return 0, g.err
	}
	g.next++
	return g.next, nil
}

func TestGenerationSourceAllocatesGlobally(t *testing.T) {
	f := newFakeFleet("a1", "a2")
	// The external source is ahead of the local counter, as a cluster
	// coordinator serving many shards would be.
	gens := &seqGen{next: 41}
	c, err := New(Config{
		Fleet: f, Generations: gens,
		ShadowRounds: 1, CanaryRounds: 1, AutoRollback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := c.Begin(candidate(t))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 42 {
		t.Fatalf("generation = %d, want 42 from the external source", gen)
	}
	if st := drive(t, c, f, false, 20); st.Stage != StageIdle || st.Stats.Promotions != 1 {
		t.Fatalf("rollout did not promote: %+v", st)
	}
	for id, a := range f.agents {
		if a.gen != 42 {
			t.Fatalf("%s at generation %d, want 42", id, a.gen)
		}
	}
	// The next rollout continues the external sequence.
	if gen, err = c.Begin(candidate(t)); err != nil || gen != 43 {
		t.Fatalf("second Begin = %d, %v; want 43", gen, err)
	}
}

func TestGenerationSourceFailureAbortsBegin(t *testing.T) {
	f := newFakeFleet("a1")
	c, err := New(Config{Fleet: f, Generations: &seqGen{err: fmt.Errorf("coordinator unreachable")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(candidate(t)); err == nil {
		t.Fatal("Begin succeeded with a failing generation source")
	}
	// No rollout is left half-started.
	if st := c.Status(); st.Stage != StageIdle {
		t.Fatalf("stage = %s after failed Begin, want idle", st.Stage)
	}
	// A source that goes backwards (stale coordinator) is rejected too.
	c2, err := New(Config{Fleet: f, Generations: &seqGen{next: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if gen, err := c2.Begin(candidate(t)); err != nil || gen != 6 {
		t.Fatalf("Begin = %d, %v", gen, err)
	}
	c2.Cancel()
	c2.cfg.Generations = &seqGen{next: 2}
	if _, err := c2.Begin(candidate(t)); err == nil {
		t.Fatal("Begin accepted a generation below the journaled counter")
	}
}
