package rollout

// Integration harness: the controller driving a real verifier over live
// loopback agent stacks, so shadow rounds accumulate through actual
// attestation sweeps rather than the fake fleet's counters.

import (
	"context"
	"crypto/rand"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/keylime/agent"
	"repro/internal/keylime/registrar"
	"repro/internal/keylime/verifier"
	"repro/internal/machine"
	"repro/internal/policy"
	"repro/internal/tpm"
	"repro/internal/vfs"
)

type verifierStack struct {
	v        *verifier.Verifier
	agentIDs []string
	machines []*machine.Machine
}

// newVerifierStack enrolls two live agents (distinct machines, one
// registrar) into one verifier, each under a policy matching its own
// filesystem.
func newVerifierStack(t *testing.T) *verifierStack {
	t.Helper()
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	reg := registrar.New(ca.Pool())
	regSrv := httptest.NewServer(reg.Handler())
	t.Cleanup(regSrv.Close)

	s := &verifierStack{v: verifier.New(regSrv.URL)}
	for i := 0; i < 2; i++ {
		m, err := machine.New(ca,
			machine.WithTPMOptions(tpm.WithEKBits(1024)),
			machine.WithUUID(fmt.Sprintf("d432fbb3-d2f1-4a97-9ef7-75bd81c0000%d", i)))
		if err != nil {
			t.Fatalf("machine %d: %v", i, err)
		}
		ag := agent.New(m)
		agSrv := httptest.NewServer(ag.Handler())
		t.Cleanup(agSrv.Close)
		if err := ag.Register(regSrv.URL, agSrv.URL); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		if err := s.v.AddAgent(m.UUID(), agSrv.URL, machinePolicy(t, m)); err != nil {
			t.Fatalf("AddAgent %d: %v", i, err)
		}
		s.agentIDs = append(s.agentIDs, m.UUID())
		s.machines = append(s.machines, m)
	}
	return s
}

func machinePolicy(t *testing.T, m *machine.Machine) *policy.RuntimePolicy {
	t.Helper()
	pol := policy.New()
	err := m.FS().Walk("/", func(info vfs.FileInfo) error {
		if info.Mode.IsExec() {
			pol.Add(info.Path, info.Digest)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	return pol
}

// sweep attests every agent once — the controller's Tick is designed to
// run after exactly this kind of poll sweep.
func (s *verifierStack) sweep(t *testing.T) {
	t.Helper()
	for _, id := range s.agentIDs {
		if _, err := s.v.AttestOnce(context.Background(), id); err != nil {
			t.Fatalf("AttestOnce %s: %v", id, err)
		}
	}
}

// runRollout drives a candidate (the union of both machines' policies)
// through shadow → canary → fleet against the live stack and returns its
// generation.
func (s *verifierStack) runRollout(t *testing.T) uint64 {
	t.Helper()
	cand := policy.New()
	for _, m := range s.machines {
		cand.Merge(machinePolicy(t, m))
	}
	c, err := New(Config{
		Fleet: s.v, ShadowRounds: 2, CanaryCount: 1, CanaryRounds: 2,
		AutoRollback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := c.Begin(cand)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.sweep(t)
		st, err := c.Tick()
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		if st.Stage == StageIdle {
			if st.Stats.Promotions != 1 {
				t.Fatalf("rollout finished without promoting: %+v", st)
			}
			return gen
		}
	}
	t.Fatalf("rollout never promoted: %+v", c.Status())
	return 0
}
