package rollout

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/keylime/dsse"
	"repro/internal/keylime/store"
	"repro/internal/policy"
)

func signingKeyring(t *testing.T) *dsse.Keyring {
	t.Helper()
	kr := dsse.NewKeyring()
	if _, err := kr.Rotate(); err != nil {
		t.Fatal(err)
	}
	return kr
}

// An honest journal verifies across a crash-restart, and a key rotation
// between Begin and the restart must not break it: the old key stays in
// the trust set until retired.
func TestBundleVerifiesAcrossRestartAndRotation(t *testing.T) {
	dir := t.TempDir()
	f := newFakeFleet("a1", "a2", "a3")
	kr := signingKeyring(t)
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Fleet: f, Store: st, Keyring: kr})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := c.Begin(candidate(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kr.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	c2, err := New(Config{Fleet: f, Store: st2, Keyring: kr})
	if err != nil {
		t.Fatalf("recovery with rotated keyring: %v", err)
	}
	got := c2.Status()
	if got.Stage != StageShadowing || got.Generation != gen || got.Tripped {
		t.Fatalf("recovered status = %+v, want shadowing gen %d untripped", got, gen)
	}
}

// Forging the journaled candidate policy must freeze the rollout as a
// signature failure: nothing installs in either direction, the verifier
// still starts, and the trip fires exactly once.
func TestForgedBundleFreezesRollout(t *testing.T) {
	dir := t.TempDir()
	f := newFakeFleet("a1", "a2")
	kr := signingKeyring(t)
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Fleet: f, Store: st, Keyring: kr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(candidate(t)); err != nil {
		t.Fatal(err)
	}

	// Forge: swap the journaled candidate for a policy that admits an
	// extra binary, leaving the sealed bundle untouched.
	raw, ok := st.Get(keyCurrent)
	if !ok {
		t.Fatal("no journaled rollout record")
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	evil := policy.New()
	evil.Add("/usr/bin/backdoor", policy.Digest{0xEE})
	evilJSON, err := json.Marshal(evil)
	if err != nil {
		t.Fatal(err)
	}
	fields["policy"] = evilJSON
	forged, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(keyCurrent, forged); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var events []Event
	c2, err := New(Config{Fleet: f, Store: st2, Keyring: kr,
		AutoRollback: true, // must be ignored: restore points are untrusted
		Notify:       func(ev Event) { events = append(events, ev) }})
	if err != nil {
		t.Fatalf("New must start frozen, not fail: %v", err)
	}
	got := c2.Status()
	if !got.Tripped || !strings.HasPrefix(got.TripDetail, "signature-failure") {
		t.Fatalf("status = %+v, want signature-failure trip", got)
	}
	if got.Stage != StageShadowing {
		t.Fatalf("stage = %s, want frozen at shadowing (no rollback on forged evidence)", got.Stage)
	}
	// Nothing installed: agents keep generation 0 active policy.
	for _, id := range []string{"a1", "a2"} {
		if pol, gen, _ := f.ActivePolicy(id); gen != 0 || pol.Has("/usr/bin/backdoor") || pol.Has("/usr/bin/newtool") {
			t.Fatalf("%s: active gen %d pol %v, want untouched", id, gen, pol.Paths())
		}
	}
	// Every Tick re-reports the error but the trip counted once.
	for i := 0; i < 3; i++ {
		if _, err := c2.Tick(); !errors.Is(err, ErrBundleSignature) {
			t.Fatalf("tick %d err = %v, want ErrBundleSignature", i, err)
		}
	}
	if got := c2.Status().Stats.SigFailures; got != 1 {
		t.Fatalf("SigFailures = %d, want 1 (one-shot)", got)
	}
	var sigEvents int
	for _, ev := range events {
		if ev.Type == "signature-failure" {
			sigEvents++
		}
	}
	if sigEvents != 1 {
		t.Fatalf("signature-failure events = %d, want 1", sigEvents)
	}
}

// A record journaled before the keyring was introduced (no bundle at
// all) must also freeze when a keyring is later required — silently
// trusting unsigned state would let an attacker strip the envelope.
func TestUnsignedRecordFreezesUnderKeyring(t *testing.T) {
	dir := t.TempDir()
	f := newFakeFleet("a1")
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Fleet: f, Store: st}) // unsigned era
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(candidate(t)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	c2, err := New(Config{Fleet: f, Store: st2, Keyring: signingKeyring(t)})
	if err != nil {
		t.Fatal(err)
	}
	got := c2.Status()
	if !got.Tripped || !strings.Contains(got.TripDetail, "no sealed bundle") {
		t.Fatalf("status = %+v, want no-sealed-bundle trip", got)
	}
}

// A keyring with no signing key must refuse Begin outright rather than
// silently starting an unsigned rollout.
func TestBeginRequiresSigningKey(t *testing.T) {
	f := newFakeFleet("a1")
	c, err := New(Config{Fleet: f, Keyring: dsse.NewKeyring()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(candidate(t)); err == nil {
		t.Fatal("Begin with keyless keyring must fail")
	}
}
