package rollout

// Offline rollout-state verification for the chain-of-custody walk.
// The rollout store's journaled record is what a restarted verifier
// trusts to decide which policy to install fleet-wide; verify-chain
// re-checks its sealed bundle without booting a controller (and without
// touching the store — the walk is read-only).

import (
	"encoding/json"

	"repro/internal/keylime/dsse"
	"repro/internal/keylime/store"
)

// StateReport is the result of verifying a rollout store directory.
type StateReport struct {
	// InFlight is false when no rollout record is journaled (nothing to
	// verify — an idle controller).
	InFlight bool   `json:"in_flight"`
	Gen      uint64 `json:"gen,omitempty"`
	Stage    Stage  `json:"stage,omitempty"`
	// Signed reports whether the record carries a sealed bundle at all.
	Signed bool `json:"signed"`
	// Class/Detail name the first problem ("" when the state verifies):
	// "bad-record" for an undecodable record, "signature-failure" for a
	// bundle that is missing, mis-sealed, or disagrees with the record.
	Class  string `json:"class,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// OK reports whether the rollout state verified.
func (r *StateReport) OK() bool { return r.Class == "" }

// VerifyState loads the rollout store at dir read-only and verifies the
// in-flight record's sealed bundle against kr. kr nil skips signature
// checks (the record is still decoded and described).
func VerifyState(fsys store.FS, dir string, kr *dsse.Keyring) (*StateReport, error) {
	state, err := store.LoadState(fsys, dir)
	if err != nil {
		return nil, err
	}
	rep := &StateReport{}
	raw, ok := state[keyCurrent]
	if !ok {
		return rep, nil
	}
	rep.InFlight = true
	var r record
	if err := json.Unmarshal(raw, &r); err != nil {
		rep.Class, rep.Detail = "bad-record", err.Error()
		return rep, nil
	}
	rep.Gen, rep.Stage, rep.Signed = r.Gen, r.Stage, len(r.Bundle) > 0
	if kr == nil {
		return rep, nil
	}
	detail, err := checkBundle(&r, kr)
	if err != nil {
		return nil, err
	}
	if detail != "" {
		rep.Class, rep.Detail = "signature-failure", detail
	}
	return rep, nil
}
