// Package rollout implements the staged policy rollout controller: the
// safe replacement for the one-shot Verifier.UpdatePolicy swap.
//
// The paper's only false positive in 66 days of dynamic policy
// generation (§III-C) was operational, not cryptographic: the mirror
// synced at 5:00, upstream published a release later the same morning,
// the operator updated from the official archive, and the statically
// swapped policy — generated from the stale mirror — had never seen the
// new files. At fleet scale (the ROADMAP's millions of agents) that
// same blind swap is the single riskiest write path in the system: one
// incomplete policy revokes the world.
//
// The controller turns the swap into a staged, observable, revertible
// pipeline:
//
//  1. Freshness gate — before an update window opens, the archive's
//     latest publication is compared against the mirror's last sync;
//     when the archive is ahead, the window is HELD: no machine update,
//     no policy change, a recorded hold event. This reproduces and then
//     prevents the §III-C misconfiguration.
//  2. Shadow evaluation — the candidate rides in every agent's shadow
//     slot (verifier-side, same verification pass) for N consecutive
//     clean rounds, recording would-be verdict divergence instead of
//     alerting. An incomplete candidate surfaces as would-fail
//     divergence here, before it can hurt anyone.
//  3. Canary → fleet promotion — the candidate is promoted to a small
//     canary subset first, watched for M clean rounds under a
//     failure-count tripwire (the breaker machinery's consecutive-
//     failure accounting applied to policy verdicts), then promoted to
//     the fleet.
//  4. Automatic rollback — a tripped canary reverts every canary to its
//     previous policy generation, quarantines the candidate, and fires
//     a notification (wired to the durable webhook outbox by the cmd).
//
// Every stage transition is journaled through internal/keylime/store
// BEFORE its side effects are applied, and the verifier-side primitives
// (SetShadowPolicy, InstallPolicyGeneration) are idempotent on the
// generation number — so a crash at any boundary recovers by re-reading
// the journal and blindly re-applying the current stage. Mid-fleet
// promotion rolls FORWARD (the promote completes), never half-applies.
package rollout

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/keylime/dsse"
	"repro/internal/keylime/store"
	"repro/internal/keylime/verifier"
	"repro/internal/mirror"
	"repro/internal/policy"
	"repro/internal/simclock"
)

// PolicyBundlePayloadType is the DSSE payload type of a sealed rollout
// policy bundle.
const PolicyBundlePayloadType = "application/vnd.keylime.policy-bundle+json"

// Fleet is the verifier surface the controller drives. *verifier.Verifier
// satisfies it; tests substitute a fake to crash-sweep cheaply.
type Fleet interface {
	AgentIDs() []string
	Status(agentID string) (verifier.Status, error)
	SetShadowPolicy(agentID string, gen uint64, pol *policy.RuntimePolicy) error
	ClearShadowPolicy(agentID string) error
	ShadowStatus(agentID string) (verifier.ShadowEvalStatus, error)
	InstallPolicyGeneration(agentID string, gen uint64, pol *policy.RuntimePolicy) error
	ActivePolicy(agentID string) (*policy.RuntimePolicy, uint64, error)
	Resume(agentID string) error
}

var _ Fleet = (*verifier.Verifier)(nil)

// FreshnessSource answers "has upstream published since my last sync?".
// *mirror.Mirror satisfies it.
type FreshnessSource interface {
	Staleness() mirror.Staleness
}

// GenerationSource allocates policy-generation numbers. Implementations
// must return strictly increasing values that are durable before they are
// returned: a crashed-and-recovered allocator must never re-issue a
// generation a rollout may already have journaled.
type GenerationSource interface {
	NextGeneration() (uint64, error)
}

// Stage is the rollout pipeline stage.
type Stage string

// Pipeline stages. Idle/Promoted/RolledBack are terminal; the journal
// only ever holds a non-terminal stage.
const (
	StageIdle        Stage = "idle"
	StageShadowing   Stage = "shadowing"
	StageCanary      Stage = "canary"
	StagePromoting   Stage = "promoting"
	StagePromoted    Stage = "promoted"
	StageRollingBack Stage = "rolling-back"
	StageRolledBack  Stage = "rolled-back"
)

// Sentinel errors.
var (
	ErrMirrorStale       = errors.New("rollout: mirror stale; update window held")
	ErrRolloutInProgress = errors.New("rollout: another rollout is in flight")
	ErrNoAgents          = errors.New("rollout: no agents to roll out to")
	ErrNoRollout         = errors.New("rollout: no rollout in flight")
	// ErrBundleSignature reports that the rollout's sealed policy bundle
	// failed verification: the journaled candidate (or its rollback
	// restore points) does not match what was signed at rollout-begin.
	// The controller freezes — nothing is installed in either direction,
	// because a forged record's restore points are as untrustworthy as
	// its candidate. It extends the ErrStalePolicy anti-downgrade check:
	// that one stops an old generation, this one stops a forged one.
	ErrBundleSignature = errors.New("rollout: policy bundle signature verification failed")
)

// HoldEvent records one update window held by the freshness gate.
type HoldEvent struct {
	Time      time.Time        `json:"time"`
	Staleness mirror.Staleness `json:"staleness"`
}

// Event is a rollout lifecycle notification (wired to the webhook
// notifier / durable outbox by the caller).
type Event struct {
	Type       string    `json:"type"` // held | shadowing | canary | promoted | rolled-back
	Generation uint64    `json:"generation"`
	Time       time.Time `json:"time"`
	Detail     string    `json:"detail,omitempty"`
}

// Stats are the controller's cumulative counters.
type Stats struct {
	Begun      int `json:"begun"`
	Holds      int `json:"holds"`
	Promotions int `json:"promotions"`
	Rollbacks  int `json:"rollbacks"`
	// Shadow aggregates summed over finished rollouts at their terminal
	// transition (plus the in-flight one in Status).
	ShadowRounds    int `json:"shadow_rounds"`
	ShadowWouldFail int `json:"shadow_would_fail"`
	ShadowWouldPass int `json:"shadow_would_pass"`
	// SigFailures counts policy-bundle signature verification failures —
	// each one is a rollout frozen with nothing installed.
	SigFailures int `json:"sig_failures,omitempty"`
}

// Status is the controller's externally visible state (JSON-ready; served
// by the HTTP handler and the verifier stats registry).
type Status struct {
	Stage      Stage    `json:"stage"`
	Generation uint64   `json:"generation,omitempty"`
	Targets    []string `json:"targets,omitempty"`
	Canaries   []string `json:"canaries,omitempty"`
	// CleanRounds is the minimum progress across the agents the current
	// stage is watching (shadow clean rounds while shadowing, canary clean
	// rounds in the canary stage).
	CleanRounds int `json:"clean_rounds"`
	// RequiredRounds is the threshold CleanRounds must reach to advance.
	RequiredRounds int  `json:"required_rounds,omitempty"`
	Tripped        bool `json:"tripped,omitempty"`
	// ShadowWouldFail / ShadowWouldPass aggregate the in-flight rollout's
	// divergence counters across targets.
	ShadowWouldFail int        `json:"shadow_would_fail"`
	ShadowWouldPass int        `json:"shadow_would_pass"`
	TripDetail      string     `json:"trip_detail,omitempty"`
	LastHold        *HoldEvent `json:"last_hold,omitempty"`
	Quarantined     []uint64   `json:"quarantined,omitempty"`
	Stats           Stats      `json:"stats"`
}

// Config configures the controller.
type Config struct {
	// Fleet is the verifier under control (required).
	Fleet Fleet
	// Freshness gates Begin on mirror staleness (nil disables the gate —
	// a standalone verifier has no mirror to consult).
	Freshness FreshnessSource
	// Store journals generations and stage transitions for crash recovery
	// (nil keeps the rollout state in memory only).
	Store *store.Store
	// Keyring, when set, seals every rollout's policy bundle (candidate
	// plus rollback restore points) with a DSSE envelope at Begin and
	// verifies it before any stage installs anything — including after a
	// crash, when the journaled record is all the controller has. A
	// verification failure freezes the rollout as Tripped with a
	// signature-failure detail; it never auto-rolls-back, because the
	// restore points inside a forged record cannot be trusted either.
	Keyring *dsse.Keyring
	// Clock stamps events (default real time).
	Clock simclock.Clock
	// ShadowRounds is how many consecutive clean shadow rounds every
	// target must accumulate before canary promotion (default 3).
	ShadowRounds int
	// CanaryCount is how many agents (first by sorted ID) are promoted
	// first (default 1, capped to the fleet size).
	CanaryCount int
	// CohortOf maps an agent to its cohort (in a cluster: the verifier
	// shard that owns it). When set, canaries are drawn round-robin
	// across cohorts instead of first-N by sorted ID, so a canary watch
	// exercises every shard's sweep path rather than piling onto the one
	// shard whose agents happen to sort first. nil keeps first-N.
	CohortOf func(agentID string) string
	// Generations, when set, allocates rollout generation numbers (in a
	// cluster: the coordinator hands out one global sequence so every
	// shard installs the same generation for the same rollout). nil uses
	// the controller's local journaled counter.
	Generations GenerationSource
	// CanaryRounds is how many clean post-promotion rounds every canary
	// must pass before fleet promotion (default 2).
	CanaryRounds int
	// TripThreshold is how many new failures on any canary trip the
	// rollback tripwire (default 1).
	TripThreshold int
	// AutoRollback makes a tripped (or shadow-diverged) rollout revert
	// and quarantine automatically; without it the rollout freezes as
	// Tripped until the operator cancels.
	AutoRollback bool
	// Step is an optional fault-injection checkpoint invoked at every
	// stage boundary (see faultinject.StepHook); a returned error aborts
	// the operation mid-step, exactly like a crash.
	Step func(name string) error
	// Notify receives lifecycle events (nil discards).
	Notify func(Event)
	// Logf receives progress lines (nil discards).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = simclock.Real{}
	}
	if c.ShadowRounds <= 0 {
		c.ShadowRounds = 3
	}
	if c.CanaryCount <= 0 {
		c.CanaryCount = 1
	}
	if c.CanaryRounds <= 0 {
		c.CanaryRounds = 2
	}
	if c.TripThreshold <= 0 {
		c.TripThreshold = 1
	}
	return c
}

// Store keys.
const (
	keyGen     = "gen"     // last allocated generation (JSON uint64)
	keyCurrent = "current" // in-flight rollout record
	keyMeta    = "meta"    // stats + quarantine + last hold
)

// baseline is a canary's status snapshot at promotion time; the tripwire
// measures growth against it.
type baseline struct {
	Attestations int `json:"attestations"`
	Failures     int `json:"failures"`
}

// record is the journaled state of one in-flight rollout. It is written
// BEFORE the side effects of the stage it names, so recovery re-applies
// the stage idempotently.
type record struct {
	Gen    uint64          `json:"gen"`
	Stage  Stage           `json:"stage"`
	Policy json.RawMessage `json:"policy"`
	// Targets/Canaries are the agent sets frozen at Begin (minus agents
	// that disappeared since).
	Targets  []string `json:"targets"`
	Canaries []string `json:"canaries"`
	// PrevPolicies/PrevGens capture each canary's active policy at Begin,
	// the rollback restore point.
	PrevPolicies map[string]json.RawMessage `json:"prev_policies,omitempty"`
	PrevGens     map[string]uint64          `json:"prev_gens,omitempty"`
	// Baselines are the canaries' status snapshots at canary promotion.
	Baselines map[string]baseline `json:"baselines,omitempty"`
	// TripDetail describes why a rollback began.
	TripDetail string `json:"trip_detail,omitempty"`
	// ShadowRounds/WouldFail/WouldPass aggregate the rollout's shadow
	// evaluation, captured when the shadow stage ends.
	ShadowRounds    int `json:"shadow_rounds,omitempty"`
	ShadowWouldFail int `json:"shadow_would_fail,omitempty"`
	ShadowWouldPass int `json:"shadow_would_pass,omitempty"`
	// Bundle is the DSSE envelope sealed over the rollout's bundleBody at
	// Begin (absent when no keyring is configured). Tampering with Gen,
	// Policy, PrevPolicies, or PrevGens in the journal breaks it.
	Bundle json.RawMessage `json:"bundle,omitempty"`
}

// bundleBody is what the rollout keyring signs: the candidate policy AND
// the rollback restore points, so a forged restore point is caught just
// like a forged candidate.
type bundleBody struct {
	Gen          uint64                     `json:"gen"`
	Policy       json.RawMessage            `json:"policy"`
	PrevPolicies map[string]json.RawMessage `json:"prev_policies,omitempty"`
	PrevGens     map[string]uint64          `json:"prev_gens,omitempty"`
}

// meta is the journaled terminal-state bookkeeping.
type meta struct {
	Stats       Stats      `json:"stats"`
	Quarantined []uint64   `json:"quarantined,omitempty"`
	LastHold    *HoldEvent `json:"last_hold,omitempty"`
}

// Controller drives staged policy rollouts. Construct with New; safe for
// concurrent use. Tick is intended to run after each verifier poll sweep.
type Controller struct {
	cfg Config

	mu      sync.Mutex
	nextGen uint64
	cur     *record
	curPol  *policy.RuntimePolicy // decoded cur.Policy
	prevPol map[string]*policy.RuntimePolicy
	tripped bool
	meta    meta
}

// New creates a controller. When the store holds an in-flight rollout
// record (a crash mid-rollout), the journaled stage is recovered and its
// side effects re-applied before New returns, so the fleet is back to
// exactly one consistent policy generation per agent.
func New(cfg Config) (*Controller, error) {
	if cfg.Fleet == nil {
		return nil, fmt.Errorf("rollout: Config.Fleet is required")
	}
	c := &Controller{cfg: cfg.withDefaults()}
	if st := c.cfg.Store; st != nil {
		if data, ok := st.Get(keyGen); ok {
			if err := json.Unmarshal(data, &c.nextGen); err != nil {
				return nil, fmt.Errorf("rollout: corrupt generation counter: %w", err)
			}
		}
		if data, ok := st.Get(keyMeta); ok {
			if err := json.Unmarshal(data, &c.meta); err != nil {
				return nil, fmt.Errorf("rollout: corrupt meta record: %w", err)
			}
		}
		if data, ok := st.Get(keyCurrent); ok {
			var r record
			if err := json.Unmarshal(data, &r); err != nil {
				return nil, fmt.Errorf("rollout: corrupt rollout record: %w", err)
			}
			if err := c.adopt(&r); err != nil {
				return nil, err
			}
			c.logf("rollout: recovered generation %d at stage %s", r.Gen, r.Stage)
			if err := c.Recover(); err != nil {
				// A bundle that fails verification freezes the rollout but
				// must not stop the verifier from starting: agents keep
				// attesting under their active policies while the operator
				// investigates. Anything else is a real recovery failure.
				if !errors.Is(err, ErrBundleSignature) {
					return nil, fmt.Errorf("rollout: recovering stage %s: %w", r.Stage, err)
				}
			}
		}
	}
	return c, nil
}

// adopt decodes a journaled record into the controller's in-memory state.
func (c *Controller) adopt(r *record) error {
	pol := policy.New()
	if len(r.Policy) > 0 {
		if err := json.Unmarshal(r.Policy, pol); err != nil {
			return fmt.Errorf("rollout: corrupt candidate policy: %w", err)
		}
	}
	prev := make(map[string]*policy.RuntimePolicy, len(r.PrevPolicies))
	for id, raw := range r.PrevPolicies {
		p := policy.New()
		if err := json.Unmarshal(raw, p); err != nil {
			return fmt.Errorf("rollout: corrupt previous policy for %s: %w", id, err)
		}
		prev[id] = p
	}
	c.cur = r
	c.curPol = pol
	c.prevPol = prev
	c.tripped = false
	return nil
}

func (c *Controller) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Controller) notify(ev Event) {
	if c.cfg.Notify != nil {
		c.cfg.Notify(ev)
	}
}

// step invokes the fault-injection checkpoint.
func (c *Controller) step(name string) error {
	if c.cfg.Step == nil {
		return nil
	}
	return c.cfg.Step(name)
}

// putJSON journals one key (no-op without a store). The write is fsynced
// before it returns: a stage transition is durable before its effects.
func (c *Controller) putJSON(key string, v any) error {
	if c.cfg.Store == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rollout: encoding %s: %w", key, err)
	}
	if err := c.cfg.Store.Put(key, data); err != nil {
		return fmt.Errorf("rollout: journaling %s: %w", key, err)
	}
	return nil
}

func (c *Controller) deleteKey(key string) error {
	if c.cfg.Store == nil {
		return nil
	}
	if err := c.cfg.Store.Delete(key); err != nil {
		return fmt.Errorf("rollout: journaling delete of %s: %w", key, err)
	}
	return nil
}

// Begin opens an update window for a candidate policy. The freshness gate
// runs first: when the archive has published past the mirror's last sync,
// the window is HELD — no shadow, no promotion, the active policies stay
// untouched — and Begin returns ErrMirrorStale. Otherwise a new
// generation is allocated and journaled, the fleet and canary sets are
// frozen, and the candidate enters every target's shadow slot.
func (c *Controller) Begin(pol *policy.RuntimePolicy) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur != nil {
		return 0, fmt.Errorf("%w: generation %d at stage %s", ErrRolloutInProgress, c.cur.Gen, c.cur.Stage)
	}
	if err := c.step("freshness-gate"); err != nil {
		return 0, err
	}
	if c.cfg.Freshness != nil {
		if st := c.cfg.Freshness.Staleness(); st.Stale {
			hold := &HoldEvent{Time: c.cfg.Clock.Now(), Staleness: st}
			c.meta.LastHold = hold
			c.meta.Stats.Holds++
			if err := c.putJSON(keyMeta, c.meta); err != nil {
				return 0, err
			}
			c.logf("rollout: window HELD: archive published %v after last sync %v (archive seq %d > mirror seq %d)",
				st.LastPublish, st.LastSync, st.ArchiveSeq, st.MirrorSeq)
			c.notify(Event{Type: "held", Time: hold.Time,
				Detail: fmt.Sprintf("archive seq %d ahead of mirror seq %d", st.ArchiveSeq, st.MirrorSeq)})
			return 0, fmt.Errorf("%w: archive published %v, mirror synced %v",
				ErrMirrorStale, st.LastPublish, st.LastSync)
		}
	}

	targets := c.cfg.Fleet.AgentIDs()
	sort.Strings(targets)
	if len(targets) == 0 {
		return 0, ErrNoAgents
	}
	nCanary := c.cfg.CanaryCount
	if nCanary > len(targets) {
		nCanary = len(targets)
	}
	canaries := selectCanaries(targets, nCanary, c.cfg.CohortOf)

	polJSON, err := json.Marshal(pol)
	if err != nil {
		return 0, fmt.Errorf("rollout: encoding candidate policy: %w", err)
	}
	prevPolicies := make(map[string]json.RawMessage, len(canaries))
	prevGens := make(map[string]uint64, len(canaries))
	for _, id := range canaries {
		prev, prevGen, err := c.cfg.Fleet.ActivePolicy(id)
		if err != nil {
			return 0, fmt.Errorf("rollout: capturing rollback point for %s: %w", id, err)
		}
		raw, err := json.Marshal(prev)
		if err != nil {
			return 0, fmt.Errorf("rollout: encoding rollback policy for %s: %w", id, err)
		}
		prevPolicies[id] = raw
		prevGens[id] = prevGen
	}

	gen := c.nextGen + 1
	if c.cfg.Generations != nil {
		g, err := c.cfg.Generations.NextGeneration()
		if err != nil {
			return 0, fmt.Errorf("rollout: allocating generation: %w", err)
		}
		if g <= c.nextGen {
			return 0, fmt.Errorf("rollout: generation source went backwards (%d after %d)", g, c.nextGen)
		}
		gen = g
	}
	// The local counter is journaled even when a cluster source allocated
	// the number, so recovery never re-issues a generation below it.
	if err := c.putJSON(keyGen, gen); err != nil {
		return 0, err
	}
	c.nextGen = gen
	r := &record{
		Gen: gen, Stage: StageShadowing, Policy: polJSON,
		Targets: targets, Canaries: canaries,
		PrevPolicies: prevPolicies, PrevGens: prevGens,
	}
	if c.cfg.Keyring != nil {
		if !c.cfg.Keyring.CanSign() {
			return 0, fmt.Errorf("rollout: keyring configured but holds no signing key")
		}
		body, err := json.Marshal(bundleBody{
			Gen: gen, Policy: polJSON, PrevPolicies: prevPolicies, PrevGens: prevGens,
		})
		if err != nil {
			return 0, fmt.Errorf("rollout: encoding policy bundle: %w", err)
		}
		env, err := c.cfg.Keyring.Sign(PolicyBundlePayloadType, body)
		if err != nil {
			return 0, fmt.Errorf("rollout: sealing policy bundle: %w", err)
		}
		raw, err := json.Marshal(env)
		if err != nil {
			return 0, fmt.Errorf("rollout: encoding policy bundle envelope: %w", err)
		}
		r.Bundle = raw
	}
	// Journal the stage BEFORE applying it: a crash from here on recovers
	// by re-applying the shadow installs, which are generation-idempotent.
	if err := c.putJSON(keyCurrent, r); err != nil {
		return 0, err
	}
	if err := c.adopt(r); err != nil {
		return 0, err
	}
	c.meta.Stats.Begun++
	c.logf("rollout: generation %d shadowing on %d agents (%d canaries)", gen, len(targets), len(canaries))
	c.notify(Event{Type: "shadowing", Generation: gen, Time: c.cfg.Clock.Now(),
		Detail: fmt.Sprintf("%d targets, %d canaries", len(targets), len(canaries))})
	if err := c.step("shadow-start"); err != nil {
		return gen, err
	}
	if err := c.applyStageLocked(); err != nil {
		return gen, err
	}
	return gen, nil
}

// selectCanaries picks the canary set from the (sorted) target list.
// Without a cohort function it is first-N; with one, canaries are drawn
// round-robin across cohorts in sorted cohort order, one agent per cohort
// per pass, so every cohort contributes before any contributes twice.
func selectCanaries(targets []string, n int, cohortOf func(string) string) []string {
	if cohortOf == nil {
		return append([]string(nil), targets[:n]...)
	}
	groups := make(map[string][]string)
	var names []string
	for _, id := range targets {
		co := cohortOf(id)
		if _, ok := groups[co]; !ok {
			names = append(names, co)
		}
		groups[co] = append(groups[co], id)
	}
	sort.Strings(names)
	out := make([]string, 0, n)
	for len(out) < n {
		took := false
		for _, co := range names {
			if len(groups[co]) == 0 {
				continue
			}
			out = append(out, groups[co][0])
			groups[co] = groups[co][1:]
			took = true
			if len(out) == n {
				break
			}
		}
		if !took {
			break
		}
	}
	sort.Strings(out)
	return out
}

// applyStageLocked idempotently enforces the current stage's side effects
// on the fleet. It is called after every stage transition, on every Tick,
// and during crash recovery — the verifier primitives no-op when already
// applied, so repetition is safe. Agents that vanished from the fleet are
// dropped from the rollout's sets.
func (c *Controller) applyStageLocked() error {
	if err := c.verifyBundleLocked(); err != nil {
		return err
	}
	r := c.cur
	switch r.Stage {
	case StageShadowing:
		for _, id := range r.Targets {
			if err := c.cfg.Fleet.SetShadowPolicy(id, r.Gen, c.curPol); err != nil {
				if errors.Is(err, verifier.ErrUnknownAgent) {
					c.dropTargetLocked(id)
					continue
				}
				return err
			}
		}
	case StageCanary:
		for _, id := range r.Canaries {
			if err := c.step("canary-install"); err != nil {
				return err
			}
			if err := c.cfg.Fleet.InstallPolicyGeneration(id, r.Gen, c.curPol); err != nil &&
				!errors.Is(err, verifier.ErrUnknownAgent) {
				return err
			}
			c.attachProvenance(id)
		}
		for _, id := range r.Targets {
			if isIn(id, r.Canaries) {
				continue
			}
			if err := c.cfg.Fleet.SetShadowPolicy(id, r.Gen, c.curPol); err != nil {
				if errors.Is(err, verifier.ErrUnknownAgent) {
					c.dropTargetLocked(id)
					continue
				}
				return err
			}
		}
	case StagePromoting:
		for _, id := range r.Targets {
			if err := c.step("fleet-install"); err != nil {
				return err
			}
			if err := c.cfg.Fleet.InstallPolicyGeneration(id, r.Gen, c.curPol); err != nil &&
				!errors.Is(err, verifier.ErrUnknownAgent) {
				return err
			}
			c.attachProvenance(id)
		}
	case StageRollingBack:
		for _, id := range r.Canaries {
			if err := c.step("rollback-install"); err != nil {
				return err
			}
			prev, ok := c.prevPol[id]
			if !ok {
				continue
			}
			if err := c.cfg.Fleet.InstallPolicyGeneration(id, r.PrevGens[id], prev); err != nil &&
				!errors.Is(err, verifier.ErrUnknownAgent) {
				return err
			}
			// Failures accrued under the quarantined candidate are the
			// candidate's fault: resume the canary under its restored
			// policy. The failure history stays on record.
			if err := c.cfg.Fleet.Resume(id); err != nil &&
				!errors.Is(err, verifier.ErrUnknownAgent) {
				return err
			}
		}
		for _, id := range r.Targets {
			if err := c.cfg.Fleet.ClearShadowPolicy(id); err != nil &&
				!errors.Is(err, verifier.ErrUnknownAgent) {
				return err
			}
		}
	}
	return nil
}

// ProvenanceFleet is implemented by fleets that can record the sealed
// bundle envelope alongside an installed policy (chain-of-custody
// provenance in state snapshots). Optional: plain Fleets work unchanged.
type ProvenanceFleet interface {
	SetPolicyEnvelope(agentID string, env json.RawMessage) error
}

// attachProvenance hands the in-flight record's sealed bundle envelope to
// the fleet after a generation install, when both sides support it. Best
// effort: provenance is an audit aid, not a gate — the install already
// happened and the bundle already verified.
func (c *Controller) attachProvenance(id string) {
	pf, ok := c.cfg.Fleet.(ProvenanceFleet)
	if !ok || len(c.cur.Bundle) == 0 {
		return
	}
	if err := pf.SetPolicyEnvelope(id, c.cur.Bundle); err != nil &&
		!errors.Is(err, verifier.ErrUnknownAgent) {
		c.logf("rollout: provenance for %s: %v", id, err)
	}
}

// verifyBundleLocked checks the in-flight record against its sealed
// bundle. With no keyring it is a no-op; with one, every field the
// bundle covers must match what was signed at Begin, byte for byte
// (both sides come from the same deterministic json.Marshal). It runs
// at the top of applyStageLocked, so it gates every install path:
// fresh Begin, every Tick, and crash recovery.
func (c *Controller) verifyBundleLocked() error {
	if c.cfg.Keyring == nil {
		return nil
	}
	detail, err := checkBundle(c.cur, c.cfg.Keyring)
	if err != nil {
		return err
	}
	if detail != "" {
		return c.sigFailLocked(detail)
	}
	return nil
}

// checkBundle verifies one journaled record against its sealed bundle.
// It returns a non-empty problem description on a verification failure
// (missing bundle, bad envelope, bad signature, field mismatch); the
// error return is reserved for local faults like marshal failures.
// Shared between the live controller and the offline verify-chain walk.
func checkBundle(r *record, kr *dsse.Keyring) (string, error) {
	if len(r.Bundle) == 0 {
		return "journaled record carries no sealed bundle", nil
	}
	var env dsse.Envelope
	if err := json.Unmarshal(r.Bundle, &env); err != nil {
		return fmt.Sprintf("bundle envelope: %v", err), nil
	}
	body, err := kr.Verify(&env, PolicyBundlePayloadType)
	if err != nil {
		return err.Error(), nil
	}
	want, err := json.Marshal(bundleBody{
		Gen: r.Gen, Policy: r.Policy, PrevPolicies: r.PrevPolicies, PrevGens: r.PrevGens,
	})
	if err != nil {
		return "", fmt.Errorf("rollout: encoding bundle body: %w", err)
	}
	if !bytes.Equal(body, want) {
		return "journaled record disagrees with the sealed bundle", nil
	}
	return "", nil
}

// sigFailLocked freezes the rollout on a bundle verification failure.
// Unlike a canary trip there is no auto-rollback: the restore points
// live inside the record that just failed verification, so installing
// them would act on forged evidence. Agents keep their active policy;
// the journal is left untouched as evidence. The trip bookkeeping and
// notification fire once; the error is returned on every attempt.
func (c *Controller) sigFailLocked(detail string) error {
	r := c.cur
	if !c.tripped || !strings.HasPrefix(r.TripDetail, "signature-failure") {
		c.tripped = true
		r.TripDetail = "signature-failure: " + detail
		c.meta.Stats.SigFailures++
		c.logf("rollout: generation %d FROZEN: policy bundle failed verification: %s", r.Gen, detail)
		c.notify(Event{Type: "signature-failure", Generation: r.Gen,
			Time: c.cfg.Clock.Now(), Detail: detail})
	}
	return fmt.Errorf("%w: generation %d: %s", ErrBundleSignature, r.Gen, detail)
}

// dropTargetLocked removes a vanished agent from the rollout's sets.
func (c *Controller) dropTargetLocked(id string) {
	c.cur.Targets = remove(c.cur.Targets, id)
	c.cur.Canaries = remove(c.cur.Canaries, id)
}

func remove(ids []string, id string) []string {
	out := ids[:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

func isIn(id string, ids []string) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Recover re-applies the journaled stage's side effects and, for the
// roll-forward stages (promoting, rolling-back), completes them. It is
// called by New automatically; exposed for tests.
func (c *Controller) Recover() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return nil
	}
	if err := c.applyStageLocked(); err != nil {
		return err
	}
	switch c.cur.Stage {
	case StagePromoting:
		return c.finishPromoteLocked()
	case StageRollingBack:
		return c.finishRollbackLocked()
	}
	return nil
}

// Tick advances the pipeline one step; call it after each poll sweep. It
// performs no attestation itself — it reads the verifier-side counters
// the sweeps accumulate and journals stage transitions when thresholds
// are met.
func (c *Controller) Tick() (Status, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return c.statusLocked(), nil
	}
	if err := c.applyStageLocked(); err != nil {
		return c.statusLocked(), err
	}
	if len(c.cur.Targets) == 0 {
		// Every target vanished mid-rollout: abort to terminal.
		c.cur.TripDetail = "all targets removed mid-rollout"
		err := c.finishRollbackLocked()
		return c.statusLocked(), err
	}
	var err error
	switch c.cur.Stage {
	case StageShadowing:
		err = c.tickShadowLocked()
	case StageCanary:
		err = c.tickCanaryLocked()
	case StagePromoting:
		err = c.finishPromoteLocked()
	case StageRollingBack:
		err = c.finishRollbackLocked()
	}
	return c.statusLocked(), err
}

// tickShadowLocked checks divergence and clean-round progress across the
// targets' shadow slots.
func (c *Controller) tickShadowLocked() error {
	r := c.cur
	minClean := -1
	wouldFail := 0
	for _, id := range append([]string(nil), r.Targets...) {
		st, err := c.cfg.Fleet.ShadowStatus(id)
		if err != nil {
			if errors.Is(err, verifier.ErrUnknownAgent) {
				c.dropTargetLocked(id)
				continue
			}
			return err
		}
		wouldFail += st.WouldFail
		if minClean < 0 || st.CleanRounds < minClean {
			minClean = st.CleanRounds
		}
	}
	if wouldFail > 0 {
		// The candidate would have failed entries the active policy
		// accepts — the §III-C signature. Recorded, never alerted; with
		// auto-rollback the candidate is quarantined outright.
		c.tripped = true
		r.TripDetail = fmt.Sprintf("shadow divergence: %d would-fail entries", wouldFail)
		if !c.cfg.AutoRollback {
			return nil
		}
		return c.beginRollbackLocked()
	}
	if minClean < c.cfg.ShadowRounds {
		return nil
	}
	return c.promoteCanariesLocked()
}

// promoteCanariesLocked transitions shadowing → canary: snapshot the
// canaries' baselines, journal, then install the candidate on them.
func (c *Controller) promoteCanariesLocked() error {
	if err := c.step("canary-promote"); err != nil {
		return err
	}
	r := c.cur
	c.captureShadowAggregatesLocked()
	r.Baselines = make(map[string]baseline, len(r.Canaries))
	for _, id := range r.Canaries {
		st, err := c.cfg.Fleet.Status(id)
		if err != nil {
			if errors.Is(err, verifier.ErrUnknownAgent) {
				c.dropTargetLocked(id)
				continue
			}
			return err
		}
		r.Baselines[id] = baseline{Attestations: st.Attestations, Failures: len(st.Failures)}
	}
	if len(r.Canaries) == 0 {
		// All canaries vanished: re-elect from the remaining targets.
		n := c.cfg.CanaryCount
		if n > len(r.Targets) {
			n = len(r.Targets)
		}
		r.Canaries = append([]string(nil), r.Targets[:n]...)
		return nil // next tick re-runs promotion with fresh baselines
	}
	r.Stage = StageCanary
	if err := c.putJSON(keyCurrent, r); err != nil {
		r.Stage = StageShadowing
		return err
	}
	c.logf("rollout: generation %d promoted to %d canaries", r.Gen, len(r.Canaries))
	c.notify(Event{Type: "canary", Generation: r.Gen, Time: c.cfg.Clock.Now(),
		Detail: fmt.Sprintf("%d canaries", len(r.Canaries))})
	return c.applyStageLocked()
}

// tickCanaryLocked watches the canaries: new failures trip the rollback
// tripwire; enough clean rounds promote the fleet.
func (c *Controller) tickCanaryLocked() error {
	r := c.cur
	minClean := -1
	for _, id := range append([]string(nil), r.Canaries...) {
		st, err := c.cfg.Fleet.Status(id)
		if err != nil {
			if errors.Is(err, verifier.ErrUnknownAgent) {
				c.dropTargetLocked(id)
				continue
			}
			return err
		}
		base := r.Baselines[id]
		if grown := len(st.Failures) - base.Failures; grown >= c.cfg.TripThreshold {
			c.tripped = true
			r.TripDetail = fmt.Sprintf("canary %s: %d new failures since promotion (threshold %d)",
				id, grown, c.cfg.TripThreshold)
			if !c.cfg.AutoRollback {
				return nil
			}
			return c.beginRollbackLocked()
		}
		// Attestations only advance on clean rounds, so the delta IS the
		// clean-round count — the breaker machinery's consecutive-success
		// accounting read from the other side.
		if clean := st.Attestations - base.Attestations; minClean < 0 || clean < minClean {
			minClean = clean
		}
	}
	if minClean < 0 || minClean < c.cfg.CanaryRounds {
		return nil
	}
	if err := c.step("fleet-promote"); err != nil {
		return err
	}
	r.Stage = StagePromoting
	if err := c.putJSON(keyCurrent, r); err != nil {
		r.Stage = StageCanary
		return err
	}
	c.logf("rollout: generation %d promoting to full fleet (%d agents)", r.Gen, len(r.Targets))
	if err := c.applyStageLocked(); err != nil {
		return err
	}
	return c.finishPromoteLocked()
}

// beginRollbackLocked transitions to rolling-back, journals, applies, and
// completes the rollback.
func (c *Controller) beginRollbackLocked() error {
	if err := c.step("rollback"); err != nil {
		return err
	}
	r := c.cur
	if r.ShadowRounds == 0 {
		c.captureShadowAggregatesLocked()
	}
	prev := r.Stage
	r.Stage = StageRollingBack
	if err := c.putJSON(keyCurrent, r); err != nil {
		r.Stage = prev
		return err
	}
	c.logf("rollout: generation %d rolling back: %s", r.Gen, r.TripDetail)
	if err := c.applyStageLocked(); err != nil {
		return err
	}
	return c.finishRollbackLocked()
}

// captureShadowAggregatesLocked sums the targets' shadow counters into
// the record — done before promotion or rollback clears the slots, so
// the §III-C divergence stays visible in the rollout stats afterwards.
func (c *Controller) captureShadowAggregatesLocked() {
	r := c.cur
	r.ShadowRounds, r.ShadowWouldFail, r.ShadowWouldPass = 0, 0, 0
	for _, id := range r.Targets {
		st, err := c.cfg.Fleet.ShadowStatus(id)
		if err != nil {
			continue
		}
		r.ShadowRounds += st.Rounds
		r.ShadowWouldFail += st.WouldFail
		r.ShadowWouldPass += st.WouldPass
	}
}

// finishPromoteLocked completes a fleet promotion: terminal journal
// transition, stats, notification.
func (c *Controller) finishPromoteLocked() error {
	r := c.cur
	c.meta.Stats.Promotions++
	c.meta.Stats.ShadowRounds += r.ShadowRounds
	c.meta.Stats.ShadowWouldFail += r.ShadowWouldFail
	c.meta.Stats.ShadowWouldPass += r.ShadowWouldPass
	if err := c.putJSON(keyMeta, c.meta); err != nil {
		c.meta.Stats.Promotions--
		c.meta.Stats.ShadowRounds -= r.ShadowRounds
		c.meta.Stats.ShadowWouldFail -= r.ShadowWouldFail
		c.meta.Stats.ShadowWouldPass -= r.ShadowWouldPass
		return err
	}
	if err := c.deleteKey(keyCurrent); err != nil {
		return err
	}
	c.logf("rollout: generation %d promoted fleet-wide", r.Gen)
	c.notify(Event{Type: "promoted", Generation: r.Gen, Time: c.cfg.Clock.Now()})
	c.cur, c.curPol, c.prevPol, c.tripped = nil, nil, nil, false
	return nil
}

// finishRollbackLocked completes a rollback: quarantine the candidate,
// terminal journal transition, stats, notification.
func (c *Controller) finishRollbackLocked() error {
	r := c.cur
	c.meta.Stats.Rollbacks++
	c.meta.Stats.ShadowRounds += r.ShadowRounds
	c.meta.Stats.ShadowWouldFail += r.ShadowWouldFail
	c.meta.Stats.ShadowWouldPass += r.ShadowWouldPass
	c.meta.Quarantined = append(c.meta.Quarantined, r.Gen)
	if err := c.putJSON(keyMeta, c.meta); err != nil {
		c.meta.Stats.Rollbacks--
		c.meta.Stats.ShadowRounds -= r.ShadowRounds
		c.meta.Stats.ShadowWouldFail -= r.ShadowWouldFail
		c.meta.Stats.ShadowWouldPass -= r.ShadowWouldPass
		c.meta.Quarantined = c.meta.Quarantined[:len(c.meta.Quarantined)-1]
		return err
	}
	if err := c.deleteKey(keyCurrent); err != nil {
		return err
	}
	c.logf("rollout: generation %d rolled back and quarantined: %s", r.Gen, r.TripDetail)
	c.notify(Event{Type: "rolled-back", Generation: r.Gen, Time: c.cfg.Clock.Now(), Detail: r.TripDetail})
	c.cur, c.curPol, c.prevPol, c.tripped = nil, nil, nil, false
	return nil
}

// Cancel aborts an in-flight rollout: canaries are reverted (when already
// promoted), shadow slots cleared, the candidate quarantined.
func (c *Controller) Cancel() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return ErrNoRollout
	}
	if c.cur.TripDetail == "" {
		c.cur.TripDetail = "cancelled by operator"
	}
	return c.beginRollbackLocked()
}

// Status reports the controller's state.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked()
}

func (c *Controller) statusLocked() Status {
	st := Status{
		Stage:       StageIdle,
		LastHold:    c.meta.LastHold,
		Quarantined: append([]uint64(nil), c.meta.Quarantined...),
		Stats:       c.meta.Stats,
	}
	r := c.cur
	if r == nil {
		return st
	}
	st.Stage = r.Stage
	st.Generation = r.Gen
	st.Targets = append([]string(nil), r.Targets...)
	st.Canaries = append([]string(nil), r.Canaries...)
	st.Tripped = c.tripped
	st.TripDetail = r.TripDetail
	minClean := -1
	switch r.Stage {
	case StageShadowing:
		st.RequiredRounds = c.cfg.ShadowRounds
		for _, id := range r.Targets {
			s, err := c.cfg.Fleet.ShadowStatus(id)
			if err != nil {
				continue
			}
			st.ShadowWouldFail += s.WouldFail
			st.ShadowWouldPass += s.WouldPass
			if minClean < 0 || s.CleanRounds < minClean {
				minClean = s.CleanRounds
			}
		}
	case StageCanary:
		st.RequiredRounds = c.cfg.CanaryRounds
		for _, id := range r.Canaries {
			s, err := c.cfg.Fleet.Status(id)
			if err != nil {
				continue
			}
			if clean := s.Attestations - r.Baselines[id].Attestations; minClean < 0 || clean < minClean {
				minClean = clean
			}
		}
	}
	if minClean > 0 {
		st.CleanRounds = minClean
	}
	st.ShadowWouldFail += r.ShadowWouldFail
	st.ShadowWouldPass += r.ShadowWouldPass
	return st
}
