package rollout

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/keylime/api"
	"repro/internal/policy"
)

// beginResponse is the JSON reply to POST /v2/rollout/begin.
type beginResponse struct {
	Generation uint64 `json:"generation"`
}

// Handler returns the controller's management HTTP API, mounted alongside
// the verifier's (the cmd serves both from one mux):
//
//	POST /v2/rollout/begin   policy JSON -> start a staged rollout
//	GET  /v2/rollout/status              -> Status
//	POST /v2/rollout/cancel              -> abort + quarantine in-flight rollout
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/rollout/begin", func(w http.ResponseWriter, req *http.Request) {
		pol := policy.New()
		if err := json.NewDecoder(req.Body).Decode(pol); err != nil {
			writeRolloutErr(w, http.StatusBadRequest, err)
			return
		}
		gen, err := c.Begin(pol)
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrMirrorStale):
				// 409: the window is held, retry after the mirror resyncs.
				status = http.StatusConflict
			case errors.Is(err, ErrRolloutInProgress):
				status = http.StatusConflict
			case errors.Is(err, ErrNoAgents):
				status = http.StatusPreconditionFailed
			}
			writeRolloutErr(w, status, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(beginResponse{Generation: gen})
	})
	mux.HandleFunc("GET /v2/rollout/status", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(c.Status())
	})
	mux.HandleFunc("POST /v2/rollout/cancel", func(w http.ResponseWriter, req *http.Request) {
		if err := c.Cancel(); err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrNoRollout) {
				status = http.StatusConflict
			}
			writeRolloutErr(w, status, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

func writeRolloutErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: err.Error()})
}
