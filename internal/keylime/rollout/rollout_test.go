package rollout

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/keylime/faultinject"
	"repro/internal/keylime/store"
	"repro/internal/keylime/verifier"
	"repro/internal/mirror"
	"repro/internal/policy"
	"repro/internal/simclock"
)

// fakeAgent mirrors the verifier-side state the controller observes.
type fakeAgent struct {
	gen          uint64
	pol          *policy.RuntimePolicy
	shadowGen    uint64
	shadowPol    *policy.RuntimePolicy
	shadowRounds int
	shadowClean  int
	shadowWF     int
	shadowWP     int
	attestations int
	failures     int
	halted       bool
	// failWhenGen makes rounds fail (instead of attest) while the agent's
	// active generation equals this value — a bad canary promotion.
	failWhenGen uint64
}

// fakeFleet implements Fleet with the same idempotence semantics as the
// real verifier, cheap enough to crash-sweep hundreds of runs.
type fakeFleet struct {
	mu     sync.Mutex
	agents map[string]*fakeAgent
}

func newFakeFleet(ids ...string) *fakeFleet {
	f := &fakeFleet{agents: make(map[string]*fakeAgent)}
	for _, id := range ids {
		f.agents[id] = &fakeAgent{pol: policy.New()}
	}
	return f
}

func (f *fakeFleet) get(id string) (*fakeAgent, error) {
	a, ok := f.agents[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", verifier.ErrUnknownAgent, id)
	}
	return a, nil
}

func (f *fakeFleet) AgentIDs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]string, 0, len(f.agents))
	for id := range f.agents {
		ids = append(ids, id)
	}
	return ids
}

func (f *fakeFleet) Status(id string) (verifier.Status, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, err := f.get(id)
	if err != nil {
		return verifier.Status{}, err
	}
	st := verifier.Status{
		AgentID:          id,
		Attestations:     a.attestations,
		Halted:           a.halted,
		PolicyGeneration: a.gen,
		ShadowGeneration: a.shadowGen,
	}
	for i := 0; i < a.failures; i++ {
		st.Failures = append(st.Failures, verifier.Failure{Detail: "fake"})
	}
	return st, nil
}

func (f *fakeFleet) SetShadowPolicy(id string, gen uint64, pol *policy.RuntimePolicy) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, err := f.get(id)
	if err != nil {
		return err
	}
	if a.shadowPol != nil && a.shadowGen == gen {
		return nil
	}
	a.shadowPol = pol.Clone()
	a.shadowGen = gen
	a.shadowRounds, a.shadowClean, a.shadowWF, a.shadowWP = 0, 0, 0, 0
	return nil
}

func (f *fakeFleet) ClearShadowPolicy(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, err := f.get(id)
	if err != nil {
		return err
	}
	a.shadowPol, a.shadowGen = nil, 0
	a.shadowRounds, a.shadowClean, a.shadowWF, a.shadowWP = 0, 0, 0, 0
	return nil
}

func (f *fakeFleet) ShadowStatus(id string) (verifier.ShadowEvalStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, err := f.get(id)
	if err != nil {
		return verifier.ShadowEvalStatus{}, err
	}
	return verifier.ShadowEvalStatus{
		Installed:   a.shadowPol != nil,
		Generation:  a.shadowGen,
		Rounds:      a.shadowRounds,
		CleanRounds: a.shadowClean,
		WouldFail:   a.shadowWF,
		WouldPass:   a.shadowWP,
	}, nil
}

func (f *fakeFleet) InstallPolicyGeneration(id string, gen uint64, pol *policy.RuntimePolicy) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, err := f.get(id)
	if err != nil {
		return err
	}
	if a.gen == gen && gen != 0 {
		return nil
	}
	a.pol = pol.Clone()
	a.gen = gen
	if a.shadowPol != nil && a.shadowGen == gen {
		a.shadowPol, a.shadowGen = nil, 0
	}
	return nil
}

func (f *fakeFleet) ActivePolicy(id string) (*policy.RuntimePolicy, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, err := f.get(id)
	if err != nil {
		return nil, 0, err
	}
	return a.pol.Clone(), a.gen, nil
}

func (f *fakeFleet) Resume(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, err := f.get(id)
	if err != nil {
		return err
	}
	a.halted = false
	return nil
}

// round simulates one poll sweep over the fleet: shadow slots accumulate
// clean rounds (or divergence via divergeWF), agents attest or — while at
// failWhenGen — fail and halt.
func (f *fakeFleet) round(divergeWF bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, a := range f.agents {
		if a.halted {
			continue
		}
		if a.failWhenGen != 0 && a.gen == a.failWhenGen {
			a.failures++
			a.halted = true
			continue
		}
		a.attestations++
		if a.shadowPol != nil {
			a.shadowRounds++
			if divergeWF {
				a.shadowWF++
				a.shadowClean = 0
			} else {
				a.shadowClean++
			}
		}
	}
}

func candidate(t *testing.T) *policy.RuntimePolicy {
	t.Helper()
	pol := policy.New()
	pol.Add("/usr/bin/newtool", policy.Digest{0xAA})
	return pol
}

// drive ticks the controller (one fleet round per tick) until it reaches
// a terminal stage or maxRounds elapses.
func drive(t *testing.T, c *Controller, f *fakeFleet, divergeWF bool, maxRounds int) Status {
	t.Helper()
	var st Status
	for i := 0; i < maxRounds; i++ {
		f.round(divergeWF)
		var err error
		st, err = c.Tick()
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		if st.Stage == StageIdle {
			return st
		}
	}
	return st
}

func TestHappyPathPromotesThroughStages(t *testing.T) {
	f := newFakeFleet("a1", "a2", "a3")
	var events []string
	c, err := New(Config{
		Fleet: f, ShadowRounds: 2, CanaryCount: 1, CanaryRounds: 2,
		AutoRollback: true,
		Notify:       func(ev Event) { events = append(events, ev.Type) },
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := c.Begin(candidate(t))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("generation = %d, want 1", gen)
	}
	// Shadow slots installed on every target immediately.
	for _, id := range []string{"a1", "a2", "a3"} {
		ss, _ := f.ShadowStatus(id)
		if !ss.Installed || ss.Generation != gen {
			t.Fatalf("%s shadow = %+v, want installed gen %d", id, ss, gen)
		}
	}
	st := drive(t, c, f, false, 20)
	if st.Stage != StageIdle {
		t.Fatalf("stage = %s, want idle", st.Stage)
	}
	if st.Stats.Promotions != 1 || st.Stats.Rollbacks != 0 {
		t.Fatalf("stats = %+v, want 1 promotion", st.Stats)
	}
	for _, id := range []string{"a1", "a2", "a3"} {
		if g := f.agents[id].gen; g != gen {
			t.Errorf("%s generation = %d, want %d", id, g, gen)
		}
		if f.agents[id].shadowPol != nil {
			t.Errorf("%s shadow slot not cleared after promotion", id)
		}
	}
	want := "shadowing,canary,promoted"
	if got := strings.Join(events, ","); got != want {
		t.Errorf("events = %s, want %s", got, want)
	}
}

func TestShadowDivergenceQuarantinesCandidate(t *testing.T) {
	f := newFakeFleet("a1", "a2")
	c, err := New(Config{Fleet: f, ShadowRounds: 3, AutoRollback: true})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := c.Begin(candidate(t))
	if err != nil {
		t.Fatal(err)
	}
	st := drive(t, c, f, true, 10)
	if st.Stage != StageIdle {
		t.Fatalf("stage = %s, want idle", st.Stage)
	}
	if st.Stats.Rollbacks != 1 || st.Stats.Promotions != 0 {
		t.Fatalf("stats = %+v, want 1 rollback", st.Stats)
	}
	if len(st.Quarantined) != 1 || st.Quarantined[0] != gen {
		t.Fatalf("quarantined = %v, want [%d]", st.Quarantined, gen)
	}
	if st.Stats.ShadowWouldFail == 0 {
		t.Error("shadow would-fail divergence not recorded in stats")
	}
	for id, a := range f.agents {
		if a.gen == gen {
			t.Errorf("%s promoted to quarantined generation", id)
		}
		if a.shadowPol != nil {
			t.Errorf("%s shadow slot not cleared after quarantine", id)
		}
	}
}

func TestShadowDivergenceWithoutAutoRollbackFreezes(t *testing.T) {
	f := newFakeFleet("a1")
	c, err := New(Config{Fleet: f, ShadowRounds: 3, AutoRollback: false})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(candidate(t)); err != nil {
		t.Fatal(err)
	}
	st := drive(t, c, f, true, 6)
	if st.Stage != StageShadowing || !st.Tripped {
		t.Fatalf("status = %+v, want tripped shadowing", st)
	}
	// Operator resolves by cancelling; the candidate is quarantined.
	if err := c.Cancel(); err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); st.Stage != StageIdle || len(st.Quarantined) != 1 {
		t.Fatalf("after cancel: %+v", st)
	}
}

func TestCanaryTripwireRollsBackAndRestoresPolicy(t *testing.T) {
	f := newFakeFleet("a1", "a2", "a3")
	// a1 sorts first so it becomes the canary; make it fail once the
	// candidate generation is active on it.
	f.agents["a1"].failWhenGen = 1
	f.agents["a1"].pol.Add("/usr/bin/oldtool", policy.Digest{0x01})
	c, err := New(Config{
		Fleet: f, ShadowRounds: 1, CanaryCount: 1, CanaryRounds: 3,
		TripThreshold: 1, AutoRollback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := c.Begin(candidate(t))
	if err != nil {
		t.Fatal(err)
	}
	st := drive(t, c, f, false, 20)
	if st.Stage != StageIdle {
		t.Fatalf("stage = %s, want idle", st.Stage)
	}
	if st.Stats.Rollbacks != 1 {
		t.Fatalf("stats = %+v, want 1 rollback", st.Stats)
	}
	a1 := f.agents["a1"]
	if a1.gen == gen {
		t.Error("canary left on the quarantined generation")
	}
	if !a1.pol.Has("/usr/bin/oldtool") {
		t.Error("canary's previous policy not restored")
	}
	if a1.halted {
		t.Error("canary not resumed after rollback")
	}
	if f.agents["a2"].gen == gen || f.agents["a3"].gen == gen {
		t.Error("non-canary promoted despite rollback")
	}
}

func TestFreshnessGateHoldsWindow(t *testing.T) {
	now := time.Date(2026, 1, 1, 3, 0, 0, 0, time.UTC)
	arc := mirror.NewArchive()
	if _, err := arc.Publish(now, mirror.Package{Name: "coreutils", Version: "9.1"}); err != nil {
		t.Fatal(err)
	}
	m := mirror.NewMirror(arc)
	m.Sync(now.Add(time.Hour))
	f := newFakeFleet("a1")
	var held []Event
	c, err := New(Config{Fleet: f, Freshness: m,
		Notify: func(ev Event) {
			if ev.Type == "held" {
				held = append(held, ev)
			}
		}})
	if err != nil {
		t.Fatal(err)
	}

	// Fresh mirror: window opens.
	if _, err := c.Begin(candidate(t)); err != nil {
		t.Fatalf("begin with fresh mirror: %v", err)
	}
	if err := c.Cancel(); err != nil {
		t.Fatal(err)
	}

	// Late publish after the last sync: window held, nothing changes.
	if _, err := arc.Publish(now.Add(2*time.Hour), mirror.Package{Name: "coreutils", Version: "9.2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(candidate(t)); !errors.Is(err, ErrMirrorStale) {
		t.Fatalf("begin with stale mirror: err = %v, want ErrMirrorStale", err)
	}
	st := c.Status()
	if st.Stage != StageIdle || st.Stats.Holds != 1 || st.LastHold == nil {
		t.Fatalf("after hold: %+v", st)
	}
	if len(held) != 1 {
		t.Fatalf("held events = %d, want 1", len(held))
	}
	if ss, _ := f.ShadowStatus("a1"); ss.Installed {
		t.Error("held window still installed a shadow policy")
	}

	// Resync clears the hold.
	m.Sync(now.Add(3 * time.Hour))
	if _, err := c.Begin(candidate(t)); err != nil {
		t.Fatalf("begin after resync: %v", err)
	}
}

func TestBeginRejectsConcurrentRollout(t *testing.T) {
	f := newFakeFleet("a1")
	c, err := New(Config{Fleet: f})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(candidate(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(candidate(t)); !errors.Is(err, ErrRolloutInProgress) {
		t.Fatalf("second begin: err = %v, want ErrRolloutInProgress", err)
	}
}

func TestBeginRejectsEmptyFleet(t *testing.T) {
	c, err := New(Config{Fleet: newFakeFleet()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(candidate(t)); !errors.Is(err, ErrNoAgents) {
		t.Fatalf("err = %v, want ErrNoAgents", err)
	}
}

// recordSteps runs a fault-free rollout and returns the recorded step
// sequence. tripCanary makes the first canary fail under the candidate so
// the sequence includes the rollback steps.
func recordSteps(t *testing.T, tripCanary bool) []string {
	t.Helper()
	f := sweepFleet(tripCanary)
	hook := faultinject.NewStepHook()
	c, err := New(sweepConfig(f, nil, hook))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(candidate(t)); err != nil {
		t.Fatal(err)
	}
	if st := drive(t, c, f, false, 30); st.Stage != StageIdle {
		t.Fatalf("fault-free run did not finish: %+v", st)
	}
	steps := hook.Steps()
	if len(steps) == 0 {
		t.Fatal("no steps recorded")
	}
	return steps
}

func sweepFleet(tripCanary bool) *fakeFleet {
	f := newFakeFleet("a1", "a2", "a3")
	for _, a := range f.agents {
		a.pol.Add("/usr/bin/oldtool", policy.Digest{0x01})
	}
	if tripCanary {
		f.agents["a1"].failWhenGen = 1
	}
	return f
}

func sweepConfig(f *fakeFleet, st *store.Store, hook *faultinject.StepHook) Config {
	return Config{
		Fleet: f, Store: st, ShadowRounds: 2, CanaryCount: 1, CanaryRounds: 2,
		TripThreshold: 1, AutoRollback: true,
		Clock: simclock.NewSimulated(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)),
		Step:  hook.Step,
	}
}

// TestCrashSweepEveryStepBoundary is the ISSUE's acceptance criterion:
// crash the controller at every step boundary of both the promote and
// the rollback pipeline, recover from the journal with a fresh
// controller, and require the fleet to land on exactly one consistent
// policy generation per agent — fully promoted, fully rolled back, or
// untouched. Never half-applied.
func TestCrashSweepEveryStepBoundary(t *testing.T) {
	for _, tripCanary := range []bool{false, true} {
		name := "promote"
		if tripCanary {
			name = "rollback"
		}
		t.Run(name, func(t *testing.T) {
			steps := recordSteps(t, tripCanary)
			t.Logf("fault-free steps: %v", steps)
			for n := 1; n <= len(steps); n++ {
				t.Run(fmt.Sprintf("crash-at-%d-%s", n, steps[n-1]), func(t *testing.T) {
					sweepOnce(t, tripCanary, n)
				})
			}
		})
	}
}

func sweepOnce(t *testing.T, tripCanary bool, crashAt int) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := sweepFleet(tripCanary)
	hook := faultinject.NewStepHook()
	hook.ArmCrash(crashAt)
	c, err := New(sweepConfig(f, st, hook))
	if err != nil {
		t.Fatal(err)
	}

	// Drive until the injected crash fires (or, if the crash index is past
	// this run's path, until terminal).
	crashed := false
	if _, err := c.Begin(candidate(t)); err != nil {
		if !errors.Is(err, faultinject.ErrStepCrash) {
			t.Fatal(err)
		}
		crashed = true
	}
	for i := 0; i < 30 && !crashed; i++ {
		f.round(false)
		status, err := c.Tick()
		if err != nil {
			if !errors.Is(err, faultinject.ErrStepCrash) {
				t.Fatal(err)
			}
			crashed = true
			break
		}
		if status.Stage == StageIdle {
			break
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Reboot": fresh store handle, fresh controller, no crash armed. New
	// recovers the journaled stage and re-applies it; further ticks drive
	// the rollout to terminal.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	defer st2.Close()
	c2, err := New(sweepConfig(f, st2, faultinject.NewStepHook()))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	final := c2.Status()
	for i := 0; i < 30 && final.Stage != StageIdle; i++ {
		f.round(false)
		if final, err = c2.Tick(); err != nil {
			t.Fatalf("post-recovery tick: %v", err)
		}
	}
	if final.Stage != StageIdle {
		t.Fatalf("rollout never reached terminal after recovery: %+v", final)
	}

	// Consistency: every agent must be fully at the candidate generation
	// (promoted) or fully off it (rolled back / never begun), shadow slots
	// empty either way.
	promoted := final.Stats.Promotions == 1
	for id, a := range f.agents {
		if a.shadowPol != nil {
			t.Errorf("%s: shadow slot still occupied at terminal", id)
		}
		if promoted {
			if a.gen != 1 {
				t.Errorf("%s: generation = %d after promotion, want 1", id, a.gen)
			}
		} else if a.gen == 1 {
			t.Errorf("%s: left on quarantined/abandoned generation 1", id)
		}
	}
	if tripCanary && final.Stats.Promotions > 0 {
		t.Errorf("bad candidate was promoted: %+v", final.Stats)
	}
	total := final.Stats.Promotions + final.Stats.Rollbacks
	if total > 1 {
		t.Errorf("rollout finished %d times: %+v", total, final.Stats)
	}
}

// TestRecoveryResumesMidShadow checks the non-terminal recovery path
// explicitly: a controller killed while shadowing resumes counting where
// the verifier-side counters left off.
func TestRecoveryResumesMidShadow(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := sweepFleet(false)
	c, err := New(sweepConfig(f, st, faultinject.NewStepHook()))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := c.Begin(candidate(t))
	if err != nil {
		t.Fatal(err)
	}
	f.round(false) // one clean shadow round, then "crash"
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	c2, err := New(sweepConfig(f, st2, faultinject.NewStepHook()))
	if err != nil {
		t.Fatal(err)
	}
	got := c2.Status()
	if got.Stage != StageShadowing || got.Generation != gen {
		t.Fatalf("recovered status = %+v, want shadowing gen %d", got, gen)
	}
	// The shadow slots kept their generation, so counters were preserved.
	if ss, _ := f.ShadowStatus("a1"); ss.CleanRounds != 1 {
		t.Fatalf("clean rounds after recovery = %d, want 1 (counters reset?)", ss.CleanRounds)
	}
	if st := drive(t, c2, f, false, 20); st.Stats.Promotions != 1 {
		t.Fatalf("recovered rollout did not promote: %+v", st)
	}
}

// TestGenerationCounterSurvivesRestart ensures generations stay monotonic
// across process restarts (a reused generation would defeat idempotent
// re-apply).
func TestGenerationCounterSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	f := newFakeFleet("a1")
	open := func() (*Controller, *store.Store) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(Config{Fleet: f, Store: st, ShadowRounds: 1, CanaryRounds: 1, AutoRollback: true})
		if err != nil {
			t.Fatal(err)
		}
		return c, st
	}
	c, st := open()
	gen1, err := c.Begin(candidate(t))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, c, f, false, 10)
	st.Close()

	c2, st2 := open()
	defer st2.Close()
	gen2, err := c2.Begin(candidate(t))
	if err != nil {
		t.Fatal(err)
	}
	if gen2 <= gen1 {
		t.Fatalf("generation after restart = %d, want > %d", gen2, gen1)
	}
}

// TestRealVerifierIntegration exercises the controller against a live
// verifier + agent stack end to end: shadow rounds accumulate through
// real attestation sweeps and the candidate promotes fleet-wide.
func TestRealVerifierIntegration(t *testing.T) {
	s := newVerifierStack(t)
	gen := s.runRollout(t)
	for _, id := range s.agentIDs {
		got, err := s.v.PolicyGeneration(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != gen {
			t.Errorf("%s generation = %d, want %d", id, got, gen)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	f := newFakeFleet("a1")
	c, err := New(Config{Fleet: f, ShadowRounds: 1, CanaryRounds: 1, AutoRollback: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v2/rollout/begin", "application/json",
		strings.NewReader(`{"entries":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("begin: status %d", resp.StatusCode)
	}

	// Second begin conflicts.
	resp, err = http.Post(srv.URL+"/v2/rollout/begin", "application/json",
		strings.NewReader(`{"entries":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent begin: status %d, want 409", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/v2/rollout/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v2/rollout/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	// Cancel with nothing in flight conflicts.
	resp, err = http.Post(srv.URL+"/v2/rollout/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("idle cancel: status %d, want 409", resp.StatusCode)
	}

	// Malformed candidate policy is a 400, never a panic.
	resp, err = http.Post(srv.URL+"/v2/rollout/begin", "application/json",
		strings.NewReader(`{"entries":`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed begin: status %d, want 400", resp.StatusCode)
	}
}
