// Package session implements the key schedule for sessioned attestation:
// the per-agent symmetric session that lets steady-state rounds be
// authenticated with an HMAC over (nonce, PCR composite, log frontier)
// instead of a full ECDSA quote verification.
//
// A session is derived from a *verified* full-quote exchange and bound to
// the TPM-backed AK identity: the HKDF salt is the AK name, and the input
// keying material is the quote's ECDSA signature over the verifier's fresh
// nonce (non-deterministic, produced inside the TPM, and never reused —
// the one value both endpoints of the exchange hold that an offline party
// cannot predict). Both sides derive the same key without an extra round
// trip: the agent signs the quote, the verifier receives it; the key
// exists only after the verifier has checked the signature against the
// enrolled AK, so a session can never be minted by an agent the verifier
// has not cryptographically identified.
//
// The session MAC never *replaces* verification — it only attests "nothing
// changed since the last full quote". Any divergence (frontier, PCR
// composite, MAC, unknown session) escalates to a full quote, and the
// verifier's audit taxonomy records which check level authenticated every
// round, so a downgraded check cannot silently stand in for a failed full
// one.
package session

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"hash"

	"repro/internal/tpm"
)

const (
	// KeySize is the session key length (HKDF-SHA256 output).
	KeySize = 32
	// IDSize is the session identifier length.
	IDSize = 16
	// MACSize is the session MAC length (HMAC-SHA256).
	MACSize = 32
)

// ID names one session between a verifier and an agent. The verifier
// allocates it randomly when it requests establishment; it is an opaque
// handle, carrying no secrets.
type ID [IDSize]byte

// IsZero reports whether the ID is unset.
func (id ID) IsZero() bool { return id == ID{} }

// deriveLabel domain-separates the HKDF expand step.
const deriveLabel = "keylime-session-v1"

// macLabel domain-separates session MACs from any other HMAC use of the key.
const macLabel = "KLSM1"

// macLabelBytes avoids a per-Sum string→[]byte conversion allocation.
var macLabelBytes = []byte(macLabel)

// DeriveKey derives the session key from a verified quote exchange via
// HKDF-SHA256 (RFC 5869, extract then a single expand block):
//
//	PRK = HMAC-SHA256(salt = AK name, IKM = quote signature)
//	key = HMAC-SHA256(PRK, label || session ID || nonce || 0x01)
//
// The AK name binds the key to the TPM-backed identity; the signature and
// nonce bind it to one fresh, verified exchange.
func DeriveKey(akName tpm.Digest, signature, nonce []byte, id ID) [KeySize]byte {
	ext := hmac.New(sha256.New, akName[:])
	ext.Write(signature)
	prk := ext.Sum(nil)
	exp := hmac.New(sha256.New, prk)
	exp.Write([]byte(deriveLabel))
	exp.Write(id[:])
	exp.Write(nonce)
	exp.Write([]byte{0x01})
	var key [KeySize]byte
	exp.Sum(key[:0])
	return key
}

// MACer computes session MACs with a cached HMAC state, so the steady-state
// round costs one Reset+Sum instead of re-keying SHA-256 pads every round.
// It is NOT safe for concurrent use: callers serialize externally (the
// verifier under the agent's poll mutex, the agent under its session-table
// lock).
type MACer struct {
	h hash.Hash
	// Scratch state lives on the (already heap-resident) MACer so the
	// hot path passes no stack-local slices through the hash.Hash
	// interface — which would force a heap escape per round.
	scratch [8]byte
	comp    tpm.Digest
	out     [MACSize]byte
}

// NewMACer returns a MACer for the session key.
func NewMACer(key []byte) *MACer {
	return &MACer{h: hmac.New(sha256.New, key)}
}

// Sum writes HMAC(key, label || len(nonce) || nonce || composite || total)
// into out. The MAC covers the verifier's fresh nonce (anti-replay), the
// PCR composite over the quoted selection, and the measurement-log
// frontier — exactly the state whose stability the session round attests.
func (m *MACer) Sum(nonce []byte, composite tpm.Digest, total uint64, out *[MACSize]byte) {
	m.sum(nonce, composite, total)
	*out = m.out
}

// Verify recomputes the MAC and compares in constant time.
func (m *MACer) Verify(nonce []byte, composite tpm.Digest, total uint64, mac []byte) bool {
	m.sum(nonce, composite, total)
	return hmac.Equal(m.out[:], mac)
}

func (m *MACer) sum(nonce []byte, composite tpm.Digest, total uint64) {
	m.comp = composite
	m.h.Reset()
	m.h.Write(macLabelBytes)
	binary.BigEndian.PutUint64(m.scratch[:], uint64(len(nonce)))
	m.h.Write(m.scratch[:])
	m.h.Write(nonce)
	m.h.Write(m.comp[:])
	binary.BigEndian.PutUint64(m.scratch[:], total)
	m.h.Write(m.scratch[:])
	m.h.Sum(m.out[:0])
}
