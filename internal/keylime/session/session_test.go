package session

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"testing"

	"repro/internal/tpm"
)

func testInputs() (tpm.Digest, []byte, []byte, ID) {
	var akName tpm.Digest
	for i := range akName {
		akName[i] = byte(i)
	}
	sig := bytes.Repeat([]byte{0xA5}, 70)
	nonce := bytes.Repeat([]byte{0x3C}, 20)
	var id ID
	copy(id[:], "session-id-0001!")
	return akName, sig, nonce, id
}

func TestDeriveKeyDeterministic(t *testing.T) {
	akName, sig, nonce, id := testInputs()
	k1 := DeriveKey(akName, sig, nonce, id)
	k2 := DeriveKey(akName, sig, nonce, id)
	if k1 != k2 {
		t.Fatal("same inputs derived different keys")
	}
}

func TestDeriveKeySensitivity(t *testing.T) {
	akName, sig, nonce, id := testInputs()
	base := DeriveKey(akName, sig, nonce, id)

	akName2 := akName
	akName2[0] ^= 1
	if DeriveKey(akName2, sig, nonce, id) == base {
		t.Fatal("AK name change did not change the key")
	}
	sig2 := append([]byte(nil), sig...)
	sig2[10] ^= 1
	if DeriveKey(akName, sig2, nonce, id) == base {
		t.Fatal("signature change did not change the key")
	}
	nonce2 := append([]byte(nil), nonce...)
	nonce2[0] ^= 1
	if DeriveKey(akName, sig, nonce2, id) == base {
		t.Fatal("nonce change did not change the key")
	}
	id2 := id
	id2[3] ^= 1
	if DeriveKey(akName, sig, nonce, id2) == base {
		t.Fatal("session ID change did not change the key")
	}
}

// TestDeriveKeyMatchesRFC5869 checks the hand-rolled HKDF against an
// independent straight-line computation of extract+expand.
func TestDeriveKeyMatchesRFC5869(t *testing.T) {
	akName, sig, nonce, id := testInputs()

	ext := hmac.New(sha256.New, akName[:])
	ext.Write(sig)
	prk := ext.Sum(nil)
	info := append([]byte("keylime-session-v1"), id[:]...)
	info = append(info, nonce...)
	exp := hmac.New(sha256.New, prk)
	exp.Write(info)
	exp.Write([]byte{1})
	want := exp.Sum(nil)

	got := DeriveKey(akName, sig, nonce, id)
	if !bytes.Equal(got[:], want) {
		t.Fatalf("DeriveKey mismatch with reference HKDF:\n got %x\nwant %x", got, want)
	}
}

func TestMACerRoundTrip(t *testing.T) {
	akName, sig, nonce, id := testInputs()
	key := DeriveKey(akName, sig, nonce, id)
	var composite tpm.Digest
	copy(composite[:], bytes.Repeat([]byte{0x7E}, len(composite)))

	signer := NewMACer(key[:])
	checker := NewMACer(key[:])

	var mac [MACSize]byte
	signer.Sum(nonce, composite, 12345, &mac)
	if !checker.Verify(nonce, composite, 12345, mac[:]) {
		t.Fatal("valid MAC rejected")
	}

	// Tampering with any covered field must fail verification.
	if checker.Verify(nonce, composite, 12346, mac[:]) {
		t.Fatal("MAC accepted with different total")
	}
	composite2 := composite
	composite2[0] ^= 1
	if checker.Verify(nonce, composite2, 12345, mac[:]) {
		t.Fatal("MAC accepted with different composite")
	}
	nonce2 := append([]byte(nil), nonce...)
	nonce2[5] ^= 1
	if checker.Verify(nonce2, composite, 12345, mac[:]) {
		t.Fatal("MAC accepted with different nonce (replay)")
	}
	mac2 := mac
	mac2[0] ^= 1
	if checker.Verify(nonce, composite, 12345, mac2[:]) {
		t.Fatal("corrupted MAC accepted")
	}

	otherKey := DeriveKey(akName, append([]byte(nil), sig...), nonce, ID{9})
	other := NewMACer(otherKey[:])
	if other.Verify(nonce, composite, 12345, mac[:]) {
		t.Fatal("MAC accepted under a different session key")
	}
}

// TestMACerReuse exercises the cached-state path: repeated Sums on one
// MACer must equal fresh HMAC computations.
func TestMACerReuse(t *testing.T) {
	key := bytes.Repeat([]byte{0x42}, KeySize)
	m := NewMACer(key)
	nonce := []byte("twenty-byte-nonce-ab")
	var composite tpm.Digest
	for round := 0; round < 50; round++ {
		composite[0] = byte(round)
		total := uint64(round * 17)

		var got [MACSize]byte
		m.Sum(nonce, composite, total, &got)

		ref := hmac.New(sha256.New, key)
		var u64 [8]byte
		ref.Write([]byte(macLabel))
		binary.BigEndian.PutUint64(u64[:], uint64(len(nonce)))
		ref.Write(u64[:])
		ref.Write(nonce)
		ref.Write(composite[:])
		binary.BigEndian.PutUint64(u64[:], total)
		ref.Write(u64[:])
		want := ref.Sum(nil)
		if !bytes.Equal(got[:], want) {
			t.Fatalf("round %d: cached MACer diverged from fresh HMAC", round)
		}
	}
}

func TestMACerSumAllocFree(t *testing.T) {
	key := bytes.Repeat([]byte{0x42}, KeySize)
	m := NewMACer(key)
	nonce := []byte("twenty-byte-nonce-ab")
	var composite tpm.Digest
	var mac [MACSize]byte
	allocs := testing.AllocsPerRun(200, func() {
		m.Sum(nonce, composite, 7, &mac)
	})
	if allocs > 0 {
		t.Fatalf("MACer.Sum allocates %.1f/op; want 0", allocs)
	}
}
