package cluster

// Reconciler-driven churn across a live cluster, with a verifier killed
// mid-churn: the declarative controller drives enrollment through the
// FleetProxy (ring-owner routing), a node dies while a wave is
// half-applied, the ring re-forms, and the reconciler's retry/backoff
// carries the interrupted operations to the survivors. The end state
// must be exactly the final declared window — partitioned one-owner-per-
// agent across the survivors, attesting cleanly — with no agent leaked
// from the dead shard and none lost from the interrupted wave.

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/keylime/reconcile"
	"repro/internal/keylime/store"
)

func TestClusterReconcileFailoverMidChurn(t *testing.T) {
	h := newHarness(t, 1, "v1", "v2", "v3")
	lead := h.converge()

	akB64 := base64.StdEncoding.EncodeToString(h.akPub)
	polJSON, err := json.Marshal(h.pol)
	if err != nil {
		t.Fatalf("marshal policy: %v", err)
	}
	spec := func(lo, hi int) *reconcile.FleetSpec {
		s := &reconcile.FleetSpec{}
		for i := lo; i < hi; i++ {
			s.Agents = append(s.Agents, reconcile.AgentSpec{
				ID:     fmt.Sprintf("rc-%04d-4a97-9ef7-75bd81c0f1ee", i),
				URL:    testAgentURL,
				AKPub:  akB64,
				Policy: polJSON,
			})
		}
		return s
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer func() { _ = st.Close() }()
	// Retries stay fast and never park Degraded: every op interrupted by
	// the node death must eventually land on a survivor, and the test
	// clock advances one heartbeat per harness tick.
	rc, err := reconcile.New(reconcile.Config{
		Fleet:       lead.n.Fleet(h.ctx),
		Store:       st,
		Clock:       h.clk,
		MaxRetries:  100,
		BaseBackoff: time.Second,
		MaxBackoff:  2 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("reconcile.New: %v", err)
	}
	settle := func(label string, bound int) {
		t.Helper()
		for i := 0; i < bound && !rc.Status().Converged; i++ {
			h.tick()
			if err := rc.Tick(); err != nil {
				t.Fatalf("%s: Tick: %v", label, err)
			}
		}
		if !rc.Status().Converged {
			t.Fatalf("%s: not converged within %d ticks: %+v", label, bound, rc.Status())
		}
	}

	// Two clean waves establish a churning baseline across the ring.
	if _, _, err := rc.Apply(spec(0, 40)); err != nil {
		t.Fatalf("wave 1: %v", err)
	}
	settle("wave 1", 10)
	if st := h.sweepAll(); st.Attested != 40 || st.Failed != 0 {
		t.Fatalf("wave 1 sweep = %+v", st)
	}
	if _, _, err := rc.Apply(spec(20, 60)); err != nil {
		t.Fatalf("wave 2: %v", err)
	}
	settle("wave 2", 10)

	// Wave 3 is interrupted: the spec lands, a non-reconciler node dies
	// before the wave converges, and ops routed to the dead owner fail
	// into backoff until the ring re-forms around the survivors.
	if _, _, err := rc.Apply(spec(40, 80)); err != nil {
		t.Fatalf("wave 3: %v", err)
	}
	victim := ""
	for _, id := range h.peers {
		if id != lead.id {
			victim = id
			break
		}
	}
	h.kill(victim)
	if err := rc.Tick(); err != nil {
		t.Fatalf("mid-failure tick: %v", err)
	}
	h.converge()
	settle("wave 3 after failover", 120)

	// Exactly the final window survives, partitioned across the two
	// remaining nodes, attesting with zero false verdicts.
	want := make([]string, 0, 40)
	for i := 40; i < 80; i++ {
		want = append(want, fmt.Sprintf("rc-%04d-4a97-9ef7-75bd81c0f1ee", i))
	}
	got := lead.n.Fleet(h.ctx).AgentIDs()
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("fleet = %d agents %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fleet[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	h.assertPartitioned(want)
	if st := h.sweepAll(); st.Attested != 40 || st.Failed != 0 {
		t.Fatalf("post-failover sweep = %+v, want 40 attested / 0 failed", st)
	}
	if deg := rc.Status().Degraded; len(deg) != 0 {
		t.Fatalf("items left degraded after failover: %v", deg)
	}
}
