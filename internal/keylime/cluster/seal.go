package cluster

// Replication frame sealing. A standby's replica is a rollback-restore
// source during failover, so a forged or corrupted frame accepted today
// becomes forged attestation state restored tomorrow. When both sides
// hold a keyring, every ReplicateReq carries a DSSE envelope over the
// frame digest — source identity, store epoch, seq bounds, and a
// SHA-256 over the payload — and the receiver verifies it before a
// single row touches its store. Rejection is a hard RPC error (the
// sender retries; a persistent failure shows up as a stalled cursor and
// a SealRejects counter in Status), never a silent accept.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/keylime/dsse"
)

// ReplicatePayloadType is the DSSE payload type of a replication frame
// seal.
const ReplicatePayloadType = "application/vnd.keylime.replication-frame+json"

// sealBody is what the sender signs for one replication frame.
type sealBody struct {
	Src      string `json:"src"`
	SrcEpoch uint64 `json:"src_epoch"`
	FromSeq  uint64 `json:"from_seq"`
	UpTo     uint64 `json:"up_to"`
	IsSnap   bool   `json:"is_snap,omitempty"`
	// Digest is the hex SHA-256 of the frame payload (segments or
	// snapshot rows, canonically encoded).
	Digest string `json:"digest"`
}

// frameDigest hashes the frame payload canonically: length-prefixed
// fields, snapshot rows in sorted key order, so sender and receiver
// agree byte-for-byte regardless of JSON map ordering.
func frameDigest(body *ReplicateReq) string {
	h := sha256.New()
	var lenBuf [8]byte
	put := func(b []byte) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(b)))
		h.Write(lenBuf[:])
		h.Write(b)
	}
	if body.IsSnap {
		keys := make([]string, 0, len(body.Snapshot))
		for k := range body.Snapshot {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			put([]byte(k))
			put(body.Snapshot[k])
		}
	} else {
		for _, seg := range body.Segments {
			put([]byte{seg.Op})
			put([]byte(seg.Key))
			put(seg.Value)
			binary.BigEndian.PutUint64(lenBuf[:], seg.Seq)
			h.Write(lenBuf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// sealReplicate signs the frame in place. No keyring (or a verify-only
// keyring) leaves the frame unsealed — back-compat with unsigned peers.
func (n *Node) sealReplicate(body *ReplicateReq) error {
	kr := n.cfg.Keyring
	if kr == nil || !kr.CanSign() {
		return nil
	}
	sb, err := json.Marshal(sealBody{
		Src: n.cfg.NodeID, SrcEpoch: body.SrcEpoch,
		FromSeq: body.FromSeq, UpTo: body.UpTo, IsSnap: body.IsSnap,
		Digest: frameDigest(body),
	})
	if err != nil {
		return fmt.Errorf("cluster: encoding frame seal: %w", err)
	}
	env, err := kr.Sign(ReplicatePayloadType, sb)
	if err != nil {
		return fmt.Errorf("cluster: sealing replication frame: %w", err)
	}
	raw, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("cluster: encoding seal envelope: %w", err)
	}
	body.Seal = raw
	return nil
}

// verifyReplicate checks an inbound frame against this node's keyring.
// Nil keyring accepts anything (unsigned deployment); with one, the
// frame must carry a seal whose signature verifies and whose sealed
// fields match both the claimed bounds and the recomputed payload
// digest. src is the transport-level sender, which the seal must name —
// a valid frame captured from node A cannot be replayed as node B's.
func (n *Node) verifyReplicate(src string, body *ReplicateReq) error {
	kr := n.cfg.Keyring
	if kr == nil {
		return nil
	}
	if len(body.Seal) == 0 {
		return fmt.Errorf("frame from %s carries no seal", src)
	}
	var env dsse.Envelope
	if err := json.Unmarshal(body.Seal, &env); err != nil {
		return fmt.Errorf("seal envelope: %v", err)
	}
	payload, err := kr.Verify(&env, ReplicatePayloadType)
	if err != nil {
		return err
	}
	var sb sealBody
	if err := json.Unmarshal(payload, &sb); err != nil {
		return fmt.Errorf("seal body: %v", err)
	}
	switch {
	case sb.Src != src:
		return fmt.Errorf("seal names source %s, frame arrived from %s", sb.Src, src)
	case sb.SrcEpoch != body.SrcEpoch || sb.FromSeq != body.FromSeq ||
		sb.UpTo != body.UpTo || sb.IsSnap != body.IsSnap:
		return fmt.Errorf("seal bounds (epoch %d, %d..%d) disagree with frame (epoch %d, %d..%d)",
			sb.SrcEpoch, sb.FromSeq, sb.UpTo, body.SrcEpoch, body.FromSeq, body.UpTo)
	case sb.Digest != frameDigest(body):
		return fmt.Errorf("frame payload does not match its sealed digest")
	}
	return nil
}
