// Package cluster turns the single-process verifier into a replicated
// multi-verifier cluster: a static peer set with heartbeat liveness and
// lease-based coordinator election, a consistent-hash ring with virtual
// nodes that partitions the agent fleet across verifier replicas, and
// asynchronous journal replication that streams each verifier's per-agent
// state rows to its ring standbys. On membership change the coordinator
// drives an explicit handoff protocol (freeze → flush → install → commit
// → resume) whose every step is a faultinject.StepHook boundary, so the
// crash-sweep harness can kill the cluster at each checkpoint and assert
// that it converges to exactly one owner per agent.
//
// The paper's operational finding motivates all of it: continuous
// attestation that stops is worse than attestation that never ran,
// because operators trust the green dashboard. A verifier crash must not
// silence integrity monitoring for its shard of the fleet.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVNodes is the virtual-node count per member: enough points that
// a 3-node ring splits a fleet within a few percent of evenly, cheap
// enough that ring rebuilds are negligible next to one TPM quote.
const defaultVNodes = 64

// Ring is a consistent-hash ring over cluster members. Construct with
// NewRing; immutable afterwards (rebuild on membership change).
type Ring struct {
	points  []ringPoint // sorted by hash
	members []string    // sorted member IDs
	vnodes  int
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring with the given virtual-node count per member
// (vnodes <= 0 uses the default). Duplicate member IDs are collapsed.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	uniq := make(map[string]bool, len(members))
	var ms []string
	for _, m := range members {
		if m != "" && !uniq[m] {
			uniq[m] = true
			ms = append(ms, m)
		}
	}
	sort.Strings(ms)
	r := &Ring{members: ms, vnodes: vnodes}
	for _, m := range ms {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", m, i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	// FNV alone clusters badly on the ring for short, similar keys
	// ("v1#0", "v1#1", ...): finish with a 64-bit avalanche mix so vnode
	// points spread uniformly.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Members returns the ring's member IDs, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Owner returns the member owning the key (clockwise successor of the
// key's hash), or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Successors returns the first n distinct members clockwise after the
// key's owner — the standbys that replicate the owner's journal for this
// key's shard. Fewer are returned when the ring is smaller than n+1.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	owner := r.points[i].member
	seen := map[string]bool{owner: true}
	var out []string
	for j := 1; j < len(r.points) && len(out) < n; j++ {
		m := r.points[(i+j)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// StandbysOf returns the n distinct members that replicate the given
// member's shard: its distinct clockwise successors on a member-level
// ring. Stable under agent churn (it depends only on membership).
func (r *Ring) StandbysOf(member string, n int) []string {
	if n <= 0 || len(r.members) <= 1 {
		return nil
	}
	i := sort.SearchStrings(r.members, member)
	if i == len(r.members) || r.members[i] != member {
		return nil
	}
	var out []string
	for j := 1; j < len(r.members) && len(out) < n; j++ {
		out = append(out, r.members[(i+j)%len(r.members)])
	}
	return out
}
