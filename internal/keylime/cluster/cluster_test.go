package cluster

// In-process multi-verifier cluster harness: N nodes share one
// MemTransport governed by a PeerFaults plan, each with its own durable
// store and verifier; the whole cluster runs on one simulated clock and
// is advanced tick by tick, so elections, handoffs and replication are
// deterministic. Like the fleet benchmark, many agent IDs are enrolled
// against ONE simulated machine reached through a loopback RoundTripper —
// every attestation round still does real nonce/quote/ECDSA/IMA work.

import (
	"context"
	"crypto/rand"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/keylime/agent"
	"repro/internal/keylime/faultinject"
	"repro/internal/keylime/store"
	"repro/internal/keylime/verifier"
	"repro/internal/machine"
	"repro/internal/policy"
	"repro/internal/simclock"
	"repro/internal/tpm"
	"repro/internal/vfs"
)

type loopbackTransport struct{ h http.Handler }

func (t loopbackTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

const testAgentURL = "http://agent.cluster.internal"

type testNode struct {
	id          string
	dir         string
	st          *store.Store
	v           *verifier.Verifier
	n           *Node
	steps       *faultinject.StepHook
	revocations atomic.Int64
}

type harness struct {
	t      *testing.T
	ctx    context.Context
	clk    *simclock.Simulated
	faults *faultinject.PeerFaults
	tr     *MemTransport
	client *http.Client
	mach   *machine.Machine
	akPub  []byte
	pol    *policy.RuntimePolicy

	peers    []string
	replicas int
	hb       time.Duration
	lease    time.Duration
	nodes    map[string]*testNode // live nodes
	dirs     map[string]string
}

func newHarness(t *testing.T, replicas int, ids ...string) *harness {
	t.Helper()
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	m, err := machine.New(ca, machine.WithTPMOptions(tpm.WithEKBits(1024)))
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	if err := m.WriteFile("/usr/bin/tool", []byte("\x7fELF tool"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.Exec("/usr/bin/tool"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	akPub, err := m.TPM().CreateAK()
	if err != nil {
		t.Fatalf("CreateAK: %v", err)
	}
	pol, err := core.SnapshotPolicy(m.FS(), nil)
	if err != nil {
		t.Fatalf("SnapshotPolicy: %v", err)
	}
	h := &harness{
		t:        t,
		ctx:      context.Background(),
		clk:      simclock.NewSimulated(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)),
		faults:   faultinject.NewPeerFaults(),
		client:   &http.Client{Transport: loopbackTransport{h: agent.New(m).Handler()}},
		mach:     m,
		akPub:    akPub,
		pol:      pol,
		peers:    append([]string(nil), ids...),
		replicas: replicas,
		hb:       time.Second,
		lease:    4 * time.Second,
		nodes:    make(map[string]*testNode),
		dirs:     make(map[string]string),
	}
	h.tr = NewMemTransport(h.faults)
	sort.Strings(h.peers)
	for _, id := range h.peers {
		h.dirs[id] = t.TempDir()
		h.startNode(id)
	}
	return h
}

// startNode boots (or reboots) a node from its durable store directory.
func (h *harness) startNode(id string) *testNode {
	h.t.Helper()
	st, err := store.Open(h.dirs[id])
	if err != nil {
		h.t.Fatalf("store.Open(%s): %v", id, err)
	}
	tn := &testNode{id: id, dir: h.dirs[id], st: st, steps: faultinject.NewStepHook()}
	tn.v = verifier.New("",
		verifier.WithHTTPClient(h.client),
		verifier.WithPollConcurrency(8),
		verifier.WithRevocationHandler(func(agentID string, f verifier.Failure) {
			tn.revocations.Add(1)
		}),
	)
	n, err := NewNode(Config{
		NodeID:         id,
		Peers:          h.peers,
		Replicas:       h.replicas,
		HeartbeatEvery: h.hb,
		LeaseTimeout:   h.lease,
		Verifier:       tn.v,
		Store:          st,
		Transport:      h.tr,
		Clock:          h.clk,
		Steps:          tn.steps,
		Logf:           h.t.Logf,
	})
	if err != nil {
		h.t.Fatalf("NewNode(%s): %v", id, err)
	}
	tn.n = n
	h.tr.Register(id, n.Handle)
	h.nodes[id] = tn
	return tn
}

// kill simulates a process death: traffic drops both ways, the node
// stops ticking, in-memory state is lost. The store directory survives.
func (h *harness) kill(id string) {
	h.t.Helper()
	tn, ok := h.nodes[id]
	if !ok {
		h.t.Fatalf("kill(%s): not live", id)
	}
	h.faults.KillPeer(id)
	tn.n.Close()
	delete(h.nodes, id)
	_ = tn.st.Close() // release the journal; durability is per-mutation anyway
}

// revive restarts a previously killed node from its journal.
func (h *harness) revive(id string) *testNode {
	h.t.Helper()
	h.faults.Revive(id)
	return h.startNode(id)
}

// restart is a clean stop + boot (rolling-restart semantics).
func (h *harness) restart(id string) *testNode {
	h.kill(id)
	return h.revive(id)
}

// tick advances the clock one heartbeat and ticks every live node in ID
// order.
func (h *harness) tick() {
	h.clk.Advance(h.hb)
	ids := h.liveIDs()
	for _, id := range ids {
		h.nodes[id].n.Tick(h.ctx)
	}
}

func (h *harness) liveIDs() []string {
	ids := make([]string, 0, len(h.nodes))
	for id := range h.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// leader returns the single live leader, or nil.
func (h *harness) leader() *testNode {
	var lead *testNode
	for _, id := range h.liveIDs() {
		tn := h.nodes[id]
		if st := tn.n.Status(); st.Role == RoleLeader {
			if lead != nil {
				h.t.Fatalf("two leaders: %s and %s", lead.id, tn.id)
			}
			lead = tn
		}
	}
	return lead
}

// converge ticks until exactly one leader exists, its committed
// assignment covers exactly the live set, every live node agrees, and no
// handoff is pending.
func (h *harness) converge() *testNode {
	h.t.Helper()
	live := h.liveIDs()
	for i := 0; i < 120; i++ {
		h.tick()
		lead := h.leader()
		if lead == nil {
			continue
		}
		st := lead.n.Status()
		if st.PendingEpoch > st.Assign.Epoch || !sameMembers(st.Assign.Members, live) {
			continue
		}
		agreed := true
		for _, id := range live {
			ns := h.nodes[id].n.Status()
			if ns.Assign.Epoch != st.Assign.Epoch || ns.PendingEpoch > ns.Assign.Epoch {
				agreed = false
				break
			}
		}
		if agreed {
			return lead
		}
	}
	for _, id := range h.liveIDs() {
		h.t.Logf("node %s: %+v", id, h.nodes[id].n.Status())
	}
	h.t.Fatalf("cluster did not converge for live set %v", live)
	return nil
}

// addAgents enrolls n agents with the base policy on their ring owners
// and persists + replicates the rows.
func (h *harness) addAgents(n int) []string {
	h.t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ag-%04d-4a97-9ef7-75bd81c0f1ee", i)
		h.addAgent(id, h.pol)
		ids = append(ids, id)
	}
	return ids
}

func (h *harness) addAgent(id string, pol *policy.RuntimePolicy) {
	h.t.Helper()
	owner := h.ownerOf(id)
	if err := h.nodes[owner].v.AddAgentWithAK(id, testAgentURL, h.akPub, pol); err != nil {
		h.t.Fatalf("AddAgentWithAK(%s on %s): %v", id, owner, err)
	}
}

// ownerOf resolves the agent's owner from the committed assignment.
func (h *harness) ownerOf(id string) string {
	h.t.Helper()
	for _, nid := range h.liveIDs() {
		st := h.nodes[nid].n.Status()
		if st.Assign.Epoch > 0 {
			return NewRing(st.Assign.Members, 0).Owner(id)
		}
	}
	h.t.Fatalf("no committed assignment to resolve owner of %s", id)
	return ""
}

// sweepAll runs one attestation sweep on every live node and returns the
// combined stats, then ticks once so the results replicate.
func (h *harness) sweepAll() verifier.PollStats {
	var sum verifier.PollStats
	for _, id := range h.liveIDs() {
		st := h.nodes[id].n.Sweep(h.ctx)
		sum.Attested += st.Attested
		sum.Failed += st.Failed
		sum.Degraded += st.Degraded
		sum.Halted += st.Halted
		sum.SessionRounds += st.SessionRounds
		sum.FullQuoteRounds += st.FullQuoteRounds
		sum.ForcedUpgrades += st.ForcedUpgrades
	}
	h.tick()
	return sum
}

// assertPartitioned checks every enrolled agent is owned by exactly one
// live node and returns the owner map.
func (h *harness) assertPartitioned(agents []string) map[string]string {
	h.t.Helper()
	owner := map[string]string{}
	for _, nid := range h.liveIDs() {
		for _, ag := range h.nodes[nid].v.AgentIDs() {
			if prev, dup := owner[ag]; dup {
				h.t.Fatalf("agent %s owned by both %s and %s", ag, prev, nid)
			}
			owner[ag] = nid
		}
	}
	for _, ag := range agents {
		if _, ok := owner[ag]; !ok {
			h.t.Fatalf("agent %s owned by no live node", ag)
		}
	}
	return owner
}

func TestClusterBootstrapPartitionsFleet(t *testing.T) {
	h := newHarness(t, 1, "v1", "v2", "v3")
	lead := h.converge()
	if got := lead.n.Status().Assign.Members; len(got) != 3 {
		t.Fatalf("assignment members = %v", got)
	}
	agents := h.addAgents(60)
	owners := h.assertPartitioned(agents)
	perNode := map[string]int{}
	for _, o := range owners {
		perNode[o]++
	}
	for _, id := range h.peers {
		if perNode[id] == 0 {
			t.Fatalf("node %s owns no agents: %v", id, perNode)
		}
	}
	if st := h.sweepAll(); st.Attested != 60 || st.Failed != 0 {
		t.Fatalf("cluster sweep = %+v, want 60 attested", st)
	}
	// The status document reports a live cluster.
	st := lead.n.Status()
	for _, p := range st.Peers {
		if !p.Alive {
			t.Fatalf("leader sees peer %s dead: %+v", p.ID, st)
		}
	}
}

func TestClusterFailoverPreservesAttestationState(t *testing.T) {
	h := newHarness(t, 1, "v1", "v2", "v3")
	lead := h.converge()
	agents := h.addAgents(30)
	h.sweepAll()
	h.sweepAll() // second sweep: frontier past the initial log replay
	h.tick()     // drain replication

	// Kill a non-leader so the coordinator survives to drive the handoff.
	victim := ""
	for _, id := range h.peers {
		if id != lead.id {
			victim = id
			break
		}
	}
	moved := h.nodes[victim].v.AgentIDs()
	if len(moved) == 0 {
		t.Fatalf("victim %s owns no agents", victim)
	}
	before, err := h.nodes[victim].v.ExportAgents(moved)
	if err != nil {
		t.Fatal(err)
	}
	preState := map[string]verifier.AgentState{}
	for _, st := range before {
		preState[st.AgentID] = st
	}
	h.kill(victim)
	h.converge()
	h.assertPartitioned(agents)

	// Survivors resume the dead shard from the replicated journal: the
	// frontier and attestation counters continue, they do not reset.
	for _, ag := range moved {
		newOwner := h.ownerOf(ag)
		rows, err := h.nodes[newOwner].v.ExportAgents([]string{ag})
		if err != nil || len(rows) != 1 {
			t.Fatalf("export %s from %s: %v (%d rows)", ag, newOwner, err, len(rows))
		}
		pre := preState[ag]
		if rows[0].Attestations != pre.Attestations || rows[0].NextOffset != pre.NextOffset {
			t.Fatalf("agent %s resumed at attestations=%d offset=%d, want %d/%d from replica",
				ag, rows[0].Attestations, rows[0].NextOffset, pre.Attestations, pre.NextOffset)
		}
	}
	if st := h.sweepAll(); st.Attested != 30 || st.Failed != 0 {
		t.Fatalf("post-failover sweep = %+v, want 30 attested / 0 failed", st)
	}
}

func TestClusterLeaderFailover(t *testing.T) {
	h := newHarness(t, 1, "v1", "v2", "v3")
	lead := h.converge()
	agents := h.addAgents(30)
	h.sweepAll()
	h.tick()
	h.kill(lead.id)
	newLead := h.converge()
	if newLead.id == lead.id {
		t.Fatalf("dead node still leader")
	}
	h.assertPartitioned(agents)
	if st := h.sweepAll(); st.Attested != 30 || st.Failed != 0 {
		t.Fatalf("sweep after leader failover = %+v", st)
	}
}

func TestClusterRejoinGetsShardBack(t *testing.T) {
	h := newHarness(t, 1, "v1", "v2", "v3")
	lead := h.converge()
	agents := h.addAgents(30)
	h.sweepAll()
	h.tick()
	victim := ""
	for _, id := range h.peers {
		if id != lead.id {
			victim = id
			break
		}
	}
	h.kill(victim)
	h.converge()
	h.sweepAll()

	h.revive(victim)
	h.converge()
	owners := h.assertPartitioned(agents)
	back := 0
	for _, o := range owners {
		if o == victim {
			back++
		}
	}
	if back == 0 {
		t.Fatalf("rejoined node %s got no shard back: %v", victim, owners)
	}
	if st := h.sweepAll(); st.Attested != 30 || st.Failed != 0 {
		t.Fatalf("sweep after rejoin = %+v", st)
	}
}

// TestClusterFleetProxyGloballyConsistentGeneration runs a cross-shard
// policy-generation install through the coordinator's FleetProxy and
// GenerationSource: every agent on every shard ends at the same
// coordinator-issued generation.
func TestClusterFleetProxyGloballyConsistentGeneration(t *testing.T) {
	h := newHarness(t, 1, "v1", "v2", "v3")
	lead := h.converge()
	agents := h.addAgents(24)
	h.sweepAll()

	fleet := lead.n.Fleet(h.ctx)
	if got := fleet.AgentIDs(); len(got) != 24 {
		t.Fatalf("fleet AgentIDs = %d, want 24 across all shards", len(got))
	}
	gen, err := lead.n.NextGeneration()
	if err != nil {
		t.Fatal(err)
	}
	for _, ag := range agents {
		if err := fleet.InstallPolicyGeneration(ag, gen, h.pol); err != nil {
			t.Fatalf("InstallPolicyGeneration(%s): %v", ag, err)
		}
	}
	for _, ag := range agents {
		st, err := fleet.Status(ag)
		if err != nil {
			t.Fatalf("Status(%s): %v", ag, err)
		}
		if st.PolicyGeneration != gen {
			t.Fatalf("agent %s at generation %d, want %d on every shard", ag, st.PolicyGeneration, gen)
		}
	}
	// The watermark survives leader failover: the next coordinator
	// allocates above it.
	h.kill(lead.id)
	newLead := h.converge()
	next, err := newLead.n.NextGeneration()
	if err != nil {
		t.Fatal(err)
	}
	if next <= gen {
		t.Fatalf("failover coordinator issued generation %d, already used %d", next, gen)
	}
}

// TestClusterHTTPTransport elects a two-node cluster over real HTTP
// RPC endpoints.
func TestClusterHTTPTransport(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	peers := []string{"h1", "h2"}
	addrs := map[string]string{}
	tr := &HTTPTransport{Addrs: addrs}
	clk := simclock.NewSimulated(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
	var nodes []*Node
	for i, id := range peers {
		st, err := store.Open(dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		n, err := NewNode(Config{
			NodeID:         id,
			Peers:          peers,
			Verifier:       verifier.New(""),
			Store:          st,
			Transport:      tr,
			Clock:          clk,
			HeartbeatEvery: time.Second,
			LeaseTimeout:   4 * time.Second,
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(RPCHandler(n.Handle))
		defer srv.Close()
		addrs[id] = srv.URL
		nodes = append(nodes, n)
	}
	ctx := context.Background()
	for i := 0; i < 60; i++ {
		clk.Advance(time.Second)
		for _, n := range nodes {
			n.Tick(ctx)
		}
		var lead *Node
		for _, n := range nodes {
			if st := n.Status(); st.Role == RoleLeader && st.Assign.Epoch > 0 && len(st.Assign.Members) == 2 {
				lead = n
			}
		}
		if lead != nil {
			return
		}
	}
	t.Fatalf("no leader with a committed 2-node assignment over HTTP transport")
}
