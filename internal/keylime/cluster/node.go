package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/keylime/dsse"
	"repro/internal/keylime/faultinject"
	"repro/internal/keylime/store"
	"repro/internal/keylime/verifier"
	"repro/internal/simclock"
)

// Store keys the cluster layer journals through the node's durable store.
// Agent rows ("a/<id>") share the store with them, so one fsync'd journal
// orders cluster metadata against attestation state.
const (
	keyTerm    = "cl/term"    // JSON termRecord
	keyAssign  = "cl/assign"  // JSON Assignment (committed)
	keyPending = "cl/pending" // JSON Assignment (coordinator's in-flight handoff)
	keyGen     = "cl/gen"     // decimal policy-generation watermark

	agentPrefix   = "a/"  // agent rows: a/<agentID> -> AgentState JSON
	replicaPrefix = "r/"  // replicated rows: r/<src>/a/<agentID>
	replSeqPrefix = "rs/" // rs/<src> -> JSON replMark
)

type termRecord struct {
	Term     uint64 `json:"term"`
	VotedFor string `json:"voted_for,omitempty"`
}

// replMark is the durable replication cursor a standby keeps per source:
// the source's store epoch and journal seq it has applied through.
type replMark struct {
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
}

// Role is a node's election role.
type Role string

const (
	RoleFollower  Role = "follower"
	RoleCandidate Role = "candidate"
	RoleLeader    Role = "leader"
)

// Config configures a cluster node.
type Config struct {
	// NodeID is this node's identity; must appear in Peers.
	NodeID string
	// Peers is the static cluster membership, including NodeID. Quorum is
	// a majority of Peers regardless of liveness.
	Peers []string
	// Replicas is how many ring successors replicate each node's journal
	// (default 1).
	Replicas int
	// VNodes is the virtual-node count per member (default 64).
	VNodes int
	// HeartbeatEvery is the leader heartbeat / tick cadence (default 1s).
	HeartbeatEvery time.Duration
	// LeaseTimeout is how long without contact a peer counts as dead and
	// a follower waits before standing for election (default 4 heartbeats).
	LeaseTimeout time.Duration

	Verifier  *verifier.Verifier
	Store     *store.Store
	Transport Transport
	Clock     simclock.Clock
	// Keyring, when set, seals outbound replication frames and requires
	// a valid seal on inbound ones (peers trust each other's keys via
	// shared keyring state or AddVerifier). nil runs unsigned.
	Keyring *dsse.Keyring
	// Steps receives a checkpoint at every handoff step boundary; the
	// crash-sweep harness arms it to kill the coordinator mid-handoff.
	Steps *faultinject.StepHook
	Logf  func(format string, args ...any)
}

// Node is one verifier process participating in the cluster: it votes,
// heartbeats, owns a ring range of agents, streams its journal to
// standbys, and (as coordinator) drives handoffs.
type Node struct {
	cfg   Config
	clock simclock.Clock
	logf  func(string, ...any)

	mu        sync.Mutex
	closed    bool
	role      Role
	term      uint64
	votedFor  string
	leader    string
	lastHeard time.Time
	assign    Assignment
	ringC     *Ring       // ring over assign.Members (nil when epoch 0)
	pendingFr *Assignment // freeze received: proposed assignment
	ringP     *Ring       // ring over pendingFr.Members
	frozen    bool
	pending   *Assignment // coordinator: journaled in-flight handoff target
	peerAck   map[string]time.Time
	handoff   bool // coordinator: handoff in flight this process
	repl      map[string]*replCursor
	// sealRejects counts inbound replication frames rejected for seal
	// verification failures — each one is tampered or misattributed
	// evidence that never touched the store.
	sealRejects int

	genMu sync.Mutex // serializes NextGeneration against heartbeat watermarks
}

type replCursor struct {
	acked uint64
	known bool // we have confirmed the standby's cursor matches ours
}

// NewNode restores cluster metadata and agent rows from the store and
// returns a ready node. It does not start any goroutines; drive it with
// Tick (tests) or Run (production).
func NewNode(cfg Config) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: NodeID required")
	}
	inPeers := false
	for _, p := range cfg.Peers {
		if p == cfg.NodeID {
			inPeers = true
		}
	}
	if !inPeers {
		return nil, fmt.Errorf("cluster: NodeID %q not in Peers %v", cfg.NodeID, cfg.Peers)
	}
	if cfg.Verifier == nil || cfg.Store == nil || cfg.Transport == nil {
		return nil, fmt.Errorf("cluster: Verifier, Store and Transport are required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = defaultVNodes
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 4 * cfg.HeartbeatEvery
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	n := &Node{
		cfg:     cfg,
		clock:   cfg.Clock,
		logf:    cfg.Logf,
		role:    RoleFollower,
		peerAck: make(map[string]time.Time),
		repl:    make(map[string]*replCursor),
	}
	if n.logf == nil {
		n.logf = func(string, ...any) {}
	}
	if b, ok := cfg.Store.Get(keyTerm); ok {
		var tr termRecord
		if err := json.Unmarshal(b, &tr); err == nil {
			n.term, n.votedFor = tr.Term, tr.VotedFor
		}
	}
	if b, ok := cfg.Store.Get(keyAssign); ok {
		var a Assignment
		if err := json.Unmarshal(b, &a); err == nil {
			n.assign = a
			n.ringC = a.Ring(cfg.VNodes)
		}
	}
	if b, ok := cfg.Store.Get(keyPending); ok {
		var a Assignment
		if err := json.Unmarshal(b, &a); err == nil {
			n.pending = &a
		}
	}
	// Restore this node's agent rows (lenient: a corrupt row skips that
	// agent, it does not take the shard down).
	var rows []verifier.AgentState
	for k, v := range cfg.Store.All() {
		if !strings.HasPrefix(k, agentPrefix) {
			continue
		}
		var st verifier.AgentState
		if err := json.Unmarshal(v, &st); err != nil {
			n.logf("cluster %s: skipping undecodable agent row %s: %v", cfg.NodeID, k, err)
			continue
		}
		rows = append(rows, st)
	}
	if len(rows) > 0 {
		for _, re := range cfg.Verifier.ImportAgents(rows, true) {
			n.logf("cluster %s: restore skipped row: %v", cfg.NodeID, re.Error())
		}
	}
	n.refreshOwnershipLocked()
	n.lastHeard = n.clock.Now() // grace period before first election
	return n, nil
}

// ID returns the node's cluster identity.
func (n *Node) ID() string { return n.cfg.NodeID }

// Close stops the node: ticks and inbound RPCs become no-ops. The store
// and verifier are the caller's to close.
func (n *Node) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	n.role = RoleFollower
}

func majority(n int) int { return n/2 + 1 }

// electionJitter spreads candidate timeouts deterministically per node so
// simultaneous timeouts don't split votes forever.
func (n *Node) electionJitter() time.Duration {
	h := fnv.New64a()
	_, _ = h.Write([]byte(n.cfg.NodeID))
	frac := float64(h.Sum64()%1024) / 1024
	return time.Duration(frac * float64(n.cfg.LeaseTimeout))
}

// refreshOwnershipLocked installs the verifier ownership predicate for
// the current (committed, proposed) assignment pair. During a handoff the
// predicate is the intersection: agents in motion get no verdicts from
// the losing side until the gaining side commits.
func (n *Node) refreshOwnershipLocked() {
	nid := n.cfg.NodeID
	ringC, ringP := n.ringC, n.ringP
	epoch := n.assign.Epoch
	if epoch == 0 && ringP == nil {
		// Pre-cluster: the node owns whatever it holds (single-node and
		// bootstrap behaviour; the first assignment partitions it).
		n.cfg.Verifier.SetOwnership(nil)
		return
	}
	n.cfg.Verifier.SetOwnership(func(agentID string) bool {
		if epoch != 0 && ringC.Owner(agentID) != nid {
			return false
		}
		if ringP != nil && ringP.Owner(agentID) != nid {
			return false
		}
		return true
	})
}

func (n *Node) persistTermLocked() {
	b, _ := json.Marshal(termRecord{Term: n.term, VotedFor: n.votedFor})
	if err := n.cfg.Store.Put(keyTerm, b); err != nil {
		n.logf("cluster %s: persist term: %v", n.cfg.NodeID, err)
	}
}

// persistAgents flushes dirty verifier rows into the journaled store as
// one batched append — one fsync per sweep, not one per dirty agent;
// replication streams them to standbys on the next tick.
func (n *Node) persistAgents() error {
	changed, removed, err := n.cfg.Verifier.ExportDirty()
	if err != nil {
		return err
	}
	batch := make([]store.KV, 0, len(changed)+len(removed))
	for _, st := range changed {
		b, err := json.Marshal(st)
		if err != nil {
			return err
		}
		batch = append(batch, store.KV{Key: agentPrefix + st.AgentID, Value: b})
	}
	for _, id := range removed {
		batch = append(batch, store.KV{Key: agentPrefix + id, Delete: true})
	}
	return n.cfg.Store.PutBatch(batch)
}

// Sweep runs one ownership-scoped attestation round and persists the
// results. Call it on the verifier's poll cadence.
func (n *Node) Sweep(ctx context.Context) verifier.PollStats {
	stats := n.cfg.Verifier.PollAll(ctx)
	if err := n.persistAgents(); err != nil {
		n.logf("cluster %s: persist after sweep: %v", n.cfg.NodeID, err)
	}
	return stats
}

// Tick advances the node's cluster duties once: election timeouts,
// leader heartbeats, liveness, handoff driving, and journal replication.
// Production calls it every HeartbeatEvery (see Run); tests call it
// directly on a simulated clock.
func (n *Node) Tick(ctx context.Context) {
	now := n.clock.Now()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	role := n.role
	deadline := n.lastHeard.Add(n.cfg.LeaseTimeout + n.electionJitter())
	n.mu.Unlock()

	switch role {
	case RoleLeader:
		n.leaderTick(ctx, now)
	default:
		if !now.Before(deadline) {
			n.startElection(ctx, now)
		}
	}
	n.replicateTick(ctx)
}

// Run ticks the node on its heartbeat cadence until ctx is cancelled.
func (n *Node) Run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-n.clock.After(n.cfg.HeartbeatEvery):
			n.Tick(ctx)
		}
	}
}

func (n *Node) startElection(ctx context.Context, now time.Time) {
	n.mu.Lock()
	n.role = RoleCandidate
	n.term++
	n.votedFor = n.cfg.NodeID
	n.leader = ""
	n.lastHeard = now // restart the timeout for the next attempt
	n.persistTermLocked()
	term := n.term
	assignEpoch := n.assign.Epoch
	n.mu.Unlock()
	n.logf("cluster %s: standing for election, term %d", n.cfg.NodeID, term)

	var (
		wg      sync.WaitGroup
		voteMu  sync.Mutex
		granted = 1 // self
		maxTerm = term
		maxGen  uint64
	)
	for _, p := range n.cfg.Peers {
		if p == n.cfg.NodeID {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			var resp VoteResp
			err := call(ctx, n.cfg.Transport, peer, n.cfg.NodeID, MsgVote,
				VoteReq{Term: term, Candidate: n.cfg.NodeID, AssignEpoch: assignEpoch}, &resp)
			if err != nil {
				return
			}
			voteMu.Lock()
			defer voteMu.Unlock()
			if resp.Term > maxTerm {
				maxTerm = resp.Term
			}
			if resp.Granted {
				granted++
			}
			if resp.Gen > maxGen {
				maxGen = resp.Gen
			}
		}(p)
	}
	wg.Wait()
	// Adopt the electorate's generation watermark before taking office:
	// with majority-durable allocation, the max over any majority covers
	// every generation ever issued.
	n.observeGenWatermark(maxGen)

	n.mu.Lock()
	if n.closed || n.role != RoleCandidate || n.term != term {
		n.mu.Unlock()
		return
	}
	if maxTerm > term {
		n.term = maxTerm
		n.votedFor = ""
		n.role = RoleFollower
		n.persistTermLocked()
		n.mu.Unlock()
		return
	}
	if granted < majority(len(n.cfg.Peers)) {
		n.mu.Unlock()
		return
	}
	n.role = RoleLeader
	n.leader = n.cfg.NodeID
	for _, p := range n.cfg.Peers {
		n.peerAck[p] = now // grace: a fresh leader gives every peer one lease
	}
	n.mu.Unlock()
	n.logf("cluster %s: elected coordinator, term %d", n.cfg.NodeID, term)
	n.leaderTick(ctx, now)
}

func (n *Node) leaderTick(ctx context.Context, now time.Time) {
	n.mu.Lock()
	if n.closed || n.role != RoleLeader {
		n.mu.Unlock()
		return
	}
	term := n.term
	assign := n.assign
	n.mu.Unlock()
	gen := n.genWatermark()

	var (
		wg      sync.WaitGroup
		ackMu   sync.Mutex
		maxTerm = term
	)
	for _, p := range n.cfg.Peers {
		if p == n.cfg.NodeID {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			var resp HeartbeatResp
			err := call(ctx, n.cfg.Transport, peer, n.cfg.NodeID, MsgHeartbeat,
				HeartbeatReq{Term: term, Leader: n.cfg.NodeID, Assign: assign, Gen: gen}, &resp)
			if err != nil {
				return
			}
			ackMu.Lock()
			defer ackMu.Unlock()
			if resp.Term > maxTerm {
				maxTerm = resp.Term
			}
			if resp.Term <= term {
				n.mu.Lock()
				n.peerAck[peer] = now
				n.mu.Unlock()
			}
		}(p)
	}
	wg.Wait()

	n.mu.Lock()
	if n.closed || n.role != RoleLeader || n.term != term {
		n.mu.Unlock()
		return
	}
	if maxTerm > term {
		n.term = maxTerm
		n.votedFor = ""
		n.role = RoleFollower
		n.persistTermLocked()
		n.mu.Unlock()
		n.logf("cluster %s: deposed by higher term %d", n.cfg.NodeID, maxTerm)
		return
	}
	live := []string{n.cfg.NodeID}
	for _, p := range n.cfg.Peers {
		if p == n.cfg.NodeID {
			continue
		}
		if ack, ok := n.peerAck[p]; ok && now.Sub(ack) <= n.cfg.LeaseTimeout {
			live = append(live, p)
		}
	}
	sort.Strings(live)
	if len(live) < majority(len(n.cfg.Peers)) {
		// Lease lost: a minority-side leader must stop coordinating so the
		// majority side can elect and fail our shards over.
		n.role = RoleFollower
		n.leader = ""
		n.lastHeard = now
		n.mu.Unlock()
		n.logf("cluster %s: quorum lost (%d/%d live), stepping down", n.cfg.NodeID, len(live), len(n.cfg.Peers))
		return
	}
	pending := n.pending
	needHandoff := n.assign.Epoch == 0 || !sameMembers(live, n.assign.Members)
	target := Assignment{Epoch: n.assign.Epoch + 1, Members: live}
	busy := n.handoff
	n.mu.Unlock()

	if busy {
		return
	}
	if pending != nil {
		// A crashed (or interrupted) handoff is re-driven to completion
		// before any new membership change is considered: every step is
		// idempotent under its epoch.
		if err := n.runHandoff(ctx, *pending, now); err != nil {
			n.logf("cluster %s: handoff re-drive (epoch %d): %v", n.cfg.NodeID, pending.Epoch, err)
		}
		return
	}
	if needHandoff {
		if err := n.runHandoff(ctx, target, now); err != nil {
			n.logf("cluster %s: handoff to epoch %d %v: %v", n.cfg.NodeID, target.Epoch, target.Members, err)
		}
	}
}

func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// genWatermark reads the durable policy-generation counter.
func (n *Node) genWatermark() uint64 {
	n.genMu.Lock()
	defer n.genMu.Unlock()
	return n.genWatermarkLocked()
}

func (n *Node) genWatermarkLocked() uint64 {
	if b, ok := n.cfg.Store.Get(keyGen); ok {
		if g, err := strconv.ParseUint(string(b), 10, 64); err == nil {
			return g
		}
	}
	return 0
}

// NextGeneration implements rollout.GenerationSource: the coordinator
// allocates cluster-wide policy generations from a journaled counter and
// synchronously replicates the watermark to a majority before returning.
// Any successor coordinator is elected by a majority and learns the max
// watermark from its voters (see VoteResp.Gen), so an issued generation
// is never issued twice — even if this coordinator dies the instant
// after returning.
func (n *Node) NextGeneration() (uint64, error) {
	n.genMu.Lock()
	next := n.genWatermarkLocked() + 1
	if err := n.cfg.Store.Put(keyGen, []byte(strconv.FormatUint(next, 10))); err != nil {
		n.genMu.Unlock()
		return 0, fmt.Errorf("cluster: journal generation %d: %w", next, err)
	}
	n.genMu.Unlock()

	if len(n.cfg.Peers) == 1 {
		return next, nil
	}
	acked := 1 // self
	var (
		wg    sync.WaitGroup
		ackMu sync.Mutex
	)
	ctx := context.Background()
	for _, p := range n.cfg.Peers {
		if p == n.cfg.NodeID {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			if err := call(ctx, n.cfg.Transport, peer, n.cfg.NodeID, MsgGenSync,
				GenSyncReq{Gen: next}, nil); err != nil {
				return
			}
			ackMu.Lock()
			acked++
			ackMu.Unlock()
		}(p)
	}
	wg.Wait()
	if acked < majority(len(n.cfg.Peers)) {
		return 0, fmt.Errorf("cluster: generation %d not durable on a majority (%d/%d acks)", next, acked, len(n.cfg.Peers))
	}
	return next, nil
}

// observeGenWatermark raises the local counter to a leader's watermark.
func (n *Node) observeGenWatermark(g uint64) {
	if g == 0 {
		return
	}
	n.genMu.Lock()
	defer n.genMu.Unlock()
	if g > n.genWatermarkLocked() {
		if err := n.cfg.Store.Put(keyGen, []byte(strconv.FormatUint(g, 10))); err != nil {
			n.logf("cluster %s: persist gen watermark: %v", n.cfg.NodeID, err)
		}
	}
}
