package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/keylime/faultinject"
	"repro/internal/keylime/store"
	"repro/internal/keylime/verifier"
)

// MsgType tags a cluster RPC.
type MsgType string

const (
	MsgVote         MsgType = "vote"
	MsgHeartbeat    MsgType = "heartbeat"
	MsgReplicate    MsgType = "replicate"
	MsgFetchReplica MsgType = "fetch-replica"
	MsgFreeze       MsgType = "freeze"
	MsgFlush        MsgType = "flush"
	MsgInstall      MsgType = "install"
	MsgCommit       MsgType = "commit"
	MsgResume       MsgType = "resume"
	MsgFleet        MsgType = "fleet"
	MsgGenSync      MsgType = "gen-sync"
	MsgStatus       MsgType = "status"
)

// Request is the cluster RPC envelope. Body is the JSON encoding of the
// per-type payload struct (VoteReq, HeartbeatReq, ...).
type Request struct {
	Type MsgType         `json:"type"`
	From string          `json:"from"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Reply is the RPC response envelope.
type Reply struct {
	OK   bool            `json:"ok"`
	Err  string          `json:"err,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Assignment is a committed partition of the fleet: the ring is built
// from Members, and Epoch totally orders assignments so stale handoff
// traffic is rejected.
type Assignment struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
}

// Ring builds the consistent-hash ring for this assignment.
func (a Assignment) Ring(vnodes int) *Ring { return NewRing(a.Members, vnodes) }

// Per-type payloads.
type (
	// VoteReq asks for a leadership vote in Term.
	VoteReq struct {
		Term      uint64 `json:"term"`
		Candidate string `json:"candidate"`
		// AssignEpoch is the candidate's committed assignment epoch.
		// Voters refuse candidates behind their own epoch (the cluster
		// analogue of Raft's log up-to-dateness check), so a healed
		// minority node with an inflated term cannot resurrect a stale
		// partition map.
		AssignEpoch uint64 `json:"assign_epoch"`
	}
	VoteResp struct {
		Term    uint64 `json:"term"`
		Granted bool   `json:"granted"`
		// Gen is the voter's policy-generation watermark. A majority
		// elects the candidate AND tells it the highest generation any
		// previous coordinator persisted to a majority, so the sequence
		// never restarts below an issued value.
		Gen uint64 `json:"gen,omitempty"`
	}

	// HeartbeatReq asserts leadership, renews the lease, and carries the
	// committed assignment so rejoining nodes catch up.
	HeartbeatReq struct {
		Term   uint64     `json:"term"`
		Leader string     `json:"leader"`
		Assign Assignment `json:"assign"`
		// Gen is the leader's policy-generation watermark; followers
		// persist the max so a failover coordinator never re-issues a
		// generation an earlier coordinator already handed out.
		Gen uint64 `json:"gen,omitempty"`
	}
	HeartbeatResp struct {
		Term uint64 `json:"term"`
	}

	// ReplicateReq streams journal segments (or a snapshot) from the
	// sender's store to a standby. Segments carry only "a/" agent rows;
	// UpTo is the sender's raw journal seq after the batch, so the ack
	// cursor advances past filtered (non-agent) mutations too.
	ReplicateReq struct {
		SrcEpoch uint64            `json:"src_epoch"`
		FromSeq  uint64            `json:"from_seq"`
		UpTo     uint64            `json:"up_to"`
		Segments []store.Segment   `json:"segments,omitempty"`
		Snapshot map[string][]byte `json:"snapshot,omitempty"`
		IsSnap   bool              `json:"is_snap,omitempty"`
		// Seal is a DSSE envelope over the frame's digest (source, epoch,
		// seq bounds, SHA-256 of the payload); present when the sender has
		// a keyring. A standby with a keyring rejects unsealed or
		// mis-sealed frames before they touch its store.
		Seal json.RawMessage `json:"seal,omitempty"`
	}
	ReplicateResp struct {
		AckSeq       uint64 `json:"ack_seq"`
		NeedSnapshot bool   `json:"need_snapshot,omitempty"`
	}

	// FetchReplicaReq asks a peer for its replicated copy of Src's agent
	// rows, used to fail over a dead member's shard.
	FetchReplicaReq struct {
		Src string `json:"src"`
	}
	FetchReplicaResp struct {
		Epoch uint64                `json:"epoch"` // Src's store epoch at last ack
		Seq   uint64                `json:"seq"`   // Src's journal seq at last ack
		Rows  []verifier.AgentState `json:"rows,omitempty"`
	}

	// FreezeReq starts a handoff: the receiver restricts ownership to the
	// intersection of the committed and proposed assignments so agents in
	// motion get no verdicts from the losing side.
	FreezeReq struct {
		Term   uint64     `json:"term"`
		Assign Assignment `json:"assign"` // proposed
	}

	// FlushReq makes the receiver persist its dirty agent rows and export
	// the rows it loses under the proposed assignment.
	FlushReq struct {
		Term   uint64     `json:"term"`
		Assign Assignment `json:"assign"`
	}
	FlushResp struct {
		Rows []verifier.AgentState `json:"rows,omitempty"`
	}

	// InstallReq delivers rows the receiver gains under the proposed
	// assignment. Import is lenient and replace=true for idempotent
	// re-drives after a coordinator crash.
	InstallReq struct {
		Term  uint64                `json:"term"`
		Epoch uint64                `json:"epoch"`
		Rows  []verifier.AgentState `json:"rows,omitempty"`
	}

	// CommitReq makes the proposed assignment durable on the receiver:
	// ownership flips to the new ring and rows now owned elsewhere are
	// dropped (their copies were installed on the gaining side).
	CommitReq struct {
		Term   uint64     `json:"term"`
		Assign Assignment `json:"assign"`
	}

	// ResumeReq lifts the freeze after commit.
	ResumeReq struct {
		Term  uint64 `json:"term"`
		Epoch uint64 `json:"epoch"`
	}

	// FleetReq proxies a rollout or reconcile fleet operation to the
	// shard owner.
	FleetReq struct {
		Op      string          `json:"op"` // ids|status|set-shadow|clear-shadow|shadow-status|install-gen|active-policy|resume|add|add-ak|remove|update-policy
		AgentID string          `json:"agent_id,omitempty"`
		URL     string          `json:"url,omitempty"`
		AKPub   []byte          `json:"ak_pub,omitempty"`
		Gen     uint64          `json:"gen,omitempty"`
		Policy  json.RawMessage `json:"policy,omitempty"`
	}
	FleetResp struct {
		IDs    []string        `json:"ids,omitempty"`
		Gen    uint64          `json:"gen,omitempty"`
		Status json.RawMessage `json:"status,omitempty"`
		Policy json.RawMessage `json:"policy,omitempty"`
		// Code carries well-known verifier sentinel errors (duplicate,
		// unknown-agent, inactive) across the RPC so the caller can keep
		// errors.Is working — a plain Reply.Err string would lose the
		// identity the reconciler's idempotency contract depends on.
		Code string `json:"code,omitempty"`
	}

	// GenSyncReq replicates the coordinator's policy-generation watermark
	// before NextGeneration returns, so an allocation is durable on a
	// majority — not just on the coordinator that may die next.
	GenSyncReq struct {
		Gen uint64 `json:"gen"`
	}
)

// Handler processes one inbound cluster RPC.
type Handler func(req Request) Reply

// Transport delivers a Request to a peer and returns its Reply. A
// transport error (peer dead, partitioned, no route) is returned as a Go
// error; an application-level failure comes back as Reply{OK: false}.
type Transport interface {
	Call(ctx context.Context, to string, req Request) (Reply, error)
}

func okReply(body any) Reply {
	if body == nil {
		return Reply{OK: true}
	}
	b, err := json.Marshal(body)
	if err != nil {
		return Reply{Err: fmt.Sprintf("marshal reply: %v", err)}
	}
	return Reply{OK: true, Body: b}
}

func errReply(format string, args ...any) Reply {
	return Reply{Err: fmt.Sprintf(format, args...)}
}

// call marshals body, performs the RPC, and unmarshals the reply body
// into out (which may be nil for ack-only calls).
func call(ctx context.Context, t Transport, to, from string, typ MsgType, body, out any) error {
	var raw json.RawMessage
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("cluster: marshal %s: %w", typ, err)
		}
		raw = b
	}
	rep, err := t.Call(ctx, to, Request{Type: typ, From: from, Body: raw})
	if err != nil {
		return err
	}
	if !rep.OK {
		return fmt.Errorf("cluster: %s to %s: %s", typ, to, rep.Err)
	}
	if out != nil && len(rep.Body) > 0 {
		if err := json.Unmarshal(rep.Body, out); err != nil {
			return fmt.Errorf("cluster: decode %s reply: %w", typ, err)
		}
	}
	return nil
}

func decodeBody(req Request, out any) error {
	if len(req.Body) == 0 {
		return fmt.Errorf("cluster: %s without body", req.Type)
	}
	return json.Unmarshal(req.Body, out)
}

// MemTransport is an in-process transport for tests and the chaos
// harness: it invokes the target node's handler synchronously, consulting
// a faultinject.PeerFaults plan so kills and partitions drop traffic in
// both directions.
type MemTransport struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	faults   *faultinject.PeerFaults
}

// NewMemTransport builds a transport; faults may be nil (never drops).
func NewMemTransport(faults *faultinject.PeerFaults) *MemTransport {
	return &MemTransport{handlers: make(map[string]Handler), faults: faults}
}

// Register installs the handler for a node ID, replacing any previous one.
func (t *MemTransport) Register(id string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[id] = h
}

// Unregister removes a node (simulates a process that exited cleanly).
func (t *MemTransport) Unregister(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.handlers, id)
}

func (t *MemTransport) Call(ctx context.Context, to string, req Request) (Reply, error) {
	if err := ctx.Err(); err != nil {
		return Reply{}, err
	}
	if !t.faults.Allow(req.From, to) {
		return Reply{}, fmt.Errorf("cluster: peer %s unreachable from %s", to, req.From)
	}
	t.mu.RLock()
	h := t.handlers[to]
	t.mu.RUnlock()
	if h == nil {
		return Reply{}, fmt.Errorf("cluster: no route to peer %s", to)
	}
	rep := h(req)
	// The reply crosses the same links; a partition formed mid-call drops it.
	if !t.faults.Allow(to, req.From) {
		return Reply{}, fmt.Errorf("cluster: reply from %s lost", to)
	}
	return rep, nil
}

// HTTPTransport routes cluster RPCs over HTTP POST to each peer's
// /v2/cluster/rpc endpoint.
type HTTPTransport struct {
	// Addrs maps node ID to base URL (e.g. "http://10.0.0.2:8881").
	Addrs  map[string]string
	Client *http.Client
}

// RPCPath is the HTTP endpoint cluster peers exchange RPCs on.
const RPCPath = "/v2/cluster/rpc"

func (t *HTTPTransport) Call(ctx context.Context, to string, req Request) (Reply, error) {
	base, ok := t.Addrs[to]
	if !ok {
		return Reply{}, fmt.Errorf("cluster: no address for peer %s", to)
	}
	b, err := json.Marshal(req)
	if err != nil {
		return Reply{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+RPCPath, bytes.NewReader(b))
	if err != nil {
		return Reply{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	hres, err := client.Do(hreq)
	if err != nil {
		return Reply{}, err
	}
	defer hres.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hres.Body, 64<<20))
	if err != nil {
		return Reply{}, err
	}
	if hres.StatusCode != http.StatusOK {
		return Reply{}, fmt.Errorf("cluster: peer %s: HTTP %d", to, hres.StatusCode)
	}
	var rep Reply
	if err := json.Unmarshal(body, &rep); err != nil {
		return Reply{}, fmt.Errorf("cluster: peer %s: bad reply: %w", to, err)
	}
	return rep, nil
}

// RPCHandler adapts a node Handler to the HTTP endpoint.
func RPCHandler(h Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Request
		if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h(req))
	})
}
