package cluster

// Inbound RPC handlers. Every handler validates the sender's term and
// the assignment epoch before acting, so messages from a deposed
// coordinator or a completed handoff are rejected rather than replayed.

import (
	"encoding/json"
	"sort"
	"strings"

	"repro/internal/keylime/store"
	"repro/internal/keylime/verifier"
)

// Handle processes one cluster RPC. Register it with the transport.
func (n *Node) Handle(req Request) Reply {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return errReply("node %s closed", n.cfg.NodeID)
	}
	switch req.Type {
	case MsgVote:
		return n.handleVote(req)
	case MsgHeartbeat:
		return n.handleHeartbeat(req)
	case MsgReplicate:
		return n.handleReplicate(req)
	case MsgFetchReplica:
		return n.handleFetchReplica(req)
	case MsgFreeze:
		return n.handleFreeze(req)
	case MsgFlush:
		return n.handleFlush(req)
	case MsgInstall:
		return n.handleInstall(req)
	case MsgCommit:
		return n.handleCommit(req)
	case MsgResume:
		return n.handleResume(req)
	case MsgFleet:
		return n.handleFleet(req)
	case MsgGenSync:
		var body GenSyncReq
		if err := decodeBody(req, &body); err != nil {
			return errReply("%v", err)
		}
		n.observeGenWatermark(body.Gen)
		return okReply(nil)
	case MsgStatus:
		return okReply(n.Status())
	default:
		return errReply("unknown message type %q", req.Type)
	}
}

func (n *Node) handleVote(req Request) Reply {
	var body VoteReq
	if err := decodeBody(req, &body); err != nil {
		return errReply("%v", err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if body.Term > n.term {
		n.term = body.Term
		n.votedFor = ""
		n.role = RoleFollower
		n.leader = ""
		n.persistTermLocked()
	}
	granted := false
	if body.Term == n.term && body.AssignEpoch >= n.assign.Epoch &&
		(n.votedFor == "" || n.votedFor == body.Candidate) {
		granted = true
		if n.votedFor != body.Candidate {
			n.votedFor = body.Candidate
			n.persistTermLocked()
		}
		// Granting resets the election timer: don't stand against a
		// candidate we just endorsed.
		n.lastHeard = n.clock.Now()
	}
	// Lock order n.mu -> genMu is safe: nothing acquires them in reverse.
	return okReply(VoteResp{Term: n.term, Granted: granted, Gen: n.genWatermark()})
}

func (n *Node) handleHeartbeat(req Request) Reply {
	var body HeartbeatReq
	if err := decodeBody(req, &body); err != nil {
		return errReply("%v", err)
	}
	n.mu.Lock()
	if body.Term < n.term {
		term := n.term
		n.mu.Unlock()
		return okReply(HeartbeatResp{Term: term})
	}
	if body.Term > n.term {
		n.term = body.Term
		n.votedFor = ""
		n.persistTermLocked()
	}
	if n.role != RoleFollower {
		n.role = RoleFollower
	}
	n.leader = body.Leader
	n.lastHeard = n.clock.Now()
	var prune bool
	if body.Assign.Epoch > n.assign.Epoch {
		// Catch-up path for a node that missed a handoff (dead or
		// partitioned while the cluster moved on): adopt the committed
		// assignment and drop rows that were failed over elsewhere.
		n.adoptAssignLocked(body.Assign)
		prune = true
	}
	term := n.term
	n.mu.Unlock()
	n.observeGenWatermark(body.Gen)
	if prune {
		n.pruneUnowned()
	}
	return okReply(HeartbeatResp{Term: term})
}

// adoptAssignLocked commits an assignment locally (mu held).
func (n *Node) adoptAssignLocked(a Assignment) {
	n.assign = a
	n.ringC = a.Ring(n.cfg.VNodes)
	if n.pendingFr != nil && n.pendingFr.Epoch <= a.Epoch {
		n.pendingFr = nil
		n.ringP = nil
		n.frozen = false
	}
	b, _ := json.Marshal(a)
	if err := n.cfg.Store.Put(keyAssign, b); err != nil {
		n.logf("cluster %s: persist assignment: %v", n.cfg.NodeID, err)
	}
	n.refreshOwnershipLocked()
}

// pruneUnowned removes agents the committed ring places elsewhere. Their
// rows were installed on the gaining side before the assignment
// committed, so dropping the local copy loses nothing.
func (n *Node) pruneUnowned() {
	n.mu.Lock()
	ring := n.ringC
	nid := n.cfg.NodeID
	n.mu.Unlock()
	if ring == nil {
		return
	}
	var gone []string
	for _, id := range n.cfg.Verifier.AgentIDs() {
		if ring.Owner(id) != nid {
			gone = append(gone, id)
		}
	}
	if len(gone) == 0 {
		return
	}
	n.cfg.Verifier.RemoveAgents(gone)
	if err := n.persistAgents(); err != nil {
		n.logf("cluster %s: persist after prune: %v", n.cfg.NodeID, err)
	}
}

// checkHandoffTermLocked validates a handoff RPC's term, adopting a
// higher one. Returns false when the sender is stale.
func (n *Node) checkHandoffTermLocked(term uint64) bool {
	if term < n.term {
		return false
	}
	if term > n.term {
		n.term = term
		n.votedFor = ""
		if n.role != RoleFollower && n.leader != n.cfg.NodeID {
			n.role = RoleFollower
		}
		n.persistTermLocked()
	}
	n.lastHeard = n.clock.Now()
	return true
}

func (n *Node) handleFreeze(req Request) Reply {
	var body FreezeReq
	if err := decodeBody(req, &body); err != nil {
		return errReply("%v", err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.checkHandoffTermLocked(body.Term) {
		return errReply("stale term %d (at %d)", body.Term, n.term)
	}
	if body.Assign.Epoch <= n.assign.Epoch {
		if body.Assign.Epoch == n.assign.Epoch {
			return okReply(nil) // already committed this epoch: freeze is moot
		}
		return errReply("stale assignment epoch %d (committed %d)", body.Assign.Epoch, n.assign.Epoch)
	}
	a := body.Assign
	n.pendingFr = &a
	n.ringP = a.Ring(n.cfg.VNodes)
	n.frozen = true
	n.refreshOwnershipLocked()
	return okReply(nil)
}

func (n *Node) handleFlush(req Request) Reply {
	var body FlushReq
	if err := decodeBody(req, &body); err != nil {
		return errReply("%v", err)
	}
	n.mu.Lock()
	if !n.checkHandoffTermLocked(body.Term) {
		n.mu.Unlock()
		return errReply("stale term %d (at %d)", body.Term, n.term)
	}
	if body.Assign.Epoch <= n.assign.Epoch {
		epoch := n.assign.Epoch
		n.mu.Unlock()
		if body.Assign.Epoch == epoch {
			return okReply(FlushResp{}) // committed already; nothing left to move
		}
		return errReply("stale assignment epoch %d (committed %d)", body.Assign.Epoch, epoch)
	}
	// A flush implies the freeze (idempotent): a re-driven handoff may
	// reach us here first.
	a := body.Assign
	n.pendingFr = &a
	n.ringP = a.Ring(n.cfg.VNodes)
	n.frozen = true
	n.refreshOwnershipLocked()
	ringT := n.ringP
	nid := n.cfg.NodeID
	n.mu.Unlock()

	// Flush the journal first so replicas and the local store agree with
	// what we export, then export every row the new ring takes away.
	if err := n.persistAgents(); err != nil {
		return errReply("flush journal: %v", err)
	}
	rows, err := n.cfg.Verifier.ExportWhere(func(id string) bool {
		return ringT.Owner(id) != nid
	})
	if err != nil {
		return errReply("export moving rows: %v", err)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].AgentID < rows[j].AgentID })
	return okReply(FlushResp{Rows: rows})
}

func (n *Node) handleInstall(req Request) Reply {
	var body InstallReq
	if err := decodeBody(req, &body); err != nil {
		return errReply("%v", err)
	}
	n.mu.Lock()
	if !n.checkHandoffTermLocked(body.Term) {
		n.mu.Unlock()
		return errReply("stale term %d (at %d)", body.Term, n.term)
	}
	if body.Epoch < n.assign.Epoch {
		epoch := n.assign.Epoch
		n.mu.Unlock()
		return errReply("stale install epoch %d (committed %d)", body.Epoch, epoch)
	}
	n.mu.Unlock()
	// replace=true + lenient import: a re-driven handoff overwrites the
	// rows it already installed, and one corrupt row skips one agent
	// instead of failing the whole failover.
	for _, re := range n.cfg.Verifier.ImportAgents(body.Rows, true) {
		n.logf("cluster %s: install skipped row: %v", n.cfg.NodeID, re.Error())
	}
	if err := n.persistAgents(); err != nil {
		return errReply("persist installed rows: %v", err)
	}
	return okReply(nil)
}

func (n *Node) handleCommit(req Request) Reply {
	var body CommitReq
	if err := decodeBody(req, &body); err != nil {
		return errReply("%v", err)
	}
	n.mu.Lock()
	if !n.checkHandoffTermLocked(body.Term) {
		n.mu.Unlock()
		return errReply("stale term %d (at %d)", body.Term, n.term)
	}
	if body.Assign.Epoch < n.assign.Epoch {
		epoch := n.assign.Epoch
		n.mu.Unlock()
		return errReply("stale commit epoch %d (committed %d)", body.Assign.Epoch, epoch)
	}
	n.adoptAssignLocked(body.Assign)
	n.mu.Unlock()
	n.pruneUnowned()
	return okReply(nil)
}

func (n *Node) handleResume(req Request) Reply {
	var body ResumeReq
	if err := decodeBody(req, &body); err != nil {
		return errReply("%v", err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.checkHandoffTermLocked(body.Term) {
		return errReply("stale term %d (at %d)", body.Term, n.term)
	}
	if body.Epoch < n.assign.Epoch {
		return errReply("stale resume epoch %d (committed %d)", body.Epoch, n.assign.Epoch)
	}
	n.frozen = false
	if n.pendingFr != nil && n.pendingFr.Epoch <= n.assign.Epoch {
		n.pendingFr = nil
		n.ringP = nil
	}
	n.refreshOwnershipLocked()
	return okReply(nil)
}

func (n *Node) handleReplicate(req Request) Reply {
	var body ReplicateReq
	if err := decodeBody(req, &body); err != nil {
		return errReply("%v", err)
	}
	src := req.From
	if src == "" {
		return errReply("replicate without source")
	}
	// Verify the frame seal before a single row is applied. A rejected
	// frame is a hard error back to the sender — the standby's replica
	// must never absorb evidence it cannot authenticate, because that
	// replica is what failover restores from.
	if err := n.verifyReplicate(src, &body); err != nil {
		n.mu.Lock()
		n.sealRejects++
		n.mu.Unlock()
		n.logf("cluster %s: REJECTED replication frame from %s: %v", n.cfg.NodeID, src, err)
		return errReply("replication seal: %v", err)
	}
	st := n.cfg.Store
	markKey := replSeqPrefix + src
	var mark replMark
	have := false
	if b, ok := st.Get(markKey); ok && json.Unmarshal(b, &mark) == nil {
		have = true
	}
	if body.IsSnap {
		// Wholesale replacement: drop our copy of this source's shard and
		// install the snapshot. One batched journal append (one fsync)
		// covers the clear, the install, and the cursor mark; the mark is
		// ordered last so a torn write can never acknowledge a cursor
		// whose rows did not make it to disk — recovery sees old mark +
		// partial rows and the next stream forces a resync.
		prefix := replicaPrefix + src + "/"
		var batch []store.KV
		for k := range st.All() {
			if strings.HasPrefix(k, prefix) {
				batch = append(batch, store.KV{Key: k, Delete: true})
			}
		}
		for k, v := range body.Snapshot {
			if !strings.HasPrefix(k, agentPrefix) {
				continue
			}
			batch = append(batch, store.KV{Key: prefix + k, Value: v})
		}
		mb, _ := json.Marshal(replMark{Epoch: body.SrcEpoch, Seq: body.UpTo})
		batch = append(batch, store.KV{Key: markKey, Value: mb})
		if err := st.PutBatch(batch); err != nil {
			return errReply("install snapshot: %v", err)
		}
		return okReply(ReplicateResp{AckSeq: body.UpTo})
	}
	// Incremental: only applies cleanly onto the exact cursor we hold for
	// this (source, store-epoch) pair; anything else needs a resync.
	if have {
		if mark.Epoch != body.SrcEpoch || mark.Seq != body.FromSeq {
			return okReply(ReplicateResp{AckSeq: mark.Seq, NeedSnapshot: true})
		}
	} else if body.FromSeq != 0 {
		return okReply(ReplicateResp{NeedSnapshot: true})
	}
	// One batched append per replication frame: all segments plus the
	// advanced cursor mark under a single fsync, the mark last so a torn
	// write leaves the old cursor and replays cleanly.
	prefix := replicaPrefix + src + "/"
	batch := make([]store.KV, 0, len(body.Segments)+1)
	for _, seg := range body.Segments {
		if !strings.HasPrefix(seg.Key, agentPrefix) {
			continue
		}
		switch seg.Op {
		case store.SegPut:
			batch = append(batch, store.KV{Key: prefix + seg.Key, Value: seg.Value})
		case store.SegDelete:
			batch = append(batch, store.KV{Key: prefix + seg.Key, Delete: true})
		}
	}
	mb, _ := json.Marshal(replMark{Epoch: body.SrcEpoch, Seq: body.UpTo})
	batch = append(batch, store.KV{Key: markKey, Value: mb})
	if err := st.PutBatch(batch); err != nil {
		return errReply("apply replicated segments: %v", err)
	}
	return okReply(ReplicateResp{AckSeq: body.UpTo})
}

func (n *Node) handleFetchReplica(req Request) Reply {
	var body FetchReplicaReq
	if err := decodeBody(req, &body); err != nil {
		return errReply("%v", err)
	}
	st := n.cfg.Store
	var mark replMark
	if b, ok := st.Get(replSeqPrefix + body.Src); ok {
		_ = json.Unmarshal(b, &mark)
	}
	prefix := replicaPrefix + body.Src + "/"
	var rows []verifier.AgentState
	for k, v := range st.All() {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		var row verifier.AgentState
		if err := json.Unmarshal(v, &row); err != nil {
			n.logf("cluster %s: replica row %s undecodable: %v", n.cfg.NodeID, k, err)
			continue
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].AgentID < rows[j].AgentID })
	return okReply(FetchReplicaResp{Epoch: mark.Epoch, Seq: mark.Seq, Rows: rows})
}
