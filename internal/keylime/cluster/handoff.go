package cluster

// Coordinator-side handoff: on membership change the leader moves ring
// ranges between nodes with an explicit protocol — propose (journal the
// target), freeze (losing side stops attesting agents in motion), flush
// (losing side persists and exports its rows; dead members' rows come
// from the best replica), install (gaining side imports, replace=true),
// commit (assignment becomes durable everywhere, stragglers pruned),
// resume (freeze lifted). Every step is a faultinject.StepHook boundary;
// every step is idempotent under the target epoch, so a coordinator that
// crashes mid-handoff — or its elected successor — re-drives the same
// target to convergence.

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/keylime/verifier"
)

// Handoff step names, in protocol order. The crash-sweep harness arms a
// StepHook at each index in turn.
var HandoffSteps = []string{
	"handoff-propose",
	"handoff-freeze",
	"handoff-flush",
	"handoff-install",
	"handoff-commit",
	"handoff-resume",
}

func (n *Node) step(name string) error { return n.cfg.Steps.Step(name) }

// liveMembers returns peers inside their lease (plus self), under mu.
func (n *Node) liveSetLocked(now time.Time) map[string]bool {
	live := map[string]bool{n.cfg.NodeID: true}
	for _, p := range n.cfg.Peers {
		if p == n.cfg.NodeID {
			continue
		}
		if ack, ok := n.peerAck[p]; ok && now.Sub(ack) <= n.cfg.LeaseTimeout {
			live[p] = true
		}
	}
	return live
}

func (n *Node) runHandoff(ctx context.Context, target Assignment, now time.Time) error {
	n.mu.Lock()
	if n.handoff || n.role != RoleLeader {
		n.mu.Unlock()
		return nil
	}
	n.handoff = true
	term := n.term
	old := n.assign
	live := n.liveSetLocked(now)
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.handoff = false
		n.mu.Unlock()
	}()
	n.logf("cluster %s: handoff epoch %d -> members %v", n.cfg.NodeID, target.Epoch, target.Members)

	// Propose: journal the target before any peer acts on it, so a
	// successor coordinator recovering this store re-drives it.
	if err := n.step("handoff-propose"); err != nil {
		return err
	}
	tb, _ := json.Marshal(target)
	if err := n.cfg.Store.Put(keyPending, tb); err != nil {
		return fmt.Errorf("journal pending assignment: %w", err)
	}
	n.mu.Lock()
	tcopy := target
	n.pending = &tcopy
	n.mu.Unlock()

	// Freeze: everyone still reachable that participates in either the
	// old or new assignment restricts ownership to the intersection.
	if err := n.step("handoff-freeze"); err != nil {
		return err
	}
	parties := unionMembers(old.Members, target.Members)
	for _, m := range parties {
		if !live[m] {
			continue
		}
		if err := call(ctx, n.cfg.Transport, m, n.cfg.NodeID, MsgFreeze,
			FreezeReq{Term: term, Assign: target}, nil); err != nil {
			return fmt.Errorf("freeze %s: %w", m, err)
		}
	}

	// Flush: losing nodes persist their journal and export the rows that
	// move; dead nodes' shards come from the replica with the highest
	// acknowledged journal seq.
	if err := n.step("handoff-flush"); err != nil {
		return err
	}
	rows := map[string]rowSource{} // agentID -> best row
	for _, m := range parties {
		if !live[m] {
			continue
		}
		var resp FlushResp
		if err := call(ctx, n.cfg.Transport, m, n.cfg.NodeID, MsgFlush,
			FlushReq{Term: term, Assign: target}, &resp); err != nil {
			return fmt.Errorf("flush %s: %w", m, err)
		}
		for _, r := range resp.Rows {
			rows[r.AgentID] = rowSource{row: r, fromLive: true}
		}
	}
	for _, dead := range parties {
		if live[dead] {
			continue
		}
		best, err := n.gatherReplica(ctx, dead, live)
		if err != nil {
			return fmt.Errorf("gather replica of %s: %w", dead, err)
		}
		for _, r := range best {
			if prev, ok := rows[r.AgentID]; ok && prev.fromLive {
				continue // a live flush is always fresher than a replica
			}
			rows[r.AgentID] = rowSource{row: r}
		}
	}

	// Install: group the moving rows by their new owner and import.
	if err := n.step("handoff-install"); err != nil {
		return err
	}
	ringT := target.Ring(n.cfg.VNodes)
	byOwner := map[string][]verifier.AgentState{}
	for _, rs := range rows {
		owner := ringT.Owner(rs.row.AgentID)
		byOwner[owner] = append(byOwner[owner], rs.row)
	}
	for owner, rowsOut := range byOwner {
		if !live[owner] {
			return fmt.Errorf("install: new owner %s not live", owner)
		}
		sort.Slice(rowsOut, func(i, j int) bool { return rowsOut[i].AgentID < rowsOut[j].AgentID })
		if err := call(ctx, n.cfg.Transport, owner, n.cfg.NodeID, MsgInstall,
			InstallReq{Term: term, Epoch: target.Epoch, Rows: rowsOut}, nil); err != nil {
			return fmt.Errorf("install on %s: %w", owner, err)
		}
	}

	// Commit: the assignment becomes durable on the coordinator first,
	// then on every live participant; nodes flip ownership to the new
	// ring and drop rows that now live elsewhere.
	if err := n.step("handoff-commit"); err != nil {
		return err
	}
	ab, _ := json.Marshal(target)
	if err := n.cfg.Store.Put(keyAssign, ab); err != nil {
		return fmt.Errorf("journal assignment: %w", err)
	}
	if err := n.cfg.Store.Delete(keyPending); err != nil {
		return fmt.Errorf("clear pending assignment: %w", err)
	}
	n.mu.Lock()
	n.pending = nil
	n.mu.Unlock()
	for _, m := range parties {
		if !live[m] {
			continue
		}
		if err := call(ctx, n.cfg.Transport, m, n.cfg.NodeID, MsgCommit,
			CommitReq{Term: term, Assign: target}, nil); err != nil {
			return fmt.Errorf("commit on %s: %w", m, err)
		}
	}

	// Resume: lift the freeze everywhere.
	if err := n.step("handoff-resume"); err != nil {
		return err
	}
	for _, m := range parties {
		if !live[m] {
			continue
		}
		if err := call(ctx, n.cfg.Transport, m, n.cfg.NodeID, MsgResume,
			ResumeReq{Term: term, Epoch: target.Epoch}, nil); err != nil {
			return fmt.Errorf("resume on %s: %w", m, err)
		}
	}
	n.logf("cluster %s: handoff epoch %d committed (%d agents moved)", n.cfg.NodeID, target.Epoch, len(rows))
	return nil
}

type rowSource struct {
	row      verifier.AgentState
	fromLive bool
}

// gatherReplica asks every live peer for its replicated copy of the dead
// member's shard and returns the copy with the highest acknowledged
// journal seq — the freshest surviving view of the dead node's frontier,
// quarantine, breaker and shadow state.
func (n *Node) gatherReplica(ctx context.Context, dead string, live map[string]bool) ([]verifier.AgentState, error) {
	var (
		best    []verifier.AgentState
		bestSeq uint64
		found   bool
	)
	for m := range live {
		var resp FetchReplicaResp
		if err := call(ctx, n.cfg.Transport, m, n.cfg.NodeID, MsgFetchReplica,
			FetchReplicaReq{Src: dead}, &resp); err != nil {
			continue // an unreachable replica just doesn't bid
		}
		if len(resp.Rows) == 0 && resp.Seq == 0 {
			continue
		}
		if !found || resp.Seq > bestSeq {
			best, bestSeq, found = resp.Rows, resp.Seq, true
		}
	}
	if !found {
		// No replica anywhere: the dead member either owned nothing or
		// never replicated. Failing over nothing is not an error.
		return nil, nil
	}
	n.logf("cluster %s: failing over %s from replica at seq %d (%d agents)", n.cfg.NodeID, dead, bestSeq, len(best))
	return best, nil
}

func unionMembers(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range append(append([]string(nil), a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
