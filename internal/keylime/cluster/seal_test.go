package cluster

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/keylime/dsse"
	"repro/internal/keylime/faultinject"
	"repro/internal/keylime/store"
	"repro/internal/keylime/verifier"
)

// sealNode builds a minimal node (no harness, no TPM) for exercising the
// replication seal path directly.
func sealNode(t *testing.T, id string, kr *dsse.Keyring) *Node {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	n, err := NewNode(Config{
		NodeID:    id,
		Peers:     []string{"n1", "n2"},
		Verifier:  verifier.New(""),
		Store:     st,
		Transport: NewMemTransport(faultinject.NewPeerFaults()),
		Keyring:   kr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testFrame() ReplicateReq {
	return ReplicateReq{
		SrcEpoch: 7, FromSeq: 3, UpTo: 5,
		Segments: []store.Segment{
			{Seq: 4, Op: store.SegPut, Key: "a/agent-1", Value: []byte(`{"id":"agent-1"}`)},
			{Seq: 5, Op: store.SegDelete, Key: "a/agent-2"},
		},
	}
}

// Cross-keyring trust: each node signs with its own key; the receiver
// trusts the sender via AddVerifier. Rotation on the sender mid-stream
// must not break frames sealed under the previous key.
func TestSealRoundTripAndTamperDetection(t *testing.T) {
	krA := dsse.NewKeyring()
	if _, err := krA.Rotate(); err != nil {
		t.Fatal(err)
	}
	krB := dsse.NewKeyring()
	if _, err := krB.Rotate(); err != nil {
		t.Fatal(err)
	}
	for _, pub := range krA.PublicKeys() {
		krB.AddVerifier(pub)
	}
	src := sealNode(t, "n1", krA)
	dst := sealNode(t, "n2", krB)

	req := testFrame()
	if err := src.sealReplicate(&req); err != nil {
		t.Fatal(err)
	}
	if len(req.Seal) == 0 {
		t.Fatal("frame left unsealed")
	}
	if err := dst.verifyReplicate("n1", &req); err != nil {
		t.Fatalf("honest frame rejected: %v", err)
	}

	// Sender rotates; a frame sealed by the NEW key still verifies (the
	// receiver learned every sender key, none retired).
	if _, err := krA.Rotate(); err != nil {
		t.Fatal(err)
	}
	for _, pub := range krA.PublicKeys() {
		krB.AddVerifier(pub)
	}
	req2 := testFrame()
	if err := src.sealReplicate(&req2); err != nil {
		t.Fatal(err)
	}
	if err := dst.verifyReplicate("n1", &req2); err != nil {
		t.Fatalf("post-rotation frame rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(r *ReplicateReq)
		want   string
	}{
		{"flipped segment byte", func(r *ReplicateReq) { r.Segments[0].Value[2] ^= 0x01 }, "sealed digest"},
		{"stripped seal", func(r *ReplicateReq) { r.Seal = nil }, "no seal"},
		{"inflated bounds", func(r *ReplicateReq) { r.UpTo = 99 }, "disagree"},
		{"spliced-in row", func(r *ReplicateReq) {
			r.Segments = append(r.Segments, store.Segment{Seq: 6, Op: store.SegPut, Key: "a/evil", Value: []byte(`{}`)})
		}, "sealed digest"},
	}
	for _, tc := range cases {
		r := testFrame()
		if err := src.sealReplicate(&r); err != nil {
			t.Fatal(err)
		}
		tc.mutate(&r)
		err := dst.verifyReplicate("n1", &r)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	// Misattribution: a frame honestly sealed by n1 replayed as n2's.
	r := testFrame()
	if err := src.sealReplicate(&r); err != nil {
		t.Fatal(err)
	}
	if err := dst.verifyReplicate("n2", &r); err == nil ||
		!strings.Contains(err.Error(), "seal names source") {
		t.Errorf("misattributed frame: err = %v, want source mismatch", err)
	}
}

// A tampered frame through the real RPC handler: rejected before any row
// lands in the standby's store, and counted in Status.
func TestHandleReplicateRejectsTamperedFrame(t *testing.T) {
	kr := dsse.NewKeyring()
	if _, err := kr.Rotate(); err != nil {
		t.Fatal(err)
	}
	src := sealNode(t, "n1", kr)
	dst := sealNode(t, "n2", kr) // shared keyring deployment

	frame := testFrame()
	frame.FromSeq = 0 // first contact applies cleanly
	if err := src.sealReplicate(&frame); err != nil {
		t.Fatal(err)
	}
	frame.Segments[0].Value = []byte(`{"id":"agent-1","forged":true}`)
	body, _ := json.Marshal(frame)
	rep := dst.Handle(Request{Type: MsgReplicate, From: "n1", Body: body})
	if rep.OK || !strings.Contains(rep.Err, "replication seal") {
		t.Fatalf("reply = %+v, want seal rejection", rep)
	}
	for k := range dst.cfg.Store.All() {
		if strings.HasPrefix(k, replicaPrefix) {
			t.Fatalf("tampered frame left row %s in store", k)
		}
	}
	if got := dst.Status().SealRejects; got != 1 {
		t.Fatalf("SealRejects = %d, want 1", got)
	}

	// The honest version of the same frame is accepted afterwards.
	honest := testFrame()
	honest.FromSeq = 0
	if err := src.sealReplicate(&honest); err != nil {
		t.Fatal(err)
	}
	body, _ = json.Marshal(honest)
	rep = dst.Handle(Request{Type: MsgReplicate, From: "n1", Body: body})
	if !rep.OK {
		t.Fatalf("honest frame rejected: %s", rep.Err)
	}
	if _, ok := dst.cfg.Store.Get(replicaPrefix + "n1/a/agent-1"); !ok {
		t.Fatal("honest frame did not install the replica row")
	}
}
