package cluster

import "time"

// PeerStatus is one peer's view from this node.
type PeerStatus struct {
	ID string `json:"id"`
	// Alive is leader-side lease liveness; always false on followers,
	// which don't track peer acks.
	Alive   bool      `json:"alive"`
	LastAck time.Time `json:"last_ack,omitempty"`
	// ReplAcked is the journal seq this standby has acknowledged, when we
	// replicate to it.
	ReplAcked uint64 `json:"repl_acked,omitempty"`
}

// NodeStatus is the /v2/cluster/status document.
type NodeStatus struct {
	NodeID       string     `json:"node_id"`
	Role         Role       `json:"role"`
	Term         uint64     `json:"term"`
	Leader       string     `json:"leader,omitempty"`
	Assign       Assignment `json:"assignment"`
	PendingEpoch uint64     `json:"pending_epoch,omitempty"`
	Frozen       bool       `json:"frozen,omitempty"`
	AgentsOwned  int        `json:"agents_owned"`
	Generation   uint64     `json:"generation"`
	// SealRejects counts inbound replication frames rejected for DSSE
	// seal failures (tampered, misattributed, or unsealed under a
	// keyring-required configuration).
	SealRejects int          `json:"seal_rejects,omitempty"`
	Peers       []PeerStatus `json:"peers"`
}

// Status reports the node's cluster view for operators and tests.
func (n *Node) Status() NodeStatus {
	now := n.clock.Now()
	n.mu.Lock()
	st := NodeStatus{
		NodeID: n.cfg.NodeID,
		Role:   n.role,
		Term:   n.term,
		Leader: n.leader,
		Assign: n.assign,
		Frozen: n.frozen,

		SealRejects: n.sealRejects,
	}
	if n.pendingFr != nil {
		st.PendingEpoch = n.pendingFr.Epoch
	}
	if n.pending != nil && n.pending.Epoch > st.PendingEpoch {
		st.PendingEpoch = n.pending.Epoch
	}
	for _, p := range n.cfg.Peers {
		if p == n.cfg.NodeID {
			continue
		}
		ps := PeerStatus{ID: p}
		if ack, ok := n.peerAck[p]; ok && n.role == RoleLeader {
			ps.LastAck = ack
			ps.Alive = now.Sub(ack) <= n.cfg.LeaseTimeout
		}
		if c := n.repl[p]; c != nil && c.known {
			ps.ReplAcked = c.acked
		}
		st.Peers = append(st.Peers, ps)
	}
	n.mu.Unlock()
	st.AgentsOwned = n.cfg.Verifier.AgentCount()
	st.Generation = n.genWatermark()
	return st
}
