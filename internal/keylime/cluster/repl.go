package cluster

// Sender-side journal replication: every tick, each node streams its
// store's new "a/" segments to the ring standbys for its shard. The
// cursor is (store epoch, journal seq); any mismatch on the receiver —
// restart on either side, outrun segment tail, first contact — degrades
// to a full snapshot, which is always safe because agent rows are
// whole-row last-writer-wins.

import (
	"context"
	"strings"

	"repro/internal/keylime/store"
)

func (n *Node) replicateTick(ctx context.Context) {
	n.mu.Lock()
	if n.closed || n.ringC == nil {
		n.mu.Unlock()
		return
	}
	standbys := n.ringC.StandbysOf(n.cfg.NodeID, n.cfg.Replicas)
	cursors := make(map[string]replCursor, len(standbys))
	for _, s := range standbys {
		if c := n.repl[s]; c != nil {
			cursors[s] = *c
		}
	}
	n.mu.Unlock()

	st := n.cfg.Store
	for _, s := range standbys {
		c := cursors[s]
		if c.known && st.Seq() == c.acked {
			continue // standby is current
		}
		segs, ok := st.Since(c.acked)
		if !ok {
			// The in-memory tail no longer covers the standby's cursor
			// (it fell too far behind, or our store reopened with a new
			// epoch): resync via snapshot.
			n.sendSnapshot(ctx, s)
			continue
		}
		upTo := c.acked
		if len(segs) > 0 {
			upTo = segs[len(segs)-1].Seq
		}
		req := ReplicateReq{
			SrcEpoch: st.Epoch(),
			FromSeq:  c.acked,
			UpTo:     upTo,
			Segments: filterAgentSegments(segs),
		}
		if err := n.sealReplicate(&req); err != nil {
			n.logf("cluster %s: %v", n.cfg.NodeID, err)
			continue
		}
		var resp ReplicateResp
		if err := call(ctx, n.cfg.Transport, s, n.cfg.NodeID, MsgReplicate, req, &resp); err != nil {
			continue // unreachable; retry next tick
		}
		if resp.NeedSnapshot {
			n.sendSnapshot(ctx, s)
			continue
		}
		n.setReplCursor(s, resp.AckSeq)
	}
}

func (n *Node) sendSnapshot(ctx context.Context, standby string) {
	st := n.cfg.Store
	all, seq := st.SnapshotAll()
	snap := make(map[string][]byte)
	for k, v := range all {
		if strings.HasPrefix(k, agentPrefix) {
			snap[k] = v
		}
	}
	req := ReplicateReq{SrcEpoch: st.Epoch(), UpTo: seq, Snapshot: snap, IsSnap: true}
	if err := n.sealReplicate(&req); err != nil {
		n.logf("cluster %s: %v", n.cfg.NodeID, err)
		return
	}
	var resp ReplicateResp
	if err := call(ctx, n.cfg.Transport, standby, n.cfg.NodeID, MsgReplicate, req, &resp); err != nil {
		return
	}
	n.setReplCursor(standby, resp.AckSeq)
	n.logf("cluster %s: snapshot resync to %s at seq %d (%d rows)", n.cfg.NodeID, standby, seq, len(snap))
}

func (n *Node) setReplCursor(standby string, acked uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.repl[standby] = &replCursor{acked: acked, known: true}
}

func filterAgentSegments(segs []store.Segment) []store.Segment {
	out := segs[:0:0]
	for _, s := range segs {
		if strings.HasPrefix(s.Key, agentPrefix) {
			out = append(out, s)
		}
	}
	return out
}
