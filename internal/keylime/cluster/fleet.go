package cluster

// FleetProxy presents the whole partitioned fleet as one rollout.Fleet:
// the coordinator runs a single staged rollout (shadow → canary →
// promote) across every shard, routing each per-agent operation to the
// agent's ring owner. Combined with the coordinator's NextGeneration,
// the cluster converges on one global policy generation.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/keylime/verifier"
	"repro/internal/policy"
)

// Sentinel error codes carried in FleetResp.Code. RPC replies flatten
// errors to strings; these codes let the proxy rebuild the verifier
// sentinels the reconciler's idempotency logic matches with errors.Is.
const (
	codeDuplicate    = "duplicate"
	codeUnknownAgent = "unknown-agent"
	codeInactive     = "inactive"
)

// codeForErr maps a local verifier error to its wire code.
func codeForErr(err error) (string, bool) {
	switch {
	case errors.Is(err, verifier.ErrDuplicate):
		return codeDuplicate, true
	case errors.Is(err, verifier.ErrUnknownAgent):
		return codeUnknownAgent, true
	case errors.Is(err, verifier.ErrAgentInactive):
		return codeInactive, true
	}
	return "", false
}

// errForCode is the inverse of codeForErr on the calling side.
func errForCode(code, agentID string) error {
	switch code {
	case "":
		return nil
	case codeDuplicate:
		return fmt.Errorf("%w: %s", verifier.ErrDuplicate, agentID)
	case codeUnknownAgent:
		return fmt.Errorf("%w: %s", verifier.ErrUnknownAgent, agentID)
	case codeInactive:
		return fmt.Errorf("%w: %s", verifier.ErrAgentInactive, agentID)
	}
	return fmt.Errorf("cluster: fleet error code %q for %s", code, agentID)
}

// fleetErrReply encodes a fleet-op failure: sentinel errors ride in
// FleetResp.Code (an OK reply), everything else is a plain error reply.
func fleetErrReply(err error) Reply {
	if code, ok := codeForErr(err); ok {
		return okReply(FleetResp{Code: code})
	}
	return errReply("%v", err)
}

// FleetProxy implements rollout.Fleet over the cluster transport.
type FleetProxy struct {
	node *Node
	ctx  context.Context
}

// Fleet returns a rollout.Fleet view of the whole cluster, routed from
// this node. Run rollouts on the coordinator.
func (n *Node) Fleet(ctx context.Context) *FleetProxy {
	if ctx == nil {
		ctx = context.Background()
	}
	return &FleetProxy{node: n, ctx: ctx}
}

// OwnerOf reports which cluster member the committed ring maps the agent
// to (this node's own ID before the first assignment commits). Rollout
// controllers use it as a CohortOf hook so canaries span every shard.
func (n *Node) OwnerOf(agentID string) string {
	n.mu.Lock()
	ring := n.ringC
	n.mu.Unlock()
	if ring == nil {
		return n.cfg.NodeID
	}
	return ring.Owner(agentID)
}

// ownerOf resolves an agent's ring owner ("" means local, pre-cluster).
func (f *FleetProxy) ownerOf(agentID string) string {
	f.node.mu.Lock()
	ring := f.node.ringC
	f.node.mu.Unlock()
	if ring == nil {
		return f.node.cfg.NodeID
	}
	return ring.Owner(agentID)
}

func (f *FleetProxy) callOwner(agentID string, req FleetReq, out *FleetResp) (local bool, err error) {
	owner := f.ownerOf(agentID)
	if owner == f.node.cfg.NodeID {
		return true, nil
	}
	req.AgentID = agentID
	return false, call(f.ctx, f.node.cfg.Transport, owner, f.node.cfg.NodeID, MsgFleet, req, out)
}

// AgentIDs returns the union of every reachable member's agents.
func (f *FleetProxy) AgentIDs() []string {
	n := f.node
	seen := map[string]bool{}
	for _, id := range n.cfg.Verifier.AgentIDs() {
		seen[id] = true
	}
	n.mu.Lock()
	members := append([]string(nil), n.assign.Members...)
	n.mu.Unlock()
	for _, m := range members {
		if m == n.cfg.NodeID {
			continue
		}
		var resp FleetResp
		if err := call(f.ctx, n.cfg.Transport, m, n.cfg.NodeID, MsgFleet, FleetReq{Op: "ids"}, &resp); err != nil {
			n.logf("cluster %s: fleet ids from %s: %v", n.cfg.NodeID, m, err)
			continue
		}
		for _, id := range resp.IDs {
			seen[id] = true
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (f *FleetProxy) Status(agentID string) (verifier.Status, error) {
	var resp FleetResp
	local, err := f.callOwner(agentID, FleetReq{Op: "status"}, &resp)
	if local {
		return f.node.cfg.Verifier.Status(agentID)
	}
	if err != nil {
		return verifier.Status{}, err
	}
	var st verifier.Status
	if err := json.Unmarshal(resp.Status, &st); err != nil {
		return verifier.Status{}, fmt.Errorf("cluster: decode remote status: %w", err)
	}
	return st, nil
}

func (f *FleetProxy) SetShadowPolicy(agentID string, gen uint64, pol *policy.RuntimePolicy) error {
	pb, err := json.Marshal(pol)
	if err != nil {
		return err
	}
	local, err := f.callOwner(agentID, FleetReq{Op: "set-shadow", Gen: gen, Policy: pb}, &FleetResp{})
	if local {
		return f.node.cfg.Verifier.SetShadowPolicy(agentID, gen, pol)
	}
	return err
}

func (f *FleetProxy) ClearShadowPolicy(agentID string) error {
	local, err := f.callOwner(agentID, FleetReq{Op: "clear-shadow"}, &FleetResp{})
	if local {
		return f.node.cfg.Verifier.ClearShadowPolicy(agentID)
	}
	return err
}

func (f *FleetProxy) ShadowStatus(agentID string) (verifier.ShadowEvalStatus, error) {
	var resp FleetResp
	local, err := f.callOwner(agentID, FleetReq{Op: "shadow-status"}, &resp)
	if local {
		return f.node.cfg.Verifier.ShadowStatus(agentID)
	}
	if err != nil {
		return verifier.ShadowEvalStatus{}, err
	}
	var st verifier.ShadowEvalStatus
	if err := json.Unmarshal(resp.Status, &st); err != nil {
		return verifier.ShadowEvalStatus{}, fmt.Errorf("cluster: decode remote shadow status: %w", err)
	}
	return st, nil
}

func (f *FleetProxy) InstallPolicyGeneration(agentID string, gen uint64, pol *policy.RuntimePolicy) error {
	pb, err := json.Marshal(pol)
	if err != nil {
		return err
	}
	local, err := f.callOwner(agentID, FleetReq{Op: "install-gen", Gen: gen, Policy: pb}, &FleetResp{})
	if local {
		return f.node.cfg.Verifier.InstallPolicyGeneration(agentID, gen, pol)
	}
	return err
}

func (f *FleetProxy) ActivePolicy(agentID string) (*policy.RuntimePolicy, uint64, error) {
	var resp FleetResp
	local, err := f.callOwner(agentID, FleetReq{Op: "active-policy"}, &resp)
	if local {
		return f.node.cfg.Verifier.ActivePolicy(agentID)
	}
	if err != nil {
		return nil, 0, err
	}
	var pol *policy.RuntimePolicy
	if len(resp.Policy) > 0 {
		if err := json.Unmarshal(resp.Policy, &pol); err != nil {
			return nil, 0, fmt.Errorf("cluster: decode remote policy: %w", err)
		}
	}
	return pol, resp.Gen, nil
}

// AddAgent enrolls an agent on its ring owner via the registrar path.
func (f *FleetProxy) AddAgent(agentID, agentURL string, pol *policy.RuntimePolicy) error {
	pb, err := json.Marshal(pol)
	if err != nil {
		return err
	}
	var resp FleetResp
	local, err := f.callOwner(agentID, FleetReq{Op: "add", URL: agentURL, Policy: pb}, &resp)
	if local {
		return f.node.cfg.Verifier.AddAgent(agentID, agentURL, pol)
	}
	if err != nil {
		return err
	}
	return errForCode(resp.Code, agentID)
}

// AddAgentWithAK enrolls an agent on its ring owner with a caller-
// supplied AK (no registrar round trip).
func (f *FleetProxy) AddAgentWithAK(agentID, agentURL string, akPub []byte, pol *policy.RuntimePolicy) error {
	pb, err := json.Marshal(pol)
	if err != nil {
		return err
	}
	var resp FleetResp
	local, err := f.callOwner(agentID, FleetReq{Op: "add-ak", URL: agentURL, AKPub: akPub, Policy: pb}, &resp)
	if local {
		return f.node.cfg.Verifier.AddAgentWithAK(agentID, agentURL, akPub, pol)
	}
	if err != nil {
		return err
	}
	return errForCode(resp.Code, agentID)
}

// RemoveAgent withdraws an agent from its ring owner.
func (f *FleetProxy) RemoveAgent(agentID string) error {
	var resp FleetResp
	local, err := f.callOwner(agentID, FleetReq{Op: "remove"}, &resp)
	if local {
		return f.node.cfg.Verifier.RemoveAgent(agentID)
	}
	if err != nil {
		return err
	}
	return errForCode(resp.Code, agentID)
}

// UpdatePolicy replaces an agent's runtime policy on its ring owner.
func (f *FleetProxy) UpdatePolicy(agentID string, pol *policy.RuntimePolicy) error {
	pb, err := json.Marshal(pol)
	if err != nil {
		return err
	}
	var resp FleetResp
	local, err := f.callOwner(agentID, FleetReq{Op: "update-policy", Policy: pb}, &resp)
	if local {
		return f.node.cfg.Verifier.UpdatePolicy(agentID, pol)
	}
	if err != nil {
		return err
	}
	return errForCode(resp.Code, agentID)
}

func (f *FleetProxy) Resume(agentID string) error {
	local, err := f.callOwner(agentID, FleetReq{Op: "resume"}, &FleetResp{})
	if local {
		return f.node.cfg.Verifier.Resume(agentID)
	}
	return err
}

// handleFleet applies a proxied fleet operation to the local verifier.
func (n *Node) handleFleet(req Request) Reply {
	var body FleetReq
	if err := decodeBody(req, &body); err != nil {
		return errReply("%v", err)
	}
	v := n.cfg.Verifier
	switch body.Op {
	case "ids":
		return okReply(FleetResp{IDs: v.AgentIDs()})
	case "status":
		st, err := v.Status(body.AgentID)
		if err != nil {
			return errReply("%v", err)
		}
		b, _ := json.Marshal(st)
		return okReply(FleetResp{Status: b})
	case "shadow-status":
		st, err := v.ShadowStatus(body.AgentID)
		if err != nil {
			return errReply("%v", err)
		}
		b, _ := json.Marshal(st)
		return okReply(FleetResp{Status: b})
	case "set-shadow", "install-gen":
		var pol *policy.RuntimePolicy
		if len(body.Policy) > 0 {
			if err := json.Unmarshal(body.Policy, &pol); err != nil {
				return errReply("decode policy: %v", err)
			}
		}
		var err error
		if body.Op == "set-shadow" {
			err = v.SetShadowPolicy(body.AgentID, body.Gen, pol)
		} else {
			err = v.InstallPolicyGeneration(body.AgentID, body.Gen, pol)
		}
		if err != nil {
			return errReply("%v", err)
		}
		return okReply(nil)
	case "clear-shadow":
		if err := v.ClearShadowPolicy(body.AgentID); err != nil {
			return errReply("%v", err)
		}
		return okReply(nil)
	case "active-policy":
		pol, gen, err := v.ActivePolicy(body.AgentID)
		if err != nil {
			return errReply("%v", err)
		}
		var pb json.RawMessage
		if pol != nil {
			pb, _ = json.Marshal(pol)
		}
		return okReply(FleetResp{Policy: pb, Gen: gen})
	case "resume":
		if err := v.Resume(body.AgentID); err != nil {
			return errReply("%v", err)
		}
		return okReply(nil)
	case "add", "add-ak", "update-policy":
		var pol *policy.RuntimePolicy
		if len(body.Policy) > 0 {
			if err := json.Unmarshal(body.Policy, &pol); err != nil {
				return errReply("decode policy: %v", err)
			}
		}
		var err error
		switch body.Op {
		case "add":
			err = v.AddAgent(body.AgentID, body.URL, pol)
		case "add-ak":
			err = v.AddAgentWithAK(body.AgentID, body.URL, body.AKPub, pol)
		default:
			err = v.UpdatePolicy(body.AgentID, pol)
		}
		if err != nil {
			return fleetErrReply(err)
		}
		return okReply(nil)
	case "remove":
		if err := v.RemoveAgent(body.AgentID); err != nil {
			return fleetErrReply(err)
		}
		return okReply(nil)
	default:
		return errReply("unknown fleet op %q", body.Op)
	}
}
