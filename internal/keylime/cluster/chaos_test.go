package cluster

// Partition-tolerance chaos suite: the acceptance scenarios for the
// multi-verifier cluster. A 3-node cluster attests a large in-process
// fleet; the harness kills verifiers mid-sweep, crashes the coordinator
// at every handoff step boundary, partitions the network, and rolls the
// whole cluster — asserting the paper's core operational requirement
// throughout: attestation coverage never silently stops, verdicts stay
// truthful, and detection (revocation) is not lost across failover.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/keylime/verifier"
	"repro/internal/policy"
	"repro/internal/vfs"
)

func chaosFleetSize(t *testing.T) int {
	if testing.Short() {
		return 128
	}
	return 1000
}

// TestChaosFailoverMidSweep is the headline failover scenario: 3
// verifiers share a 1k-agent fleet; one is killed mid-sweep. Its agents
// must be re-swept by the standby within 2 sweep intervals, resuming
// from the replicated frontier with no false verdicts — and an integrity
// violation that happens across the failover window is still detected
// and revoked, by the new owner.
func TestChaosFailoverMidSweep(t *testing.T) {
	n := chaosFleetSize(t)
	h := newHarness(t, 1, "v1", "v2", "v3")
	lead := h.converge()

	// polFull knows about /usr/bin/late (written but not yet executed);
	// the base policy h.pol does not.
	if err := h.mach.WriteFile("/usr/bin/late", []byte("\x7fELF late"), vfs.ModeExecutable); err != nil {
		t.Fatal(err)
	}
	polFull, err := core.SnapshotPolicy(h.mach.FS(), nil)
	if err != nil {
		t.Fatal(err)
	}
	agents := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("fleet-%04d-4a97-9ef7-75bd81c0f1ee", i)
		h.addAgent(id, polFull)
		agents = append(agents, id)
	}

	// One coordinator-issued generation across all shards.
	fleet := lead.n.Fleet(h.ctx)
	gen, err := lead.n.NextGeneration()
	if err != nil {
		t.Fatal(err)
	}
	for _, ag := range agents {
		if err := fleet.InstallPolicyGeneration(ag, gen, polFull); err != nil {
			t.Fatalf("install generation on %s: %v", ag, err)
		}
	}

	if st := h.sweepAll(); st.Attested != n || st.Failed != 0 {
		t.Fatalf("sweep 1 = %+v", st)
	}
	if st := h.sweepAll(); st.Attested != n || st.Failed != 0 {
		t.Fatalf("sweep 2 = %+v", st)
	}

	// The victim is a non-leader; one of its agents gets the stale base
	// policy, so an integrity violation after the kill is visible only
	// through that agent — detected, necessarily, by whoever owns it then.
	victim := ""
	for _, id := range h.peers {
		if id != lead.id {
			victim = id
			break
		}
	}
	victimAgents := h.nodes[victim].v.AgentIDs()
	if len(victimAgents) == 0 {
		t.Fatalf("victim %s owns no agents", victim)
	}
	bad := victimAgents[0]
	if err := h.nodes[victim].v.UpdatePolicy(bad, h.pol); err != nil {
		t.Fatal(err)
	}
	if err := h.nodes[victim].n.persistAgents(); err != nil {
		t.Fatal(err)
	}
	h.tick() // replicate the policy change before the crash

	// Snapshot the replicated frontier every victim agent should resume
	// from.
	pre := map[string]verifier.AgentState{}
	rows, err := h.nodes[victim].v.ExportAgents(victimAgents)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		pre[r.AgentID] = r
	}

	// Kill mid-sweep: the victim's in-flight sweep is abandoned with
	// nothing persisted — exactly what a process crash leaves behind.
	sweepCtx, cancelSweep := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = h.nodes[victim].v.PollAll(sweepCtx)
	}()
	cancelSweep()
	<-done
	h.kill(victim)

	// The violation happens while the shard has no owner.
	if err := h.mach.Exec("/usr/bin/late"); err != nil {
		t.Fatal(err)
	}

	h.converge()

	// Frontier continuity: before any post-failover sweep, every moved
	// agent sits exactly where the replicated journal left it.
	for _, ag := range victimAgents {
		owner := h.ownerOf(ag)
		got, err := h.nodes[owner].v.ExportAgents([]string{ag})
		if err != nil || len(got) != 1 {
			t.Fatalf("agent %s not restored on %s: %v", ag, owner, err)
		}
		if got[0].NextOffset != pre[ag].NextOffset || got[0].Attestations != pre[ag].Attestations ||
			got[0].PolicyGeneration != pre[ag].PolicyGeneration {
			t.Fatalf("agent %s resumed at offset=%d attest=%d gen=%d, replica had %d/%d/%d",
				ag, got[0].NextOffset, got[0].Attestations, got[0].PolicyGeneration,
				pre[ag].NextOffset, pre[ag].Attestations, pre[ag].PolicyGeneration)
		}
	}

	// Within two sweep intervals every agent is re-swept; the only
	// failure is the genuine violation (zero false verdicts).
	st1 := h.sweepAll()
	st2 := h.sweepAll()
	if got := st1.Attested + st2.Attested; got < 2*n-1 {
		t.Fatalf("sweeps after failover attested %d rounds, want >= %d (full re-coverage)", got, 2*n-1)
	}
	if st1.Failed+st2.Failed != 1 {
		t.Fatalf("failed verdicts = %d, want exactly 1 (the tampered agent): %+v %+v", st1.Failed+st2.Failed, st1, st2)
	}
	for _, ag := range agents {
		owner := h.ownerOf(ag)
		st, err := h.nodes[owner].v.Status(ag)
		if err != nil {
			t.Fatalf("status %s: %v", ag, err)
		}
		if ag == bad {
			if len(st.Failures) == 0 || !st.Halted {
				t.Fatalf("tampered agent %s not failed+halted after failover: %+v", ag, st)
			}
			continue
		}
		if len(st.Failures) != 0 {
			t.Fatalf("false verdict on %s: %+v", ag, st.Failures)
		}
		if st.Attestations < pre[ag].Attestations { // moved agents kept their counters
			t.Fatalf("agent %s attestation counter went backwards", ag)
		}
		if st.PolicyGeneration != gen {
			t.Fatalf("agent %s at generation %d, want %d", ag, st.PolicyGeneration, gen)
		}
	}
	// Revocation continuity: the violation was detected by the agent's
	// NEW owner — the kill did not swallow it.
	newOwner := h.ownerOf(bad)
	if got := h.nodes[newOwner].revocations.Load(); got < 1 {
		t.Fatalf("new owner %s recorded %d revocations, want >= 1", newOwner, got)
	}
}

// TestChaosHandoffCrashSweep crashes the coordinator at every handoff
// step boundary in turn — during both shrink (node death) and grow
// (node rejoin) handoffs — and requires the re-driven protocol to
// converge every time: exactly one owner per agent, full coverage, one
// consistent policy generation.
func TestChaosHandoffCrashSweep(t *testing.T) {
	h := newHarness(t, 1, "v1", "v2", "v3")
	lead := h.converge()
	agents := h.addAgents(45)
	gen, err := lead.n.NextGeneration()
	if err != nil {
		t.Fatal(err)
	}
	fleet := lead.n.Fleet(h.ctx)
	for _, ag := range agents {
		if err := fleet.InstallPolicyGeneration(ag, gen, h.pol); err != nil {
			t.Fatal(err)
		}
	}
	h.sweepAll()

	dead := "" // the currently-dead node, if any
	for k := 1; k <= len(HandoffSteps); k++ {
		lead = h.converge()
		lead.steps.Reset()
		lead.steps.ArmCrash(k)
		if dead == "" {
			// Shrink: kill a non-leader.
			for _, id := range h.liveIDs() {
				if id != lead.id {
					dead = id
					break
				}
			}
			t.Logf("step %d (%s): killing %s under coordinator %s", k, HandoffSteps[k-1], dead, lead.id)
			h.kill(dead)
		} else {
			// Grow: rejoin the dead node.
			t.Logf("step %d (%s): reviving %s under coordinator %s", k, HandoffSteps[k-1], dead, lead.id)
			h.revive(dead)
			dead = ""
		}
		// Tick until the coordinator attempts the handoff and hits the
		// armed crash.
		crashed := false
		for i := 0; i < 60 && !crashed; i++ {
			h.tick()
			crashed = len(lead.steps.Steps()) >= k
		}
		if !crashed {
			t.Fatalf("step %d: coordinator never reached the armed handoff step", k)
		}
		lead.steps.Reset()
		h.converge()
		h.assertPartitioned(agents)
		if st := h.sweepAll(); st.Attested != 45 || st.Failed != 0 {
			t.Fatalf("step %d: sweep after recovery = %+v", k, st)
		}
		for _, ag := range agents {
			owner := h.ownerOf(ag)
			st, err := h.nodes[owner].v.Status(ag)
			if err != nil {
				t.Fatalf("step %d: status %s on %s: %v", k, ag, owner, err)
			}
			if st.PolicyGeneration != gen {
				t.Fatalf("step %d: agent %s at generation %d, want %d", k, ag, st.PolicyGeneration, gen)
			}
		}
	}
}

// TestChaosPartitionAndHeal splits the coordinator away from the
// majority: the minority leader must stop coordinating, the majority
// elects and fails the lost shard over from replicas, and the heal
// reintegrates the stale node without resurrecting its old assignment.
func TestChaosPartitionAndHeal(t *testing.T) {
	// Replicas=2: every node's journal lives on both other nodes, so a
	// partition never strands a shard without a replica on the majority
	// side.
	h := newHarness(t, 2, "p1", "p2", "p3")
	lead := h.converge()
	agents := h.addAgents(30)
	h.sweepAll()
	h.sweepAll()

	var others []string
	for _, id := range h.peers {
		if id != lead.id {
			others = append(others, id)
		}
	}
	h.faults.Partition([]string{lead.id}, others)

	// The majority side converges on a new coordinator and owns the
	// whole fleet; the old leader steps down when its lease lapses.
	var newLead *testNode
	for i := 0; i < 120 && newLead == nil; i++ {
		h.tick()
		for _, id := range others {
			st := h.nodes[id].n.Status()
			if st.Role == RoleLeader && sameMembers(st.Assign.Members, others) && st.PendingEpoch <= st.Assign.Epoch {
				peerOK := true
				for _, o := range others {
					os := h.nodes[o].n.Status()
					if os.Assign.Epoch != st.Assign.Epoch {
						peerOK = false
					}
				}
				if peerOK {
					newLead = h.nodes[id]
				}
			}
		}
	}
	if newLead == nil {
		t.Fatalf("majority side never converged after partition")
	}
	if st := h.nodes[lead.id].n.Status(); st.Role == RoleLeader {
		t.Fatalf("minority node %s still thinks it leads", lead.id)
	}
	if len(h.faults.Drops()) == 0 {
		t.Fatalf("partition dropped no traffic")
	}
	// Majority-side coverage is complete.
	owned := map[string]string{}
	for _, id := range others {
		for _, ag := range h.nodes[id].v.AgentIDs() {
			if prev, dup := owned[ag]; dup {
				t.Fatalf("agent %s on both %s and %s within the majority", ag, prev, id)
			}
			owned[ag] = id
		}
	}
	if len(owned) != 30 {
		t.Fatalf("majority owns %d of 30 agents after failover", len(owned))
	}
	att := 0
	for _, id := range others {
		st := h.nodes[id].n.Sweep(h.ctx)
		att += st.Attested
		if st.Failed != 0 {
			t.Fatalf("false verdicts on %s during partition: %+v", id, st)
		}
	}
	if att != 30 {
		t.Fatalf("majority attested %d of 30 during partition", att)
	}

	h.faults.Heal()
	h.converge()
	h.assertPartitioned(agents)
	if st := h.sweepAll(); st.Attested != 30 || st.Failed != 0 {
		t.Fatalf("post-heal sweep = %+v", st)
	}
}

// TestChaosRollingRestart cleanly restarts every node in turn; coverage
// and verdict truthfulness must hold after each restart.
func TestChaosRollingRestart(t *testing.T) {
	h := newHarness(t, 1, "r1", "r2", "r3")
	h.converge()
	agents := h.addAgents(30)
	h.sweepAll()
	for _, id := range append([]string(nil), h.peers...) {
		h.restart(id)
		h.converge()
		h.assertPartitioned(agents)
		if st := h.sweepAll(); st.Attested != 30 || st.Failed != 0 {
			t.Fatalf("sweep after restarting %s = %+v", id, st)
		}
	}
}

// TestClusterMembershipChurn cycles kill/converge/revive across every
// node with sweeps interleaved — the race-matrix target: ownership stays
// a partition and no verdict is fabricated at any point.
func TestClusterMembershipChurn(t *testing.T) {
	h := newHarness(t, 1, "c1", "c2", "c3")
	h.converge()
	agents := h.addAgents(24)
	h.sweepAll()
	for round, id := range []string{"c2", "c3", "c1"} {
		h.kill(id)
		h.converge()
		h.assertPartitioned(agents)
		if st := h.sweepAll(); st.Attested != 24 || st.Failed != 0 {
			t.Fatalf("round %d: sweep with %s dead = %+v", round, id, st)
		}
		h.revive(id)
		h.converge()
		h.assertPartitioned(agents)
		if st := h.sweepAll(); st.Attested != 24 || st.Failed != 0 {
			t.Fatalf("round %d: sweep after %s rejoined = %+v", round, id, st)
		}
	}
}

// TestChaosFailoverSessionsForceFullQuote: sessioned attestation across a
// failover. Sessions are established fleet-wide and their state rides the
// replicated journal — but a session handed to a new owner is NEVER
// resumed on the MAC fast path: the new owner forces a full quote per
// moved agent (it did not verify the exchange that minted the key),
// records it as a forced upgrade, then re-keys. An integrity violation
// during the window is caught by the forced quotes, never masked by a
// session round, and there are zero false verdicts throughout.
func TestChaosFailoverSessionsForceFullQuote(t *testing.T) {
	h := newHarness(t, 1, "v1", "v2", "v3")
	lead := h.converge()
	for _, id := range h.liveIDs() {
		h.nodes[id].v.SetSessionPolicy(64, 0)
	}
	const n = 60
	agents := h.addAgents(n)

	// Sweep 1 establishes a session per agent; sweep 2 runs fleet-wide on
	// the session MAC and the rows (including session state) replicate.
	if st := h.sweepAll(); st.Attested != n || st.Failed != 0 || st.FullQuoteRounds != n {
		t.Fatalf("establishing sweep = %+v", st)
	}
	if st := h.sweepAll(); st.Attested != n || st.Failed != 0 || st.SessionRounds != n {
		t.Fatalf("steady sweep = %+v, want all %d rounds on the session MAC", st, n)
	}

	// Kill a non-leader mid-sweep: its in-flight sweep is abandoned, its
	// shard (with live sessions) fails over to the survivors.
	victim := ""
	for _, id := range h.peers {
		if id != lead.id {
			victim = id
			break
		}
	}
	moved := len(h.nodes[victim].v.AgentIDs())
	if moved == 0 {
		t.Fatalf("victim %s owns no agents", victim)
	}
	sweepCtx, cancelSweep := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = h.nodes[victim].v.PollAll(sweepCtx)
	}()
	cancelSweep()
	<-done
	h.kill(victim)
	h.converge()
	h.assertPartitioned(agents)

	// First post-failover sweep: every moved agent renegotiates via a
	// forced full quote — the replicated session MAC is not accepted
	// blind — and nothing fails.
	st := h.sweepAll()
	if st.Attested != n || st.Failed != 0 {
		t.Fatalf("post-failover sweep = %+v, want %d attested with zero verdicts", st, n)
	}
	if st.ForcedUpgrades < moved {
		t.Fatalf("forced upgrades = %d, want >= %d (every moved session renegotiated)",
			st.ForcedUpgrades, moved)
	}
	if st.SessionRounds != n-moved {
		t.Fatalf("session rounds = %d, want %d (only unmoved agents stay on the MAC)",
			st.SessionRounds, n-moved)
	}

	// The renegotiation re-keyed: the next sweep is fleet-wide steady
	// state again.
	if st := h.sweepAll(); st.SessionRounds != n || st.Failed != 0 {
		t.Fatalf("re-keyed sweep = %+v, want all %d rounds on the session MAC", st, n)
	}

	// An integrity violation now (out-of-policy execution) moves every
	// agent's frontier: no session round may answer for it. Every round
	// escalates to a full quote and every verdict is the true failure.
	if err := h.mach.WriteFile("/usr/bin/rootkit", []byte("\x7fELF evil"), vfs.ModeExecutable); err != nil {
		t.Fatal(err)
	}
	if err := h.mach.Exec("/usr/bin/rootkit"); err != nil {
		t.Fatal(err)
	}
	st = h.sweepAll()
	if st.SessionRounds != 0 {
		t.Fatalf("sweep after violation ran %d session rounds — a MAC round masked a failure", st.SessionRounds)
	}
	if st.Failed != n {
		t.Fatalf("sweep after violation = %+v, want all %d agents failed", st, n)
	}
}

var _ = policy.RuntimePolicy{} // keep the import stable across edits
