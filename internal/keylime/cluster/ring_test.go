package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnerDeterministicAndBalanced(t *testing.T) {
	r := NewRing([]string{"v1", "v2", "v3"}, 0)
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		id := fmt.Sprintf("agent-%04d", i)
		owner := r.Owner(id)
		if owner != r.Owner(id) {
			t.Fatalf("Owner(%s) not deterministic", id)
		}
		counts[owner]++
	}
	for _, m := range r.Members() {
		if counts[m] < 600 || counts[m] > 1500 {
			t.Fatalf("member %s owns %d of 3000 agents; ring badly unbalanced: %v", m, counts[m], counts)
		}
	}
}

func TestRingMinimalMovementOnMembershipChange(t *testing.T) {
	before := NewRing([]string{"v1", "v2", "v3"}, 0)
	after := NewRing([]string{"v1", "v2"}, 0) // v3 died
	moved := 0
	for i := 0; i < 3000; i++ {
		id := fmt.Sprintf("agent-%04d", i)
		ob, oa := before.Owner(id), after.Owner(id)
		if ob != "v3" && ob != oa {
			t.Fatalf("agent %s moved %s -> %s though its owner survived", id, ob, oa)
		}
		if ob != oa {
			moved++
		}
	}
	// Only v3's shard (~1/3 of the fleet) may move.
	if moved < 600 || moved > 1500 {
		t.Fatalf("%d of 3000 agents moved when one of three members left", moved)
	}
}

func TestRingSuccessorsDistinct(t *testing.T) {
	r := NewRing([]string{"v1", "v2", "v3", "v4"}, 0)
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("agent-%d", i)
		owner := r.Owner(id)
		succ := r.Successors(id, 2)
		if len(succ) != 2 {
			t.Fatalf("Successors(%s, 2) = %v", id, succ)
		}
		seen := map[string]bool{owner: true}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("successor %s duplicates owner/earlier successor for %s: owner=%s succ=%v", s, id, owner, succ)
			}
			seen[s] = true
		}
	}
	// More successors than peers: capped at the rest of the ring.
	if got := r.Successors("agent-0", 10); len(got) != 3 {
		t.Fatalf("Successors capped at %d, want 3", len(got))
	}
}

func TestRingStandbysOf(t *testing.T) {
	r := NewRing([]string{"v1", "v2", "v3"}, 0)
	sb := r.StandbysOf("v2", 1)
	if len(sb) != 1 || sb[0] == "v2" {
		t.Fatalf("StandbysOf(v2, 1) = %v", sb)
	}
	if got := r.StandbysOf("v2", 5); len(got) != 2 {
		t.Fatalf("StandbysOf(v2, 5) = %v, want the 2 other members", got)
	}
	if got := r.StandbysOf("nope", 1); got != nil {
		t.Fatalf("StandbysOf(unknown) = %v, want nil", got)
	}
	if got := NewRing([]string{"solo"}, 0).StandbysOf("solo", 1); got != nil {
		t.Fatalf("single-node ring has standbys: %v", got)
	}
}
