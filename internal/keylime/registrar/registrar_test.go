package registrar

import (
	"bytes"
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/keylime/api"
	"repro/internal/tpm"
)

func newCAAndTPM(t *testing.T) (*tpm.ManufacturerCA, *tpm.TPM) {
	t.Helper()
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	dev, err := tpm.New(ca, tpm.WithEKBits(1024))
	if err != nil {
		t.Fatalf("New TPM: %v", err)
	}
	return ca, dev
}

func TestRegisterActivateFlow(t *testing.T) {
	ca, dev := newCAAndTPM(t)
	r := New(ca.Pool())
	akPub, err := dev.CreateAK()
	if err != nil {
		t.Fatalf("CreateAK: %v", err)
	}
	cred, err := r.Register("agent-1", dev.EKCertificate(), akPub, "http://agent:9002")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	info, err := r.Agent("agent-1")
	if err != nil {
		t.Fatalf("Agent: %v", err)
	}
	if info.Active {
		t.Fatal("agent active before credential activation")
	}
	if _, err := r.AKPub("agent-1"); !errors.Is(err, ErrNotActive) {
		t.Fatalf("AKPub before activation: %v, want ErrNotActive", err)
	}
	proof, err := dev.ActivateCredential(cred)
	if err != nil {
		t.Fatalf("ActivateCredential: %v", err)
	}
	if err := r.Activate("agent-1", proof); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	got, err := r.AKPub("agent-1")
	if err != nil {
		t.Fatalf("AKPub: %v", err)
	}
	if !bytes.Equal(got, akPub) {
		t.Fatal("AKPub mismatch")
	}
	if r.AgentCount() != 1 {
		t.Fatalf("AgentCount = %d", r.AgentCount())
	}
}

func TestRegisterRejectsForeignEK(t *testing.T) {
	_, dev := newCAAndTPM(t)
	otherCA, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	r := New(otherCA.Pool())
	akPub, _ := dev.CreateAK()
	if _, err := r.Register("agent-1", dev.EKCertificate(), akPub, ""); !errors.Is(err, tpm.ErrEKCertificate) {
		t.Fatalf("Register with foreign EK: %v, want ErrEKCertificate", err)
	}
}

func TestActivateWrongProofRejected(t *testing.T) {
	ca, dev := newCAAndTPM(t)
	r := New(ca.Pool())
	akPub, _ := dev.CreateAK()
	if _, err := r.Register("agent-1", dev.EKCertificate(), akPub, ""); err != nil {
		t.Fatalf("Register: %v", err)
	}
	var wrong tpm.Digest
	wrong[0] = 0xab
	if err := r.Activate("agent-1", wrong); !errors.Is(err, ErrBadProof) {
		t.Fatalf("Activate wrong proof: %v, want ErrBadProof", err)
	}
	if info, _ := r.Agent("agent-1"); info.Active {
		t.Fatal("agent activated despite bad proof")
	}
}

func TestActivateUnknownAgent(t *testing.T) {
	ca, _ := newCAAndTPM(t)
	r := New(ca.Pool())
	if err := r.Activate("ghost", tpm.Digest{}); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("err = %v, want ErrUnknownAgent", err)
	}
}

func TestRegisterEmptyID(t *testing.T) {
	ca, dev := newCAAndTPM(t)
	r := New(ca.Pool())
	akPub, _ := dev.CreateAK()
	if _, err := r.Register("", dev.EKCertificate(), akPub, ""); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	ca, dev := newCAAndTPM(t)
	r := New(ca.Pool())
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	akPub, _ := dev.CreateAK()

	// Register over HTTP.
	body, err := json.Marshal(api.RegisterRequest{
		AgentID: "agent-http",
		EKCert:  base64.StdEncoding.EncodeToString(dev.EKCertificate()),
		AKPub:   base64.StdEncoding.EncodeToString(akPub),
	})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	resp, err := http.Post(srv.URL+"/v2/agents/agent-http", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST register: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
	var reg api.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatalf("decode: %v", err)
	}
	_ = resp.Body.Close()

	// Activate over HTTP.
	encSecret, _ := base64.StdEncoding.DecodeString(reg.EncryptedSecret)
	nameRaw, _ := hex.DecodeString(reg.AKNameBound)
	var name tpm.Digest
	copy(name[:], nameRaw)
	proof, err := dev.ActivateCredential(tpm.Credential{EncryptedSecret: encSecret, AKNameBound: name})
	if err != nil {
		t.Fatalf("ActivateCredential: %v", err)
	}
	actBody, _ := json.Marshal(api.ActivateRequest{AgentID: "agent-http", Proof: hex.EncodeToString(proof[:])})
	resp2, err := http.Post(srv.URL+"/v2/agents/agent-http/activate", "application/json", bytes.NewReader(actBody))
	if err != nil {
		t.Fatalf("POST activate: %v", err)
	}
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("activate status = %d", resp2.StatusCode)
	}

	// GET agent info.
	resp3, err := http.Get(srv.URL + "/v2/agents/agent-http")
	if err != nil {
		t.Fatalf("GET agent: %v", err)
	}
	defer func() { _ = resp3.Body.Close() }()
	var info api.AgentInfo
	if err := json.NewDecoder(resp3.Body).Decode(&info); err != nil {
		t.Fatalf("decode info: %v", err)
	}
	if !info.Active {
		t.Fatal("agent not active after HTTP flow")
	}
}

func TestHTTPUnknownAgent404(t *testing.T) {
	ca, _ := newCAAndTPM(t)
	srv := httptest.NewServer(New(ca.Pool()).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v2/agents/ghost")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestHTTPBadBody400(t *testing.T) {
	ca, _ := newCAAndTPM(t)
	srv := httptest.NewServer(New(ca.Pool()).Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v2/agents/x", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestAgentIDsAndDeregister(t *testing.T) {
	ca, dev := newCAAndTPM(t)
	r := New(ca.Pool())
	akPub, _ := dev.CreateAK()
	for _, id := range []string{"agent-b", "agent-a"} {
		if _, err := r.Register(id, dev.EKCertificate(), akPub, ""); err != nil {
			t.Fatalf("Register %s: %v", id, err)
		}
	}
	ids := r.AgentIDs()
	if len(ids) != 2 || ids[0] != "agent-a" || ids[1] != "agent-b" {
		t.Fatalf("AgentIDs = %v, want sorted pair", ids)
	}
	if err := r.Deregister("agent-a"); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if err := r.Deregister("agent-a"); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("double deregister: %v, want ErrUnknownAgent", err)
	}
	if r.AgentCount() != 1 {
		t.Fatalf("AgentCount = %d, want 1", r.AgentCount())
	}
}

func TestHTTPListAndDelete(t *testing.T) {
	ca, dev := newCAAndTPM(t)
	r := New(ca.Pool())
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	akPub, _ := dev.CreateAK()
	if _, err := r.Register("agent-x", dev.EKCertificate(), akPub, ""); err != nil {
		t.Fatalf("Register: %v", err)
	}
	resp, err := http.Get(srv.URL + "/v2/agents")
	if err != nil {
		t.Fatalf("GET list: %v", err)
	}
	var body map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	_ = resp.Body.Close()
	if len(body["agents"]) != 1 || body["agents"][0] != "agent-x" {
		t.Fatalf("list = %v", body)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v2/agents/agent-x", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp2.StatusCode)
	}
	if r.AgentCount() != 0 {
		t.Fatalf("AgentCount = %d after delete", r.AgentCount())
	}
}

func TestRegistrarStatePersistence(t *testing.T) {
	ca, dev := newCAAndTPM(t)
	r := New(ca.Pool())
	akPub, _ := dev.CreateAK()
	cred, err := r.Register("agent-1", dev.EKCertificate(), akPub, "http://a:1")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	proof, err := dev.ActivateCredential(cred)
	if err != nil {
		t.Fatalf("ActivateCredential: %v", err)
	}
	if err := r.Activate("agent-1", proof); err != nil {
		t.Fatalf("Activate: %v", err)
	}

	// "Restart": export, JSON round trip, restore into a fresh registrar.
	snap := r.ExportState()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	r2 := New(ca.Pool())
	if err := r2.RestoreState(back); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	got, err := r2.AKPub("agent-1")
	if err != nil {
		t.Fatalf("AKPub after restore: %v", err)
	}
	if !bytes.Equal(got, akPub) {
		t.Fatal("AK lost through restart")
	}
	info, _ := r2.Agent("agent-1")
	if !info.Active || info.ContactURL != "http://a:1" {
		t.Fatalf("restored record = %+v", info)
	}
	// Restore into a non-empty registrar is refused.
	if err := r2.RestoreState(back); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("restore into non-empty: %v, want ErrBadRequest", err)
	}
}
