package registrar

// Concurrent-enrollment conflict semantics: a pending (unactivated)
// record under one AK must not be silently hijacked by a second
// requester claiming the same agent ID with a different AK — first
// claim wins, the loser gets ErrEnrollConflict (HTTP 409). Lost-response
// retransmits with the SAME AK re-issue a fresh challenge, and an
// ACTIVE record may always re-register (the reboot/re-provision path).

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/keylime/api"
	"repro/internal/tpm"
)

func TestRegisterConflictOnPendingDifferentAK(t *testing.T) {
	ca, dev := newCAAndTPM(t)
	dev2, err := tpm.New(ca, tpm.WithEKBits(1024))
	if err != nil {
		t.Fatalf("second TPM: %v", err)
	}
	r := New(ca.Pool())
	ak1, _ := dev.CreateAK()
	ak2, _ := dev2.CreateAK()

	cred, err := r.Register("agent-1", dev.EKCertificate(), ak1, "http://a:9002")
	if err != nil {
		t.Fatalf("first register: %v", err)
	}
	// A different requester racing for the same pending ID is refused.
	if _, err := r.Register("agent-1", dev2.EKCertificate(), ak2, "http://b:9002"); !errors.Is(err, ErrEnrollConflict) {
		t.Fatalf("conflicting register = %v, want ErrEnrollConflict", err)
	}
	// Same-AK retransmit (lost response) gets a fresh challenge.
	cred2, err := r.Register("agent-1", dev.EKCertificate(), ak1, "http://a:9002")
	if err != nil {
		t.Fatalf("same-AK retry: %v", err)
	}
	proof, err := dev.ActivateCredential(cred2)
	if err != nil {
		t.Fatalf("ActivateCredential: %v", err)
	}
	if err := r.Activate("agent-1", proof); err != nil {
		t.Fatalf("Activate after retry: %v", err)
	}
	// Once ACTIVE, a different AK may re-register: reboot/re-provision
	// resets the record to pending under the new key.
	if _, err := r.Register("agent-1", dev2.EKCertificate(), ak2, "http://b:9002"); err != nil {
		t.Fatalf("re-register of active record: %v", err)
	}
	// The stale credential from the pre-activation challenge is dead.
	if err := r.Activate("agent-1", proofFromCred(t, dev, cred)); !errors.Is(err, ErrBadProof) {
		t.Fatalf("stale proof accepted: %v", err)
	}
}

func proofFromCred(t *testing.T, dev *tpm.TPM, cred tpm.Credential) tpm.Digest {
	t.Helper()
	proof, err := dev.ActivateCredential(cred)
	if err != nil {
		t.Fatalf("ActivateCredential: %v", err)
	}
	return proof
}

func TestRegisterConflictRace(t *testing.T) {
	ca, dev := newCAAndTPM(t)
	dev2, err := tpm.New(ca, tpm.WithEKBits(1024))
	if err != nil {
		t.Fatalf("second TPM: %v", err)
	}
	r := New(ca.Pool())
	ak1, _ := dev.CreateAK()
	ak2, _ := dev2.CreateAK()

	type attempt struct {
		dev  *tpm.TPM
		ak   []byte
		cred tpm.Credential
		err  error
	}
	attempts := []*attempt{
		{dev: dev, ak: ak1},
		{dev: dev2, ak: ak2},
	}
	var wg sync.WaitGroup
	for _, a := range attempts {
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.cred, a.err = r.Register("raced-agent", a.dev.EKCertificate(), a.ak, "http://x:9002")
		}()
	}
	wg.Wait()

	var winner *attempt
	conflicts := 0
	for _, a := range attempts {
		switch {
		case a.err == nil:
			if winner != nil {
				t.Fatal("both racing registrations succeeded")
			}
			winner = a
		case errors.Is(a.err, ErrEnrollConflict):
			conflicts++
		default:
			t.Fatalf("unexpected race error: %v", a.err)
		}
	}
	if winner == nil || conflicts != 1 {
		t.Fatalf("race outcome: winner=%v conflicts=%d, want exactly one of each", winner, conflicts)
	}
	// The winner's challenge is live and completes activation.
	proof, err := winner.dev.ActivateCredential(winner.cred)
	if err != nil {
		t.Fatalf("winner ActivateCredential: %v", err)
	}
	if err := r.Activate("raced-agent", proof); err != nil {
		t.Fatalf("winner Activate: %v", err)
	}
	got, err := r.AKPub("raced-agent")
	if err != nil {
		t.Fatalf("AKPub: %v", err)
	}
	if !bytes.Equal(got, winner.ak) {
		t.Fatal("activated AK is not the race winner's")
	}
}

func TestHTTPRegisterConflict409(t *testing.T) {
	ca, dev := newCAAndTPM(t)
	dev2, err := tpm.New(ca, tpm.WithEKBits(1024))
	if err != nil {
		t.Fatalf("second TPM: %v", err)
	}
	r := New(ca.Pool())
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	ak1, _ := dev.CreateAK()
	ak2, _ := dev2.CreateAK()

	post := func(d *tpm.TPM, ak []byte) *http.Response {
		t.Helper()
		body, _ := json.Marshal(api.RegisterRequest{
			AgentID: "agent-conflict",
			EKCert:  base64.StdEncoding.EncodeToString(d.EKCertificate()),
			AKPub:   base64.StdEncoding.EncodeToString(ak),
		})
		resp, err := http.Post(srv.URL+"/v2/agents/agent-conflict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST register: %v", err)
		}
		return resp
	}
	resp := post(dev, ak1)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first register status = %d", resp.StatusCode)
	}
	resp = post(dev2, ak2)
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting register status = %d, want 409", resp.StatusCode)
	}
	var apiErr api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
		t.Fatalf("409 body = %+v (err %v), want an error payload", apiErr, err)
	}
}
