// Package registrar implements the Keylime registrar: it manages initial
// agent enrollment and guards against spoofed or compromised TPM devices by
// verifying the EK certificate chain against trusted manufacturer roots and
// running the credential-activation protocol that proves the agent's AK
// lives inside the TPM certified by that EK.
package registrar

import (
	"bytes"
	"crypto/rand"
	"crypto/x509"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/keylime/api"
	"repro/internal/tpm"
)

// Sentinel errors.
var (
	ErrUnknownAgent = errors.New("registrar: unknown agent")
	ErrBadProof     = errors.New("registrar: credential activation proof mismatch")
	ErrNotActive    = errors.New("registrar: agent not activated")
	ErrBadRequest   = errors.New("registrar: bad request")
	// ErrEnrollConflict rejects a second enrollment of an agent ID whose
	// credential activation is still pending under a different AK.
	// Last-writer-wins here would let a racing (or spoofing) second
	// enroll silently invalidate the challenge the first requester is
	// about to answer.
	ErrEnrollConflict = errors.New("registrar: enrollment already in progress for agent id")
)

// record is the registrar's state for one agent.
type record struct {
	akPub         []byte
	contactURL    string
	expectedProof tpm.Digest
	active        bool
}

// Registrar verifies TPM identities and stores enrolled agents. Construct
// with New; it is safe for concurrent use.
type Registrar struct {
	roots *x509.CertPool
	rng   io.Reader

	mu     sync.Mutex
	agents map[string]*record
}

// New creates a registrar trusting the given TPM manufacturer roots.
func New(roots *x509.CertPool) *Registrar {
	return &Registrar{roots: roots, rng: rand.Reader, agents: make(map[string]*record)}
}

// Register starts enrollment: it verifies the EK certificate chain and
// returns a credential challenge bound to the presented AK. Re-registering
// an agent resets it to inactive.
func (r *Registrar) Register(agentID string, ekCertDER, akPub []byte, contactURL string) (tpm.Credential, error) {
	return r.RegisterWithChain(agentID, ekCertDER, nil, akPub, contactURL)
}

// RegisterWithChain enrolls an agent whose EK certificate chains through
// intermediates (e.g. a vTPM guest chaining through its host CA).
//
// Duplicate-enrollment rules: an ACTIVE record may always re-register
// (the reboot/re-provision path — it resets to inactive and gets a fresh
// challenge); a PENDING record may retry with the SAME AK (lost-response
// retransmit, new challenge); a pending record under a DIFFERENT AK is a
// conflict — completing either activation must not be silently hijacked
// by the other requester.
func (r *Registrar) RegisterWithChain(agentID string, ekCertDER []byte, ekIntermediates [][]byte, akPub []byte, contactURL string) (tpm.Credential, error) {
	if agentID == "" {
		return tpm.Credential{}, fmt.Errorf("%w: empty agent id", ErrBadRequest)
	}
	ekCert, err := tpm.VerifyEKCertChain(ekCertDER, ekIntermediates, r.roots)
	if err != nil {
		return tpm.Credential{}, fmt.Errorf("registrar: rejecting EK: %w", err)
	}
	cred, proof, err := tpm.MakeCredential(r.rng, ekCert, akPub)
	if err != nil {
		return tpm.Credential{}, fmt.Errorf("registrar: building credential: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.agents[agentID]; ok && !prev.active && !bytes.Equal(prev.akPub, akPub) {
		return tpm.Credential{}, fmt.Errorf("%w: %s", ErrEnrollConflict, agentID)
	}
	r.agents[agentID] = &record{
		akPub:         append([]byte(nil), akPub...),
		contactURL:    contactURL,
		expectedProof: proof,
	}
	return cred, nil
}

// Activate completes enrollment by checking the activation proof.
func (r *Registrar) Activate(agentID string, proof tpm.Digest) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.agents[agentID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	if rec.expectedProof != proof {
		return fmt.Errorf("%w: agent %s", ErrBadProof, agentID)
	}
	rec.active = true
	return nil
}

// Agent returns the enrollment record for a registered agent. Verifiers
// call this to obtain the trusted AK public key.
func (r *Registrar) Agent(agentID string) (api.AgentInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.agents[agentID]
	if !ok {
		return api.AgentInfo{}, fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	return api.AgentInfo{
		AgentID:    agentID,
		AKPub:      base64.StdEncoding.EncodeToString(rec.akPub),
		ContactURL: rec.contactURL,
		Active:     rec.active,
	}, nil
}

// AKPub returns the raw AK public key (PKIX DER) of an activated agent.
func (r *Registrar) AKPub(agentID string) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.agents[agentID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	if !rec.active {
		return nil, fmt.Errorf("%w: %s", ErrNotActive, agentID)
	}
	return append([]byte(nil), rec.akPub...), nil
}

// AgentCount reports how many agents are registered.
func (r *Registrar) AgentCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.agents)
}

// AgentIDs returns the registered agent ids, sorted.
func (r *Registrar) AgentIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.agents))
	for id := range r.agents {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// AgentRecord is the serialized enrollment state of one agent.
type AgentRecord struct {
	AgentID       string `json:"agent_id"`
	AKPub         string `json:"ak_pub"`
	ContactURL    string `json:"contact_url"`
	ExpectedProof string `json:"expected_proof"`
	Active        bool   `json:"active"`
}

// Snapshot is the registrar's serialized agent table.
type Snapshot struct {
	Agents []AgentRecord `json:"agents"`
}

// ExportState snapshots the enrollment table so a registrar restart does
// not lose registered agents.
func (r *Registrar) ExportState() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var st Snapshot
	for _, id := range r.agentIDsLocked() {
		rec := r.agents[id]
		st.Agents = append(st.Agents, AgentRecord{
			AgentID:       id,
			AKPub:         base64.StdEncoding.EncodeToString(rec.akPub),
			ContactURL:    rec.contactURL,
			ExpectedProof: hex.EncodeToString(rec.expectedProof[:]),
			Active:        rec.active,
		})
	}
	return st
}

// RestoreState loads a snapshot into an empty registrar.
func (r *Registrar) RestoreState(st Snapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.agents) != 0 {
		return fmt.Errorf("%w: RestoreState requires an empty registrar", ErrBadRequest)
	}
	for _, rec := range st.Agents {
		akPub, err := base64.StdEncoding.DecodeString(rec.AKPub)
		if err != nil {
			return fmt.Errorf("registrar: restoring %s: ak_pub: %w", rec.AgentID, err)
		}
		var proof tpm.Digest
		raw, err := hex.DecodeString(rec.ExpectedProof)
		if err != nil || len(raw) != len(proof) {
			return fmt.Errorf("registrar: restoring %s: bad proof", rec.AgentID)
		}
		copy(proof[:], raw)
		r.agents[rec.AgentID] = &record{
			akPub:         akPub,
			contactURL:    rec.ContactURL,
			expectedProof: proof,
			active:        rec.Active,
		}
	}
	return nil
}

// agentIDsLocked returns sorted ids; caller holds r.mu.
func (r *Registrar) agentIDsLocked() []string {
	out := make([]string, 0, len(r.agents))
	for id := range r.agents {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Deregister removes an agent's enrollment record.
func (r *Registrar) Deregister(agentID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.agents[agentID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	delete(r.agents, agentID)
	return nil
}

// Handler returns the registrar's HTTP API:
//
//	POST /v2/agents/{id}          RegisterRequest  -> RegisterResponse
//	POST /v2/agents/{id}/activate ActivateRequest  -> 200
//	GET  /v2/agents/{id}                           -> AgentInfo
func (r *Registrar) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/agents/{id}", func(w http.ResponseWriter, req *http.Request) {
		var body api.RegisterRequest
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		agentID := req.PathValue("id")
		ekCert, err := base64.StdEncoding.DecodeString(body.EKCert)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("ek_cert: %w", err))
			return
		}
		akPub, err := base64.StdEncoding.DecodeString(body.AKPub)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("ak_pub: %w", err))
			return
		}
		var intermediates [][]byte
		for i, enc := range body.EKIntermediates {
			der, err := base64.StdEncoding.DecodeString(enc)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("ek_intermediates[%d]: %w", i, err))
				return
			}
			intermediates = append(intermediates, der)
		}
		cred, err := r.RegisterWithChain(agentID, ekCert, intermediates, akPub, body.ContactURL)
		if err != nil {
			status := http.StatusForbidden
			if errors.Is(err, ErrEnrollConflict) {
				status = http.StatusConflict
			}
			writeErr(w, status, err)
			return
		}
		writeJSON(w, api.RegisterResponse{
			EncryptedSecret: base64.StdEncoding.EncodeToString(cred.EncryptedSecret),
			AKNameBound:     hex.EncodeToString(cred.AKNameBound[:]),
		})
	})
	mux.HandleFunc("POST /v2/agents/{id}/activate", func(w http.ResponseWriter, req *http.Request) {
		var body api.ActivateRequest
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		raw, err := hex.DecodeString(body.Proof)
		if err != nil || len(raw) != len(tpm.Digest{}) {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("%w: proof encoding", ErrBadRequest))
			return
		}
		var proof tpm.Digest
		copy(proof[:], raw)
		if err := r.Activate(req.PathValue("id"), proof); err != nil {
			status := http.StatusForbidden
			if errors.Is(err, ErrUnknownAgent) {
				status = http.StatusNotFound
			}
			writeErr(w, status, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v2/agents/{id}", func(w http.ResponseWriter, req *http.Request) {
		info, err := r.Agent(req.PathValue("id"))
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, info)
	})
	mux.HandleFunc("GET /v2/agents", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, map[string][]string{"agents": r.AgentIDs()})
	})
	mux.HandleFunc("DELETE /v2/agents/{id}", func(w http.ResponseWriter, req *http.Request) {
		if err := r.Deregister(req.PathValue("id")); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do.
		return
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: err.Error()})
}
