package faultinject

// Step-boundary fault injection for multi-step operations (the rollout
// controller's stage pipeline). A StepHook is threaded into the operation
// as a plain `func(name string) error` checkpoint; the sweep harness
// first records a fault-free run's step sequence, then re-runs the
// operation once per recorded step with the crash armed at that index —
// the same discover-then-sweep pattern FaultFS uses for byte and op
// boundaries, lifted to logical stage transitions.

import (
	"errors"
	"fmt"
	"sync"
)

// ErrStepCrash is the error an armed StepHook returns at the crash index.
var ErrStepCrash = errors.New("faultinject: injected step crash")

// StepHook counts named step checkpoints and optionally fails one of
// them. The zero value is usable (records, never fails); nil-safety is
// the caller's concern — thread h.Step only when a hook is configured,
// or use Check which tolerates a nil receiver.
type StepHook struct {
	mu      sync.Mutex
	seq     []string
	crashAt int // 1-based index into the step stream; 0 = disabled
	err     error
}

// NewStepHook returns a recording hook with no crash armed.
func NewStepHook() *StepHook { return &StepHook{} }

// ArmCrash makes the n-th Step call (1-based) return ErrStepCrash.
// n <= 0 disarms.
func (h *StepHook) ArmCrash(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.crashAt = n
	h.err = ErrStepCrash
}

// ArmError is ArmCrash with a caller-chosen error.
func (h *StepHook) ArmError(n int, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.crashAt = n
	h.err = err
}

// Reset clears the recorded sequence and disarms the hook.
func (h *StepHook) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq = nil
	h.crashAt = 0
	h.err = nil
}

// Step records one checkpoint and fails it when armed. A nil receiver is
// a no-op, so callers can thread hook.Step unconditionally.
func (h *StepHook) Step(name string) error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq = append(h.seq, name)
	if h.crashAt > 0 && len(h.seq) == h.crashAt {
		return fmt.Errorf("%w: at step %d (%s)", h.err, h.crashAt, name)
	}
	return nil
}

// Steps returns the recorded checkpoint sequence.
func (h *StepHook) Steps() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.seq...)
}
