// Package faultinject provides a fault-injecting http.RoundTripper used to
// chaos-test the attestation pipeline. It can drop connections, time out,
// answer with 5xx statuses, hang a response body, or truncate it mid-stream,
// all on a deterministic schedule so multi-day simulated runs are exactly
// reproducible.
//
// Faults are decided per request by a Plan. The built-in plans are:
//
//   - Rates: seeded pseudo-random faults at configured per-kind rates
//   - Burst: every request in a half-open request-number window faults
//   - Toggle: a switch the test flips to start/stop an outage
//   - Schedule: composes bursts over background rates with a request filter
//
// The Transport wraps any base RoundTripper, keeps per-kind injection
// counters, and is safe for concurrent use.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
)

// Kind enumerates injectable fault kinds.
type Kind int

// Fault kinds.
const (
	// None passes the request through untouched.
	None Kind = iota
	// Reset fails the request with a connection-reset transport error.
	Reset
	// Timeout fails the request with a net.Error whose Timeout() is true.
	Timeout
	// Status answers with a synthetic HTTP error status (default 503)
	// without contacting the upstream.
	Status
	// SlowBody performs the real request but the response body blocks on
	// the first read until the request context is cancelled — a hung
	// agent. Callers without a read deadline stall forever.
	SlowBody
	// Truncate performs the real request but cuts the body off halfway,
	// so decoders see an unexpected EOF.
	Truncate
)

var kindNames = map[Kind]string{
	None:     "none",
	Reset:    "reset",
	Timeout:  "timeout",
	Status:   "status",
	SlowBody: "slow-body",
	Truncate: "truncate",
}

// String returns the fault kind label.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one injection decision.
type Fault struct {
	Kind Kind
	// StatusCode is the synthetic status for Kind Status (default 503).
	StatusCode int
}

// Plan decides the fault for the n-th request (1-based) seen by a Transport.
type Plan interface {
	Decide(n int, req *http.Request) Fault
}

// Rates injects faults pseudo-randomly at the configured per-kind
// probabilities. The decision for request n depends only on (Seed, n), so a
// run is exactly reproducible. Rates are fractions in [0, 1]; their sum
// should stay below 1.
type Rates struct {
	Seed     uint64
	Reset    float64
	Timeout  float64
	Status   float64
	SlowBody float64
	Truncate float64
}

// Decide implements Plan.
func (r Rates) Decide(n int, _ *http.Request) Fault {
	u := unitFloat(splitmix64(r.Seed ^ uint64(n)*0x9e3779b97f4a7c15))
	for _, c := range []struct {
		rate float64
		kind Kind
	}{
		{r.Reset, Reset},
		{r.Timeout, Timeout},
		{r.Status, Status},
		{r.SlowBody, SlowBody},
		{r.Truncate, Truncate},
	} {
		if u < c.rate {
			return Fault{Kind: c.kind}
		}
		u -= c.rate
	}
	return Fault{}
}

// Burst faults every request whose 1-based number falls in [From, To].
type Burst struct {
	From, To int
	Fault    Fault
}

// Schedule composes deterministic bursts over background rates. Bursts take
// precedence. When Match is non-nil, only matching requests are considered
// for injection; the request counter still covers every request, Match just
// exempts non-matching ones from faults.
type Schedule struct {
	Rates  Rates
	Bursts []Burst
	// Match restricts injection to matching requests (nil matches all).
	Match func(*http.Request) bool
}

// Decide implements Plan.
func (s Schedule) Decide(n int, req *http.Request) Fault {
	if s.Match != nil && !s.Match(req) {
		return Fault{}
	}
	for _, b := range s.Bursts {
		if n >= b.From && n <= b.To {
			return b.Fault
		}
	}
	return s.Rates.Decide(n, req)
}

// Toggle is a Plan the test flips on and off to model an outage window with
// exact boundaries. While on, every (matching) request gets Fault.
type Toggle struct {
	mu    sync.Mutex
	on    bool
	fault Fault
	match func(*http.Request) bool
}

// NewToggle returns an off Toggle injecting the given fault when switched
// on. match restricts injection (nil matches all requests).
func NewToggle(f Fault, match func(*http.Request) bool) *Toggle {
	return &Toggle{fault: f, match: match}
}

// Set switches the outage on or off.
func (t *Toggle) Set(on bool) {
	t.mu.Lock()
	t.on = on
	t.mu.Unlock()
}

// Decide implements Plan.
func (t *Toggle) Decide(_ int, req *http.Request) Fault {
	t.mu.Lock()
	on := t.on
	t.mu.Unlock()
	if !on || (t.match != nil && !t.match(req)) {
		return Fault{}
	}
	return t.fault
}

// Stats counts requests and injections per kind.
type Stats struct {
	Requests int
	Injected map[Kind]int
}

// InjectedTotal is the number of requests that received any fault.
func (s Stats) InjectedTotal() int {
	total := 0
	for _, n := range s.Injected {
		total += n
	}
	return total
}

// Transport is the fault-injecting RoundTripper. The zero value passes
// everything through; set Plan to inject.
type Transport struct {
	// Base performs real requests (default http.DefaultTransport).
	Base http.RoundTripper
	// Plan decides per-request faults (nil injects nothing).
	Plan Plan

	mu    sync.Mutex
	n     int
	stats Stats
}

// Stats returns a copy of the injection counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := Stats{Requests: t.stats.Requests, Injected: make(map[Kind]int, len(t.stats.Injected))}
	for k, v := range t.stats.Injected {
		out.Injected[k] = v
	}
	return out
}

// timeoutError is a net.Error with Timeout() true, as returned by real
// transports on I/O deadlines.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultinject: injected i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

var _ net.Error = timeoutError{}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.n++
	n := t.n
	t.stats.Requests++
	var fault Fault
	if t.Plan != nil {
		fault = t.Plan.Decide(n, req)
	}
	if fault.Kind != None {
		if t.stats.Injected == nil {
			t.stats.Injected = make(map[Kind]int)
		}
		t.stats.Injected[fault.Kind]++
	}
	t.mu.Unlock()

	switch fault.Kind {
	case Reset:
		return nil, &net.OpError{Op: "read", Net: "tcp",
			Err: errors.New("faultinject: connection reset by peer")}
	case Timeout:
		return nil, timeoutError{}
	case Status:
		code := fault.StatusCode
		if code == 0 {
			code = http.StatusServiceUnavailable
		}
		return synthesize(req, code), nil
	}

	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return resp, err
	}
	switch fault.Kind {
	case SlowBody:
		resp.Body = &hangingBody{underlying: resp.Body, ctx: req.Context()}
	case Truncate:
		resp.Body = truncatedBody(resp.Body)
		resp.ContentLength = -1
	}
	return resp, nil
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// synthesize builds a server-less HTTP response with the given status.
func synthesize(req *http.Request, code int) *http.Response {
	body := fmt.Sprintf("faultinject: injected status %d", code)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// hangingBody blocks the first Read until the request context is done, then
// reports the context error — a response that never arrives.
type hangingBody struct {
	underlying io.ReadCloser
	ctx        interface{ Done() <-chan struct{}; Err() error }
}

func (b *hangingBody) Read([]byte) (int, error) {
	<-b.ctx.Done()
	return 0, b.ctx.Err()
}

func (b *hangingBody) Close() error { return b.underlying.Close() }

// truncatedBody returns the first half of the underlying body, then EOF.
func truncatedBody(rc io.ReadCloser) io.ReadCloser {
	data, _ := io.ReadAll(rc)
	_ = rc.Close()
	return io.NopCloser(strings.NewReader(string(data[:len(data)/2])))
}

// splitmix64 is the SplitMix64 mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps a uint64 to [0, 1).
func unitFloat(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}
