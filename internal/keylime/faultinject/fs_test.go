package faultinject_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/keylime/faultinject"
)

func TestFaultFSCrashAfterBytesPersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS()
	ffs.CrashAfterBytes = 10
	f, err := ffs.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("12345678")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("crossing write err = %v, want ErrCrashed", err)
	}
	if n != 2 {
		t.Fatalf("crossing write persisted %d bytes, want 2", n)
	}
	if !ffs.Crashed() {
		t.Fatal("FS not marked crashed")
	}
	// Every subsequent operation fails.
	if err := f.Sync(); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("post-crash Sync err = %v", err)
	}
	if _, err := ffs.OpenFile(filepath.Join(dir, "g"), os.O_WRONLY|os.O_CREATE, 0o600); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("post-crash OpenFile err = %v", err)
	}
	if err := ffs.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "h")); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("post-crash Rename err = %v", err)
	}
	_ = f.Close()
	// The surviving bytes are exactly the allowed prefix.
	data, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(data) != "12345678ab" {
		t.Fatalf("surviving bytes = %q, want %q", data, "12345678ab")
	}
}

func TestFaultFSCrashBeforeOp(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS()
	ffs.CrashBeforeOp = 2
	f, err := ffs.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("one")); err != nil { // op 1
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, faultinject.ErrCrashed) { // op 2
		t.Fatalf("write 2 err = %v, want ErrCrashed", err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "f"))
	if string(data) != "one" {
		t.Fatalf("surviving bytes = %q", data)
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS()
	ffs.FailWriteN = 1
	ffs.ShortWriteBytes = 4
	f, err := ffs.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	n, err := f.Write([]byte("longer-than-four"))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 4 {
		t.Fatalf("short write persisted %d bytes, want 4", n)
	}
	// A short write is an error, not a crash: the next write succeeds.
	if _, err := f.Write([]byte("-more")); err != nil {
		t.Fatalf("write after short write: %v", err)
	}
	_ = f.Close()
	data, _ := os.ReadFile(filepath.Join(dir, "f"))
	if string(data) != "long-more" {
		t.Fatalf("file = %q", data)
	}
}

func TestFaultFSFailSyncAndRename(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS()
	ffs.FailSyncN = 1
	ffs.FailRenameN = 1
	f, err := ffs.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("sync 1 err = %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 2: %v", err)
	}
	if err := ffs.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("rename 1 err = %v", err)
	}
	if err := ffs.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g")); err != nil {
		t.Fatalf("rename 2: %v", err)
	}
	_ = f.Close()
}

func TestFaultFSCounters(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS()
	f, _ := ffs.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o600)
	_, _ = f.Write([]byte("12345"))
	_ = f.Sync()
	_ = f.Truncate(2)
	_ = f.Close()
	_ = ffs.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g"))
	_ = ffs.Remove(filepath.Join(dir, "g"))
	c := ffs.Counters()
	if c.Writes != 1 || c.WriteBytes != 5 || c.Syncs != 1 || c.Truncates != 1 ||
		c.Renames != 1 || c.Removes != 1 || c.Opens != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.MutatingOps != 5 {
		t.Fatalf("MutatingOps = %d, want 5", c.MutatingOps)
	}
}
