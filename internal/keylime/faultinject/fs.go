package faultinject

// Filesystem fault injection for the durability layer
// (internal/keylime/store): FaultFS wraps any store.FS and injects short
// writes, write/fsync/rename errors, and — the crash harness — a
// kill-at-byte-offset or kill-before-op "process death". After a kill
// fires, every further operation fails with ErrCrashed while the bytes
// already persisted stay on disk, so a test recovers by opening a fresh
// store over the same directory with a clean FS, exactly like a restarted
// process would.

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"repro/internal/keylime/store"
)

// Errors.
var (
	// ErrCrashed reports that the simulated process died: the operation
	// (and everything after it) never happened.
	ErrCrashed = errors.New("faultinject: simulated crash")
	// ErrInjected is the generic injected I/O failure (disk full, EIO).
	ErrInjected = errors.New("faultinject: injected i/o error")
)

// FSOp enumerates the mutating filesystem operations FaultFS counts.
type FSOp int

// Filesystem operations.
const (
	FSWrite FSOp = iota
	FSSync
	FSRename
	FSTruncate
	FSRemove
	FSOpen
)

var fsOpNames = map[FSOp]string{
	FSWrite:    "write",
	FSSync:     "sync",
	FSRename:   "rename",
	FSTruncate: "truncate",
	FSRemove:   "remove",
	FSOpen:     "open",
}

// String returns the operation label.
func (o FSOp) String() string {
	if n, ok := fsOpNames[o]; ok {
		return n
	}
	return fmt.Sprintf("fsop(%d)", int(o))
}

// FSCounters counts operations seen by a FaultFS. A fault-free pass over
// a workload yields the sweep space for crash-point injection: every op
// index and every written byte offset is a candidate crash point.
type FSCounters struct {
	Writes     int
	WriteBytes int64
	Syncs      int
	Renames    int
	Truncates  int
	Removes    int
	Opens      int
	// MutatingOps is the total across write/sync/rename/truncate/remove —
	// the op-boundary crash sweep space.
	MutatingOps int
}

// FaultFS wraps a store.FS with deterministic fault injection. The zero
// knobs pass everything through (but still count). Not safe to reconfigure
// while in use; safe for concurrent operations.
type FaultFS struct {
	// Base is the real filesystem (default store.OS()).
	Base store.FS

	// CrashAfterBytes kills the process once this many cumulative bytes
	// have been written: the write that crosses the limit persists only
	// the prefix up to it, then fails with ErrCrashed, as does every
	// later operation. 0 disables; note a limit of n crashes *after* n
	// bytes are durable (crash before the very first byte with
	// CrashBeforeOp instead).
	CrashAfterBytes int64

	// CrashBeforeOp kills the process immediately before the n-th
	// (1-based) mutating operation. 0 disables.
	CrashBeforeOp int

	// FailWriteN makes the n-th (1-based) write fail with ErrInjected
	// after persisting only ShortWriteBytes bytes — a short write / disk
	// full. 0 disables.
	FailWriteN      int
	ShortWriteBytes int

	// FailSyncN / FailRenameN fail the n-th fsync / rename with
	// ErrInjected. 0 disables.
	FailSyncN   int
	FailRenameN int

	mu       sync.Mutex
	crashed  bool
	counters FSCounters
}

// NewFaultFS returns a FaultFS over the real filesystem with no faults
// armed; set knobs before use.
func NewFaultFS() *FaultFS { return &FaultFS{Base: store.OS()} }

// Counters returns a copy of the operation counters.
func (f *FaultFS) Counters() FSCounters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counters
}

// Crashed reports whether the simulated process has died.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

func (f *FaultFS) base() store.FS {
	if f.Base != nil {
		return f.Base
	}
	return store.OS()
}

// beforeOp counts a mutating op and decides whether the process dies
// before it executes.
func (f *FaultFS) beforeOp(op FSOp) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.counters.MutatingOps++
	switch op {
	case FSSync:
		f.counters.Syncs++
	case FSRename:
		f.counters.Renames++
	case FSTruncate:
		f.counters.Truncates++
	case FSRemove:
		f.counters.Removes++
	}
	if f.CrashBeforeOp > 0 && f.counters.MutatingOps >= f.CrashBeforeOp {
		f.crashed = true
		return ErrCrashed
	}
	switch op {
	case FSSync:
		if f.FailSyncN > 0 && f.counters.Syncs == f.FailSyncN {
			return ErrInjected
		}
	case FSRename:
		if f.FailRenameN > 0 && f.counters.Renames == f.FailRenameN {
			return ErrInjected
		}
	}
	return nil
}

// decideWrite counts a write of n bytes and returns how many bytes to
// persist and the error to report (nil = full write).
func (f *FaultFS) decideWrite(n int) (allow int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	f.counters.MutatingOps++
	f.counters.Writes++
	if f.CrashBeforeOp > 0 && f.counters.MutatingOps >= f.CrashBeforeOp {
		f.crashed = true
		return 0, ErrCrashed
	}
	allow = n
	if f.CrashAfterBytes > 0 {
		remaining := f.CrashAfterBytes - f.counters.WriteBytes
		if remaining < int64(n) {
			if remaining < 0 {
				remaining = 0
			}
			allow = int(remaining)
			f.crashed = true
			err = ErrCrashed
		}
	}
	if err == nil && f.FailWriteN > 0 && f.counters.Writes == f.FailWriteN {
		if f.ShortWriteBytes < allow {
			allow = f.ShortWriteBytes
		}
		if allow < 0 {
			allow = 0
		}
		err = ErrInjected
	}
	f.counters.WriteBytes += int64(allow)
	return allow, err
}

// OpenFile implements store.FS.
func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (store.File, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	f.counters.Opens++
	f.mu.Unlock()
	file, err := f.base().OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

// ReadFile implements store.FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.base().ReadFile(name)
}

// Rename implements store.FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.beforeOp(FSRename); err != nil {
		return err
	}
	return f.base().Rename(oldpath, newpath)
}

// Remove implements store.FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.beforeOp(FSRemove); err != nil {
		return err
	}
	return f.base().Remove(name)
}

// MkdirAll implements store.FS.
func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return f.base().MkdirAll(path, perm)
}

// Stat implements store.FS.
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.base().Stat(name)
}

// SyncDir implements store.FS.
func (f *FaultFS) SyncDir(name string) error {
	if err := f.beforeOp(FSSync); err != nil {
		return err
	}
	return f.base().SyncDir(name)
}

// faultFile wraps a store.File with the owning FaultFS's decisions.
type faultFile struct {
	fs *FaultFS
	f  store.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	allow, err := ff.fs.decideWrite(len(p))
	if allow > 0 {
		n, werr := ff.f.Write(p[:allow])
		// Persist-what-we-can semantics: the prefix reaches the file even
		// when the injected fault then reports failure.
		if werr != nil {
			return n, werr
		}
		if err == nil {
			return n, nil
		}
		return n, err
	}
	if err == nil {
		return 0, nil
	}
	return 0, err
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.beforeOp(FSSync); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.fs.beforeOp(FSTruncate); err != nil {
		return err
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Close() error {
	// Close is not a durability point; it always reaches the real file so
	// descriptors are not leaked mid-test.
	return ff.f.Close()
}
