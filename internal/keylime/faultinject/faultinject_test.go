package faultinject

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func upstream(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, tr *Transport, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	return tr.RoundTrip(req)
}

func TestPassThroughWithoutPlan(t *testing.T) {
	srv := upstream(t, "hello")
	tr := &Transport{}
	resp, err := get(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if string(body) != "hello" {
		t.Fatalf("body = %q", body)
	}
	st := tr.Stats()
	if st.Requests != 1 || st.InjectedTotal() != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResetAndTimeoutFaults(t *testing.T) {
	srv := upstream(t, "x")
	tr := &Transport{Plan: Schedule{Bursts: []Burst{
		{From: 1, To: 1, Fault: Fault{Kind: Reset}},
		{From: 2, To: 2, Fault: Fault{Kind: Timeout}},
	}}}
	if _, err := get(t, tr, srv.URL); err == nil {
		t.Fatal("reset fault returned no error")
	} else {
		var op *net.OpError
		if !errors.As(err, &op) {
			t.Fatalf("reset error = %T %v, want *net.OpError", err, err)
		}
	}
	if _, err := get(t, tr, srv.URL); err == nil {
		t.Fatal("timeout fault returned no error")
	} else {
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("timeout error = %v, want net.Error with Timeout()", err)
		}
	}
	// Burst over: the third request succeeds.
	resp, err := get(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("post-burst RoundTrip: %v", err)
	}
	_ = resp.Body.Close()
	st := tr.Stats()
	if st.Requests != 3 || st.Injected[Reset] != 1 || st.Injected[Timeout] != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStatusFaultNeverHitsUpstream(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) { hits++ }))
	defer srv.Close()
	tr := &Transport{Plan: Burstless503{}}
	resp, err := get(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if hits != 0 {
		t.Fatalf("upstream hit %d times, want 0", hits)
	}
}

// Burstless503 is a Plan that always answers 503.
type Burstless503 struct{}

func (Burstless503) Decide(int, *http.Request) Fault { return Fault{Kind: Status} }

func TestSlowBodyBlocksUntilContextDone(t *testing.T) {
	srv := upstream(t, "slow")
	tr := &Transport{Plan: Schedule{Bursts: []Burst{{From: 1, To: 1, Fault: Fault{Kind: SlowBody}}}}}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	read := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(resp.Body)
		read <- err
	}()
	select {
	case err := <-read:
		t.Fatalf("slow body read returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-read:
		if err == nil {
			t.Fatal("slow body read succeeded after cancel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("slow body read did not unblock on context cancel")
	}
}

func TestTruncateCutsBodyInHalf(t *testing.T) {
	srv := upstream(t, "0123456789")
	tr := &Transport{Plan: Schedule{Bursts: []Burst{{From: 1, To: 1, Fault: Fault{Kind: Truncate}}}}}
	resp, err := get(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if string(body) != "01234" {
		t.Fatalf("truncated body = %q, want first half", body)
	}
}

func TestRatesAreDeterministicAndRoughlyCalibrated(t *testing.T) {
	r := Rates{Seed: 42, Reset: 0.05, Timeout: 0.05, Status: 0.05}
	const n = 10000
	counts := map[Kind]int{}
	for i := 1; i <= n; i++ {
		counts[r.Decide(i, nil).Kind]++
	}
	// Re-running the same schedule yields the identical decision sequence.
	for i := 1; i <= 100; i++ {
		if r.Decide(i, nil) != r.Decide(i, nil) {
			t.Fatalf("Decide(%d) not deterministic", i)
		}
	}
	total := counts[Reset] + counts[Timeout] + counts[Status]
	if frac := float64(total) / n; frac < 0.10 || frac > 0.20 {
		t.Fatalf("injected fraction = %.3f, want ~0.15", frac)
	}
	for _, k := range []Kind{Reset, Timeout, Status} {
		if frac := float64(counts[k]) / n; frac < 0.02 || frac > 0.09 {
			t.Fatalf("kind %v fraction = %.3f, want ~0.05", k, frac)
		}
	}
}

func TestScheduleMatchExemptsRequests(t *testing.T) {
	srv := upstream(t, "ok")
	tr := &Transport{Plan: Schedule{
		Bursts: []Burst{{From: 1, To: 1000, Fault: Fault{Kind: Reset}}},
		Match:  func(req *http.Request) bool { return strings.Contains(req.URL.Path, "/quotes/") },
	}}
	resp, err := get(t, tr, srv.URL+"/v2/agents/x")
	if err != nil {
		t.Fatalf("non-matching request faulted: %v", err)
	}
	_ = resp.Body.Close()
	if _, err := get(t, tr, srv.URL+"/v2/quotes/integrity"); err == nil {
		t.Fatal("matching request not faulted")
	}
}

func TestToggle(t *testing.T) {
	srv := upstream(t, "ok")
	tg := NewToggle(Fault{Kind: Reset}, nil)
	tr := &Transport{Plan: tg}
	if resp, err := get(t, tr, srv.URL); err != nil {
		t.Fatalf("request with toggle off: %v", err)
	} else {
		_ = resp.Body.Close()
	}
	tg.Set(true)
	if _, err := get(t, tr, srv.URL); err == nil {
		t.Fatal("request with toggle on did not fault")
	}
	tg.Set(false)
	if resp, err := get(t, tr, srv.URL); err != nil {
		t.Fatalf("request after toggle off: %v", err)
	} else {
		_ = resp.Body.Close()
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", Reset: "reset", Timeout: "timeout",
		Status: "status", SlowBody: "slow-body", Truncate: "truncate",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Fatalf("unknown kind = %q", got)
	}
}
