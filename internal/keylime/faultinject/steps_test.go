package faultinject

import (
	"errors"
	"fmt"
	"testing"
)

func TestStepHookRecordsAndCrashes(t *testing.T) {
	h := NewStepHook()
	run := func() error {
		for _, name := range []string{"gate", "apply", "commit"} {
			if err := h.Step(name); err != nil {
				return err
			}
		}
		return nil
	}

	// Fault-free discovery pass records the full sequence.
	if err := run(); err != nil {
		t.Fatalf("unarmed run failed: %v", err)
	}
	steps := h.Steps()
	if len(steps) != 3 || steps[1] != "apply" {
		t.Fatalf("recorded steps = %v", steps)
	}

	// Sweep: armed at each index, the run fails exactly there.
	for n := 1; n <= len(steps); n++ {
		h.Reset()
		h.ArmCrash(n)
		err := run()
		if !errors.Is(err, ErrStepCrash) {
			t.Fatalf("crash at %d: err = %v", n, err)
		}
		if got := len(h.Steps()); got != n {
			t.Fatalf("crash at %d: %d steps executed", n, got)
		}
	}
}

func TestStepHookArmError(t *testing.T) {
	h := NewStepHook()
	custom := fmt.Errorf("disk full")
	h.ArmError(2, custom)
	if err := h.Step("one"); err != nil {
		t.Fatalf("step 1: %v", err)
	}
	if err := h.Step("two"); !errors.Is(err, custom) {
		t.Fatalf("step 2: err = %v, want %v", err, custom)
	}
}

func TestStepHookNilReceiver(t *testing.T) {
	var h *StepHook
	if err := h.Step("anything"); err != nil {
		t.Fatalf("nil hook: %v", err)
	}
}
