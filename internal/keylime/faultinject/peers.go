package faultinject

// Cluster-level fault injection: peer death and network partitions. The
// cluster package's in-memory transport consults a PeerFaults before
// delivering any peer-to-peer message, so chaos tests can kill a verifier
// replica (it stops answering entirely, as a crashed process would),
// partition the cluster into isolated groups (messages cross a partition
// boundary in neither direction), and later heal the fault — all
// deterministically, with per-link drop counters for assertions.
//
// The zero value and a nil receiver are both fully connected: callers
// thread pf.Allow unconditionally, exactly like StepHook.Step.

import "sync"

// PeerFaults decides which peer-to-peer links are currently up.
type PeerFaults struct {
	mu     sync.Mutex
	dead   map[string]bool
	group  map[string]int // partition group per peer; absent = group 0
	parted bool
	drops  map[string]int // "from->to" drop counts
}

// NewPeerFaults returns a fully connected fault plane.
func NewPeerFaults() *PeerFaults {
	return &PeerFaults{
		dead:  make(map[string]bool),
		group: make(map[string]int),
		drops: make(map[string]int),
	}
}

// KillPeer makes the peer unreachable in both directions: messages to it
// are dropped, and messages from it are dropped too (a dead process sends
// nothing, but tests drive nodes from goroutines that may still try).
func (p *PeerFaults) KillPeer(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dead[id] = true
}

// Revive restores a killed peer.
func (p *PeerFaults) Revive(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.dead, id)
}

// Partition splits the cluster: peers within a group still reach each
// other, peers in different groups do not. Peers in no listed group form
// an implicit extra group together. Partition replaces any previous
// partition; it does not touch killed peers.
func (p *PeerFaults) Partition(groups ...[]string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.group = make(map[string]int)
	for i, g := range groups {
		for _, id := range g {
			p.group[id] = i + 1
		}
	}
	p.parted = true
}

// Heal removes any partition (killed peers stay dead).
func (p *PeerFaults) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.group = make(map[string]int)
	p.parted = false
}

// Allow reports whether a message from one peer can currently reach
// another, counting the drop when it cannot. A nil receiver allows
// everything.
func (p *PeerFaults) Allow(from, to string) bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	blocked := p.dead[from] || p.dead[to] ||
		(p.parted && p.group[from] != p.group[to])
	if blocked {
		if p.drops == nil {
			p.drops = make(map[string]int)
		}
		p.drops[from+"->"+to]++
		return false
	}
	return true
}

// Dead reports whether the peer is currently killed.
func (p *PeerFaults) Dead(id string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead[id]
}

// Drops returns the per-link drop counters, keyed "from->to".
func (p *PeerFaults) Drops() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.drops))
	for k, v := range p.drops {
		out[k] = v
	}
	return out
}
