package faultinject

import "testing"

func TestPeerFaultsNilAndZeroAllow(t *testing.T) {
	var nilPF *PeerFaults
	if !nilPF.Allow("a", "b") {
		t.Fatalf("nil PeerFaults blocked a->b")
	}
	if nilPF.Dead("a") {
		t.Fatalf("nil PeerFaults reported a dead")
	}
	pf := NewPeerFaults()
	if !pf.Allow("a", "b") || !pf.Allow("b", "a") {
		t.Fatalf("fresh PeerFaults blocked traffic")
	}
	if len(pf.Drops()) != 0 {
		t.Fatalf("fresh PeerFaults recorded drops: %v", pf.Drops())
	}
}

func TestPeerFaultsKillRevive(t *testing.T) {
	pf := NewPeerFaults()
	pf.KillPeer("b")
	if pf.Allow("a", "b") {
		t.Fatalf("message to killed peer delivered")
	}
	if pf.Allow("b", "a") {
		t.Fatalf("message from killed peer delivered")
	}
	if !pf.Allow("a", "c") {
		t.Fatalf("unrelated link blocked by kill")
	}
	if !pf.Dead("b") || pf.Dead("a") {
		t.Fatalf("Dead() wrong: b=%v a=%v", pf.Dead("b"), pf.Dead("a"))
	}
	drops := pf.Drops()
	if drops["a->b"] != 1 || drops["b->a"] != 1 {
		t.Fatalf("drop counters = %v, want a->b and b->a once each", drops)
	}
	pf.Revive("b")
	if !pf.Allow("a", "b") {
		t.Fatalf("revived peer still unreachable")
	}
}

func TestPeerFaultsPartition(t *testing.T) {
	pf := NewPeerFaults()
	pf.Partition([]string{"a", "b"}, []string{"c"})
	if !pf.Allow("a", "b") || !pf.Allow("b", "a") {
		t.Fatalf("intra-group link blocked")
	}
	if pf.Allow("a", "c") || pf.Allow("c", "b") {
		t.Fatalf("cross-partition link delivered")
	}
	// An unlisted peer lands in the implicit extra group: cut off from
	// both named groups, but connected to other unlisted peers.
	if pf.Allow("a", "d") || pf.Allow("d", "c") {
		t.Fatalf("unlisted peer reached a named group")
	}
	if !pf.Allow("d", "e") {
		t.Fatalf("two unlisted peers blocked from each other")
	}
	pf.Heal()
	if !pf.Allow("a", "c") {
		t.Fatalf("healed partition still blocking")
	}
}

func TestPeerFaultsPartitionPreservesKills(t *testing.T) {
	pf := NewPeerFaults()
	pf.KillPeer("a")
	pf.Partition([]string{"a", "b"})
	if pf.Allow("b", "a") {
		t.Fatalf("partition revived a killed peer")
	}
	pf.Heal()
	if pf.Allow("b", "a") {
		t.Fatalf("heal revived a killed peer")
	}
	pf.Revive("a")
	if !pf.Allow("b", "a") {
		t.Fatalf("revive after heal did not restore the link")
	}
}
