package custody

// Tamper-injection chaos suite: every class of attack the chain of
// custody claims to catch is injected for real — bit flips at every
// byte offset, frame splices, reorders, replays, wholesale chain
// rewrites with and without forged signatures — and the verification
// walk must pinpoint the first tampered record (index, byte offset,
// taxonomy class) with zero false verdicts in either direction: the
// untampered artifact always verifies, and no tamper is ever reported
// against a record that precedes it.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/keylime/audit"
	"repro/internal/keylime/dsse"
	"repro/internal/keylime/store"
	"repro/internal/keylime/webhook"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frame encodes one journal record frame (length + CRC32C + payload),
// mirroring the store framing so tests can reassemble tampered files.
func frame(payload []byte) []byte {
	buf := make([]byte, 8, 8+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// reassemble builds a journal file from record payloads.
func reassemble(payloads [][]byte) []byte {
	out := []byte("KLJRNL01")
	for _, p := range payloads {
		out = append(out, frame(p)...)
	}
	return out
}

func baseTime() time.Time {
	return time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
}

// buildSealedJournal writes a checkpoint-sealed audit journal with a
// key rotation mid-run: three sweeps under key 1, rotate, three more
// cosigned by keys 1+2. The keyring itself is journaled to disk so the
// verify side can load it the way verify-chain would.
func buildSealedJournal(t *testing.T, dir string) (journalPath, keyringPath string, kr *dsse.Keyring) {
	t.Helper()
	journalPath = filepath.Join(dir, "audit.log")
	keyringPath = filepath.Join(dir, "keyring.wal")
	kr, err := dsse.OpenKeyring(store.OS(), keyringPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kr.Rotate(); err != nil {
		t.Fatal(err)
	}
	jl, err := audit.OpenJournal(store.OS(), journalPath)
	if err != nil {
		t.Fatal(err)
	}
	jl.SealCheckpoints(kr)
	sweep := func(n int) {
		t.Helper()
		entries := make([]audit.Entry, n)
		for i := range entries {
			entries[i] = audit.Entry{
				Time:    baseTime(),
				AgentID: fmt.Sprintf("agent-%d", i),
				Outcome: audit.OutcomePass,
			}
		}
		if _, err := jl.Log.AppendBatch(entries); err != nil {
			t.Fatal(err)
		}
	}
	sweep(3)
	sweep(2)
	sweep(3)
	if _, err := kr.Rotate(); err != nil { // keyid boundary mid-run
		t.Fatal(err)
	}
	sweep(2)
	sweep(3)
	sweep(2)
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	return journalPath, keyringPath, kr
}

// TestChaosBitFlipEveryByte flips one bit at every byte offset of a
// sealed journal and demands the walk land exactly on the damaged
// frame: header flips class as bad-header, every other flip pinpoints
// the frame containing the flipped byte.
func TestChaosBitFlipEveryByte(t *testing.T) {
	path, _, kr := buildSealedJournal(t, t.TempDir())
	data, err := store.OS().ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frames, _, err := store.ScanRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	// Control: the untampered journal verifies end to end.
	clean := audit.VerifyJournalBytes(data, kr)
	if !clean.OK() {
		t.Fatalf("control journal broken: %s", clean.FirstBad)
	}
	if clean.SignedThrough < 0 || clean.VerifiedCheckpoints != clean.Checkpoints {
		t.Fatalf("control: %d/%d checkpoints verified, signed through %d",
			clean.VerifiedCheckpoints, clean.Checkpoints, clean.SignedThrough)
	}

	frameOf := func(off int) (idx int, start int64) {
		for _, fr := range frames {
			end := fr.Offset + 8 + int64(len(fr.Payload))
			if int64(off) >= fr.Offset && int64(off) < end {
				return fr.Index, fr.Offset
			}
		}
		return -1, -1
	}
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 1 << (i % 8)
		rep := audit.VerifyJournalBytes(mut, kr)
		if rep.OK() {
			t.Fatalf("flip at byte %d went undetected", i)
		}
		bad := rep.FirstBad
		if i < 8 {
			if bad.Class != audit.BadHeader {
				t.Fatalf("flip at header byte %d: class %s, want %s", i, bad.Class, audit.BadHeader)
			}
			continue
		}
		wantIdx, wantOff := frameOf(i)
		if bad.Index != wantIdx || bad.Offset != wantOff {
			t.Fatalf("flip at byte %d: reported record %d offset %d, want record %d offset %d (class %s: %s)",
				i, bad.Index, bad.Offset, wantIdx, wantOff, bad.Class, bad.Detail)
		}
	}
}

// TestChaosSpliceReorderReplay rebuilds the journal with valid framing
// (the attacker recomputes CRCs) and tampered record structure; the
// hash chain must break at exactly the first displaced record.
func TestChaosSpliceReorderReplay(t *testing.T) {
	path, _, kr := buildSealedJournal(t, t.TempDir())
	data, err := store.OS().ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frames, _, err := store.ScanRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, len(frames))
	recordIdx := []int{} // indices of chain-record (non-checkpoint) frames
	for i, fr := range frames {
		payloads[i] = fr.Payload
		var probe struct {
			Checkpoint json.RawMessage `json:"checkpoint"`
		}
		if json.Unmarshal(fr.Payload, &probe) != nil || probe.Checkpoint == nil {
			recordIdx = append(recordIdx, i)
		}
	}
	if len(recordIdx) < 6 {
		t.Fatalf("need at least 6 records, have %d", len(recordIdx))
	}

	cases := []struct {
		name      string
		mutate    func(p [][]byte) [][]byte
		wantIdx   int // expected FirstBad.Index
		wantClass string
	}{
		{
			name: "reorder two records",
			mutate: func(p [][]byte) [][]byte {
				a, b := recordIdx[2], recordIdx[4]
				p[a], p[b] = p[b], p[a]
				return p
			},
			wantIdx: recordIdx[2], wantClass: audit.BadOutOfOrder,
		},
		{
			name: "replay a record",
			mutate: func(p [][]byte) [][]byte {
				dup := recordIdx[3]
				out := append([][]byte{}, p[:dup+1]...)
				out = append(out, p[dup]) // same record twice
				return append(out, p[dup+1:]...)
			},
			wantIdx: recordIdx[3] + 1, wantClass: audit.BadOutOfOrder,
		},
		{
			name: "drop a record",
			mutate: func(p [][]byte) [][]byte {
				cut := recordIdx[3]
				return append(append([][]byte{}, p[:cut]...), p[cut+1:]...)
			},
			wantIdx: recordIdx[3], wantClass: audit.BadOutOfOrder,
		},
		{
			name: "splice forged content",
			mutate: func(p [][]byte) [][]byte {
				var r audit.Record
				if err := json.Unmarshal(p[recordIdx[3]], &r); err != nil {
					t.Fatal(err)
				}
				r.Outcome = audit.OutcomePass
				r.AgentID = "agent-innocent"
				forged, _ := json.Marshal(r)
				p[recordIdx[3]] = forged
				return p
			},
			wantIdx: recordIdx[3], wantClass: audit.BadChainBroken,
		},
	}
	for _, tc := range cases {
		cp := make([][]byte, len(payloads))
		for i, p := range payloads {
			cp[i] = append([]byte(nil), p...)
		}
		mut := reassemble(tc.mutate(cp))
		rep := audit.VerifyJournalBytes(mut, kr)
		if rep.OK() {
			t.Fatalf("%s: undetected", tc.name)
		}
		if rep.FirstBad.Index != tc.wantIdx || rep.FirstBad.Class != tc.wantClass {
			t.Fatalf("%s: first bad = record %d class %s (%s), want record %d class %s",
				tc.name, rep.FirstBad.Index, rep.FirstBad.Class, rep.FirstBad.Detail, tc.wantIdx, tc.wantClass)
		}
	}
}

// TestChaosWholesaleRewrite regenerates the entire hash chain with one
// verdict flipped — every seq, prev-hash, and seal internally
// consistent, exactly what an attacker with file access but no signing
// key can produce. The original checkpoints must then disagree with the
// forged head; a checkpoint re-signed by the attacker's own key must
// fail as signature-failure; and stripping checkpoints entirely must
// leave the signature coverage gap visible (SignedThrough regresses to
// -1), never a silently "verified" journal.
func TestChaosWholesaleRewrite(t *testing.T) {
	path, _, kr := buildSealedJournal(t, t.TempDir())
	data, err := store.OS().ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frames, _, err := store.ScanRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	// Partition frames; collect the original records as entries.
	type slot struct {
		checkpoint bool
		payload    []byte
	}
	var slots []slot
	var entries []audit.Entry
	firstCPIdx := -1
	for i, fr := range frames {
		var probe struct {
			Checkpoint json.RawMessage `json:"checkpoint"`
		}
		if json.Unmarshal(fr.Payload, &probe) == nil && probe.Checkpoint != nil {
			if firstCPIdx < 0 {
				firstCPIdx = i
			}
			slots = append(slots, slot{checkpoint: true, payload: fr.Payload})
			continue
		}
		var r audit.Record
		if err := json.Unmarshal(fr.Payload, &r); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, audit.Entry{
			Time: r.Time, AgentID: r.AgentID, Outcome: r.Outcome,
			FailureType: r.FailureType, FailurePath: r.FailurePath,
			NewEntries: r.NewEntries, VerifiedEntries: r.VerifiedEntries,
			RebootDetected: r.RebootDetected, CheckLevel: r.CheckLevel,
		})
		slots = append(slots, slot{payload: nil})
	}
	// Forge: flip record 0's identity and regenerate a fully consistent
	// chain from scratch (the attacker owns no key, only the file).
	entries[0].AgentID = "agent-ghost"
	forgedLog := audit.NewLog()
	var forged []audit.Record
	for _, e := range entries {
		r, err := forgedLog.Append(e)
		if err != nil {
			t.Fatal(err)
		}
		forged = append(forged, r)
	}
	rebuild := func(keepCheckpoints bool, resign *dsse.Keyring) [][]byte {
		var out [][]byte
		ri := 0
		var lastForged audit.Record
		for _, s := range slots {
			if !s.checkpoint {
				p, _ := json.Marshal(forged[ri])
				lastForged = forged[ri]
				ri++
				out = append(out, p)
				continue
			}
			if !keepCheckpoints {
				continue
			}
			p := s.payload
			if resign != nil {
				body, _ := json.Marshal(map[string]string{
					"seq":  fmt.Sprint(lastForged.Seq),
					"head": fmt.Sprintf("%x", lastForged.Hash[:]),
				})
				env, err := resign.Sign(audit.CheckpointPayloadType, body)
				if err != nil {
					t.Fatal(err)
				}
				envJSON, _ := json.Marshal(env)
				p = []byte(fmt.Sprintf(`{"checkpoint":%s}`, envJSON))
			}
			out = append(out, p)
		}
		return out
	}

	// Original checkpoints over a rewritten chain: head disagreement at
	// the first checkpoint.
	rep := audit.VerifyJournalBytes(reassemble(rebuild(true, nil)), kr)
	if rep.OK() || rep.FirstBad.Class != audit.BadCheckpoint {
		t.Fatalf("rewrite kept original checkpoints: %+v, want %s", rep.FirstBad, audit.BadCheckpoint)
	}
	if rep.FirstBad.Index != firstCPIdx {
		t.Fatalf("rewrite detected at record %d, want first checkpoint %d", rep.FirstBad.Index, firstCPIdx)
	}

	// Attacker re-signs checkpoints with their own key: signature
	// failure, its own verdict class — never a pass, never an agent
	// integrity verdict.
	evil := dsse.NewKeyring()
	if _, err := evil.Rotate(); err != nil {
		t.Fatal(err)
	}
	rep = audit.VerifyJournalBytes(reassemble(rebuild(true, evil)), kr)
	if rep.OK() || rep.FirstBad.Class != audit.BadSignature {
		t.Fatalf("forged-key checkpoints: %+v, want %s", rep.FirstBad, audit.BadSignature)
	}

	// Checkpoints stripped: the chain itself is consistent, so the walk
	// reports structural OK — but the coverage gap is explicit, which is
	// what an operator alerts on when a keyring is configured.
	rep = audit.VerifyJournalBytes(reassemble(rebuild(false, nil)), kr)
	if !rep.OK() {
		t.Fatalf("stripped checkpoints: unexpected %+v (chain is internally valid)", rep.FirstBad)
	}
	if rep.SignedThrough != -1 || rep.Checkpoints != 0 {
		t.Fatalf("stripped checkpoints: SignedThrough %d, Checkpoints %d — coverage gap must be visible",
			rep.SignedThrough, rep.Checkpoints)
	}
}

// TestChaosRotationBoundaryAndLoadedKeyring verifies the full walk with
// a keyring re-loaded from its own journal (the verify-chain path): the
// mid-run rotation must not break verification on either side of the
// keyid boundary, and retiring the first key afterwards keeps the
// cosigned suffix verifiable.
func TestChaosRotationBoundaryAndLoadedKeyring(t *testing.T) {
	dir := t.TempDir()
	path, krPath, live := buildSealedJournal(t, dir)
	loaded, err := dsse.LoadKeyringFile(store.OS(), krPath)
	if err != nil {
		t.Fatal(err)
	}
	data, err := store.OS().ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := audit.VerifyJournalBytes(data, loaded)
	if !rep.OK() {
		t.Fatalf("loaded keyring: %s", rep.FirstBad)
	}
	if rep.VerifiedCheckpoints != rep.Checkpoints || rep.Checkpoints == 0 {
		t.Fatalf("loaded keyring verified %d/%d checkpoints", rep.VerifiedCheckpoints, rep.Checkpoints)
	}
	// Retire the pre-rotation key on the loaded ring: checkpoints sealed
	// before the keyid boundary lose their only trusted signature, and
	// that must surface as a signature failure at the first such
	// checkpoint — never silent acceptance. (Post-boundary checkpoints
	// are cosigned by the new key and would still verify.)
	pubs := live.PublicKeys()
	if len(pubs) != 2 {
		t.Fatalf("keyring holds %d keys, want 2", len(pubs))
	}
	oldID := dsse.KeyID(pubs[0])
	if oldID == loaded.ActiveKeyID() {
		oldID = dsse.KeyID(pubs[1])
	}
	if err := loaded.Retire(oldID); err != nil {
		t.Fatal(err)
	}
	rep = audit.VerifyJournalBytes(data, loaded)
	if rep.OK() || rep.FirstBad.Class != audit.BadSignature {
		t.Fatalf("retired-key checkpoint: %+v, want %s", rep.FirstBad, audit.BadSignature)
	}
}

// TestChaosCustodyWalkPinpointsArtifact drives the aggregate walk the
// CLI uses: audit + outbox together, tamper exactly one artifact, and
// the report must name that artifact and the record inside it.
func TestChaosCustodyWalkPinpointsArtifact(t *testing.T) {
	dir := t.TempDir()
	auditPath, krPath, kr := buildSealedJournal(t, dir)

	// Outbox with sealed revocations.
	outboxPath := filepath.Join(dir, "outbox.wal")
	ob, err := webhook.OpenOutbox(store.OS(), outboxPath)
	if err != nil {
		t.Fatal(err)
	}
	var deliveries []webhook.PendingDelivery
	for i := 0; i < 4; i++ {
		note := webhook.Notification{
			AgentID: fmt.Sprintf("agent-%d", i), Type: "revocation",
			Detail: "integrity failure", Time: baseTime(),
			DedupKey: fmt.Sprintf("dk-%d", i),
		}
		body, _ := json.Marshal(note)
		env, err := kr.Sign(webhook.RevocationPayloadType, body)
		if err != nil {
			t.Fatal(err)
		}
		envJSON, _ := dsse.Encode(env)
		deliveries = append(deliveries, webhook.PendingDelivery{
			Endpoint: "http://hook.example/revocations", Note: note, Env: envJSON,
		})
	}
	if err := ob.EnqueueBatch(deliveries); err != nil {
		t.Fatal(err)
	}
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := dsse.LoadKeyringFile(store.OS(), krPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{AuditLog: auditPath, Outbox: outboxPath, Keyring: loaded}
	rep, err := Verify(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean walk broken: %s", rep.FirstBroken)
	}
	if rep.Outbox.Signed != 4 || rep.Outbox.Unsigned != 0 {
		t.Fatalf("outbox report: %+v", rep.Outbox)
	}

	// Tamper the outbox only: swap one sealed notification's agent for
	// another (suppressing the real culprit's revocation).
	data, err := store.OS().ReadFile(outboxPath)
	if err != nil {
		t.Fatal(err)
	}
	frames, _, err := store.ScanRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, len(frames))
	for i, fr := range frames {
		payloads[i] = fr.Payload
	}
	var rec map[string]json.RawMessage
	if err := json.Unmarshal(payloads[2], &rec); err != nil {
		t.Fatal(err)
	}
	var note webhook.Notification
	if err := json.Unmarshal(rec["note"], &note); err != nil {
		t.Fatal(err)
	}
	note.AgentID = "agent-innocent"
	nb, _ := json.Marshal(note)
	rec["note"] = nb
	payloads[2], _ = json.Marshal(rec)
	if err := os.WriteFile(outboxPath, reassemble(payloads), 0o600); err != nil {
		t.Fatal(err)
	}

	rep, err = Verify(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("tampered outbox passed the walk")
	}
	fb := rep.FirstBroken
	if fb.Artifact != "outbox" || fb.Index != 2 {
		t.Fatalf("first broken = %+v, want outbox record 2", fb)
	}
	if fb.Class != webhook.OutboxBadMismatch {
		t.Fatalf("class = %s, want %s", fb.Class, webhook.OutboxBadMismatch)
	}
	// The audit side of the same walk still verifies — tampering one
	// artifact never contaminates the verdict on another.
	if rep.Audit == nil || rep.Audit.FirstBad != nil {
		t.Fatalf("audit verdict polluted: %+v", rep.Audit)
	}
}
