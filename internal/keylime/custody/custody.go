// Package custody walks the full evidence chain of custody offline:
// the sealed audit journal, the revocation outbox, and the journaled
// rollout state. It is the engine behind `keylime-tenant verify-chain`.
//
// Each artifact is verified independently with the layered defenses its
// package provides (frame CRCs, hash chain, DSSE seals); the aggregate
// report names the first broken link per artifact — which record, at
// which byte offset, broken how — so an operator lands on the exact
// bytes to inspect rather than a boolean. Signature failures are their
// own verdict class throughout: a broken seal quarantines the artifact
// and alerts, it never silently passes and never turns into a fabricated
// agent-integrity verdict.
package custody

import (
	"fmt"
	"strings"

	"repro/internal/keylime/audit"
	"repro/internal/keylime/dsse"
	"repro/internal/keylime/rollout"
	"repro/internal/keylime/store"
	"repro/internal/keylime/webhook"
)

// Config names the artifacts to walk. Empty paths are skipped (the
// operator verifies whatever subset they have on hand).
type Config struct {
	// AuditLog is the sealed audit journal file.
	AuditLog string
	// Outbox is the revocation outbox journal file.
	Outbox string
	// RolloutState is the rollout controller's store directory.
	RolloutState string
	// Keyring supplies trust anchors for every DSSE check; nil verifies
	// structure (framing, hash chain, head consistency) only.
	Keyring *dsse.Keyring
	// FS defaults to the real filesystem.
	FS store.FS
}

// Broken identifies the first broken link of the whole walk.
type Broken struct {
	// Artifact is "audit", "outbox", or "rollout".
	Artifact string `json:"artifact"`
	// Index and Offset locate the record inside the artifact (both -1
	// when the artifact has no record granularity, e.g. rollout state).
	Index  int   `json:"index"`
	Offset int64 `json:"offset"`
	// Class is the artifact's taxonomy class (signature-failure,
	// chain-broken, torn-frame, ...).
	Class  string `json:"class"`
	Detail string `json:"detail"`
}

func (b *Broken) String() string {
	loc := ""
	if b.Index >= 0 {
		loc = fmt.Sprintf(" at record %d (byte offset %d)", b.Index, b.Offset)
	}
	return fmt.Sprintf("%s%s: %s: %s", b.Artifact, loc, b.Class, b.Detail)
}

// Report aggregates the per-artifact verifications.
type Report struct {
	Audit   *audit.JournalReport  `json:"audit,omitempty"`
	Outbox  *webhook.OutboxReport `json:"outbox,omitempty"`
	Rollout *rollout.StateReport  `json:"rollout,omitempty"`
	// FirstBroken is the first failing link across the walked artifacts
	// (walk order: audit, outbox, rollout); nil when everything verifies.
	FirstBroken *Broken `json:"first_broken,omitempty"`
}

// OK reports whether every walked artifact verified.
func (r *Report) OK() bool { return r.FirstBroken == nil }

// Summary renders an operator-facing multi-line account of the walk.
func (r *Report) Summary() string {
	var b strings.Builder
	if r.Audit != nil {
		fmt.Fprintf(&b, "audit:   %d records, %d checkpoints (%d verified), signed through seq %d",
			r.Audit.Records, r.Audit.Checkpoints, r.Audit.VerifiedCheckpoints, r.Audit.SignedThrough)
		if r.Audit.FirstBad != nil {
			fmt.Fprintf(&b, "\n         BROKEN: %s", r.Audit.FirstBad)
		}
		b.WriteByte('\n')
	}
	if r.Outbox != nil {
		fmt.Fprintf(&b, "outbox:  %d records (%d enqueues: %d signed, %d unsigned; %d acks)",
			r.Outbox.Records, r.Outbox.Enqueues, r.Outbox.Signed, r.Outbox.Unsigned, r.Outbox.Acks)
		if r.Outbox.FirstBad != nil {
			fmt.Fprintf(&b, "\n         BROKEN: %s", r.Outbox.FirstBad)
		}
		b.WriteByte('\n')
	}
	if r.Rollout != nil {
		switch {
		case !r.Rollout.InFlight:
			b.WriteString("rollout: idle (no in-flight record)")
		case r.Rollout.OK():
			fmt.Fprintf(&b, "rollout: generation %d at stage %s, bundle verified", r.Rollout.Gen, r.Rollout.Stage)
		default:
			fmt.Fprintf(&b, "rollout: BROKEN: %s: %s", r.Rollout.Class, r.Rollout.Detail)
		}
		b.WriteByte('\n')
	}
	if r.FirstBroken != nil {
		fmt.Fprintf(&b, "FIRST BROKEN LINK: %s\n", r.FirstBroken)
	} else {
		b.WriteString("chain of custody intact\n")
	}
	return b.String()
}

// Verify walks the configured artifacts. Errors are local faults
// (unreadable file, undecodable store) — a tampered artifact is not an
// error, it is a Report with FirstBroken set.
func Verify(cfg Config) (*Report, error) {
	fsys := cfg.FS
	if fsys == nil {
		fsys = store.OS()
	}
	rep := &Report{}
	if cfg.AuditLog != "" {
		ar, err := audit.VerifyJournalFile(fsys, cfg.AuditLog, cfg.Keyring)
		if err != nil {
			return nil, err
		}
		rep.Audit = ar
		if bad := ar.FirstBad; bad != nil && rep.FirstBroken == nil {
			rep.FirstBroken = &Broken{Artifact: "audit", Index: bad.Index,
				Offset: bad.Offset, Class: bad.Class, Detail: bad.Detail}
		}
	}
	if cfg.Outbox != "" {
		or, err := webhook.VerifyOutboxFile(fsys, cfg.Outbox, cfg.Keyring)
		if err != nil {
			return nil, err
		}
		rep.Outbox = or
		if bad := or.FirstBad; bad != nil && rep.FirstBroken == nil {
			rep.FirstBroken = &Broken{Artifact: "outbox", Index: bad.Index,
				Offset: bad.Offset, Class: bad.Class, Detail: bad.Detail}
		}
	}
	if cfg.RolloutState != "" {
		rr, err := rollout.VerifyState(fsys, cfg.RolloutState, cfg.Keyring)
		if err != nil {
			return nil, err
		}
		rep.Rollout = rr
		if !rr.OK() && rep.FirstBroken == nil {
			rep.FirstBroken = &Broken{Artifact: "rollout", Index: -1, Offset: -1,
				Class: rr.Class, Detail: rr.Detail}
		}
	}
	return rep, nil
}
