package verifier

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/ima"
	"repro/internal/tpm"
)

// makeEntries builds n structurally valid entries chained from a zero PCR.
func makeEntries(n int) []ima.Entry {
	entries := make([]ima.Entry, n)
	for i := range entries {
		d := sha256.Sum256([]byte{byte(i), byte(i >> 8)})
		path := fmt.Sprintf("/usr/bin/tool-%d", i)
		entries[i] = ima.Entry{
			PCR: tpm.PCRIMA, FileDigest: d, Path: path,
			TemplateHash: ima.TemplateHash(d, path),
		}
	}
	return entries
}

// referenceFold is the straightforward two-pass oracle the single-pass
// implementation must agree with.
func referenceFold(prefix tpm.Digest, entries []ima.Entry) []tpm.Digest {
	aggs := make([]tpm.Digest, len(entries))
	pcr := prefix
	for i, e := range entries {
		pcr = ima.ExtendAggregate(pcr, e.TemplateHash)
		aggs[i] = pcr
	}
	return aggs
}

func TestVerifyAndFoldMatchesReference(t *testing.T) {
	prefix := sha256.Sum256([]byte("prefix"))
	for _, n := range []int{0, 1, 7, parallelVerifyThreshold - 1, parallelVerifyThreshold, 1000} {
		entries := makeEntries(n)
		want := referenceFold(prefix, entries)
		for _, workers := range []int{1, 4} {
			aggs, invalid := verifyAndFold(prefix, entries, workers)
			if invalid != -1 {
				t.Fatalf("n=%d workers=%d: invalid = %d, want -1", n, workers, invalid)
			}
			if len(aggs) != len(want) {
				t.Fatalf("n=%d workers=%d: len(aggs) = %d, want %d", n, workers, len(aggs), len(want))
			}
			for i := range want {
				if aggs[i] != want[i] {
					t.Fatalf("n=%d workers=%d: aggs[%d] diverges from reference", n, workers, i)
				}
			}
		}
	}
}

func TestVerifyAndFoldReportsFirstInvalidEntry(t *testing.T) {
	for _, n := range []int{10, 1000} {
		for _, badAt := range []int{0, 3, n - 1} {
			entries := makeEntries(n)
			// Corrupt two entries; the lower index must win regardless of
			// worker scheduling.
			entries[badAt].TemplateHash[0] ^= 0xff
			if badAt+5 < n {
				entries[badAt+5].TemplateHash[0] ^= 0xff
			}
			for _, workers := range []int{1, 4} {
				aggs, invalid := verifyAndFold(tpm.Digest{}, entries, workers)
				if invalid != badAt {
					t.Fatalf("n=%d badAt=%d workers=%d: invalid = %d", n, badAt, workers, invalid)
				}
				if aggs != nil {
					t.Fatalf("n=%d badAt=%d workers=%d: aggs must be nil on invalid input", n, badAt, workers)
				}
			}
		}
	}
}

func BenchmarkVerifyAndFold(b *testing.B) {
	entries := makeEntries(10000)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, invalid := verifyAndFold(tpm.Digest{}, entries, workers); invalid != -1 {
					b.Fatal("unexpected invalid entry")
				}
			}
		})
	}
}
