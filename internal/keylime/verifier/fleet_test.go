package verifier_test

// Fleet-scale concurrency tests: enrollment churn, policy swaps, status
// reads and state exports racing live PollAll sweeps (run under -race in
// CI), plus deterministic coverage of the removed-mid-round path.

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/keylime/agent"
	"repro/internal/keylime/verifier"
	"repro/internal/machine"
	"repro/internal/tpm"
)

// fleetStack is a single agent stack shared by many enrolled agent IDs:
// every ID points at the same loopback agent server, so churn tests get a
// realistic full round (quote, log, policy) without one TPM per ID.
type fleetStack struct {
	m     *machine.Machine
	srv   *httptest.Server
	akPub []byte
}

func newFleetStack(t *testing.T) *fleetStack {
	t.Helper()
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	m, err := machine.New(ca, machine.WithTPMOptions(tpm.WithEKBits(1024)))
	if err != nil {
		t.Fatalf("New machine: %v", err)
	}
	writeExec(t, m, "/usr/bin/tool", "bin-1")
	exec(t, m, "/usr/bin/tool")
	akPub, err := m.TPM().CreateAK()
	if err != nil {
		t.Fatalf("CreateAK: %v", err)
	}
	srv := httptest.NewServer(agent.New(m).Handler())
	t.Cleanup(srv.Close)
	return &fleetStack{m: m, srv: srv, akPub: akPub}
}

// TestPollAllConcurrentChurn races enrollment, removal, policy updates,
// status reads and state exports against live PollAll sweeps. The stable
// fleet must attest on every sweep; churned agents may surface as Removed
// but never as Errors.
func TestPollAllConcurrentChurn(t *testing.T) {
	fs := newFleetStack(t)
	pol := policyFromMachine(t, fs.m)
	v := verifier.New("",
		verifier.WithHTTPClient(fs.srv.Client()),
		verifier.WithPollConcurrency(8),
	)
	const stable = 8
	for i := 0; i < stable; i++ {
		id := fmt.Sprintf("stable-%02d-4a97-9ef7-75bd81c00000", i)
		if err := v.AddAgentWithAK(id, fs.srv.URL, fs.akPub, pol); err != nil {
			t.Fatalf("AddAgentWithAK: %v", err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("churn-%d-%04d-9ef7-75bd81c00000", g, i)
				if err := v.AddAgentWithAK(id, fs.srv.URL, fs.akPub, pol); err != nil {
					t.Errorf("AddAgentWithAK %s: %v", id, err)
					return
				}
				// Concurrent management traffic; the agent may already be
				// gone from a racing sweep's perspective, so only genuinely
				// unexpected errors count.
				_ = v.UpdatePolicy(id, pol)
				_, _ = v.Status(id)
				if err := v.RemoveAgent(id); err != nil {
					t.Errorf("RemoveAgent %s: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := v.ExportState(); err != nil {
				t.Errorf("ExportState: %v", err)
				return
			}
		}
	}()

	ctx := context.Background()
	for sweep := 0; sweep < 5; sweep++ {
		st := v.PollAll(ctx)
		if st.Errors != 0 || st.Failed != 0 || st.Degraded != 0 {
			t.Fatalf("sweep %d: PollAll = %+v", sweep, st)
		}
		if st.Attested < stable {
			t.Fatalf("sweep %d: attested %d agents, want at least the %d stable ones", sweep, st.Attested, stable)
		}
	}
	close(stop)
	wg.Wait()

	// Churn settled: only the stable fleet remains.
	st := v.PollAll(ctx)
	if st.Attested != stable || st.Removed != 0 || st.Errors != 0 {
		t.Fatalf("final PollAll = %+v, want %d attested", st, stable)
	}
	snap, err := v.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	if len(snap.Agents) != stable {
		t.Fatalf("ExportState holds %d agents, want %d", len(snap.Agents), stable)
	}
}

// blockingHandler wraps an agent handler and parks the first request until
// released, so a test can unenroll the agent while its evidence fetch is
// deterministically in flight.
type blockingHandler struct {
	inner   http.Handler
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func newBlockingHandler(inner http.Handler) *blockingHandler {
	return &blockingHandler{
		inner:   inner,
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (h *blockingHandler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	h.once.Do(func() {
		close(h.entered)
		<-h.release
	})
	h.inner.ServeHTTP(w, req)
}

// TestAttestOnceRemovedMidRound removes the agent while its quote fetch is
// in flight: the round must return ErrRemoved, record no verdict and fire
// no revocation — the agent is no longer monitored, so evidence obtained
// for it may not produce a security signal.
func TestAttestOnceRemovedMidRound(t *testing.T) {
	fs := newFleetStack(t)
	pol := policyFromMachine(t, fs.m)
	bh := newBlockingHandler(agent.New(fs.m).Handler())
	srv := httptest.NewServer(bh)
	defer srv.Close()
	var revocations atomic.Int32
	v := verifier.New("",
		verifier.WithHTTPClient(srv.Client()),
		verifier.WithRevocationHandler(func(string, verifier.Failure) { revocations.Add(1) }),
	)
	const id = "mid-round-d2f1-4a97-9ef7-75bd81c00000"
	if err := v.AddAgentWithAK(id, srv.URL, fs.akPub, pol); err != nil {
		t.Fatalf("AddAgentWithAK: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := v.AttestOnce(context.Background(), id)
		errc <- err
	}()
	<-bh.entered
	if err := v.RemoveAgent(id); err != nil {
		t.Fatalf("RemoveAgent: %v", err)
	}
	close(bh.release)
	if err := <-errc; !errors.Is(err, verifier.ErrRemoved) {
		t.Fatalf("AttestOnce after mid-round removal = %v, want ErrRemoved", err)
	}
	if _, err := v.Status(id); !errors.Is(err, verifier.ErrUnknownAgent) {
		t.Fatalf("Status after removal = %v, want ErrUnknownAgent", err)
	}
	if n := revocations.Load(); n != 0 {
		t.Fatalf("revocation handler fired %d times for a removed agent", n)
	}
}

// TestPollAllCountsRemovedMidSweep checks the sweep-level accounting: an
// agent unenrolled while its round is in flight lands in PollStats.Removed,
// not Errors.
func TestPollAllCountsRemovedMidSweep(t *testing.T) {
	fs := newFleetStack(t)
	pol := policyFromMachine(t, fs.m)
	bh := newBlockingHandler(agent.New(fs.m).Handler())
	srv := httptest.NewServer(bh)
	defer srv.Close()
	v := verifier.New("", verifier.WithHTTPClient(srv.Client()))
	const id = "mid-sweep-d2f1-4a97-9ef7-75bd81c00000"
	if err := v.AddAgentWithAK(id, srv.URL, fs.akPub, pol); err != nil {
		t.Fatalf("AddAgentWithAK: %v", err)
	}
	statsc := make(chan verifier.PollStats, 1)
	go func() { statsc <- v.PollAll(context.Background()) }()
	<-bh.entered
	if err := v.RemoveAgent(id); err != nil {
		t.Fatalf("RemoveAgent: %v", err)
	}
	close(bh.release)
	st := <-statsc
	if st.Removed != 1 || st.Attested != 0 || st.Errors != 0 {
		t.Fatalf("PollAll = %+v, want exactly one Removed", st)
	}
}
